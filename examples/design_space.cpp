/**
 * @file
 * Design-space explorer: sweeps bank count, bus width, and chunk size
 * for a chosen application and scheme pair, prints every point, and
 * marks the Pareto frontier in the (energy, delay) plane — the
 * workflow behind the paper's Figure 22.
 *
 * Usage: design_space [app]     (default: MG)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.hh"

using namespace desc;

namespace {

struct Point
{
    std::string label;
    double energy;
    double time;
    bool pareto = false;
};

} // namespace

int
main(int argc, char **argv)
{
    const char *app_name = argc > 1 ? argv[1] : "MG";
    const auto &app = workloads::findApp(app_name);

    std::vector<Point> points;
    auto evaluate = [&](encoding::SchemeKind kind, unsigned banks,
                        unsigned wires, unsigned chunk) {
        sim::SystemConfig cfg = sim::baselineConfig(app);
        cfg.insts_per_thread = 20'000;
        sim::applyScheme(cfg, kind);
        cfg.l2.org.banks = banks;
        cfg.l2.org.bus_wires = wires;
        cfg.l2.scheme_cfg.bus_wires = wires;
        cfg.l2.scheme_cfg.chunk_bits = chunk;
        auto run = sim::runApp(cfg);
        char label[96];
        std::snprintf(label, sizeof(label), "%-8s b=%-3u w=%-3u c=%u",
                      sim::shortSchemeName(kind).c_str(), banks, wires,
                      chunk);
        points.push_back(Point{label, run.l2.total() * 1e6,
                               double(run.result.cycles), false});
        std::fprintf(stderr, ".");
    };

    for (unsigned banks : {4u, 8u, 16u}) {
        for (unsigned wires : {64u, 128u}) {
            evaluate(encoding::SchemeKind::Binary, banks, wires, 4);
            for (unsigned chunk : {2u, 4u})
                evaluate(encoding::SchemeKind::DescZeroSkip, banks,
                         wires, chunk);
        }
    }
    std::fprintf(stderr, "\n");

    // Pareto frontier: no other point is better in both dimensions.
    for (auto &p : points) {
        p.pareto = true;
        for (const auto &q : points) {
            if (q.energy < p.energy && q.time < p.time) {
                p.pareto = false;
                break;
            }
        }
    }

    std::printf("design space for %s (energy in uJ, time in cycles):\n",
                app_name);
    for (const auto &p : points) {
        std::printf("  %s  E=%8.3f  T=%10.0f  %s\n", p.label.c_str(),
                    p.energy, p.time, p.pareto ? "<-- Pareto" : "");
    }
    return 0;
}
