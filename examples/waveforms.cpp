/**
 * @file
 * Protocol illustration: prints the actual wire waveforms of the
 * cycle-accurate DESC transmitter for the paper's worked examples —
 * Figure 5 (two 3-bit chunks on one wire), Figure 10a (basic DESC
 * time window), and Figure 10b (zero-skipped window).
 *
 * Build and run:  ./build/examples/waveforms
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/chunk.hh"
#include "core/receiver.hh"
#include "core/transmitter.hh"

using namespace desc;
using namespace desc::core;

namespace {

void
trace(const char *title, const DescConfig &cfg,
      const std::vector<std::uint8_t> &chunks)
{
    BitVec block = joinChunks(chunks, cfg.chunk_bits,
                              unsigned(chunks.size()) * cfg.chunk_bits);
    DescTransmitter tx(cfg);
    DescReceiver rx(cfg);

    unsigned wires = cfg.activeWires();
    std::vector<std::string> rows(wires + 2);
    tx.loadBlock(block);
    unsigned cycles = 0;
    while (tx.busy()) {
        tx.tick();
        const auto &w = tx.wires();
        rows[0].push_back(w.reset_skip ? '1' : '0');
        for (unsigned i = 0; i < wires; i++)
            rows[1 + i].push_back(w.data[i] ? '1' : '0');
        rows[wires + 1].push_back(w.sync ? '1' : '0');
        rx.observe(w);
        cycles++;
    }

    std::printf("%s\n", title);
    std::printf("  chunks in:  ");
    for (auto c : chunks)
        std::printf("%u ", unsigned(c));
    std::printf(" (%s, %u cycles)\n", skipModeName(cfg.skip), cycles);
    std::printf("  reset/skip  %s\n", rows[0].c_str());
    for (unsigned i = 0; i < wires; i++)
        std::printf("  data[%u]     %s\n", i, rows[1 + i].c_str());
    std::printf("  sync        %s\n", rows[wires + 1].c_str());

    auto out = splitChunks(rx.takeBlock(), cfg.chunk_bits);
    std::printf("  chunks out: ");
    for (auto c : out)
        std::printf("%u ", unsigned(c));
    std::printf("\n\n");
}

} // namespace

int
main()
{
    DescConfig fig5;
    fig5.bus_wires = 1;
    fig5.chunk_bits = 3;
    fig5.block_bits = 6;
    fig5.skip = SkipMode::None;
    trace("Figure 5: two 3-bit chunks (2, then 1) on one wire", fig5,
          {2, 1});

    DescConfig fig10a;
    fig10a.bus_wires = 4;
    fig10a.chunk_bits = 3;
    fig10a.block_bits = 12;
    fig10a.skip = SkipMode::None;
    trace("Figure 10a: basic DESC, chunks (0, 0, 5, 0)", fig10a,
          {0, 0, 5, 0});

    DescConfig fig10b = fig10a;
    fig10b.skip = SkipMode::Zero;
    trace("Figure 10b: zero-skipped DESC, chunks (0, 0, 5, 0)", fig10b,
          {0, 0, 5, 0});

    DescConfig lvs = fig10a;
    lvs.skip = SkipMode::LastValue;
    trace("Last-value skipping: repeated block (5, 1, 5, 2) sent twice",
          lvs, {5, 1, 5, 2});
    return 0;
}
