/**
 * @file
 * Protocol illustration: replays the paper's worked examples through
 * the cycle-accurate DESC link — Figure 5 (two 3-bit chunks on one
 * wire), Figure 10a (basic DESC time window), and Figure 10b
 * (zero-skipped window) — and records the wire-level waveforms.
 *
 * Every example becomes one module scope in a GTKWave-loadable VCD
 * file (DESC_VCD_OUT, default "waveforms.vcd"); the same per-cycle
 * samples are rendered as ASCII rows on stdout, so the printed art
 * and the .vcd can never disagree. DESC_TRACE=link additionally
 * prints the transmitter/receiver protocol events as they fire.
 *
 * Build and run:  ./build/examples/waveforms
 * Inspect:        gtkwave waveforms.vcd
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/env.hh"
#include "core/chunk.hh"
#include "core/link.hh"
#include "sim/vcd.hh"

using namespace desc;
using namespace desc::core;

namespace {

struct Example
{
    const char *scope;
    const char *title;
    DescConfig cfg;
    std::vector<std::uint8_t> chunks;
    sim::VcdWriter::BundleSignals sigs;
};

/**
 * Run one example through a DescLink. The link's wire hook feeds the
 * identical per-cycle bundle to the VCD scope (shifted onto the
 * file's shared time axis by @p t_base) and to the printed ASCII
 * rows, then returns the first free time after this example.
 */
std::uint64_t
showExample(sim::VcdWriter &vcd, Example &ex, std::uint64_t t_base)
{
    const DescConfig &cfg = ex.cfg;
    BitVec block = joinChunks(ex.chunks, cfg.chunk_bits,
                              unsigned(ex.chunks.size()) * cfg.chunk_bits);
    DescLink link(cfg);

    unsigned wires = cfg.activeWires();
    std::vector<std::string> rows(wires + 2);
    std::uint64_t t_end = t_base;
    link.setWireHook([&](Cycle t, const WireBundle &w) {
        if (vcd.isOpen())
            vcd.sampleBundle(ex.sigs, t_base + t, w);
        t_end = t_base + t;
        rows[0].push_back(w.reset_skip ? '1' : '0');
        for (unsigned i = 0; i < wires; i++)
            rows[1 + i].push_back(w.data[i] ? '1' : '0');
        rows[wires + 1].push_back(w.sync ? '1' : '0');
    });

    BitVec received(block.width());
    auto result = link.transferBlock(block, &received);

    std::printf("%s\n", ex.title);
    std::printf("  chunks in:  ");
    for (auto c : ex.chunks)
        std::printf("%u ", unsigned(c));
    std::printf(" (%s, %llu cycles)\n", skipModeName(cfg.skip),
                (unsigned long long)result.cycles);
    std::printf("  reset/skip  %s\n", rows[0].c_str());
    for (unsigned i = 0; i < wires; i++)
        std::printf("  data[%u]     %s\n", i, rows[1 + i].c_str());
    std::printf("  sync        %s\n", rows[wires + 1].c_str());

    auto out = splitChunks(received, cfg.chunk_bits);
    std::printf("  chunks out: ");
    for (auto c : out)
        std::printf("%u ", unsigned(c));
    std::printf("\n\n");

    // A small gap keeps the scopes visually separate in a viewer.
    return t_end + 4;
}

} // namespace

int
main()
{
    DescConfig fig5;
    fig5.bus_wires = 1;
    fig5.chunk_bits = 3;
    fig5.block_bits = 6;
    fig5.skip = SkipMode::None;

    DescConfig fig10a;
    fig10a.bus_wires = 4;
    fig10a.chunk_bits = 3;
    fig10a.block_bits = 12;
    fig10a.skip = SkipMode::None;

    DescConfig fig10b = fig10a;
    fig10b.skip = SkipMode::Zero;

    DescConfig lvs = fig10a;
    lvs.skip = SkipMode::LastValue;

    std::vector<Example> examples = {
        {"fig5", "Figure 5: two 3-bit chunks (2, then 1) on one wire",
         fig5, {2, 1}, {}},
        {"fig10a", "Figure 10a: basic DESC, chunks (0, 0, 5, 0)",
         fig10a, {0, 0, 5, 0}, {}},
        {"fig10b", "Figure 10b: zero-skipped DESC, chunks (0, 0, 5, 0)",
         fig10b, {0, 0, 5, 0}, {}},
        {"lvs", "Last-value skipping: block (5, 1, 5, 2)", lvs,
         {5, 1, 5, 2}, {}},
    };

    std::string vcd_path =
        desc::env::stringOr(desc::env::Var::VcdOut, "waveforms.vcd");
    sim::VcdWriter vcd;
    bool vcd_ok = vcd.open(vcd_path);
    if (vcd_ok) {
        // VCD wants every signal declared before the first sample.
        for (auto &ex : examples)
            ex.sigs = vcd.addBundle(ex.scope, ex.cfg.activeWires());
        vcd.endHeader();
    }

    std::uint64_t t = 0;
    for (auto &ex : examples)
        t = showExample(vcd, ex, t);

    vcd.close();
    if (vcd_ok)
        std::printf("waveforms written to %s\n", vcd_path.c_str());
    return 0;
}
