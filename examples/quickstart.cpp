/**
 * @file
 * Quickstart: the public API in one file.
 *
 * 1. Move a cache block over a cycle-accurate DESC link and see the
 *    transition counts next to conventional binary signaling.
 * 2. Run the Niagara-like multicore on a workload model with binary
 *    vs zero-skipped DESC at the L2, and compare energy and time.
 *
 * Build and run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "common/rng.hh"
#include "core/descscheme.hh"
#include "core/link.hh"
#include "encoding/binary.hh"
#include "sim/experiment.hh"

using namespace desc;

int
main()
{
    // --- Part 1: one block over one link -----------------------------
    Rng rng(7);
    BitVec block = makeBlock();
    block.randomize(rng);
    // Make it look like cache data: zero out half the words.
    for (unsigned w = 0; w < 4; w++)
        block.setField(w * 128, 64, 0);

    core::DescConfig dcfg;
    dcfg.bus_wires = 128;
    dcfg.chunk_bits = 4;
    dcfg.skip = core::SkipMode::Zero;
    core::DescLink link(dcfg);

    BitVec received;
    auto desc_xfer = link.transferBlock(block, &received);
    std::printf("DESC link:   %llu data flips, %llu control flips, "
                "%llu cycles, round-trip %s\n",
                (unsigned long long)desc_xfer.data_flips,
                (unsigned long long)desc_xfer.control_flips,
                (unsigned long long)desc_xfer.cycles,
                received == block ? "OK" : "CORRUPT");

    encoding::SchemeConfig bcfg;
    bcfg.bus_wires = 64;
    encoding::BinaryScheme binary(bcfg);
    auto bin_xfer = binary.transfer(block);
    std::printf("Binary bus:  %llu data flips, %llu cycles\n\n",
                (unsigned long long)bin_xfer.data_flips,
                (unsigned long long)bin_xfer.cycles);

    // --- Part 2: whole-system comparison ------------------------------
    const auto &app = workloads::findApp("FFT");

    sim::SystemConfig base = sim::baselineConfig(app);
    base.insts_per_thread = 40'000;
    auto binary_run = sim::runApp(base);

    sim::SystemConfig with_desc = base;
    sim::applyScheme(with_desc, encoding::SchemeKind::DescZeroSkip);
    auto desc_run = sim::runApp(with_desc);

    std::printf("FFT on the 8-core machine (8MB L2, LSTP devices):\n");
    std::printf("  %-18s %12s %14s %14s\n", "scheme", "cycles",
                "L2 energy (uJ)", "CPU energy (uJ)");
    auto report = [](const char *name, const sim::AppRun &r) {
        std::printf("  %-18s %12llu %14.2f %14.2f\n", name,
                    (unsigned long long)r.result.cycles,
                    r.l2.total() * 1e6, r.processor.total() * 1e6);
    };
    report("binary", binary_run);
    report("zero-skip DESC", desc_run);

    std::printf("\n  L2 energy reduction: %.2fx   "
                "exec-time overhead: %.1f%%\n",
                binary_run.l2.total() / desc_run.l2.total(),
                100.0 * (double(desc_run.result.cycles)
                         / double(binary_run.result.cycles) - 1.0));
    return 0;
}
