/**
 * @file
 * SECDED under DESC: demonstrates why the interleaved parity layout
 * of Figure 9 matters. A transient H-tree fault under DESC corrupts a
 * whole chunk (up to four bits); with the interleaved layout those
 * bits land in distinct segments and every segment stays single-error
 * correctable. Two faulted chunks stay detectable.
 *
 * Build and run:  ./build/examples/ecc_demo
 */

#include <cstdio>

#include "common/rng.hh"
#include "ecc/blockcodec.hh"
#include "ecc/injector.hh"

using namespace desc;
using namespace desc::ecc;

int
main()
{
    Rng rng(99);
    BlockCodec codec(512, 128); // four (137,128) SECDED segments
    std::printf("codec: %u segments of 128 data bits, %u parity bits "
                "each -> %u bits on the bus\n\n",
                codec.numSegments(), codec.parityBitsPerSegment(),
                codec.busBits());

    BitVec block(512);
    block.randomize(rng);
    BitVec bus = codec.encode(block);

    // Fault 1: one corrupted DESC chunk (one bad toggle).
    BitVec faulty = bus;
    unsigned chunk = corruptRandomChunk(faulty, 4, rng);
    auto d1 = codec.decode(faulty);
    std::printf("one corrupted 4-bit chunk (#%u): %u segment(s) "
                "corrected, data %s\n",
                chunk, d1.corrected,
                d1.block == block ? "RECOVERED" : "LOST");

    // Fault 2: two corrupted chunks in the same transfer.
    BitVec faulty2 = bus;
    corruptChunk(faulty2, 10, 4, rng);
    corruptChunk(faulty2, 77, 4, rng);
    auto d2 = codec.decode(faulty2);
    std::printf("two corrupted chunks: corrected=%u, "
                "detected-double=%u -> %s\n",
                d2.corrected, d2.detected_double,
                d2.uncorrectable()
                    ? "uncorrectable error reported (as designed)"
                    : (d2.block == block ? "recovered" : "UNDETECTED!"));

    // Fault 3: a classic single wire-bit error (binary signaling).
    BitVec faulty3 = bus;
    unsigned pos = flipRandomBit(faulty3, rng);
    auto d3 = codec.decode(faulty3);
    std::printf("single wire-bit error (bit %u): corrected=%u, data "
                "%s\n",
                pos, d3.corrected,
                d3.block == block ? "RECOVERED" : "LOST");

    // Statistics over many random chunk faults.
    unsigned recovered = 0, detected = 0;
    const unsigned trials = 2000;
    for (unsigned i = 0; i < trials; i++) {
        BitVec b(512);
        b.randomize(rng);
        BitVec w = codec.encode(b);
        corruptRandomChunk(w, 4, rng);
        auto d = codec.decode(w);
        if (d.block == b)
            recovered++;
        else if (d.uncorrectable())
            detected++;
    }
    std::printf("\n%u random chunk faults: %u recovered, %u flagged, "
                "%u silent corruptions\n",
                trials, recovered, detected,
                trials - recovered - detected);
    return 0;
}
