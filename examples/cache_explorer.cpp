/**
 * @file
 * Cache design explorer: run any application under any transfer
 * scheme and L2 organization from the command line and print the
 * full statistics and energy breakdown.
 *
 * Usage:
 *   cache_explorer [app] [scheme] [banks] [bus_wires] [chunk_bits]
 *   cache_explorer FFT zs-desc 8 128 4
 *
 * Schemes: binary dzc bic zs-bic ezs-bic desc zs-desc lvs-desc
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/experiment.hh"
#include "sim/report.hh"

using namespace desc;
using encoding::SchemeKind;

namespace {

SchemeKind
parseScheme(const char *s)
{
    struct Entry { const char *name; SchemeKind kind; };
    static const Entry table[] = {
        {"binary", SchemeKind::Binary},
        {"dzc", SchemeKind::DynamicZeroCompression},
        {"bic", SchemeKind::BusInvert},
        {"zs-bic", SchemeKind::ZeroSkipBusInvert},
        {"ezs-bic", SchemeKind::EncodedZeroSkipBusInvert},
        {"desc", SchemeKind::DescBasic},
        {"zs-desc", SchemeKind::DescZeroSkip},
        {"lvs-desc", SchemeKind::DescLastValueSkip},
    };
    for (const auto &e : table) {
        if (std::strcmp(e.name, s) == 0)
            return e.kind;
    }
    std::fprintf(stderr, "unknown scheme '%s'\n", s);
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *app_name = argc > 1 ? argv[1] : "FFT";
    const char *scheme_name = argc > 2 ? argv[2] : "zs-desc";

    sim::SystemConfig cfg =
        sim::baselineConfig(workloads::findApp(app_name));
    sim::applyScheme(cfg, parseScheme(scheme_name));
    if (argc > 3)
        cfg.l2.org.banks = unsigned(std::atoi(argv[3]));
    if (argc > 4) {
        cfg.l2.org.bus_wires = unsigned(std::atoi(argv[4]));
        cfg.l2.scheme_cfg.bus_wires = cfg.l2.org.bus_wires;
    }
    if (argc > 5)
        cfg.l2.scheme_cfg.chunk_bits = unsigned(std::atoi(argv[5]));
    cfg.l2.collect_chunk_stats = true;
    cfg.insts_per_thread = 60'000;

    auto run = sim::runApp(cfg);
    sim::printRunReport(cfg, run);
    std::printf("zero chunks        %.3f   last-value matches %.3f\n",
                run.result.chunks.zeroFraction(),
                run.result.chunks.lastValueMatchFraction());
    return 0;
}
