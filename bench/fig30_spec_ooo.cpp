/**
 * @file
 * Figure 30: execution time of single-threaded SPEC CPU 2006
 * applications on the 4-issue out-of-order core with zero-skipped
 * DESC at the L2, normalized to binary encoding. Paper: +6% on
 * average — the latency-sensitive design tolerates DESC's longer
 * transfer windows far less than the multithreaded machine.
 */

#include "benchutil.hh"

using namespace desc;

int
main()
{
    const auto &apps = workloads::specApps();
    Table t({"app", "exec time (norm)"});
    std::vector<double> norms;

    for (const auto &app : apps) {
        std::fprintf(stderr, "  running %s...\n", app.name);
        auto base_cfg = sim::baselineConfig(app);
        base_cfg.cpu = sim::CpuKind::OutOfOrder;
        base_cfg.threads_per_core = 1;
        base_cfg.insts_per_thread = 4 * bench::kAppBudget;
        auto base = sim::runApp(base_cfg);

        auto desc_cfg = base_cfg;
        sim::applyScheme(desc_cfg, encoding::SchemeKind::DescZeroSkip);
        auto with_desc = sim::runApp(desc_cfg);

        double norm = double(with_desc.result.cycles)
            / double(base.result.cycles);
        norms.push_back(norm);
        t.row().add(app.name).add(norm, 3);
    }
    t.row().add("Geomean").add(geomean(norms), 3);
    t.print("Figure 30: out-of-order execution time with zero-skipped "
            "DESC, normalized to binary (paper geomean ~1.06)");
    return 0;
}
