/**
 * @file
 * Figure 28: execution time under SECDED ECC for binary encoding and
 * zero-skipped DESC at various (W, S) points, where W is the data-bus
 * width and S the Hamming segment size: 64-64, 128-128 binary and
 * 128-64, 128-128 DESC, normalized to 64-bit binary with the (72,64)
 * code. Paper: DESC incurs ~1% over binary.
 */

#include "benchutil.hh"

using namespace desc;
using encoding::SchemeKind;

namespace {

sim::SystemConfig
eccConfig(const workloads::AppParams &app, SchemeKind kind,
          unsigned wires, unsigned segment)
{
    auto cfg = sim::baselineConfig(app);
    cfg.insts_per_thread = bench::kAppBudget;
    sim::applyScheme(cfg, kind);
    cfg.l2.org.bus_wires = wires;
    cfg.l2.scheme_cfg.bus_wires = wires;
    cfg.l2.ecc = true;
    cfg.l2.ecc_segment_bits = segment;
    return cfg;
}

} // namespace

int
main()
{
    struct Config
    {
        const char *name;
        SchemeKind kind;
        unsigned wires, segment;
    };
    const Config configs[] = {
        {"64-64 Binary", SchemeKind::Binary, 64, 64},
        {"128-128 Binary", SchemeKind::Binary, 128, 128},
        {"128-64 DESC", SchemeKind::DescZeroSkip, 128, 64},
        {"128-128 DESC", SchemeKind::DescZeroSkip, 128, 128},
    };

    const auto &apps = workloads::parallelApps();
    std::vector<std::vector<double>> cycles(4);
    for (unsigned c = 0; c < 4; c++) {
        std::fprintf(stderr, "config %s\n", configs[c].name);
        for (const auto &app : apps) {
            auto cfg = eccConfig(app, configs[c].kind, configs[c].wires,
                                 configs[c].segment);
            cycles[c].push_back(double(sim::runApp(cfg).result.cycles));
        }
    }

    Table t({"app", "64-64 Binary", "128-128 Binary", "128-64 DESC",
             "128-128 DESC"});
    std::vector<std::vector<double>> norm(4);
    for (std::size_t a = 0; a < apps.size(); a++) {
        t.row().add(apps[a].name);
        for (unsigned c = 0; c < 4; c++) {
            double v = cycles[c][a] / cycles[0][a];
            norm[c].push_back(v);
            t.add(v, 3);
        }
    }
    t.row().add("Geomean");
    for (unsigned c = 0; c < 4; c++)
        t.add(geomean(norm[c]), 3);
    t.print("Figure 28: execution time under SECDED ECC, normalized "
            "to 64-bit binary with (72,64) (paper: DESC ~1%)");
    return 0;
}
