/**
 * @file
 * Figure 16: L2 cache energy achieved by all eight data-transfer
 * techniques, per application, normalized to conventional binary
 * encoding. Paper headline: zero-skipped DESC 1.81x, last-value
 * skipped 1.77x, basic DESC ~11%, bus-invert ~19%, DZC ~10%.
 */

#include "benchutil.hh"

using namespace desc;
using encoding::SchemeKind;

int
main()
{
    const auto &apps = workloads::parallelApps();
    const unsigned n = encoding::kNumSchemes;

    // energies[scheme][app]
    std::vector<std::vector<double>> energies(n);
    for (unsigned s = 0; s < n; s++) {
        SchemeKind kind = core::allSchemeKinds()[s];
        std::fprintf(stderr, "scheme %s\n",
                     sim::shortSchemeName(kind).c_str());
        for (const auto &app : apps) {
            auto cfg = sim::baselineConfig(app);
            cfg.insts_per_thread = bench::kAppBudget;
            sim::applyScheme(cfg, kind);
            energies[s].push_back(sim::runApp(cfg).l2.total());
        }
    }

    std::vector<std::string> cols = {"app"};
    for (unsigned s = 0; s < n; s++)
        cols.push_back(sim::shortSchemeName(core::allSchemeKinds()[s]));
    Table t(cols);

    std::vector<std::vector<double>> norm(n);
    for (std::size_t a = 0; a < apps.size(); a++) {
        t.row().add(apps[a].name);
        for (unsigned s = 0; s < n; s++) {
            double v = energies[s][a] / energies[0][a];
            norm[s].push_back(v);
            t.add(v, 3);
        }
    }
    t.row().add("Geomean");
    for (unsigned s = 0; s < n; s++)
        t.add(geomean(norm[s]), 3);
    t.print("Figure 16: L2 energy normalized to binary encoding "
            "(paper geomeans: DZC 0.90, BIC 0.81, ZS-BIC 0.80, "
            "DESC 0.89, ZS-DESC 0.55, LVS-DESC 0.56)");

    std::printf("zero-skipped DESC reduction: %.2fx (paper 1.81x)\n",
                1.0 / geomean(norm[6]));
    std::printf("last-value DESC reduction:   %.2fx (paper 1.77x)\n",
                1.0 / geomean(norm[7]));
    return 0;
}
