/**
 * @file
 * Figure 1: L2 energy as a fraction of total processor energy for the
 * sixteen parallel applications on the baseline machine (8MB LSTP L2,
 * conventional binary encoding). Paper: ~15% on average.
 */

#include "benchutil.hh"

using namespace desc;

int
main()
{
    auto runs = bench::runAllApps([](const workloads::AppParams &app) {
        auto cfg = sim::baselineConfig(app);
        cfg.insts_per_thread = bench::kAppBudget;
        return cfg;
    });

    Table t({"app", "L2/processor energy"});
    std::vector<double> fracs;
    const auto &apps = workloads::parallelApps();
    for (std::size_t i = 0; i < apps.size(); i++) {
        double frac = runs[i].l2.total() / runs[i].processor.total();
        fracs.push_back(frac);
        t.row().add(apps[i].name).add(frac, 3);
    }
    t.row().add("Geomean").add(geomean(fracs), 3);
    t.print("Figure 1: L2 energy as a fraction of processor energy "
            "(paper avg ~0.15)");
    return 0;
}
