/**
 * @file
 * Figure 22: cache design-space possibilities under conventional
 * binary and value-skipped DESC — L2 energy vs execution time (both
 * normalized to the 8-bank / 64-bit / binary baseline) while varying
 * the data bus width, the number of banks, and (for DESC) the chunk
 * size. Paper: DESC opens new design points with much lower energy at
 * little extra delay.
 */

#include "benchutil.hh"

using namespace desc;
using encoding::SchemeKind;

int
main()
{
    auto apps = bench::sweepApps();

    auto evaluate = [&](SchemeKind kind, unsigned banks, unsigned wires,
                        unsigned chunk_bits, double *energy,
                        double *time) {
        double e = 0, c = 0;
        for (const auto &app : apps) {
            auto cfg = sim::baselineConfig(app);
            cfg.insts_per_thread = bench::kSweepBudget;
            sim::applyScheme(cfg, kind);
            cfg.l2.org.banks = banks;
            cfg.l2.org.bus_wires = wires;
            cfg.l2.scheme_cfg.bus_wires = wires;
            cfg.l2.scheme_cfg.chunk_bits = chunk_bits;
            auto run = sim::runApp(cfg);
            e += run.l2.total();
            c += double(run.result.cycles);
        }
        *energy = e;
        *time = c;
    };

    double base_e, base_t;
    evaluate(SchemeKind::Binary, 8, 64, 4, &base_e, &base_t);

    Table t({"scheme", "banks", "wires", "chunk", "L2 energy (norm)",
             "exec time (norm)"});
    const unsigned bank_opts[] = {4, 8, 16};
    const unsigned wire_opts[] = {32, 64, 128, 256};
    for (unsigned banks : bank_opts) {
        for (unsigned wires : wire_opts) {
            std::fprintf(stderr, "binary banks=%u wires=%u\n", banks,
                         wires);
            double e, c;
            evaluate(SchemeKind::Binary, banks, wires, 4, &e, &c);
            t.row().add("Binary").add(std::uint64_t{banks})
                .add(std::uint64_t{wires}).add("-")
                .add(e / base_e, 3).add(c / base_t, 3);
        }
    }
    const unsigned chunk_opts[] = {2, 4};
    for (unsigned banks : bank_opts) {
        for (unsigned wires : wire_opts) {
            for (unsigned chunk : chunk_opts) {
                std::fprintf(stderr,
                             "desc banks=%u wires=%u chunk=%u\n", banks,
                             wires, chunk);
                double e, c;
                evaluate(SchemeKind::DescZeroSkip, banks, wires, chunk,
                         &e, &c);
                t.row().add("ZS-DESC").add(std::uint64_t{banks})
                    .add(std::uint64_t{wires})
                    .add(std::uint64_t{chunk})
                    .add(e / base_e, 3).add(c / base_t, 3);
            }
        }
    }
    t.print("Figure 22: design-space scatter, normalized to 8 banks / "
            "64-bit bus / binary (paper: DESC points cluster at lower "
            "energy, similar delay)");
    return 0;
}
