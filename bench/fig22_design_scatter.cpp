/**
 * @file
 * Figure 22: cache design-space possibilities under conventional
 * binary and value-skipped DESC — L2 energy vs execution time (both
 * normalized to the 8-bank / 64-bit / binary baseline) while varying
 * the data bus width, the number of banks, and (for DESC) the chunk
 * size. Paper: DESC opens new design points with much lower energy at
 * little extra delay.
 */

#include "benchutil.hh"

using namespace desc;
using encoding::SchemeKind;

int
main()
{
    auto apps = bench::sweepApps();

    // Gather every (scheme, banks, wires, chunk) point of the
    // scatter, submit all of them as one batch, then aggregate each
    // point's per-app slice in submission order.
    struct Point
    {
        SchemeKind kind;
        unsigned banks, wires, chunk;
    };
    std::vector<Point> pts;
    pts.push_back(Point{SchemeKind::Binary, 8, 64, 4}); // baseline
    const unsigned bank_opts[] = {4, 8, 16};
    const unsigned wire_opts[] = {32, 64, 128, 256};
    for (unsigned banks : bank_opts)
        for (unsigned wires : wire_opts)
            pts.push_back(Point{SchemeKind::Binary, banks, wires, 4});
    const unsigned chunk_opts[] = {2, 4};
    for (unsigned banks : bank_opts)
        for (unsigned wires : wire_opts)
            for (unsigned chunk : chunk_opts)
                pts.push_back(
                    Point{SchemeKind::DescZeroSkip, banks, wires, chunk});

    std::vector<sim::SystemConfig> cfgs;
    for (const auto &p : pts) {
        for (const auto &app : apps) {
            auto cfg = sim::baselineConfig(app);
            cfg.insts_per_thread = bench::kSweepBudget;
            sim::applyScheme(cfg, p.kind);
            cfg.l2.org.banks = p.banks;
            cfg.l2.org.bus_wires = p.wires;
            cfg.l2.scheme_cfg.bus_wires = p.wires;
            cfg.l2.scheme_cfg.chunk_bits = p.chunk;
            cfgs.push_back(cfg);
        }
    }
    auto runs = bench::runConfigs(cfgs);

    std::vector<double> energy(pts.size(), 0.0);
    std::vector<double> time(pts.size(), 0.0);
    for (std::size_t p = 0; p < pts.size(); p++) {
        for (std::size_t i = 0; i < apps.size(); i++) {
            const auto &run = runs[p * apps.size() + i];
            energy[p] += run.l2.total();
            time[p] += double(run.result.cycles);
        }
    }

    double base_e = energy[0], base_t = time[0];

    Table t({"scheme", "banks", "wires", "chunk", "L2 energy (norm)",
             "exec time (norm)"});
    for (std::size_t p = 1; p < pts.size(); p++) {
        const auto &pt = pts[p];
        t.row()
            .add(pt.kind == SchemeKind::Binary ? "Binary" : "ZS-DESC")
            .add(std::uint64_t{pt.banks})
            .add(std::uint64_t{pt.wires});
        if (pt.kind == SchemeKind::Binary)
            t.add("-");
        else
            t.add(std::uint64_t{pt.chunk});
        t.add(energy[p] / base_e, 3).add(time[p] / base_t, 3);
    }
    t.print("Figure 22: design-space scatter, normalized to 8 banks / "
            "64-bit bus / binary (paper: DESC points cluster at lower "
            "energy, similar delay)");
    return 0;
}
