/**
 * @file
 * Figure 18: contribution of static and dynamic energy to the overall
 * L2 energy for every data-transfer technique, averaged over the
 * sixteen parallel applications and normalized to binary encoding.
 * Paper: zero-skipped DESC halves dynamic energy while adding ~3%
 * static energy.
 */

#include "benchutil.hh"

using namespace desc;
using encoding::SchemeKind;

int
main()
{
    auto apps = bench::sweepApps();
    const unsigned n = encoding::kNumSchemes;

    double base_total = 0;
    std::vector<double> stat(n, 0.0), dyn(n, 0.0);
    for (unsigned s = 0; s < n; s++) {
        SchemeKind kind = core::allSchemeKinds()[s];
        std::fprintf(stderr, "scheme %s\n",
                     sim::shortSchemeName(kind).c_str());
        for (const auto &app : apps) {
            auto cfg = sim::baselineConfig(app);
            cfg.insts_per_thread = bench::kSweepBudget;
            sim::applyScheme(cfg, kind);
            auto run = sim::runApp(cfg);
            stat[s] += run.l2.static_energy;
            dyn[s] += run.l2.dynamic();
        }
        if (s == 0)
            base_total = stat[0] + dyn[0];
    }

    Table t({"scheme", "static (norm)", "dynamic (norm)",
             "total (norm)"});
    for (unsigned s = 0; s < n; s++) {
        t.row()
            .add(sim::shortSchemeName(core::allSchemeKinds()[s]))
            .add(stat[s] / base_total, 3)
            .add(dyn[s] / base_total, 3)
            .add((stat[s] + dyn[s]) / base_total, 3);
    }
    t.print("Figure 18: static/dynamic L2 energy, normalized to the "
            "binary total (paper: ZS-DESC halves dynamic, +3% static)");

    std::printf("ZS-DESC dynamic reduction: %.2fx (paper ~2x); "
                "static overhead: %+.1f%%\n",
                dyn[0] / dyn[6], 100.0 * (stat[6] / stat[0] - 1.0));
    return 0;
}
