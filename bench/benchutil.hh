/**
 * @file
 * Shared helpers for the figure-reproduction harnesses.
 *
 * Each bench binary regenerates one table/figure of the paper's
 * evaluation (Section 5) and prints the same rows/series. Simulated
 * instruction budgets scale with the DESC_SIM_SCALE environment
 * variable (default 1.0). Simulations fan out across DESC_SIM_JOBS
 * worker threads and memoize their results on disk (see
 * sim/runner.hh and sim/runcache.hh); submission order is preserved,
 * so figure output is bit-identical regardless of the job count.
 * Every harness prints a one-line runner summary on exit.
 */

#ifndef DESC_BENCH_BENCHUTIL_HH
#define DESC_BENCH_BENCHUTIL_HH

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"
#include "core/factory.hh"
#include "sim/experiment.hh"
#include "sim/runcache.hh"
#include "sim/runner.hh"

namespace desc::bench {

/** Default per-thread instruction budget for per-app figures. */
constexpr std::uint64_t kAppBudget = 40'000;

/** Reduced budget for the large design-space sweeps. */
constexpr std::uint64_t kSweepBudget = 15'000;

/** Apps used for the widest sweeps (a representative subset). */
inline std::vector<workloads::AppParams>
sweepApps()
{
    const auto &all = workloads::parallelApps();
    // Every other application, spanning the zero-rich and dense ends.
    std::vector<workloads::AppParams> subset;
    for (std::size_t i = 0; i < all.size(); i += 2)
        subset.push_back(all[i]);
    return subset;
}

/** Run a batch of configurations through the shared thread pool;
 *  results come back in submission order. */
inline std::vector<sim::AppRun>
runConfigs(const std::vector<sim::SystemConfig> &cfgs)
{
    return sim::globalRunner().run(cfgs);
}

/** Run one configured simulation for each parallel app; returns the
 *  per-app results in figure order. */
inline std::vector<sim::AppRun>
runAllApps(const std::function<sim::SystemConfig(
               const workloads::AppParams &)> &make_cfg,
           const std::vector<workloads::AppParams> &apps =
               workloads::parallelApps())
{
    std::vector<sim::SystemConfig> cfgs;
    cfgs.reserve(apps.size());
    for (const auto &app : apps)
        cfgs.push_back(make_cfg(app));
    return runConfigs(cfgs);
}

namespace detail {

/** Prints the runner/cache summary when a harness exits. */
struct RunSummaryAtExit
{
    ~RunSummaryAtExit()
    {
        if (sim::runStats().jobs.value() == 0)
            return;
        std::fprintf(stderr, "%s\n", sim::runSummaryLine().c_str());
    }
};

inline RunSummaryAtExit run_summary_at_exit;

} // namespace detail

} // namespace desc::bench

#endif // DESC_BENCH_BENCHUTIL_HH
