/**
 * @file
 * Figure 19: overall processor energy with zero-skipped DESC at the
 * L2, per application, normalized to binary encoding, split into the
 * L2 and the other hardware units. Paper: 7% processor energy saving.
 */

#include "benchutil.hh"

using namespace desc;

int
main()
{
    const auto &apps = workloads::parallelApps();
    Table t({"app", "L2 share", "other units share", "total (norm)"});
    std::vector<double> totals;

    for (const auto &app : apps) {
        std::fprintf(stderr, "  running %s...\n", app.name);
        auto base_cfg = sim::baselineConfig(app);
        base_cfg.insts_per_thread = bench::kAppBudget;
        auto base = sim::runApp(base_cfg);

        auto desc_cfg = base_cfg;
        sim::applyScheme(desc_cfg, encoding::SchemeKind::DescZeroSkip);
        auto with_desc = sim::runApp(desc_cfg);

        double base_total = base.processor.total();
        double l2_share = with_desc.l2.total() / base_total;
        double other_share =
            (with_desc.processor.total() - with_desc.l2.total())
            / base_total;
        totals.push_back(l2_share + other_share);
        t.row()
            .add(app.name)
            .add(l2_share, 3)
            .add(other_share, 3)
            .add(l2_share + other_share, 3);
    }
    t.row().add("Geomean").add("").add("").add(geomean(totals), 3);
    t.print("Figure 19: processor energy with zero-skipped DESC, "
            "normalized to binary (paper geomean ~0.93)");

    std::printf("processor energy saving: %.1f%% (paper ~7%%)\n",
                100.0 * (1.0 - geomean(totals)));
    return 0;
}
