/**
 * @file
 * Figure 26: sensitivity of zero-skipped DESC to the chunk size (1,
 * 2, 4, 8 bits) across data bus widths (32..256 wires): L2 energy and
 * execution time normalized to the binary baseline. Paper: 4-bit
 * chunks with 128 wires give the best energy-delay product.
 */

#include "benchutil.hh"

using namespace desc;

int
main()
{
    auto apps = bench::sweepApps();

    // One flat batch: the binary baseline first, then every
    // (chunk, wires, app) point in sweep order.
    std::vector<sim::SystemConfig> cfgs;
    for (const auto &app : apps) {
        auto cfg = sim::baselineConfig(app);
        cfg.insts_per_thread = bench::kSweepBudget;
        cfgs.push_back(cfg);
    }
    for (unsigned chunk : {1u, 2u, 4u, 8u}) {
        for (unsigned wires : {32u, 64u, 128u, 256u}) {
            for (const auto &app : apps) {
                auto cfg = sim::baselineConfig(app);
                cfg.insts_per_thread = bench::kSweepBudget;
                sim::applyScheme(cfg,
                                 encoding::SchemeKind::DescZeroSkip);
                cfg.l2.org.bus_wires = wires;
                cfg.l2.scheme_cfg.bus_wires = wires;
                cfg.l2.scheme_cfg.chunk_bits = chunk;
                cfgs.push_back(cfg);
            }
        }
    }
    auto runs = bench::runConfigs(cfgs);

    std::size_t next = 0;
    double base_e = 0, base_t = 0;
    for (std::size_t i = 0; i < apps.size(); i++) {
        const auto &run = runs[next++];
        base_e += run.l2.total();
        base_t += double(run.result.cycles);
    }

    Table t({"chunk bits", "wires", "L2 energy (norm)",
             "exec time (norm)", "EDP (norm)"});
    double best_edp = 1e30;
    std::string best_cfg;
    for (unsigned chunk : {1u, 2u, 4u, 8u}) {
        for (unsigned wires : {32u, 64u, 128u, 256u}) {
            double e = 0, c = 0;
            for (std::size_t i = 0; i < apps.size(); i++) {
                const auto &run = runs[next++];
                e += run.l2.total();
                c += double(run.result.cycles);
            }
            double en = e / base_e, tn = c / base_t;
            double edp = en * tn;
            if (edp < best_edp) {
                best_edp = edp;
                best_cfg = std::to_string(chunk) + "-bit chunks, "
                    + std::to_string(wires) + " wires";
            }
            t.row().add(std::uint64_t{chunk}).add(std::uint64_t{wires})
                .add(en, 3).add(tn, 3).add(edp, 3);
        }
    }
    t.print("Figure 26: zero-skipped DESC chunk-size sensitivity, "
            "normalized to binary (paper best: 4-bit chunks, 128 "
            "wires)");
    std::printf("best energy-delay product: %s\n", best_cfg.c_str());
    return 0;
}
