/**
 * @file
 * Host-side microbenchmarks (google-benchmark) of the transfer-scheme
 * models and the cycle-accurate DESC link. These measure simulator
 * throughput, not modeled hardware performance; they guard against
 * regressions in the hot path every experiment depends on.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "core/descscheme.hh"
#include "core/factory.hh"
#include "core/link.hh"

using namespace desc;
using encoding::SchemeConfig;
using encoding::SchemeKind;

namespace {

std::vector<BitVec>
makeBlocks(unsigned count)
{
    Rng rng(42);
    std::vector<BitVec> blocks;
    for (unsigned i = 0; i < count; i++) {
        BitVec b(kBlockBits);
        b.randomize(rng);
        // Zero half the words to resemble cache traffic.
        for (unsigned w = 0; w < 4; w++)
            b.setField(w * 128, 64, 0);
        blocks.push_back(b);
    }
    return blocks;
}

void
schemeThroughput(benchmark::State &state, SchemeKind kind)
{
    SchemeConfig cfg;
    cfg.bus_wires = kind == SchemeKind::Binary ? 64 : 128;
    cfg.segment_bits = 16;
    cfg.chunk_bits = 4;
    auto scheme = core::makeScheme(kind, cfg);
    auto blocks = makeBlocks(64);
    std::size_t i = 0;
    for (auto _ : state) {
        auto r = scheme->transfer(blocks[i++ & 63]);
        benchmark::DoNotOptimize(r.data_flips);
    }
    state.SetItemsProcessed(state.iterations());
}

} // namespace

BENCHMARK_CAPTURE(schemeThroughput, binary, SchemeKind::Binary);
BENCHMARK_CAPTURE(schemeThroughput, bus_invert, SchemeKind::BusInvert);
BENCHMARK_CAPTURE(schemeThroughput, dzc,
                  SchemeKind::DynamicZeroCompression);
BENCHMARK_CAPTURE(schemeThroughput, desc_zero_skip,
                  SchemeKind::DescZeroSkip);
BENCHMARK_CAPTURE(schemeThroughput, desc_last_value,
                  SchemeKind::DescLastValueSkip);

static void
cycleAccurateLink(benchmark::State &state)
{
    core::DescConfig cfg;
    cfg.bus_wires = 128;
    cfg.chunk_bits = 4;
    cfg.skip = core::SkipMode::Zero;
    core::DescLink link(cfg);
    auto blocks = makeBlocks(64);
    std::size_t i = 0;
    for (auto _ : state) {
        auto r = link.transferBlock(blocks[i++ & 63]);
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(cycleAccurateLink);

BENCHMARK_MAIN();
