/**
 * @file
 * Figure 14: design-space exploration over ITRS device types for the
 * SRAM cells and the peripheral circuitry (all nine cell-periphery
 * combinations at 8 banks, 64-bit bus). Reports L2 energy, execution
 * time, and total processor energy, each normalized to the
 * LSTP-LSTP configuration. Paper: LSTP-LSTP minimizes both energies
 * at a ~2% execution-time cost over HP devices.
 */

#include "benchutil.hh"

using namespace desc;
using energy::Device;

int
main()
{
    const Device devices[3] = {Device::HP, Device::LOP, Device::LSTP};
    auto apps = bench::sweepApps();

    struct Point
    {
        std::string name;
        double l2_energy, exec_time, proc_energy;
    };
    std::vector<Point> points;

    // One flat batch over all nine device combinations; the runner
    // preserves submission order, so slice per combination below.
    std::vector<sim::SystemConfig> cfgs;
    for (Device cell : devices) {
        for (Device periph : devices) {
            for (const auto &app : apps) {
                auto cfg = sim::baselineConfig(app);
                cfg.insts_per_thread = bench::kSweepBudget;
                cfg.l2.org.cell_dev = cell;
                cfg.l2.org.periph_dev = periph;
                cfgs.push_back(cfg);
            }
        }
    }
    auto runs = bench::runConfigs(cfgs);

    std::size_t next = 0;
    for (Device cell : devices) {
        for (Device periph : devices) {
            std::string name = std::string(energy::deviceName(cell))
                + "-" + energy::deviceName(periph);
            double l2 = 0, cyc = 0, proc = 0;
            for (std::size_t i = 0; i < apps.size(); i++) {
                const auto &run = runs[next++];
                l2 += run.l2.total();
                cyc += double(run.result.cycles);
                proc += run.processor.total();
            }
            points.push_back(Point{name, l2, cyc, proc});
        }
    }

    const Point &base = points.back(); // LSTP-LSTP is the last combo
    Table t({"cells-periphery", "L2 energy (norm)", "exec time (norm)",
             "processor energy (norm)"});
    for (const auto &p : points) {
        t.row()
            .add(p.name)
            .add(p.l2_energy / base.l2_energy, 2)
            .add(p.exec_time / base.exec_time, 3)
            .add(p.proc_energy / base.proc_energy, 2);
    }
    t.print("Figure 14: device design space, normalized to 8 banks / "
            "64-bit bus / LSTP-LSTP (paper: HP-HP L2 energy ~300x, "
            "exec time ~0.98)");
    return 0;
}
