/**
 * @file
 * Figure 29: L2 energy under SECDED ECC for the same (W, S)
 * configurations as Figure 28, normalized to 64-bit binary with the
 * (72,64) code. Paper: zero-skipped DESC improves cache energy by
 * 1.82x with (72,64) and 1.92x with (137,128).
 */

#include "benchutil.hh"

using namespace desc;
using encoding::SchemeKind;

namespace {

sim::SystemConfig
eccConfig(const workloads::AppParams &app, SchemeKind kind,
          unsigned wires, unsigned segment)
{
    auto cfg = sim::baselineConfig(app);
    cfg.insts_per_thread = bench::kAppBudget;
    sim::applyScheme(cfg, kind);
    cfg.l2.org.bus_wires = wires;
    cfg.l2.scheme_cfg.bus_wires = wires;
    cfg.l2.ecc = true;
    cfg.l2.ecc_segment_bits = segment;
    return cfg;
}

} // namespace

int
main()
{
    struct Config
    {
        const char *name;
        SchemeKind kind;
        unsigned wires, segment;
    };
    const Config configs[] = {
        {"64-64 Binary", SchemeKind::Binary, 64, 64},
        {"128-128 Binary", SchemeKind::Binary, 128, 128},
        {"128-64 DESC", SchemeKind::DescZeroSkip, 128, 64},
        {"128-128 DESC", SchemeKind::DescZeroSkip, 128, 128},
    };

    const auto &apps = workloads::parallelApps();
    std::vector<std::vector<double>> energy(4);
    for (unsigned c = 0; c < 4; c++) {
        std::fprintf(stderr, "config %s\n", configs[c].name);
        for (const auto &app : apps) {
            auto cfg = eccConfig(app, configs[c].kind, configs[c].wires,
                                 configs[c].segment);
            energy[c].push_back(sim::runApp(cfg).l2.total());
        }
    }

    Table t({"app", "64-64 Binary", "128-128 Binary", "128-64 DESC",
             "128-128 DESC"});
    std::vector<std::vector<double>> norm(4);
    for (std::size_t a = 0; a < apps.size(); a++) {
        t.row().add(apps[a].name);
        for (unsigned c = 0; c < 4; c++) {
            double v = energy[c][a] / energy[0][a];
            norm[c].push_back(v);
            t.add(v, 3);
        }
    }
    t.row().add("Geomean");
    for (unsigned c = 0; c < 4; c++)
        t.add(geomean(norm[c]), 3);
    t.print("Figure 29: L2 energy under SECDED ECC, normalized to "
            "64-bit binary with (72,64)");

    std::printf("DESC reduction with (72,64): %.2fx (paper 1.82x); "
                "with (137,128): %.2fx (paper 1.92x)\n",
                1.0 / geomean(norm[2]),
                geomean(norm[1]) / geomean(norm[3]));
    return 0;
}
