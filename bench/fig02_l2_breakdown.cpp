/**
 * @file
 * Figure 2: major components of the overall L2 energy — total static,
 * other (array/tag/aux) dynamic, and H-tree dynamic — per application
 * on the baseline binary-encoded LSTP cache. Paper: H-tree dynamic is
 * ~80% on average.
 */

#include "benchutil.hh"

using namespace desc;

int
main()
{
    auto runs = bench::runAllApps([](const workloads::AppParams &app) {
        auto cfg = sim::baselineConfig(app);
        cfg.insts_per_thread = bench::kAppBudget;
        return cfg;
    });

    Table t({"app", "static", "other dynamic", "H-tree dynamic"});
    std::vector<double> htree_fracs;
    const auto &apps = workloads::parallelApps();
    for (std::size_t i = 0; i < apps.size(); i++) {
        const auto &e = runs[i].l2;
        double total = e.total();
        double htree = e.htree_dynamic / total;
        htree_fracs.push_back(htree);
        t.row()
            .add(apps[i].name)
            .add(e.static_energy / total, 3)
            .add((e.array_dynamic + e.aux_dynamic) / total, 3)
            .add(htree, 3);
    }
    t.row().add("Geomean").add("").add("").add(geomean(htree_fracs), 3);
    t.print("Figure 2: L2 energy breakdown (paper: H-tree dynamic "
            "~0.80 on average)");
    return 0;
}
