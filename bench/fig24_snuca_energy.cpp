/**
 * @file
 * Figure 24: L2 energy of an 8MB S-NUCA-1 cache with zero-skipped
 * DESC, normalized to binary S-NUCA-1, per application. Paper: 1.62x
 * cache energy reduction (1.64x average power, 1.59x energy-delay).
 */

#include "benchutil.hh"

using namespace desc;

namespace {

sim::SystemConfig
snucaConfig(const workloads::AppParams &app, bool use_desc)
{
    auto cfg = sim::baselineConfig(app);
    cfg.insts_per_thread = bench::kAppBudget;
    cfg.l2.snuca = true;
    cfg.l2.org.banks = 128;
    cfg.l2.org.bus_wires = 128;
    cfg.l2.scheme_cfg.bus_wires = 128;
    if (use_desc)
        sim::applyScheme(cfg, encoding::SchemeKind::DescZeroSkip);
    return cfg;
}

} // namespace

int
main()
{
    const auto &apps = workloads::parallelApps();
    Table t({"app", "L2 energy (norm)", "L2 power (norm)",
             "EDP (norm)"});
    std::vector<double> e_norms, p_norms, edp_norms;
    for (const auto &app : apps) {
        std::fprintf(stderr, "  running %s...\n", app.name);
        auto base = sim::runApp(snucaConfig(app, false));
        auto with_desc = sim::runApp(snucaConfig(app, true));
        double e = with_desc.l2.total() / base.l2.total();
        double time_ratio = double(with_desc.result.cycles)
            / double(base.result.cycles);
        double p = e / time_ratio;
        double edp = e * time_ratio;
        e_norms.push_back(e);
        p_norms.push_back(p);
        edp_norms.push_back(edp);
        t.row().add(app.name).add(e, 3).add(p, 3).add(edp, 3);
    }
    t.row().add("Geomean").add(geomean(e_norms), 3)
        .add(geomean(p_norms), 3).add(geomean(edp_norms), 3);
    t.print("Figure 24: S-NUCA-1 + zero-skipped DESC L2 energy, "
            "normalized to binary S-NUCA-1 (paper: 1.62x energy, "
            "1.64x power, 1.59x EDP)");
    return 0;
}
