/**
 * @file
 * Ablation: decomposition of DESC's transition budget and the window
 * narrowing from value skipping (Figure 10 quantified).
 *
 * Splits the zero-skipped DESC transition count into data strobes,
 * reset/skip pulses, and the half-frequency synchronization strobe,
 * and reports the time-window shrinkage that excluding the skip value
 * from the count list buys (Section 3.3).
 */

#include <cstdio>

#include "benchutil.hh"
#include "core/descscheme.hh"
#include "workloads/valuemodel.hh"

using namespace desc;
using namespace desc::core;

int
main()
{
    const unsigned kBlocks = 200;

    double data = 0, resets = 0, sync = 0;
    double basic_cycles = 0, zs_cycles = 0, blocks = 0;

    for (const auto &app : workloads::parallelApps()) {
        DescConfig zs;
        zs.skip = SkipMode::Zero;
        DescScheme zscheme(zs);
        DescConfig basic;
        basic.skip = SkipMode::None;
        DescScheme bscheme(basic);

        workloads::ValueModel values(app, 5);
        BitVec bv(kBlockBits);
        for (unsigned b = 0; b < kBlocks; b++) {
            auto blk = values.block(Addr(b) * 64);
            bv.fromBytes(
                reinterpret_cast<const std::uint8_t *>(blk.data()), 64);
            auto r = zscheme.transfer(bv);
            // control = reset/skip pulses + one sync toggle per cycle.
            data += double(r.data_flips);
            sync += double(r.cycles);
            resets += double(r.control_flips - r.cycles);
            zs_cycles += double(r.cycles);
            basic_cycles += double(bscheme.transfer(bv).cycles);
            blocks += 1;
        }
    }

    Table t({"component", "transitions/block", "share"});
    double total = data + resets + sync;
    t.row().add("data strobes").add(data / blocks, 1)
        .add(data / total, 3);
    t.row().add("reset/skip pulses").add(resets / blocks, 1)
        .add(resets / total, 3);
    t.row().add("sync strobe").add(sync / blocks, 1)
        .add(sync / total, 3);
    t.row().add("total").add(total / blocks, 1).add(1.0, 3);
    t.print("Ablation: zero-skipped DESC transition budget per "
            "512-bit block (128 wires, 4-bit chunks)");

    std::printf("time window: basic %.1f cycles -> zero-skipped %.1f "
                "cycles (%.0f%% narrower; Figure 10's effect)\n",
                basic_cycles / blocks, zs_cycles / blocks,
                100.0 * (1.0 - zs_cycles / basic_cycles));
    return 0;
}
