/**
 * @file
 * Figure 27: impact of L2 capacity (512KB .. 64MB) on cache energy
 * for conventional binary and zero-skipped DESC, normalized to the
 * 8MB binary cache. Paper: DESC improves cache energy by 1.87x at
 * 512KB down to 1.75x at 64MB.
 */

#include "benchutil.hh"

using namespace desc;

int
main()
{
    auto apps = bench::sweepApps();

    auto evaluate = [&](encoding::SchemeKind kind,
                        std::uint64_t capacity) {
        double e = 0;
        for (const auto &app : apps) {
            auto cfg = sim::baselineConfig(app);
            cfg.insts_per_thread = bench::kSweepBudget;
            sim::applyScheme(cfg, kind);
            cfg.l2.org.capacity_bytes = capacity;
            e += sim::runApp(cfg).l2.total();
        }
        return e;
    };

    const std::uint64_t mb = 1ull << 20;
    const std::uint64_t sizes[] = {mb / 2, mb, 2 * mb, 4 * mb,
                                   8 * mb, 16 * mb, 32 * mb, 64 * mb};

    double base = evaluate(encoding::SchemeKind::Binary, 8 * mb);

    Table t({"capacity", "Binary (norm)", "ZS-DESC (norm)",
             "reduction"});
    for (std::uint64_t size : sizes) {
        std::fprintf(stderr, "capacity=%lluKB\n",
                     (unsigned long long)(size >> 10));
        double b = evaluate(encoding::SchemeKind::Binary, size);
        double d = evaluate(encoding::SchemeKind::DescZeroSkip, size);
        std::string label = size >= mb
            ? std::to_string(size / mb) + "MB"
            : std::to_string(size >> 10) + "KB";
        t.row().add(label).add(b / base, 3).add(d / base, 3)
            .add(b / d, 2);
    }
    t.print("Figure 27: L2 energy vs capacity, normalized to the 8MB "
            "binary cache (paper: DESC reduction 1.87x..1.75x)");
    return 0;
}
