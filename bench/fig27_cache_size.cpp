/**
 * @file
 * Figure 27: impact of L2 capacity (512KB .. 64MB) on cache energy
 * for conventional binary and zero-skipped DESC, normalized to the
 * 8MB binary cache. Paper: DESC improves cache energy by 1.87x at
 * 512KB down to 1.75x at 64MB.
 */

#include "benchutil.hh"

using namespace desc;

int
main()
{
    auto apps = bench::sweepApps();

    const std::uint64_t mb = 1ull << 20;
    const std::uint64_t sizes[] = {mb / 2, mb, 2 * mb, 4 * mb,
                                   8 * mb, 16 * mb, 32 * mb, 64 * mb};

    // One flat batch: the 8MB binary reference, then per capacity a
    // binary and a ZS-DESC slice, each across the sweep apps.
    struct Point
    {
        encoding::SchemeKind kind;
        std::uint64_t capacity;
    };
    std::vector<Point> pts;
    pts.push_back(Point{encoding::SchemeKind::Binary, 8 * mb});
    for (std::uint64_t size : sizes) {
        pts.push_back(Point{encoding::SchemeKind::Binary, size});
        pts.push_back(Point{encoding::SchemeKind::DescZeroSkip, size});
    }

    std::vector<sim::SystemConfig> cfgs;
    for (const auto &p : pts) {
        for (const auto &app : apps) {
            auto cfg = sim::baselineConfig(app);
            cfg.insts_per_thread = bench::kSweepBudget;
            sim::applyScheme(cfg, p.kind);
            cfg.l2.org.capacity_bytes = p.capacity;
            cfgs.push_back(cfg);
        }
    }
    auto runs = bench::runConfigs(cfgs);

    auto pointEnergy = [&](std::size_t p) {
        double e = 0;
        for (std::size_t i = 0; i < apps.size(); i++)
            e += runs[p * apps.size() + i].l2.total();
        return e;
    };

    double base = pointEnergy(0);

    Table t({"capacity", "Binary (norm)", "ZS-DESC (norm)",
             "reduction"});
    for (std::size_t s = 0; s < std::size(sizes); s++) {
        std::uint64_t size = sizes[s];
        double b = pointEnergy(1 + 2 * s);
        double d = pointEnergy(2 + 2 * s);
        std::string label = size >= mb
            ? std::to_string(size / mb) + "MB"
            : std::to_string(size >> 10) + "KB";
        t.row().add(label).add(b / base, 3).add(d / base, 3)
            .add(b / d, 2);
    }
    t.print("Figure 27: L2 energy vs capacity, normalized to the 8MB "
            "binary cache (paper: DESC reduction 1.87x..1.75x)");
    return 0;
}
