/**
 * @file
 * Figure 13: fraction of chunks transferred between the processor and
 * the L2 that match the previously transmitted chunk on the same
 * wire, per application. Paper: 39% on average.
 */

#include "benchutil.hh"

using namespace desc;

int
main()
{
    auto runs = bench::runAllApps([](const workloads::AppParams &app) {
        auto cfg = sim::baselineConfig(app);
        cfg.insts_per_thread = bench::kAppBudget;
        cfg.l2.collect_chunk_stats = true;
        return cfg;
    });

    Table t({"app", "matching fraction"});
    std::vector<double> fracs;
    const auto &apps = workloads::parallelApps();
    for (std::size_t i = 0; i < apps.size(); i++) {
        double f = runs[i].result.chunks.lastValueMatchFraction();
        fracs.push_back(f);
        t.row().add(apps[i].name).add(f, 3);
    }
    t.row().add("Geomean").add(geomean(fracs), 3);
    t.print("Figure 13: chunks matching the previous chunk on the same "
            "wire (paper avg ~0.39)");
    return 0;
}
