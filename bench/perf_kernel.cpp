/**
 * @file
 * Simulation-kernel microbenchmarks: event-queue throughput, link and
 * scheme block rates, and end-to-end simulated-cycle rate. Writes
 * BENCH_kernel.json (see README); the committed copy of that file is
 * the CI regression baseline.
 *
 * The runsystem check value doubles as a determinism probe: the cycle
 * count of the fixed workload must not depend on wall-clock timing.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cache/l2mode.hh"
#include "common/env.hh"
#include "common/prof.hh"
#include "common/rng.hh"
#include "core/chunk.hh"
#include "core/descscheme.hh"
#include "core/link.hh"
#include "cpu/coremode.hh"
#include "encoding/scheme.hh"
#include "sim/eventq.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "sim/vcd.hh"

using namespace desc;
using Clock = std::chrono::steady_clock;

namespace {

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * Steady-state contract of the desc::env registry: every knob a hot
 * component consults is memoized at its call site, so a measured
 * region performs zero environment lookups. Each kernel snapshots
 * the registry's lookup counter before its timed loop and fails the
 * bench if the counter moved.
 */
std::uint64_t
envReads()
{
    return env::lookupCount();
}

void
assertNoEnvReads(std::uint64_t before, const char *what)
{
    const std::uint64_t moved = env::lookupCount() - before;
    if (moved == 0)
        return;
    std::fprintf(stderr,
                 "FAIL: %s performed %llu environment lookups inside "
                 "the measured region (memoize the knob at its call "
                 "site)\n",
                 what, (unsigned long long)moved);
    std::exit(1);
}

/**
 * A recurring component event, the steady-state pattern of the ported
 * models: the same object reschedules itself with a small
 * data-dependent period. No allocation ever happens in this loop.
 */
struct CompEvent final : sim::Event
{
    void
    process() override
    {
        payload_a += id;
        payload_b ^= payload_a;
        if (*stop)
            return;
        eq->scheduleIn(*this, 1 + (id & 3));
    }

    sim::EventQueue *eq = nullptr;
    unsigned id = 0;
    std::uint64_t payload_a = 0;
    std::uint64_t payload_b = 0;
    bool *stop = nullptr;
};

double
benchEventQueue(std::uint64_t target_events)
{
    sim::EventQueue eq;
    bool stop = false;
    std::vector<CompEvent> comps(64);
    for (unsigned i = 0; i < 64; i++) {
        comps[i].eq = &eq;
        comps[i].id = i;
        comps[i].stop = &stop;
        eq.schedule(comps[i], 1 + (i & 3));
    }

    auto t0 = Clock::now();
    auto reads = envReads();
    std::uint64_t executed = 0;
    while (executed < target_events)
        executed += eq.run(eq.now() + 4096);
    double dt = secondsSince(t0);
    assertNoEnvReads(reads, "eventq kernel");
    stop = true;
    eq.run();
    return double(executed) / dt;
}

std::vector<BitVec>
makeBlocks(unsigned chunk_bits)
{
    // Mix of uniform-random, zero-rich, and repeating blocks, like
    // real cache traffic.
    Rng rng(42);
    std::vector<BitVec> blocks;
    for (unsigned i = 0; i < 64; i++) {
        BitVec b(kBlockBits);
        b.randomize(rng);
        if (i % 4 == 1) {
            for (unsigned pos = 0; pos + chunk_bits <= kBlockBits;
                 pos += 2 * chunk_bits)
                b.setField(pos, chunk_bits, 0);
        } else if (i % 4 == 3 && i > 0) {
            b = blocks[i - 1];
            b.flipBit(i % kBlockBits);
        }
        blocks.push_back(b);
    }
    return blocks;
}

core::DescConfig
linkConfig()
{
    core::DescConfig cfg;
    cfg.bus_wires = 128;
    cfg.chunk_bits = 4;
    cfg.skip = core::SkipMode::Zero;
    return cfg;
}

double
benchLink(std::uint64_t blocks_n)
{
    // Auto mode: no hooks attached, so this measures the closed-form
    // fast path (the production configuration).
    core::DescLink link(linkConfig());
    link.setMode(core::LinkMode::Auto);
    auto blocks = makeBlocks(4);
    std::uint64_t sink = 0;
    auto t0 = Clock::now();
    auto reads = envReads();
    for (std::uint64_t i = 0; i < blocks_n; i++)
        sink += link.transferBlock(blocks[i & 63]).cycles;
    double dt = secondsSince(t0);
    assertNoEnvReads(reads, "link fast-path kernel");
    if (sink == 0)
        std::fprintf(stderr, "impossible\n");
    return double(blocks_n) / dt;
}

double
benchLinkTicked(std::uint64_t blocks_n)
{
    // The cycle-accurate reference loop, kept tracked so a regression
    // in the fallback (VCD export, fault injection) stays visible.
    core::DescLink link(linkConfig());
    link.setMode(core::LinkMode::Ticked);
    auto blocks = makeBlocks(4);
    std::uint64_t sink = 0;
    auto t0 = Clock::now();
    auto reads = envReads();
    for (std::uint64_t i = 0; i < blocks_n; i++)
        sink += link.transferBlock(blocks[i & 63]).cycles;
    double dt = secondsSince(t0);
    assertNoEnvReads(reads, "link ticked kernel");
    if (sink == 0)
        std::fprintf(stderr, "impossible\n");
    return double(blocks_n) / dt;
}

double
benchLinkTickedVcd(std::uint64_t blocks_n, const std::string &scratch)
{
    // The ticked loop with a VCD wire observer attached: what a
    // waveform export costs per block, tracked separately from the
    // bare ticked loop so the batched emission path (plane-diff
    // staging, dirty-list timesteps) stays honest.
    core::DescLink link(linkConfig());
    link.setMode(core::LinkMode::Ticked);
    sim::VcdWriter vcd;
    if (!vcd.open(scratch)) {
        std::fprintf(stderr, "cannot open VCD scratch file %s\n",
                     scratch.c_str());
        std::exit(1);
    }
    auto sigs = vcd.addBundle("bench", linkConfig().activeWires());
    vcd.endHeader();
    link.setWireHook([&](Cycle t, const core::WireBundle &w) {
        vcd.sampleBundle(sigs, t, w);
    });
    auto blocks = makeBlocks(4);
    std::uint64_t sink = 0;
    auto t0 = Clock::now();
    auto reads = envReads();
    for (std::uint64_t i = 0; i < blocks_n; i++)
        sink += link.transferBlock(blocks[i & 63]).cycles;
    double dt = secondsSince(t0);
    assertNoEnvReads(reads, "link ticked+vcd kernel");
    vcd.close();
    std::remove(scratch.c_str());
    if (sink == 0)
        std::fprintf(stderr, "impossible\n");
    return double(blocks_n) / dt;
}

double
benchScheme(std::uint64_t blocks_n)
{
    core::DescScheme scheme(linkConfig());
    auto blocks = makeBlocks(4);
    std::uint64_t sink = 0;
    auto t0 = Clock::now();
    auto reads = envReads();
    for (std::uint64_t i = 0; i < blocks_n; i++)
        sink += scheme.transfer(blocks[i & 63]).cycles;
    double dt = secondsSince(t0);
    assertNoEnvReads(reads, "scheme kernel");
    if (sink == 0)
        std::fprintf(stderr, "impossible\n");
    return double(blocks_n) / dt;
}

double
benchChunkStats(std::uint64_t blocks_n)
{
    core::ChunkStats stats(4, 128);
    auto blocks = makeBlocks(4);
    auto t0 = Clock::now();
    auto reads = envReads();
    for (std::uint64_t i = 0; i < blocks_n; i++)
        stats.observe(blocks[i & 63]);
    double dt = secondsSince(t0);
    assertNoEnvReads(reads, "chunkstats kernel");
    if (stats.totalChunks() == 0)
        std::fprintf(stderr, "impossible\n");
    return double(blocks_n) / dt;
}

sim::SystemConfig
benchSystemConfig(std::uint64_t insts)
{
    auto cfg = sim::baselineConfig(workloads::parallelApps()[0]);
    cfg.insts_per_thread = insts;
    sim::applyScheme(cfg, encoding::SchemeKind::DescZeroSkip);
    return cfg;
}

double
benchRunSystem(std::uint64_t insts, unsigned reps, std::uint64_t *cycles)
{
    auto cfg = benchSystemConfig(insts);

    double best = 0.0;
    auto reads = envReads();
    for (unsigned r = 0; r < reps; r++) {
        auto t0 = Clock::now();
        auto result = sim::runSystem(cfg);
        double rate = double(result.cycles) / secondsSince(t0);
        *cycles = result.cycles;
        if (rate > best)
            best = rate;
    }
    // Depends on the warm-up run in main() having already triggered
    // every lazily-memoized knob runSystem consults.
    assertNoEnvReads(reads, "runsystem");
    return best;
}

/**
 * The same workload with every engine pinned to its cycle-accurate
 * reference (ticked cores, per-event L2 transactions, scalar
 * encoders, ticked links). Tracked so a regression in the fallbacks
 * stays visible, and doubling as an equivalence probe: the cycle
 * count must match the fast-path run exactly.
 */
double
benchRunSystemTicked(std::uint64_t insts, unsigned reps,
                     std::uint64_t *cycles)
{
    cpu::setDefaultCoreMode(cpu::CoreMode::Ticked);
    cache::setDefaultL2Mode(cache::L2Mode::Event);
    encoding::setDefaultEncoderMode(encoding::EncoderMode::Scalar);
    core::setDefaultLinkMode(core::LinkMode::Ticked);
    double rate = benchRunSystem(insts, reps, cycles);
    cpu::setDefaultCoreMode(std::nullopt);
    cache::setDefaultL2Mode(std::nullopt);
    encoding::setDefaultEncoderMode(std::nullopt);
    core::setDefaultLinkMode(std::nullopt);
    return rate;
}

/**
 * Cost of the profiler when it is OFF, as a percentage of a
 * runsystem execution: (scopes per run) x (ns per disabled scope)
 * against the disabled run's wall time. The acceptance contract is
 * < 1%; CI fails the gate above 5%.
 */
double
benchProfOverheadPct(std::uint64_t insts, double disabled_rate,
                     std::uint64_t cycles, bool quick)
{
    // Nanoseconds per disabled scope. The barrier keeps the compiler
    // from hoisting the enabled() load (and with it the whole scope)
    // out of the loop.
    const std::uint64_t iters = quick ? 5'000'000 : 50'000'000;
    prof::setEnabled(false);
    auto t0 = Clock::now();
    auto reads = envReads();
    for (std::uint64_t i = 0; i < iters; i++) {
        DESC_PROF_SCOPE(Encoder);
        asm volatile("" ::: "memory");
    }
    double ns_per_scope = secondsSince(t0) * 1e9 / double(iters);
    assertNoEnvReads(reads, "disabled-profiler scope loop");

    // Scopes executed by one runsystem workload, counted live.
    auto cfg = benchSystemConfig(insts);
    prof::setEnabled(true);
    prof::Profile base = prof::threadProfile();
    auto result = sim::runSystem(cfg);
    std::uint64_t scopes = prof::deltaSince(base).scopes();
    prof::setEnabled(false);
    if (result.cycles != cycles)
        std::fprintf(stderr,
                     "warning: profiled run diverged (%llu vs %llu "
                     "cycles)\n",
                     (unsigned long long)result.cycles,
                     (unsigned long long)cycles);

    double run_seconds = double(cycles) / disabled_rate;
    return 100.0 * double(scopes) * ns_per_scope / 1e9 / run_seconds;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "BENCH_kernel.json";
    for (int i = 1; i + 1 < argc; i++) {
        if (std::strcmp(argv[i], "--out") == 0)
            out = argv[i + 1];
    }
    bool quick = desc::env::isSet(desc::env::Var::BenchQuick);

    // One throwaway run touches every lazily-memoized knob (engine
    // modes, sim scale, trace mask, profiler spec, snapshot cadence)
    // so the measured regions below can hold the registry's
    // steady-state contract: zero environment reads.
    {
        auto cfg = benchSystemConfig(200);
        (void)sim::runSystem(cfg);
    }

    std::uint64_t ev_n = quick ? 200'000 : 2'000'000;
    std::uint64_t link_n = quick ? 20'000 : 200'000;
    std::uint64_t link_ticked_n = quick ? 2'000 : 20'000;
    std::uint64_t scheme_n = quick ? 20'000 : 200'000;
    std::uint64_t stats_n = quick ? 20'000 : 200'000;
    std::uint64_t insts = quick ? 1'000 : 3'000;
    unsigned reps = quick ? 1 : 5;

    double ev = benchEventQueue(ev_n);
    std::fprintf(stderr, "eventq:    %12.0f events/sec\n", ev);
    double link = benchLink(link_n);
    std::fprintf(stderr, "link:      %12.0f blocks/sec\n", link);
    double link_ticked = benchLinkTicked(link_ticked_n);
    std::fprintf(stderr, "link-tick: %12.0f blocks/sec\n", link_ticked);
    double link_vcd = benchLinkTickedVcd(link_ticked_n,
                                         out + ".vcd-scratch");
    std::fprintf(stderr, "link-vcd:  %12.0f blocks/sec\n", link_vcd);
    double scheme = benchScheme(scheme_n);
    std::fprintf(stderr, "scheme:    %12.0f blocks/sec\n", scheme);
    double cstats = benchChunkStats(stats_n);
    std::fprintf(stderr, "chunkstats:%12.0f blocks/sec\n", cstats);
    std::uint64_t cycles = 0;
    double rs = benchRunSystem(insts, reps, &cycles);
    std::fprintf(stderr, "runsystem: %12.0f sim-cycles/sec (%llu cycles)\n",
                 rs, (unsigned long long)cycles);
    std::uint64_t cycles_ticked = 0;
    double rs_ticked = benchRunSystemTicked(insts, reps, &cycles_ticked);
    std::fprintf(stderr, "runsys-tk: %12.0f sim-cycles/sec (%llu cycles)\n",
                 rs_ticked, (unsigned long long)cycles_ticked);
    if (cycles_ticked != cycles) {
        std::fprintf(stderr,
                     "FAIL: ticked reference diverged (%llu vs %llu "
                     "cycles)\n",
                     (unsigned long long)cycles_ticked,
                     (unsigned long long)cycles);
        return 1;
    }
    double prof_pct = benchProfOverheadPct(insts, rs, cycles, quick);
    std::fprintf(stderr, "prof-off:  %12.3f %% of a runsystem run\n",
                 prof_pct);

    std::FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", out.c_str());
        return 1;
    }
    std::fprintf(f,
        "{\n"
        "  \"format\": \"desc-bench-kernel\",\n"
        "  \"version\": 1,\n"
        "  \"quick\": %s,\n"
        "  \"metrics\": {\n"
        "    \"eventq_events_per_sec\": %.0f,\n"
        "    \"link_blocks_per_sec\": %.0f,\n"
        "    \"link_ticked_blocks_per_sec\": %.0f,\n"
        "    \"link_ticked_vcd_blocks_per_sec\": %.0f,\n"
        "    \"scheme_blocks_per_sec\": %.0f,\n"
        "    \"chunkstats_blocks_per_sec\": %.0f,\n"
        "    \"runsystem_cycles_per_sec\": %.0f,\n"
        "    \"runsystem_ticked_cycles_per_sec\": %.0f,\n"
        "    \"runsystem_prof_overhead_pct\": %.3f\n"
        "  },\n"
        "  \"check\": { \"runsystem_cycles\": %llu }\n"
        "}\n",
        quick ? "true" : "false", ev, link, link_ticked, link_vcd,
        scheme, cstats, rs, rs_ticked, prof_pct,
        (unsigned long long)cycles);
    std::fclose(f);
    return 0;
}
