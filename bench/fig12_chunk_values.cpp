/**
 * @file
 * Figure 12: distribution of the four-bit chunk values transferred
 * between the L2 cache controller and the data arrays, pooled over
 * the sixteen parallel applications. Paper: 31% zero chunks with a
 * relatively uniform non-zero tail.
 */

#include "benchutil.hh"

using namespace desc;

int
main()
{
    Histogram pooled(16);
    auto runs = bench::runAllApps([](const workloads::AppParams &app) {
        auto cfg = sim::baselineConfig(app);
        cfg.insts_per_thread = bench::kAppBudget;
        cfg.l2.collect_chunk_stats = true;
        return cfg;
    });
    for (const auto &run : runs)
        pooled.merge(run.result.chunks.histogram());

    Table t({"chunk value", "frequency"});
    for (unsigned v = 0; v < 16; v++)
        t.row().add(std::uint64_t{v}).add(pooled.fraction(v), 4);
    t.print("Figure 12: distribution of transferred 4-bit chunk values "
            "(paper: value 0 at ~0.31)");

    std::printf("zero-chunk fraction: %.3f (paper ~0.31)\n",
                pooled.fraction(0));
    return 0;
}
