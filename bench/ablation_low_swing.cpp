/**
 * @file
 * Ablation (Sections 1-2): DESC composes with low-swing interconnect.
 *
 * The paper argues that activity-factor techniques like DESC are
 * "broadly applicable since they can be used on interconnects with
 * different characteristics (e.g., transmission lines or low-swing
 * wires)". This harness runs binary and zero-skipped DESC on both
 * full-swing and low-swing H-trees: low-swing cuts the per-transition
 * cost, and DESC still removes the same fraction of transitions on
 * top of it.
 */

#include <cstdio>

#include "benchutil.hh"

using namespace desc;
using encoding::SchemeKind;

int
main()
{
    auto apps = bench::sweepApps();

    auto evaluate = [&](SchemeKind kind, bool low_swing) {
        double e = 0, t = 0;
        for (const auto &app : apps) {
            auto cfg = sim::baselineConfig(app);
            cfg.insts_per_thread = bench::kSweepBudget;
            sim::applyScheme(cfg, kind);
            cfg.l2.org.low_swing = low_swing;
            auto run = sim::runApp(cfg);
            e += run.l2.total();
            t += double(run.result.cycles);
        }
        return std::make_pair(e, t);
    };

    auto [bin_fs_e, bin_fs_t] = evaluate(SchemeKind::Binary, false);
    auto [desc_fs_e, desc_fs_t] =
        evaluate(SchemeKind::DescZeroSkip, false);
    auto [bin_ls_e, bin_ls_t] = evaluate(SchemeKind::Binary, true);
    auto [desc_ls_e, desc_ls_t] =
        evaluate(SchemeKind::DescZeroSkip, true);

    Table t({"interconnect", "scheme", "L2 energy (norm)",
             "exec time (norm)"});
    t.row().add("full-swing").add("Binary").add(1.0, 3).add(1.0, 3);
    t.row().add("full-swing").add("ZS-DESC")
        .add(desc_fs_e / bin_fs_e, 3).add(desc_fs_t / bin_fs_t, 3);
    t.row().add("low-swing").add("Binary")
        .add(bin_ls_e / bin_fs_e, 3).add(bin_ls_t / bin_fs_t, 3);
    t.row().add("low-swing").add("ZS-DESC")
        .add(desc_ls_e / bin_fs_e, 3).add(desc_ls_t / bin_fs_t, 3);
    t.print("Ablation: DESC on full-swing vs low-swing H-trees, "
            "normalized to full-swing binary");

    std::printf("DESC reduction on full-swing wires: %.2fx; on "
                "low-swing wires: %.2fx (composes: %s)\n",
                bin_fs_e / desc_fs_e, bin_ls_e / desc_ls_e,
                bin_ls_e / desc_ls_e > 1.2 ? "yes" : "NO");
    return 0;
}
