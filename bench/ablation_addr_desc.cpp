/**
 * @file
 * Ablation (Section 3.2.1): why DESC is not applied to the address
 * and control wires.
 *
 * The paper transmits addresses with conventional binary encoding
 * because "the physical wire activity caused by the address bits in
 * conventional binary encoding is relatively low, which makes it
 * inefficient to apply DESC to the address wires." This harness runs
 * real modeled address streams through both encodings on a 32-bit
 * address bus and compares transitions and occupancy.
 */

#include <cstdio>

#include "benchutil.hh"
#include "core/descscheme.hh"
#include "encoding/binary.hh"
#include "workloads/stream.hh"

using namespace desc;
using namespace desc::core;

int
main()
{
    const unsigned kOps = 4000;

    double bin_flips = 0, bin_cycles = 0;
    double desc_flips = 0, desc_cycles = 0;
    double data_activity = 0;
    std::uint64_t ops = 0;

    for (const auto &app : workloads::parallelApps()) {
        workloads::ValueModel values(app, 3);
        workloads::AppStream stream(app, values, 0, 0, 3);

        encoding::SchemeConfig bcfg;
        bcfg.bus_wires = 32;
        bcfg.block_bits = 32;
        encoding::BinaryScheme binary(bcfg);

        DescConfig dcfg;
        dcfg.bus_wires = 8;
        dcfg.chunk_bits = 4;
        dcfg.block_bits = 32;
        dcfg.skip = SkipMode::Zero;
        DescScheme desc_addr(dcfg);

        cpu::MemOp op;
        for (unsigned i = 0; i < kOps / 16; i++) {
            stream.nextGap(op);
            // L2 request addresses are block-aligned; take the low 32
            // address bits above the block offset.
            BitVec addr(32, (op.addr >> 6) & 0xffffffffull);
            auto b = binary.transfer(addr);
            auto d = desc_addr.transfer(addr);
            bin_flips += double(b.totalFlips());
            bin_cycles += double(b.cycles);
            desc_flips += double(d.totalFlips());
            desc_cycles += double(d.cycles);
            ops++;
        }
    }

    data_activity = bin_flips / double(ops) / 32.0;

    Table t({"encoding", "flips/request", "activity/wire",
             "cycles/request"});
    t.row()
        .add("binary (32 wires)")
        .add(bin_flips / double(ops), 2)
        .add(data_activity, 3)
        .add(bin_cycles / double(ops), 2);
    t.row()
        .add("zero-skip DESC (8 wires)")
        .add(desc_flips / double(ops), 2)
        .add(desc_flips / double(ops) / 8.0, 3)
        .add(desc_cycles / double(ops), 2);
    t.print("Ablation: DESC on the address wires (paper opts out: "
            "binary address activity is already low)");

    std::printf("DESC flip ratio on addresses: %.2fx for %.1fx the "
                "latency -> %s\n",
                bin_flips / desc_flips,
                desc_cycles / bin_cycles,
                desc_flips * 1.0 < bin_flips
                    ? "marginal energy win, large latency loss"
                    : "no win at all");
    return 0;
}
