/**
 * @file
 * Figure 21: average L2 hit delay (cycles) under conventional binary
 * encoding and zero-skipped DESC on 64- and 128-wire data buses, per
 * application. Paper: DESC adds 31.2 cycles at 64 wires and 8.45 at
 * 128 wires (10% / 2% slowdowns).
 */

#include "benchutil.hh"

using namespace desc;
using encoding::SchemeKind;

int
main()
{
    struct Config
    {
        const char *name;
        SchemeKind kind;
        unsigned wires;
    };
    const Config configs[] = {
        {"64-bit Binary", SchemeKind::Binary, 64},
        {"128-bit Binary", SchemeKind::Binary, 128},
        {"64-bit DESC", SchemeKind::DescZeroSkip, 64},
        {"128-bit DESC", SchemeKind::DescZeroSkip, 128},
    };

    const auto &apps = workloads::parallelApps();
    std::vector<std::vector<double>> delay(4);
    for (unsigned c = 0; c < 4; c++) {
        std::fprintf(stderr, "config %s\n", configs[c].name);
        for (const auto &app : apps) {
            auto cfg = sim::baselineConfig(app);
            cfg.insts_per_thread = bench::kAppBudget;
            sim::applyScheme(cfg, configs[c].kind);
            cfg.l2.org.bus_wires = configs[c].wires;
            cfg.l2.scheme_cfg.bus_wires = configs[c].wires;
            delay[c].push_back(sim::runApp(cfg).result.avgHitDelay());
        }
    }

    Table t({"app", "64-bit Binary", "128-bit Binary", "64-bit DESC",
             "128-bit DESC"});
    for (std::size_t a = 0; a < apps.size(); a++) {
        t.row().add(apps[a].name);
        for (unsigned c = 0; c < 4; c++)
            t.add(delay[c][a], 2);
    }
    t.row().add("Average");
    for (unsigned c = 0; c < 4; c++) {
        double sum = 0;
        for (double d : delay[c])
            sum += d;
        t.add(sum / double(apps.size()), 2);
    }
    t.print("Figure 21: average L2 hit delay in cycles (paper: DESC "
            "adds ~31.2 at 64 wires, ~8.45 at 128 wires)");
    return 0;
}
