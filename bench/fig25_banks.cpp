/**
 * @file
 * Figure 25: sensitivity of zero-skipped DESC to the number of L2
 * banks (1..64): execution time and L2 energy, averaged over the
 * applications, normalized to the 8-bank binary baseline. Paper: big
 * improvement from 1 to 2 banks, minimum around 8, worse beyond due
 * to per-bank overheads.
 */

#include "benchutil.hh"

using namespace desc;

int
main()
{
    auto apps = bench::sweepApps();

    auto evaluate = [&](encoding::SchemeKind kind, unsigned banks,
                        double *energy, double *time) {
        double e = 0, c = 0;
        for (const auto &app : apps) {
            auto cfg = sim::baselineConfig(app);
            cfg.insts_per_thread = bench::kSweepBudget;
            sim::applyScheme(cfg, kind);
            cfg.l2.org.banks = banks;
            auto run = sim::runApp(cfg);
            e += run.l2.total();
            c += double(run.result.cycles);
        }
        *energy = e;
        *time = c;
    };

    double base_e, base_t;
    evaluate(encoding::SchemeKind::Binary, 8, &base_e, &base_t);

    Table t({"banks", "exec time (norm)", "L2 energy (norm)"});
    for (unsigned banks : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        std::fprintf(stderr, "banks=%u\n", banks);
        double e, c;
        evaluate(encoding::SchemeKind::DescZeroSkip, banks, &e, &c);
        t.row().add(std::uint64_t{banks}).add(c / base_t, 3)
            .add(e / base_e, 3);
    }
    t.print("Figure 25: zero-skipped DESC vs bank count, normalized "
            "to the 8-bank binary baseline (paper: best around 8 "
            "banks)");
    return 0;
}
