/**
 * @file
 * Ablation (Section 3.3): adaptive frequent-value skipping vs zero
 * and last-value skipping.
 *
 * The paper "also considered adaptive techniques for detecting and
 * encoding frequent non-zero chunks at runtime; however, the
 * attainable delay and energy improvements are not appreciable"
 * because the non-zero chunk values are nearly uniform (Figure 12).
 * This harness runs all four skip policies over the same modeled
 * block streams and reports transitions and transfer windows — the
 * adaptive policy should land at (or behind) zero skipping.
 */

#include <cstdio>

#include "benchutil.hh"
#include "core/descscheme.hh"
#include "workloads/valuemodel.hh"

using namespace desc;
using namespace desc::core;

int
main()
{
    const SkipMode modes[] = {SkipMode::None, SkipMode::Zero,
                              SkipMode::LastValue, SkipMode::Adaptive};
    const unsigned kBlocks = 3000;

    struct Row
    {
        SkipMode mode;
        double flips, skipped, cycles, blocks;
    };
    std::vector<Row> rows;
    for (SkipMode mode : modes) {
        double flips = 0, skipped = 0, cycles = 0, blocks = 0;
        for (const auto &app : workloads::parallelApps()) {
            DescConfig cfg;
            cfg.skip = mode;
            DescScheme scheme(cfg);
            workloads::ValueModel values(app, 7);
            BitVec bv(kBlockBits);
            for (unsigned b = 0; b < kBlocks / 16; b++) {
                auto blk = values.block(Addr(b) * 64);
                bv.fromBytes(reinterpret_cast<const std::uint8_t *>(
                                 blk.data()),
                             64);
                auto r = scheme.transfer(bv);
                flips += double(r.totalFlips());
                skipped += double(r.skipped);
                cycles += double(r.cycles);
                blocks += 1;
            }
        }
        rows.push_back(Row{mode, flips, skipped, cycles, blocks});
    }

    double zero_flips = rows[1].flips; // SkipMode::Zero
    Table t({"policy", "flips/block", "skipped/block", "window",
             "vs zero-skip"});
    for (const auto &r : rows) {
        t.row()
            .add(skipModeName(r.mode))
            .add(r.flips / r.blocks, 1)
            .add(r.skipped / r.blocks, 1)
            .add(r.cycles / r.blocks, 1)
            .add(r.flips / zero_flips, 3);
    }
    t.print("Ablation: skip-policy comparison over the modeled app "
            "streams (paper: adaptive gains are 'not appreciable' "
            "over zero skipping)");
    std::printf("note: like last-value skipping, the adaptive policy "
                "needs per-wire tracking tables at the cache\n"
                "controller whose access energy consumes the residual "
                "wire-transition advantage (Section 5.2).\n");
    return 0;
}
