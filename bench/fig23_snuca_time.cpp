/**
 * @file
 * Figure 23: execution time of an 8MB S-NUCA-1 cache (128 banks,
 * 128-bit ports, statically routed, 3..13-cycle bank access) with
 * zero-skipped DESC, normalized to binary S-NUCA-1, per application.
 * Paper: ~1% execution-time penalty.
 */

#include "benchutil.hh"

using namespace desc;

namespace {

sim::SystemConfig
snucaConfig(const workloads::AppParams &app, bool use_desc)
{
    auto cfg = sim::baselineConfig(app);
    cfg.insts_per_thread = bench::kAppBudget;
    cfg.l2.snuca = true;
    cfg.l2.org.banks = 128;
    cfg.l2.org.bus_wires = 128;
    cfg.l2.scheme_cfg.bus_wires = 128;
    if (use_desc)
        sim::applyScheme(cfg, encoding::SchemeKind::DescZeroSkip);
    return cfg;
}

} // namespace

int
main()
{
    const auto &apps = workloads::parallelApps();
    Table t({"app", "exec time (norm)"});
    std::vector<double> norms;
    for (const auto &app : apps) {
        std::fprintf(stderr, "  running %s...\n", app.name);
        auto base = sim::runApp(snucaConfig(app, false));
        auto with_desc = sim::runApp(snucaConfig(app, true));
        double norm = double(with_desc.result.cycles)
            / double(base.result.cycles);
        norms.push_back(norm);
        t.row().add(app.name).add(norm, 4);
    }
    t.row().add("Geomean").add(geomean(norms), 4);
    t.print("Figure 23: S-NUCA-1 + zero-skipped DESC execution time, "
            "normalized to binary S-NUCA-1 (paper ~1.01)");
    return 0;
}
