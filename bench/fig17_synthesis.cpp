/**
 * @file
 * Figure 17: synthesis results — area, peak power, and logic delay of
 * the DESC transmitter and receiver, each comprising 128 chunk units,
 * at 22 nm (scaled from the 45 nm FreePDK synthesis via Table 3).
 * Paper: ~2120 um^2 per mat interface, 46 mW peak for a TX+RX pair,
 * 625 ps added to the round-trip access.
 */

#include <cstdio>

#include "common/table.hh"
#include "energy/synthesis.hh"

using namespace desc;
using namespace desc::energy;

int
main()
{
    DescSynthesisModel m22(128, 4, tech22());
    DescSynthesisModel m45(128, 4, tech45());

    Table t({"node", "unit", "area (um^2)", "peak power (mW)",
             "delay (ns)"});
    auto add = [&](const char *node, const char *unit,
                   const SynthesisResult &r) {
        t.row().add(node).add(unit).add(r.area_um2, 0)
            .add(r.peak_power_mw, 1).add(r.delay_ns, 3);
    };
    add("45nm", "transmitter", m45.transmitter());
    add("45nm", "receiver", m45.receiver());
    add("22nm", "transmitter", m22.transmitter());
    add("22nm", "receiver", m22.receiver());
    t.print("Figure 17: DESC interface synthesis (128 chunks)");

    std::printf("22nm TX+RX peak power: %.1f mW (paper 46 mW)\n",
                m22.transmitter().peak_power_mw
                    + m22.receiver().peak_power_mw);
    std::printf("22nm round-trip logic delay: %.0f ps (paper 625 ps)\n",
                m22.roundTripDelayNs() * 1e3);
    return 0;
}
