/**
 * @file
 * Figure 20: execution time of every data-communication scheme,
 * averaged over the sixteen parallel applications and normalized to
 * binary encoding. Paper: the skipped DESC variants cost <2%, the
 * compression/invert baselines ~1%.
 */

#include "benchutil.hh"

using namespace desc;
using encoding::SchemeKind;

int
main()
{
    const auto &apps = workloads::parallelApps();
    const unsigned n = encoding::kNumSchemes;

    std::vector<std::vector<double>> cycles(n);
    for (unsigned s = 0; s < n; s++) {
        SchemeKind kind = core::allSchemeKinds()[s];
        std::fprintf(stderr, "scheme %s\n",
                     sim::shortSchemeName(kind).c_str());
        for (const auto &app : apps) {
            auto cfg = sim::baselineConfig(app);
            cfg.insts_per_thread = bench::kAppBudget;
            sim::applyScheme(cfg, kind);
            cycles[s].push_back(double(sim::runApp(cfg).result.cycles));
        }
    }

    Table t({"scheme", "execution time (norm)"});
    for (unsigned s = 0; s < n; s++) {
        std::vector<double> norm;
        for (std::size_t a = 0; a < apps.size(); a++)
            norm.push_back(cycles[s][a] / cycles[0][a]);
        t.row()
            .add(sim::shortSchemeName(core::allSchemeKinds()[s]))
            .add(geomean(norm), 4);
    }
    t.print("Figure 20: execution time normalized to binary encoding "
            "(paper: ZS/LVS DESC < 1.02, baselines ~1.01)");
    return 0;
}
