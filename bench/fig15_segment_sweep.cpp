/**
 * @file
 * Figure 15: L2 energy of the baseline encodings as a function of the
 * data segment size (4..64 bits), normalized to conventional binary.
 * The best configuration of each scheme (the paper's stars) is chosen
 * as its baseline for the later comparisons.
 */

#include "benchutil.hh"

using namespace desc;
using encoding::SchemeKind;

int
main()
{
    const SchemeKind schemes[] = {
        SchemeKind::DynamicZeroCompression,
        SchemeKind::BusInvert,
        SchemeKind::ZeroSkipBusInvert,
        SchemeKind::EncodedZeroSkipBusInvert,
    };
    const unsigned segments[] = {64, 32, 16, 8, 4};
    auto apps = bench::sweepApps();

    // One flat batch: the binary reference first, then every
    // (scheme, segment, app) point in sweep order.
    std::vector<sim::SystemConfig> cfgs;
    for (const auto &app : apps) {
        auto cfg = sim::baselineConfig(app);
        cfg.insts_per_thread = bench::kSweepBudget;
        cfgs.push_back(cfg);
    }
    for (SchemeKind kind : schemes) {
        for (unsigned seg : segments) {
            for (const auto &app : apps) {
                auto cfg = sim::baselineConfig(app);
                cfg.insts_per_thread = bench::kSweepBudget;
                sim::applyScheme(cfg, kind);
                cfg.l2.scheme_cfg.segment_bits = seg;
                cfgs.push_back(cfg);
            }
        }
    }
    auto runs = bench::runConfigs(cfgs);

    std::size_t next = 0;
    double binary_energy = 0;
    for (std::size_t i = 0; i < apps.size(); i++)
        binary_energy += runs[next++].l2.total();

    Table t({"scheme", "64-bit", "32-bit", "16-bit", "8-bit", "4-bit",
             "best"});
    for (SchemeKind kind : schemes) {
        t.row().add(sim::shortSchemeName(kind));
        double best = 1e30;
        unsigned best_seg = 0;
        std::vector<double> cells;
        for (unsigned seg : segments) {
            double e = 0;
            for (std::size_t i = 0; i < apps.size(); i++)
                e += runs[next++].l2.total();
            double norm = e / binary_energy;
            cells.push_back(norm);
            if (norm < best) {
                best = norm;
                best_seg = seg;
            }
        }
        for (double c : cells)
            t.add(c, 3);
        t.add(std::to_string(best_seg) + "-bit *");
    }
    t.print("Figure 15: L2 energy vs segment size, normalized to "
            "binary encoding (stars mark each scheme's best)");
    return 0;
}
