#!/usr/bin/env python3
"""desc-analyze: AST-grade semantic checks for the DESC simulator.

Where desc-lint (tools/lint/desc_lint.py) pattern-matches tokens,
desc-analyze parses every translation unit in compile_commands.json
with libclang (clang.cindex) and walks real ASTs, so it can express
rules the regex linter cannot:

  env-registry       every std::getenv call outside src/common/env.cc
                     is a finding: all DESC_* knobs must be declared
                     once in src/common/env_registry.def and read
                     through the typed desc::env registry
  hot-path-alloc     real allocation detection in the annotated
                     hot-path file set: new/delete expressions,
                     malloc-family calls, std::function construction,
                     and per-call local containers that the token scan
                     cannot see (declared types, hidden conversions)
  event-lifetime     types deriving desc::sim::Event must stay
                     non-copyable and must never be constructed by
                     value on the stack, passed, or returned by value
                     (the intrusive-kernel contract: events are pinned
                     while scheduled)
  tick-narrowing     implicit conversion of a Cycle/Addr/Picoseconds-
                     typed expression into a narrower integer type —
                     the silent-truncation class of bug the batch-
                     horizon math is most exposed to; an explicit cast
                     records intent and is accepted

Degrades gracefully: when python clang bindings or a loadable
libclang are absent, the AST checks exit with status 77 (the ctest
SKIP_RETURN_CODE) and a notice, mirroring the clang-tidy presets.
The registry tooling (--list-env, --check-env-docs) is pure text
processing and always available.

Usage:
  desc_analyze.py [--root DIR] [--compdb DIR]   analyze the tree
  desc_analyze.py --self-test                   fixture suite
  desc_analyze.py --probe                       exit 0 iff libclang works
  desc_analyze.py --list-env                    print the env-var table
  desc_analyze.py --check-env-docs [README]     table matches the docs
Findings can be suppressed per line with  // analyze:allow(<check>)
and a reason.
"""

import argparse
import json
import re
import shlex
import sys
from pathlib import Path

EXIT_SKIP = 77  # ctest SKIP_RETURN_CODE: toolchain absent, not a failure

TOOL_ROOT = Path(__file__).resolve().parent
sys.path.insert(0, str(TOOL_ROOT.parent / "lint"))
from desc_lint import HOT_PATH_FILES  # single source of truth # noqa: E402

# Wide simulated-quantity typedefs (src/common/types.hh): implicitly
# narrowing any of these into a smaller integer type is a finding.
WIDE_TYPEDEFS = {"Cycle", "Addr", "Picoseconds",
                 "desc::Cycle", "desc::Addr", "desc::Picoseconds"}

# malloc-family callees banned in hot-path files.
ALLOC_CALLEES = {"malloc", "calloc", "realloc", "free", "aligned_alloc",
                 "strdup", "operator new", "operator new[]",
                 "operator delete", "operator delete[]"}

# Local variables of these std:: templates own heap storage, so a
# per-call local in a hot-path file is a hidden allocation.
ALLOCATING_LOCALS = re.compile(
    r"^(?:const\s+)?std::("
    r"vector|basic_string|string|deque|list|forward_list|map|set|"
    r"multimap|multiset|unordered_map|unordered_set|unordered_multimap|"
    r"unordered_multiset|function)\b")

ALLOW_RE = re.compile(r"analyze:allow\(([a-z-]+)\)")


class Finding:
    def __init__(self, check, path, line, message):
        self.check = check
        self.path = path
        self.line = line
        self.message = message

    def key(self):
        return (self.check, self.path, self.line, self.message)

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


# --- env registry parsing (pure text, no libclang) -----------------

REGISTRY_DEF = "src/common/env_registry.def"


def parse_registry(root):
    """Return the DESC_ENV_VAR entries of env_registry.def, in file
    order, as dicts with id/name/type/default/doc."""
    text = (root / REGISTRY_DEF).read_text()
    entries = []
    for m in re.finditer(r"^DESC_ENV_VAR\(", text, re.M):
        depth, i = 0, m.end() - 1
        start = i + 1
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        body = text[start:i]
        # Split top-level commas, then fold adjacent string literals.
        args, level, cur = [], 0, []
        in_str = False
        j = 0
        while j < len(body):
            c = body[j]
            if in_str:
                cur.append(c)
                if c == "\\":
                    cur.append(body[j + 1])
                    j += 2
                    continue
                if c == '"':
                    in_str = False
            elif c == '"':
                in_str = True
                cur.append(c)
            elif c in "(<[":
                level += 1
                cur.append(c)
            elif c in ")>]":
                level -= 1
                cur.append(c)
            elif c == "," and level == 0:
                args.append("".join(cur).strip())
                cur = []
            else:
                cur.append(c)
            j += 1
        args.append("".join(cur).strip())

        def unquote(s):
            return "".join(re.findall(r'"((?:[^"\\]|\\.)*)"', s))

        if len(args) != 5:
            raise ValueError(
                f"{REGISTRY_DEF}: DESC_ENV_VAR with {len(args)} "
                f"arguments (want 5): {args[:2]}")
        entries.append({
            "id": args[0],
            "name": unquote(args[1]),
            "type": unquote(args[2]),
            "default": unquote(args[3]),
            "doc": unquote(args[4]),
        })
    return entries


ENV_TABLE_BEGIN = "<!-- desc-env-table-begin (desc_analyze.py --list-env) -->"
ENV_TABLE_END = "<!-- desc-env-table-end -->"


def env_table(root):
    """The generated markdown env-var table."""
    entries = parse_registry(root)
    rows = [("Variable", "Type", "Default", "Description"),
            ("---", "---", "---", "---")]
    for e in entries:
        rows.append((f"`{e['name']}`", e["type"], f"`{e['default']}`",
                     e["doc"]))
    widths = [max(len(r[c]) for r in rows) for c in range(3)]
    out = []
    for r in rows:
        cells = [r[c].ljust(widths[c]) for c in range(3)] + [r[3]]
        out.append("| " + " | ".join(cells) + " |")
    return "\n".join(out) + "\n"


def check_env_docs(root, readme):
    """Verify the committed README table matches --list-env output."""
    text = (root / readme).read_text()
    begin = text.find(ENV_TABLE_BEGIN)
    end = text.find(ENV_TABLE_END)
    if begin < 0 or end < 0:
        print(f"{readme}: missing {ENV_TABLE_BEGIN} / {ENV_TABLE_END} "
              f"markers")
        return False
    committed = text[begin + len(ENV_TABLE_BEGIN):end].strip("\n")
    generated = env_table(root).strip("\n")
    if committed != generated:
        print(f"{readme}: env-var table is stale; regenerate with "
              f"tools/analyze/desc_analyze.py --list-env")
        for got, want in zip((committed + "\n").splitlines(),
                             (generated + "\n").splitlines()):
            if got != want:
                print(f"  committed: {got}\n  generated: {want}")
                break
        return False
    print(f"{readme}: env-var table matches the registry "
          f"({len(parse_registry(root))} knobs)")
    return True


def registry_sanity(root):
    """Registry self-checks that need no toolchain: entries parse,
    are alphabetical by variable name, unique, and documented."""
    ok = True
    entries = parse_registry(root)
    names = [e["name"] for e in entries]
    if names != sorted(names):
        print(f"{REGISTRY_DEF}: entries are not alphabetical by name")
        ok = False
    if len(set(names)) != len(names):
        print(f"{REGISTRY_DEF}: duplicate variable names")
        ok = False
    for e in entries:
        if not e["name"].startswith("DESC_"):
            print(f"{REGISTRY_DEF}: {e['name']} lacks the DESC_ prefix")
            ok = False
        if len(e["doc"]) < 10:
            print(f"{REGISTRY_DEF}: {e['name']} has no usable doc "
                  f"string")
            ok = False
        if e["type"] not in ("int", "float", "bool", "enum", "flag",
                             "toggle", "path", "spec"):
            print(f"{REGISTRY_DEF}: {e['name']} has unknown type "
                  f"\"{e['type']}\"")
            ok = False
    # Every DESC_* environment string mentioned in src/ must be a
    # registered knob (catches a getenv smuggled through a macro as
    # well as stale docs in comments... no: comments are stripped).
    declared = set(names)
    helper_macros = {"DESC_ENV_VAR"}
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".cc", ".hh") or not path.is_file():
            continue
        text = path.read_text()
        for m in re.finditer(r'"(DESC_[A-Z][A-Z0-9_]*)"', text):
            name = m.group(1)
            if name not in declared and name not in helper_macros:
                line = text.count("\n", 0, m.start()) + 1
                rel = path.relative_to(root).as_posix()
                print(f"{rel}:{line}: string literal \"{name}\" is "
                      f"not a registered knob in {REGISTRY_DEF}")
                ok = False
    return ok


# --- libclang loading ----------------------------------------------


def load_cindex():
    """Import clang.cindex and confirm libclang actually loads.
    Returns the module or None."""
    try:
        import clang.cindex as ci
    except ImportError:
        return None
    try:
        ci.Index.create()
        return ci
    except Exception:
        pass
    if getattr(ci.Config, "loaded", False):
        return None
    # The default soname lookup failed; probe versioned sonames the
    # distro packages actually ship.
    import ctypes
    import ctypes.util
    for candidate in ("clang-19", "clang-18", "clang-17", "clang-16",
                      "clang-15", "clang-14", "clang"):
        found = ctypes.util.find_library(candidate)
        if not found:
            continue
        try:
            ctypes.CDLL(found)
        except OSError:
            continue
        try:
            ci.Config.set_library_file(found)
            ci.Index.create()
            return ci
        except Exception:
            return None  # set_library_file is one-shot
    return None


# --- AST checks ----------------------------------------------------


class Analyzer:
    def __init__(self, ci, root):
        self.ci = ci
        self.root = root
        self.index = ci.Index.create()
        self.findings = {}
        self.allow_cache = {}
        self.event_classes_seen = set()
        self.fn_stack = []

    # -- plumbing --

    def rel(self, location):
        if location.file is None:
            return None
        try:
            return Path(location.file.name).resolve() \
                .relative_to(self.root).as_posix()
        except ValueError:
            return None

    def allowed(self, rel, line, check):
        """True when the source line (or the one above it) carries an
        analyze:allow(<check>) marker."""
        if rel not in self.allow_cache:
            try:
                lines = (self.root / rel).read_text().splitlines()
            except OSError:
                lines = []
            self.allow_cache[rel] = lines
        lines = self.allow_cache[rel]
        for n in (line, line - 1):
            if 1 <= n <= len(lines):
                m = ALLOW_RE.search(lines[n - 1])
                if m and m.group(1) == check:
                    return True
        return False

    def report(self, check, cursor, message, scope="src/"):
        rel = self.rel(cursor.location)
        if rel is None:
            return
        if scope and not (rel.startswith(scope)
                          or "fixtures" in rel):
            return
        line = cursor.location.line
        if self.allowed(rel, line, check):
            return
        f = Finding(check, rel, line, message)
        self.findings[f.key()] = f

    def parse(self, source, args):
        ci = self.ci
        try:
            tu = self.index.parse(source, args=args)
        except ci.TranslationUnitLoadError as e:
            print(f"desc-analyze: cannot parse {source}: {e}",
                  file=sys.stderr)
            return None
        fatal = [d for d in tu.diagnostics if d.severity >= 4]
        if fatal:
            print(f"desc-analyze: fatal diagnostics parsing {source}:",
                  file=sys.stderr)
            for d in fatal[:5]:
                print(f"  {d}", file=sys.stderr)
            return None
        return tu

    # -- type helpers --

    def type_words(self, t):
        """Spelling of a (possibly sugared) type, without cv."""
        return t.spelling.replace("const ", "").replace("volatile ",
                                                        "").strip()

    def is_wide_typedef(self, t):
        return self.type_words(t) in WIDE_TYPEDEFS

    def int_width_bytes(self, t):
        """Byte width when t is a (canonical) integer type, else 0."""
        k = t.get_canonical().kind
        TK = self.ci.TypeKind
        widths = {
            TK.BOOL: 1, TK.CHAR_U: 1, TK.UCHAR: 1, TK.CHAR_S: 1,
            TK.SCHAR: 1, TK.CHAR16: 2, TK.USHORT: 2, TK.SHORT: 2,
            TK.WCHAR: 4, TK.CHAR32: 4, TK.UINT: 4, TK.INT: 4,
            TK.ULONG: 8, TK.LONG: 8, TK.ULONGLONG: 8, TK.LONGLONG: 8,
        }
        if k not in widths:
            return 0
        size = t.get_canonical().get_size()
        return size if size > 0 else widths[k]

    def expr_is_wide(self, cursor, depth=0):
        """True when the expression's type is one of the wide
        typedefs, directly or through an arithmetic combination of
        wide-typed operands (sugar is lost on binary results)."""
        if cursor is None or depth > 6:
            return False
        K = self.ci.CursorKind
        t = cursor.type
        if t is not None and self.is_wide_typedef(t):
            return True
        if t is not None and self.int_width_bytes(t) != 8:
            # A narrower subexpression cannot carry a wide value
            # (any narrowing happened further in, at its own site).
            if cursor.kind not in (K.UNEXPOSED_EXPR, K.PAREN_EXPR):
                return False
        for child in cursor.get_children():
            if child.kind in (K.CXX_STATIC_CAST_EXPR,
                              K.CSTYLE_CAST_EXPR,
                              K.CXX_FUNCTIONAL_CAST_EXPR,
                              K.CXX_REINTERPRET_CAST_EXPR,
                              K.LAMBDA_EXPR):
                continue  # explicit casts launder intent
            if self.expr_is_wide(child, depth + 1):
                return True
        return False

    def strip_sugar_expr(self, cursor):
        """Descend through implicit wrapper nodes to the interesting
        expression."""
        K = self.ci.CursorKind
        while True:
            kids = list(cursor.get_children())
            if cursor.kind in (K.UNEXPOSED_EXPR, K.PAREN_EXPR) \
                    and len(kids) == 1:
                cursor = kids[0]
                continue
            return cursor

    def is_explicit_cast(self, cursor):
        K = self.ci.CursorKind
        return cursor.kind in (K.CXX_STATIC_CAST_EXPR,
                               K.CSTYLE_CAST_EXPR,
                               K.CXX_FUNCTIONAL_CAST_EXPR,
                               K.CXX_REINTERPRET_CAST_EXPR,
                               K.CXX_CONST_CAST_EXPR)

    # -- check: env-registry --

    def check_env_registry(self, cursor):
        K = self.ci.CursorKind
        if cursor.kind != K.CALL_EXPR:
            return
        callee = cursor.referenced
        name = callee.spelling if callee is not None else cursor.spelling
        if name in ("getenv", "secure_getenv", "_wgetenv", "setenv",
                    "putenv", "unsetenv"):
            rel = self.rel(cursor.location)
            if rel == "src/common/env.cc":
                return
            self.report(
                "env-registry", cursor,
                f"{name}() outside src/common/env.cc: declare the "
                f"knob in {REGISTRY_DEF} and read it through "
                f"desc::env")

    # -- check: hot-path-alloc --

    def in_hot_file(self, cursor):
        rel = self.rel(cursor.location)
        return rel is not None and (rel in HOT_PATH_FILES
                                    or "fixtures" in rel)

    def check_hot_path_alloc(self, cursor):
        K = self.ci.CursorKind
        if not self.in_hot_file(cursor):
            return
        if cursor.kind == K.CXX_NEW_EXPR:
            self.report("hot-path-alloc", cursor,
                        "new-expression in a hot-path file (pool it, "
                        "or grow through owned container storage)",
                        scope=None)
        elif cursor.kind == K.CXX_DELETE_EXPR:
            self.report("hot-path-alloc", cursor,
                        "delete-expression in a hot-path file",
                        scope=None)
        elif cursor.kind == K.CALL_EXPR:
            callee = cursor.referenced
            name = callee.spelling if callee is not None else ""
            if name in ALLOC_CALLEES:
                self.report("hot-path-alloc", cursor,
                            f"call to {name} in a hot-path file",
                            scope=None)
        elif cursor.kind == K.VAR_DECL:
            SC = self.ci.StorageClass
            parent = cursor.semantic_parent
            in_function = parent is not None and parent.kind in (
                K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
                K.DESTRUCTOR, K.FUNCTION_TEMPLATE)
            if not in_function:
                return
            if cursor.storage_class == SC.STATIC:
                return  # one-time init, not per call
            TK = self.ci.TypeKind
            t = cursor.type.get_canonical()
            if t.kind in (TK.LVALUEREFERENCE, TK.RVALUEREFERENCE,
                          TK.POINTER):
                return  # borrows storage, doesn't own it
            if not ALLOCATING_LOCALS.match(self.type_words(t)):
                return
            if self.moved_into(cursor):
                return  # move-construction steals storage, no alloc
            self.report(
                    "hot-path-alloc", cursor,
                    f"local {self.type_words(cursor.type)} owns heap "
                    f"storage per call in a hot-path file (hoist it "
                    f"into the owner and reuse capacity)",
                    scope=None)

    def moved_into(self, var_decl):
        """True when the variable's initializer is std::move(...)."""
        K = self.ci.CursorKind
        for child in var_decl.get_children():
            if child.kind in (K.TYPE_REF, K.NAMESPACE_REF,
                              K.TEMPLATE_REF):
                continue
            expr = self.strip_sugar_expr(child)
            while expr.kind == K.CALL_EXPR:  # copy/move ctor wrapper
                ref = expr.referenced
                if ref is not None and ref.spelling == "move":
                    return True
                kids = list(expr.get_children())
                inner = [k for k in kids
                         if k.kind not in (K.TYPE_REF,
                                           K.NAMESPACE_REF,
                                           K.TEMPLATE_REF)]
                if len(inner) != 1:
                    break
                expr = self.strip_sugar_expr(inner[0])
            ref = expr.referenced if hasattr(expr, "referenced") else None
            if expr.kind == K.CALL_EXPR and ref is not None \
                    and ref.spelling == "move":
                return True
        return False

    # -- check: event-lifetime --

    def event_base_chain(self, decl, depth=0):
        """True when record decl derives (transitively) from
        desc::sim::Event."""
        if decl is None or depth > 8:
            return False
        K = self.ci.CursorKind
        for child in decl.get_children():
            if child.kind != K.CXX_BASE_SPECIFIER:
                continue
            base = child.referenced
            if base is None:
                continue
            qn = self.qualified_name(base)
            if qn == "desc::sim::Event":
                return True
            base_def = base.get_definition() or base
            if self.event_base_chain(base_def, depth + 1):
                return True
        return False

    def qualified_name(self, cursor):
        parts = []
        c = cursor
        K = self.ci.CursorKind
        while c is not None and c.kind != K.TRANSLATION_UNIT:
            if c.spelling:
                parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts))

    def is_event_record(self, t):
        decl = t.get_canonical().get_declaration()
        if decl is None or decl.kind == self.ci.CursorKind.NO_DECL_FOUND:
            return False
        qn = self.qualified_name(decl)
        if qn == "desc::sim::Event":
            return True
        defn = decl.get_definition()
        return defn is not None and self.event_base_chain(defn)

    def tokens_contain_delete(self, cursor):
        toks = [t.spelling for t in cursor.get_tokens()]
        for i, t in enumerate(toks):
            if t == "=" and i + 1 < len(toks) \
                    and toks[i + 1] in ("delete", "default"):
                return toks[i + 1]
        return None

    def check_event_lifetime(self, cursor):
        K = self.ci.CursorKind
        if cursor.kind in (K.CLASS_DECL, K.STRUCT_DECL) \
                and cursor.is_definition():
            if not self.event_base_chain(cursor):
                return
            qn = self.qualified_name(cursor)
            if qn in self.event_classes_seen:
                return
            self.event_classes_seen.add(qn)
            for member in cursor.get_children():
                is_copy_ctor = (member.kind == K.CONSTRUCTOR
                                and member.is_copy_constructor())
                is_copy_assign = (
                    member.kind == K.CXX_METHOD
                    and member.spelling == "operator="
                    and self.takes_self_ref(cursor, member))
                if not (is_copy_ctor or is_copy_assign):
                    continue
                what = ("copy constructor" if is_copy_ctor
                        else "copy assignment")
                if self.tokens_contain_delete(member) == "delete":
                    continue
                self.report(
                    "event-lifetime", member,
                    f"{cursor.spelling} derives desc::sim::Event but "
                    f"declares a non-deleted {what}: events are "
                    f"pinned while scheduled and must stay "
                    f"non-copyable")
        elif cursor.kind == K.VAR_DECL:
            SC = self.ci.StorageClass
            parent = cursor.semantic_parent
            in_function = parent is not None and parent.kind in (
                K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
                K.DESTRUCTOR, K.FUNCTION_TEMPLATE)
            if not in_function or cursor.storage_class == SC.STATIC:
                return
            t = cursor.type
            TK = self.ci.TypeKind
            if t.get_canonical().kind != TK.RECORD:
                return
            if self.is_event_record(t):
                self.report(
                    "event-lifetime", cursor,
                    f"stack-constructed {self.type_words(t)} (derives "
                    f"desc::sim::Event): a scheduled event must "
                    f"outlive its queue slot; own it in the component")
        elif cursor.kind == K.PARM_DECL:
            t = cursor.type
            TK = self.ci.TypeKind
            if t.get_canonical().kind != TK.RECORD:
                return
            if self.is_event_record(t):
                self.report(
                    "event-lifetime", cursor,
                    f"by-value Event parameter "
                    f"({self.type_words(t)}): pass a reference, the "
                    f"kernel pins event addresses")
        elif cursor.kind in (K.FUNCTION_DECL, K.CXX_METHOD):
            rt = cursor.result_type
            TK = self.ci.TypeKind
            if rt is not None \
                    and rt.get_canonical().kind == TK.RECORD \
                    and self.is_event_record(rt):
                self.report(
                    "event-lifetime", cursor,
                    f"{cursor.spelling}() returns an Event-derived "
                    f"type by value")

    def takes_self_ref(self, record, method):
        args = list(method.get_arguments())
        if len(args) != 1:
            return False
        t = args[0].type.get_canonical()
        TK = self.ci.TypeKind
        if t.kind != TK.LVALUEREFERENCE:
            return t.get_declaration() is not None \
                and t.get_declaration().get_usr() == record.get_usr()
        pointee = t.get_pointee().get_canonical()
        decl = pointee.get_declaration()
        return decl is not None and decl.get_usr() == record.get_usr()

    # -- check: tick-narrowing --

    def narrowing_finding(self, cursor, target_t, expr, context):
        width = self.int_width_bytes(target_t)
        if width == 0 or width >= 8:
            return
        expr = self.strip_sugar_expr(expr)
        if self.is_explicit_cast(expr):
            return
        if expr.kind == self.ci.CursorKind.INTEGER_LITERAL:
            return
        if not self.expr_is_wide(expr):
            return
        self.report(
            "tick-narrowing", cursor,
            f"implicit narrowing of a {self.type_words(expr.type)} "
            f"expression into {self.type_words(target_t)} "
            f"({context}); cast explicitly if the truncation is "
            f"intended")

    def binary_op_token(self, cursor, lhs, rhs):
        try:
            lhs_end = lhs.extent.end.offset
            rhs_start = rhs.extent.start.offset
        except Exception:
            return None
        for tok in cursor.get_tokens():
            if tok.extent.start.offset >= lhs_end \
                    and tok.extent.end.offset <= rhs_start:
                return tok.spelling
        return None

    def check_tick_narrowing(self, cursor):
        K = self.ci.CursorKind
        if cursor.kind == K.VAR_DECL:
            kids = [c for c in cursor.get_children()
                    if c.kind not in (K.TYPE_REF, K.NAMESPACE_REF,
                                      K.TEMPLATE_REF,
                                      K.ANNOTATE_ATTR)]
            if len(kids) != 1:
                return
            self.narrowing_finding(cursor, cursor.type, kids[0],
                                   f"initializing {cursor.spelling}")
        elif cursor.kind == K.BINARY_OPERATOR:
            kids = list(cursor.get_children())
            if len(kids) != 2:
                return
            if self.binary_op_token(cursor, kids[0], kids[1]) != "=":
                return
            self.narrowing_finding(cursor, kids[0].type, kids[1],
                                   "assignment")
        elif cursor.kind == K.CALL_EXPR:
            callee = cursor.referenced
            if callee is None:
                return
            params = [a.type for a in callee.get_arguments()]
            args = list(cursor.get_arguments())
            for param_t, arg in zip(params, args):
                self.narrowing_finding(
                    cursor, param_t, arg,
                    f"argument to {callee.spelling}()")
        elif cursor.kind == K.RETURN_STMT:
            kids = list(cursor.get_children())
            if len(kids) != 1:
                return
            # semantic_parent of a statement is unreliable; find the
            # enclosing function from the lexical chain instead.
            fn = self.enclosing_function(cursor)
            if fn is None:
                return
            self.narrowing_finding(cursor, fn.result_type, kids[0],
                                   f"return from {fn.spelling}()")

    def enclosing_function(self, cursor):
        K = self.ci.CursorKind
        for fn in reversed(self.fn_stack):
            if fn.kind == K.LAMBDA_EXPR:
                return None  # lambda deduced returns: stay silent
            return fn
        return None

    # -- driver --

    def walk(self, cursor, checks):
        K = self.ci.CursorKind
        fn_kinds = (K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
                    K.DESTRUCTOR, K.LAMBDA_EXPR)
        for child in cursor.get_children():
            if self.rel(child.location) is None:
                continue  # system headers: skip whole subtree
            for check in checks:
                check(child)
            is_fn = child.kind in fn_kinds
            if is_fn:
                self.fn_stack.append(child)
            self.walk(child, checks)
            if is_fn:
                self.fn_stack.pop()

    def analyze_tu(self, tu, checks):
        self.walk(tu.cursor, checks)

    def all_checks(self):
        return [self.check_env_registry, self.check_hot_path_alloc,
                self.check_event_lifetime, self.check_tick_narrowing]


def compile_db_entries(compdb_dir, root):
    db = Path(compdb_dir) / "compile_commands.json"
    if not db.is_file():
        print(f"desc-analyze: no compile_commands.json in "
              f"{compdb_dir}; configure with "
              f"-DCMAKE_EXPORT_COMPILE_COMMANDS=ON", file=sys.stderr)
        return None
    entries = json.loads(db.read_text())
    seen, out = set(), []
    for e in entries:
        src = Path(e["file"])
        if not src.is_absolute():
            src = Path(e["directory"]) / src
        src = src.resolve()
        try:
            rel = src.relative_to(root).as_posix()
        except ValueError:
            continue
        if not rel.startswith("src/") or rel in seen:
            continue
        seen.add(rel)
        if "arguments" in e:
            argv = list(e["arguments"])
        else:
            argv = shlex.split(e["command"])
        args = []
        skip = False
        for a in argv[1:]:
            if skip:
                skip = False
                continue
            if a in ("-c", str(src), e["file"]):
                continue
            if a == "-o":
                skip = True
                continue
            args.append(a)
        out.append((src, args, rel))
    return out


def run_tree(ci, root, compdb_dir):
    entries = compile_db_entries(compdb_dir, root)
    if entries is None:
        return EXIT_SKIP
    if not entries:
        print("desc-analyze: compile_commands.json has no src/ entries",
              file=sys.stderr)
        return 1
    an = Analyzer(ci, root)
    parsed = 0
    for src, args, rel in entries:
        tu = an.parse(str(src), args)
        if tu is None:
            return 1
        an.analyze_tu(tu, an.all_checks())
        parsed += 1
    findings = sorted(an.findings.values(),
                      key=lambda f: (f.path, f.line, f.check))
    for f in findings:
        print(f)
    if findings:
        print(f"desc-analyze: {len(findings)} finding(s) over "
              f"{parsed} translation units")
        return 1
    print(f"desc-analyze: clean ({parsed} translation units, 4 checks)")
    return 0


# --- self-test -----------------------------------------------------

# Fixture -> the exact check set it must trigger. Good fixtures parse
# with the real src/ headers on the include path and must stay silent.
FIXTURE_EXPECT = {
    "fixtures/bad/getenv_use.cc": {"env-registry"},
    "fixtures/bad/hotpath_hidden_alloc.cc": {"hot-path-alloc"},
    "fixtures/bad/event_copyable.cc": {"event-lifetime"},
    "fixtures/bad/tick_narrowing.cc": {"tick-narrowing"},
    "fixtures/good/clean.cc": set(),
}


def self_test(ci, root):
    ok = registry_sanity(root)
    an = Analyzer(ci, root)
    args = ["-std=c++20", "-I", str(root / "src")]
    by_file = {}
    for rel in FIXTURE_EXPECT:
        path = TOOL_ROOT / rel
        if not path.is_file():
            print(f"self-test: missing fixture {rel}")
            ok = False
            continue
        an.findings = {}
        an.event_classes_seen = set()
        tu = an.parse(str(path), args)
        if tu is None:
            print(f"self-test: fixture {rel} failed to parse")
            ok = False
            continue
        an.analyze_tu(tu, an.all_checks())
        got = set()
        for f in an.findings.values():
            if rel.split("/")[-1] in f.path:
                got.add(f.check)
        by_file[rel] = (got, list(an.findings.values()))
    for rel, expected in FIXTURE_EXPECT.items():
        if rel not in by_file:
            continue
        got, details = by_file[rel]
        if got != expected:
            print(f"self-test: {rel}: expected checks "
                  f"{sorted(expected)}, got {sorted(got)}")
            for f in details:
                print(f"    {f}")
            ok = False
    print("self-test:", "ok" if ok else "FAILED")
    return ok


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=None,
                    help="repository root (default: two levels up)")
    ap.add_argument("--compdb", default=None,
                    help="directory holding compile_commands.json "
                         "(default: <root>/build)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the checks against the bundled fixtures")
    ap.add_argument("--probe", action="store_true",
                    help="exit 0 iff libclang is usable")
    ap.add_argument("--list-env", action="store_true",
                    help="print the generated DESC_* env-var table")
    ap.add_argument("--check-env-docs", nargs="?", const="README.md",
                    default=None, metavar="DOC",
                    help="verify DOC's env table matches --list-env")
    args = ap.parse_args()

    root = Path(args.root).resolve() if args.root \
        else TOOL_ROOT.parent.parent

    if args.list_env:
        sys.stdout.write(env_table(root))
        return 0
    if args.check_env_docs is not None:
        ok = registry_sanity(root)
        ok = check_env_docs(root, args.check_env_docs) and ok
        return 0 if ok else 1

    ci = load_cindex()
    if args.probe:
        return 0 if ci is not None else 1
    if ci is None:
        # Registry sanity is pure text and still worth running, so a
        # toolchain-less box keeps the cheap half of the coverage.
        ok = registry_sanity(root)
        if not ok:
            return 1
        print("desc-analyze: python clang bindings / libclang not "
              "available; AST checks skipped (install python3-clang "
              "and libclang to run them locally — CI runs them)")
        return EXIT_SKIP

    if args.self_test:
        return 0 if self_test(ci, root) else 1

    compdb = args.compdb or str(root / "build")
    return run_tree(ci, root, compdb)


if __name__ == "__main__":
    sys.exit(main())
