// Fixture: the sanctioned patterns — owned pinned events, explicit
// casts where truncation is intended, a one-time allocation carrying
// an analyze:allow marker. Must produce zero findings.

#include <functional>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "sim/eventq.hh"

namespace fixture {

using desc::Cycle;

/** Owned, pinned event: the sanctioned lifetime pattern. */
class Ticker
{
  public:
    explicit Ticker(desc::sim::EventQueue &q) : _q(q) {}

    void start(Cycle when) { _q.schedule(_tick, when); }

    /** Explicit cast records that the truncation is intended. */
    unsigned low() const { return unsigned(_last & 0xffu); }

    /** Wide-to-wide arithmetic stays wide: no finding. */
    Cycle window(Cycle a, Cycle b) const { return b - a; }

  private:
    struct TickEvent : desc::sim::Event
    {
        explicit TickEvent(Ticker &t) : owner(t) {}
        void process() override { owner._last = owner._q.now(); }
        Ticker &owner;
    };

    desc::sim::EventQueue &_q;
    TickEvent _tick{*this};
    Cycle _last = 0;
};

/** Move-construction steals existing storage: no allocation. */
inline void
runMoved(std::function<void()> cb)
{
    std::function<void()> local = std::move(cb);
    local();
}

/** A deliberate cold-path allocation, waved through with a reason. */
inline int
scratchSum(int n)
{
    // Setup-time table, not per-transfer work.
    std::vector<int> v(std::size_t(n), 1); // analyze:allow(hot-path-alloc)
    int s = 0;
    for (int x : v)
        s += x;
    return s;
}

} // namespace fixture
