// Fixture: allocations the retired token scan could not see.
// Fixture files count as hot-path files for the analyzer.
// Expected finding: hot-path-alloc (and nothing else).

#include <functional>
#include <vector>

namespace fixture {

int
hiddenLocalContainer(int n)
{
    std::vector<int> scratch(std::size_t(n), 0); // per-call heap storage
    return int(scratch.size());
}

int
hiddenFunctionWrapper(int x)
{
    // Capturing lambda converted to std::function: type-erased heap
    // allocation invisible to a token scan.
    std::function<int(int)> f = [x](int y) { return x + y; };
    return f(1);
}

int *
nakedNew()
{
    return new int[4];
}

void
nakedDelete(int *p)
{
    delete[] p;
}

} // namespace fixture
