// Fixture: implicit narrowing of Cycle-typed expressions into
// smaller integer types — initialization, assignment, call argument,
// and return. Expected finding: tick-narrowing (and nothing else).

#include "common/types.hh"

namespace fixture {

unsigned
truncInit(desc::Cycle c)
{
    unsigned low = c; // 64 -> 32, silently
    return low;
}

void
truncAssign(desc::Cycle c)
{
    unsigned low = 0;
    low = c + 1; // sugar lost in arithmetic, still a Cycle value
    (void)low;
}

void sink(unsigned v);

void
truncCall(desc::Cycle c)
{
    sink(c); // parameter is only 32 bits wide
}

int
truncReturn(desc::Cycle c)
{
    return c / 2; // result type truncates
}

} // namespace fixture
