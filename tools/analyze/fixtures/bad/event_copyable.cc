// Fixture: Event-lifetime contract violations — a subclass that
// re-enables copying, a stack-constructed event, by-value parameter
// and return. Expected finding: event-lifetime (and nothing else).

#include "sim/eventq.hh"

namespace fixture {

struct CountEvent : desc::sim::Event
{
    CountEvent() = default;
    CountEvent(const CountEvent &) : CountEvent() {} // re-enables copy
    void process() override { fired++; }
    int fired = 0;
};

int
stackEvent()
{
    CountEvent ev; // dies at scope exit, queue slot would dangle
    return ev.fired;
}

void takeByValue(CountEvent ev); // slices the pinned address

CountEvent makeByValue(); // returned storage is not the queue's

} // namespace fixture
