// Fixture: raw std::getenv outside src/common/env.cc.
// Expected finding: env-registry (and nothing else).

#include <cstdlib>

namespace fixture {

const char *
readKnob()
{
    return std::getenv("SOME_UNREGISTERED_KNOB");
}

} // namespace fixture
