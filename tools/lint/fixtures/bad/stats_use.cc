// desc-lint fixture: deliberate violations.
// Expected findings: stat-description (missing and empty).
// Never compiled; exercised only by desc_lint.py --self-test.

#include "common/stats.hh"

void
harvest(desc::StatRegistry &reg, const desc::Counter &hits)
{
    reg.addInt("perf.cycles", 123);
    reg.add("l2.hits", hits, "");
    reg.addScalar("perf.ipc", 1.5, "retired instructions per cycle");
}
