// desc-lint fixture: deliberate violations.
// Expected findings: determinism (rand/srand/time), test-include.
// Never compiled; exercised only by desc_lint.py --self-test.

#include <cstdlib>
#include <ctime>

#include "tests/common/helpers.hh"

unsigned
entropy()
{
    srand(time(nullptr));
    return std::rand() % 7;
}
