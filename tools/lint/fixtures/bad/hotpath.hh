// desc-lint fixture: deliberate violations.
// Expected findings: hot-path-alloc, include-guard, contract-include.
// Never compiled; exercised only by desc_lint.py --self-test.

#ifndef DESC_FIXTURES_WRONG_GUARD_HH
#define DESC_FIXTURES_WRONG_GUARD_HH

struct Node
{
    Node *next;
};

inline Node *
makeNode()
{
    DESC_ASSERT(true, "contract macro without a direct contract.hh "
                "include");
    return new Node{nullptr};
}

inline void
freeNode(Node *n)
{
    delete n;
}

#endif // DESC_FIXTURES_WRONG_GUARD_HH
