// desc-lint fixture: deliberate violations.
// Expected findings: trace-channel (Bogus is not in the Channel enum).
// Never compiled; exercised only by desc_lint.py --self-test.

#include "common/trace.hh"

void
traceSomething()
{
    DESC_TRACE_EVENT(Bogus, 42, "undeclared channel");
    DESC_TRACE_HOST(Runner, "declared channel, fine");
}
