// desc-lint fixture: deliberate violation.
// Expected findings: hot-path-alloc (naked new/delete in a file the
// hot-path allocation ban covers, like the batched encoder passes,
// the flattened L2 transaction engine, or the core fast-forward
// replay loops). Never compiled; exercised only by
// desc_lint.py --self-test.

#include <cstdint>

struct ReplayWindow
{
    std::uint64_t *slots;
    unsigned count;
};

inline ReplayWindow *
openWindow(unsigned count)
{
    // Per-replay scratch must live in the core's own reused buffers,
    // not come from the allocator once per fast-forwarded batch.
    ReplayWindow *w = new ReplayWindow;
    w->slots = new std::uint64_t[count];
    w->count = count;
    return w;
}

inline void
closeWindow(ReplayWindow *w)
{
    delete[] w->slots;
    delete w;
}
