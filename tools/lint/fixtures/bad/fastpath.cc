// desc-lint fixture: deliberate violation.
// Expected findings: hot-path-alloc (naked malloc/free in a file the
// hot-path allocation ban covers, like the link fast-forward path).
// Never compiled; exercised only by desc_lint.py --self-test.

#include <cstdlib>

struct Plan
{
    unsigned *strobes;
    unsigned wires;
};

inline void
growPlan(Plan &plan, unsigned wires)
{
    // A per-transfer buffer must come from storage owned by the link,
    // not from the allocator on every block.
    plan.strobes = static_cast<unsigned *>(
        std::malloc(wires * sizeof(unsigned)));
    plan.wires = wires;
}

inline void
dropPlan(Plan &plan)
{
    std::free(plan.strobes);
    plan.strobes = nullptr;
}
