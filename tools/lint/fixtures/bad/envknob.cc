// Fixture: raw environment access outside the desc::env registry.
// Expected finding: env-registry.

#include <cstdlib>

namespace fixture {

const char *
knob()
{
    return std::getenv("DESC_FIXTURE_KNOB");
}

} // namespace fixture
