// desc-lint fixture: deliberate violations.
// Expected findings: prof-component (Bogus is not in the Component
// enum). Never compiled; exercised only by desc_lint.py --self-test.

#include "common/prof.hh"

void
profileSomething()
{
    DESC_PROF_SCOPE(Bogus);
    DESC_PROF_CYCLES(Encoder, 12);
}
