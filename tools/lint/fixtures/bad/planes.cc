// desc-lint fixture: deliberate violation.
// Expected findings: hot-path-alloc (a per-cycle plane scratch buffer
// allocated with new[] instead of living in storage owned by the
// engine, as the bit-plane ticked engine requires).
// Never compiled; exercised only by desc_lint.py --self-test.

#include <cstdint>

struct PlaneScratch
{
    std::uint64_t *words;
    unsigned count;
};

inline PlaneScratch
makeScratch(unsigned wires)
{
    // Every tick of the ticked engine would hit the allocator: the
    // scratch plane must be a member sized at construction instead.
    PlaneScratch s;
    s.count = (wires + 63) / 64;
    s.words = new std::uint64_t[s.count];
    return s;
}

inline void
dropScratch(PlaneScratch &s)
{
    delete[] s.words;
    s.words = nullptr;
}
