// desc-lint fixture: a fully conforming header.
// Expected findings: none.
// Never compiled; exercised only by desc_lint.py --self-test.

#ifndef DESC_FIXTURES_GOOD_CLEAN_HH
#define DESC_FIXTURES_GOOD_CLEAN_HH

#include "common/contract.hh"
#include "common/trace.hh"

inline unsigned
halve(unsigned v)
{
    DESC_ASSERT(v % 2 == 0, "v must be even, got ", v);
    DESC_TRACE_HOST(Runner, "halving");
    return v / 2;
}

#endif // DESC_FIXTURES_GOOD_CLEAN_HH
