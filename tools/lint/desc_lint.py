#!/usr/bin/env python3
"""desc-lint: project-specific static checks for the DESC simulator.

Enforces repo invariants the compiler cannot see:

  hot-path-alloc     no naked new/delete/malloc/free in the event-kernel
                     hot-path files (the kernel is allocation-free in
                     steady state; pooled growth must go through
                     make_unique / container storage).  This token scan
                     is the no-toolchain FALLBACK for desc-analyze's
                     AST-grade hot-path-alloc check (tools/analyze);
                     when libclang is available the build passes
                     --without-ast-superseded and the AST check takes
                     over
  env-registry       no raw getenv/setenv outside src/common/env.cc —
                     every DESC_* knob is declared once in
                     src/common/env_registry.def and read through the
                     typed desc::env registry
  stat-description   every StatRegistry registration carries a
                     non-empty description (the registry is the single
                     source of truth for reported numbers)
  trace-channel      every DESC_TRACE_EVENT/HOST channel is declared in
                     the central Channel enum, and the enum and the
                     kNames table in trace.cc stay in sync
  prof-component     every DESC_PROF_SCOPE/DESC_PROF_CYCLES component
                     is declared in the central Component enum, and the
                     enum and the kNames table in prof.cc stay in sync
  determinism        no std::rand/srand/time()/clock() in src/ — all
                     randomness goes through desc::Rng, all timing
                     through the event queue (bit-exact repro rule)
  include-guard      every header under src/ carries the canonical
                     DESC_<PATH>_HH include guard
  test-include       src/ never includes from tests/
  contract-include   files using DESC_ASSERT/DESC_DCHECK/
                     DESC_UNREACHABLE include common/contract.hh
                     directly, not transitively

Usage:
  desc_lint.py [--root DIR]     lint the tree (exit 1 on findings)
  desc_lint.py --self-test      verify the checks against the bundled
                                fixture files (exit 1 on miss)
  --without-ast-superseded      skip the token-scan checks that
                                desc-analyze covers with real ASTs
                                (passed by the build when libclang is
                                available)
"""

import argparse
import re
import sys
from pathlib import Path

# Files whose steady state must not allocate: the event kernel and the
# schedulers that run per simulated event.
HOT_PATH_FILES = [
    "src/sim/eventq.hh",
    "src/common/bitvec.hh",
    "src/core/chunk.cc",
    "src/core/descscheme.cc",
    # The link fast path and its endpoints: one plan preallocated per
    # link, closed-form transfers must stay allocation-free.
    "src/core/fastforward.hh",
    "src/core/link.cc",
    "src/core/linkscheme.cc",
    "src/core/transmitter.cc",
    "src/core/receiver.cc",
    # The bit-plane ticked engine (DESIGN.md §15): wire planes and the
    # word-wide toggle banks run once per simulated link cycle; every
    # plane buffer is sized at construction or loadBlock.
    "src/core/wires.hh",
    "src/core/toggle.hh",
    # The batched encoder passes (word-at-a-time SWAR loops).
    "src/encoding/swar.hh",
    "src/encoding/scheme.cc",
    # The flattened L2 transaction engine: events come from per-bank
    # pools, block payloads live in the set-associative arrays.
    "src/cache/array.hh",
    "src/cache/blockdata.hh",
    "src/cache/hierarchy.cc",
    # The instruction-batch core fast-forward: replay/chain loops run
    # per retired burst and must reuse the cores' own buffers.
    "src/cpu/inorder.cc",
    "src/cpu/ooo.cc",
]

SRC_EXTENSIONS = {".cc", ".hh"}


class Finding:
    def __init__(self, check, path, line, message):
        self.check = check
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


def strip_comments(text):
    """Blank out comments and string/char literals, preserving line
    structure, so token checks do not fire on documentation."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def iter_source(root, subdir="src"):
    base = root / subdir
    for path in sorted(base.rglob("*")):
        if path.suffix in SRC_EXTENSIONS and path.is_file():
            yield path


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


# --- checks -------------------------------------------------------


GETENV_RE = re.compile(
    r"(?<![\w.:])(?:std\s*::\s*)?"
    r"(?:secure_getenv|getenv|setenv|putenv|unsetenv)\s*\(")


def check_env_registry(root, rel, text, code, findings):
    if rel == "src/common/env.cc":
        return  # the registry's own implementation
    for m in GETENV_RE.finditer(code):
        findings.append(Finding(
            "env-registry", rel, line_of(code, m.start()),
            "raw environment access outside src/common/env.cc: declare "
            "the knob in src/common/env_registry.def and read it "
            "through desc::env"))


def check_hot_path_alloc(root, rel, text, code, findings):
    if rel not in HOT_PATH_FILES:
        return
    for m in re.finditer(
            r"(?<![\w.])(new\s+[A-Za-z_:<]|delete\s|delete\[\]"
            r"|malloc\s*\(|free\s*\(|calloc\s*\(|realloc\s*\()", code):
        findings.append(Finding(
            "hot-path-alloc", rel, line_of(code, m.start()),
            "naked allocation in an event-kernel hot-path file "
            "(pool it, or grow through owned container storage)"))


STAT_ADD_RE = re.compile(
    r"\b(?:reg|registry)\s*(?:\.|->)\s*(add(?:Scalar|Int|Text)?)\s*\(")


def split_args(code, open_paren):
    """Return (args, end) for the call whose '(' is at open_paren."""
    depth = 0
    args = []
    start = open_paren + 1
    i = open_paren
    while i < len(code):
        c = code[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                args.append(code[start:i])
                return args, i
        elif c == "," and depth == 1:
            args.append(code[start:i])
            start = i + 1
        i += 1
    return None, None


def check_stat_descriptions(root, rel, text, code, findings):
    for m in STAT_ADD_RE.finditer(code):
        args, end = split_args(code, m.end() - 1)
        line = line_of(code, m.start())
        if args is None:
            continue
        method = m.group(1)
        want = 3  # path, value/object, description
        if len(args) < want:
            findings.append(Finding(
                "stat-description", rel, line,
                f"StatRegistry::{method}() without a description "
                f"argument"))
            continue
        # The description is the last argument; when it is a literal in
        # the original text, it must be non-empty.
        orig_args, _ = split_args(text, m.end() - 1)
        last = orig_args[-1].strip() if orig_args else ""
        if re.fullmatch(r'""', last):
            findings.append(Finding(
                "stat-description", rel, line,
                f"StatRegistry::{method}() with an empty description"))


def parse_channel_enum(root):
    trace_hh = root / "src/common/trace.hh"
    if not trace_hh.is_file():
        return None, None
    text = trace_hh.read_text()
    code = strip_comments(text)
    m = re.search(r"enum\s+class\s+Channel[^{]*\{([^}]*)\}", code)
    if not m:
        return None, None
    names = re.findall(r"^\s*([A-Z]\w*)\s*,?\s*$", m.group(1), re.M)
    return names, text


def check_trace_channels(root, findings, src_iter):
    enum_names, _ = parse_channel_enum(root)
    if enum_names is None:
        findings.append(Finding(
            "trace-channel", "src/common/trace.hh", 1,
            "cannot parse the Channel enum"))
        return
    trace_cc = root / "src/common/trace.cc"
    if trace_cc.is_file():
        cc = trace_cc.read_text()
        m = re.search(
            r"kNames\s*\[\s*kNumChannels\s*\]\s*=\s*\{([^}]*)\}", cc)
        if not m:
            findings.append(Finding(
                "trace-channel", "src/common/trace.cc", 1,
                "cannot find the central kNames channel table"))
        else:
            table = re.findall(r'"(\w+)"', m.group(1))
            if len(table) != len(enum_names):
                findings.append(Finding(
                    "trace-channel", "src/common/trace.cc",
                    line_of(cc, m.start()),
                    f"channel table has {len(table)} entries but the "
                    f"Channel enum declares {len(enum_names)}"))
            else:
                for e, t in zip(enum_names, table):
                    if e.lower() != t:
                        findings.append(Finding(
                            "trace-channel", "src/common/trace.cc",
                            line_of(cc, m.start()),
                            f'table entry "{t}" does not match enum '
                            f"value {e}"))
    declared = set(enum_names)
    for path, rel, text, code in src_iter:
        if rel.endswith("common/trace.hh"):
            continue  # the macro definitions themselves
        for m in re.finditer(
                r"DESC_TRACE_(?:EVENT|HOST)\s*\(\s*(\w+)", code):
            if m.group(1) not in declared:
                findings.append(Finding(
                    "trace-channel", rel, line_of(code, m.start()),
                    f"trace channel {m.group(1)} is not declared in "
                    f"the central Channel table (src/common/trace.hh)"))


def parse_component_enum(root):
    prof_hh = root / "src/common/prof.hh"
    if not prof_hh.is_file():
        return None
    code = strip_comments(prof_hh.read_text())
    m = re.search(r"enum\s+class\s+Component[^{]*\{([^}]*)\}", code)
    if not m:
        return None
    return re.findall(r"^\s*([A-Z]\w*)\s*,?\s*$", m.group(1), re.M)


def check_prof_components(root, findings, src_iter):
    enum_names = parse_component_enum(root)
    if enum_names is None:
        findings.append(Finding(
            "prof-component", "src/common/prof.hh", 1,
            "cannot parse the Component enum"))
        return
    prof_cc = root / "src/common/prof.cc"
    if prof_cc.is_file():
        cc = prof_cc.read_text()
        m = re.search(
            r"kNames\s*\[\s*kNumComponents\s*\]\s*=\s*\{([^}]*)\}", cc)
        if not m:
            findings.append(Finding(
                "prof-component", "src/common/prof.cc", 1,
                "cannot find the central kNames component table"))
        else:
            table = re.findall(r'"([\w.]+)"', m.group(1))
            if len(table) != len(enum_names):
                findings.append(Finding(
                    "prof-component", "src/common/prof.cc",
                    line_of(cc, m.start()),
                    f"component table has {len(table)} entries but the "
                    f"Component enum declares {len(enum_names)}"))
            else:
                for e, t in zip(enum_names, table):
                    # "cache.access" names the CacheAccess enum value.
                    if e.lower() != t.replace(".", ""):
                        findings.append(Finding(
                            "prof-component", "src/common/prof.cc",
                            line_of(cc, m.start()),
                            f'table entry "{t}" does not match enum '
                            f"value {e}"))
    declared = set(enum_names)
    for path, rel, text, code in src_iter:
        if rel.endswith("common/prof.hh"):
            continue  # the macro definitions themselves
        for m in re.finditer(
                r"DESC_PROF_(?:SCOPE|CYCLES)\s*\(\s*(\w+)", code):
            if m.group(1) not in declared:
                findings.append(Finding(
                    "prof-component", rel, line_of(code, m.start()),
                    f"profiler component {m.group(1)} is not declared "
                    f"in the central Component table "
                    f"(src/common/prof.hh)"))


DETERMINISM_RE = re.compile(
    r"(?<![\w.:])(?:std\s*::\s*)?(?:rand|srand|rand_r|drand48)\s*\("
    r"|(?<![\w.:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
    r"|(?<![\w.:])clock\s*\(\s*\)")


def check_determinism(root, rel, text, code, findings):
    for m in DETERMINISM_RE.finditer(code):
        findings.append(Finding(
            "determinism", rel, line_of(code, m.start()),
            "non-deterministic source (%s): use desc::Rng / the event "
            "queue clock" % code[m.start():m.end()].strip()))


def expected_guard(rel):
    stem = rel[len("src/"):] if rel.startswith("src/") else rel
    return "DESC_" + re.sub(r"[/.]", "_", stem).upper()


def check_include_guard(root, rel, text, code, findings):
    if not rel.endswith(".hh"):
        return
    guard = expected_guard(rel)
    ifndef = re.search(r"#ifndef\s+(\w+)", text)
    define = re.search(r"#define\s+(\w+)", text)
    if not ifndef or not define or ifndef.group(1) != define.group(1):
        findings.append(Finding(
            "include-guard", rel, 1,
            f"missing or mismatched include guard (expected {guard})"))
        return
    if ifndef.group(1) != guard:
        findings.append(Finding(
            "include-guard", rel, line_of(text, ifndef.start()),
            f"include guard {ifndef.group(1)} should be {guard}"))


def check_test_include(root, rel, text, code, findings):
    for m in re.finditer(r'#include\s+"((?:\.\./)*tests/[^"]*)"', text):
        findings.append(Finding(
            "test-include", rel, line_of(text, m.start()),
            f"src/ must not include from tests/ ({m.group(1)})"))


CONTRACT_MACROS_RE = re.compile(
    r"\b(DESC_ASSERT|DESC_DCHECK|DESC_UNREACHABLE)\s*\(")


def check_contract_include(root, rel, text, code, findings):
    if rel.endswith("common/contract.hh"):
        return
    m = CONTRACT_MACROS_RE.search(code)
    if not m:
        return
    if not re.search(r'#include\s+"common/contract\.hh"', text):
        findings.append(Finding(
            "contract-include", rel, line_of(code, m.start()),
            f"{m.group(1)} used without a direct include of "
            f"common/contract.hh"))


PER_FILE_CHECKS = [
    check_hot_path_alloc,
    check_env_registry,
    check_stat_descriptions,
    check_determinism,
    check_include_guard,
    check_test_include,
    check_contract_include,
]

# Token scans that desc-analyze (tools/analyze/desc_analyze.py)
# re-implements on real ASTs. They stay here as the degraded fallback
# for toolchains without libclang; a build that has the AST checks
# passes --without-ast-superseded to retire the duplicates.
AST_SUPERSEDED_CHECKS = [check_hot_path_alloc]


def active_checks(ast_superseded=True):
    if ast_superseded:
        return PER_FILE_CHECKS
    return [c for c in PER_FILE_CHECKS
            if c not in AST_SUPERSEDED_CHECKS]


def lint(root, subdir="src", ast_superseded=True):
    findings = []
    sources = []
    for path in iter_source(root, subdir):
        rel = path.relative_to(root).as_posix()
        text = path.read_text()
        code = strip_comments(text)
        sources.append((path, rel, text, code))
    for path, rel, text, code in sources:
        for check in active_checks(ast_superseded):
            check(root, rel, text, code, findings)
    check_trace_channels(root, findings, sources)
    check_prof_components(root, findings, sources)
    return findings


# --- self-test against the fixtures -------------------------------

# Every fixture file must trigger exactly the listed checks (and the
# clean fixture none), proving the rules catch deliberate violations.
FIXTURE_EXPECT = {
    "fixtures/bad/hotpath.hh": {
        "hot-path-alloc", "include-guard", "contract-include"},
    "fixtures/bad/fastpath.cc": {"hot-path-alloc"},
    "fixtures/bad/batched.cc": {"hot-path-alloc"},
    "fixtures/bad/planes.cc": {"hot-path-alloc"},
    "fixtures/bad/stats_use.cc": {"stat-description"},
    "fixtures/bad/tracing.cc": {"trace-channel"},
    "fixtures/bad/profiling.cc": {"prof-component"},
    "fixtures/bad/entropy.cc": {"determinism", "test-include"},
    "fixtures/bad/envknob.cc": {"env-registry"},
    "fixtures/good/clean.hh": set(),
}


def self_test(tool_root, repo_root):
    ok = True
    # The allocation ban is only as good as its file list: a hot-path
    # file that was renamed or deleted would silently drop coverage.
    for rel in HOT_PATH_FILES:
        if not (repo_root / rel).is_file():
            print(f"self-test: HOT_PATH_FILES entry missing on disk: {rel}")
            ok = False
    findings = []
    sources = []
    for rel in FIXTURE_EXPECT:
        path = tool_root / rel
        if not path.is_file():
            print(f"self-test: missing fixture {rel}")
            ok = False
            continue
        text = path.read_text()
        sources.append((path, rel, text, strip_comments(text)))
    for path, rel, text, code in sources:
        # Fixture headers use src/-style guard expectations relative to
        # their fixture name, so point the guard check at the rel path.
        for check in PER_FILE_CHECKS:
            if check is check_hot_path_alloc:
                # Treat every bad fixture as a hot-path file.
                if "bad/" in rel:
                    saved = HOT_PATH_FILES[:]
                    HOT_PATH_FILES.append(rel)
                    check(repo_root, rel, text, code, findings)
                    HOT_PATH_FILES[:] = saved
                continue
            check(repo_root, rel, text, code, findings)
    # Channel/component declarations come from the real tree; fixture
    # trace and prof points reference bogus names.
    check_trace_channels(repo_root, findings, sources)
    check_prof_components(repo_root, findings, sources)

    by_file = {rel: set() for rel in FIXTURE_EXPECT}
    for f in findings:
        if f.path in by_file:
            by_file[f.path].add(f.check)
    for rel, expected in FIXTURE_EXPECT.items():
        got = by_file.get(rel, set())
        if got != expected:
            print(f"self-test: {rel}: expected checks {sorted(expected)}"
                  f", got {sorted(got)}")
            ok = False
    # The fallback flag must actually retire the superseded scans and
    # nothing else.
    degraded = active_checks(ast_superseded=False)
    if check_hot_path_alloc in degraded:
        print("self-test: --without-ast-superseded keeps the "
              "hot-path-alloc token scan alive")
        ok = False
    if set(PER_FILE_CHECKS) - set(degraded) != set(AST_SUPERSEDED_CHECKS):
        print("self-test: --without-ast-superseded retires checks that "
              "have no AST replacement")
        ok = False
    print("self-test:", "ok" if ok else "FAILED")
    return ok


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=None,
                    help="repository root (default: two levels up)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the checks against the bundled fixtures")
    ap.add_argument("--without-ast-superseded", action="store_true",
                    help="skip token scans that desc-analyze covers "
                         "with real ASTs (libclang available)")
    args = ap.parse_args()

    tool_root = Path(__file__).resolve().parent
    root = Path(args.root).resolve() if args.root \
        else tool_root.parent.parent

    if args.self_test:
        sys.exit(0 if self_test(tool_root, root) else 1)

    findings = lint(root, ast_superseded=not args.without_ast_superseded)
    for f in findings:
        print(f)
    if findings:
        print(f"desc-lint: {len(findings)} finding(s)")
        sys.exit(1)
    if args.without_ast_superseded:
        print("desc-lint: clean (hot-path-alloc delegated to "
              "desc-analyze)")
    else:
        print("desc-lint: clean")


if __name__ == "__main__":
    main()
