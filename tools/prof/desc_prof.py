#!/usr/bin/env python3
"""desc-prof: render a DESC_PROF_OUT trace-event JSON as a hot-spot report.

Reads the "profile" aggregate the simulator writes next to the
Chrome/Perfetto traceEvents and prints a per-component breakdown:
self time (descending), share of the instrumented wall clock, scope
counts, attributed simulated cycles, and the top-3 costs. With
--runs, the same breakdown is printed per recorded run.

Usage:
  desc_prof.py prof.json [--top N] [--runs] [--threads]
"""

import argparse
import json
import sys


def fmt_ms(ns):
    return f"{ns / 1e6:.3f}"


def component_rows(components):
    """Sorted (name, totals) pairs, hottest self time first."""
    rows = sorted(components.items(),
                  key=lambda kv: kv[1]["self_ns"], reverse=True)
    return [(name, t) for name, t in rows
            if t["scopes"] > 0 or t["cycles"] > 0]


def print_breakdown(title, components, top=None):
    rows = component_rows(components)
    if not rows:
        print(f"{title}: no profiled scopes")
        return
    total_self = sum(t["self_ns"] for _, t in rows) or 1
    shown = rows if top is None else rows[:top]

    print(f"-- {title} --")
    header = (f"{'component':<15} {'self ms':>12} {'self %':>7} "
              f"{'total ms':>12} {'scopes':>12} {'cycles':>14}")
    print(header)
    print("-" * len(header))
    for name, t in shown:
        share = 100.0 * t["self_ns"] / total_self
        print(f"{name:<15} {fmt_ms(t['self_ns']):>12} {share:>6.1f}% "
              f"{fmt_ms(t['total_ns']):>12} {t['scopes']:>12} "
              f"{t['cycles']:>14}")
    if top is not None and len(rows) > top:
        rest = sum(t["self_ns"] for _, t in rows[top:])
        print(f"{'(other)':<15} {fmt_ms(rest):>12} "
              f"{100.0 * rest / total_self:>6.1f}%")
    print(f"{'(instrumented)':<15} {fmt_ms(total_self):>12} {100.0:>6.1f}%")


def print_top_costs(components, n=3):
    rows = component_rows(components)[:n]
    if not rows:
        return
    total_self = sum(t["self_ns"] for t in
                     (t for _, t in component_rows(components))) or 1
    print(f"\ntop {len(rows)} costs:")
    for i, (name, t) in enumerate(rows, 1):
        share = 100.0 * t["self_ns"] / total_self
        print(f"  {i}. {name}: {fmt_ms(t['self_ns'])} ms self "
              f"({share:.1f}% of instrumented time, "
              f"{t['scopes']} scopes)")


def main():
    ap = argparse.ArgumentParser(
        description="per-component breakdown of a desc-prof JSON")
    ap.add_argument("input", help="DESC_PROF_OUT file (desc-prof JSON)")
    ap.add_argument("--top", type=int, default=None, metavar="N",
                    help="show only the N hottest components")
    ap.add_argument("--runs", action="store_true",
                    help="also break down every recorded run")
    ap.add_argument("--threads", action="store_true",
                    help="also break down every worker thread")
    args = ap.parse_args()

    try:
        with open(args.input) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"desc-prof: cannot read {args.input}: {e}",
              file=sys.stderr)
        return 1

    if doc.get("format") != "desc-prof":
        print(f"desc-prof: {args.input} is not a desc-prof JSON "
              f"(format={doc.get('format')!r})", file=sys.stderr)
        return 1

    profile = doc.get("profile", {})
    dropped = doc.get("dropped_events", 0)
    events = [e for e in doc.get("traceEvents", [])
              if e.get("ph") in ("B", "E")]
    print(f"desc-prof {args.input}: {len(events)} trace events"
          f" ({dropped} coalesced scopes dropped beyond the per-thread"
          f" cap)\n")

    print_breakdown("all threads", profile.get("components", {}),
                    top=args.top)
    print_top_costs(profile.get("components", {}))

    if args.threads:
        for t in profile.get("threads", []):
            print()
            print_breakdown(f"thread {t.get('name', '?')}",
                            t.get("components", {}), top=args.top)

    if args.runs:
        for r in profile.get("runs", []):
            print()
            print_breakdown(f"run {r.get('run', '?')}",
                            r.get("components", {}), top=args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
