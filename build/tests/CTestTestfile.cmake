# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tests_common[1]_include.cmake")
include("/root/repo/build/tests/tests_encoding[1]_include.cmake")
include("/root/repo/build/tests/tests_core[1]_include.cmake")
include("/root/repo/build/tests/tests_energy[1]_include.cmake")
include("/root/repo/build/tests/tests_ecc[1]_include.cmake")
include("/root/repo/build/tests/tests_dram[1]_include.cmake")
include("/root/repo/build/tests/tests_cache[1]_include.cmake")
include("/root/repo/build/tests/tests_cpu[1]_include.cmake")
include("/root/repo/build/tests/tests_workloads[1]_include.cmake")
include("/root/repo/build/tests/tests_sim[1]_include.cmake")
include("/root/repo/build/tests/tests_integration[1]_include.cmake")
