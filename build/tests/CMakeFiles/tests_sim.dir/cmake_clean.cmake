file(REMOVE_RECURSE
  "CMakeFiles/tests_sim.dir/sim/test_energy_account.cc.o"
  "CMakeFiles/tests_sim.dir/sim/test_energy_account.cc.o.d"
  "CMakeFiles/tests_sim.dir/sim/test_eventq.cc.o"
  "CMakeFiles/tests_sim.dir/sim/test_eventq.cc.o.d"
  "CMakeFiles/tests_sim.dir/sim/test_report.cc.o"
  "CMakeFiles/tests_sim.dir/sim/test_report.cc.o.d"
  "CMakeFiles/tests_sim.dir/sim/test_system.cc.o"
  "CMakeFiles/tests_sim.dir/sim/test_system.cc.o.d"
  "tests_sim"
  "tests_sim.pdb"
  "tests_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
