# Empty compiler generated dependencies file for tests_dram.
# This may be replaced when dependencies are built.
