file(REMOVE_RECURSE
  "CMakeFiles/tests_dram.dir/dram/test_ddr3.cc.o"
  "CMakeFiles/tests_dram.dir/dram/test_ddr3.cc.o.d"
  "tests_dram"
  "tests_dram.pdb"
  "tests_dram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
