
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_adaptive.cc" "tests/CMakeFiles/tests_core.dir/core/test_adaptive.cc.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_adaptive.cc.o.d"
  "/root/repo/tests/core/test_chunk.cc" "tests/CMakeFiles/tests_core.dir/core/test_chunk.cc.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_chunk.cc.o.d"
  "/root/repo/tests/core/test_descscheme.cc" "tests/CMakeFiles/tests_core.dir/core/test_descscheme.cc.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_descscheme.cc.o.d"
  "/root/repo/tests/core/test_equivalence.cc" "tests/CMakeFiles/tests_core.dir/core/test_equivalence.cc.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_equivalence.cc.o.d"
  "/root/repo/tests/core/test_link_faults.cc" "tests/CMakeFiles/tests_core.dir/core/test_link_faults.cc.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_link_faults.cc.o.d"
  "/root/repo/tests/core/test_timing.cc" "tests/CMakeFiles/tests_core.dir/core/test_timing.cc.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_timing.cc.o.d"
  "/root/repo/tests/core/test_toggle.cc" "tests/CMakeFiles/tests_core.dir/core/test_toggle.cc.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_toggle.cc.o.d"
  "/root/repo/tests/core/test_txrx.cc" "tests/CMakeFiles/tests_core.dir/core/test_txrx.cc.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_txrx.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/desc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/desc_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/desc_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/desc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
