file(REMOVE_RECURSE
  "CMakeFiles/tests_core.dir/core/test_adaptive.cc.o"
  "CMakeFiles/tests_core.dir/core/test_adaptive.cc.o.d"
  "CMakeFiles/tests_core.dir/core/test_chunk.cc.o"
  "CMakeFiles/tests_core.dir/core/test_chunk.cc.o.d"
  "CMakeFiles/tests_core.dir/core/test_descscheme.cc.o"
  "CMakeFiles/tests_core.dir/core/test_descscheme.cc.o.d"
  "CMakeFiles/tests_core.dir/core/test_equivalence.cc.o"
  "CMakeFiles/tests_core.dir/core/test_equivalence.cc.o.d"
  "CMakeFiles/tests_core.dir/core/test_link_faults.cc.o"
  "CMakeFiles/tests_core.dir/core/test_link_faults.cc.o.d"
  "CMakeFiles/tests_core.dir/core/test_timing.cc.o"
  "CMakeFiles/tests_core.dir/core/test_timing.cc.o.d"
  "CMakeFiles/tests_core.dir/core/test_toggle.cc.o"
  "CMakeFiles/tests_core.dir/core/test_toggle.cc.o.d"
  "CMakeFiles/tests_core.dir/core/test_txrx.cc.o"
  "CMakeFiles/tests_core.dir/core/test_txrx.cc.o.d"
  "tests_core"
  "tests_core.pdb"
  "tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
