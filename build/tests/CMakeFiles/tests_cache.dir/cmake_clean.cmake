file(REMOVE_RECURSE
  "CMakeFiles/tests_cache.dir/cache/test_array.cc.o"
  "CMakeFiles/tests_cache.dir/cache/test_array.cc.o.d"
  "CMakeFiles/tests_cache.dir/cache/test_coherence.cc.o"
  "CMakeFiles/tests_cache.dir/cache/test_coherence.cc.o.d"
  "CMakeFiles/tests_cache.dir/cache/test_hierarchy.cc.o"
  "CMakeFiles/tests_cache.dir/cache/test_hierarchy.cc.o.d"
  "tests_cache"
  "tests_cache.pdb"
  "tests_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
