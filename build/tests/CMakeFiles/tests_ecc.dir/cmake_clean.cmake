file(REMOVE_RECURSE
  "CMakeFiles/tests_ecc.dir/ecc/test_blockcodec.cc.o"
  "CMakeFiles/tests_ecc.dir/ecc/test_blockcodec.cc.o.d"
  "CMakeFiles/tests_ecc.dir/ecc/test_hamming.cc.o"
  "CMakeFiles/tests_ecc.dir/ecc/test_hamming.cc.o.d"
  "CMakeFiles/tests_ecc.dir/ecc/test_injector.cc.o"
  "CMakeFiles/tests_ecc.dir/ecc/test_injector.cc.o.d"
  "tests_ecc"
  "tests_ecc.pdb"
  "tests_ecc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
