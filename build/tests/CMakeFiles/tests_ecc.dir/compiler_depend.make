# Empty compiler generated dependencies file for tests_ecc.
# This may be replaced when dependencies are built.
