file(REMOVE_RECURSE
  "CMakeFiles/tests_workloads.dir/workloads/test_apps.cc.o"
  "CMakeFiles/tests_workloads.dir/workloads/test_apps.cc.o.d"
  "CMakeFiles/tests_workloads.dir/workloads/test_stream.cc.o"
  "CMakeFiles/tests_workloads.dir/workloads/test_stream.cc.o.d"
  "CMakeFiles/tests_workloads.dir/workloads/test_valuemodel.cc.o"
  "CMakeFiles/tests_workloads.dir/workloads/test_valuemodel.cc.o.d"
  "tests_workloads"
  "tests_workloads.pdb"
  "tests_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
