# Empty dependencies file for tests_workloads.
# This may be replaced when dependencies are built.
