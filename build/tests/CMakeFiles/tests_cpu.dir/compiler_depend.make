# Empty compiler generated dependencies file for tests_cpu.
# This may be replaced when dependencies are built.
