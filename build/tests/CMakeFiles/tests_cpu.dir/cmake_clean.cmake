file(REMOVE_RECURSE
  "CMakeFiles/tests_cpu.dir/cpu/test_inorder.cc.o"
  "CMakeFiles/tests_cpu.dir/cpu/test_inorder.cc.o.d"
  "CMakeFiles/tests_cpu.dir/cpu/test_ooo.cc.o"
  "CMakeFiles/tests_cpu.dir/cpu/test_ooo.cc.o.d"
  "tests_cpu"
  "tests_cpu.pdb"
  "tests_cpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
