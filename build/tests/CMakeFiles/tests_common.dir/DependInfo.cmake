
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_bitvec.cc" "tests/CMakeFiles/tests_common.dir/common/test_bitvec.cc.o" "gcc" "tests/CMakeFiles/tests_common.dir/common/test_bitvec.cc.o.d"
  "/root/repo/tests/common/test_rng.cc" "tests/CMakeFiles/tests_common.dir/common/test_rng.cc.o" "gcc" "tests/CMakeFiles/tests_common.dir/common/test_rng.cc.o.d"
  "/root/repo/tests/common/test_stats.cc" "tests/CMakeFiles/tests_common.dir/common/test_stats.cc.o" "gcc" "tests/CMakeFiles/tests_common.dir/common/test_stats.cc.o.d"
  "/root/repo/tests/common/test_table.cc" "tests/CMakeFiles/tests_common.dir/common/test_table.cc.o" "gcc" "tests/CMakeFiles/tests_common.dir/common/test_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/desc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/desc_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/desc_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/desc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
