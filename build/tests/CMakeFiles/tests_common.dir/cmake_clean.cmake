file(REMOVE_RECURSE
  "CMakeFiles/tests_common.dir/common/test_bitvec.cc.o"
  "CMakeFiles/tests_common.dir/common/test_bitvec.cc.o.d"
  "CMakeFiles/tests_common.dir/common/test_rng.cc.o"
  "CMakeFiles/tests_common.dir/common/test_rng.cc.o.d"
  "CMakeFiles/tests_common.dir/common/test_stats.cc.o"
  "CMakeFiles/tests_common.dir/common/test_stats.cc.o.d"
  "CMakeFiles/tests_common.dir/common/test_table.cc.o"
  "CMakeFiles/tests_common.dir/common/test_table.cc.o.d"
  "tests_common"
  "tests_common.pdb"
  "tests_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
