# Empty dependencies file for tests_encoding.
# This may be replaced when dependencies are built.
