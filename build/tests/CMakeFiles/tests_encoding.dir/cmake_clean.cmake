file(REMOVE_RECURSE
  "CMakeFiles/tests_encoding.dir/encoding/test_binary.cc.o"
  "CMakeFiles/tests_encoding.dir/encoding/test_binary.cc.o.d"
  "CMakeFiles/tests_encoding.dir/encoding/test_businvert.cc.o"
  "CMakeFiles/tests_encoding.dir/encoding/test_businvert.cc.o.d"
  "CMakeFiles/tests_encoding.dir/encoding/test_dzc.cc.o"
  "CMakeFiles/tests_encoding.dir/encoding/test_dzc.cc.o.d"
  "CMakeFiles/tests_encoding.dir/encoding/test_scheme_properties.cc.o"
  "CMakeFiles/tests_encoding.dir/encoding/test_scheme_properties.cc.o.d"
  "tests_encoding"
  "tests_encoding.pdb"
  "tests_encoding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
