file(REMOVE_RECURSE
  "CMakeFiles/tests_energy.dir/energy/test_cacti.cc.o"
  "CMakeFiles/tests_energy.dir/energy/test_cacti.cc.o.d"
  "CMakeFiles/tests_energy.dir/energy/test_mcpat.cc.o"
  "CMakeFiles/tests_energy.dir/energy/test_mcpat.cc.o.d"
  "CMakeFiles/tests_energy.dir/energy/test_synthesis.cc.o"
  "CMakeFiles/tests_energy.dir/energy/test_synthesis.cc.o.d"
  "CMakeFiles/tests_energy.dir/energy/test_tech.cc.o"
  "CMakeFiles/tests_energy.dir/energy/test_tech.cc.o.d"
  "CMakeFiles/tests_energy.dir/energy/test_wire.cc.o"
  "CMakeFiles/tests_energy.dir/energy/test_wire.cc.o.d"
  "tests_energy"
  "tests_energy.pdb"
  "tests_energy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
