# Empty compiler generated dependencies file for tests_energy.
# This may be replaced when dependencies are built.
