file(REMOVE_RECURSE
  "CMakeFiles/desc_core.dir/chunk.cc.o"
  "CMakeFiles/desc_core.dir/chunk.cc.o.d"
  "CMakeFiles/desc_core.dir/descscheme.cc.o"
  "CMakeFiles/desc_core.dir/descscheme.cc.o.d"
  "CMakeFiles/desc_core.dir/factory.cc.o"
  "CMakeFiles/desc_core.dir/factory.cc.o.d"
  "CMakeFiles/desc_core.dir/link.cc.o"
  "CMakeFiles/desc_core.dir/link.cc.o.d"
  "CMakeFiles/desc_core.dir/receiver.cc.o"
  "CMakeFiles/desc_core.dir/receiver.cc.o.d"
  "CMakeFiles/desc_core.dir/transmitter.cc.o"
  "CMakeFiles/desc_core.dir/transmitter.cc.o.d"
  "libdesc_core.a"
  "libdesc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
