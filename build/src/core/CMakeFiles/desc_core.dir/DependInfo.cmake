
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chunk.cc" "src/core/CMakeFiles/desc_core.dir/chunk.cc.o" "gcc" "src/core/CMakeFiles/desc_core.dir/chunk.cc.o.d"
  "/root/repo/src/core/descscheme.cc" "src/core/CMakeFiles/desc_core.dir/descscheme.cc.o" "gcc" "src/core/CMakeFiles/desc_core.dir/descscheme.cc.o.d"
  "/root/repo/src/core/factory.cc" "src/core/CMakeFiles/desc_core.dir/factory.cc.o" "gcc" "src/core/CMakeFiles/desc_core.dir/factory.cc.o.d"
  "/root/repo/src/core/link.cc" "src/core/CMakeFiles/desc_core.dir/link.cc.o" "gcc" "src/core/CMakeFiles/desc_core.dir/link.cc.o.d"
  "/root/repo/src/core/receiver.cc" "src/core/CMakeFiles/desc_core.dir/receiver.cc.o" "gcc" "src/core/CMakeFiles/desc_core.dir/receiver.cc.o.d"
  "/root/repo/src/core/transmitter.cc" "src/core/CMakeFiles/desc_core.dir/transmitter.cc.o" "gcc" "src/core/CMakeFiles/desc_core.dir/transmitter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/desc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/desc_encoding.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
