# Empty compiler generated dependencies file for desc_core.
# This may be replaced when dependencies are built.
