file(REMOVE_RECURSE
  "libdesc_core.a"
)
