file(REMOVE_RECURSE
  "libdesc_dram.a"
)
