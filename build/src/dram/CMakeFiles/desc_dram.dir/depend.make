# Empty dependencies file for desc_dram.
# This may be replaced when dependencies are built.
