file(REMOVE_RECURSE
  "CMakeFiles/desc_dram.dir/ddr3.cc.o"
  "CMakeFiles/desc_dram.dir/ddr3.cc.o.d"
  "libdesc_dram.a"
  "libdesc_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desc_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
