
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/encoding/binary.cc" "src/encoding/CMakeFiles/desc_encoding.dir/binary.cc.o" "gcc" "src/encoding/CMakeFiles/desc_encoding.dir/binary.cc.o.d"
  "/root/repo/src/encoding/businvert.cc" "src/encoding/CMakeFiles/desc_encoding.dir/businvert.cc.o" "gcc" "src/encoding/CMakeFiles/desc_encoding.dir/businvert.cc.o.d"
  "/root/repo/src/encoding/dzc.cc" "src/encoding/CMakeFiles/desc_encoding.dir/dzc.cc.o" "gcc" "src/encoding/CMakeFiles/desc_encoding.dir/dzc.cc.o.d"
  "/root/repo/src/encoding/scheme.cc" "src/encoding/CMakeFiles/desc_encoding.dir/scheme.cc.o" "gcc" "src/encoding/CMakeFiles/desc_encoding.dir/scheme.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/desc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
