# Empty compiler generated dependencies file for desc_encoding.
# This may be replaced when dependencies are built.
