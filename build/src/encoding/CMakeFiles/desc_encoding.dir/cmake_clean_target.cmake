file(REMOVE_RECURSE
  "libdesc_encoding.a"
)
