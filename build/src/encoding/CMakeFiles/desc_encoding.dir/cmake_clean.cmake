file(REMOVE_RECURSE
  "CMakeFiles/desc_encoding.dir/binary.cc.o"
  "CMakeFiles/desc_encoding.dir/binary.cc.o.d"
  "CMakeFiles/desc_encoding.dir/businvert.cc.o"
  "CMakeFiles/desc_encoding.dir/businvert.cc.o.d"
  "CMakeFiles/desc_encoding.dir/dzc.cc.o"
  "CMakeFiles/desc_encoding.dir/dzc.cc.o.d"
  "CMakeFiles/desc_encoding.dir/scheme.cc.o"
  "CMakeFiles/desc_encoding.dir/scheme.cc.o.d"
  "libdesc_encoding.a"
  "libdesc_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desc_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
