
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/energy_account.cc" "src/sim/CMakeFiles/desc_sim.dir/energy_account.cc.o" "gcc" "src/sim/CMakeFiles/desc_sim.dir/energy_account.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/sim/CMakeFiles/desc_sim.dir/experiment.cc.o" "gcc" "src/sim/CMakeFiles/desc_sim.dir/experiment.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/sim/CMakeFiles/desc_sim.dir/report.cc.o" "gcc" "src/sim/CMakeFiles/desc_sim.dir/report.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/sim/CMakeFiles/desc_sim.dir/system.cc.o" "gcc" "src/sim/CMakeFiles/desc_sim.dir/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/desc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/desc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/desc_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/desc_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/desc_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/desc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/desc_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/desc_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/desc_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
