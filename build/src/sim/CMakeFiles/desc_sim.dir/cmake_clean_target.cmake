file(REMOVE_RECURSE
  "libdesc_sim.a"
)
