# Empty dependencies file for desc_sim.
# This may be replaced when dependencies are built.
