file(REMOVE_RECURSE
  "CMakeFiles/desc_sim.dir/energy_account.cc.o"
  "CMakeFiles/desc_sim.dir/energy_account.cc.o.d"
  "CMakeFiles/desc_sim.dir/experiment.cc.o"
  "CMakeFiles/desc_sim.dir/experiment.cc.o.d"
  "CMakeFiles/desc_sim.dir/report.cc.o"
  "CMakeFiles/desc_sim.dir/report.cc.o.d"
  "CMakeFiles/desc_sim.dir/system.cc.o"
  "CMakeFiles/desc_sim.dir/system.cc.o.d"
  "libdesc_sim.a"
  "libdesc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
