file(REMOVE_RECURSE
  "CMakeFiles/desc_common.dir/bitvec.cc.o"
  "CMakeFiles/desc_common.dir/bitvec.cc.o.d"
  "CMakeFiles/desc_common.dir/log.cc.o"
  "CMakeFiles/desc_common.dir/log.cc.o.d"
  "CMakeFiles/desc_common.dir/stats.cc.o"
  "CMakeFiles/desc_common.dir/stats.cc.o.d"
  "CMakeFiles/desc_common.dir/table.cc.o"
  "CMakeFiles/desc_common.dir/table.cc.o.d"
  "libdesc_common.a"
  "libdesc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
