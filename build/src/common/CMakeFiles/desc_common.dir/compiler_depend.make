# Empty compiler generated dependencies file for desc_common.
# This may be replaced when dependencies are built.
