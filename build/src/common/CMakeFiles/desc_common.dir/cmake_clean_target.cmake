file(REMOVE_RECURSE
  "libdesc_common.a"
)
