# Empty compiler generated dependencies file for desc_energy.
# This may be replaced when dependencies are built.
