file(REMOVE_RECURSE
  "CMakeFiles/desc_energy.dir/cacti.cc.o"
  "CMakeFiles/desc_energy.dir/cacti.cc.o.d"
  "CMakeFiles/desc_energy.dir/mcpat.cc.o"
  "CMakeFiles/desc_energy.dir/mcpat.cc.o.d"
  "CMakeFiles/desc_energy.dir/synthesis.cc.o"
  "CMakeFiles/desc_energy.dir/synthesis.cc.o.d"
  "CMakeFiles/desc_energy.dir/tech.cc.o"
  "CMakeFiles/desc_energy.dir/tech.cc.o.d"
  "CMakeFiles/desc_energy.dir/wire.cc.o"
  "CMakeFiles/desc_energy.dir/wire.cc.o.d"
  "libdesc_energy.a"
  "libdesc_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desc_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
