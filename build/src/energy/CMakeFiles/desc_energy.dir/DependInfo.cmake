
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energy/cacti.cc" "src/energy/CMakeFiles/desc_energy.dir/cacti.cc.o" "gcc" "src/energy/CMakeFiles/desc_energy.dir/cacti.cc.o.d"
  "/root/repo/src/energy/mcpat.cc" "src/energy/CMakeFiles/desc_energy.dir/mcpat.cc.o" "gcc" "src/energy/CMakeFiles/desc_energy.dir/mcpat.cc.o.d"
  "/root/repo/src/energy/synthesis.cc" "src/energy/CMakeFiles/desc_energy.dir/synthesis.cc.o" "gcc" "src/energy/CMakeFiles/desc_energy.dir/synthesis.cc.o.d"
  "/root/repo/src/energy/tech.cc" "src/energy/CMakeFiles/desc_energy.dir/tech.cc.o" "gcc" "src/energy/CMakeFiles/desc_energy.dir/tech.cc.o.d"
  "/root/repo/src/energy/wire.cc" "src/energy/CMakeFiles/desc_energy.dir/wire.cc.o" "gcc" "src/energy/CMakeFiles/desc_energy.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/desc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
