file(REMOVE_RECURSE
  "libdesc_energy.a"
)
