# Empty compiler generated dependencies file for desc_cache.
# This may be replaced when dependencies are built.
