file(REMOVE_RECURSE
  "libdesc_cache.a"
)
