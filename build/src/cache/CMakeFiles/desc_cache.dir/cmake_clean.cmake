file(REMOVE_RECURSE
  "CMakeFiles/desc_cache.dir/hierarchy.cc.o"
  "CMakeFiles/desc_cache.dir/hierarchy.cc.o.d"
  "libdesc_cache.a"
  "libdesc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
