file(REMOVE_RECURSE
  "libdesc_ecc.a"
)
