# Empty compiler generated dependencies file for desc_ecc.
# This may be replaced when dependencies are built.
