file(REMOVE_RECURSE
  "CMakeFiles/desc_ecc.dir/blockcodec.cc.o"
  "CMakeFiles/desc_ecc.dir/blockcodec.cc.o.d"
  "CMakeFiles/desc_ecc.dir/hamming.cc.o"
  "CMakeFiles/desc_ecc.dir/hamming.cc.o.d"
  "CMakeFiles/desc_ecc.dir/injector.cc.o"
  "CMakeFiles/desc_ecc.dir/injector.cc.o.d"
  "libdesc_ecc.a"
  "libdesc_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desc_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
