file(REMOVE_RECURSE
  "libdesc_workloads.a"
)
