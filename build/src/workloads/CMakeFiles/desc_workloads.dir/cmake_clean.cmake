file(REMOVE_RECURSE
  "CMakeFiles/desc_workloads.dir/apps.cc.o"
  "CMakeFiles/desc_workloads.dir/apps.cc.o.d"
  "CMakeFiles/desc_workloads.dir/backing.cc.o"
  "CMakeFiles/desc_workloads.dir/backing.cc.o.d"
  "CMakeFiles/desc_workloads.dir/stream.cc.o"
  "CMakeFiles/desc_workloads.dir/stream.cc.o.d"
  "CMakeFiles/desc_workloads.dir/valuemodel.cc.o"
  "CMakeFiles/desc_workloads.dir/valuemodel.cc.o.d"
  "libdesc_workloads.a"
  "libdesc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
