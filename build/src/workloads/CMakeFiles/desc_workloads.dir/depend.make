# Empty dependencies file for desc_workloads.
# This may be replaced when dependencies are built.
