# Empty dependencies file for desc_cpu.
# This may be replaced when dependencies are built.
