file(REMOVE_RECURSE
  "libdesc_cpu.a"
)
