file(REMOVE_RECURSE
  "CMakeFiles/desc_cpu.dir/inorder.cc.o"
  "CMakeFiles/desc_cpu.dir/inorder.cc.o.d"
  "CMakeFiles/desc_cpu.dir/ooo.cc.o"
  "CMakeFiles/desc_cpu.dir/ooo.cc.o.d"
  "libdesc_cpu.a"
  "libdesc_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desc_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
