# Empty dependencies file for fig28_ecc_time.
# This may be replaced when dependencies are built.
