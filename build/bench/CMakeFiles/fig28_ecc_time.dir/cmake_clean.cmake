file(REMOVE_RECURSE
  "CMakeFiles/fig28_ecc_time.dir/fig28_ecc_time.cpp.o"
  "CMakeFiles/fig28_ecc_time.dir/fig28_ecc_time.cpp.o.d"
  "fig28_ecc_time"
  "fig28_ecc_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig28_ecc_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
