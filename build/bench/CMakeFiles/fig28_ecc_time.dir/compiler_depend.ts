# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig28_ecc_time.
