# Empty dependencies file for micro_encoders.
# This may be replaced when dependencies are built.
