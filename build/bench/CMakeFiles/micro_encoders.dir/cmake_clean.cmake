file(REMOVE_RECURSE
  "CMakeFiles/micro_encoders.dir/micro_encoders.cpp.o"
  "CMakeFiles/micro_encoders.dir/micro_encoders.cpp.o.d"
  "micro_encoders"
  "micro_encoders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_encoders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
