file(REMOVE_RECURSE
  "CMakeFiles/fig16_scheme_energy.dir/fig16_scheme_energy.cpp.o"
  "CMakeFiles/fig16_scheme_energy.dir/fig16_scheme_energy.cpp.o.d"
  "fig16_scheme_energy"
  "fig16_scheme_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_scheme_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
