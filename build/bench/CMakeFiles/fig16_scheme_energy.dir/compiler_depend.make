# Empty compiler generated dependencies file for fig16_scheme_energy.
# This may be replaced when dependencies are built.
