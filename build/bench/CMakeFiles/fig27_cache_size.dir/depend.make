# Empty dependencies file for fig27_cache_size.
# This may be replaced when dependencies are built.
