file(REMOVE_RECURSE
  "CMakeFiles/fig27_cache_size.dir/fig27_cache_size.cpp.o"
  "CMakeFiles/fig27_cache_size.dir/fig27_cache_size.cpp.o.d"
  "fig27_cache_size"
  "fig27_cache_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig27_cache_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
