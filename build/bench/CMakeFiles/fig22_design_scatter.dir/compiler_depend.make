# Empty compiler generated dependencies file for fig22_design_scatter.
# This may be replaced when dependencies are built.
