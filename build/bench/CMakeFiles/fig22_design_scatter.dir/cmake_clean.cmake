file(REMOVE_RECURSE
  "CMakeFiles/fig22_design_scatter.dir/fig22_design_scatter.cpp.o"
  "CMakeFiles/fig22_design_scatter.dir/fig22_design_scatter.cpp.o.d"
  "fig22_design_scatter"
  "fig22_design_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_design_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
