# Empty dependencies file for fig14_device_space.
# This may be replaced when dependencies are built.
