file(REMOVE_RECURSE
  "CMakeFiles/fig14_device_space.dir/fig14_device_space.cpp.o"
  "CMakeFiles/fig14_device_space.dir/fig14_device_space.cpp.o.d"
  "fig14_device_space"
  "fig14_device_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_device_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
