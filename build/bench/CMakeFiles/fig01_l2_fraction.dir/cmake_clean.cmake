file(REMOVE_RECURSE
  "CMakeFiles/fig01_l2_fraction.dir/fig01_l2_fraction.cpp.o"
  "CMakeFiles/fig01_l2_fraction.dir/fig01_l2_fraction.cpp.o.d"
  "fig01_l2_fraction"
  "fig01_l2_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_l2_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
