# Empty dependencies file for fig01_l2_fraction.
# This may be replaced when dependencies are built.
