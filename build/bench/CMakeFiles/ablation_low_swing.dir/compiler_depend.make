# Empty compiler generated dependencies file for ablation_low_swing.
# This may be replaced when dependencies are built.
