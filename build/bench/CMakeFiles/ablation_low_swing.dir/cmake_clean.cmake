file(REMOVE_RECURSE
  "CMakeFiles/ablation_low_swing.dir/ablation_low_swing.cpp.o"
  "CMakeFiles/ablation_low_swing.dir/ablation_low_swing.cpp.o.d"
  "ablation_low_swing"
  "ablation_low_swing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_low_swing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
