# Empty compiler generated dependencies file for ablation_protocol.
# This may be replaced when dependencies are built.
