file(REMOVE_RECURSE
  "CMakeFiles/ablation_protocol.dir/ablation_protocol.cpp.o"
  "CMakeFiles/ablation_protocol.dir/ablation_protocol.cpp.o.d"
  "ablation_protocol"
  "ablation_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
