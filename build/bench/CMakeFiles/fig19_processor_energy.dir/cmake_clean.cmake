file(REMOVE_RECURSE
  "CMakeFiles/fig19_processor_energy.dir/fig19_processor_energy.cpp.o"
  "CMakeFiles/fig19_processor_energy.dir/fig19_processor_energy.cpp.o.d"
  "fig19_processor_energy"
  "fig19_processor_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_processor_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
