file(REMOVE_RECURSE
  "CMakeFiles/fig30_spec_ooo.dir/fig30_spec_ooo.cpp.o"
  "CMakeFiles/fig30_spec_ooo.dir/fig30_spec_ooo.cpp.o.d"
  "fig30_spec_ooo"
  "fig30_spec_ooo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig30_spec_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
