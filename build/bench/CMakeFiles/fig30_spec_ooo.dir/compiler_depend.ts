# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig30_spec_ooo.
