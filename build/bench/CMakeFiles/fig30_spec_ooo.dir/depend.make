# Empty dependencies file for fig30_spec_ooo.
# This may be replaced when dependencies are built.
