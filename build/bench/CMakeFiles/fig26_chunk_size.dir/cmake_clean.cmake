file(REMOVE_RECURSE
  "CMakeFiles/fig26_chunk_size.dir/fig26_chunk_size.cpp.o"
  "CMakeFiles/fig26_chunk_size.dir/fig26_chunk_size.cpp.o.d"
  "fig26_chunk_size"
  "fig26_chunk_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig26_chunk_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
