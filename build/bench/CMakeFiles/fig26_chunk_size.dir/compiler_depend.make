# Empty compiler generated dependencies file for fig26_chunk_size.
# This may be replaced when dependencies are built.
