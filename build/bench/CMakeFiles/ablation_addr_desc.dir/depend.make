# Empty dependencies file for ablation_addr_desc.
# This may be replaced when dependencies are built.
