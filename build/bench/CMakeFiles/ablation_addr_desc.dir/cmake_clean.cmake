file(REMOVE_RECURSE
  "CMakeFiles/ablation_addr_desc.dir/ablation_addr_desc.cpp.o"
  "CMakeFiles/ablation_addr_desc.dir/ablation_addr_desc.cpp.o.d"
  "ablation_addr_desc"
  "ablation_addr_desc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_addr_desc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
