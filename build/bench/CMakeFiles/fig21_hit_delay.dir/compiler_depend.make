# Empty compiler generated dependencies file for fig21_hit_delay.
# This may be replaced when dependencies are built.
