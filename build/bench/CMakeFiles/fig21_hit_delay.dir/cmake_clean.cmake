file(REMOVE_RECURSE
  "CMakeFiles/fig21_hit_delay.dir/fig21_hit_delay.cpp.o"
  "CMakeFiles/fig21_hit_delay.dir/fig21_hit_delay.cpp.o.d"
  "fig21_hit_delay"
  "fig21_hit_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_hit_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
