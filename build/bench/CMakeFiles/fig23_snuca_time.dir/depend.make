# Empty dependencies file for fig23_snuca_time.
# This may be replaced when dependencies are built.
