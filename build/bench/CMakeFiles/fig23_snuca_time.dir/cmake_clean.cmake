file(REMOVE_RECURSE
  "CMakeFiles/fig23_snuca_time.dir/fig23_snuca_time.cpp.o"
  "CMakeFiles/fig23_snuca_time.dir/fig23_snuca_time.cpp.o.d"
  "fig23_snuca_time"
  "fig23_snuca_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_snuca_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
