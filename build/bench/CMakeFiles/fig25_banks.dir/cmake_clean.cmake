file(REMOVE_RECURSE
  "CMakeFiles/fig25_banks.dir/fig25_banks.cpp.o"
  "CMakeFiles/fig25_banks.dir/fig25_banks.cpp.o.d"
  "fig25_banks"
  "fig25_banks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig25_banks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
