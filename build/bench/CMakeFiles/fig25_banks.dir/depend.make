# Empty dependencies file for fig25_banks.
# This may be replaced when dependencies are built.
