# Empty dependencies file for fig15_segment_sweep.
# This may be replaced when dependencies are built.
