
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig15_segment_sweep.cpp" "bench/CMakeFiles/fig15_segment_sweep.dir/fig15_segment_sweep.cpp.o" "gcc" "bench/CMakeFiles/fig15_segment_sweep.dir/fig15_segment_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/desc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/desc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/desc_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/desc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/desc_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/desc_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/desc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/desc_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/desc_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/desc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
