file(REMOVE_RECURSE
  "CMakeFiles/fig20_exec_time.dir/fig20_exec_time.cpp.o"
  "CMakeFiles/fig20_exec_time.dir/fig20_exec_time.cpp.o.d"
  "fig20_exec_time"
  "fig20_exec_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_exec_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
