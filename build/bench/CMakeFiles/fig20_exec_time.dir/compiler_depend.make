# Empty compiler generated dependencies file for fig20_exec_time.
# This may be replaced when dependencies are built.
