# Empty dependencies file for fig12_chunk_values.
# This may be replaced when dependencies are built.
