file(REMOVE_RECURSE
  "CMakeFiles/fig12_chunk_values.dir/fig12_chunk_values.cpp.o"
  "CMakeFiles/fig12_chunk_values.dir/fig12_chunk_values.cpp.o.d"
  "fig12_chunk_values"
  "fig12_chunk_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_chunk_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
