file(REMOVE_RECURSE
  "CMakeFiles/fig17_synthesis.dir/fig17_synthesis.cpp.o"
  "CMakeFiles/fig17_synthesis.dir/fig17_synthesis.cpp.o.d"
  "fig17_synthesis"
  "fig17_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
