# Empty compiler generated dependencies file for fig17_synthesis.
# This may be replaced when dependencies are built.
