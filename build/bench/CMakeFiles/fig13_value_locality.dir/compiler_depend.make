# Empty compiler generated dependencies file for fig13_value_locality.
# This may be replaced when dependencies are built.
