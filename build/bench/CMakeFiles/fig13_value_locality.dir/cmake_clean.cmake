file(REMOVE_RECURSE
  "CMakeFiles/fig13_value_locality.dir/fig13_value_locality.cpp.o"
  "CMakeFiles/fig13_value_locality.dir/fig13_value_locality.cpp.o.d"
  "fig13_value_locality"
  "fig13_value_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_value_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
