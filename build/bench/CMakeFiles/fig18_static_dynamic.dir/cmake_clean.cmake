file(REMOVE_RECURSE
  "CMakeFiles/fig18_static_dynamic.dir/fig18_static_dynamic.cpp.o"
  "CMakeFiles/fig18_static_dynamic.dir/fig18_static_dynamic.cpp.o.d"
  "fig18_static_dynamic"
  "fig18_static_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_static_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
