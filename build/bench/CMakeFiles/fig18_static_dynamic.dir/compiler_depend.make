# Empty compiler generated dependencies file for fig18_static_dynamic.
# This may be replaced when dependencies are built.
