file(REMOVE_RECURSE
  "CMakeFiles/fig24_snuca_energy.dir/fig24_snuca_energy.cpp.o"
  "CMakeFiles/fig24_snuca_energy.dir/fig24_snuca_energy.cpp.o.d"
  "fig24_snuca_energy"
  "fig24_snuca_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_snuca_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
