# Empty compiler generated dependencies file for fig24_snuca_energy.
# This may be replaced when dependencies are built.
