# Empty dependencies file for fig02_l2_breakdown.
# This may be replaced when dependencies are built.
