file(REMOVE_RECURSE
  "CMakeFiles/fig02_l2_breakdown.dir/fig02_l2_breakdown.cpp.o"
  "CMakeFiles/fig02_l2_breakdown.dir/fig02_l2_breakdown.cpp.o.d"
  "fig02_l2_breakdown"
  "fig02_l2_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_l2_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
