# Empty compiler generated dependencies file for fig29_ecc_energy.
# This may be replaced when dependencies are built.
