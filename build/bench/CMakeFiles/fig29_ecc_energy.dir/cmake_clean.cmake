file(REMOVE_RECURSE
  "CMakeFiles/fig29_ecc_energy.dir/fig29_ecc_energy.cpp.o"
  "CMakeFiles/fig29_ecc_energy.dir/fig29_ecc_energy.cpp.o.d"
  "fig29_ecc_energy"
  "fig29_ecc_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig29_ecc_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
