file(REMOVE_RECURSE
  "CMakeFiles/ecc_demo.dir/ecc_demo.cpp.o"
  "CMakeFiles/ecc_demo.dir/ecc_demo.cpp.o.d"
  "ecc_demo"
  "ecc_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
