# Empty compiler generated dependencies file for ecc_demo.
# This may be replaced when dependencies are built.
