file(REMOVE_RECURSE
  "CMakeFiles/waveforms.dir/waveforms.cpp.o"
  "CMakeFiles/waveforms.dir/waveforms.cpp.o.d"
  "waveforms"
  "waveforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waveforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
