# Empty dependencies file for waveforms.
# This may be replaced when dependencies are built.
