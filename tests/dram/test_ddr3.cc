/**
 * @file
 * Unit tests for the DDR3 FR-FCFS channel model.
 */

#include <cstdint>
#include <iterator>
#include <vector>

#include <gtest/gtest.h>

#include "dram/ddr3.hh"

using namespace desc;
using namespace desc::dram;

namespace {

struct Fixture
{
    sim::EventQueue eq;
    DramSystem dram{eq};
};

} // namespace

TEST(Ddr3, SingleAccessCompletes)
{
    Fixture f;
    Cycle done_at = 0;
    f.dram.access(0x1000, false, [&]() { done_at = f.eq.now(); });
    f.eq.run();
    EXPECT_GT(done_at, 0u);
    EXPECT_EQ(f.dram.stats().reads.value(), 1u);
    EXPECT_EQ(f.dram.stats().row_misses.value(), 1u);
}

TEST(Ddr3, RowHitIsFasterThanRowMiss)
{
    Fixture f;
    Cycle first = 0, second = 0, third = 0;
    // Same row twice, then a different row in the same bank.
    f.dram.access(0x0000, false, [&]() { first = f.eq.now(); });
    f.eq.run();
    Cycle t1 = f.eq.now();
    f.dram.access(0x400, false,
                  [&]() { second = f.eq.now(); }); // bank 0, row 0
    f.eq.run();
    Cycle hit_latency = second - t1;
    Cycle t2 = f.eq.now();
    f.dram.access(Addr{1} << 20, false, [&]() { third = f.eq.now(); });
    f.eq.run();
    Cycle miss_latency = third - t2;
    (void)first;
    EXPECT_LT(hit_latency, miss_latency);
    EXPECT_GE(f.dram.stats().row_hits.value(), 1u);
}

TEST(Ddr3, FrFcfsPrefersRowHits)
{
    // Enqueue a row-miss to bank B then a row-hit to the open row of
    // bank B; with FR-FCFS the hit is served first.
    Fixture f;
    // Open a row first.
    f.dram.access(0x0000, false, nullptr);
    f.eq.run();

    std::vector<int> order;
    // Saturate channel 0's overlap (bank 1) so both requests queue.
    DramConfig cfg;
    for (unsigned i = 0; i < cfg.max_overlap; i++)
        f.dram.access((Addr{3} << 20) + 0x80, false, nullptr);
    f.dram.access(Addr{5} << 16, false,
                  [&]() { order.push_back(1); }); // bank 0, row miss
    f.dram.access(0x400, false,
                  [&]() { order.push_back(2); }); // bank 0, row 0 hit
    f.eq.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 2);
    EXPECT_EQ(order[1], 1);
}

TEST(Ddr3, ChannelsInterleaveByBlock)
{
    Fixture f;
    // Blocks 0 and 1 land on different channels; they overlap, so the
    // pair completes sooner than two serialized accesses.
    Cycle both = 0;
    unsigned done = 0;
    auto cb = [&]() {
        if (++done == 2)
            both = f.eq.now();
    };
    f.dram.access(0 << 6, false, cb);
    f.dram.access(1 << 6, false, cb);
    f.eq.run();
    Cycle parallel_time = both;

    Fixture g;
    Cycle serial_end = 0;
    g.dram.access(0 << 6, false, nullptr);
    g.eq.run();
    Cycle one = g.eq.now();
    g.dram.access(2 << 6, false, [&]() { serial_end = g.eq.now(); });
    g.eq.run();
    EXPECT_LT(parallel_time, one + (serial_end - one));
}

TEST(Ddr3, LatencySamplesAreRecorded)
{
    Fixture f;
    for (int i = 0; i < 10; i++)
        f.dram.access(Addr(i) << 16, false, nullptr);
    f.eq.run();
    EXPECT_EQ(f.dram.stats().latency.count(), 10u);
    EXPECT_GT(f.dram.stats().latency.mean(), 0.0);
}

TEST(Ddr3, WritesCounted)
{
    Fixture f;
    f.dram.access(0x40, true, nullptr);
    f.eq.run();
    EXPECT_EQ(f.dram.stats().writes.value(), 1u);
    EXPECT_EQ(f.dram.stats().reads.value(), 0u);
}

TEST(Ddr3, SchedulingOrderMatchesGolden)
{
    // Completion order of a deterministic pseudo-random workload,
    // captured from the straightforward queue-scanning FR-FCFS
    // implementation before the per-bank queued_hits index was added.
    // The index is a pure lookup accelerator: any divergence from this
    // sequence means the scheduling policy changed.
    static const unsigned kGolden[] = {
        0, 3, 1, 4, 2, 5, 7, 6, 19, 8, 9, 10, 109, 38, 12, 16, 11, 17,
        13, 65, 117, 14, 31, 66, 21, 22, 98, 23, 15, 69, 44, 86, 25,
        26, 27, 18, 72, 57, 28, 82, 32, 20, 24, 89, 40, 42, 45, 29, 48,
        30, 84, 49, 50, 33, 34, 43, 54, 99, 61, 62, 35, 75, 36, 67, 73,
        81, 37, 159, 39, 166, 144, 155, 110, 145, 195, 176, 90, 190,
        197, 163, 199, 87, 94, 95, 41, 97, 46, 96, 47, 101, 74, 158,
        152, 131, 51, 183, 106, 188, 52, 184, 53, 80, 115, 102, 139,
        56, 85, 126, 104, 55, 111, 100, 112, 113, 58, 59, 186, 114,
        156, 60, 121, 88, 179, 68, 119, 63, 118, 64, 122, 103, 78, 137,
        107, 123, 124, 70, 125, 79, 165, 127, 128, 71, 130, 76, 135,
        173, 168, 161, 194, 143, 148, 77, 146, 83, 147, 91, 187, 151,
        153, 92, 154, 93, 167, 105, 196, 108, 191, 169, 116, 171, 120,
        172, 174, 175, 129, 177, 132, 181, 133, 182, 140, 189, 141,
        185, 193, 192, 134, 136, 138, 142, 149, 150, 157, 160, 164,
        162, 170, 178, 180, 198,
    };
    const Cycle kGoldenFinalCycle = 5195;

    Fixture f;
    std::uint64_t lcg = 12345;
    auto next = [&] {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return unsigned(lcg >> 33);
    };
    auto addr_of = [&](unsigned r) {
        return (Addr(r % 7) << 16)        // 7 distinct rows
            | (Addr((r / 7) % 16) << 7)   // bank spread
            | (Addr((r / 113) % 2) << 6); // channel spread
    };

    std::vector<unsigned> order;
    bool second_phase = false;
    for (unsigned i = 0; i < 120; i++) {
        unsigned r = next();
        f.dram.access(addr_of(r), (r & 1) != 0, [&, i] {
            order.push_back(i);
            // Mid-run burst: later requests arrive while earlier ones
            // drain, so enqueue and issue interleave.
            if (order.size() == 60 && !second_phase) {
                second_phase = true;
                for (unsigned j = 0; j < 80; j++) {
                    unsigned r2 = next();
                    f.dram.access(addr_of(r2), (r2 & 1) != 0, [&, j] {
                        order.push_back(120 + j);
                    });
                }
            }
        });
    }
    f.eq.run();

    ASSERT_EQ(order.size(), std::size(kGolden));
    for (std::size_t i = 0; i < order.size(); i++)
        ASSERT_EQ(order[i], kGolden[i]) << "divergence at completion " << i;
    EXPECT_EQ(f.eq.now(), kGoldenFinalCycle);
}

TEST(Ddr3, RowHitLatencyMatchesTimingParameters)
{
    Fixture f;
    DramConfig cfg;
    // tCL + tBurst memory cycles at the clock ratio.
    double ratio = cfg.core_ghz / cfg.mem_ghz;
    Cycle expect = Cycle((cfg.tCL + cfg.tBurst) * ratio + 0.999);
    EXPECT_NEAR(double(f.dram.rowHitLatency()), double(expect), 2.0);
}
