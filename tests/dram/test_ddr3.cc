/**
 * @file
 * Unit tests for the DDR3 FR-FCFS channel model.
 */

#include <gtest/gtest.h>

#include "dram/ddr3.hh"

using namespace desc;
using namespace desc::dram;

namespace {

struct Fixture
{
    sim::EventQueue eq;
    DramSystem dram{eq};
};

} // namespace

TEST(Ddr3, SingleAccessCompletes)
{
    Fixture f;
    Cycle done_at = 0;
    f.dram.access(0x1000, false, [&]() { done_at = f.eq.now(); });
    f.eq.run();
    EXPECT_GT(done_at, 0u);
    EXPECT_EQ(f.dram.stats().reads.value(), 1u);
    EXPECT_EQ(f.dram.stats().row_misses.value(), 1u);
}

TEST(Ddr3, RowHitIsFasterThanRowMiss)
{
    Fixture f;
    Cycle first = 0, second = 0, third = 0;
    // Same row twice, then a different row in the same bank.
    f.dram.access(0x0000, false, [&]() { first = f.eq.now(); });
    f.eq.run();
    Cycle t1 = f.eq.now();
    f.dram.access(0x400, false,
                  [&]() { second = f.eq.now(); }); // bank 0, row 0
    f.eq.run();
    Cycle hit_latency = second - t1;
    Cycle t2 = f.eq.now();
    f.dram.access(Addr{1} << 20, false, [&]() { third = f.eq.now(); });
    f.eq.run();
    Cycle miss_latency = third - t2;
    (void)first;
    EXPECT_LT(hit_latency, miss_latency);
    EXPECT_GE(f.dram.stats().row_hits.value(), 1u);
}

TEST(Ddr3, FrFcfsPrefersRowHits)
{
    // Enqueue a row-miss to bank B then a row-hit to the open row of
    // bank B; with FR-FCFS the hit is served first.
    Fixture f;
    // Open a row first.
    f.dram.access(0x0000, false, nullptr);
    f.eq.run();

    std::vector<int> order;
    // Saturate channel 0's overlap (bank 1) so both requests queue.
    DramConfig cfg;
    for (unsigned i = 0; i < cfg.max_overlap; i++)
        f.dram.access((Addr{3} << 20) + 0x80, false, nullptr);
    f.dram.access(Addr{5} << 16, false,
                  [&]() { order.push_back(1); }); // bank 0, row miss
    f.dram.access(0x400, false,
                  [&]() { order.push_back(2); }); // bank 0, row 0 hit
    f.eq.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 2);
    EXPECT_EQ(order[1], 1);
}

TEST(Ddr3, ChannelsInterleaveByBlock)
{
    Fixture f;
    // Blocks 0 and 1 land on different channels; they overlap, so the
    // pair completes sooner than two serialized accesses.
    Cycle both = 0;
    unsigned done = 0;
    auto cb = [&]() {
        if (++done == 2)
            both = f.eq.now();
    };
    f.dram.access(0 << 6, false, cb);
    f.dram.access(1 << 6, false, cb);
    f.eq.run();
    Cycle parallel_time = both;

    Fixture g;
    Cycle serial_end = 0;
    g.dram.access(0 << 6, false, nullptr);
    g.eq.run();
    Cycle one = g.eq.now();
    g.dram.access(2 << 6, false, [&]() { serial_end = g.eq.now(); });
    g.eq.run();
    EXPECT_LT(parallel_time, one + (serial_end - one));
}

TEST(Ddr3, LatencySamplesAreRecorded)
{
    Fixture f;
    for (int i = 0; i < 10; i++)
        f.dram.access(Addr(i) << 16, false, nullptr);
    f.eq.run();
    EXPECT_EQ(f.dram.stats().latency.count(), 10u);
    EXPECT_GT(f.dram.stats().latency.mean(), 0.0);
}

TEST(Ddr3, WritesCounted)
{
    Fixture f;
    f.dram.access(0x40, true, nullptr);
    f.eq.run();
    EXPECT_EQ(f.dram.stats().writes.value(), 1u);
    EXPECT_EQ(f.dram.stats().reads.value(), 0u);
}

TEST(Ddr3, RowHitLatencyMatchesTimingParameters)
{
    Fixture f;
    DramConfig cfg;
    // tCL + tBurst memory cycles at the clock ratio.
    double ratio = cfg.core_ghz / cfg.mem_ghz;
    Cycle expect = Cycle((cfg.tCL + cfg.tBurst) * ratio + 0.999);
    EXPECT_NEAR(double(f.dram.rowHitLatency()), double(expect), 2.0);
}
