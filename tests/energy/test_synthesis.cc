/**
 * @file
 * Unit tests for the DESC interface synthesis model (Figure 17).
 */

#include <gtest/gtest.h>

#include "energy/synthesis.hh"

using namespace desc::energy;

TEST(Synthesis, AreaNearPaperFigure17)
{
    // Figure 17: a 128-chunk transmitter and receiver each occupy on
    // the order of 1500-2000 um^2 at 22nm; the interface as a whole
    // is ~2120 um^2 per mat-level slice, i.e. a few thousand um^2
    // for the full 128-chunk pair.
    DescSynthesisModel m;
    EXPECT_GT(m.transmitter().area_um2, 800.0);
    EXPECT_LT(m.transmitter().area_um2, 4000.0);
    EXPECT_GT(m.receiver().area_um2, 500.0);
    EXPECT_LT(m.receiver().area_um2, 4000.0);
    EXPECT_GT(m.transmitter().area_um2, m.receiver().area_um2);
}

TEST(Synthesis, PeakPowerNearPaper46mW)
{
    DescSynthesisModel m;
    double total = m.transmitter().peak_power_mw
        + m.receiver().peak_power_mw;
    EXPECT_GT(total, 15.0);
    EXPECT_LT(total, 90.0);
}

TEST(Synthesis, RoundTripDelayNearPaper625ps)
{
    DescSynthesisModel m;
    EXPECT_GT(m.roundTripDelayNs(), 0.3);
    EXPECT_LT(m.roundTripDelayNs(), 1.0);
}

TEST(Synthesis, AreaScalesWithChunkCount)
{
    DescSynthesisModel full(128, 4);
    DescSynthesisModel half(64, 4);
    EXPECT_GT(full.transmitter().area_um2,
              1.8 * half.transmitter().area_um2 * 0.9);
    EXPECT_LT(half.transmitter().area_um2, full.transmitter().area_um2);
}

TEST(Synthesis, Node45IsBiggerAndSlower)
{
    DescSynthesisModel n22(128, 4, tech22());
    DescSynthesisModel n45(128, 4, tech45());
    EXPECT_GT(n45.transmitter().area_um2, n22.transmitter().area_um2);
    EXPECT_GT(n45.roundTripDelayNs(), n22.roundTripDelayNs());
}

TEST(Synthesis, BusyCycleEnergyIsSmallVsHtreeFlips)
{
    // DESC consumes dynamic power only during transfers; per busy
    // cycle the interface must cost no more than a few picojoules.
    DescSynthesisModel m;
    EXPECT_GT(m.interfaceEnergyPerBusyCycle(), 0.0);
    EXPECT_LT(m.interfaceEnergyPerBusyCycle(), 20e-12);
}
