/**
 * @file
 * Unit tests for the ITRS technology tables.
 */

#include <gtest/gtest.h>

#include "energy/tech.hh"

using namespace desc::energy;

TEST(Tech, DeviceNames)
{
    EXPECT_STREQ(deviceName(Device::HP), "HP");
    EXPECT_STREQ(deviceName(Device::LOP), "LOP");
    EXPECT_STREQ(deviceName(Device::LSTP), "LSTP");
}

TEST(Tech, Table3Parameters)
{
    // Table 3 of the paper: 45nm at 1.1V/20.25ps FO4, 22nm at
    // 0.83V/11.75ps FO4.
    EXPECT_DOUBLE_EQ(tech45().vdd, 1.1);
    EXPECT_DOUBLE_EQ(tech45().fo4_ps, 20.25);
    EXPECT_DOUBLE_EQ(tech22().vdd, 0.83);
    EXPECT_DOUBLE_EQ(tech22().fo4_ps, 11.75);
}

TEST(Tech, LeakageOrderingAcrossDevices)
{
    // The entire Figure 14 design-space result rests on
    // HP >> LOP >> LSTP leakage.
    const auto &t = tech22();
    EXPECT_GT(t.device(Device::HP).cell_leak_nw,
              100 * t.device(Device::LOP).cell_leak_nw / 10);
    EXPECT_GT(t.device(Device::LOP).cell_leak_nw,
              10 * t.device(Device::LSTP).cell_leak_nw);
    EXPECT_GT(t.device(Device::HP).cell_leak_nw,
              1000 * t.device(Device::LSTP).cell_leak_nw);
}

TEST(Tech, LstpArraysAreSlower)
{
    // Paper footnote 3: HP arrays are about twice as fast as LSTP.
    const auto &t = tech22();
    EXPECT_DOUBLE_EQ(t.device(Device::LSTP).access_time_factor, 2.0);
    EXPECT_LT(t.device(Device::HP).access_time_factor,
              t.device(Device::LOP).access_time_factor);
}

TEST(Tech, ScalingShrinksEnergyAndArea)
{
    for (Device d : {Device::HP, Device::LOP, Device::LSTP}) {
        EXPECT_LT(tech22().device(d).cell_area_um2,
                  tech45().device(d).cell_area_um2);
        EXPECT_LT(tech22().device(d).cell_read_fj,
                  tech45().device(d).cell_read_fj);
    }
    EXPECT_LT(tech22().gate_area_um2, tech45().gate_area_um2);
}
