/**
 * @file
 * Unit tests for the CACTI-lite cache geometry/energy model.
 */

#include <gtest/gtest.h>

#include "energy/cacti.hh"

using namespace desc::energy;

namespace {

CacheOrg
baseline()
{
    return CacheOrg{}; // 8MB, 16-way, 8 banks, 64-bit bus, LSTP-LSTP
}

} // namespace

TEST(Cacti, BaselineGeometryIsPlausible)
{
    CacheEnergyModel m(baseline());
    // An 8MB 22nm LSTP SRAM occupies on the order of 10 mm^2.
    EXPECT_GT(m.geometry().total_area_mm2, 4.0);
    EXPECT_LT(m.geometry().total_area_mm2, 40.0);
    EXPECT_GT(m.geometry().htree_path_mm, 1.0);
    EXPECT_LT(m.geometry().htree_path_mm, 12.0);
}

TEST(Cacti, CapacityGrowsAreaAndPath)
{
    CacheOrg small = baseline(), big = baseline();
    small.capacity_bytes = 512ull << 10;
    big.capacity_bytes = 64ull << 20;
    CacheEnergyModel ms(small), mb(big);
    EXPECT_LT(ms.geometry().total_area_mm2, mb.geometry().total_area_mm2);
    EXPECT_LT(ms.geometry().htree_path_mm, mb.geometry().htree_path_mm);
    EXPECT_LT(ms.htreeFlipEnergy(), mb.htreeFlipEnergy());
    EXPECT_LT(ms.leakagePower(), mb.leakagePower());
}

TEST(Cacti, HpLeaksOrdersOfMagnitudeMoreThanLstp)
{
    CacheOrg lstp = baseline(), hp = baseline();
    hp.cell_dev = Device::HP;
    hp.periph_dev = Device::HP;
    CacheEnergyModel ml(lstp), mh(hp);
    EXPECT_GT(mh.leakagePower(), 500.0 * ml.leakagePower());
}

TEST(Cacti, PeripheryDeviceMattersIndependently)
{
    CacheOrg a = baseline(), b = baseline();
    b.periph_dev = Device::HP; // LSTP cells, HP periphery
    CacheEnergyModel ma(a), mb(b);
    EXPECT_GT(mb.leakagePower(), 10.0 * ma.leakagePower());
}

TEST(Cacti, LstpBaselineLeakageIsMilliwattScale)
{
    CacheEnergyModel m(baseline());
    EXPECT_GT(m.leakagePower(), 1e-4);
    EXPECT_LT(m.leakagePower(), 0.2);
}

TEST(Cacti, HitLatencyNearPaperTable1)
{
    // Table 1: L2 hit delay 19 cycles (including 8-beat serialization
    // on the 64-bit bus, which the simulator adds on top of this).
    CacheEnergyModel m(baseline());
    unsigned with_transfer = m.hitLatencyCycles() + 512 / 64;
    EXPECT_GE(with_transfer, 14u);
    EXPECT_LE(with_transfer, 26u);
}

TEST(Cacti, HpArraysAreFaster)
{
    CacheOrg hp = baseline();
    hp.cell_dev = Device::HP;
    CacheEnergyModel mh(hp), ml(baseline());
    EXPECT_LT(mh.hitLatencyCycles(), ml.hitLatencyCycles());
}

TEST(Cacti, MoreBanksShortenBankPath)
{
    CacheOrg few = baseline(), many = baseline();
    few.banks = 2;
    many.banks = 64;
    CacheEnergyModel mf(few), mm(many);
    // Same total area; smaller banks mean shorter bank-internal trees.
    EXPECT_NEAR(mf.geometry().total_area_mm2,
                mm.geometry().total_area_mm2, 1e-9);
    EXPECT_GT(mf.geometry().htree_path_mm, mm.geometry().htree_path_mm);
}

TEST(Cacti, ReadWriteAndTagEnergiesOrdered)
{
    CacheEnergyModel m(baseline());
    EXPECT_GT(m.arrayWriteEnergy(), m.arrayReadEnergy());
    EXPECT_GT(m.arrayReadEnergy(), m.tagAccessEnergy());
    EXPECT_GT(m.htreeFlipEnergy(), 0.0);
}

TEST(CactiDeath, RejectsNonPowerOfTwoBanks)
{
    CacheOrg bad = baseline();
    bad.banks = 3;
    EXPECT_DEATH(CacheEnergyModel m(bad), "power of two");
}

TEST(Cacti, LowSwingHtreeReducesFlipEnergyOnly)
{
    CacheOrg fs = baseline(), ls = baseline();
    ls.low_swing = true;
    CacheEnergyModel mf(fs), ml(ls);
    EXPECT_LT(ml.htreeFlipEnergy(), mf.htreeFlipEnergy());
    EXPECT_DOUBLE_EQ(ml.arrayReadEnergy(), mf.arrayReadEnergy());
    EXPECT_DOUBLE_EQ(ml.leakagePower(), mf.leakagePower());
}

TEST(Cacti, PerBankOverheadsGrowWithBankCount)
{
    // Figure 25: beyond the sweet spot, per-bank leakage and decode
    // overheads make high bank counts lose.
    CacheOrg few = baseline(), many = baseline();
    few.banks = 8;
    many.banks = 64;
    CacheEnergyModel mf(few), mm(many);
    EXPECT_GT(mm.leakagePower(), mf.leakagePower());
    EXPECT_GT(mm.arrayReadEnergy(), mf.arrayReadEnergy());
}
