/**
 * @file
 * Unit tests for the repeatered-wire model.
 */

#include <gtest/gtest.h>

#include "energy/wire.hh"

using namespace desc::energy;

TEST(Wire, EnergyIsAffineInLength)
{
    // flip energy = driver constant + per-mm wire charge.
    WireModel one(tech22(), 1.0), two(tech22(), 2.0),
        three(tech22(), 3.0);
    double slope12 = two.flipEnergy() - one.flipEnergy();
    double slope23 = three.flipEnergy() - two.flipEnergy();
    EXPECT_NEAR(slope12, slope23, 1e-18);
    EXPECT_GT(slope12, 0.0);
}

TEST(Wire, FlipEnergyInPicojouleBallpark)
{
    // A ~4mm repeatered 22nm wire switches a fraction of a picojoule.
    WireModel w(tech22(), 4.0);
    EXPECT_GT(w.flipEnergy(), 0.1e-12);
    EXPECT_LT(w.flipEnergy(), 2.0e-12);
}

TEST(Wire, DelayScalesLinearly)
{
    WireModel one(tech22(), 1.0), three(tech22(), 3.0);
    EXPECT_NEAR(three.delayPs(), 3.0 * one.delayPs(), 1e-9);
}

TEST(Wire, DelayCyclesCeils)
{
    // 85 ps/mm at 3.2 GHz (312.5 ps/cycle): 4mm = 340ps -> 2 cycles.
    WireModel w(tech22(), 4.0);
    EXPECT_EQ(w.delayCycles(3.2), 2u);
    WireModel s(tech22(), 1.0);
    EXPECT_EQ(s.delayCycles(3.2), 1u);
}

TEST(Wire, HigherVddCostsMoreEnergy)
{
    WireModel w45(tech45(), 2.0), w22(tech22(), 2.0);
    EXPECT_GT(w45.flipEnergy(), w22.flipEnergy());
}

TEST(Wire, ZeroLengthCostsOnlyTheDriver)
{
    WireModel w(tech22(), 0.0);
    EXPECT_DOUBLE_EQ(w.flipEnergy(), tech22().wire_driver_fj * 1e-15);
    EXPECT_DOUBLE_EQ(w.delayPs(), 0.0);
}

TEST(Wire, LowSwingCutsEnergyPerTransition)
{
    WireModel full(tech22(), 4.0);
    WireModel low(tech22(), 4.0, 0.25);
    // Swing at 0.25V from a 0.83V rail: roughly a 2-3x energy cut on
    // the wire charge, minus the sense-amp overhead.
    EXPECT_LT(low.flipEnergy(), 0.6 * full.flipEnergy());
    EXPECT_GT(low.flipEnergy(), 0.15 * full.flipEnergy());
}

TEST(Wire, LowSwingIsSlower)
{
    WireModel full(tech22(), 4.0);
    WireModel low(tech22(), 4.0, 0.25);
    EXPECT_GT(low.delayPs(), full.delayPs());
}

TEST(WireDeath, SwingAboveVddPanics)
{
    EXPECT_DEATH(WireModel(tech22(), 1.0, 2.0), "below Vdd");
}
