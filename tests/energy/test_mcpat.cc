/**
 * @file
 * Unit tests for the McPAT-lite processor power model.
 */

#include <gtest/gtest.h>

#include "energy/mcpat.hh"

using namespace desc::energy;
using desc::Joule;

namespace {

ProcessorActivity
typicalRun()
{
    // ~1 second of an 8-core in-order SMT machine at moderate IPC.
    ProcessorActivity a;
    a.instructions = 10'000'000'000ull;
    a.l1i_accesses = 10'000'000'000ull;
    a.l1d_accesses = 3'000'000'000ull;
    a.l2_accesses = 200'000'000ull;
    a.runtime_s = 1.0;
    return a;
}

} // namespace

TEST(Mcpat, L2FractionNearPaperFigure1)
{
    // Figure 1: the 8MB LSTP L2 is ~15% of processor energy on
    // average. Feed a representative L2 energy and check the ratio
    // lands in the same band.
    ProcessorPowerModel model(8, CoreKind::InOrderSMT);
    Joule l2 = 0.050; // 50 mJ over the run
    auto e = model.evaluate(typicalRun(), l2);
    double frac = e.l2 / e.total();
    EXPECT_GT(frac, 0.08);
    EXPECT_LT(frac, 0.25);
}

TEST(Mcpat, TotalIsSumOfParts)
{
    ProcessorPowerModel model(8, CoreKind::InOrderSMT);
    auto e = model.evaluate(typicalRun(), 0.01);
    EXPECT_NEAR(e.total(),
                e.core_dynamic + e.core_static + e.l1 + e.uncore + e.l2,
                1e-15);
}

TEST(Mcpat, OutOfOrderCoreBurnsMorePerInstruction)
{
    ProcessorActivity a = typicalRun();
    ProcessorPowerModel smt(1, CoreKind::InOrderSMT);
    ProcessorPowerModel ooo(1, CoreKind::OutOfOrder);
    EXPECT_GT(ooo.evaluate(a, 0.0).core_dynamic,
              2.0 * smt.evaluate(a, 0.0).core_dynamic);
}

TEST(Mcpat, StaticEnergyScalesWithTimeAndCores)
{
    ProcessorActivity a;
    a.runtime_s = 2.0;
    ProcessorPowerModel m8(8, CoreKind::InOrderSMT);
    ProcessorPowerModel m4(4, CoreKind::InOrderSMT);
    EXPECT_NEAR(m8.evaluate(a, 0.0).core_static,
                2.0 * m4.evaluate(a, 0.0).core_static, 1e-12);
}

TEST(Mcpat, L2SavingsPropagateToProcessor)
{
    // A 1.81x L2 energy reduction must show up as a single-digit
    // percentage of processor energy (the paper reports 7%).
    ProcessorPowerModel model(8, CoreKind::InOrderSMT);
    auto a = typicalRun();
    Joule l2_base = 0.050;
    auto base = model.evaluate(a, l2_base);
    auto opt = model.evaluate(a, l2_base / 1.81);
    double saving = 1.0 - opt.total() / base.total();
    EXPECT_GT(saving, 0.02);
    EXPECT_LT(saving, 0.15);
}
