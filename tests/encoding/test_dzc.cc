/**
 * @file
 * Unit tests for dynamic zero compression.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "encoding/dzc.hh"

using namespace desc;
using namespace desc::encoding;

namespace {

SchemeConfig
cfg(unsigned wires, unsigned seg, unsigned block_bits = kBlockBits)
{
    SchemeConfig c;
    c.bus_wires = wires;
    c.segment_bits = seg;
    c.block_bits = block_bits;
    return c;
}

} // namespace

TEST(Dzc, ZeroSegmentsOnlyToggleIndicator)
{
    DynamicZeroScheme s(cfg(32, 8, 32));
    auto r = s.transfer(BitVec(32));
    EXPECT_EQ(r.data_flips, 0u);
    EXPECT_EQ(r.control_flips, 4u); // four indicators assert
    EXPECT_EQ(r.skipped, 4u);
}

TEST(Dzc, SteadyZeroStreamIsFree)
{
    DynamicZeroScheme s(cfg(32, 8, 32));
    s.transfer(BitVec(32));
    auto r = s.transfer(BitVec(32));
    EXPECT_EQ(r.totalFlips(), 0u);
}

TEST(Dzc, NonZeroSegmentsPayDataAndIndicator)
{
    DynamicZeroScheme s(cfg(8, 8, 8));
    auto r = s.transfer(BitVec(8, 0x0f));
    EXPECT_EQ(r.data_flips, 4u);
    EXPECT_EQ(r.control_flips, 0u); // indicator already deasserted
}

TEST(Dzc, IndicatorDeassertsWhenSegmentBecomesNonZero)
{
    DynamicZeroScheme s(cfg(8, 8, 8));
    s.transfer(BitVec(8));            // indicator asserts (1 flip)
    auto r = s.transfer(BitVec(8, 1));
    EXPECT_EQ(r.data_flips, 1u);
    EXPECT_EQ(r.control_flips, 1u);   // indicator deasserts
}

TEST(Dzc, DataWiresHoldThroughZeroRun)
{
    DynamicZeroScheme s(cfg(8, 8, 8));
    s.transfer(BitVec(8, 0xa5));
    s.transfer(BitVec(8));             // zero: wires hold 0xa5
    auto r = s.transfer(BitVec(8, 0xa5));
    // Returning to the held value costs only the indicator.
    EXPECT_EQ(r.data_flips, 0u);
    EXPECT_EQ(r.control_flips, 1u);
}

TEST(Dzc, MixedBlockCountsPerSegment)
{
    // 512-bit block over 64 wires, 8-bit segments: set exactly one
    // byte non-zero; 63 byte-beats stay zero.
    DynamicZeroScheme s(cfg(64, 8));
    BitVec block(kBlockBits);
    block.setField(0, 8, 0xff);
    auto r = s.transfer(block);
    EXPECT_EQ(r.data_flips, 8u);
    EXPECT_EQ(r.skipped, 63u);
}

TEST(Dzc, ExtraPipelineCycle)
{
    DynamicZeroScheme s(cfg(64, 8));
    EXPECT_EQ(s.transfer(BitVec(kBlockBits)).cycles, 8u + 1u);
}

TEST(Dzc, ControlWiresOnePerSegment)
{
    EXPECT_EQ(DynamicZeroScheme(cfg(64, 8)).controlWires(), 8u);
    EXPECT_EQ(DynamicZeroScheme(cfg(64, 16)).controlWires(), 4u);
}

TEST(Dzc, RandomStreamFlipsNeverExceedBinaryPlusIndicators)
{
    Rng rng(6);
    DynamicZeroScheme s(cfg(64, 8));
    for (int i = 0; i < 100; i++) {
        BitVec block(kBlockBits);
        block.randomize(rng);
        auto r = s.transfer(block);
        EXPECT_LE(r.totalFlips(), kBlockBits + 64 + 64);
    }
}
