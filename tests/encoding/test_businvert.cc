/**
 * @file
 * Unit tests for bus-invert coding and its zero-skipping variants.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "encoding/businvert.hh"

using namespace desc;
using namespace desc::encoding;

namespace {

SchemeConfig
cfg(unsigned wires, unsigned seg, unsigned block_bits = kBlockBits)
{
    SchemeConfig c;
    c.bus_wires = wires;
    c.segment_bits = seg;
    c.block_bits = block_bits;
    return c;
}

using Mode = BusInvertScheme::Mode;

} // namespace

TEST(BusInvert, InvertsWhenMajorityWouldFlip)
{
    // 8-bit segment, idle wires; value 0xFF would flip 8 wires plainly
    // but only 0 data wires inverted (send 0x00) plus 1 invert-line
    // flip.
    BusInvertScheme s(cfg(8, 8, 8), Mode::Plain);
    auto r = s.transfer(BitVec(8, 0xff));
    EXPECT_EQ(r.data_flips, 0u);
    EXPECT_EQ(r.control_flips, 1u);
}

TEST(BusInvert, PlainWhenMinorityFlips)
{
    BusInvertScheme s(cfg(8, 8, 8), Mode::Plain);
    auto r = s.transfer(BitVec(8, 0b00000011));
    EXPECT_EQ(r.data_flips, 2u);
    EXPECT_EQ(r.control_flips, 0u);
}

TEST(BusInvert, PerBeatFlipsBoundedByHalfSegmentPlusOne)
{
    // The classic bus-invert guarantee: at most S/2 + 1 transitions
    // per segment per beat (counting the invert line).
    Rng rng(4);
    const unsigned wires = 64, seg = 8;
    BusInvertScheme s(cfg(wires, seg, wires), Mode::Plain);
    for (int i = 0; i < 200; i++) {
        BitVec beat(wires);
        beat.randomize(rng);
        auto r = s.transfer(beat);
        EXPECT_LE(r.totalFlips(), (wires / seg) * (seg / 2 + 1));
    }
}

TEST(BusInvert, TotalFlipsNeverExceedPlainBinary)
{
    Rng rng(5);
    SchemeConfig c = cfg(64, 8);
    BusInvertScheme bic(c, Mode::Plain);
    // Reference plain-binary flips computed by hand with a shadow
    // wire state is awkward; instead verify against the invariant
    // that inverting is only chosen when strictly cheaper, so total
    // flips <= block bits / 2 + segments per block.
    for (int i = 0; i < 100; i++) {
        BitVec block(kBlockBits);
        block.randomize(rng);
        auto r = bic.transfer(block);
        unsigned beats = kBlockBits / 64;
        unsigned segs = 64 / 8;
        EXPECT_LE(r.totalFlips(), beats * segs * (8 / 2 + 1));
    }
}

TEST(BusInvert, ZeroSkipSparseSkipsZeroSegments)
{
    BusInvertScheme s(cfg(64, 8, 64), Mode::ZeroSkipSparse);
    // First set wires to a non-zero pattern.
    BitVec busy(64, 0x5a5a5a5a5a5a5a5aull);
    s.transfer(busy);
    // An all-zero beat: every segment skips; data wires hold; only
    // the 8 skip lines toggle.
    auto r = s.transfer(BitVec(64));
    EXPECT_EQ(r.data_flips, 0u);
    EXPECT_EQ(r.control_flips, 8u);
    EXPECT_EQ(r.skipped, 8u);
    // A second all-zero beat costs nothing at all.
    auto r2 = s.transfer(BitVec(64));
    EXPECT_EQ(r2.totalFlips(), 0u);
    EXPECT_EQ(r2.skipped, 8u);
}

TEST(BusInvert, ZeroSkipPrefersCheapestMode)
{
    // Zero beat from idle wires: skipping costs 1 control flip per
    // segment, but plain transmission costs 0 -- the encoder must not
    // skip blindly.
    BusInvertScheme s(cfg(8, 8, 8), Mode::ZeroSkipSparse);
    auto r = s.transfer(BitVec(8));
    EXPECT_EQ(r.totalFlips(), 0u);
}

TEST(BusInvert, EncodedModeBusChargesTransitions)
{
    BusInvertScheme s(cfg(64, 8, 64), Mode::ZeroSkipEncoded);
    BitVec busy(64, 0x5a5a5a5a5a5a5a5aull);
    s.transfer(busy);
    auto r = s.transfer(BitVec(64));
    // Segments all switch mode to Skip: the packed base-3 word
    // changes, costing control transitions, but data wires hold.
    EXPECT_EQ(r.data_flips, 0u);
    EXPECT_GT(r.control_flips, 0u);
}

TEST(BusInvert, ControlWireCounts)
{
    EXPECT_EQ(BusInvertScheme(cfg(64, 8), Mode::Plain).controlWires(), 8u);
    EXPECT_EQ(BusInvertScheme(cfg(64, 8), Mode::ZeroSkipSparse)
                  .controlWires(),
              16u);
    EXPECT_EQ(BusInvertScheme(cfg(64, 8), Mode::ZeroSkipEncoded)
                  .controlWires(),
              32u);
}

TEST(BusInvert, EncodedCostsExtraLatency)
{
    auto plain = BusInvertScheme(cfg(64, 8), Mode::Plain)
                     .transfer(BitVec(kBlockBits));
    auto enc = BusInvertScheme(cfg(64, 8), Mode::ZeroSkipEncoded)
                   .transfer(BitVec(kBlockBits));
    EXPECT_GT(enc.cycles, plain.cycles);
}

TEST(BusInvert, ResetClearsAllState)
{
    BusInvertScheme s(cfg(8, 8, 8), Mode::ZeroSkipSparse);
    s.transfer(BitVec(8, 0xff));
    s.reset();
    auto r = s.transfer(BitVec(8, 0xff));
    // Identical behavior to a fresh scheme: inverted send, 1 flip.
    EXPECT_EQ(r.data_flips, 0u);
    EXPECT_EQ(r.control_flips, 1u);
}

TEST(BusInvertDeath, RejectsIndivisibleSegments)
{
    EXPECT_DEATH(BusInvertScheme(cfg(64, 24), Mode::Plain),
                 "not divisible");
}
