/**
 * @file
 * Unit tests for conventional binary (parallel/serial) transfer.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "encoding/binary.hh"

using namespace desc;
using namespace desc::encoding;

namespace {

SchemeConfig
cfg(unsigned wires, unsigned block_bits = kBlockBits)
{
    SchemeConfig c;
    c.bus_wires = wires;
    c.block_bits = block_bits;
    return c;
}

} // namespace

TEST(Binary, ParallelByteMatchesPaperFigure3a)
{
    // One byte over eight wires starting from all-zero wires: the
    // transition count is the byte's population count (4 for
    // 01010011).
    BinaryScheme s(cfg(8, 8));
    BitVec byte(8, 0b01010011);
    auto r = s.transfer(byte);
    EXPECT_EQ(r.cycles, 1u);
    EXPECT_EQ(r.data_flips, 4u);
    EXPECT_EQ(r.control_flips, 0u);
}

TEST(Binary, SerialTransferCountsLevelChanges)
{
    // One wire, eight beats, LSB first: 1,1,0,0,1,0,1,0 from idle 0
    // makes 6 level changes.
    BinaryScheme s(cfg(1, 8));
    BitVec byte(8, 0b01010011);
    auto r = s.transfer(byte);
    EXPECT_EQ(r.cycles, 8u);
    EXPECT_EQ(r.data_flips, 6u);
}

TEST(Binary, RepeatedBlockCausesNoFlips)
{
    BinaryScheme s(cfg(64));
    Rng rng(1);
    BitVec block(kBlockBits);
    block.randomize(rng);
    auto first = s.transfer(block);
    EXPECT_GT(first.data_flips, 0u);
    // Re-sending the same block: the final beat left the wires in the
    // last slice's state, so only intra-block transitions repeat.
    auto second = s.transfer(block);
    // All beats identical to the previous traversal's beats shifted by
    // one block; flips can differ from first only by the initial-state
    // difference. Sending an all-zero block twice is exactly zero.
    BitVec zero(kBlockBits);
    s.transfer(zero);
    auto z = s.transfer(zero);
    EXPECT_EQ(z.data_flips, 0u);
    (void)second;
}

TEST(Binary, CyclesEqualBeats)
{
    EXPECT_EQ(BinaryScheme(cfg(64)).transfer(BitVec(512)).cycles, 8u);
    EXPECT_EQ(BinaryScheme(cfg(128)).transfer(BitVec(512)).cycles, 4u);
    EXPECT_EQ(BinaryScheme(cfg(512)).transfer(BitVec(512)).cycles, 1u);
}

TEST(Binary, WideBusSingleBeatFlipsArePopcountFromIdle)
{
    BinaryScheme s(cfg(512));
    Rng rng(2);
    BitVec block(kBlockBits);
    block.randomize(rng);
    auto r = s.transfer(block);
    EXPECT_EQ(r.data_flips, block.popcount());
}

TEST(Binary, StatePersistsAcrossBlocks)
{
    BinaryScheme s(cfg(512));
    BitVec ones(kBlockBits);
    ones.invertRange(0, kBlockBits);
    EXPECT_EQ(s.transfer(ones).data_flips, 512u);
    // Wires now hold all ones; an all-zero block flips all back.
    EXPECT_EQ(s.transfer(BitVec(kBlockBits)).data_flips, 512u);
}

TEST(Binary, ResetReturnsWiresToZero)
{
    BinaryScheme s(cfg(512));
    BitVec ones(kBlockBits);
    ones.invertRange(0, kBlockBits);
    s.transfer(ones);
    s.reset();
    EXPECT_EQ(s.transfer(ones).data_flips, 512u);
}

TEST(Binary, FlipsBoundedByBlockBitsPlusBusWidth)
{
    Rng rng(3);
    BinaryScheme s(cfg(64));
    for (int i = 0; i < 50; i++) {
        BitVec block(kBlockBits);
        block.randomize(rng);
        auto r = s.transfer(block);
        EXPECT_LE(r.data_flips, kBlockBits + 64);
    }
}

TEST(Binary, NoControlWires)
{
    BinaryScheme s(cfg(64));
    EXPECT_EQ(s.controlWires(), 0u);
    EXPECT_EQ(s.dataWires(), 64u);
}
