/**
 * @file
 * Cross-scheme property suite: invariants every TransferScheme must
 * satisfy, swept over all eight schemes and several bus widths.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hh"
#include "core/factory.hh"

using namespace desc;
using namespace desc::encoding;

namespace {

/** (scheme, bus wires) */
using Param = std::tuple<SchemeKind, unsigned>;

SchemeConfig
makeCfg(unsigned wires)
{
    SchemeConfig cfg;
    cfg.bus_wires = wires;
    cfg.segment_bits = 16;
    cfg.chunk_bits = 4;
    return cfg;
}

std::string
paramName(const ::testing::TestParamInfo<Param> &info)
{
    static const char *names[] = {"binary", "dzc", "bic", "zsbic",
                                  "ezsbic", "desc", "zsdesc",
                                  "lvsdesc"};
    return std::string(names[unsigned(std::get<0>(info.param))]) + "_w"
        + std::to_string(std::get<1>(info.param));
}

} // namespace

class SchemeProperties : public ::testing::TestWithParam<Param>
{
  protected:
    std::unique_ptr<TransferScheme>
    make() const
    {
        return core::makeScheme(std::get<0>(GetParam()),
                                makeCfg(std::get<1>(GetParam())));
    }
};

TEST_P(SchemeProperties, TransferAlwaysTakesTime)
{
    auto scheme = make();
    Rng rng(1);
    for (int i = 0; i < 30; i++) {
        BitVec block(kBlockBits);
        block.randomize(rng);
        auto r = scheme->transfer(block);
        EXPECT_GE(r.cycles, 1u);
    }
}

TEST_P(SchemeProperties, FlipsAreBoundedByPhysicalWires)
{
    // No transfer can flip more than every wire every cycle.
    auto scheme = make();
    Rng rng(2);
    unsigned total_wires =
        scheme->dataWires() + scheme->controlWires() + 2;
    for (int i = 0; i < 50; i++) {
        BitVec block(kBlockBits);
        block.randomize(rng);
        auto r = scheme->transfer(block);
        EXPECT_LE(r.totalFlips(),
                  std::uint64_t(total_wires) * r.cycles);
    }
}

TEST_P(SchemeProperties, DeterministicGivenSameHistory)
{
    auto a = make();
    auto b = make();
    Rng rng(3);
    for (int i = 0; i < 30; i++) {
        BitVec block(kBlockBits);
        block.randomize(rng);
        auto ra = a->transfer(block);
        auto rb = b->transfer(block);
        EXPECT_EQ(ra.cycles, rb.cycles);
        EXPECT_EQ(ra.data_flips, rb.data_flips);
        EXPECT_EQ(ra.control_flips, rb.control_flips);
    }
}

TEST_P(SchemeProperties, ResetRestoresInitialBehavior)
{
    auto scheme = make();
    Rng rng(4);
    BitVec probe(kBlockBits);
    probe.randomize(rng);
    auto fresh = scheme->transfer(probe);
    for (int i = 0; i < 10; i++) {
        BitVec noise(kBlockBits);
        noise.randomize(rng);
        scheme->transfer(noise);
    }
    scheme->reset();
    auto again = scheme->transfer(probe);
    EXPECT_EQ(again.cycles, fresh.cycles);
    EXPECT_EQ(again.data_flips, fresh.data_flips);
    EXPECT_EQ(again.control_flips, fresh.control_flips);
}

TEST_P(SchemeProperties, SteadyZeroStreamIsNearlyFree)
{
    // After one all-zero block, further all-zero blocks must cost at
    // most the per-block control overhead (reset/sync/indicators), a
    // small fraction of a full-activity transfer.
    auto scheme = make();
    BitVec zeros(kBlockBits);
    scheme->transfer(zeros);
    auto r = scheme->transfer(zeros);
    if (std::get<0>(GetParam()) == SchemeKind::DescBasic) {
        // Basic DESC is data-independent: always one flip per chunk.
        EXPECT_EQ(r.data_flips, kBlockBits / 4);
    } else {
        EXPECT_EQ(r.data_flips, 0u);
    }
    EXPECT_LE(r.control_flips, 8u + r.cycles); // pulses + sync strobe
}

TEST_P(SchemeProperties, NameIsStable)
{
    auto scheme = make();
    EXPECT_STREQ(scheme->name(),
                 schemeName(std::get<0>(GetParam())));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeProperties,
    ::testing::Combine(
        ::testing::Values(SchemeKind::Binary,
                          SchemeKind::DynamicZeroCompression,
                          SchemeKind::BusInvert,
                          SchemeKind::ZeroSkipBusInvert,
                          SchemeKind::EncodedZeroSkipBusInvert,
                          SchemeKind::DescBasic,
                          SchemeKind::DescZeroSkip,
                          SchemeKind::DescLastValueSkip),
        ::testing::Values(32u, 64u, 128u)),
    paramName);
