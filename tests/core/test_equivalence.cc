/**
 * @file
 * Property-based equivalence suite: the behavioral DescScheme must
 * agree bit-exactly with the cycle-accurate transmitter/receiver pair
 * on cycles, data transitions, and control transitions, across the
 * whole configuration space and across value distributions, and the
 * receiver must always recover the transmitted block.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hh"
#include "core/descscheme.hh"
#include "core/link.hh"

using namespace desc;
using namespace desc::core;

namespace {

/** (wires, chunk_bits, skip mode) */
using Param = std::tuple<unsigned, unsigned, SkipMode>;

/** Draw a block whose chunk values are biased toward zero and toward
 *  repeating the previous block, like real cache traffic. */
BitVec
biasedBlock(Rng &rng, const BitVec &prev, unsigned chunk_bits,
            double zero_p, double repeat_p)
{
    BitVec block(prev.width());
    for (unsigned pos = 0; pos < block.width(); pos += chunk_bits) {
        double u = rng.uniform();
        std::uint64_t v;
        if (u < zero_p)
            v = 0;
        else if (u < zero_p + repeat_p)
            v = prev.field(pos, chunk_bits);
        else
            v = rng.below(std::uint64_t{1} << chunk_bits);
        block.setField(pos, chunk_bits, v);
    }
    return block;
}

} // namespace

class DescEquivalence : public ::testing::TestWithParam<Param>
{
  protected:
    DescConfig
    config() const
    {
        auto [wires, chunk_bits, skip] = GetParam();
        DescConfig c;
        c.bus_wires = wires;
        c.chunk_bits = chunk_bits;
        c.block_bits = kBlockBits;
        c.skip = skip;
        return c;
    }
};

TEST_P(DescEquivalence, BehavioralMatchesCycleAccurate)
{
    DescConfig cfg = config();
    DescLink link(cfg);
    link.setMode(LinkMode::Ticked); // validate against the reference loop
    DescScheme scheme(cfg);
    Rng rng(0xec0de + cfg.bus_wires * 31 + cfg.chunk_bits);

    BitVec prev(kBlockBits);
    for (int i = 0; i < 40; i++) {
        BitVec block = biasedBlock(rng, prev, cfg.chunk_bits, 0.3, 0.2);
        prev = block;

        BitVec recv;
        auto hw = link.transferBlock(block, &recv);
        auto model = scheme.transfer(block);

        ASSERT_EQ(recv, block) << "round-trip corruption at block " << i;
        EXPECT_EQ(model.cycles, hw.cycles) << "block " << i;
        EXPECT_EQ(model.data_flips, hw.data_flips) << "block " << i;
        EXPECT_EQ(model.control_flips, hw.control_flips) << "block " << i;
        EXPECT_EQ(model.skipped, hw.skipped) << "block " << i;
    }
}

TEST_P(DescEquivalence, RandomizedDifferential)
{
    // Seeded randomized differential test: for each configuration,
    // stream blocks drawn from several value distributions through
    // one long-lived link/scheme pair (so skip state carries across
    // distribution changes) and require bit-exact agreement on every
    // reported statistic.
    DescConfig cfg = config();
    DescLink link(cfg);
    link.setMode(LinkMode::Ticked); // validate against the reference loop
    DescScheme scheme(cfg);
    Rng rng(0xd1ff + cfg.bus_wires * 131 + cfg.chunk_bits * 7
            + unsigned(cfg.skip));

    struct Dist
    {
        double zero_p;
        double repeat_p;
    };
    // uniform, zero-rich, repeat-rich, and mixed traffic
    const Dist dists[] = {{0.0, 0.0}, {0.7, 0.1}, {0.1, 0.7}, {0.4, 0.4}};

    BitVec prev(kBlockBits);
    int n = 0;
    for (const Dist &d : dists) {
        for (int i = 0; i < 25; i++, n++) {
            BitVec block =
                biasedBlock(rng, prev, cfg.chunk_bits, d.zero_p, d.repeat_p);
            prev = block;

            BitVec recv;
            auto hw = link.transferBlock(block, &recv);
            auto model = scheme.transfer(block);

            ASSERT_EQ(recv, block) << "round-trip corruption at block " << n;
            ASSERT_EQ(model.cycles, hw.cycles) << "block " << n;
            ASSERT_EQ(model.data_flips, hw.data_flips) << "block " << n;
            ASSERT_EQ(model.control_flips, hw.control_flips)
                << "block " << n;
            ASSERT_EQ(model.skipped, hw.skipped) << "block " << n;
        }
    }
}

TEST_P(DescEquivalence, AllZeroAndAllOnesBlocks)
{
    DescConfig cfg = config();
    DescLink link(cfg);
    link.setMode(LinkMode::Ticked); // validate against the reference loop
    DescScheme scheme(cfg);

    BitVec zeros(kBlockBits);
    BitVec ones(kBlockBits);
    ones.invertRange(0, kBlockBits);

    for (const BitVec &block : {zeros, ones, zeros, zeros, ones}) {
        BitVec recv;
        auto hw = link.transferBlock(block, &recv);
        auto model = scheme.transfer(block);
        ASSERT_EQ(recv, block);
        EXPECT_EQ(model.cycles, hw.cycles);
        EXPECT_EQ(model.data_flips, hw.data_flips);
        EXPECT_EQ(model.control_flips, hw.control_flips);
    }
}

TEST_P(DescEquivalence, AdaptiveCountersSurviveLongStreams)
{
    // The adaptive skip value is pure history: transmitter and
    // receiver counters must track each other — and the closed-form
    // fast path must track the ticked loop — across a long run of
    // consecutive blocks, because one divergent count eventually flips
    // a best-value decision and corrupts every later transfer.
    DescConfig cfg = config();
    if (cfg.skip != SkipMode::Adaptive)
        GTEST_SKIP() << "adaptive-mode-only property";

    DescLink fast(cfg);
    DescLink ticked(cfg);
    fast.setMode(LinkMode::Fast);
    ticked.setMode(LinkMode::Ticked);
    Rng rng(0xadab + cfg.bus_wires * 3 + cfg.chunk_bits);

    BitVec prev(kBlockBits);
    for (int i = 0; i < 120; i++) {
        // Shift the distribution mid-stream so the trackers decay and
        // re-learn different frequent values.
        double zero_p = i < 60 ? 0.6 : 0.05;
        double repeat_p = i < 60 ? 0.1 : 0.6;
        BitVec block = biasedBlock(rng, prev, cfg.chunk_bits, zero_p,
                                   repeat_p);
        prev = block;

        BitVec recv_f, recv_t;
        auto rf = fast.transferBlock(block, &recv_f);
        auto rt = ticked.transferBlock(block, &recv_t);

        ASSERT_EQ(recv_t, block) << "block " << i;
        ASSERT_EQ(recv_f, recv_t) << "block " << i;
        ASSERT_EQ(rf.cycles, rt.cycles) << "block " << i;
        ASSERT_EQ(rf.data_flips, rt.data_flips) << "block " << i;
        ASSERT_EQ(rf.control_flips, rt.control_flips) << "block " << i;
        ASSERT_EQ(rf.skipped, rt.skipped) << "block " << i;
        ASSERT_TRUE(fast.tx().adaptive() == ticked.tx().adaptive())
            << "tx adaptive counters diverged at block " << i;
        ASSERT_TRUE(fast.rx().adaptive() == ticked.rx().adaptive())
            << "rx adaptive counters diverged at block " << i;
        ASSERT_TRUE(fast.tx().adaptive() == fast.rx().adaptive())
            << "tx/rx adaptive counters diverged at block " << i;
    }
}

TEST_P(DescEquivalence, DataFlipsNeverExceedChunkCount)
{
    DescConfig cfg = config();
    DescScheme scheme(cfg);
    Rng rng(77);
    BitVec prev(kBlockBits);
    for (int i = 0; i < 50; i++) {
        BitVec block = biasedBlock(rng, prev, cfg.chunk_bits, 0.1, 0.1);
        prev = block;
        auto r = scheme.transfer(block);
        EXPECT_LE(r.data_flips, cfg.numChunks());
        EXPECT_EQ(r.data_flips + r.skipped, cfg.numChunks());
    }
}

TEST_P(DescEquivalence, WindowBoundedByWorstCase)
{
    DescConfig cfg = config();
    DescScheme scheme(cfg);
    Rng rng(78);
    // Worst case per wave is the largest pulse delay; basic mode
    // additionally streams numWaves chunks per wire back to back.
    const Cycle max_delay = (Cycle{1} << cfg.chunk_bits);
    const Cycle bound = 1 + cfg.numWaves() * max_delay;
    BitVec prev(kBlockBits);
    for (int i = 0; i < 50; i++) {
        BitVec block = biasedBlock(rng, prev, cfg.chunk_bits, 0.3, 0.3);
        prev = block;
        EXPECT_LE(scheme.transfer(block).cycles, bound);
    }
}

namespace {

std::string
paramName(const ::testing::TestParamInfo<Param> &info)
{
    unsigned wires = std::get<0>(info.param);
    unsigned bits = std::get<1>(info.param);
    SkipMode skip = std::get<2>(info.param);
    std::string name = "w" + std::to_string(wires) + "_c"
        + std::to_string(bits) + "_";
    switch (skip) {
      case SkipMode::None:
        name += "basic";
        break;
      case SkipMode::Zero:
        name += "zero";
        break;
      case SkipMode::LastValue:
        name += "last";
        break;
      case SkipMode::Adaptive:
        name += "adaptive";
        break;
    }
    return name;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    ConfigSpace, DescEquivalence,
    ::testing::Combine(
        ::testing::Values(16u, 32u, 64u, 128u, 256u),
        ::testing::Values(1u, 2u, 4u, 8u),
        ::testing::Values(SkipMode::None, SkipMode::Zero,
                          SkipMode::LastValue, SkipMode::Adaptive)),
    paramName);

TEST(TickedFastDrift, NoDriftOver240AdaptiveBlocks)
{
    // Long-horizon drift probe for the bit-plane ticked engine: a
    // Ticked link and a Fast link consume the same 240-block stream
    // with adaptive trackers live (the skip value of every wave
    // depends on the whole history), and every reported statistic,
    // every recovered block, and all persistent state must stay
    // bit-identical the entire way — one silently mismatched chunk
    // would compound for the rest of the stream.
    DescConfig cfg;
    cfg.bus_wires = 64;
    cfg.chunk_bits = 4;
    cfg.block_bits = kBlockBits;
    cfg.skip = SkipMode::Adaptive;

    DescLink ticked(cfg);
    ticked.setMode(LinkMode::Ticked);
    DescLink fast(cfg);
    fast.setMode(LinkMode::Fast);

    Rng rng(0xd21f7);
    struct Dist
    {
        double zero_p;
        double repeat_p;
    };
    const Dist dists[] = {{0.0, 0.0}, {0.7, 0.1}, {0.1, 0.7}, {0.4, 0.4}};

    BitVec prev(kBlockBits);
    int n = 0;
    for (const Dist &d : dists) {
        for (int i = 0; i < 60; i++, n++) {
            BitVec block =
                biasedBlock(rng, prev, cfg.chunk_bits, d.zero_p, d.repeat_p);
            prev = block;

            BitVec recv_t, recv_f;
            auto rt = ticked.transferBlock(block, &recv_t);
            auto rf = fast.transferBlock(block, &recv_f);
            ASSERT_FALSE(ticked.usedFastPath());
            ASSERT_TRUE(fast.usedFastPath());

            ASSERT_EQ(recv_t, block) << "ticked corruption at block " << n;
            ASSERT_EQ(recv_f, block) << "fast corruption at block " << n;
            ASSERT_EQ(rt.cycles, rf.cycles) << "block " << n;
            ASSERT_EQ(rt.data_flips, rf.data_flips) << "block " << n;
            ASSERT_EQ(rt.control_flips, rf.control_flips) << "block " << n;
            ASSERT_EQ(rt.skipped, rf.skipped) << "block " << n;

            // All state either engine can carry into the next block.
            ASSERT_EQ(ticked.tx().wires().data, fast.tx().wires().data)
                << "block " << n;
            ASSERT_EQ(ticked.tx().wires().reset_skip,
                      fast.tx().wires().reset_skip) << "block " << n;
            ASSERT_EQ(ticked.tx().wires().sync, fast.tx().wires().sync)
                << "block " << n;
            ASSERT_EQ(ticked.tx().lastValues(), fast.tx().lastValues())
                << "block " << n;
            ASSERT_EQ(ticked.rx().lastValues(), fast.rx().lastValues())
                << "block " << n;
            ASSERT_TRUE(ticked.tx().adaptive() == fast.tx().adaptive())
                << "tx adaptive drift at block " << n;
            ASSERT_TRUE(ticked.rx().adaptive() == fast.rx().adaptive())
                << "rx adaptive drift at block " << n;
        }
    }
    EXPECT_EQ(n, 240);
}
