/**
 * @file
 * Unit tests for the cycle-accurate DESC transmitter/receiver pair,
 * including the paper's worked examples (Figures 5 and 10).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/chunk.hh"
#include "core/link.hh"

using namespace desc;
using namespace desc::core;

namespace {

DescConfig
makeCfg(unsigned wires, unsigned chunk_bits, unsigned block_bits,
        SkipMode skip)
{
    DescConfig c;
    c.bus_wires = wires;
    c.chunk_bits = chunk_bits;
    c.block_bits = block_bits;
    c.skip = skip;
    return c;
}

BitVec
blockOfChunks(const std::vector<std::uint8_t> &chunks, unsigned chunk_bits)
{
    return joinChunks(chunks, chunk_bits,
                      unsigned(chunks.size()) * chunk_bits);
}

} // namespace

TEST(TxRx, Figure5TwoThreeBitChunksOneWire)
{
    // Two 3-bit chunks (2, then 1) on a single data wire: value 2
    // occupies 3 cycles, value 1 occupies 2 (Figure 5), plus the
    // opening reset pulse.
    auto cfg = makeCfg(1, 3, 6, SkipMode::None);
    DescLink link(cfg);
    BitVec recv;
    auto r = link.transferBlock(blockOfChunks({2, 1}, 3), &recv);
    EXPECT_EQ(recv, blockOfChunks({2, 1}, 3));
    EXPECT_EQ(r.cycles, 1u + 3u + 2u);
    EXPECT_EQ(r.data_flips, 2u);
    // Control: 1 reset pulse + one sync transition per cycle.
    EXPECT_EQ(r.control_flips, 1u + r.cycles);
}

TEST(TxRx, Figure10aBasicWindow)
{
    // Four 3-bit chunks (0, 0, 5, 0) on four wires, no skipping: the
    // window is bounded by the largest value (6 cycles) plus the
    // opening pulse; every chunk costs one transition.
    auto cfg = makeCfg(4, 3, 12, SkipMode::None);
    DescLink link(cfg);
    BitVec recv;
    auto r = link.transferBlock(blockOfChunks({0, 0, 5, 0}, 3), &recv);
    EXPECT_EQ(recv, blockOfChunks({0, 0, 5, 0}, 3));
    EXPECT_EQ(r.cycles, 1u + 6u);
    EXPECT_EQ(r.data_flips, 4u);
}

TEST(TxRx, Figure10bZeroSkippedWindow)
{
    // Same chunks with zero skipping: only the 5 is transmitted
    // (5-cycle window), the closing pulse fills the zeros; reset/skip
    // toggles twice and the data wires once -- three non-sync flips.
    auto cfg = makeCfg(4, 3, 12, SkipMode::Zero);
    DescLink link(cfg);
    BitVec recv;
    auto r = link.transferBlock(blockOfChunks({0, 0, 5, 0}, 3), &recv);
    EXPECT_EQ(recv, blockOfChunks({0, 0, 5, 0}, 3));
    EXPECT_EQ(r.cycles, 1u + 5u);
    EXPECT_EQ(r.data_flips, 1u);
    EXPECT_EQ(r.skipped, 3u);
    EXPECT_EQ(r.control_flips, 2u + r.cycles); // open+close, + sync
}

TEST(TxRx, AllZeroBlockWithZeroSkippingIsTwoPulses)
{
    auto cfg = makeCfg(128, 4, kBlockBits, SkipMode::Zero);
    DescLink link(cfg);
    BitVec recv;
    auto r = link.transferBlock(BitVec(kBlockBits), &recv);
    EXPECT_TRUE(recv.allZero());
    EXPECT_EQ(r.data_flips, 0u);
    EXPECT_EQ(r.cycles, 2u);           // open pulse + close pulse
    EXPECT_EQ(r.skipped, 128u);
    EXPECT_EQ(r.control_flips, 2u + r.cycles);
}

TEST(TxRx, BasicModeAlwaysOneFlipPerChunk)
{
    Rng rng(21);
    auto cfg = makeCfg(128, 4, kBlockBits, SkipMode::None);
    DescLink link(cfg);
    for (int i = 0; i < 20; i++) {
        BitVec block(kBlockBits);
        block.randomize(rng);
        BitVec recv;
        auto r = link.transferBlock(block, &recv);
        EXPECT_EQ(recv, block);
        EXPECT_EQ(r.data_flips, 128u);
    }
}

TEST(TxRx, LastValueSkipRepeatedBlockIsSilent)
{
    auto cfg = makeCfg(128, 4, kBlockBits, SkipMode::LastValue);
    DescLink link(cfg);
    Rng rng(22);
    BitVec block(kBlockBits);
    block.randomize(rng);
    BitVec recv;
    link.transferBlock(block, &recv);
    EXPECT_EQ(recv, block);
    // Second transmission of the same block: every chunk equals the
    // last value on its wire, so all 128 are skipped.
    auto r = link.transferBlock(block, &recv);
    EXPECT_EQ(recv, block);
    EXPECT_EQ(r.data_flips, 0u);
    EXPECT_EQ(r.skipped, 128u);
    EXPECT_EQ(r.cycles, 2u);
}

TEST(TxRx, MultiWaveTransferRoundTrips)
{
    // 64 wires, 128 chunks -> two waves per block.
    Rng rng(23);
    for (SkipMode skip :
         {SkipMode::None, SkipMode::Zero, SkipMode::LastValue}) {
        auto cfg = makeCfg(64, 4, kBlockBits, skip);
        DescLink link(cfg);
        for (int i = 0; i < 10; i++) {
            BitVec block(kBlockBits);
            block.randomize(rng);
            BitVec recv;
            link.transferBlock(block, &recv);
            EXPECT_EQ(recv, block) << "skip mode "
                                   << skipModeName(skip);
        }
    }
}

TEST(TxRx, BackToBackBlocksShareWireState)
{
    // Toggle signaling has no idle return: a second block must decode
    // correctly starting from whatever levels the first one left.
    auto cfg = makeCfg(16, 4, 64, SkipMode::Zero);
    DescLink link(cfg);
    Rng rng(24);
    for (int i = 0; i < 50; i++) {
        BitVec block(64);
        block.randomize(rng);
        BitVec recv;
        link.transferBlock(block, &recv);
        ASSERT_EQ(recv, block) << "iteration " << i;
    }
}

TEST(TxRx, TransmitterTracksLastValues)
{
    auto cfg = makeCfg(4, 4, 16, SkipMode::Zero);
    DescTransmitter tx(cfg);
    DescReceiver rx(cfg);
    BitVec block(16, 0x4321);
    tx.loadBlock(block);
    while (tx.busy()) {
        tx.tick();
        rx.observe(tx.wires());
    }
    ASSERT_TRUE(rx.blockReady());
    EXPECT_EQ(tx.lastValues()[0], 0x1);
    EXPECT_EQ(tx.lastValues()[3], 0x4);
    EXPECT_EQ(rx.lastValues(), tx.lastValues());
}

TEST(TxRxDeath, LoadWhileBusyPanics)
{
    auto cfg = makeCfg(4, 4, 16, SkipMode::None);
    DescTransmitter tx(cfg);
    tx.loadBlock(BitVec(16, 1));
    EXPECT_DEATH(tx.loadBlock(BitVec(16, 2)), "in flight");
}

TEST(TxRx, ResetRestoresIdle)
{
    auto cfg = makeCfg(8, 4, 32, SkipMode::Zero);
    DescLink link(cfg);
    Rng rng(25);
    BitVec block(32);
    block.randomize(rng);
    link.transferBlock(block);
    link.reset();
    // After reset both ends are back in the initial state: an all-zero
    // transfer costs exactly the two pulses again.
    BitVec recv;
    auto r = link.transferBlock(BitVec(32), &recv);
    EXPECT_TRUE(recv.allZero());
    EXPECT_EQ(r.data_flips, 0u);
}
