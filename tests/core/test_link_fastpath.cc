/**
 * @file
 * Differential suite for the DESC link fast path (DESIGN.md §10).
 *
 * Two links fed the same block stream — one pinned to the closed-form
 * fast path, one to the ticked reference loop — must agree bit-exactly
 * on every TransferResult field, every received block, and all
 * persistent endpoint state (wire levels, last-value tables, adaptive
 * counters). The suite also pins the automatic path selection: hooks
 * and the link trace channel force the ticked loop.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hh"
#include "common/trace.hh"
#include "core/link.hh"
#include "ecc/blockcodec.hh"

using namespace desc;
using namespace desc::core;

namespace {

/** (wires, chunk_bits, skip mode) */
using Param = std::tuple<unsigned, unsigned, SkipMode>;

BitVec
biasedBlock(Rng &rng, const BitVec &prev, unsigned chunk_bits,
            double zero_p, double repeat_p)
{
    BitVec block(prev.width());
    for (unsigned pos = 0; pos < block.width(); pos += chunk_bits) {
        double u = rng.uniform();
        std::uint64_t v;
        if (u < zero_p)
            v = 0;
        else if (u < zero_p + repeat_p)
            v = prev.field(pos, chunk_bits);
        else
            v = rng.below(std::uint64_t{1} << chunk_bits);
        block.setField(pos, chunk_bits, v);
    }
    return block;
}

/**
 * Require the two links to be in indistinguishable persistent state:
 * everything that can influence a future transfer or a caller.
 */
void
expectSameState(DescLink &fast, DescLink &ticked, int block_no)
{
    EXPECT_EQ(fast.tx().wires().data, ticked.tx().wires().data)
        << "tx data levels, block " << block_no;
    EXPECT_EQ(fast.tx().wires().reset_skip, ticked.tx().wires().reset_skip)
        << "tx reset level, block " << block_no;
    EXPECT_EQ(fast.tx().wires().sync, ticked.tx().wires().sync)
        << "tx sync level, block " << block_no;
    EXPECT_EQ(fast.tx().lastValues(), ticked.tx().lastValues())
        << "tx last-value table, block " << block_no;
    EXPECT_EQ(fast.rx().lastValues(), ticked.rx().lastValues())
        << "rx last-value table, block " << block_no;
    EXPECT_TRUE(fast.tx().adaptive() == ticked.tx().adaptive())
        << "tx adaptive counters, block " << block_no;
    EXPECT_TRUE(fast.rx().adaptive() == ticked.rx().adaptive())
        << "rx adaptive counters, block " << block_no;
}

void
expectSameResult(const encoding::TransferResult &f,
                 const encoding::TransferResult &t, int block_no)
{
    ASSERT_EQ(f.cycles, t.cycles) << "block " << block_no;
    ASSERT_EQ(f.data_flips, t.data_flips) << "block " << block_no;
    ASSERT_EQ(f.control_flips, t.control_flips) << "block " << block_no;
    ASSERT_EQ(f.skipped, t.skipped) << "block " << block_no;
}

} // namespace

class LinkFastPath : public ::testing::TestWithParam<Param>
{
  protected:
    DescConfig
    config() const
    {
        auto [wires, chunk_bits, skip] = GetParam();
        DescConfig c;
        c.bus_wires = wires;
        c.chunk_bits = chunk_bits;
        c.block_bits = kBlockBits;
        c.skip = skip;
        return c;
    }
};

TEST_P(LinkFastPath, BitIdenticalToTickedLoop)
{
    DescConfig cfg = config();
    DescLink fast(cfg);
    DescLink ticked(cfg);
    fast.setMode(LinkMode::Fast);
    ticked.setMode(LinkMode::Ticked);
    Rng rng(0xfa57 + cfg.bus_wires * 131 + cfg.chunk_bits * 7
            + unsigned(cfg.skip));

    struct Dist
    {
        double zero_p;
        double repeat_p;
    };
    // uniform, zero-rich, repeat-rich, and mixed traffic
    const Dist dists[] = {{0.0, 0.0}, {0.7, 0.1}, {0.1, 0.7}, {0.4, 0.4}};

    BitVec prev(kBlockBits);
    int n = 0;
    for (const Dist &d : dists) {
        for (int i = 0; i < 25; i++, n++) {
            BitVec block =
                biasedBlock(rng, prev, cfg.chunk_bits, d.zero_p, d.repeat_p);
            prev = block;

            BitVec recv_f, recv_t;
            auto rf = fast.transferBlock(block, &recv_f);
            auto rt = ticked.transferBlock(block, &recv_t);
            ASSERT_TRUE(fast.usedFastPath()) << "block " << n;
            ASSERT_FALSE(ticked.usedFastPath()) << "block " << n;

            ASSERT_EQ(recv_t, block) << "ticked round trip, block " << n;
            ASSERT_EQ(recv_f, recv_t) << "received block, block " << n;
            expectSameResult(rf, rt, n);
            expectSameState(fast, ticked, n);
        }
    }
}

TEST_P(LinkFastPath, ExtremeBlocks)
{
    DescConfig cfg = config();
    DescLink fast(cfg);
    DescLink ticked(cfg);
    fast.setMode(LinkMode::Fast);
    ticked.setMode(LinkMode::Ticked);

    BitVec zeros(kBlockBits);
    BitVec ones(kBlockBits);
    ones.invertRange(0, kBlockBits);

    int n = 0;
    for (const BitVec &block : {zeros, ones, zeros, zeros, ones}) {
        BitVec recv_f, recv_t;
        auto rf = fast.transferBlock(block, &recv_f);
        auto rt = ticked.transferBlock(block, &recv_t);
        ASSERT_EQ(recv_f, recv_t);
        expectSameResult(rf, rt, n);
        expectSameState(fast, ticked, n);
        n++;
    }
}

TEST_P(LinkFastPath, InterleavedPathsMatchPureTicked)
{
    // The fast path must leave both endpoints in the exact state the
    // ticked loop produces, so a link that alternates between the two
    // paths mid-stream must stay indistinguishable from one that ticks
    // every block.
    DescConfig cfg = config();
    DescLink mixed(cfg);
    DescLink ticked(cfg);
    ticked.setMode(LinkMode::Ticked);
    Rng rng(0x1237 + cfg.bus_wires + cfg.chunk_bits);

    BitVec prev(kBlockBits);
    for (int i = 0; i < 60; i++) {
        BitVec block = biasedBlock(rng, prev, cfg.chunk_bits, 0.4, 0.3);
        prev = block;

        mixed.setMode((i % 3 == 1) ? LinkMode::Ticked : LinkMode::Fast);
        BitVec recv_m, recv_t;
        auto rm = mixed.transferBlock(block, &recv_m);
        auto rt = ticked.transferBlock(block, &recv_t);
        ASSERT_EQ(mixed.usedFastPath(), i % 3 != 1);

        ASSERT_EQ(recv_m, recv_t) << "received block, block " << i;
        expectSameResult(rm, rt, i);
        expectSameState(mixed, ticked, i);
    }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSpace, LinkFastPath,
    ::testing::Combine(
        ::testing::Values(16u, 32u, 64u, 128u, 256u),
        ::testing::Values(1u, 2u, 4u, 8u),
        ::testing::Values(SkipMode::None, SkipMode::Zero,
                          SkipMode::LastValue, SkipMode::Adaptive)),
    [](const ::testing::TestParamInfo<Param> &info) {
        unsigned wires = std::get<0>(info.param);
        unsigned bits = std::get<1>(info.param);
        std::string name = "w" + std::to_string(wires) + "_c"
            + std::to_string(bits) + "_";
        switch (std::get<2>(info.param)) {
          case SkipMode::None:
            name += "basic";
            break;
          case SkipMode::Zero:
            name += "zero";
            break;
          case SkipMode::LastValue:
            name += "last";
            break;
          case SkipMode::Adaptive:
            name += "adaptive";
            break;
        }
        return name;
    });

TEST(LinkFastPathEcc, EccLayoutsMatchTicked)
{
    // The ECC bus layouts of Figure 9: the (137,128) and (72,64) codes
    // widen the bus by the parity chunks, giving non-power-of-two wire
    // counts and block widths. Stream codec-encoded blocks through
    // both paths.
    for (unsigned seg_bits : {128u, 64u}) {
        ecc::BlockCodec codec(kBlockBits, seg_bits);
        ASSERT_EQ(codec.totalParityBits() % 4, 0u);

        DescConfig cfg;
        cfg.chunk_bits = 4;
        cfg.block_bits = codec.busBits();
        cfg.bus_wires = 128 + codec.totalParityBits() / 4;
        cfg.skip = SkipMode::Zero;

        DescLink fast(cfg);
        DescLink ticked(cfg);
        fast.setMode(LinkMode::Fast);
        ticked.setMode(LinkMode::Ticked);
        Rng rng(0xecc0 + seg_bits);

        BitVec prev(kBlockBits);
        BitVec bus;
        for (int i = 0; i < 30; i++) {
            BitVec payload = biasedBlock(rng, prev, 4, 0.5, 0.2);
            prev = payload;
            codec.encodeInto(payload, bus);

            BitVec recv_f, recv_t;
            auto rf = fast.transferBlock(bus, &recv_f);
            auto rt = ticked.transferBlock(bus, &recv_t);
            ASSERT_EQ(recv_f, recv_t) << "seg " << seg_bits << " block " << i;
            ASSERT_EQ(recv_t, bus);
            expectSameResult(rf, rt, i);
            expectSameState(fast, ticked, i);
        }
    }
}

TEST(LinkFastPathSelect, AutoUsesFastPathWhenUnobserved)
{
    DescConfig cfg;
    DescLink link(cfg);
    link.setMode(LinkMode::Auto);
    BitVec block(cfg.block_bits);
    link.transferBlock(block);
    EXPECT_TRUE(link.usedFastPath());
}

TEST(LinkFastPathSelect, WireHookForcesTickedLoop)
{
    DescConfig cfg;
    DescLink link(cfg);
    link.setMode(LinkMode::Auto);
    unsigned observed = 0;
    link.setWireHook([&](Cycle, const WireBundle &) { observed++; });
    BitVec block(cfg.block_bits);
    auto r = link.transferBlock(block);
    EXPECT_FALSE(link.usedFastPath());
    EXPECT_EQ(observed, r.cycles);
}

TEST(LinkFastPathSelect, FaultHookForcesTickedLoop)
{
    DescConfig cfg;
    DescLink link(cfg);
    link.setMode(LinkMode::Auto);
    unsigned observed = 0;
    link.setFaultHook([&](Cycle, WireBundle &) { observed++; });
    BitVec block(cfg.block_bits);
    auto r = link.transferBlock(block);
    EXPECT_FALSE(link.usedFastPath());
    EXPECT_EQ(observed, r.cycles);
}

TEST(LinkFastPathSelect, ForcedFastStillTicksBehindHooks)
{
    // VCD export and fault injection must see real cycles even when
    // the environment forces the fast mode; the link warns and ticks.
    DescConfig cfg;
    DescLink link(cfg);
    link.setMode(LinkMode::Fast);
    unsigned observed = 0;
    link.setWireHook([&](Cycle, const WireBundle &) { observed++; });
    BitVec block(cfg.block_bits);
    auto r = link.transferBlock(block);
    EXPECT_FALSE(link.usedFastPath());
    EXPECT_EQ(observed, r.cycles);
}

TEST(LinkFastPathSelect, LinkTraceChannelForcesTickedLoop)
{
    DescConfig cfg;
    DescLink link(cfg);
    link.setMode(LinkMode::Auto);
    BitVec block(cfg.block_bits);

    const std::uint32_t saved_mask = trace::mask();
    trace::setMask(1u << unsigned(trace::Channel::Link));
    link.transferBlock(block);
    bool fast_while_traced = link.usedFastPath();
    trace::setMask(saved_mask);
    EXPECT_FALSE(fast_while_traced);

    link.transferBlock(block);
    EXPECT_TRUE(link.usedFastPath());
}

TEST(LinkFastPathSelect, NullReceivedPointerWorksOnBothPaths)
{
    DescConfig cfg;
    cfg.skip = SkipMode::LastValue;
    DescLink fast(cfg);
    DescLink ticked(cfg);
    fast.setMode(LinkMode::Fast);
    ticked.setMode(LinkMode::Ticked);
    Rng rng(42);

    BitVec prev(cfg.block_bits);
    for (int i = 0; i < 10; i++) {
        BitVec block = biasedBlock(rng, prev, cfg.chunk_bits, 0.3, 0.3);
        prev = block;
        auto rf = fast.transferBlock(block); // received == nullptr
        auto rt = ticked.transferBlock(block);
        expectSameResult(rf, rt, i);
        expectSameState(fast, ticked, i);
    }
}
