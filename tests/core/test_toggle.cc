/**
 * @file
 * Unit tests for the toggle generator/detector/regenerator circuits
 * and their word-wide bank counterparts (DESIGN.md §15): a bank must
 * behave exactly like one scalar circuit per lane.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "core/toggle.hh"

using desc::Rng;
using namespace desc::core;

TEST(ToggleGenerator, AlternatesLevels)
{
    ToggleGenerator tg;
    EXPECT_FALSE(tg.level());
    tg.fire();
    EXPECT_TRUE(tg.level());
    tg.fire();
    EXPECT_FALSE(tg.level());
}

TEST(ToggleGenerator, ResetReturnsLow)
{
    ToggleGenerator tg;
    tg.fire();
    tg.reset();
    EXPECT_FALSE(tg.level());
}

TEST(ToggleDetector, DetectsEveryLevelChange)
{
    ToggleDetector td;
    EXPECT_FALSE(td.sample(false));
    EXPECT_TRUE(td.sample(true));
    EXPECT_FALSE(td.sample(true));
    EXPECT_TRUE(td.sample(false));
}

TEST(ToggleDetector, GeneratorDetectorPairRoundTrips)
{
    ToggleGenerator tg;
    ToggleDetector td;
    td.sample(tg.level());
    int detected = 0;
    for (int i = 0; i < 10; i++) {
        if (i % 3 == 0)
            tg.fire();
        if (td.sample(tg.level()))
            detected++;
    }
    EXPECT_EQ(detected, 4); // fires at i = 0, 3, 6, 9
}

TEST(ToggleGeneratorBank, MatchesScalarLanes)
{
    // 130 lanes spans three plane words including a partial tail.
    const unsigned lanes = 130;
    ToggleGeneratorBank bank(lanes);
    std::vector<ToggleGenerator> scalar(lanes);
    Rng rng(0x76b1);
    WirePlane mask(lanes);
    for (int round = 0; round < 200; round++) {
        mask.clear();
        for (unsigned i = 0; i < lanes; i++) {
            if (rng.chance(0.3)) {
                mask[i] = true;
                scalar[i].fire();
            }
        }
        bank.fire(mask);
        for (unsigned i = 0; i < lanes; i++)
            ASSERT_EQ(bank.level(i), scalar[i].level())
                << "lane " << i << " round " << round;
    }
    bank.reset();
    for (unsigned i = 0; i < lanes; i++)
        EXPECT_FALSE(bank.level(i));
}

TEST(ToggleGeneratorBank, FastForwardAppliesStrobeParity)
{
    const unsigned lanes = 70;
    ToggleGeneratorBank bank(lanes);
    std::vector<ToggleGenerator> scalar(lanes);
    WirePlane odd(lanes);
    for (unsigned i = 0; i < lanes; i++) {
        std::uint64_t fires = (i * 7 + 3) % 5;
        scalar[i].fastForward(fires);
        odd[i] = (fires & 1) != 0;
    }
    bank.fastForward(odd);
    for (unsigned i = 0; i < lanes; i++)
        EXPECT_EQ(bank.level(i), scalar[i].level()) << "lane " << i;
}

TEST(ToggleDetectorBank, MatchesScalarLanes)
{
    const unsigned lanes = 130;
    ToggleDetectorBank bank(lanes);
    std::vector<ToggleDetector> scalar(lanes);
    Rng rng(0xde7ec);
    WirePlane levels(lanes);
    WirePlane toggles(lanes);
    for (int round = 0; round < 200; round++) {
        for (unsigned i = 0; i < lanes; i++) {
            if (rng.chance(0.4))
                levels[i] = !levels[i];
        }
        bank.sample(levels, toggles);
        for (unsigned i = 0; i < lanes; i++)
            ASSERT_EQ(bool(toggles[i]), scalar[i].sample(levels[i]))
                << "lane " << i << " round " << round;
    }
}

TEST(ToggleDetectorBank, PrimeJumpsDelayedCopies)
{
    const unsigned lanes = 65;
    ToggleDetectorBank bank(lanes);
    WirePlane levels(lanes);
    levels[0] = true;
    levels[64] = true;
    bank.prime(levels);
    EXPECT_EQ(bank.delayed(), levels);
    // A sample at the primed levels reports no toggles at all.
    WirePlane toggles(lanes);
    bank.sample(levels, toggles);
    WirePlane none(lanes);
    EXPECT_EQ(toggles, none);
}

TEST(ToggleRegenerator, ForwardsSelectedBranchOnly)
{
    ToggleRegenerator tr;
    // Branch 0 selected; its toggle propagates.
    EXPECT_FALSE(tr.sample(false, false, false));
    EXPECT_TRUE(tr.sample(true, false, false));
    // Branch 1 toggling while branch 0 is selected: no output change.
    EXPECT_TRUE(tr.sample(true, true, false));
    EXPECT_TRUE(tr.sample(true, false, false));
}

TEST(ToggleRegenerator, RemembersPerBranchState)
{
    ToggleRegenerator tr;
    tr.sample(false, false, false);
    tr.sample(true, false, false);   // branch0 -> high, output toggles
    bool lvl = tr.level();
    // Switch selection to branch 1 (still low = its remembered state):
    // no spurious toggle.
    tr.sample(true, false, true);
    EXPECT_EQ(tr.level(), lvl);
    // Branch 1 toggles: output toggles.
    tr.sample(true, true, true);
    EXPECT_NE(tr.level(), lvl);
}
