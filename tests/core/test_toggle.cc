/**
 * @file
 * Unit tests for the toggle generator/detector/regenerator circuits.
 */

#include <gtest/gtest.h>

#include "core/toggle.hh"

using namespace desc::core;

TEST(ToggleGenerator, AlternatesLevels)
{
    ToggleGenerator tg;
    EXPECT_FALSE(tg.level());
    tg.fire();
    EXPECT_TRUE(tg.level());
    tg.fire();
    EXPECT_FALSE(tg.level());
}

TEST(ToggleGenerator, ResetReturnsLow)
{
    ToggleGenerator tg;
    tg.fire();
    tg.reset();
    EXPECT_FALSE(tg.level());
}

TEST(ToggleDetector, DetectsEveryLevelChange)
{
    ToggleDetector td;
    EXPECT_FALSE(td.sample(false));
    EXPECT_TRUE(td.sample(true));
    EXPECT_FALSE(td.sample(true));
    EXPECT_TRUE(td.sample(false));
}

TEST(ToggleDetector, GeneratorDetectorPairRoundTrips)
{
    ToggleGenerator tg;
    ToggleDetector td;
    td.sample(tg.level());
    int detected = 0;
    for (int i = 0; i < 10; i++) {
        if (i % 3 == 0)
            tg.fire();
        if (td.sample(tg.level()))
            detected++;
    }
    EXPECT_EQ(detected, 4); // fires at i = 0, 3, 6, 9
}

TEST(ToggleRegenerator, ForwardsSelectedBranchOnly)
{
    ToggleRegenerator tr;
    // Branch 0 selected; its toggle propagates.
    EXPECT_FALSE(tr.sample(false, false, false));
    EXPECT_TRUE(tr.sample(true, false, false));
    // Branch 1 toggling while branch 0 is selected: no output change.
    EXPECT_TRUE(tr.sample(true, true, false));
    EXPECT_TRUE(tr.sample(true, false, false));
}

TEST(ToggleRegenerator, RemembersPerBranchState)
{
    ToggleRegenerator tr;
    tr.sample(false, false, false);
    tr.sample(true, false, false);   // branch0 -> high, output toggles
    bool lvl = tr.level();
    // Switch selection to branch 1 (still low = its remembered state):
    // no spurious toggle.
    tr.sample(true, false, true);
    EXPECT_EQ(tr.level(), lvl);
    // Branch 1 toggles: output toggles.
    tr.sample(true, true, true);
    EXPECT_NE(tr.level(), lvl);
}
