/**
 * @file
 * Tests for the adaptive frequent-value skip policy (the Section 3.3
 * design the paper considered): tracker behavior and end-to-end
 * correctness over the cycle-accurate link.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/adaptive.hh"
#include "core/descscheme.hh"
#include "core/link.hh"

using namespace desc;
using namespace desc::core;

TEST(AdaptiveTracker, StartsAtZero)
{
    AdaptiveTracker t(4, 4);
    for (unsigned w = 0; w < 4; w++)
        EXPECT_EQ(t.best(w), 0u);
}

TEST(AdaptiveTracker, LearnsTheMostFrequentValue)
{
    AdaptiveTracker t(1, 4);
    for (int i = 0; i < 10; i++)
        t.update(0, 7);
    for (int i = 0; i < 3; i++)
        t.update(0, 2);
    EXPECT_EQ(t.best(0), 7u);
}

TEST(AdaptiveTracker, WiresAreIndependent)
{
    AdaptiveTracker t(2, 4);
    for (int i = 0; i < 5; i++) {
        t.update(0, 3);
        t.update(1, 9);
    }
    EXPECT_EQ(t.best(0), 3u);
    EXPECT_EQ(t.best(1), 9u);
}

TEST(AdaptiveTracker, SaturationDecayKeepsAdapting)
{
    AdaptiveTracker t(1, 4);
    // Saturate on value 1, then shift the distribution to value 5.
    for (int i = 0; i < 1000; i++)
        t.update(0, 1);
    for (int i = 0; i < 300; i++)
        t.update(0, 5);
    EXPECT_EQ(t.best(0), 5u);
}

TEST(AdaptiveTracker, ZeroWinsTies)
{
    AdaptiveTracker t(1, 4);
    t.update(0, 6); // count(6)=1 beats count(0)=0
    EXPECT_EQ(t.best(0), 6u);
    t.update(0, 0); // tie at 1: lower value wins
    EXPECT_EQ(t.best(0), 0u);
}

TEST(AdaptiveSkip, RoundTripsWithSkewedValues)
{
    DescConfig cfg;
    cfg.bus_wires = 32;
    cfg.chunk_bits = 4;
    cfg.block_bits = 128;
    cfg.skip = SkipMode::Adaptive;
    DescLink link(cfg);
    Rng rng(91);

    for (int i = 0; i < 200; i++) {
        BitVec block(128);
        for (unsigned c = 0; c < 32; c++) {
            // Heavily skewed toward value 9 so adaptation kicks in.
            std::uint64_t v =
                rng.chance(0.6) ? 9 : rng.below(16);
            block.setField(c * 4, 4, v);
        }
        BitVec recv;
        link.transferBlock(block, &recv);
        ASSERT_EQ(recv, block) << "block " << i;
    }
}

TEST(AdaptiveSkip, EventuallySkipsTheFrequentNonZeroValue)
{
    DescConfig cfg;
    cfg.bus_wires = 128;
    cfg.chunk_bits = 4;
    cfg.skip = SkipMode::Adaptive;
    DescScheme scheme(cfg);

    // Every chunk is 0xb: after warmup, everything should skip.
    BitVec block(kBlockBits);
    for (unsigned c = 0; c < 128; c++)
        block.setField(c * 4, 4, 0xb);
    encoding::TransferResult last{};
    for (int i = 0; i < 10; i++)
        last = scheme.transfer(block);
    EXPECT_EQ(last.data_flips, 0u);
    EXPECT_EQ(last.skipped, 128u);
}

TEST(AdaptiveSkip, BeatsZeroSkipOnNonZeroHeavyStreams)
{
    // The one regime where adaptation helps: a dominant non-zero
    // value. (On real cache data the dominant value IS zero, which is
    // why the paper keeps plain zero skipping.)
    DescConfig zcfg;
    zcfg.skip = SkipMode::Zero;
    DescConfig acfg;
    acfg.skip = SkipMode::Adaptive;
    DescScheme zero(zcfg), adaptive(acfg);
    Rng rng(92);

    std::uint64_t zflips = 0, aflips = 0;
    for (int i = 0; i < 100; i++) {
        BitVec block(kBlockBits);
        for (unsigned c = 0; c < 128; c++) {
            std::uint64_t v = rng.chance(0.5) ? 0xf : rng.below(16);
            block.setField(c * 4, 4, v);
        }
        zflips += zero.transfer(block).data_flips;
        aflips += adaptive.transfer(block).data_flips;
    }
    EXPECT_LT(aflips, zflips);
}
