/**
 * @file
 * Unit tests for the DESC pulse-delay/value mapping.
 */

#include <gtest/gtest.h>

#include "core/timing.hh"

using desc::core::chunkCycles;
using desc::core::decodeCycles;

TEST(Timing, BasicModeIsValuePlusOne)
{
    // Figure 5: value 2 takes 3 cycles, value 1 takes 2 cycles.
    EXPECT_EQ(chunkCycles(2, false, 0), 3u);
    EXPECT_EQ(chunkCycles(1, false, 0), 2u);
    EXPECT_EQ(chunkCycles(0, false, 0), 1u);
    EXPECT_EQ(chunkCycles(15, false, 0), 16u);
}

TEST(Timing, SkippingExcludesSkipValueFromCountList)
{
    // Figure 10: with zero skipping, value 5 needs a 5-cycle window
    // instead of 6.
    EXPECT_EQ(chunkCycles(5, true, 0), 5u);
    EXPECT_EQ(chunkCycles(1, true, 0), 1u);
    EXPECT_EQ(chunkCycles(15, true, 0), 15u);
}

TEST(Timing, SkipValueInMiddleSplitsTheList)
{
    // Skip value 7: values below keep v+1, values above compress to v.
    EXPECT_EQ(chunkCycles(0, true, 7), 1u);
    EXPECT_EQ(chunkCycles(6, true, 7), 7u);
    EXPECT_EQ(chunkCycles(8, true, 7), 8u);
    EXPECT_EQ(chunkCycles(15, true, 7), 15u);
}

TEST(Timing, DecodeInvertsEncodeWithoutSkipping)
{
    for (std::uint64_t v = 0; v < 256; v++)
        EXPECT_EQ(decodeCycles(chunkCycles(v, false, 0), false, 0), v);
}

TEST(Timing, DecodeInvertsEncodeForEverySkipValue)
{
    for (std::uint64_t s = 0; s < 16; s++) {
        for (std::uint64_t v = 0; v < 16; v++) {
            if (v == s)
                continue;
            EXPECT_EQ(decodeCycles(chunkCycles(v, true, s), true, s), v)
                << "skip=" << s << " value=" << v;
        }
    }
}

TEST(Timing, EncodingIsInjectivePerSkipValue)
{
    // Two distinct transmittable values never share a pulse delay.
    for (std::uint64_t s = 0; s < 16; s++) {
        bool used[17] = {};
        for (std::uint64_t v = 0; v < 16; v++) {
            if (v == s)
                continue;
            unsigned c = chunkCycles(v, true, s);
            ASSERT_LE(c, 16u);
            EXPECT_FALSE(used[c]) << "collision at delay " << c;
            used[c] = true;
        }
    }
}

TEST(Timing, SkippingNeverLengthensAnyChunk)
{
    for (std::uint64_t s = 0; s < 16; s++)
        for (std::uint64_t v = 0; v < 16; v++) {
            if (v == s)
                continue;
            EXPECT_LE(chunkCycles(v, true, s), chunkCycles(v, false, 0));
        }
}

TEST(TimingDeath, TransmittingTheSkipValuePanics)
{
    EXPECT_DEATH(chunkCycles(3, true, 3), "assertion failed");
}
