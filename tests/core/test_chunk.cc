/**
 * @file
 * Unit tests for chunking, wire assignment, and chunk statistics.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/chunk.hh"

using namespace desc;
using namespace desc::core;

TEST(Chunk, SplitJoinRoundTrip)
{
    Rng rng(1);
    for (unsigned bits : {1u, 2u, 4u, 8u}) {
        BitVec block(kBlockBits);
        block.randomize(rng);
        auto chunks = splitChunks(block, bits);
        EXPECT_EQ(chunks.size(), kBlockBits / bits);
        EXPECT_EQ(joinChunks(chunks, bits, kBlockBits), block);
    }
}

TEST(Chunk, SplitExtractsCorrectValues)
{
    BitVec block(16, 0x4321);
    auto chunks = splitChunks(block, 4);
    ASSERT_EQ(chunks.size(), 4u);
    EXPECT_EQ(chunks[0], 0x1);
    EXPECT_EQ(chunks[1], 0x2);
    EXPECT_EQ(chunks[2], 0x3);
    EXPECT_EQ(chunks[3], 0x4);
}

TEST(Chunk, WireAssignmentMatchesFigure4)
{
    // 128 chunks on 64 wires: chunk 0 and chunk 64 share wire 0
    // (slots 0 and 1), chunk 1 and 65 share wire 1, etc.
    EXPECT_EQ(chunkWire(0, 64), 0u);
    EXPECT_EQ(chunkWire(64, 64), 0u);
    EXPECT_EQ(chunkSlot(0, 64), 0u);
    EXPECT_EQ(chunkSlot(64, 64), 1u);
    EXPECT_EQ(chunkWire(65, 64), 1u);
    EXPECT_EQ(chunkSlot(127, 64), 1u);
}

TEST(ChunkStats, ZeroFractionOfZeroBlockIsOne)
{
    ChunkStats stats(4, 128);
    stats.observe(BitVec(kBlockBits));
    EXPECT_DOUBLE_EQ(stats.zeroFraction(), 1.0);
    EXPECT_EQ(stats.totalChunks(), 128u);
}

TEST(ChunkStats, ValueFractions)
{
    ChunkStats stats(4, 4);
    BitVec block(16);
    block.setField(0, 4, 5);
    block.setField(4, 4, 5);
    block.setField(8, 4, 7);
    stats.observe(block);
    EXPECT_DOUBLE_EQ(stats.valueFraction(5), 0.5);
    EXPECT_DOUBLE_EQ(stats.valueFraction(7), 0.25);
    EXPECT_DOUBLE_EQ(stats.zeroFraction(), 0.25);
}

TEST(ChunkStats, LastValueMatchesAcrossBlocksOnSameWire)
{
    ChunkStats stats(4, 4);
    BitVec a(16, 0x1234);
    stats.observe(a);
    // First block has no predecessors: no candidates yet with one
    // chunk per wire.
    EXPECT_DOUBLE_EQ(stats.lastValueMatchFraction(), 0.0);
    stats.observe(a); // identical block: all four wires match
    EXPECT_DOUBLE_EQ(stats.lastValueMatchFraction(), 1.0);
    BitVec b(16, 0x1230); // chunk 0 differs (4 -> 0), rest match
    stats.observe(b);
    EXPECT_NEAR(stats.lastValueMatchFraction(), 7.0 / 8.0, 1e-12);
}

TEST(ChunkStats, IntraBlockMatchesCountedPerWire)
{
    // One wire, two chunks per block: consecutive chunks on the same
    // wire are candidates even within a block.
    ChunkStats stats(4, 1);
    BitVec block(8, 0x55); // chunks 5, 5
    stats.observe(block);
    EXPECT_DOUBLE_EQ(stats.lastValueMatchFraction(), 1.0);
}
