/**
 * @file
 * Unit tests for the behavioral DESC scheme formulas.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/chunk.hh"
#include "core/descscheme.hh"
#include "core/factory.hh"

using namespace desc;
using namespace desc::core;
using desc::encoding::SchemeConfig;
using desc::encoding::SchemeKind;

namespace {

DescConfig
makeCfg(unsigned wires, unsigned chunk_bits, SkipMode skip,
        unsigned block_bits = kBlockBits)
{
    DescConfig c;
    c.bus_wires = wires;
    c.chunk_bits = chunk_bits;
    c.block_bits = block_bits;
    c.skip = skip;
    return c;
}

} // namespace

TEST(DescConfig, DerivedQuantities)
{
    auto c = makeCfg(128, 4, SkipMode::Zero);
    EXPECT_EQ(c.numChunks(), 128u);
    EXPECT_EQ(c.activeWires(), 128u);
    EXPECT_EQ(c.numWaves(), 1u);
    EXPECT_EQ(c.maxValue(), 15u);

    auto half = makeCfg(64, 4, SkipMode::Zero);
    EXPECT_EQ(half.activeWires(), 64u);
    EXPECT_EQ(half.numWaves(), 2u);

    // More wires than chunks: only one wire per chunk is used.
    auto wide = makeCfg(512, 4, SkipMode::Zero);
    EXPECT_EQ(wide.activeWires(), 128u);
    EXPECT_EQ(wide.numWaves(), 1u);
}

TEST(DescScheme, BasicModeFlipCountIsDataIndependent)
{
    // The paper's core claim: transition count is independent of the
    // data pattern in basic DESC.
    DescScheme s(makeCfg(128, 4, SkipMode::None));
    Rng rng(31);
    for (int i = 0; i < 30; i++) {
        BitVec block(kBlockBits);
        block.randomize(rng);
        EXPECT_EQ(s.transfer(block).data_flips, 128u);
    }
}

TEST(DescScheme, BasicWindowTracksMaxChunkValue)
{
    DescScheme s(makeCfg(128, 4, SkipMode::None));
    BitVec block(kBlockBits);
    block.setField(0, 4, 9); // one chunk of value 9, rest zero
    auto r = s.transfer(block);
    EXPECT_EQ(r.cycles, 1u + 10u);
}

TEST(DescScheme, ZeroSkipWindowShrinksWithSkipping)
{
    // Figure 10: same values, zero-skipped window is narrower.
    auto basic = DescScheme(makeCfg(128, 4, SkipMode::None));
    auto zs = DescScheme(makeCfg(128, 4, SkipMode::Zero));
    BitVec block(kBlockBits);
    block.setField(0, 4, 5);
    EXPECT_EQ(basic.transfer(block).cycles, 1u + 6u);
    EXPECT_EQ(zs.transfer(block).cycles, 1u + 5u);
}

TEST(DescScheme, ZeroSkipSavesFlipsOnZeroHeavyData)
{
    DescScheme s(makeCfg(128, 4, SkipMode::Zero));
    BitVec block(kBlockBits);
    for (unsigned i = 0; i < 16; i++)
        block.setField(i * 4, 4, 0xf);
    auto r = s.transfer(block);
    EXPECT_EQ(r.data_flips, 16u);
    EXPECT_EQ(r.skipped, 112u);
}

TEST(DescScheme, LastValueSkipUsesPerWireHistory)
{
    DescScheme s(makeCfg(128, 4, SkipMode::LastValue));
    Rng rng(33);
    BitVec a(kBlockBits);
    a.randomize(rng);
    auto first = s.transfer(a);
    // Initial last values are zero, so zero chunks of the first block
    // are skipped.
    EXPECT_GE(first.data_flips, 1u);
    auto again = s.transfer(a);
    EXPECT_EQ(again.data_flips, 0u);
    EXPECT_EQ(again.skipped, 128u);
}

TEST(DescScheme, MultiWaveCyclesAccumulate)
{
    // 64 wires, two waves; distinct max values per wave.
    DescScheme s(makeCfg(64, 4, SkipMode::Zero));
    BitVec block(kBlockBits);
    block.setField(0, 4, 7);        // wave 0 (chunk 0)
    block.setField(64 * 4, 4, 3);   // wave 1 (chunk 64)
    auto r = s.transfer(block);
    // open + wave0 window(7) + wave1 window(3)
    EXPECT_EQ(r.cycles, 1u + 7u + 3u);
    // reset flips: open + merged + final close (both waves skip)
    EXPECT_EQ(r.control_flips - r.cycles, 3u);
}

TEST(DescScheme, ControlWiresAreResetAndSync)
{
    DescScheme s(makeCfg(128, 4, SkipMode::Zero));
    EXPECT_EQ(s.controlWires(), 2u);
    EXPECT_EQ(s.dataWires(), 128u);
}

TEST(DescScheme, ResetClearsLastValueHistory)
{
    DescScheme s(makeCfg(128, 4, SkipMode::LastValue));
    Rng rng(34);
    BitVec a(kBlockBits);
    a.randomize(rng);
    s.transfer(a);
    s.reset();
    auto r = s.transfer(a);
    // History cleared: skips only where chunks are zero.
    auto chunks = splitChunks(a, 4);
    std::uint64_t zeros = 0;
    for (auto c : chunks)
        zeros += c == 0;
    EXPECT_EQ(r.skipped, zeros);
}

TEST(DescScheme, FactoryBuildsEveryKind)
{
    SchemeConfig cfg;
    cfg.bus_wires = 64;
    cfg.segment_bits = 8;
    cfg.chunk_bits = 4;
    for (unsigned i = 0; i < encoding::kNumSchemes; i++) {
        auto kind = allSchemeKinds()[i];
        auto scheme = makeScheme(kind, cfg);
        ASSERT_NE(scheme, nullptr);
        EXPECT_STREQ(scheme->name(), encoding::schemeName(kind));
        auto r = scheme->transfer(BitVec(kBlockBits));
        EXPECT_GT(r.cycles, 0u);
    }
}

TEST(DescScheme, OneBitChunksWork)
{
    // Figure 26 sweeps chunk sizes down to one bit.
    DescScheme s(makeCfg(512, 1, SkipMode::Zero));
    Rng rng(35);
    BitVec block(kBlockBits);
    block.randomize(rng);
    auto r = s.transfer(block);
    EXPECT_EQ(r.data_flips, block.popcount());
    EXPECT_EQ(r.skipped, 512u - block.popcount());
}
