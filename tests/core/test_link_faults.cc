/**
 * @file
 * Tests for the DescLink fault-injection hook: the plumbing the ECC
 * experiments rely on, exercised with faults the receiver tolerates.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/link.hh"

using namespace desc;
using namespace desc::core;

namespace {

DescConfig
smallCfg(SkipMode skip)
{
    DescConfig cfg;
    cfg.bus_wires = 16;
    cfg.chunk_bits = 4;
    cfg.block_bits = 64;
    cfg.skip = skip;
    return cfg;
}

} // namespace

TEST(LinkFaults, HookObservesEveryCycle)
{
    DescLink link(smallCfg(SkipMode::Zero));
    Cycle observed = 0;
    link.setFaultHook([&](Cycle, WireBundle &) { observed++; });
    BitVec block(64, 0x123456789abcdef0ull);
    auto r = link.transferBlock(block);
    EXPECT_EQ(observed, r.cycles);
}

TEST(LinkFaults, SyncWireGlitchIsHarmlessToData)
{
    // The sync strobe carries only timing in our model; a glitch on
    // it must not corrupt decoded data (the receiver's detectors are
    // per-wire).
    DescLink link(smallCfg(SkipMode::Zero));
    Rng rng(5);
    link.setFaultHook([&](Cycle, WireBundle &w) {
        if (rng.chance(0.3))
            w.sync = !w.sync;
    });
    for (int i = 0; i < 30; i++) {
        BitVec block(64);
        block.randomize(rng);
        BitVec recv;
        link.transferBlock(block, &recv);
        ASSERT_EQ(recv, block);
    }
}

TEST(LinkFaults, DelayedToggleCorruptsExactlyOneChunkValue)
{
    // Suppress a data toggle for one cycle (it arrives a cycle late):
    // the receiver decodes a value one higher; everything else is
    // intact. This is the chunk-level fault model the interleaved
    // SECDED layout (Figure 9) is designed for.
    DescConfig cfg = smallCfg(SkipMode::None);
    DescLink link(cfg);

    // Chunks 0..15 get values 0..15 -> wire w toggles at cycle v+1.
    BitVec block(64);
    for (unsigned c = 0; c < 16; c++)
        block.setField(c * 4, 4, c);

    // Delay wire 5's toggle by one cycle: mask the new level at the
    // cycle it first appears, reapply afterwards.
    bool armed = true;
    bool prev_level = false;
    link.setFaultHook([&](Cycle, WireBundle &w) {
        if (armed && w.data[5] != prev_level) {
            w.data[5] = prev_level; // suppress for one cycle
            armed = false;
            return;
        }
        prev_level = w.data[5];
    });

    BitVec recv;
    link.transferBlock(block, &recv);
    EXPECT_NE(recv, block);
    // Only chunk 5 differs, and by exactly +1 (value 5 -> 6).
    for (unsigned c = 0; c < 16; c++) {
        if (c == 5)
            EXPECT_EQ(recv.field(c * 4, 4), 6u);
        else
            EXPECT_EQ(recv.field(c * 4, 4), c);
    }
}
