/**
 * @file
 * Integration tests pinning the paper's directional claims: these run
 * small but complete simulations and assert the *shape* of every
 * headline result, so a regression anywhere in the stack (encoder,
 * coherence, timing, energy accounting, workloads) surfaces here.
 */

#include <gtest/gtest.h>

#include "core/factory.hh"
#include "sim/experiment.hh"

using namespace desc;
using namespace desc::sim;
using encoding::SchemeKind;

namespace {

AppRun
runScheme(const char *app, SchemeKind kind,
          std::uint64_t budget = 12'000)
{
    SystemConfig cfg = baselineConfig(workloads::findApp(app));
    cfg.insts_per_thread = budget;
    applyScheme(cfg, kind);
    AppRun run;
    run.result = runSystem(cfg);
    run.l2 = computeL2Energy(cfg, run.result);
    run.processor = computeProcessorEnergy(cfg, run.result, run.l2);
    return run;
}

} // namespace

TEST(PaperClaims, ZeroSkippedDescReducesL2EnergySubstantially)
{
    // Headline (Abstract / Section 5.2): ~1.8x on the app mix. A
    // single mid-pack app at small scale must still show a large win.
    auto bin = runScheme("CG", SchemeKind::Binary);
    auto zs = runScheme("CG", SchemeKind::DescZeroSkip);
    double reduction = bin.l2.total() / zs.l2.total();
    EXPECT_GT(reduction, 1.4);
    EXPECT_LT(reduction, 2.6);
}

TEST(PaperClaims, SchemeOrderingOnZeroRichApps)
{
    // Figure 16 ordering for a zero-rich application: skipped DESC
    // variants < zero-skipped bus-invert < plain bus-invert < binary.
    auto bin = runScheme("Equake", SchemeKind::Binary);
    auto bic = runScheme("Equake", SchemeKind::BusInvert);
    auto zsbic = runScheme("Equake", SchemeKind::ZeroSkipBusInvert);
    auto zs = runScheme("Equake", SchemeKind::DescZeroSkip);
    EXPECT_LT(bic.l2.total(), bin.l2.total());
    EXPECT_LT(zsbic.l2.total(), bic.l2.total());
    EXPECT_LT(zs.l2.total(), zsbic.l2.total());
}

TEST(PaperClaims, ExecutionTimeOverheadIsSmallOnTheMulticore)
{
    // Figure 20: <2% for the skipped DESC variants on the SMT machine.
    auto bin = runScheme("FFT", SchemeKind::Binary);
    auto zs = runScheme("FFT", SchemeKind::DescZeroSkip);
    double overhead = double(zs.result.cycles)
        / double(bin.result.cycles);
    EXPECT_LT(overhead, 1.05);
    EXPECT_GT(overhead, 0.95);
}

TEST(PaperClaims, DescRaisesHitDelayButNotMissPath)
{
    // Section 5.3: DESC affects the hit time, not the miss penalty.
    auto bin = runScheme("Water-Nsquared", SchemeKind::Binary);
    auto zs = runScheme("Water-Nsquared", SchemeKind::DescZeroSkip);
    EXPECT_GT(zs.result.avgHitDelay(), bin.result.avgHitDelay() + 4.0);
}

TEST(PaperClaims, ProcessorEnergySavingIsSingleDigitPercent)
{
    // Figure 19: ~7% processor-level saving.
    auto bin = runScheme("CG", SchemeKind::Binary);
    auto zs = runScheme("CG", SchemeKind::DescZeroSkip);
    double saving = 1.0 - zs.processor.total() / bin.processor.total();
    EXPECT_GT(saving, 0.02);
    EXPECT_LT(saving, 0.20);
}

TEST(PaperClaims, OooCoreIsMoreSensitiveThanSmt)
{
    // Figure 30 vs Figure 20: the latency-sensitive OoO design loses
    // more to DESC than the throughput-oriented multicore.
    auto smt_bin = runScheme("bzip2", SchemeKind::Binary, 20'000);
    auto smt_zs = runScheme("bzip2", SchemeKind::DescZeroSkip, 20'000);
    double smt_over = double(smt_zs.result.cycles)
        / double(smt_bin.result.cycles);

    SystemConfig ooo = baselineConfig(workloads::findApp("bzip2"));
    ooo.cpu = CpuKind::OutOfOrder;
    ooo.threads_per_core = 1;
    ooo.insts_per_thread = 80'000;
    auto ooo_bin_cfg = ooo;
    auto ooo_zs_cfg = ooo;
    applyScheme(ooo_zs_cfg, SchemeKind::DescZeroSkip);
    auto ooo_bin = runSystem(ooo_bin_cfg);
    auto ooo_zs = runSystem(ooo_zs_cfg);
    double ooo_over =
        double(ooo_zs.cycles) / double(ooo_bin.cycles);

    EXPECT_GT(ooo_over, smt_over);
    EXPECT_GT(ooo_over, 1.02);
}

TEST(PaperClaims, EccPreservesTheDescAdvantage)
{
    // Figure 29: DESC's energy win survives SECDED protection.
    SystemConfig bin_cfg = baselineConfig(workloads::findApp("CG"));
    bin_cfg.insts_per_thread = 12'000;
    bin_cfg.l2.ecc = true;
    bin_cfg.l2.ecc_segment_bits = 64;
    auto bin = runSystem(bin_cfg);
    auto bin_e = computeL2Energy(bin_cfg, bin);

    SystemConfig zs_cfg = bin_cfg;
    applyScheme(zs_cfg, SchemeKind::DescZeroSkip);
    zs_cfg.l2.ecc = true;
    zs_cfg.l2.ecc_segment_bits = 64;
    auto zs = runSystem(zs_cfg);
    auto zs_e = computeL2Energy(zs_cfg, zs);

    EXPECT_GT(bin_e.total() / zs_e.total(), 1.3);
}

TEST(PaperClaims, SnucaAlsoBenefits)
{
    // Figures 23/24: DESC on S-NUCA-1 saves energy at ~1% time cost.
    auto make = [](bool use_desc) {
        SystemConfig cfg = baselineConfig(workloads::findApp("MG"));
        cfg.insts_per_thread = 12'000;
        cfg.l2.snuca = true;
        cfg.l2.org.banks = 128;
        cfg.l2.org.bus_wires = 128;
        cfg.l2.scheme_cfg.bus_wires = 128;
        if (use_desc)
            applyScheme(cfg, SchemeKind::DescZeroSkip);
        return cfg;
    };
    auto bin_cfg = make(false);
    auto zs_cfg = make(true);
    auto bin = runSystem(bin_cfg);
    auto zs = runSystem(zs_cfg);
    auto bin_e = computeL2Energy(bin_cfg, bin);
    auto zs_e = computeL2Energy(zs_cfg, zs);
    EXPECT_GT(bin_e.total() / zs_e.total(), 1.2);
    EXPECT_LT(double(zs.cycles) / double(bin.cycles), 1.06);
}

TEST(PaperClaims, HtreeDominatesAndDescHalvesDynamic)
{
    // Figures 2 and 18 combined.
    auto bin = runScheme("Cholesky", SchemeKind::Binary);
    double htree_frac = bin.l2.htree_dynamic / bin.l2.total();
    EXPECT_GT(htree_frac, 0.6);

    auto zs = runScheme("Cholesky", SchemeKind::DescZeroSkip);
    EXPECT_LT(zs.l2.dynamic(), 0.65 * bin.l2.dynamic());
}

TEST(PaperClaims, LargerCachesKeepTheReduction)
{
    // Figure 27: the reduction persists from small to large caches.
    for (std::uint64_t capacity : {2ull << 20, 32ull << 20}) {
        SystemConfig bin_cfg = baselineConfig(workloads::findApp("Art"));
        bin_cfg.insts_per_thread = 8'000;
        bin_cfg.l2.org.capacity_bytes = capacity;
        auto zs_cfg = bin_cfg;
        applyScheme(zs_cfg, SchemeKind::DescZeroSkip);
        auto bin = runSystem(bin_cfg);
        auto zs = runSystem(zs_cfg);
        auto bin_e = computeL2Energy(bin_cfg, bin);
        auto zs_e = computeL2Energy(zs_cfg, zs);
        EXPECT_GT(bin_e.total() / zs_e.total(), 1.3)
            << "capacity " << (capacity >> 20) << "MB";
    }
}
