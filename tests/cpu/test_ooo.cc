/**
 * @file
 * Tests for the out-of-order core model.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "cache/hierarchy.hh"
#include "cpu/ooo.hh"

using namespace desc;
using namespace desc::cpu;

namespace {

class ZeroStore : public cache::BackingStore
{
  public:
    const cache::Block512 &
    fetch(Addr addr) override
    {
        return _mem[addr];
    }

    void store(Addr addr, const cache::Block512 &d) override
    {
        _mem[addr] = d;
    }

  private:
    std::unordered_map<Addr, cache::Block512> _mem;
};

class ScriptStream : public InstructionStream
{
  public:
    ScriptStream(unsigned gap, std::vector<Addr> addrs, bool writes)
        : _gap(gap), _addrs(std::move(addrs)), _writes(writes)
    {
    }

    unsigned
    nextGap(MemOp &op) override
    {
        op.addr = _addrs[_next++ % _addrs.size()];
        op.is_write = _writes;
        op.store_value = 1;
        return _gap;
    }

    Addr fetchAddr() const override { return 0x500000; }

  private:
    unsigned _gap;
    std::vector<Addr> _addrs;
    bool _writes;
    std::size_t _next = 0;
};

struct Fixture
{
    sim::EventQueue eq;
    ZeroStore backing;
    cache::MemHierarchy mem{eq, cache::L2Config{}, backing, 1};
};

Cycle
runCore(Fixture &f, std::unique_ptr<InstructionStream> stream,
        std::uint64_t budget)
{
    OooCore core(f.eq, f.mem, 0, std::move(stream), budget);
    core.start();
    f.eq.run();
    EXPECT_TRUE(core.done());
    EXPECT_EQ(core.instructions(), budget);
    return f.eq.now();
}

} // namespace

TEST(OooCore, WideIssueBeatsInOrderOnCachedCode)
{
    Fixture f;
    Cycle cycles = runCore(
        f,
        std::make_unique<ScriptStream>(15, std::vector<Addr>{0x1000},
                                       false),
        4000);
    // 4 instructions per cycle on cached data: IPC > 1.
    EXPECT_GT(4000.0 / double(cycles), 1.0);
}

TEST(OooCore, OverlapsIndependentMisses)
{
    // Independent misses should overlap (MLP); a latency-bound model
    // would take ~miss-latency per access.
    auto sweep = [](unsigned stride_count) {
        std::vector<Addr> addrs;
        for (unsigned i = 0; i < stride_count; i++)
            addrs.push_back((Addr{1} << 32) + Addr(i) * 128 * 1024);
        return addrs;
    };
    Fixture f;
    Cycle cycles =
        runCore(f, std::make_unique<ScriptStream>(3, sweep(256), false),
                4000);
    // 1000 memory ops, DRAM latency ~150+ cycles each; even with the
    // dependent-load fraction serializing some, MLP must keep the
    // total far below fully serial (1000 x ~250).
    EXPECT_LT(cycles, 220'000u);
}

TEST(OooCore, StoresStallLessThanLoads)
{
    // Same miss stream as loads vs as stores: stores drain through
    // the store buffer and never serialize the window, so the store
    // version can be no slower.
    auto addrs = [] {
        std::vector<Addr> v;
        for (unsigned i = 0; i < 128; i++)
            v.push_back((Addr{1} << 33) + Addr(i) * (256 * 1024 + 832));
        return v;
    };
    Fixture fr;
    Cycle rd_cycles = runCore(
        fr, std::make_unique<ScriptStream>(3, addrs(), false), 3000);
    Fixture fw;
    Cycle wr_cycles = runCore(
        fw, std::make_unique<ScriptStream>(3, addrs(), true), 3000);
    EXPECT_LE(double(wr_cycles), 1.1 * double(rd_cycles));
}

TEST(OooCore, FinishesEvenWhenEveryLoadMisses)
{
    Fixture f;
    std::vector<Addr> addrs;
    for (unsigned i = 0; i < 512; i++)
        addrs.push_back((Addr{1} << 34) + Addr(i) * 512 * 1024);
    Cycle cycles = runCore(
        f, std::make_unique<ScriptStream>(1, addrs, false), 2000);
    EXPECT_GT(cycles, 0u);
}
