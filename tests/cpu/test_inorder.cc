/**
 * @file
 * Tests for the Niagara-like in-order SMT core.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "cache/hierarchy.hh"
#include "cpu/inorder.hh"

using namespace desc;
using namespace desc::cpu;

namespace {

class ZeroStore : public cache::BackingStore
{
  public:
    const cache::Block512 &
    fetch(Addr addr) override
    {
        return _mem[addr]; // value-initialized (all zero)
    }

    void store(Addr addr, const cache::Block512 &d) override
    {
        _mem[addr] = d;
    }

  private:
    std::unordered_map<Addr, cache::Block512> _mem;
};

/** Scripted stream: fixed gap, round-robin over a few addresses. */
class ScriptStream : public InstructionStream
{
  public:
    ScriptStream(unsigned gap, std::vector<Addr> addrs)
        : _gap(gap), _addrs(std::move(addrs))
    {
    }

    unsigned
    nextGap(MemOp &op) override
    {
        op.addr = _addrs[_next++ % _addrs.size()];
        op.is_write = false;
        op.store_value = 0;
        return _gap;
    }

    Addr fetchAddr() const override { return 0x400000 + _fetch; }

  private:
    unsigned _gap;
    std::vector<Addr> _addrs;
    std::size_t _next = 0;
    Addr _fetch = 0;
};

struct Fixture
{
    sim::EventQueue eq;
    ZeroStore backing;
    cache::MemHierarchy mem{eq, cache::L2Config{}, backing, 1};
};

} // namespace

TEST(InOrderCore, RetiresExactBudget)
{
    Fixture f;
    std::vector<std::unique_ptr<InstructionStream>> threads;
    threads.push_back(
        std::make_unique<ScriptStream>(3, std::vector<Addr>{0x1000}));
    InOrderCore core(f.eq, f.mem, 0, std::move(threads), 1000);
    core.start();
    f.eq.run();
    EXPECT_TRUE(core.done());
    EXPECT_EQ(core.stats().instructions.value(), 1000u);
}

TEST(InOrderCore, SingleThreadIpcBelowOne)
{
    Fixture f;
    std::vector<std::unique_ptr<InstructionStream>> threads;
    threads.push_back(
        std::make_unique<ScriptStream>(7, std::vector<Addr>{0x1000}));
    InOrderCore core(f.eq, f.mem, 0, std::move(threads), 2000);
    core.start();
    f.eq.run();
    double ipc = 2000.0 / double(f.eq.now());
    EXPECT_LE(ipc, 1.0);
    EXPECT_GT(ipc, 0.3); // cached accesses keep it reasonable
}

TEST(InOrderCore, MultithreadingHidesMissLatency)
{
    // One thread sweeping memory (constant misses) vs four such
    // threads: aggregate throughput must rise (latency hiding).
    auto run = [](unsigned nthreads) {
        Fixture f;
        std::vector<std::unique_ptr<InstructionStream>> threads;
        for (unsigned t = 0; t < nthreads; t++) {
            std::vector<Addr> sweep;
            for (unsigned i = 0; i < 64; i++)
                sweep.push_back((Addr{1} << 30) + Addr(t) * (1 << 20)
                                + Addr(i) * 64 * 1024);
            threads.push_back(std::make_unique<ScriptStream>(1, sweep));
        }
        InOrderCore core(f.eq, f.mem, 0, std::move(threads), 3000);
        core.start();
        f.eq.run();
        return double(nthreads) * 3000.0 / double(f.eq.now());
    };
    double one = run(1);
    double four = run(4);
    EXPECT_GT(four, 1.5 * one);
}

TEST(InOrderCore, CountsMemoryOperations)
{
    Fixture f;
    std::vector<std::unique_ptr<InstructionStream>> threads;
    threads.push_back(
        std::make_unique<ScriptStream>(4, std::vector<Addr>{0x2000}));
    InOrderCore core(f.eq, f.mem, 0, std::move(threads), 500);
    core.start();
    f.eq.run();
    // Every 5th instruction is a memory op.
    EXPECT_NEAR(double(core.stats().mem_ops.value()), 100.0, 10.0);
}

TEST(InOrderCore, InstructionFetchesTouchTheICache)
{
    Fixture f;
    std::vector<std::unique_ptr<InstructionStream>> threads;
    threads.push_back(
        std::make_unique<ScriptStream>(3, std::vector<Addr>{0x3000}));
    InOrderCore core(f.eq, f.mem, 0, std::move(threads), 800);
    core.start();
    f.eq.run();
    EXPECT_GT(f.mem.stats().l1i_accesses.value(), 50u);
}
