/**
 * @file
 * MESI coherence tests: dirty data must flow correctly between cores
 * through the shared L2, and every path charges its H-tree transfer.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "cache/hierarchy.hh"

using namespace desc;
using namespace desc::cache;

namespace {

class PatternStore : public BackingStore
{
  public:
    const Block512 &
    fetch(Addr addr) override
    {
        auto it = _mem.find(addr);
        if (it == _mem.end()) {
            Block512 b{};
            for (unsigned w = 0; w < 8; w++)
                b[w] = addr + w;
            it = _mem.emplace(addr, b).first;
        }
        return it->second;
    }

    void store(Addr addr, const Block512 &data) override
    {
        _mem[addr] = data;
    }

  private:
    std::unordered_map<Addr, Block512> _mem;
};

struct Fixture
{
    sim::EventQueue eq;
    PatternStore backing;
    std::unique_ptr<MemHierarchy> mem;

    Fixture()
    {
        mem = std::make_unique<MemHierarchy>(eq, L2Config{}, backing, 4);
    }

    void
    read(unsigned core, Addr addr)
    {
        auto lat = mem->access(core, addr, false, 0, false, DoneCb{});
        if (!lat)
            eq.run();
    }

    void
    write(unsigned core, Addr addr, std::uint64_t value)
    {
        auto lat = mem->access(core, addr, true, value, false, DoneCb{});
        if (!lat)
            eq.run();
    }

};

} // namespace

TEST(Coherence, DirtyDataVisibleToOtherCore)
{
    Fixture f;
    f.write(0, 0xA000, 0xfeed);
    // Core 1 reads: the M copy in core 0's L1 must be recalled so the
    // L2 serves fresh data. Verify through a third core after core 1
    // also wrote (chains the recall path).
    f.read(1, 0xA000);
    EXPECT_GE(f.mem->stats().recalls.value(), 1u);
}

TEST(Coherence, RecallTransfersChargeTheHtree)
{
    Fixture f;
    f.write(0, 0xB000, 1);
    auto wt_before = f.mem->stats().write_transfers.value();
    f.read(1, 0xB000); // recall flush is a bank write transfer
    EXPECT_GT(f.mem->stats().write_transfers.value(), wt_before);
}

TEST(Coherence, WriteAfterWriteAcrossCores)
{
    Fixture f;
    f.write(0, 0xC000, 10);
    f.write(1, 0xC000, 20);
    f.write(2, 0xC000, 30);
    // Three exclusive requests; each later one invalidates the
    // previous owner and recalls its dirty data.
    EXPECT_GE(f.mem->stats().recalls.value(), 2u);
}

TEST(Coherence, ReadSharingDoesNotRecallCleanCopies)
{
    Fixture f;
    f.read(0, 0xD000);
    f.read(1, 0xD000);
    f.read(2, 0xD000);
    EXPECT_EQ(f.mem->stats().recalls.value(), 0u);
}

TEST(Coherence, StoreHitOnExclusiveIsSilent)
{
    Fixture f;
    f.read(0, 0xE000); // sole reader: granted Exclusive
    auto upgrades = f.mem->stats().upgrades.value();
    f.write(0, 0xE000, 5); // E -> M silently
    EXPECT_EQ(f.mem->stats().upgrades.value(), upgrades);
}

TEST(Coherence, StoreHitOnSharedUpgrades)
{
    Fixture f;
    f.read(0, 0xF000);
    f.read(1, 0xF000); // both Shared now
    f.write(0, 0xF000, 5);
    EXPECT_EQ(f.mem->stats().upgrades.value(), 1u);
}

TEST(Coherence, DirtyValueSurvivesFullRoundTrip)
{
    Fixture f;
    f.write(0, 0x11000, 0xabcdef);
    f.read(1, 0x11000);  // recall merges dirty data into the L2
    f.write(1, 0x11040, 1); // unrelated
    // Drop the L1 copies first (the inclusive L2 refuses to evict
    // sharer-protected lines): thrash the owners' L1 sets.
    for (unsigned i = 1; i <= 8; i++) {
        f.read(0, 0x11000 + Addr(i) * 4096);
        f.read(1, 0x11000 + Addr(i) * 4096);
    }
    // Force the L2 line out by filling its set (L2 16-way: need 17
    // distinct tags in the same set). Set stride = sets*64 = 512KB.
    for (unsigned i = 1; i <= 24; i++)
        f.read(3, 0x11000 + Addr(i) * (8ull << 20) / 16);
    // The dirty line was written back to memory on its way out.
    EXPECT_GE(f.mem->stats().l2_evictions_out.value(), 1u);
    // And the backing store holds the written word.
    EXPECT_EQ(f.backing.fetch(0x11000)[0], 0xabcdefull);
}
