/**
 * @file
 * Integration tests for the memory hierarchy: hit/miss timing,
 * transfer accounting, MSHR merging, warmup, and ECC wiring.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "cache/hierarchy.hh"

using namespace desc;
using namespace desc::cache;

namespace {

/** Deterministic pattern-backed memory for tests. */
class PatternStore : public BackingStore
{
  public:
    const Block512 &
    fetch(Addr addr) override
    {
        auto it = _mem.find(addr);
        if (it == _mem.end()) {
            Block512 b{};
            for (unsigned w = 0; w < 8; w++)
                b[w] = addr * 31 + w;
            it = _mem.emplace(addr, b).first;
        }
        return it->second;
    }

    void
    store(Addr addr, const Block512 &data) override
    {
        _mem[addr] = data;
        stores++;
    }

    unsigned stores = 0;

  private:
    std::unordered_map<Addr, Block512> _mem;
};

struct Fixture
{
    sim::EventQueue eq;
    PatternStore backing;
    L2Config cfg;
    std::unique_ptr<MemHierarchy> mem;

    explicit Fixture(L2Config c = L2Config{}, unsigned cores = 2)
        : cfg(c)
    {
        mem = std::make_unique<MemHierarchy>(eq, cfg, backing, cores);
    }

    Cycle done_at = 0;

    /** Callback stamping the fixture's completion time. */
    DoneCb
    stampDone()
    {
        return {[](void *c, unsigned) {
                    auto *f = static_cast<Fixture *>(c);
                    f->done_at = f->eq.now();
                },
                this, 0};
    }

    /** Blocking read; returns the completion latency in cycles. */
    Cycle
    read(unsigned core, Addr addr)
    {
        Cycle start = eq.now();
        done_at = 0;
        auto lat = mem->access(core, addr, false, 0, false, stampDone());
        if (lat)
            return *lat;
        eq.run();
        return done_at - start;
    }

    Cycle
    write(unsigned core, Addr addr, std::uint64_t value)
    {
        Cycle start = eq.now();
        done_at = 0;
        auto lat = mem->access(core, addr, true, value, false,
                               stampDone());
        if (lat)
            return *lat;
        eq.run();
        return done_at - start;
    }
};

/** Callback bumping an unsigned counter. */
DoneCb
countDone(unsigned *counter)
{
    return {[](void *c, unsigned) { ++*static_cast<unsigned *>(c); },
            counter, 0};
}

} // namespace

TEST(Hierarchy, L1HitIsSynchronousAndFast)
{
    Fixture f;
    f.read(0, 0x1000);            // miss, fills L1
    EXPECT_EQ(f.read(0, 0x1000), 2u); // now an L1 hit
    EXPECT_EQ(f.mem->stats().l1d_accesses.value(), 2u);
    EXPECT_EQ(f.mem->stats().l1d_misses.value(), 1u);
}

TEST(Hierarchy, L2HitFasterThanMiss)
{
    Fixture f;
    Cycle miss = f.read(0, 0x2000);
    // Same block from the other core: L2 hit (L1 of core 1 is cold).
    Cycle hit = f.read(1, 0x2000);
    EXPECT_LT(hit, miss);
    EXPECT_EQ(f.mem->stats().l2_hits.value(), 1u);
    EXPECT_EQ(f.mem->stats().l2_misses.value(), 1u);
}

TEST(Hierarchy, HitLatencyNearTable1)
{
    // Table 1: hit delay ~19 cycles with the 64-bit bus.
    Fixture f;
    f.read(0, 0x3000);
    Cycle hit = f.read(1, 0x3000);
    EXPECT_GE(hit, 12u);
    EXPECT_LE(hit, 30u);
}

TEST(Hierarchy, TransfersAreCountedAndFlipsAccumulate)
{
    Fixture f;
    f.read(0, 0x4000);
    const auto &s = f.mem->stats();
    // A miss fills the bank (write transfer); no read transfer yet.
    EXPECT_EQ(s.write_transfers.value(), 1u);
    f.read(1, 0x4000); // L2 hit: read transfer out of the bank
    EXPECT_EQ(s.read_transfers.value(), 1u);
    EXPECT_GT(s.data_flips, 0.0);
}

TEST(Hierarchy, PrefillMakesAccessesHit)
{
    Fixture f;
    f.mem->prefill(0x5000);
    f.read(0, 0x5000);
    EXPECT_EQ(f.mem->stats().l2_hits.value(), 1u);
    EXPECT_EQ(f.mem->stats().l2_misses.value(), 0u);
}

TEST(Hierarchy, MshrMergesConcurrentMisses)
{
    Fixture f;
    unsigned done = 0;
    f.mem->access(0, 0x6000, false, 0, false, countDone(&done));
    f.mem->access(1, 0x6000, false, 0, false, countDone(&done));
    f.eq.run();
    EXPECT_EQ(done, 2u);
    // One miss, one DRAM fetch, one fill; the second request merged.
    EXPECT_EQ(f.mem->stats().l2_misses.value(), 1u);
    EXPECT_EQ(f.mem->stats().l2_fills.value(), 1u);
}

TEST(Hierarchy, DirtyEvictionWritesBack)
{
    L2Config cfg;
    cfg.org.capacity_bytes = 64 * 1024; // tiny L2: 64 sets of 16
    Fixture f(cfg);
    // Dirty one block, then stream enough blocks through its set to
    // evict it.
    f.write(0, 0x10000, 0xdead);
    // Evict from L1 first so the L2 line is not sharer-protected:
    // stream through L1's set too.
    for (unsigned i = 1; i <= 40; i++)
        f.read(0, 0x10000 + Addr(i) * 64 * 1024);
    EXPECT_GT(f.backing.stores, 0u);
    // The dirty data must round-trip through memory.
    f.read(1, 0x10000);
    auto &blk = f.backing.fetch(0x10000);
    EXPECT_EQ(blk[0], 0xdeadull);
}

TEST(Hierarchy, DescSchemeLengthensHitLatency)
{
    L2Config binary;
    Fixture fb(binary);
    fb.read(0, 0x7000);
    Cycle bin_hit = fb.read(1, 0x7000);

    L2Config desc_cfg;
    desc_cfg.scheme = encoding::SchemeKind::DescZeroSkip;
    desc_cfg.scheme_cfg.bus_wires = 128;
    desc_cfg.org.bus_wires = 128;
    Fixture fd(desc_cfg);
    fd.read(0, 0x7000);
    Cycle desc_hit = fd.read(1, 0x7000);

    EXPECT_GT(desc_hit, bin_hit);
}

TEST(Hierarchy, EccWidensTheBus)
{
    L2Config cfg;
    cfg.scheme_cfg.bus_wires = 128;
    cfg.ecc = true;
    cfg.ecc_segment_bits = 128;
    auto eff = cfg.effectiveSchemeConfig();
    EXPECT_EQ(eff.block_bits, 548u);
    EXPECT_EQ(eff.bus_wires, 137u); // 4 beats of 137 wires

    // The (72,64) code on the default 64-wire bus: 8 beats of 72.
    L2Config cfg64;
    cfg64.ecc = true;
    cfg64.ecc_segment_bits = 64;
    auto eff64 = cfg64.effectiveSchemeConfig();
    EXPECT_EQ(eff64.block_bits, 576u);
    EXPECT_EQ(eff64.bus_wires, 72u);

    L2Config desc_cfg;
    desc_cfg.scheme = encoding::SchemeKind::DescZeroSkip;
    desc_cfg.scheme_cfg.bus_wires = 128;
    desc_cfg.ecc = true;
    desc_cfg.ecc_segment_bits = 128;
    auto eff2 = desc_cfg.effectiveSchemeConfig();
    EXPECT_EQ(eff2.block_bits, 548u);
    EXPECT_EQ(eff2.bus_wires, 137u); // nine parity chunk wires
}

TEST(Hierarchy, EccHierarchyRunsEndToEnd)
{
    L2Config cfg;
    cfg.ecc = true;
    cfg.ecc_segment_bits = 64;
    Fixture f(cfg);
    f.read(0, 0x8000);
    Cycle hit = f.read(1, 0x8000);
    EXPECT_GT(hit, 0u);
    EXPECT_GT(f.mem->stats().data_flips, 0.0);
}

TEST(Hierarchy, LinkBackedDescMatchesBehavioralModel)
{
    // L2Config::link_backed swaps the behavioral DescScheme for full
    // cycle-accurate links (fast path). Run the same access pattern
    // through both backings: every reported statistic must agree.
    L2Config base;
    base.scheme = encoding::SchemeKind::DescZeroSkip;
    base.scheme_cfg.bus_wires = 128;
    base.org.bus_wires = 128;

    L2Config linked = base;
    linked.link_backed = true;

    Fixture fb(base);
    Fixture fl(linked);
    auto touch = [](Fixture &f) {
        for (unsigned i = 0; i < 24; i++) {
            f.read(i % 2, 0x4000 + Addr(i % 6) * 64);
            f.write(i % 2, 0x9000 + Addr(i % 4) * 64, 0x1234 + i);
        }
    };
    touch(fb);
    touch(fl);

    const auto &sb = fb.mem->stats();
    const auto &sl = fl.mem->stats();
    EXPECT_EQ(sb.read_transfers.value(), sl.read_transfers.value());
    EXPECT_EQ(sb.write_transfers.value(), sl.write_transfers.value());
    EXPECT_EQ(sb.l2_hits.value(), sl.l2_hits.value());
    EXPECT_EQ(sb.l2_misses.value(), sl.l2_misses.value());
    EXPECT_DOUBLE_EQ(sb.data_flips, sl.data_flips);
    EXPECT_DOUBLE_EQ(sb.ctrl_flips, sl.ctrl_flips);
    EXPECT_EQ(fb.eq.now(), fl.eq.now());
}

TEST(Hierarchy, LinkBackedEccHierarchyMatchesBehavioralModel)
{
    // With ECC the link carries codec-widened bus words (137 wires,
    // 548 bits); the link backing must stay transparent there too.
    L2Config base;
    base.scheme = encoding::SchemeKind::DescLastValueSkip;
    base.scheme_cfg.bus_wires = 128;
    base.org.bus_wires = 128;
    base.ecc = true;
    base.ecc_segment_bits = 128;

    L2Config linked = base;
    linked.link_backed = true;

    Fixture fb(base);
    Fixture fl(linked);
    auto touch = [](Fixture &f) {
        for (unsigned i = 0; i < 16; i++)
            f.read(i % 2, 0x2000 + Addr(i % 5) * 64);
    };
    touch(fb);
    touch(fl);

    EXPECT_DOUBLE_EQ(fb.mem->stats().data_flips, fl.mem->stats().data_flips);
    EXPECT_DOUBLE_EQ(fb.mem->stats().ctrl_flips, fl.mem->stats().ctrl_flips);
    EXPECT_EQ(fb.eq.now(), fl.eq.now());
}

TEST(Hierarchy, SnucaBankLatencyGrowsWithDistance)
{
    L2Config cfg;
    cfg.snuca = true;
    cfg.org.banks = 128;
    cfg.org.bus_wires = 128;
    cfg.scheme_cfg.bus_wires = 128;
    Fixture f(cfg);
    // Bank 0 (near) vs bank 127 (far): block index selects the bank.
    f.read(0, 0 * 64);
    f.read(0, 127 * 64);
    Cycle near = f.read(1, 0 * 64);
    Cycle far = f.read(1, 127 * 64);
    EXPECT_LT(near, far);
}

TEST(Hierarchy, UpgradeOnSharedStoreInvalidatesPeers)
{
    Fixture f;
    f.read(0, 0x9000);
    f.read(1, 0x9000); // both cores share the line
    // Core 0 stores: upgrade, core 1's copy must invalidate.
    f.write(0, 0x9000, 77);
    EXPECT_GE(f.mem->stats().upgrades.value(), 1u);
    // Core 1 reads again: must go back to the L2 (L1 miss).
    auto before = f.mem->stats().l1d_misses.value();
    f.read(1, 0x9000);
    EXPECT_EQ(f.mem->stats().l1d_misses.value(), before + 1);
}
