/**
 * @file
 * Unit tests for the generic set-associative array.
 */

#include <gtest/gtest.h>

#include "cache/array.hh"

using namespace desc;
using namespace desc::cache;

namespace {

struct Meta
{
    int tagval = 0;
    bool pinned = false;
};

using Array = SetAssocArray<Meta>;

} // namespace

TEST(SetAssocArray, GeometryDerivation)
{
    Array a(16 * 1024, 4, 64);
    EXPECT_EQ(a.numSets(), 64u);
    EXPECT_EQ(a.assoc(), 4u);
}

TEST(SetAssocArray, LookupMissesOnEmpty)
{
    Array a(16 * 1024, 4, 64);
    EXPECT_EQ(a.lookup(0x1000), Array::kNoWay);
}

TEST(SetAssocArray, FillThenHit)
{
    Array a(16 * 1024, 4, 64);
    auto v = a.victim(0x1000);
    a.fill(v, 0x1000);
    auto way = a.lookup(0x1000);
    ASSERT_NE(way, Array::kNoWay);
    EXPECT_EQ(a.addrOf(way), 0x1000u);
    // Offsets within the block hit the same line.
    EXPECT_EQ(a.lookup(0x1008), way);
}

TEST(SetAssocArray, DistinctTagsSameSet)
{
    Array a(16 * 1024, 4, 64);
    // 64 sets * 64B = 4KB stride aliases to the same set.
    Addr a1 = 0x1000, a2 = 0x1000 + 4096;
    a.fill(a.victim(a1), a1);
    a.fill(a.victim(a2), a2);
    EXPECT_NE(a.lookup(a1), Array::kNoWay);
    EXPECT_NE(a.lookup(a2), Array::kNoWay);
    EXPECT_NE(a.lookup(a1), a.lookup(a2));
}

TEST(SetAssocArray, LruEviction)
{
    Array a(16 * 1024, 4, 64);
    // Fill all four ways of one set, touching in order.
    for (unsigned i = 0; i < 4; i++) {
        Addr addr = 0x1000 + Addr(i) * 4096;
        a.fill(a.victim(addr), addr);
    }
    // Touch way 0 so way 1 becomes LRU.
    a.touch(a.lookup(0x1000));
    Addr newcomer = 0x1000 + 4 * 4096;
    auto v = a.victim(newcomer);
    EXPECT_EQ(a.addrOf(v), 0x1000u + 4096u);
}

TEST(SetAssocArray, InvalidWayPreferredOverEviction)
{
    Array a(16 * 1024, 4, 64);
    a.fill(a.victim(0x1000), 0x1000);
    auto v = a.victim(0x1000 + 4096);
    EXPECT_FALSE(a.valid(v));
}

TEST(SetAssocArray, VictimPreferringAvoidsPinnedLines)
{
    Array a(16 * 1024, 4, 64);
    for (unsigned i = 0; i < 4; i++) {
        Addr addr = 0x1000 + Addr(i) * 4096;
        auto way = a.victim(addr);
        a.fill(way, addr);
        a.meta(way).pinned = i != 2; // only way 2 is unpinned
    }
    auto v = a.victimPreferring(
        0x1000 + 5 * 4096, [](const Meta &m) { return m.pinned; });
    EXPECT_EQ(a.addrOf(v), 0x1000u + 2 * 4096u);
}

TEST(SetAssocArray, VictimPreferringFallsBackToLru)
{
    Array a(16 * 1024, 4, 64);
    for (unsigned i = 0; i < 4; i++) {
        Addr addr = 0x1000 + Addr(i) * 4096;
        auto way = a.victim(addr);
        a.fill(way, addr);
        a.meta(way).pinned = true;
    }
    auto v = a.victimPreferring(0x1000,
                                [](const Meta &m) { return m.pinned; });
    // Everything pinned: plain LRU (way 0, the oldest fill).
    EXPECT_EQ(a.addrOf(v), 0x1000u);
}

TEST(SetAssocArray, InvalidateFreesTheLine)
{
    Array a(16 * 1024, 4, 64);
    a.fill(a.victim(0x2000), 0x2000);
    a.invalidate(a.lookup(0x2000));
    EXPECT_EQ(a.lookup(0x2000), Array::kNoWay);
}

TEST(SetAssocArray, ForEachVisitsAllValidLines)
{
    Array a(16 * 1024, 4, 64);
    a.fill(a.victim(0x0), 0x0);
    a.fill(a.victim(0x40), 0x40);
    a.fill(a.victim(0x80), 0x80);
    unsigned count = 0;
    a.forEach([&](Array::Way) { count++; });
    EXPECT_EQ(count, 3u);
}
