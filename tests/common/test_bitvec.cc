/**
 * @file
 * Unit tests for the BitVec bit-accurate storage primitive.
 */

#include <gtest/gtest.h>

#include "common/bitvec.hh"
#include "common/rng.hh"

using desc::BitVec;
using desc::Rng;

TEST(BitVec, ConstructsAllZero)
{
    BitVec v(512);
    EXPECT_EQ(v.width(), 512u);
    EXPECT_TRUE(v.allZero());
    EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, ConstructsFromValue)
{
    BitVec v(16, 0xabcd);
    EXPECT_EQ(v.field(0, 16), 0xabcdu);
    EXPECT_EQ(v.field(4, 8), 0xbcu);
}

TEST(BitVec, ValueConstructorMasksToWidth)
{
    BitVec v(4, 0xff);
    EXPECT_EQ(v.field(0, 4), 0xfu);
    EXPECT_EQ(v.popcount(), 4u);
}

TEST(BitVec, SetAndGetSingleBits)
{
    BitVec v(130);
    v.setBit(0, true);
    v.setBit(64, true);
    v.setBit(129, true);
    EXPECT_TRUE(v.bit(0));
    EXPECT_TRUE(v.bit(64));
    EXPECT_TRUE(v.bit(129));
    EXPECT_FALSE(v.bit(1));
    EXPECT_EQ(v.popcount(), 3u);
    v.setBit(64, false);
    EXPECT_FALSE(v.bit(64));
}

TEST(BitVec, FlipBitToggles)
{
    BitVec v(8);
    v.flipBit(3);
    EXPECT_TRUE(v.bit(3));
    v.flipBit(3);
    EXPECT_FALSE(v.bit(3));
}

TEST(BitVec, FieldCrossesWordBoundary)
{
    BitVec v(128);
    v.setField(60, 16, 0x1234);
    EXPECT_EQ(v.field(60, 16), 0x1234u);
    EXPECT_EQ(v.field(0, 60), 0u ^ (std::uint64_t(0x1234) << 60
                                    & ((std::uint64_t(1) << 60) - 1)));
}

TEST(BitVec, SetFieldPreservesNeighbors)
{
    BitVec v(64, ~std::uint64_t{0});
    v.setField(8, 8, 0);
    EXPECT_EQ(v.field(0, 8), 0xffu);
    EXPECT_EQ(v.field(8, 8), 0x00u);
    EXPECT_EQ(v.field(16, 8), 0xffu);
}

TEST(BitVec, SetField64AtWordBoundary)
{
    BitVec v(256);
    v.setField(64, 64, 0xdeadbeefcafebabeull);
    EXPECT_EQ(v.field(64, 64), 0xdeadbeefcafebabeull);
    EXPECT_EQ(v.field(0, 64), 0u);
    EXPECT_EQ(v.field(128, 64), 0u);
}

TEST(BitVec, SetField64CrossingWords)
{
    BitVec v(256);
    v.setField(32, 64, 0xdeadbeefcafebabeull);
    EXPECT_EQ(v.field(32, 64), 0xdeadbeefcafebabeull);
}

TEST(BitVec, HammingDistanceCountsDifferences)
{
    BitVec a(512), b(512);
    EXPECT_EQ(a.hammingDistance(b), 0u);
    b.setBit(0, true);
    b.setBit(511, true);
    EXPECT_EQ(a.hammingDistance(b), 2u);
    a.setBit(0, true);
    EXPECT_EQ(a.hammingDistance(b), 1u);
}

TEST(BitVec, XorAssign)
{
    BitVec a(128, 0xf0f0), b(128, 0x0ff0);
    a ^= b;
    EXPECT_EQ(a.field(0, 16), 0xff00u);
}

TEST(BitVec, InvertRangeWithinWord)
{
    BitVec v(64);
    v.invertRange(4, 8);
    EXPECT_EQ(v.field(0, 16), 0x0ff0u);
    v.invertRange(4, 8);
    EXPECT_TRUE(v.allZero());
}

TEST(BitVec, InvertRangeAcrossWords)
{
    BitVec v(192);
    v.invertRange(32, 128);
    EXPECT_EQ(v.popcount(), 128u);
    EXPECT_FALSE(v.bit(31));
    EXPECT_TRUE(v.bit(32));
    EXPECT_TRUE(v.bit(159));
    EXPECT_FALSE(v.bit(160));
}

TEST(BitVec, EqualityComparesWidthAndContent)
{
    BitVec a(64, 5), b(64, 5), c(32, 5), d(64, 6);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(a, d);
}

TEST(BitVec, RandomizeFillsRoughlyHalfOnes)
{
    Rng rng(42);
    BitVec v(4096);
    v.randomize(rng);
    unsigned pop = v.popcount();
    EXPECT_GT(pop, 1800u);
    EXPECT_LT(pop, 2300u);
}

TEST(BitVec, RandomizeRespectsWidthMask)
{
    Rng rng(7);
    BitVec v(70);
    for (int i = 0; i < 20; i++) {
        v.randomize(rng);
        EXPECT_LE(v.popcount(), 70u);
        // Tail bits beyond width must be zero in storage.
        EXPECT_EQ(v.words()[1] >> 6, 0u);
    }
}

TEST(BitVec, BytesRoundTrip)
{
    Rng rng(3);
    BitVec v(512);
    v.randomize(rng);
    std::uint8_t buf[64];
    v.toBytes(buf, sizeof(buf));
    BitVec w(512);
    w.fromBytes(buf, sizeof(buf));
    EXPECT_EQ(v, w);
}

TEST(BitVec, ToHexFormats)
{
    BitVec v(16, 0xbeef);
    EXPECT_EQ(v.toHex(), "beef");
    BitVec w(12, 0xabc);
    EXPECT_EQ(w.toHex(), "abc");
}

TEST(BitVec, ClearZeroes)
{
    BitVec v(128, 0xffff);
    v.clear();
    EXPECT_TRUE(v.allZero());
}

TEST(BitVecDeath, OutOfRangeBitPanics)
{
    BitVec v(8);
    EXPECT_DEATH(v.bit(8), "assertion failed");
}

TEST(BitVecDeath, OversizedFieldPanics)
{
    BitVec v(64);
    EXPECT_DEATH(v.field(60, 8), "assertion failed");
}
