/**
 * @file
 * Unit tests for the categorized trace channels: spec parsing, the
 * enable mask, line formatting, and lazy argument evaluation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/trace.hh"

using namespace desc;
using namespace desc::trace;

namespace {

/** Saves the channel mask/stream/context and restores them on exit,
 *  so tests cannot leak trace state into each other. */
struct TraceStateGuard
{
    std::uint32_t saved_mask = mask();

    ~TraceStateGuard()
    {
        setMask(saved_mask);
        setStream(nullptr);
        setThreadLogContext("");
    }
};

/** Capture everything emitted while @p body runs. */
template <typename Fn>
std::string
captureTrace(Fn &&body)
{
    std::FILE *f = std::tmpfile();
    EXPECT_NE(f, nullptr);
    setStream(f);
    body();
    setStream(nullptr);

    std::fflush(f);
    std::rewind(f);
    std::string out;
    char buf[256];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

} // namespace

TEST(TraceSpec, EmptyAndNullSelectNothing)
{
    EXPECT_EQ(parseSpec(nullptr), 0u);
    EXPECT_EQ(parseSpec(""), 0u);
}

TEST(TraceSpec, SingleChannels)
{
    EXPECT_EQ(parseSpec("link"), 1u << unsigned(Channel::Link));
    EXPECT_EQ(parseSpec("cache"), 1u << unsigned(Channel::Cache));
    EXPECT_EQ(parseSpec("dram"), 1u << unsigned(Channel::Dram));
    EXPECT_EQ(parseSpec("runner"), 1u << unsigned(Channel::Runner));
}

TEST(TraceSpec, CommaSeparatedList)
{
    auto m = parseSpec("link,dram");
    EXPECT_EQ(m, (1u << unsigned(Channel::Link))
                     | (1u << unsigned(Channel::Dram)));
}

TEST(TraceSpec, AllSelectsEveryChannel)
{
    EXPECT_EQ(parseSpec("all"), (1u << kNumChannels) - 1);
}

TEST(TraceSpec, UnknownNamesAreIgnored)
{
    EXPECT_EQ(parseSpec("link,nonsense-xyz"),
              1u << unsigned(Channel::Link));
    EXPECT_EQ(parseSpec(",,link,"), 1u << unsigned(Channel::Link));
}

TEST(TraceMask, SetAndQuery)
{
    TraceStateGuard guard;
    setMask(parseSpec("cache"));
    EXPECT_TRUE(enabled(Channel::Cache));
    EXPECT_FALSE(enabled(Channel::Link));
    EXPECT_FALSE(enabled(Channel::Dram));
}

TEST(TraceChannelName, MatchesSpecNames)
{
    EXPECT_STREQ(channelName(Channel::Link), "link");
    EXPECT_STREQ(channelName(Channel::Cache), "cache");
    EXPECT_STREQ(channelName(Channel::Dram), "dram");
    EXPECT_STREQ(channelName(Channel::Runner), "runner");
}

TEST(TraceEmit, CycleStampedLineFormat)
{
    TraceStateGuard guard;
    setMask(parseSpec("link"));
    std::string out = captureTrace([] {
        DESC_TRACE_EVENT(Link, 42, "wave ", 3, " open");
    });
    EXPECT_NE(out.find("42: link: wave 3 open\n"), std::string::npos);
}

TEST(TraceEmit, HostLineUsesDashForCycle)
{
    TraceStateGuard guard;
    setMask(parseSpec("runner"));
    std::string out = captureTrace([] {
        DESC_TRACE_HOST(Runner, "batch done");
    });
    EXPECT_NE(out.find("-: runner: batch done\n"), std::string::npos);
}

TEST(TraceEmit, ThreadContextTagIsIncluded)
{
    TraceStateGuard guard;
    setMask(parseSpec("runner"));
    setThreadLogContext("w3");
    std::string out = captureTrace([] {
        DESC_TRACE_HOST(Runner, "hello");
    });
    EXPECT_NE(out.find("runner: [w3] hello"), std::string::npos);
}

TEST(TraceEmit, DisabledChannelEmitsNothing)
{
    TraceStateGuard guard;
    setMask(0);
    std::string out = captureTrace([] {
        DESC_TRACE_EVENT(Link, 1, "should not appear");
    });
    EXPECT_TRUE(out.empty());
}

TEST(TraceEmit, DisabledChannelDoesNotEvaluateArguments)
{
    TraceStateGuard guard;
    setMask(0);
    int evaluations = 0;
    auto expensive = [&evaluations]() {
        evaluations++;
        return 7;
    };
    DESC_TRACE_EVENT(Link, 1, "value ", expensive());
    EXPECT_EQ(evaluations, 0);

    setMask(parseSpec("link"));
    captureTrace([&] { DESC_TRACE_EVENT(Link, 1, "value ", expensive()); });
    EXPECT_EQ(evaluations, 1);
}
