/**
 * @file
 * Unit tests for the categorized trace channels: spec parsing, the
 * enable mask, line formatting, and lazy argument evaluation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/trace.hh"

using namespace desc;
using namespace desc::trace;

namespace {

/** Saves the channel mask/stream/context and restores them on exit,
 *  so tests cannot leak trace state into each other. */
struct TraceStateGuard
{
    std::uint32_t saved_mask = mask();

    ~TraceStateGuard()
    {
        setMask(saved_mask);
        setStream(nullptr);
        setThreadLogContext("");
    }
};

/** Capture everything emitted while @p body runs. */
template <typename Fn>
std::string
captureTrace(Fn &&body)
{
    std::FILE *f = std::tmpfile();
    EXPECT_NE(f, nullptr);
    setStream(f);
    body();
    setStream(nullptr);

    std::fflush(f);
    std::rewind(f);
    std::string out;
    char buf[256];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

} // namespace

TEST(TraceSpec, EmptyAndNullSelectNothing)
{
    EXPECT_EQ(parseSpec(nullptr), 0u);
    EXPECT_EQ(parseSpec(""), 0u);
}

TEST(TraceSpec, SingleChannels)
{
    EXPECT_EQ(parseSpec("link"), 1u << unsigned(Channel::Link));
    EXPECT_EQ(parseSpec("cache"), 1u << unsigned(Channel::Cache));
    EXPECT_EQ(parseSpec("dram"), 1u << unsigned(Channel::Dram));
    EXPECT_EQ(parseSpec("runner"), 1u << unsigned(Channel::Runner));
}

TEST(TraceSpec, CommaSeparatedList)
{
    auto m = parseSpec("link,dram");
    EXPECT_EQ(m, (1u << unsigned(Channel::Link))
                     | (1u << unsigned(Channel::Dram)));
}

TEST(TraceSpec, AllSelectsEveryChannel)
{
    EXPECT_EQ(parseSpec("all"), (1u << kNumChannels) - 1);
}

TEST(TraceSpec, UnknownNamesAreIgnored)
{
    EXPECT_EQ(parseSpec("link,nonsense-xyz"),
              1u << unsigned(Channel::Link));
    EXPECT_EQ(parseSpec(",,link,"), 1u << unsigned(Channel::Link));
}

TEST(TraceMask, SetAndQuery)
{
    TraceStateGuard guard;
    setMask(parseSpec("cache"));
    EXPECT_TRUE(enabled(Channel::Cache));
    EXPECT_FALSE(enabled(Channel::Link));
    EXPECT_FALSE(enabled(Channel::Dram));
}

TEST(TraceChannelName, MatchesSpecNames)
{
    EXPECT_STREQ(channelName(Channel::Link), "link");
    EXPECT_STREQ(channelName(Channel::Cache), "cache");
    EXPECT_STREQ(channelName(Channel::Dram), "dram");
    EXPECT_STREQ(channelName(Channel::Runner), "runner");
}

TEST(TraceEmit, CycleStampedLineFormat)
{
    TraceStateGuard guard;
    setMask(parseSpec("link"));
    std::string out = captureTrace([] {
        DESC_TRACE_EVENT(Link, 42, "wave ", 3, " open");
    });
    EXPECT_NE(out.find("42: link: wave 3 open\n"), std::string::npos);
}

TEST(TraceEmit, HostLineUsesDashForCycle)
{
    TraceStateGuard guard;
    setMask(parseSpec("runner"));
    std::string out = captureTrace([] {
        DESC_TRACE_HOST(Runner, "batch done");
    });
    EXPECT_NE(out.find("-: runner: batch done\n"), std::string::npos);
}

TEST(TraceEmit, ThreadContextTagIsIncluded)
{
    TraceStateGuard guard;
    setMask(parseSpec("runner"));
    setThreadLogContext("w3");
    std::string out = captureTrace([] {
        DESC_TRACE_HOST(Runner, "hello");
    });
    EXPECT_NE(out.find("runner: [w3] hello"), std::string::npos);
}

TEST(TraceEmit, DisabledChannelEmitsNothing)
{
    TraceStateGuard guard;
    setMask(0);
    std::string out = captureTrace([] {
        DESC_TRACE_EVENT(Link, 1, "should not appear");
    });
    EXPECT_TRUE(out.empty());
}

TEST(TraceEmit, DisabledChannelDoesNotEvaluateArguments)
{
    TraceStateGuard guard;
    setMask(0);
    int evaluations = 0;
    auto expensive = [&evaluations]() {
        evaluations++;
        return 7;
    };
    DESC_TRACE_EVENT(Link, 1, "value ", expensive());
    EXPECT_EQ(evaluations, 0);

    setMask(parseSpec("link"));
    captureTrace([&] { DESC_TRACE_EVENT(Link, 1, "value ", expensive()); });
    EXPECT_EQ(evaluations, 1);
}

// TSan regression tests: sweep workers hit trace points while the
// host thread reconfigures tracing. The mask and the stream override
// are atomics precisely so these interleavings are race-free; run
// under -fsanitize=thread these tests fail if that regresses.

TEST(TraceConcurrency, MaskFlipsWhileWorkersEmit)
{
    TraceStateGuard guard;
    std::FILE *sink = std::tmpfile();
    ASSERT_NE(sink, nullptr);
    setStream(sink);

    std::atomic<bool> stop{false};
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; w++) {
        workers.emplace_back([&stop, w] {
            setThreadLogContext("w" + std::to_string(w));
            std::uint64_t cycle = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                DESC_TRACE_EVENT(Link, cycle, "beat ", cycle);
                DESC_TRACE_HOST(Runner, "alive");
                cycle++;
            }
        });
    }
    for (int i = 0; i < 2000; i++)
        setMask(i & 1 ? parseSpec("all") : 0);
    stop.store(true, std::memory_order_relaxed);
    for (auto &t : workers)
        t.join();
    setStream(nullptr);
    std::fclose(sink);
}

TEST(TraceConcurrency, StreamRedirectsWhileWorkersEmit)
{
    TraceStateGuard guard;
    std::FILE *a = std::tmpfile();
    std::FILE *b = std::tmpfile();
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    setMask(parseSpec("runner"));
    setStream(a);

    std::atomic<bool> stop{false};
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; w++) {
        workers.emplace_back([&stop] {
            while (!stop.load(std::memory_order_relaxed))
                DESC_TRACE_HOST(Runner, "tick");
        });
    }
    for (int i = 0; i < 500; i++)
        setStream(i & 1 ? b : a);
    stop.store(true, std::memory_order_relaxed);
    for (auto &t : workers)
        t.join();
    setStream(nullptr);
    std::fclose(a);
    std::fclose(b);
}

TEST(TraceConcurrency, WarnOnceFiresExactlyOnceAcrossThreads)
{
    // warnOnce's fired-set is guarded by logMutex; hammer one key from
    // many threads and make sure the process neither races (TSan) nor
    // deadlocks against the warn() path taking the same mutex.
    std::vector<std::thread> workers;
    for (int w = 0; w < 8; w++) {
        workers.emplace_back([] {
            for (int i = 0; i < 200; i++)
                warnOnce("trace-concurrency-test",
                         "should print exactly once");
        });
    }
    for (auto &t : workers)
        t.join();
}
