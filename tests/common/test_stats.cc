/**
 * @file
 * Unit tests for counters, averages, histograms, and geomean.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace desc;

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, MergeAdds)
{
    Counter a, b;
    a.inc(3);
    b.inc(7);
    a += b;
    EXPECT_EQ(a.value(), 10u);
}

TEST(Average, TracksMeanMinMax)
{
    Average a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Average, EmptyMeanIsZero)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Average, MergeCombines)
{
    Average a, b;
    a.sample(1.0);
    a.sample(3.0);
    b.sample(5.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Average, MergeIntoEmpty)
{
    Average a, b;
    b.sample(2.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Histogram, BinsAndFractions)
{
    Histogram h(4);
    h.sample(0, 3);
    h.sample(2);
    EXPECT_EQ(h.bin(0), 3u);
    EXPECT_EQ(h.bin(2), 1u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.0);
}

TEST(Histogram, OverflowCounted)
{
    Histogram h(4);
    h.sample(10);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 1u);
}

TEST(Histogram, MeanWeighted)
{
    Histogram h(8);
    h.sample(2, 2);
    h.sample(4, 2);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Histogram, MergeAccumulates)
{
    Histogram a(4), b(4);
    a.sample(1);
    b.sample(1);
    b.sample(3);
    a.merge(b);
    EXPECT_EQ(a.bin(1), 2u);
    EXPECT_EQ(a.bin(3), 1u);
    EXPECT_EQ(a.total(), 3u);
}

TEST(Geomean, MatchesHandComputation)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Geomean, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(HistogramDeath, OutOfRangeBinAsserts)
{
    Histogram h(4);
    h.sample(1);
    EXPECT_DEATH(h.bin(4), "out of range");
    EXPECT_DEATH(h.bin(1000), "out of range");
}

TEST(Histogram, NumBinsIsExact)
{
    Histogram h(3);
    EXPECT_EQ(h.numBins(), std::size_t{3});
    Histogram empty;
    EXPECT_EQ(empty.numBins(), std::size_t{0});
}

TEST(Average, RestoreRoundTrips)
{
    Average a;
    a.sample(2.0);
    a.sample(8.0);
    Average b;
    b.restore(a.sum(), a.min(), a.max(), a.count());
    EXPECT_DOUBLE_EQ(b.mean(), a.mean());
    EXPECT_DOUBLE_EQ(b.min(), 2.0);
    EXPECT_DOUBLE_EQ(b.max(), 8.0);
    EXPECT_EQ(b.count(), 2u);
}

TEST(Histogram, RestoreRoundTrips)
{
    Histogram h(4);
    h.sample(0, 3);
    h.sample(2);
    h.sample(9); // overflow
    Histogram r(4);
    std::vector<std::uint64_t> bins;
    for (unsigned i = 0; i < h.numBins(); i++)
        bins.push_back(h.bin(i));
    r.restore(std::move(bins), h.total(), h.overflow());
    EXPECT_EQ(r.bin(0), 3u);
    EXPECT_EQ(r.bin(2), 1u);
    EXPECT_EQ(r.total(), 5u);
    EXPECT_EQ(r.overflow(), 1u);
    EXPECT_DOUBLE_EQ(r.mean(), h.mean());
}
