/**
 * @file
 * Unit tests for counters, averages, histograms, and geomean.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace desc;

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, MergeAdds)
{
    Counter a, b;
    a.inc(3);
    b.inc(7);
    a += b;
    EXPECT_EQ(a.value(), 10u);
}

TEST(Average, TracksMeanMinMax)
{
    Average a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Average, EmptyMeanIsZero)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Average, MergeCombines)
{
    Average a, b;
    a.sample(1.0);
    a.sample(3.0);
    b.sample(5.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Average, MergeIntoEmpty)
{
    Average a, b;
    b.sample(2.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Histogram, BinsAndFractions)
{
    Histogram h(4);
    h.sample(0, 3);
    h.sample(2);
    EXPECT_EQ(h.bin(0), 3u);
    EXPECT_EQ(h.bin(2), 1u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.0);
}

TEST(Histogram, OverflowCounted)
{
    Histogram h(4);
    h.sample(10);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 1u);
}

TEST(Histogram, MeanWeighted)
{
    Histogram h(8);
    h.sample(2, 2);
    h.sample(4, 2);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Histogram, MergeAccumulates)
{
    Histogram a(4), b(4);
    a.sample(1);
    b.sample(1);
    b.sample(3);
    a.merge(b);
    EXPECT_EQ(a.bin(1), 2u);
    EXPECT_EQ(a.bin(3), 1u);
    EXPECT_EQ(a.total(), 3u);
}

TEST(Geomean, MatchesHandComputation)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Geomean, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(HistogramDeath, OutOfRangeBinAsserts)
{
    Histogram h(4);
    h.sample(1);
    EXPECT_DEATH(h.bin(4), "out of range");
    EXPECT_DEATH(h.bin(1000), "out of range");
}

TEST(Histogram, NumBinsIsExact)
{
    Histogram h(3);
    EXPECT_EQ(h.numBins(), std::size_t{3});
    Histogram empty;
    EXPECT_EQ(empty.numBins(), std::size_t{0});
}

TEST(Average, RestoreRoundTrips)
{
    Average a;
    a.sample(2.0);
    a.sample(8.0);
    Average b;
    b.restore(a.sum(), a.min(), a.max(), a.count());
    EXPECT_DOUBLE_EQ(b.mean(), a.mean());
    EXPECT_DOUBLE_EQ(b.min(), 2.0);
    EXPECT_DOUBLE_EQ(b.max(), 8.0);
    EXPECT_EQ(b.count(), 2u);
}

TEST(Average, MergeEmptyIntoEmptyStaysEmpty)
{
    Average a, b;
    a.merge(b);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Average, MergeEmptyIntoNonemptyIsANoop)
{
    Average a, b;
    a.sample(4.0);
    a.sample(6.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 4.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);
}

TEST(Average, MergePreservesMinAcrossNegatives)
{
    Average a, b;
    a.sample(-3.0);
    b.sample(-7.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.min(), -7.0);
    EXPECT_DOUBLE_EQ(a.max(), -3.0);
}

TEST(Histogram, MergeDefaultSourceIsANoop)
{
    Histogram a(4), empty;
    a.sample(2);
    a.merge(empty);
    EXPECT_EQ(a.total(), 1u);
    EXPECT_EQ(a.bin(2), 1u);
}

TEST(Histogram, MergeIntoDefaultCopies)
{
    Histogram a, b(4);
    b.sample(1);
    b.sample(9); // overflow
    a.merge(b);
    EXPECT_EQ(a.numBins(), std::size_t{4});
    EXPECT_EQ(a.bin(1), 1u);
    EXPECT_EQ(a.total(), 2u);
    EXPECT_EQ(a.overflow(), 1u);
}

TEST(Histogram, MergeDefaultIntoDefaultStaysDefault)
{
    Histogram a, b;
    a.merge(b);
    EXPECT_EQ(a.numBins(), std::size_t{0});
    EXPECT_EQ(a.total(), 0u);
}

TEST(Histogram, MergeCarriesOverflow)
{
    Histogram a(4), b(4);
    a.sample(100);
    b.sample(200);
    b.sample(1);
    a.merge(b);
    EXPECT_EQ(a.overflow(), 2u);
    EXPECT_EQ(a.total(), 3u);
    EXPECT_EQ(a.inRange(), 1u);
}

TEST(HistogramDeath, MergeSizeMismatchAsserts)
{
    Histogram a(4), b(8);
    a.sample(1);
    b.sample(1);
    EXPECT_DEATH(a.merge(b), "size mismatch");
}

TEST(Histogram, OverflowContract)
{
    // total() counts everything; fraction(i) is over all samples, so
    // the bins sum to 1 - overflowFraction(); mean() covers only the
    // in-range samples.
    Histogram h(4);
    h.sample(1, 2);
    h.sample(3, 2);
    h.sample(50, 4); // overflow: 4 of 8 samples
    EXPECT_EQ(h.total(), 8u);
    EXPECT_EQ(h.overflow(), 4u);
    EXPECT_EQ(h.inRange(), 4u);
    EXPECT_DOUBLE_EQ(h.overflowFraction(), 0.5);
    double bin_sum = 0.0;
    for (unsigned i = 0; i < h.numBins(); i++)
        bin_sum += h.fraction(i);
    EXPECT_DOUBLE_EQ(bin_sum, 1.0 - h.overflowFraction());
    EXPECT_DOUBLE_EQ(h.mean(), 2.0); // (1*2 + 3*2) / 4, overflow excluded
}

TEST(Histogram, AllOverflowMeanIsZero)
{
    Histogram h(2);
    h.sample(10);
    EXPECT_EQ(h.inRange(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.overflowFraction(), 1.0);
}

TEST(StatRegistry, AddAndLookupEveryKind)
{
    Counter c;
    c.inc(5);
    Average a;
    a.sample(2.0);
    Histogram h(4);
    h.sample(3);

    StatRegistry reg;
    reg.add("l2.hits", c, "test stat");
    reg.add("l2.hit_latency", a, "test stat");
    reg.add("chunks.values", h, "test stat");
    reg.addScalar("perf.ipc", 1.5, "test stat");
    reg.addInt("perf.cycles", 1000, "test stat");
    reg.addText("run.app", "FFT", "test stat");

    EXPECT_EQ(reg.size(), std::size_t{6});
    EXPECT_FALSE(reg.empty());
    EXPECT_EQ(reg.counterValue("l2.hits"), 5u);
    EXPECT_DOUBLE_EQ(reg.average("l2.hit_latency").mean(), 2.0);
    EXPECT_EQ(reg.histogram("chunks.values").bin(3), 1u);
    EXPECT_DOUBLE_EQ(reg.scalar("perf.ipc"), 1.5);
    EXPECT_EQ(reg.integer("perf.cycles"), 1000u);
    EXPECT_EQ(reg.text("run.app"), "FFT");
    EXPECT_TRUE(reg.contains("l2.hits"));
    EXPECT_FALSE(reg.contains("l2.misses"));
}

TEST(StatRegistry, LiveReferencesSeeLaterUpdates)
{
    Counter c;
    StatRegistry reg;
    reg.add("n", c, "test stat");
    c.inc(3);
    EXPECT_EQ(reg.counterValue("n"), 3u);
}

TEST(StatRegistry, DescriptionsAreStoredAndQueryable)
{
    Counter c;
    StatRegistry reg;
    reg.add("l2.hits", c, "L2 hits");
    reg.addScalar("perf.ipc", 1.5, "instructions per cycle");
    EXPECT_EQ(reg.description("l2.hits"), "L2 hits");
    EXPECT_EQ(reg.description("perf.ipc"), "instructions per cycle");
    EXPECT_EQ(reg.entries().at("l2.hits").description, "L2 hits");
}

TEST(StatRegistryDeath, EmptyDescriptionAsserts)
{
    StatRegistry reg;
    EXPECT_DEATH(reg.addInt("perf.cycles", 1, ""),
                 "registered without a description");
}

TEST(StatRegistryDeath, DescriptionOfUnknownPathAsserts)
{
    StatRegistry reg;
    EXPECT_DEATH(reg.description("nope"), "unknown stat path");
}

TEST(StatRegistry, EntriesIterateInPathOrder)
{
    StatRegistry reg;
    reg.addInt("b.y", 1, "test stat");
    reg.addInt("a", 2, "test stat");
    reg.addInt("b.x", 3, "test stat");
    std::vector<std::string> paths;
    for (const auto &[path, entry] : reg.entries())
        paths.push_back(path);
    EXPECT_EQ(paths, (std::vector<std::string>{"a", "b.x", "b.y"}));
}

TEST(StatRegistryDeath, DuplicatePathAsserts)
{
    StatRegistry reg;
    reg.addInt("a.b", 1, "test stat");
    EXPECT_DEATH(reg.addInt("a.b", 2, "test stat"), "duplicate stat path");
}

TEST(StatRegistryDeath, LeafCannotBecomeInterior)
{
    StatRegistry reg;
    reg.addInt("l2", 1, "test stat");
    EXPECT_DEATH(reg.addInt("l2.hits", 2, "test stat"), "conflicts");
}

TEST(StatRegistryDeath, InteriorCannotBecomeLeaf)
{
    StatRegistry reg;
    reg.addInt("l2.hits", 1, "test stat");
    EXPECT_DEATH(reg.addInt("l2", 2, "test stat"), "conflicts");
}

TEST(StatRegistryDeath, MalformedPathsAssert)
{
    StatRegistry reg;
    EXPECT_DEATH(reg.addInt("", 1, "test stat"), "empty stat path");
    EXPECT_DEATH(reg.addInt(".a", 1, "test stat"), "malformed");
    EXPECT_DEATH(reg.addInt("a.", 1, "test stat"), "malformed");
    EXPECT_DEATH(reg.addInt("a..b", 1, "test stat"), "malformed");
}

TEST(StatRegistryDeath, KindMismatchAsserts)
{
    StatRegistry reg;
    reg.addInt("perf.cycles", 7, "test stat");
    EXPECT_DEATH(reg.scalar("perf.cycles"), "is a int, not a scalar");
    EXPECT_DEATH(reg.counterValue("missing"), "unknown stat path");
}

TEST(Histogram, RestoreRoundTrips)
{
    Histogram h(4);
    h.sample(0, 3);
    h.sample(2);
    h.sample(9); // overflow
    Histogram r(4);
    std::vector<std::uint64_t> bins;
    for (unsigned i = 0; i < h.numBins(); i++)
        bins.push_back(h.bin(i));
    r.restore(std::move(bins), h.total(), h.overflow());
    EXPECT_EQ(r.bin(0), 3u);
    EXPECT_EQ(r.bin(2), 1u);
    EXPECT_EQ(r.total(), 5u);
    EXPECT_EQ(r.overflow(), 1u);
    EXPECT_DOUBLE_EQ(r.mean(), h.mean());
}
