/**
 * @file
 * Unit tests for the experiment table printer.
 */

#include <gtest/gtest.h>

#include "common/table.hh"

using desc::Table;
using desc::fmt;

TEST(Fmt, FixedPrecision)
{
    EXPECT_EQ(fmt(1.2345, 2), "1.23");
    EXPECT_EQ(fmt(2.0, 3), "2.000");
}

TEST(Table, CsvRoundTrip)
{
    Table t({"app", "energy", "time"});
    t.row().add("fft").add(0.5, 2).add(std::uint64_t{42});
    t.row().add("lu").add(1.25, 2).add(std::uint64_t{7});
    EXPECT_EQ(t.toCsv(),
              "app,energy,time\n"
              "fft,0.50,42\n"
              "lu,1.25,7\n");
}

TEST(Table, PrintDoesNotCrash)
{
    Table t({"a", "b"});
    t.row().add("x").add(1.0, 1);
    t.print("title");
}

TEST(TableDeath, TooManyCellsPanics)
{
    Table t({"only"});
    t.row().add("one");
    EXPECT_DEATH(t.add("two"), "row overflow");
}

TEST(TableDeath, AddBeforeRowPanics)
{
    Table t({"c"});
    EXPECT_DEATH(t.add("x"), "add\\(\\) before row\\(\\)");
}

TEST(Table, CsvEnvironmentSwitch)
{
    // With DESC_TABLE_CSV set, print() emits the CSV form.
    setenv("DESC_TABLE_CSV", "1", 1);
    Table t({"a", "b"});
    t.row().add("x").add(std::uint64_t{1});
    testing::internal::CaptureStdout();
    t.print("csv mode");
    std::string out = testing::internal::GetCapturedStdout();
    unsetenv("DESC_TABLE_CSV");
    EXPECT_NE(out.find("a,b"), std::string::npos);
    EXPECT_NE(out.find("x,1"), std::string::npos);
}
