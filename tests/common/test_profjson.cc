/**
 * @file
 * Tests for the profiler's Chrome/Perfetto trace-event JSON writer:
 * the output parses as JSON, timestamps are globally monotonic, B/E
 * events pair up per track, the tid encodes (thread, component), and
 * slab coalescing merges back-to-back scopes while keeping separated
 * ones apart.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/prof.hh"

using namespace desc;
using namespace desc::prof;

namespace {

// --- minimal JSON parser (objects, arrays, strings, numbers, bools,
// null); enough to validate the writer's output shape -------------

struct Json
{
    enum class Kind { Object, Array, String, Number, Bool, Null };
    Kind kind = Kind::Null;
    std::map<std::string, std::unique_ptr<Json>> object;
    std::vector<std::unique_ptr<Json>> array;
    std::string str;
    double num = 0;
    bool boolean = false;

    const Json *
    at(const std::string &key) const
    {
        auto it = object.find(key);
        return it == object.end() ? nullptr : it->second.get();
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : _t(text) {}

    std::unique_ptr<Json>
    parse()
    {
        auto v = value();
        skipWs();
        if (!_ok || _i != _t.size())
            return nullptr;
        return v;
    }

  private:
    void
    skipWs()
    {
        while (_i < _t.size()
               && (_t[_i] == ' ' || _t[_i] == '\n' || _t[_i] == '\t'
                   || _t[_i] == '\r'))
            _i++;
    }

    bool
    eat(char c)
    {
        skipWs();
        if (_i < _t.size() && _t[_i] == c) {
            _i++;
            return true;
        }
        return false;
    }

    std::unique_ptr<Json>
    value()
    {
        skipWs();
        if (_i >= _t.size()) {
            _ok = false;
            return nullptr;
        }
        char c = _t[_i];
        auto v = std::make_unique<Json>();
        if (c == '{') {
            _i++;
            v->kind = Json::Kind::Object;
            skipWs();
            if (eat('}'))
                return v;
            do {
                skipWs();
                std::string key = string();
                if (!_ok || !eat(':'))
                    return fail();
                auto member = value();
                if (!_ok)
                    return fail();
                v->object.emplace(std::move(key), std::move(member));
            } while (eat(','));
            if (!eat('}'))
                return fail();
            return v;
        }
        if (c == '[') {
            _i++;
            v->kind = Json::Kind::Array;
            skipWs();
            if (eat(']'))
                return v;
            do {
                auto elem = value();
                if (!_ok)
                    return fail();
                v->array.push_back(std::move(elem));
            } while (eat(','));
            if (!eat(']'))
                return fail();
            return v;
        }
        if (c == '"') {
            v->kind = Json::Kind::String;
            v->str = string();
            return _ok ? std::move(v) : nullptr;
        }
        if (_t.compare(_i, 4, "true") == 0) {
            _i += 4;
            v->kind = Json::Kind::Bool;
            v->boolean = true;
            return v;
        }
        if (_t.compare(_i, 5, "false") == 0) {
            _i += 5;
            v->kind = Json::Kind::Bool;
            return v;
        }
        if (_t.compare(_i, 4, "null") == 0) {
            _i += 4;
            return v;
        }
        // number
        std::size_t start = _i;
        while (_i < _t.size()
               && (std::isdigit(static_cast<unsigned char>(_t[_i]))
                   || _t[_i] == '-' || _t[_i] == '+' || _t[_i] == '.'
                   || _t[_i] == 'e' || _t[_i] == 'E'))
            _i++;
        if (_i == start)
            return fail();
        char *end = nullptr;
        v->kind = Json::Kind::Number;
        v->num = std::strtod(_t.c_str() + start, &end);
        if (end != _t.c_str() + _i)
            return fail();
        return v;
    }

    std::string
    string()
    {
        if (!eat('"')) {
            _ok = false;
            return "";
        }
        std::string out;
        while (_i < _t.size() && _t[_i] != '"') {
            if (_t[_i] == '\\' && _i + 1 < _t.size()) {
                out.push_back(_t[_i + 1]);
                _i += 2;
            } else {
                out.push_back(_t[_i]);
                _i++;
            }
        }
        if (_i >= _t.size()) {
            _ok = false;
            return "";
        }
        _i++; // closing quote
        return out;
    }

    std::unique_ptr<Json>
    fail()
    {
        _ok = false;
        return nullptr;
    }

    const std::string &_t;
    std::size_t _i = 0;
    bool _ok = true;
};

struct ProfStateGuard
{
    bool saved = enabled();

    ProfStateGuard() { resetForTest(); }

    ~ProfStateGuard()
    {
        setEnabled(saved);
        setCaptureForTest(false);
        resetForTest();
    }
};

void
spinFor(std::chrono::nanoseconds d)
{
    auto t0 = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - t0 < d) {
    }
}

std::unique_ptr<Json>
captureAndParse()
{
    std::ostringstream os;
    writeTraceJson(os);
    return JsonParser(os.str()).parse();
}

} // namespace

TEST(ProfJson, OutputParsesWithHeaderAndProcessMetadata)
{
    ProfStateGuard guard;
    setEnabled(true);
    setCaptureForTest(true);
    {
        DESC_PROF_SCOPE(CacheAccess);
        spinFor(std::chrono::microseconds(10));
    }

    auto doc = captureAndParse();
    ASSERT_NE(doc, nullptr) << "trace JSON did not parse";
    ASSERT_NE(doc->at("format"), nullptr);
    EXPECT_EQ(doc->at("format")->str, "desc-prof");
    EXPECT_EQ(doc->at("version")->num, 1.0);
    ASSERT_NE(doc->at("traceEvents"), nullptr);
    ASSERT_NE(doc->at("profile"), nullptr);

    bool saw_process_meta = false;
    for (const auto &e : doc->at("traceEvents")->array) {
        if (e->at("ph")->str == "M"
            && e->at("name")->str == "process_name")
            saw_process_meta = true;
    }
    EXPECT_TRUE(saw_process_meta);
}

TEST(ProfJson, TimestampsMonotonicAndPairsBalancedPerTrack)
{
    ProfStateGuard guard;
    setEnabled(true);
    setCaptureForTest(true);
    for (int i = 0; i < 50; i++) {
        DESC_PROF_SCOPE(CacheAccess);
        {
            DESC_PROF_SCOPE(Encoder);
        }
    }
    {
        DESC_PROF_SCOPE(Dram);
        spinFor(std::chrono::microseconds(5));
    }

    auto doc = captureAndParse();
    ASSERT_NE(doc, nullptr);

    double prev_ts = -1.0;
    std::map<int, std::vector<std::string>> stacks;
    int b_events = 0;
    for (const auto &e : doc->at("traceEvents")->array) {
        const std::string &ph = e->at("ph")->str;
        if (ph == "M")
            continue;
        double ts = e->at("ts")->num;
        EXPECT_GE(ts, prev_ts) << "trace ts went backwards";
        prev_ts = ts;
        int tid = int(e->at("tid")->num);
        if (ph == "B") {
            b_events++;
            stacks[tid].push_back(e->at("name")->str);
            // tid encodes the component: tid = thread*N + comp + 1.
            unsigned comp = unsigned(tid - 1) % kNumComponents;
            EXPECT_EQ(e->at("name")->str,
                      componentName(Component(comp)));
        } else {
            ASSERT_EQ(ph, "E");
            ASSERT_FALSE(stacks[tid].empty())
                << "E without a matching B on tid " << tid;
            stacks[tid].pop_back();
        }
    }
    EXPECT_GT(b_events, 0);
    for (const auto &[tid, stack] : stacks)
        EXPECT_TRUE(stack.empty()) << "unbalanced B on tid " << tid;
}

TEST(ProfJson, DistinctComponentsGetDistinctNamedTracks)
{
    ProfStateGuard guard;
    setEnabled(true);
    setCaptureForTest(true);
    {
        DESC_PROF_SCOPE(CacheAccess);
        spinFor(std::chrono::microseconds(3));
    }
    spinFor(std::chrono::microseconds(3));
    {
        DESC_PROF_SCOPE(Dram);
        spinFor(std::chrono::microseconds(3));
    }

    auto doc = captureAndParse();
    ASSERT_NE(doc, nullptr);

    std::map<std::string, int> track_name_to_tid;
    std::map<int, int> b_tids;
    for (const auto &e : doc->at("traceEvents")->array) {
        const std::string &ph = e->at("ph")->str;
        if (ph == "M" && e->at("name")->str == "thread_name")
            track_name_to_tid[e->at("args")->at("name")->str] =
                int(e->at("tid")->num);
        if (ph == "B")
            b_tids[int(e->at("tid")->num)]++;
    }
    // Each component rides its own track, and every B-carrying track
    // is named.
    EXPECT_GE(track_name_to_tid.size(), 2u);
    bool saw_access = false, saw_dram = false;
    for (const auto &[name, tid] : track_name_to_tid) {
        EXPECT_NE(name.find('/'), std::string::npos)
            << "track name should be worker/component: " << name;
        if (name.find("cache.access") != std::string::npos)
            saw_access = true;
        if (name.find("dram") != std::string::npos)
            saw_dram = true;
    }
    EXPECT_TRUE(saw_access);
    EXPECT_TRUE(saw_dram);
    for (const auto &[tid, count] : b_tids) {
        bool named = false;
        for (const auto &[name, ntid] : track_name_to_tid)
            named |= ntid == tid;
        EXPECT_TRUE(named) << "tid " << tid << " has no thread_name";
    }
}

TEST(ProfJson, BackToBackScopesCoalesceSeparatedOnesDoNot)
{
    ProfStateGuard guard;
    setEnabled(true);
    setCaptureForTest(true);

    // 100 back-to-back scopes: gaps far below the coalescing window.
    for (int i = 0; i < 100; i++) {
        DESC_PROF_SCOPE(LinkFast);
    }
    // A second burst separated by 50us: must start a new slab.
    spinFor(std::chrono::microseconds(50));
    {
        DESC_PROF_SCOPE(LinkFast);
        spinFor(std::chrono::microseconds(2));
    }

    auto doc = captureAndParse();
    ASSERT_NE(doc, nullptr);

    std::uint64_t pairs = 0, scopes = 0;
    for (const auto &e : doc->at("traceEvents")->array) {
        if (e->at("ph")->str != "B")
            continue;
        if (e->at("name")->str != "link.fast")
            continue;
        pairs++;
        scopes += std::uint64_t(e->at("args")->at("scopes")->num);
    }
    // All 101 scopes are accounted for, in far fewer slabs, and the
    // 50us gap forces at least two.
    EXPECT_EQ(scopes, 101u);
    EXPECT_GE(pairs, 2u);
    EXPECT_LE(pairs, 100u);
}

TEST(ProfJson, ProfileSectionCarriesMergedTotalsAndRuns)
{
    ProfStateGuard guard;
    setEnabled(true);
    setCaptureForTest(true);
    {
        DESC_PROF_SCOPE(Energy);
        spinFor(std::chrono::microseconds(5));
    }
    Profile run;
    run.comp[unsigned(Component::Energy)].count = 3;
    noteRunProfile("FFT/ZS-DESC#0123456789abcdef", run);

    auto doc = captureAndParse();
    ASSERT_NE(doc, nullptr);
    const Json *profile = doc->at("profile");
    ASSERT_NE(profile, nullptr);

    const Json *components = profile->at("components");
    ASSERT_NE(components, nullptr);
    const Json *energy = components->at("energy");
    ASSERT_NE(energy, nullptr);
    EXPECT_GE(energy->at("scopes")->num, 1.0);
    EXPECT_GT(energy->at("self_ns")->num, 0.0);

    const Json *runs = profile->at("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->array.size(), 1u);
    EXPECT_EQ(runs->array[0]->at("run")->str,
              "FFT/ZS-DESC#0123456789abcdef");
    EXPECT_EQ(
        runs->array[0]->at("components")->at("energy")->at("scopes")->num,
        3.0);
}
