/**
 * @file
 * Unit tests for the scope-based self-profiler: the component table,
 * spec parsing, zero accumulation when disabled, nested-scope time
 * accounting, cycle attribution, deltas, cross-thread merging, and
 * depth-overflow behavior.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>

#include "common/prof.hh"

using namespace desc;
using namespace desc::prof;

namespace {

/** Saves and restores the enabled flag and wipes accumulated state,
 *  so tests cannot leak profiler state into each other. */
struct ProfStateGuard
{
    bool saved = enabled();

    ProfStateGuard() { resetForTest(); }

    ~ProfStateGuard()
    {
        setEnabled(saved);
        setCaptureForTest(false);
        resetForTest();
    }
};

/** Busy-wait so a scope accumulates measurable wall time. */
void
spinFor(std::chrono::nanoseconds d)
{
    auto t0 = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - t0 < d) {
    }
}

void
nestScopes(unsigned n)
{
    if (n == 0)
        return;
    DESC_PROF_SCOPE(Encoder);
    nestScopes(n - 1);
}

} // namespace

TEST(ProfComponents, NamesUniqueNonEmptyAndDotted)
{
    std::set<std::string> seen;
    for (unsigned c = 0; c < kNumComponents; c++) {
        std::string name = componentName(Component(c));
        EXPECT_FALSE(name.empty());
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate component name " << name;
        for (char ch : name)
            EXPECT_TRUE((ch >= 'a' && ch <= 'z') || ch == '.')
                << "unexpected character in " << name;
    }
}

TEST(ProfSpec, OnlyZeroAndOneAreAccepted)
{
    EXPECT_FALSE(parseProfSpec(nullptr));
    EXPECT_FALSE(parseProfSpec(""));
    EXPECT_FALSE(parseProfSpec("0"));
    EXPECT_TRUE(parseProfSpec("1"));
    // Garbage and near-misses warn (once) and stay off.
    EXPECT_FALSE(parseProfSpec("2"));
    EXPECT_FALSE(parseProfSpec("yes"));
    EXPECT_FALSE(parseProfSpec("01"));
    EXPECT_FALSE(parseProfSpec("true"));
    EXPECT_FALSE(parseProfSpec(" 1"));
    EXPECT_FALSE(parseProfSpec("-1"));
}

TEST(ProfScopes, DisabledScopesAccumulateNothing)
{
    ProfStateGuard guard;
    setEnabled(false);
    for (int i = 0; i < 100; i++) {
        DESC_PROF_SCOPE(CacheAccess);
        DESC_PROF_CYCLES(CacheAccess, 7);
    }
    Profile p = threadProfile();
    EXPECT_EQ(p.scopes(), 0u);
    EXPECT_EQ(p.selfNs(), 0u);
    EXPECT_EQ(p.comp[unsigned(Component::CacheAccess)].cycles, 0u);
}

TEST(ProfScopes, NestedScopeTimeIsSubtractedFromParentSelf)
{
    ProfStateGuard guard;
    setEnabled(true);
    {
        DESC_PROF_SCOPE(CacheAccess);
        spinFor(std::chrono::microseconds(200));
        {
            DESC_PROF_SCOPE(Encoder);
            spinFor(std::chrono::microseconds(400));
        }
    }
    Profile p = threadProfile();
    const auto &outer = p.comp[unsigned(Component::CacheAccess)];
    const auto &inner = p.comp[unsigned(Component::Encoder)];

    EXPECT_EQ(outer.count, 1u);
    EXPECT_EQ(inner.count, 1u);
    // The child is wholly contained in the parent.
    EXPECT_GE(outer.total_ns, inner.total_ns);
    // Parent self time excludes the child entirely.
    EXPECT_EQ(outer.self_ns, outer.total_ns - inner.total_ns);
    // A leaf's self time is its total time.
    EXPECT_EQ(inner.self_ns, inner.total_ns);
    // Both ran long enough to be visible.
    EXPECT_GE(outer.self_ns, 100'000u);
    EXPECT_GE(inner.self_ns, 300'000u);
}

TEST(ProfScopes, RecursionFoldsIntoOneComponent)
{
    ProfStateGuard guard;
    setEnabled(true);
    nestScopes(8);
    Profile p = threadProfile();
    EXPECT_EQ(p.comp[unsigned(Component::Encoder)].count, 8u);
}

TEST(ProfScopes, CyclesAttributeOnlyWhenEnabled)
{
    ProfStateGuard guard;
    setEnabled(true);
    DESC_PROF_CYCLES(Dram, 123);
    DESC_PROF_CYCLES(Dram, 77);
    setEnabled(false);
    DESC_PROF_CYCLES(Dram, 1000);
    Profile p = threadProfile();
    EXPECT_EQ(p.comp[unsigned(Component::Dram)].cycles, 200u);
}

TEST(ProfScopes, DeltaSinceIsolatesNewWork)
{
    ProfStateGuard guard;
    setEnabled(true);
    {
        DESC_PROF_SCOPE(Runner);
    }
    Profile base = threadProfile();
    {
        DESC_PROF_SCOPE(Runner);
        DESC_PROF_SCOPE(Energy);
    }
    Profile d = deltaSince(base);
    EXPECT_EQ(d.comp[unsigned(Component::Runner)].count, 1u);
    EXPECT_EQ(d.comp[unsigned(Component::Energy)].count, 1u);
    EXPECT_EQ(d.scopes(), 2u);
}

TEST(ProfScopes, MergedProfileSeesJoinedThreads)
{
    ProfStateGuard guard;
    setEnabled(true);
    Profile before = mergedProfile();
    std::thread worker([] {
        for (int i = 0; i < 5; i++) {
            DESC_PROF_SCOPE(LinkFast);
        }
        DESC_PROF_CYCLES(LinkFast, 42);
    });
    worker.join(); // orders the worker's writes before the merge read
    Profile after = mergedProfile();
    const unsigned c = unsigned(Component::LinkFast);
    EXPECT_EQ(after.comp[c].count - before.comp[c].count, 5u);
    EXPECT_EQ(after.comp[c].cycles - before.comp[c].cycles, 42u);
}

TEST(ProfScopes, DepthOverflowStillCounts)
{
    ProfStateGuard guard;
    setEnabled(true);
    nestScopes(40); // beyond the 32-deep timing stack
    Profile p = threadProfile();
    EXPECT_EQ(p.comp[unsigned(Component::Encoder)].count, 40u);
}

TEST(ProfRuns, LastRunProfileTracksTheMostRecentNote)
{
    ProfStateGuard guard;
    Profile p;
    std::string label;
    EXPECT_FALSE(lastRunProfile(&p, &label));

    Profile a;
    a.comp[0].count = 1;
    noteRunProfile("app/Scheme#1", a);
    Profile b;
    b.comp[0].count = 2;
    noteRunProfile("app/Scheme#2", b);

    ASSERT_TRUE(lastRunProfile(&p, &label));
    EXPECT_EQ(label, "app/Scheme#2");
    EXPECT_EQ(p.comp[0].count, 2u);
}
