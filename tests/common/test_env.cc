/**
 * @file
 * Unit tests for the typed DESC_* environment registry (desc::env).
 *
 * The registry is the single source of truth for every knob: the
 * metadata tests pin the invariants the tooling relies on
 * (alphabetical order, complete docs), the parse tests exercise the
 * pure cores behind the typed getters on boundary and garbage input
 * (ported from the historical per-site DESC_SIM_JOBS /
 * DESC_SIM_SCALE suites), and the read-through tests prove the
 * getters see setenv/unsetenv immediately.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/env.hh"

namespace env = desc::env;

namespace {

/** Sets one variable for a scope and restores it afterwards. */
struct EnvGuard
{
    std::string var;
    std::string saved;
    bool was_set;

    EnvGuard(const char *name, const char *value) : var(name)
    {
        const char *old = getenv(name);
        was_set = old != nullptr;
        if (was_set)
            saved = old;
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }

    ~EnvGuard()
    {
        if (was_set)
            setenv(var.c_str(), saved.c_str(), 1);
        else
            unsetenv(var.c_str());
    }
};

} // namespace

// --- registry metadata --------------------------------------------

TEST(EnvRegistry, EveryVarHasCompleteMetadata)
{
    for (unsigned i = 0; i < env::kNumVars; i++) {
        const auto &info = env::info(env::Var(i));
        ASSERT_NE(info.name, nullptr);
        EXPECT_EQ(std::string(info.name).rfind("DESC_", 0), 0u)
            << info.name;
        EXPECT_FALSE(std::string(info.type).empty()) << info.name;
        EXPECT_FALSE(std::string(info.def).empty()) << info.name;
        EXPECT_GE(std::string(info.doc).size(), 10u) << info.name;
        EXPECT_STREQ(env::name(env::Var(i)), info.name);
    }
}

TEST(EnvRegistry, EntriesAreAlphabeticalAndUnique)
{
    // --list-env, the README table, and the analyzer's self-test all
    // assume the .def file is sorted by variable name.
    for (unsigned i = 1; i < env::kNumVars; i++) {
        EXPECT_LT(std::string(env::name(env::Var(i - 1))),
                  std::string(env::name(env::Var(i))));
    }
}

TEST(EnvRegistry, KnownKnobsAreRegistered)
{
    EXPECT_STREQ(env::name(env::Var::SimJobs), "DESC_SIM_JOBS");
    EXPECT_STREQ(env::name(env::Var::SimScale), "DESC_SIM_SCALE");
    EXPECT_STREQ(env::name(env::Var::LinkMode), "DESC_LINK_MODE");
}

// --- raw access and the lookup counter ----------------------------

TEST(EnvRegistry, RawIsReadThrough)
{
    EnvGuard guard("DESC_VCD_OUT", "a.vcd");
    ASSERT_NE(env::raw(env::Var::VcdOut), nullptr);
    EXPECT_STREQ(env::raw(env::Var::VcdOut), "a.vcd");
    setenv("DESC_VCD_OUT", "b.vcd", 1);
    EXPECT_STREQ(env::raw(env::Var::VcdOut), "b.vcd");
    unsetenv("DESC_VCD_OUT");
    EXPECT_EQ(env::raw(env::Var::VcdOut), nullptr);
    EXPECT_FALSE(env::isSet(env::Var::VcdOut));
}

TEST(EnvRegistry, IsSetSeesEmptyString)
{
    EnvGuard guard("DESC_VCD_OUT", "");
    EXPECT_TRUE(env::isSet(env::Var::VcdOut));
    // But the string getter treats empty as unset.
    EXPECT_EQ(env::stringOr(env::Var::VcdOut, "dflt"), "dflt");
}

TEST(EnvRegistry, LookupCountAdvancesPerRawRead)
{
    std::uint64_t before = env::lookupCount();
    (void)env::raw(env::Var::VcdOut);
    (void)env::isSet(env::Var::Trace);
    EXPECT_EQ(env::lookupCount(), before + 2);
}

// --- typed getters (read-through) ---------------------------------

TEST(EnvRegistry, EnabledNotZeroSemantics)
{
    {
        EnvGuard guard("DESC_SIM_CACHE", nullptr);
        EXPECT_TRUE(env::enabledNotZero(env::Var::SimCache));
    }
    {
        EnvGuard guard("DESC_SIM_CACHE", "0");
        EXPECT_FALSE(env::enabledNotZero(env::Var::SimCache));
    }
    {
        EnvGuard guard("DESC_SIM_CACHE", "1");
        EXPECT_TRUE(env::enabledNotZero(env::Var::SimCache));
    }
    {
        // Garbage leaves a default-on toggle on, silently.
        EnvGuard guard("DESC_SIM_CACHE", "maybe");
        EXPECT_TRUE(env::enabledNotZero(env::Var::SimCache));
    }
}

TEST(EnvRegistry, UintOrReadsTheEnvironment)
{
    {
        EnvGuard guard("DESC_SIM_JOBS", "3");
        EXPECT_EQ(env::uintOr(env::Var::SimJobs, 7, 1, 4096), 3u);
    }
    {
        EnvGuard guard("DESC_SIM_JOBS", nullptr);
        EXPECT_EQ(env::uintOr(env::Var::SimJobs, 7, 1, 4096), 7u);
    }
}

TEST(EnvRegistry, StringOrReadsTheEnvironment)
{
    EnvGuard guard("DESC_STATS_OUT", "stats.json");
    EXPECT_EQ(env::stringOr(env::Var::StatsOut, ""), "stats.json");
}

// --- pure parse cores: ported boundary/garbage suites -------------

TEST(EnvParse, UintAcceptsRangeAndBoundaries)
{
    const auto v = env::Var::SimJobs;
    EXPECT_EQ(env::parseUint(v, "1", 9, 1, 4096), 1u);
    EXPECT_EQ(env::parseUint(v, "4096", 9, 1, 4096), 4096u);
    EXPECT_EQ(env::parseUint(v, "2048", 9, 1, 4096), 2048u);
}

TEST(EnvParse, UintRejectsZeroNegativeAndGarbage)
{
    // Ported from the per-site DESC_SIM_JOBS suite: every malformed
    // value falls back, without crashing, wrapping a negative into a
    // huge count, or accepting trailing junk.
    const auto v = env::Var::SimJobs;
    for (const char *bad :
         {"0", "-1", "-4096", "banana", "3banana", "", " ",
          "99999999999999999999", "4097", "0x10", "+ 3", "3 "}) {
        EXPECT_EQ(env::parseUint(v, bad, 9, 1, 4096), 9u)
            << "value \"" << bad << '"';
    }
}

TEST(EnvParse, UintUnsetIsSilentDefault)
{
    EXPECT_EQ(env::parseUint(env::Var::SimJobs, nullptr, 9, 1, 4096),
              9u);
}

TEST(EnvParse, BoolIsStrictZeroOne)
{
    const auto v = env::Var::Prof;
    EXPECT_FALSE(env::parseBool(v, "0", true));
    EXPECT_TRUE(env::parseBool(v, "1", false));
    EXPECT_FALSE(env::parseBool(v, nullptr, false));
    EXPECT_TRUE(env::parseBool(v, nullptr, true));
    EXPECT_FALSE(env::parseBool(v, "", false));
    for (const char *bad : {"2", "yes", "true", "on", "01", "1 "}) {
        EXPECT_FALSE(env::parseBool(v, bad, false))
            << "value \"" << bad << '"';
        EXPECT_TRUE(env::parseBool(v, bad, true))
            << "value \"" << bad << '"';
    }
}

TEST(EnvParse, FloatAcceptsPositiveFinite)
{
    // Ported from the DESC_SIM_SCALE suite.
    const auto v = env::Var::SimScale;
    EXPECT_DOUBLE_EQ(env::parsePositiveFloat(v, "2.5", 1.0, "1.0"), 2.5);
    EXPECT_DOUBLE_EQ(env::parsePositiveFloat(v, "0.05", 1.0, "1.0"),
                     0.05);
    EXPECT_DOUBLE_EQ(env::parsePositiveFloat(v, "1e-3", 1.0, "1.0"),
                     1e-3);
}

TEST(EnvParse, FloatRejectsNonPositiveAndGarbage)
{
    const auto v = env::Var::SimScale;
    for (const char *bad :
         {"0", "-1", "-0.5", "nan", "inf", "-inf", "abc", "1.5x", ""}) {
        EXPECT_DOUBLE_EQ(env::parsePositiveFloat(v, bad, 1.0, "1.0"),
                         1.0)
            << "value \"" << bad << '"';
    }
    EXPECT_DOUBLE_EQ(env::parsePositiveFloat(v, nullptr, 0.25, "0.25"),
                     0.25);
}

TEST(EnvParse, EnumMatchesExactWordsOnly)
{
    static const env::EnumName kWords[] = {
        {"auto", 0}, {"ticked", 1}, {"fast", 2}};
    const auto v = env::Var::LinkMode;
    EXPECT_EQ(env::parseEnum(v, "auto", kWords, 3, 0), 0);
    EXPECT_EQ(env::parseEnum(v, "ticked", kWords, 3, 0), 1);
    EXPECT_EQ(env::parseEnum(v, "fast", kWords, 3, 0), 2);
    EXPECT_EQ(env::parseEnum(v, nullptr, kWords, 3, 0), 0);
    EXPECT_EQ(env::parseEnum(v, "", kWords, 3, 0), 0);
    for (const char *bad : {"AUTO", "Fast", "bogus", "fast ", "tick"}) {
        EXPECT_EQ(env::parseEnum(v, bad, kWords, 3, 0), 0)
            << "value \"" << bad << '"';
    }
}
