/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

using desc::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; i++) {
        if (a.next() == b.next())
            equal++;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(9);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(5);
    bool seen[8] = {};
    for (int i = 0; i < 1000; i++)
        seen[rng.below(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, BetweenInclusiveBounds)
{
    Rng rng(11);
    bool lo = false, hi = false;
    for (int i = 0; i < 5000; i++) {
        auto v = rng.between(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        lo |= v == 3;
        hi |= v == 6;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, BetweenFullRangeDoesNotWrapToZeroBound)
{
    // hi - lo + 1 == 0 here; the old code passed bound 0 to below(),
    // whose multiply-shift mapping then returned 0 for every draw.
    Rng rng(21);
    const std::uint64_t max = ~std::uint64_t{0};
    bool nonzero = false, high_half = false;
    for (int i = 0; i < 100; i++) {
        auto v = rng.between(0, max);
        nonzero |= v != 0;
        high_half |= v > max / 2;
    }
    EXPECT_TRUE(nonzero);
    EXPECT_TRUE(high_half);
}

TEST(Rng, BetweenFullRangeStaysDeterministic)
{
    Rng a(33), b(33);
    const std::uint64_t max = ~std::uint64_t{0};
    for (int i = 0; i < 20; i++)
        EXPECT_EQ(a.between(0, max), b.next());
}

TEST(Rng, BetweenDegenerateRangeReturnsTheBound)
{
    Rng rng(7);
    EXPECT_EQ(rng.between(42, 42), 42u);
    const std::uint64_t max = ~std::uint64_t{0};
    EXPECT_EQ(rng.between(max, max), max);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0.0;
    for (int i = 0; i < 10000; i++) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 20000; i++)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}
