/**
 * @file
 * Tests for the contract macros (common/contract.hh): DESC_ASSERT
 * aborts with formatted context in every build type, DESC_DCHECK is a
 * Debug-only re-verification that costs nothing in Release, and
 * DESC_UNREACHABLE traps in Debug. Death tests pin down the message
 * format so a failing contract stays greppable.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "common/contract.hh"
#include "common/log.hh"

namespace {

int
identity(int v)
{
    return v;
}

} // namespace

TEST(Contract, PassingAssertHasNoEffect)
{
    DESC_ASSERT(1 + 1 == 2, "arithmetic works");
    DESC_ASSERT(true);
    SUCCEED();
}

TEST(ContractDeath, AssertAbortsWithConditionAndOperands)
{
    std::uint64_t got = 7, want = 9;
    EXPECT_DEATH(
        DESC_ASSERT(got == want, "got ", got, ", want ", want),
        "assertion failed: got == want got 7, want 9");
}

TEST(ContractDeath, AssertFiresInEveryBuildType)
{
    // Unlike DESC_DCHECK, DESC_ASSERT must survive NDEBUG.
    EXPECT_DEATH(DESC_ASSERT(identity(0) == 1, "always on"),
                 "assertion failed");
}

TEST(ContractDeath, AssertIncludesThreadContextTag)
{
    EXPECT_DEATH(
        {
            desc::setThreadLogContext("w7");
            DESC_ASSERT(false, "tagged failure");
        },
        "\\[w7\\] assertion failed.*tagged failure");
}

#ifndef NDEBUG

TEST(ContractDeath, DcheckAbortsInDebugBuilds)
{
    EXPECT_DEATH(DESC_DCHECK(identity(2) == 3, "v=", identity(2)),
                 "assertion failed.*v=2");
}

TEST(ContractDeath, UnreachableTrapsInDebugBuilds)
{
    EXPECT_DEATH(DESC_UNREACHABLE("state ", 42),
                 "unreachable: state 42");
}

#else // NDEBUG

TEST(Contract, DcheckCompilesOutInReleaseBuilds)
{
    // The condition must not be evaluated at all when compiled out —
    // the macro documents it must be side-effect free, and relying on
    // evaluation would reintroduce hot-path cost.
    int evaluations = 0;
    DESC_DCHECK([&] {
        evaluations++;
        return false;
    }());
    EXPECT_EQ(evaluations, 0);
}

#endif // NDEBUG

TEST(Contract, DcheckPassesThroughWhenTrue)
{
    DESC_DCHECK(2 + 2 == 4, "arithmetic still works");
    SUCCEED();
}
