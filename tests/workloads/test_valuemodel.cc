/**
 * @file
 * Tests for the application data-value model: determinism, the
 * structure layout, and the chunk statistics it must induce.
 */

#include <gtest/gtest.h>

#include "common/bitvec.hh"
#include "core/chunk.hh"
#include "workloads/valuemodel.hh"

using namespace desc;
using namespace desc::workloads;

namespace {

const AppParams &
app(const char *name)
{
    return findApp(name);
}

} // namespace

TEST(ValueModel, BlockContentIsDeterministicPerAddress)
{
    ValueModel m(app("FFT"), 42);
    auto a = m.block(0x1000);
    auto b = m.block(0x1000);
    EXPECT_EQ(a, b);
    ValueModel m2(app("FFT"), 42);
    EXPECT_EQ(m2.block(0x1000), a);
}

TEST(ValueModel, DifferentSeedsDiffer)
{
    ValueModel m1(app("FFT"), 1), m2(app("FFT"), 2);
    int same = 0;
    for (Addr a = 0; a < 64 * 100; a += 64)
        same += m1.block(a) == m2.block(a);
    EXPECT_LT(same, 30); // only null blocks coincide
}

TEST(ValueModel, ZeroSlotsAreAlwaysZero)
{
    const auto &p = app("CG");
    ValueModel m(p, 7);
    // Find a zero slot via classAt and verify across many blocks.
    for (unsigned slot = 0; slot < 8; slot++) {
        if (m.classAt(slot * 8) != ValueModel::FieldClass::Zero)
            continue;
        for (Addr a = 0; a < 64 * 200; a += 64)
            EXPECT_EQ(m.block(a)[slot], 0u);
        return;
    }
    GTEST_SKIP() << "CG layout realized no zero slot";
}

TEST(ValueModel, ChunkStatisticsLandNearPaperTargets)
{
    // Pooled over all sixteen parallel apps, the generated blocks must
    // land near the paper's Figure 12/13 characterization: zero-chunk
    // fraction in the low 30s (%), last-value matches near 40%.
    Histogram pooled(16);
    double match_sum = 0;
    for (const auto &p : parallelApps()) {
        ValueModel m(p, 99);
        core::ChunkStats stats(4, 128);
        BitVec bv(512);
        for (Addr a = 0; a < 64 * 400; a += 64) {
            auto blk = m.block(a);
            bv.fromBytes(reinterpret_cast<const std::uint8_t *>(
                             blk.data()),
                         64);
            stats.observe(bv);
        }
        pooled.merge(stats.histogram());
        match_sum += stats.lastValueMatchFraction();
    }
    double zero = pooled.fraction(0);
    double match = match_sum / 16.0;
    EXPECT_GT(zero, 0.22);
    EXPECT_LT(zero, 0.48);
    EXPECT_GT(match, 0.25);
    EXPECT_LT(match, 0.60);
}

TEST(ValueModel, NullBlocksAppearAtTheConfiguredRate)
{
    auto p = app("Equake");
    ValueModel m(p, 5);
    unsigned nulls = 0;
    const unsigned n = 4000;
    for (Addr a = 0; a < Addr(64) * n; a += 64)
        nulls += m.block(a) == cache::zeroBlock();
    // Null blocks plus the rare all-zero draw.
    EXPECT_NEAR(double(nulls) / n, p.null_block, 0.05);
}

TEST(ValueModel, StoreValuesFollowTheSlotClass)
{
    ValueModel m(app("CG"), 3);
    Rng rng(4);
    for (unsigned slot = 0; slot < 8; slot++) {
        auto cls = m.classAt(slot * 8);
        for (int i = 0; i < 20; i++) {
            std::uint64_t v = m.wordAt(slot * 8, rng);
            switch (cls) {
              case ValueModel::FieldClass::Zero:
                EXPECT_EQ(v, 0u);
                break;
              case ValueModel::FieldClass::SmallInt:
                EXPECT_LT(v, 1u << 12);
                break;
              default:
                break;
            }
        }
    }
}
