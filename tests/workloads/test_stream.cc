/**
 * @file
 * Tests for the synthetic instruction/address streams.
 */

#include <gtest/gtest.h>

#include "workloads/stream.hh"

using namespace desc;
using namespace desc::workloads;

namespace {

struct Fixture
{
    const AppParams &app = findApp("FFT");
    ValueModel values{app, 11};
    AppStream stream{app, values, 3, 0, 11};
};

} // namespace

TEST(AppStream, GapsMatchMemoryIntensity)
{
    Fixture f;
    cpu::MemOp op;
    std::uint64_t gaps = 0;
    const unsigned n = 20000;
    for (unsigned i = 0; i < n; i++)
        gaps += f.stream.nextGap(op);
    // E[gap] = (1-p)/p for geometric gaps with success prob p.
    double p = f.app.mem_per_inst;
    double expected = (1.0 - p) / p;
    EXPECT_NEAR(double(gaps) / n, expected, expected * 0.1);
}

TEST(AppStream, WriteFractionMatches)
{
    Fixture f;
    cpu::MemOp op;
    unsigned writes = 0;
    const unsigned n = 20000;
    for (unsigned i = 0; i < n; i++) {
        f.stream.nextGap(op);
        writes += op.is_write;
    }
    EXPECT_NEAR(double(writes) / n, f.app.write_frac, 0.02);
}

TEST(AppStream, AddressesStayInTheDeclaredRegions)
{
    Fixture f;
    cpu::MemOp op;
    for (unsigned i = 0; i < 20000; i++) {
        f.stream.nextGap(op);
        bool in_hot = op.addr >= AppStream::hotBase(3)
            && op.addr < AppStream::hotBase(3) + f.app.hot_bytes;
        bool in_priv = op.addr >= AppStream::privateBase(3)
            && op.addr < AppStream::privateBase(3) + f.app.ws_private;
        bool in_shared = op.addr >= AppStream::sharedBase()
            && op.addr < AppStream::sharedBase() + f.app.ws_shared;
        EXPECT_TRUE(in_hot || in_priv || in_shared)
            << std::hex << op.addr;
        EXPECT_EQ(op.addr % 8, 0u);
    }
}

TEST(AppStream, HotSetDominates)
{
    Fixture f;
    cpu::MemOp op;
    unsigned hot = 0;
    const unsigned n = 20000;
    for (unsigned i = 0; i < n; i++) {
        f.stream.nextGap(op);
        hot += op.addr >= AppStream::hotBase(3)
            && op.addr < AppStream::hotBase(3) + f.app.hot_bytes;
    }
    EXPECT_NEAR(double(hot) / n, f.app.hot_frac, 0.02);
}

TEST(AppStream, FetchAddressesWalkTheCodeFootprint)
{
    Fixture f;
    cpu::MemOp op;
    Addr lo = ~Addr{0}, hi = 0;
    for (unsigned i = 0; i < 5000; i++) {
        f.stream.nextGap(op);
        Addr fa = f.stream.fetchAddr();
        lo = std::min(lo, fa);
        hi = std::max(hi, fa);
        EXPECT_GE(fa, AppStream::codeBase(0));
        EXPECT_LT(fa, AppStream::codeBase(0) + f.app.code_bytes);
    }
    // The walk covers most of the footprint.
    EXPECT_GT(hi - lo, f.app.code_bytes / 2);
}

TEST(AppStream, DistinctThreadsUseDistinctPrivateRegions)
{
    EXPECT_NE(AppStream::privateBase(0), AppStream::privateBase(1));
    EXPECT_NE(AppStream::hotBase(0), AppStream::hotBase(1));
    // Regions are far enough apart not to overlap.
    EXPECT_GT(AppStream::privateBase(1) - AppStream::privateBase(0),
              Addr{64} << 20);
}

TEST(AppStream, DeterministicForSameSeed)
{
    Fixture a, b;
    cpu::MemOp oa, ob;
    for (unsigned i = 0; i < 1000; i++) {
        unsigned ga = a.stream.nextGap(oa);
        unsigned gb = b.stream.nextGap(ob);
        ASSERT_EQ(ga, gb);
        ASSERT_EQ(oa.addr, ob.addr);
        ASSERT_EQ(oa.is_write, ob.is_write);
    }
}
