/**
 * @file
 * Sanity tests for the per-application parameter tables.
 */

#include <gtest/gtest.h>

#include "workloads/app.hh"

using namespace desc::workloads;

TEST(Apps, SixteenParallelAndEightSpec)
{
    EXPECT_EQ(parallelApps().size(), 16u);
    EXPECT_EQ(specApps().size(), 8u);
}

TEST(Apps, NamesMatchTable2)
{
    const char *parallel[] = {
        "Art", "Barnes", "CG", "Cholesky", "Equake", "FFT", "FT",
        "Linear", "LU", "MG", "Ocean", "Radix", "RayTrace", "Swim",
        "Water-Nsquared", "Water-Spatial"};
    for (std::size_t i = 0; i < 16; i++)
        EXPECT_STREQ(parallelApps()[i].name, parallel[i]);

    const char *spec[] = {"bzip2", "mcf", "omnetpp", "sjeng",
                          "lbm", "milc", "namd", "soplex"};
    for (std::size_t i = 0; i < 8; i++)
        EXPECT_STREQ(specApps()[i].name, spec[i]);
}

TEST(Apps, ParametersAreWellFormed)
{
    auto check = [](const AppParams &a) {
        EXPECT_GT(a.mem_per_inst, 0.0) << a.name;
        EXPECT_LT(a.mem_per_inst, 1.0) << a.name;
        EXPECT_GE(a.write_frac, 0.0) << a.name;
        EXPECT_LE(a.write_frac, 1.0) << a.name;
        EXPECT_GT(a.ws_private, 0u) << a.name;
        EXPECT_GT(a.code_bytes, 0u) << a.name;
        EXPECT_GT(a.hot_bytes, 0u) << a.name;
        EXPECT_GT(a.hot_frac, 0.5) << a.name;
        double total = a.zero_word + a.small_word + a.palette_word;
        EXPECT_LT(total, 1.0) << a.name;
        EXPECT_GT(a.palette_size, 0u) << a.name;
        EXPECT_GE(a.null_block, 0.0) << a.name;
        EXPECT_LT(a.null_block, 0.5) << a.name;
    };
    for (const auto &a : parallelApps())
        check(a);
    for (const auto &a : specApps())
        check(a);
}

TEST(Apps, SeedSaltsAreUnique)
{
    std::vector<std::uint64_t> salts;
    for (const auto &a : parallelApps())
        salts.push_back(a.seed_salt);
    for (const auto &a : specApps())
        salts.push_back(a.seed_salt);
    std::sort(salts.begin(), salts.end());
    EXPECT_EQ(std::adjacent_find(salts.begin(), salts.end()),
              salts.end());
}

TEST(Apps, FindAppLocatesBothSuites)
{
    EXPECT_STREQ(findApp("FFT").name, "FFT");
    EXPECT_STREQ(findApp("mcf").name, "mcf");
}

TEST(AppsDeath, UnknownAppIsFatal)
{
    EXPECT_DEATH(findApp("quake3"), "unknown application");
}
