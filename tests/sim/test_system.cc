/**
 * @file
 * End-to-end system tests: the full machine runs to completion,
 * produces deterministic results, and responds to configuration in
 * the directions the paper's experiments rely on.
 */

#include <gtest/gtest.h>

#include "core/factory.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"

using namespace desc;
using namespace desc::sim;

namespace {

SystemConfig
smallConfig(const char *app = "FFT")
{
    SystemConfig cfg = baselineConfig(workloads::findApp(app));
    cfg.insts_per_thread = 5000;
    return cfg;
}

} // namespace

TEST(System, RunsToCompletion)
{
    auto r = runSystem(smallConfig());
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.instructions, 32u * 5000u);
    EXPECT_GT(r.hierarchy.l1d_accesses.value(), 0u);
    EXPECT_GT(r.hierarchy.l2_requests.value(), 0u);
}

TEST(System, DeterministicAcrossRuns)
{
    auto a = runSystem(smallConfig());
    auto b = runSystem(smallConfig());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.hierarchy.data_flips, b.hierarchy.data_flips);
    EXPECT_EQ(a.hierarchy.l2_requests.value(),
              b.hierarchy.l2_requests.value());
}

TEST(System, SeedChangesTheRun)
{
    auto cfg = smallConfig();
    auto a = runSystem(cfg);
    cfg.seed ^= 0x1234;
    auto b = runSystem(cfg);
    EXPECT_NE(a.cycles, b.cycles);
}

TEST(System, WarmupGivesRealisticHitRates)
{
    auto cfg = smallConfig("Water-Nsquared"); // small working set
    auto r = runSystem(cfg);
    double hit_rate = double(r.hierarchy.l2_hits.value())
        / double(r.hierarchy.l2_hits.value()
                 + r.hierarchy.l2_misses.value());
    EXPECT_GT(hit_rate, 0.3);
    double l1_miss = double(r.hierarchy.l1d_misses.value())
        / double(r.hierarchy.l1d_accesses.value());
    EXPECT_LT(l1_miss, 0.3);
}

TEST(System, DescReducesFlipsButLengthensWindows)
{
    auto base_cfg = smallConfig();
    auto base = runSystem(base_cfg);

    auto desc_cfg = base_cfg;
    applyScheme(desc_cfg, encoding::SchemeKind::DescZeroSkip);
    auto with_desc = runSystem(desc_cfg);

    EXPECT_LT(with_desc.hierarchy.data_flips,
              0.7 * base.hierarchy.data_flips);
    EXPECT_GT(with_desc.hierarchy.transfer_window.mean(),
              base.hierarchy.transfer_window.mean());
    EXPECT_GT(with_desc.avgHitDelay(), base.avgHitDelay());
}

TEST(System, OutOfOrderMachineRuns)
{
    auto cfg = smallConfig("sjeng");
    cfg.cpu = CpuKind::OutOfOrder;
    cfg.threads_per_core = 1;
    auto r = runSystem(cfg);
    EXPECT_EQ(r.instructions, 5000u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(System, SnucaMachineRuns)
{
    auto cfg = smallConfig();
    cfg.l2.snuca = true;
    cfg.l2.org.banks = 128;
    cfg.l2.org.bus_wires = 128;
    cfg.l2.scheme_cfg.bus_wires = 128;
    auto r = runSystem(cfg);
    EXPECT_GT(r.cycles, 0u);
}

TEST(System, EveryParallelAppRuns)
{
    for (const auto &app : workloads::parallelApps()) {
        SystemConfig cfg = baselineConfig(app);
        cfg.insts_per_thread = 1500;
        auto r = runSystem(cfg);
        EXPECT_GT(r.cycles, 0u) << app.name;
    }
}

TEST(System, EverySchemeRunsEndToEnd)
{
    for (unsigned s = 0; s < encoding::kNumSchemes; s++) {
        auto cfg = smallConfig();
        cfg.insts_per_thread = 2000;
        applyScheme(cfg, core::allSchemeKinds()[s]);
        auto r = runSystem(cfg);
        EXPECT_GT(r.hierarchy.data_flips + r.hierarchy.ctrl_flips, 0.0)
            << shortSchemeName(core::allSchemeKinds()[s]);
    }
}
