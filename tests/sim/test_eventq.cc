/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include "sim/eventq.hh"

using namespace desc;
using namespace desc::sim;

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameCycleIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; i++)
        eq.schedule(7, [&, i]() { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&]() {
        fired++;
        if (fired < 10)
            eq.scheduleIn(5, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(eq.now(), 45u);
}

TEST(EventQueue, SameCycleSelfScheduleRuns)
{
    EventQueue eq;
    bool inner = false;
    eq.schedule(5, [&]() { eq.schedule(5, [&]() { inner = true; }); });
    eq.run();
    EXPECT_TRUE(inner);
}

TEST(EventQueue, RunLimitStopsEarly)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() { fired++; });
    eq.schedule(100, [&]() { fired++; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ReturnsExecutedCount)
{
    EventQueue eq;
    for (int i = 0; i < 7; i++)
        eq.schedule(Cycle(i), []() {});
    EXPECT_EQ(eq.run(), 7u);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(10, []() {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, []() {}), "into the past");
}
