/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include "sim/eventq.hh"

using namespace desc;
using namespace desc::sim;

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameCycleIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; i++)
        eq.schedule(7, [&, i]() { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&]() {
        fired++;
        if (fired < 10)
            eq.scheduleIn(5, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(eq.now(), 45u);
}

TEST(EventQueue, SameCycleSelfScheduleRuns)
{
    EventQueue eq;
    bool inner = false;
    eq.schedule(5, [&]() { eq.schedule(5, [&]() { inner = true; }); });
    eq.run();
    EXPECT_TRUE(inner);
}

TEST(EventQueue, RunLimitStopsEarly)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() { fired++; });
    eq.schedule(100, [&]() { fired++; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ReturnsExecutedCount)
{
    EventQueue eq;
    for (int i = 0; i < 7; i++)
        eq.schedule(Cycle(i), []() {});
    EXPECT_EQ(eq.run(), 7u);
}

// The invariants below are what make parallel figure batches
// comparable to serial ones: every simulation's event interleaving
// is a pure function of its own schedule calls.

TEST(EventQueue, CallbackAtCurrentCycleRunsAfterOlderSameCycleEvents)
{
    EventQueue eq;
    std::vector<int> order;
    // The first cycle-5 event schedules another cycle-5 event; FIFO
    // order puts it after the pre-existing cycle-5 events but before
    // anything later.
    eq.schedule(5, [&]() {
        order.push_back(0);
        eq.schedule(5, [&]() { order.push_back(2); });
    });
    eq.schedule(5, [&]() { order.push_back(1); });
    eq.schedule(6, [&]() { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, SelfScheduleAtCurrentCycleKeepsNow)
{
    EventQueue eq;
    Cycle seen = ~Cycle{0};
    eq.schedule(9, [&]() {
        eq.scheduleIn(0, [&]() { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 9u);
    EXPECT_EQ(eq.now(), 9u);
}

TEST(EventQueue, RunLimitIsInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(50, [&]() { fired++; });
    eq.schedule(51, [&]() { fired++; });
    EXPECT_EQ(eq.run(50), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, NowDoesNotAdvancePastLimit)
{
    EventQueue eq;
    eq.schedule(10, []() {});
    eq.schedule(100, []() {});
    eq.run(40);
    // Time stands at the last executed event, not at the limit or
    // the next pending event.
    EXPECT_EQ(eq.now(), 10u);
    eq.run();
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, EventsAtLimitMaySpawnSameCycleWork)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(20, [&]() {
        order.push_back(0);
        eq.schedule(20, [&]() { order.push_back(1); });
        eq.schedule(21, [&]() { order.push_back(2); });
    });
    // Both cycle-20 events run under run(20); the cycle-21 spawn
    // stays pending.
    EXPECT_EQ(eq.run(20), 2u);
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(10, []() {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, []() {}), "into the past");
}
