/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "sim/eventq.hh"

using namespace desc;
using namespace desc::sim;

namespace {

/** Intrusive test event: appends (id, now) to a shared log. */
struct LogEvent final : Event
{
    void
    process() override
    {
        log->push_back({id, eq->now()});
    }

    EventQueue *eq = nullptr;
    std::vector<std::pair<int, Cycle>> *log = nullptr;
    int id = 0;
};

} // namespace

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameCycleIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; i++)
        eq.schedule(7, [&, i]() { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&]() {
        fired++;
        if (fired < 10)
            eq.scheduleIn(5, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(eq.now(), 45u);
}

TEST(EventQueue, SameCycleSelfScheduleRuns)
{
    EventQueue eq;
    bool inner = false;
    eq.schedule(5, [&]() { eq.schedule(5, [&]() { inner = true; }); });
    eq.run();
    EXPECT_TRUE(inner);
}

TEST(EventQueue, RunLimitStopsEarly)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() { fired++; });
    eq.schedule(100, [&]() { fired++; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ReturnsExecutedCount)
{
    EventQueue eq;
    for (int i = 0; i < 7; i++)
        eq.schedule(Cycle(i), []() {});
    EXPECT_EQ(eq.run(), 7u);
}

// The invariants below are what make parallel figure batches
// comparable to serial ones: every simulation's event interleaving
// is a pure function of its own schedule calls.

TEST(EventQueue, CallbackAtCurrentCycleRunsAfterOlderSameCycleEvents)
{
    EventQueue eq;
    std::vector<int> order;
    // The first cycle-5 event schedules another cycle-5 event; FIFO
    // order puts it after the pre-existing cycle-5 events but before
    // anything later.
    eq.schedule(5, [&]() {
        order.push_back(0);
        eq.schedule(5, [&]() { order.push_back(2); });
    });
    eq.schedule(5, [&]() { order.push_back(1); });
    eq.schedule(6, [&]() { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, SelfScheduleAtCurrentCycleKeepsNow)
{
    EventQueue eq;
    Cycle seen = ~Cycle{0};
    eq.schedule(9, [&]() {
        eq.scheduleIn(0, [&]() { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 9u);
    EXPECT_EQ(eq.now(), 9u);
}

TEST(EventQueue, RunLimitIsInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(50, [&]() { fired++; });
    eq.schedule(51, [&]() { fired++; });
    EXPECT_EQ(eq.run(50), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, NowDoesNotAdvancePastLimit)
{
    EventQueue eq;
    eq.schedule(10, []() {});
    eq.schedule(100, []() {});
    eq.run(40);
    // Time stands at the last executed event, not at the limit or
    // the next pending event.
    EXPECT_EQ(eq.now(), 10u);
    eq.run();
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, EventsAtLimitMaySpawnSameCycleWork)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(20, [&]() {
        order.push_back(0);
        eq.schedule(20, [&]() { order.push_back(1); });
        eq.schedule(21, [&]() { order.push_back(2); });
    });
    // Both cycle-20 events run under run(20); the cycle-21 spawn
    // stays pending.
    EXPECT_EQ(eq.run(20), 2u);
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// Scheduling contracts are DESC_DCHECKs: they trap with context in
// Debug builds and compile to nothing on the Release hot path.
#ifndef NDEBUG

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(10, []() {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, []() {}), "into the past");
}

TEST(EventQueueDeath, DoubleSchedulePanics)
{
    EventQueue eq;
    LogEvent a;
    eq.schedule(a, 10);
    EXPECT_DEATH(eq.schedule(a, 20), "double-schedule of a live event");
}

TEST(EventQueueDeath, DoubleScheduleOfPooledCallbackPanics)
{
    // The same contract protects the pooled one-shot wrapper: a
    // component that re-schedules a live intrusive event by accident
    // must trap before the queue's FIFO/sequence bookkeeping corrupts.
    EventQueue eq;
    LogEvent a;
    eq.schedule(a, 3);
    eq.deschedule(a);
    eq.schedule(a, 4); // deschedule + schedule is legal...
    EXPECT_DEATH(eq.schedule(a, 4), "double-schedule"); // ...twice is not
}

#endif // !NDEBUG

// Intrusive-event coverage: the steady-state component pattern, plus
// the schedule/deschedule/reschedule interleavings the ported models
// rely on.

TEST(EventQueueIntrusive, ScheduleDescheduleReschedule)
{
    EventQueue eq;
    std::vector<std::pair<int, Cycle>> log;
    LogEvent a;
    a.eq = &eq;
    a.log = &log;
    a.id = 1;

    eq.schedule(a, 10);
    EXPECT_TRUE(a.scheduled());
    EXPECT_EQ(a.when(), 10u);
    eq.deschedule(a);
    EXPECT_FALSE(a.scheduled());
    EXPECT_EQ(eq.run(), 0u);
    EXPECT_TRUE(log.empty());
    // Draining stale records must not advance simulated time.
    EXPECT_EQ(eq.now(), 0u);

    eq.schedule(a, 20);
    eq.reschedule(a, 35);
    EXPECT_EQ(a.when(), 35u);
    EXPECT_EQ(eq.run(), 1u);
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0], std::make_pair(1, Cycle{35}));
    EXPECT_FALSE(a.scheduled());
}

TEST(EventQueueIntrusive, RescheduleMovesToBackOfSameCycle)
{
    EventQueue eq;
    std::vector<std::pair<int, Cycle>> log;
    std::vector<LogEvent> evs(3);
    for (int i = 0; i < 3; i++) {
        evs[i].eq = &eq;
        evs[i].log = &log;
        evs[i].id = i;
        eq.schedule(evs[i], 40);
    }
    // Rescheduling to the same cycle re-enters FIFO order at the back.
    eq.reschedule(evs[0], 40);
    eq.run();
    ASSERT_EQ(log.size(), 3u);
    EXPECT_EQ(log[0].first, 1);
    EXPECT_EQ(log[1].first, 2);
    EXPECT_EQ(log[2].first, 0);
}

TEST(EventQueueIntrusive, SameCycleFifoAcrossNearAndFarScheduling)
{
    // e0..e4 are scheduled for cycle 5000 far in advance; e5..e9 are
    // scheduled for the same cycle from close by (cycle 4900). FIFO
    // order must hold across both scheduling distances.
    EventQueue eq;
    std::vector<std::pair<int, Cycle>> log;
    std::vector<LogEvent> evs(10);
    for (int i = 0; i < 10; i++) {
        evs[i].eq = &eq;
        evs[i].log = &log;
        evs[i].id = i;
    }

    struct Trigger final : Event
    {
        void
        process() override
        {
            for (int i = 5; i < 10; i++)
                eq->schedule((*evs)[i], 5000);
        }
        EventQueue *eq = nullptr;
        std::vector<LogEvent> *evs = nullptr;
    };
    Trigger trig;
    trig.eq = &eq;
    trig.evs = &evs;

    for (int i = 0; i < 5; i++)
        eq.schedule(evs[i], 5000);
    eq.schedule(trig, 4900);
    EXPECT_EQ(eq.run(), 11u);
    ASSERT_EQ(log.size(), 10u);
    for (int i = 0; i < 10; i++) {
        EXPECT_EQ(log[i].first, i);
        EXPECT_EQ(log[i].second, 5000u);
    }
}

TEST(EventQueueIntrusive, SparseFarTimelineRunsInOrder)
{
    EventQueue eq;
    std::vector<std::pair<int, Cycle>> log;
    const Cycle whens[] = {700, 3, 1'000'000'000, 100'000};
    std::vector<LogEvent> evs(4);
    for (int i = 0; i < 4; i++) {
        evs[i].eq = &eq;
        evs[i].log = &log;
        evs[i].id = i;
        eq.schedule(evs[i], whens[i]);
    }
    EXPECT_EQ(eq.run(), 4u);
    ASSERT_EQ(log.size(), 4u);
    EXPECT_EQ(log[0], std::make_pair(1, Cycle{3}));
    EXPECT_EQ(log[1], std::make_pair(0, Cycle{700}));
    EXPECT_EQ(log[2], std::make_pair(3, Cycle{100'000}));
    EXPECT_EQ(log[3], std::make_pair(2, Cycle{1'000'000'000}));
    EXPECT_EQ(eq.now(), 1'000'000'000u);
}

TEST(EventQueueIntrusive, LimitedRunDoesNotFireFarWorkEarly)
{
    // A limited run can scan (and internally reorganize) the timeline
    // well past where simulated time ends up. Far work touched by that
    // scan must still fire at exactly its own cycle in a later run.
    EventQueue eq;
    std::vector<std::pair<int, Cycle>> log;

    LogEvent far, dummy;
    far.eq = dummy.eq = &eq;
    far.log = dummy.log = &log;
    far.id = 2;
    dummy.id = -1;

    // Runs at 1700 and leaves a canceled marker at 1750 behind, which
    // keeps the limited run scanning forward past 1700 instead of
    // jumping straight to the far event.
    struct Planter final : Event
    {
        void
        process() override
        {
            eq->schedule(*dummy, 1750);
            eq->deschedule(*dummy);
        }
        EventQueue *eq = nullptr;
        LogEvent *dummy = nullptr;
    };
    Planter planter;
    planter.eq = &eq;
    planter.dummy = &dummy;

    eq.schedule(planter, 1700);
    eq.schedule(far, 2000);

    EXPECT_EQ(eq.run(1960), 1u);
    EXPECT_EQ(eq.now(), 1700u);
    EXPECT_TRUE(log.empty());
    EXPECT_TRUE(far.scheduled());

    EXPECT_EQ(eq.run(), 1u);
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0], std::make_pair(2, Cycle{2000}));
    EXPECT_EQ(eq.now(), 2000u);
}

TEST(EventQueueIntrusive, RandomizedOpsMatchOracle)
{
    // Random schedule/deschedule/reschedule interleavings over a pool
    // of events, checked against a sort-based oracle: live events must
    // fire exactly once, at their cycle, ordered by (when, seq).
    Rng rng(0x5eed);
    for (int trial = 0; trial < 8; trial++) {
        EventQueue eq;
        std::vector<std::pair<int, Cycle>> log;
        std::vector<LogEvent> evs(16);
        std::vector<std::pair<Cycle, unsigned>> oracle(16);
        std::vector<bool> live(16, false);
        unsigned stamp = 0;

        for (int i = 0; i < 16; i++) {
            evs[i].eq = &eq;
            evs[i].log = &log;
            evs[i].id = i;
        }
        for (int op = 0; op < 300; op++) {
            unsigned i = unsigned(rng.below(evs.size()));
            Cycle when = 1 + rng.below(800);
            if (!live[i]) {
                eq.schedule(evs[i], when);
                live[i] = true;
                oracle[i] = {when, stamp++};
            } else if (rng.uniform() < 0.5) {
                eq.deschedule(evs[i]);
                live[i] = false;
            } else {
                eq.reschedule(evs[i], when);
                oracle[i] = {when, stamp++};
            }
        }

        struct Expect
        {
            Cycle when;
            unsigned stamp;
            int id;
        };
        std::vector<Expect> expect;
        for (int i = 0; i < 16; i++) {
            if (live[i])
                expect.push_back({oracle[i].first, oracle[i].second, i});
        }
        std::sort(expect.begin(), expect.end(),
                  [](const Expect &a, const Expect &b) {
                      return a.when != b.when ? a.when < b.when
                                              : a.stamp < b.stamp;
                  });

        EXPECT_EQ(eq.pending(), expect.size());
        EXPECT_EQ(eq.run(), expect.size());
        ASSERT_EQ(log.size(), expect.size()) << "trial " << trial;
        for (std::size_t k = 0; k < expect.size(); k++) {
            EXPECT_EQ(log[k].first, expect[k].id) << "trial " << trial;
            EXPECT_EQ(log[k].second, expect[k].when) << "trial " << trial;
        }
        EXPECT_TRUE(eq.empty());
    }
}

// Allocation-freedom: after warm-up, neither the one-shot pool nor
// the queue's record storage may grow, no matter how many events run.

TEST(EventQueue, RecurringEventsRunAllocationFree)
{
    EventQueue eq;
    struct Tick final : Event
    {
        void
        process() override
        {
            fired++;
            if (*running)
                eq->scheduleIn(*this, 1 + (fired & 7));
        }
        EventQueue *eq = nullptr;
        bool *running = nullptr;
        std::uint64_t fired = 0;
    };

    bool running = true;
    std::vector<Tick> ticks(48);
    for (auto &t : ticks) {
        t.eq = &eq;
        t.running = &running;
        eq.scheduleIn(t, 1);
    }

    eq.run(eq.now() + 10'000); // reach the capacity high-water mark
    const std::uint64_t allocs = eq.poolAllocations();
    const std::size_t cap = eq.recordCapacity();
    const std::uint64_t executed = eq.run(eq.now() + 200'000);
    EXPECT_GT(executed, 1'000'000u);
    EXPECT_EQ(eq.poolAllocations(), allocs);
    EXPECT_EQ(eq.recordCapacity(), cap);

    running = false;
    eq.run();
}

TEST(EventQueue, OneShotPoolStopsGrowingAtHighWaterMark)
{
    EventQueue eq;
    int fired = 0;
    auto burst = [&]() {
        for (int i = 0; i < 100; i++)
            eq.scheduleIn(1 + i % 7, [&]() { fired++; });
        eq.run();
    };
    for (int round = 0; round < 4; round++)
        burst();
    const std::uint64_t allocs = eq.poolAllocations();
    EXPECT_LE(allocs, 100u);
    for (int round = 0; round < 4; round++)
        burst();
    EXPECT_EQ(eq.poolAllocations(), allocs);
    EXPECT_EQ(fired, 800);
}
