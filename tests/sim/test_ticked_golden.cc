/**
 * @file
 * Golden-file equivalence suite for the ticked DESC link engine.
 *
 * The cycle-accurate ticked loop is the oracle every fast path is
 * certified against, so its observable output must never drift: these
 * tests replay fixed scenarios (every skip mode, a VCD observer, the
 * link trace channel, and an ECC fault-injection run) and byte-compare
 * the resulting VCD file, trace lines, received blocks, and transfer
 * results against committed golden files.
 *
 * The goldens under tests/sim/golden/ were generated from the
 * pre-bit-plane scalar engine; regenerate deliberately (after proving
 * equivalence some other way) with
 *
 *     DESC_GOLDEN_REGEN=1 ./build/tests/tests_sim \
 *         --gtest_filter='TickedGolden*'
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/trace.hh"
#include "core/chunk.hh"
#include "core/link.hh"
#include "ecc/blockcodec.hh"
#include "sim/vcd.hh"

using namespace desc;
using namespace desc::core;

namespace {

std::filesystem::path
goldenDir()
{
    return std::filesystem::path(__FILE__).parent_path() / "golden";
}

std::string
readFile(const std::filesystem::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Deterministic block stream shared by generator and checker. */
std::vector<BitVec>
scenarioBlocks(unsigned block_bits, unsigned chunk_bits, unsigned n,
               std::uint32_t seed)
{
    Rng rng(seed);
    std::vector<BitVec> blocks;
    BitVec prev(block_bits);
    for (unsigned i = 0; i < n; i++) {
        BitVec b(block_bits);
        b.randomize(rng);
        if (i % 3 == 1) { // zero-rich block
            for (unsigned pos = 0; pos + chunk_bits <= block_bits;
                 pos += 2 * chunk_bits)
                b.setField(pos, chunk_bits, 0);
        } else if (i % 3 == 2) { // near-repeat of the previous block
            b = prev;
            b.flipBit((7 * i) % block_bits);
        }
        prev = b;
        blocks.push_back(b);
    }
    return blocks;
}

struct Scenario
{
    const char *name;
    DescConfig cfg;
    unsigned blocks;
    std::uint32_t seed;
    bool fault; //!< attach the deterministic toggle-fault hook
};

/**
 * Run one scenario through a ticked link with a VCD observer and the
 * link trace channel live, and render every observable output into
 * one canonical text blob: the VCD bytes, the trace lines, each
 * received block, and each TransferResult.
 */
std::string
runScenario(const Scenario &sc)
{
    namespace fs = std::filesystem;
    fs::path tmp = fs::temp_directory_path();
    fs::path vcd_path = tmp / (std::string("desc_golden_")
                               + sc.name + ".vcd");
    fs::path trace_path = tmp / (std::string("desc_golden_")
                                 + sc.name + ".trace");

    DescLink link(sc.cfg);
    link.setMode(LinkMode::Ticked);

    sim::VcdWriter vcd;
    EXPECT_TRUE(vcd.open(vcd_path.string()));
    auto sigs = vcd.addBundle(sc.name, sc.cfg.activeWires());
    vcd.endHeader();
    link.setWireHook([&](Cycle t, const WireBundle &w) {
        vcd.sampleBundle(sigs, t, w);
    });

    if (sc.fault) {
        // Deterministic DESC-signaling fault (Section 3.2.3): suppress
        // the first toggle of wire 2 for one cycle (it arrives late,
        // displacing one chunk value), and glitch the sync strobe once.
        bool armed = true;
        bool prev2 = false;
        link.setFaultHook([armed, prev2](Cycle t, WireBundle &w) mutable {
            if (t == 9)
                w.sync = !w.sync;
            bool lvl = w.data[2];
            if (armed && lvl != prev2) {
                w.data[2] = prev2;
                armed = false;
                return;
            }
            prev2 = lvl;
        });
    }

    std::FILE *trace_out = std::fopen(trace_path.string().c_str(), "w");
    EXPECT_NE(trace_out, nullptr);
    const std::uint32_t saved_mask = trace::mask();
    trace::setMask(1u << unsigned(trace::Channel::Link));
    trace::setStream(trace_out);

    std::ostringstream out;
    auto blocks = scenarioBlocks(sc.cfg.block_bits, sc.cfg.chunk_bits,
                                 sc.blocks, sc.seed);
    if (sc.fault) {
        // The faulted wire must carry a value the delayed toggle can
        // displace without leaving the chunk range: chunk c = value c
        // puts value 2 on wire 2 (decoded as 3 under the fault).
        for (unsigned c = 0; c * sc.cfg.chunk_bits < sc.cfg.block_bits;
             c++)
            blocks[0].setField(c * sc.cfg.chunk_bits, sc.cfg.chunk_bits,
                               c & ((1u << sc.cfg.chunk_bits) - 1));
    }
    for (unsigned i = 0; i < blocks.size(); i++) {
        BitVec recv;
        auto r = link.transferBlock(blocks[i], &recv);
        EXPECT_FALSE(link.usedFastPath());
        out << "block " << i << ": cycles=" << r.cycles
            << " data_flips=" << r.data_flips
            << " control_flips=" << r.control_flips
            << " skipped=" << r.skipped
            << " recv=" << recv.toHex() << "\n";
    }
    out << "tx_last=";
    for (auto v : link.tx().lastValues())
        out << unsigned(v) << ",";
    out << "\nrx_last=";
    for (auto v : link.rx().lastValues())
        out << unsigned(v) << ",";
    out << "\n";

    trace::setStream(nullptr);
    trace::setMask(saved_mask);
    std::fclose(trace_out);
    vcd.close();

    std::string result = "=== transfers ===\n" + out.str()
        + "=== vcd ===\n" + readFile(vcd_path)
        + "=== trace ===\n" + readFile(trace_path);
    fs::remove(vcd_path);
    fs::remove(trace_path);
    return result;
}

void
checkScenario(const Scenario &sc)
{
    std::string got = runScenario(sc);
    std::filesystem::path golden =
        goldenDir() / (std::string(sc.name) + ".golden");
    if (std::getenv("DESC_GOLDEN_REGEN")) {
        std::ofstream out(golden, std::ios::binary);
        out << got;
        GTEST_SKIP() << "regenerated " << golden;
    }
    ASSERT_TRUE(std::filesystem::exists(golden))
        << "missing golden file " << golden;
    std::string want = readFile(golden);
    ASSERT_EQ(want.size(), got.size())
        << "ticked-engine output size drifted for " << sc.name;
    ASSERT_EQ(want, got)
        << "ticked-engine output drifted for " << sc.name;
}

DescConfig
makeCfg(unsigned wires, unsigned chunk_bits, unsigned block_bits,
        SkipMode skip)
{
    DescConfig c;
    c.bus_wires = wires;
    c.chunk_bits = chunk_bits;
    c.block_bits = block_bits;
    c.skip = skip;
    return c;
}

} // namespace

TEST(TickedGolden, BasicMode)
{
    checkScenario({"basic8", makeCfg(8, 3, 24, SkipMode::None), 4,
                   0xb851c, false});
}

TEST(TickedGolden, ZeroSkip)
{
    checkScenario({"zero16", makeCfg(16, 4, 64, SkipMode::Zero), 5,
                   0x2e105, false});
}

TEST(TickedGolden, ZeroSkipMultiWave)
{
    checkScenario({"zwave8", makeCfg(8, 4, 64, SkipMode::Zero), 4,
                   0x3a3e2, false});
}

TEST(TickedGolden, LastValueSkip)
{
    checkScenario({"lastv8", makeCfg(8, 4, 32, SkipMode::LastValue), 6,
                   0x1a57e, false});
}

TEST(TickedGolden, AdaptiveSkip)
{
    checkScenario({"adapt8", makeCfg(8, 4, 32, SkipMode::Adaptive), 8,
                   0xada97, false});
}

TEST(TickedGolden, FaultInjection)
{
    checkScenario({"fault16", makeCfg(16, 4, 64, SkipMode::None), 3,
                   0xfa017, true});
}

TEST(TickedGolden, EccFaultInjectionStaysCorrectable)
{
    // The full ECC story on the ticked engine: a SECDED-encoded bus
    // word streams through a faulted link (one displaced toggle = one
    // corrupted chunk) and the interleaved layout of Figure 9 corrects
    // the result. The waveform and trace of a faulted ticked run are
    // pinned by the fault16 golden above; here the end-to-end decode
    // outcome is pinned.
    ecc::BlockCodec codec(kBlockBits, 64);
    DescConfig cfg = makeCfg(128 + codec.totalParityBits() / 4, 4,
                             codec.busBits(), SkipMode::None);
    DescLink link(cfg);
    link.setMode(LinkMode::Ticked);

    bool armed = true;
    bool prev = false;
    link.setFaultHook([&](Cycle, WireBundle &w) {
        bool lvl = w.data[4];
        if (armed && lvl != prev) {
            w.data[4] = prev; // delay wire 4's toggle by one cycle
            armed = false;
            return;
        }
        prev = lvl;
    });

    Rng rng(0xecc5eed);
    BitVec payload(kBlockBits);
    payload.randomize(rng);
    // Wire 4 carries bus chunk 4 (payload bits 16..19); pin it below
    // the chunk maximum so the delayed toggle decodes to value+1
    // instead of running off the code range.
    payload.setField(16, 4, 5);
    BitVec bus;
    codec.encodeInto(payload, bus);

    BitVec recv;
    link.transferBlock(bus, &recv);
    ASSERT_FALSE(link.usedFastPath());
    ASSERT_NE(recv, bus) << "fault hook did not corrupt the bus word";
    EXPECT_EQ(recv.field(16, 4), 6u) << "delayed toggle should decode +1";

    auto decoded = codec.decode(recv);
    EXPECT_FALSE(decoded.uncorrectable());
    EXPECT_GE(decoded.corrected, 1u);
    EXPECT_EQ(decoded.block, payload)
        << "interleaved SECDED failed to correct a single chunk fault";
}
