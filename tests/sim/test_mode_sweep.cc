/**
 * @file
 * Full-system differential sweep over the batched execution engines.
 *
 * Every fast path in the stack — the instruction-batch core
 * fast-forward, the flattened L2 transaction engine, and the
 * closed-form link — claims bit-identical results to its ticked
 * reference. This suite pins that claim end to end: the core x L2 x
 * link mode cross product over randomized system configurations must
 * produce identical SimResults, byte-identical stats sidecars, and
 * byte-identical run-cache entries. A link-level case additionally
 * streams enough blocks through an adaptive-skip DESC link to expose
 * any tracker drift between the two engines.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <unistd.h>
#include <vector>

#include "cache/l2mode.hh"
#include "common/rng.hh"
#include "core/link.hh"
#include "cpu/coremode.hh"
#include "encoding/scheme.hh"
#include "sim/runcache.hh"
#include "sim/statdump.hh"
#include "sim/system.hh"

using namespace desc;
using namespace desc::sim;

namespace {

/**
 * One point in the engine cross product. Encoder mode rides along:
 * scalar with the all-reference point, batched elsewhere, so the
 * sweep exercises it without doubling the matrix.
 */
struct ModePoint
{
    cpu::CoreMode core;
    cache::L2Mode l2;
    core::LinkMode link;
    encoding::EncoderMode encoder;
    const char *name;
};

constexpr ModePoint kReference = {cpu::CoreMode::Ticked,
                                  cache::L2Mode::Event,
                                  core::LinkMode::Ticked,
                                  encoding::EncoderMode::Scalar,
                                  "all-reference"};

const std::vector<ModePoint> &
fastPoints()
{
    using cpu::CoreMode;
    using cache::L2Mode;
    using core::LinkMode;
    using encoding::EncoderMode;
    static const std::vector<ModePoint> points = {
        {CoreMode::Fast, L2Mode::Event, LinkMode::Ticked,
         EncoderMode::Batched, "fast-core"},
        {CoreMode::Ticked, L2Mode::Flat, LinkMode::Ticked,
         EncoderMode::Batched, "flat-l2"},
        {CoreMode::Ticked, L2Mode::Event, LinkMode::Fast,
         EncoderMode::Batched, "fast-link"},
        {CoreMode::Fast, L2Mode::Flat, LinkMode::Ticked,
         EncoderMode::Batched, "fast-core+flat-l2"},
        {CoreMode::Fast, L2Mode::Event, LinkMode::Fast,
         EncoderMode::Batched, "fast-core+fast-link"},
        {CoreMode::Ticked, L2Mode::Flat, LinkMode::Fast,
         EncoderMode::Batched, "flat-l2+fast-link"},
        {CoreMode::Fast, L2Mode::Flat, LinkMode::Fast,
         EncoderMode::Batched, "all-fast"},
    };
    return points;
}

/** Force one point's modes for the enclosing scope. */
struct ForcedModes
{
    explicit ForcedModes(const ModePoint &p)
    {
        cpu::setDefaultCoreMode(p.core);
        cache::setDefaultL2Mode(p.l2);
        core::setDefaultLinkMode(p.link);
        encoding::setDefaultEncoderMode(p.encoder);
    }

    ~ForcedModes()
    {
        cpu::setDefaultCoreMode(std::nullopt);
        cache::setDefaultL2Mode(std::nullopt);
        core::setDefaultLinkMode(std::nullopt);
        encoding::setDefaultEncoderMode(std::nullopt);
    }
};

/** A fresh private cache directory, removed on destruction. */
struct TempCacheDir
{
    std::string dir;

    TempCacheDir()
    {
        static int counter = 0;
        dir = (std::filesystem::temp_directory_path()
               / ("desc-modesweep-test-" + std::to_string(getpid())
                  + "-" + std::to_string(counter++)))
                  .string();
        std::filesystem::create_directories(dir);
    }

    ~TempCacheDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }
};

/**
 * Randomized configurations: a handful of (app, scheme, seed,
 * budget) draws from a fixed-seed generator, so the sweep walks a
 * different-but-reproducible slice of the space than the
 * hand-written system tests.
 */
std::vector<SystemConfig>
sweepConfigs()
{
    Rng rng(0x5eed5eedULL);
    const auto &apps = workloads::parallelApps();
    const encoding::SchemeKind schemes[] = {
        encoding::SchemeKind::DescZeroSkip,
        encoding::SchemeKind::DescLastValueSkip,
        encoding::SchemeKind::DescBasic,
    };
    std::vector<SystemConfig> cfgs;
    for (int i = 0; i < 3; i++) {
        auto cfg = baselineConfig(apps[rng.below(apps.size())]);
        cfg.insts_per_thread = 1000 + rng.below(1000);
        cfg.seed ^= rng.next();
        applyScheme(cfg, schemes[rng.below(std::size(schemes))]);
        cfgs.push_back(cfg);
    }
    // One OoO point: the fast-core engine has a separate inline-chain
    // implementation there.
    auto ooo = baselineConfig(workloads::findApp("sjeng"));
    ooo.cpu = CpuKind::OutOfOrder;
    ooo.threads_per_core = 1;
    ooo.insts_per_thread = 3000;
    applyScheme(ooo, encoding::SchemeKind::DescZeroSkip);
    cfgs.push_back(ooo);
    return cfgs;
}

/** The sidecar registry JSON for one finished run. */
std::string
sidecarJson(const SystemConfig &cfg, const AppRun &run)
{
    auto reg = buildRunRegistry(cfg, run, configHash(cfg));
    std::ostringstream os;
    writeRegistryJson(os, reg);
    return os.str();
}

/** The serialized run-cache entry bytes for one finished run. */
std::string
cacheEntryBytes(const SystemConfig &cfg, const AppRun &run)
{
    TempCacheDir tmp;
    RunCache cache(tmp.dir);
    cache.store(configHash(cfg), run);
    for (const auto &entry :
         std::filesystem::directory_iterator(tmp.dir)) {
        std::ifstream in(entry.path(), std::ios::binary);
        std::ostringstream bytes;
        bytes << in.rdbuf();
        return bytes.str();
    }
    ADD_FAILURE() << "run cache stored no entry";
    return {};
}

} // namespace

TEST(ModeSweep, CrossProductMatchesReferenceByteExactly)
{
    for (const auto &cfg : sweepConfigs()) {
        std::optional<AppRun> ref;
        {
            ForcedModes forced(kReference);
            ref = runScaledApp(scaledConfig(cfg));
        }
        const std::string ref_json = sidecarJson(cfg, *ref);
        const std::string ref_entry = cacheEntryBytes(cfg, *ref);
        ASSERT_FALSE(ref_json.empty());
        ASSERT_FALSE(ref_entry.empty());

        for (const auto &point : fastPoints()) {
            std::optional<AppRun> got;
            {
                ForcedModes forced(point);
                got = runScaledApp(scaledConfig(cfg));
            }
            SCOPED_TRACE(std::string(cfg.app.name) + " / " + point.name);
            EXPECT_EQ(got->result.cycles, ref->result.cycles);
            EXPECT_EQ(got->result.instructions, ref->result.instructions);
            // The sidecar registry serializes every harvested
            // statistic (perf, l1/l2, link flips, chunk histogram,
            // dram, energy), so byte-identical JSON pins them all at
            // full precision in one comparison.
            EXPECT_EQ(sidecarJson(cfg, *got), ref_json);
            EXPECT_EQ(cacheEntryBytes(cfg, *got), ref_entry);
        }
    }
}

TEST(ModeSweep, AdaptiveTrackerDoesNotDriftAcrossLinkEngines)
{
    // The adaptive skip tracker carries per-wire saturating counters
    // across transfers; a fast path that mis-updates them stays
    // bit-identical for a while and drifts later. Stream well past
    // the counter saturation horizon and require lockstep equality.
    core::DescConfig cfg;
    cfg.bus_wires = 128;
    cfg.chunk_bits = 4;
    cfg.skip = core::SkipMode::Adaptive;

    core::DescLink fast(cfg), ticked(cfg);
    fast.setMode(core::LinkMode::Fast);
    ticked.setMode(core::LinkMode::Ticked);

    Rng rng(0xada9717eULL);
    BitVec prev(cfg.block_bits);
    constexpr int kBlocks = 160; // > 120-block drift horizon
    for (int b = 0; b < kBlocks; b++) {
        BitVec block(cfg.block_bits);
        for (unsigned pos = 0; pos < block.width(); pos += cfg.chunk_bits) {
            double u = rng.uniform();
            std::uint64_t v;
            if (u < 0.4)
                v = 0;
            else if (u < 0.7)
                v = prev.field(pos, cfg.chunk_bits);
            else
                v = rng.below(std::uint64_t{1} << cfg.chunk_bits);
            block.setField(pos, cfg.chunk_bits, v);
        }
        prev = block;

        BitVec got_fast(cfg.block_bits), got_ticked(cfg.block_bits);
        auto rf = fast.transferBlock(block, &got_fast);
        auto rt = ticked.transferBlock(block, &got_ticked);
        ASSERT_EQ(rf.cycles, rt.cycles) << "block " << b;
        ASSERT_EQ(rf.data_flips, rt.data_flips) << "block " << b;
        ASSERT_EQ(rf.control_flips, rt.control_flips) << "block " << b;
        ASSERT_EQ(rf.skipped, rt.skipped) << "block " << b;
        ASSERT_EQ(got_fast, got_ticked) << "block " << b;
        ASSERT_TRUE(fast.tx().adaptive() == ticked.tx().adaptive())
            << "tx adaptive counters drifted, block " << b;
        ASSERT_TRUE(fast.rx().adaptive() == ticked.rx().adaptive())
            << "rx adaptive counters drifted, block " << b;
    }
}
