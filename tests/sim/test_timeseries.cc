/**
 * @file
 * Tests for the periodic stat time-series: strict DESC_STATS_EVERY
 * parsing, bit-identical simulation results with snapshots on, the
 * floor((cycles-1)/every) row-count contract, and byte-identical CSV
 * output under the parallel runner.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/runcache.hh"
#include "sim/runner.hh"
#include "sim/system.hh"
#include "sim/timeseries.hh"

using namespace desc;
using namespace desc::sim;

namespace {

/** Restores the snapshot override and the CSV redirect, and drops
 *  buffered rows, so tests cannot leak time-series state. */
struct TimeseriesGuard
{
    TimeseriesGuard()
    {
        timeseries::setEveryForTest(0);
        timeseries::resetForTest();
    }

    ~TimeseriesGuard()
    {
        // ~0 would mean "no override"; 0 keeps snapshots off for the
        // rest of the process regardless of the environment. The CSV
        // stays redirected into the temp dir so the exit-time flush
        // cannot drop a stray file into the test working directory.
        timeseries::setEveryForTest(0);
        timeseries::setPathForTest(
            (std::filesystem::temp_directory_path()
             / "desc-ts-atexit.csv").string());
        timeseries::resetForTest();
    }
};

SystemConfig
smallConfig(const char *app = "FFT")
{
    SystemConfig cfg = baselineConfig(workloads::findApp(app));
    cfg.insts_per_thread = 3000;
    return cfg;
}

std::string
tempCsvPath(const char *tag)
{
    return (std::filesystem::temp_directory_path()
            / (std::string("desc-ts-") + tag + "-"
               + std::to_string(::getpid()) + ".csv"))
        .string();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::size_t
dataRows(const std::string &csv)
{
    std::size_t rows = 0;
    bool header = true;
    std::stringstream ss(csv);
    std::string line;
    while (std::getline(ss, line)) {
        if (header) {
            header = false;
            continue;
        }
        if (!line.empty())
            rows++;
    }
    return rows;
}

} // namespace

TEST(TimeseriesSpec, StrictParsingRejectsGarbage)
{
    using timeseries::parseEverySpec;
    EXPECT_EQ(parseEverySpec(nullptr), 0u);
    EXPECT_EQ(parseEverySpec(""), 0u);
    EXPECT_EQ(parseEverySpec("0"), 0u);
    EXPECT_EQ(parseEverySpec("-5"), 0u);
    EXPECT_EQ(parseEverySpec("-0"), 0u);
    EXPECT_EQ(parseEverySpec("10k"), 0u);
    EXPECT_EQ(parseEverySpec("cycles"), 0u);
    EXPECT_EQ(parseEverySpec("1.5"), 0u);
    EXPECT_EQ(parseEverySpec("1"), 1u);
    EXPECT_EQ(parseEverySpec("10000"), 10000u);
    // Boundary: kMaxEvery is accepted, one past it is not, and a
    // value beyond 64 bits overflows to rejection.
    EXPECT_EQ(parseEverySpec("1000000000000000"), timeseries::kMaxEvery);
    EXPECT_EQ(parseEverySpec("1000000000000001"), 0u);
    EXPECT_EQ(parseEverySpec("18446744073709551616"), 0u);
}

TEST(Timeseries, SnapshotsDoNotPerturbTheSimulation)
{
    TimeseriesGuard guard;
    auto cfg = smallConfig();

    timeseries::setEveryForTest(0);
    auto plain = runSystem(cfg);

    timeseries::resetForTest();
    timeseries::setEveryForTest(500);
    auto segmented = runSystem(cfg);

    EXPECT_EQ(plain.cycles, segmented.cycles);
    EXPECT_EQ(plain.instructions, segmented.instructions);
    EXPECT_EQ(plain.hierarchy.l2_hits.value(),
              segmented.hierarchy.l2_hits.value());
    EXPECT_EQ(plain.hierarchy.l2_misses.value(),
              segmented.hierarchy.l2_misses.value());
    EXPECT_EQ(plain.hierarchy.data_flips, segmented.hierarchy.data_flips);
    EXPECT_EQ(plain.hierarchy.ctrl_flips, segmented.hierarchy.ctrl_flips);
    EXPECT_EQ(plain.dram_reads, segmented.dram_reads);
    EXPECT_EQ(plain.dram_writes, segmented.dram_writes);
}

TEST(Timeseries, RowCountMatchesTheCadence)
{
    TimeseriesGuard guard;
    auto cfg = smallConfig();
    const std::uint64_t every = 700;

    timeseries::setEveryForTest(every);
    timeseries::resetForTest();
    auto r = runSystem(cfg);

    std::string path = tempCsvPath("rowcount");
    timeseries::setPathForTest(path);
    timeseries::flushForTest();
    std::string csv = readFile(path);
    std::remove(path.c_str());

    // Snapshots land at every multiple of `every` strictly below the
    // final cycle count (the run's own end is the report, not a row).
    EXPECT_EQ(dataRows(csv), (r.cycles - 1) / every);

    // Rows are cumulative: the last row's counters are bounded by the
    // run totals.
    std::stringstream ss(csv);
    std::string line, last;
    std::getline(ss, line); // header
    while (std::getline(ss, line))
        if (!line.empty())
            last = line;
    ASSERT_FALSE(last.empty());
    std::uint64_t cycle = 0, instructions = 0;
    char label[128];
    ASSERT_EQ(std::sscanf(last.c_str(), "%127[^,],%llu,%llu", label,
                          (unsigned long long *)&cycle,
                          (unsigned long long *)&instructions),
              3);
    EXPECT_LT(cycle, r.cycles);
    EXPECT_LE(instructions, r.instructions);
}

TEST(Timeseries, ParallelRunnerProducesByteIdenticalCsv)
{
    TimeseriesGuard guard;
    // Fresh results every time: a cache hit would skip the simulation
    // and record no time-series rows.
    setGlobalRunCacheDir("");

    std::vector<SystemConfig> cfgs;
    for (const char *app : {"FFT", "Radix"}) {
        for (auto kind : {encoding::SchemeKind::Binary,
                          encoding::SchemeKind::DescZeroSkip}) {
            auto cfg = smallConfig(app);
            applyScheme(cfg, kind);
            cfgs.push_back(cfg);
        }
    }

    timeseries::setEveryForTest(1000);

    auto batch = [&](const char *tag) {
        timeseries::resetForTest();
        Runner runner(4);
        runner.run(cfgs);
        std::string path = tempCsvPath(tag);
        timeseries::setPathForTest(path);
        timeseries::flushForTest();
        std::string csv = readFile(path);
        std::remove(path.c_str());
        return csv;
    };

    std::string a = batch("batch-a");
    std::string b = batch("batch-b");
    EXPECT_FALSE(a.empty());
    EXPECT_GT(dataRows(a), 0u);
    EXPECT_EQ(a, b) << "time-series CSV not deterministic under the "
                       "parallel runner";
}
