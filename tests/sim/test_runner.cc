/**
 * @file
 * Integration tests for the parallel experiment runner: a parallel
 * batch is bit-identical to a serial one, submission order is
 * preserved, and a warm result cache serves a whole batch without
 * executing a single simulation (the cache-hit counter acceptance
 * check).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "sim/runcache.hh"
#include "sim/runner.hh"

using namespace desc;
using namespace desc::sim;

namespace {

SystemConfig
tinyConfig(const char *app, std::uint64_t insts = 1000)
{
    SystemConfig cfg = baselineConfig(workloads::findApp(app));
    cfg.cores = 2;
    cfg.threads_per_core = 2;
    cfg.insts_per_thread = insts;
    return cfg;
}

/** A varied little batch: different apps, schemes, and budgets. */
std::vector<SystemConfig>
smallBatch()
{
    std::vector<SystemConfig> cfgs;
    cfgs.push_back(tinyConfig("FFT"));
    auto desc_cfg = tinyConfig("LU");
    applyScheme(desc_cfg, encoding::SchemeKind::DescZeroSkip);
    cfgs.push_back(desc_cfg);
    cfgs.push_back(tinyConfig("Barnes", 2000));
    auto bic = tinyConfig("Radix");
    applyScheme(bic, encoding::SchemeKind::BusInvert);
    cfgs.push_back(bic);
    return cfgs;
}

struct TempCacheDir
{
    std::string dir;

    TempCacheDir()
    {
        static int counter = 0;
        dir = (std::filesystem::temp_directory_path()
               / ("desc-runner-test-" + std::to_string(getpid())
                  + "-" + std::to_string(counter++)))
                  .string();
        std::filesystem::create_directories(dir);
    }

    ~TempCacheDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }
};

/** Uncached global state for tests that count simulations. */
struct NoCache
{
    NoCache() { setGlobalRunCacheDir(""); }
    ~NoCache() { setGlobalRunCacheDir(""); }
};

void
expectBitIdentical(const AppRun &a, const AppRun &b)
{
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.result.instructions, b.result.instructions);
    EXPECT_EQ(a.result.seconds, b.result.seconds);
    EXPECT_EQ(a.result.hierarchy.data_flips,
              b.result.hierarchy.data_flips);
    EXPECT_EQ(a.result.hierarchy.ctrl_flips,
              b.result.hierarchy.ctrl_flips);
    EXPECT_EQ(a.result.hierarchy.l2_requests.value(),
              b.result.hierarchy.l2_requests.value());
    EXPECT_EQ(a.result.hierarchy.hit_latency.mean(),
              b.result.hierarchy.hit_latency.mean());
    EXPECT_EQ(a.l2.total(), b.l2.total());
    EXPECT_EQ(a.processor.total(), b.processor.total());
}

} // namespace

TEST(Runner, DefaultJobsIsPositive)
{
    EXPECT_GE(Runner::defaultJobs(), 1u);
}

namespace {

/** Sets DESC_SIM_JOBS for one test and restores it afterwards. */
struct JobsEnvGuard
{
    std::string saved;
    bool was_set;

    explicit JobsEnvGuard(const char *value)
    {
        const char *old = getenv("DESC_SIM_JOBS");
        was_set = old != nullptr;
        if (was_set)
            saved = old;
        if (value)
            setenv("DESC_SIM_JOBS", value, 1);
        else
            unsetenv("DESC_SIM_JOBS");
    }

    ~JobsEnvGuard()
    {
        if (was_set)
            setenv("DESC_SIM_JOBS", saved.c_str(), 1);
        else
            unsetenv("DESC_SIM_JOBS");
    }
};

} // namespace

TEST(Runner, JobsEnvValidValueIsHonored)
{
    JobsEnvGuard env("3");
    EXPECT_EQ(Runner::defaultJobs(), 3u);
}

TEST(Runner, JobsEnvRejectsZeroNegativeAndGarbage)
{
    // Every malformed value falls back to the hardware default; the
    // parser must not crash, wrap a negative into a huge count, or
    // accept trailing junk.
    unsigned fallback;
    {
        JobsEnvGuard env(nullptr);
        fallback = Runner::defaultJobs();
    }
    for (const char *bad :
         {"0", "-1", "-4096", "banana", "3banana", "", " ",
          "99999999999999999999", "4097", "0x10"}) {
        JobsEnvGuard env(bad);
        EXPECT_EQ(Runner::defaultJobs(), fallback)
            << "DESC_SIM_JOBS=\"" << bad << '"';
    }
}

TEST(Runner, JobsEnvBoundaryValues)
{
    {
        JobsEnvGuard env("1");
        EXPECT_EQ(Runner::defaultJobs(), 1u);
    }
    {
        JobsEnvGuard env("4096");
        EXPECT_EQ(Runner::defaultJobs(), 4096u);
    }
}

TEST(Runner, ParallelBatchMatchesSerialBitForBit)
{
    NoCache nc;
    auto cfgs = smallBatch();

    Runner serial(1);
    Runner parallel(4);
    auto a = serial.run(cfgs);
    auto b = parallel.run(cfgs);

    ASSERT_EQ(a.size(), cfgs.size());
    ASSERT_EQ(b.size(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); i++)
        expectBitIdentical(a[i], b[i]);
}

TEST(Runner, PreservesSubmissionOrder)
{
    NoCache nc;
    auto cfgs = smallBatch();

    Runner runner(3);
    auto runs = runner.run(cfgs);

    // Each slot must hold its own config's result: instruction counts
    // identify the budget, serial runApp identifies everything else.
    for (std::size_t i = 0; i < cfgs.size(); i++) {
        EXPECT_EQ(runs[i].result.instructions,
                  cfgs[i].cores * cfgs[i].threads_per_core
                      * cfgs[i].insts_per_thread)
            << "slot " << i;
        expectBitIdentical(runs[i], runApp(cfgs[i]));
    }
}

TEST(Runner, EmptyBatchReturnsEmpty)
{
    Runner runner(2);
    EXPECT_TRUE(runner.run({}).empty());
}

TEST(Runner, WarmCacheExecutesZeroSimulations)
{
    TempCacheDir tmp;
    setGlobalRunCacheDir(tmp.dir);
    auto cfgs = smallBatch();

    Runner runner(4);
    auto before = runStats();
    auto cold = runner.run(cfgs);
    auto mid = runStats();
    EXPECT_EQ(mid.simulated.value() - before.simulated.value(),
              cfgs.size());
    EXPECT_EQ(mid.cache_stores.value() - before.cache_stores.value(),
              cfgs.size());

    // Warm re-run: every point must come from the cache.
    auto warm = runner.run(cfgs);
    auto after = runStats();
    EXPECT_EQ(after.simulated.value() - mid.simulated.value(), 0u);
    EXPECT_EQ(after.cache_hits.value() - mid.cache_hits.value(),
              cfgs.size());

    for (std::size_t i = 0; i < cfgs.size(); i++)
        expectBitIdentical(cold[i], warm[i]);

    setGlobalRunCacheDir("");
}

TEST(Runner, CacheIsSharedAcrossJobCounts)
{
    TempCacheDir tmp;
    setGlobalRunCacheDir(tmp.dir);
    auto cfgs = smallBatch();

    Runner wide(4);
    auto cold = wide.run(cfgs);

    Runner narrow(1);
    auto before = runStats();
    auto warm = narrow.run(cfgs);
    auto after = runStats();
    EXPECT_EQ(after.simulated.value() - before.simulated.value(), 0u);

    for (std::size_t i = 0; i < cfgs.size(); i++)
        expectBitIdentical(cold[i], warm[i]);

    setGlobalRunCacheDir("");
}

TEST(Runner, SummaryLineMentionsActivity)
{
    NoCache nc;
    Runner runner(2);
    runner.run({tinyConfig("FFT")});
    auto line = runSummaryLine();
    EXPECT_NE(line.find("[runner]"), std::string::npos);
    EXPECT_NE(line.find("simulated"), std::string::npos);
    EXPECT_NE(line.find("cached"), std::string::npos);
}
