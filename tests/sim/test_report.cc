/**
 * @file
 * Smoke tests for the run-report rendering.
 */

#include <gtest/gtest.h>

#include "sim/report.hh"

using namespace desc;
using namespace desc::sim;

namespace {

AppRun
tinyRun(SystemConfig &cfg)
{
    cfg = baselineConfig(workloads::findApp("Art"));
    cfg.insts_per_thread = 2000;
    AppRun run;
    run.result = runSystem(cfg);
    run.l2 = computeL2Energy(cfg, run.result);
    run.processor = computeProcessorEnergy(cfg, run.result, run.l2);
    return run;
}

} // namespace

TEST(Report, PrintRunReportDoesNotCrash)
{
    SystemConfig cfg;
    auto run = tinyRun(cfg);
    printRunReport(cfg, run);
}

TEST(Report, SummaryContainsAppAndScheme)
{
    SystemConfig cfg;
    auto run = tinyRun(cfg);
    std::string s = summarizeRun(cfg, run);
    EXPECT_NE(s.find("Art"), std::string::npos);
    EXPECT_NE(s.find("Binary"), std::string::npos);
    EXPECT_NE(s.find("cycles="), std::string::npos);
}
