/**
 * @file
 * Unit tests for the VCD waveform writer: header layout, change-only
 * value emission, bundle sampling, and time-ordering enforcement.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>

#include "core/chunk.hh"
#include "core/link.hh"
#include "sim/vcd.hh"

using namespace desc;
using namespace desc::sim;

namespace {

/** A unique temp .vcd path, removed on destruction. */
struct TempVcd
{
    std::string path;

    TempVcd()
    {
        static int counter = 0;
        path = (std::filesystem::temp_directory_path()
                / ("desc-vcd-test-" + std::to_string(getpid()) + "-"
                   + std::to_string(counter++) + ".vcd"))
                   .string();
    }

    ~TempVcd()
    {
        std::error_code ec;
        std::filesystem::remove(path, ec);
    }

    std::string
    contents() const
    {
        std::ifstream in(path);
        return std::string(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    }
};

} // namespace

TEST(Vcd, HeaderDeclaresScopedSignals)
{
    TempVcd tmp;
    VcdWriter vcd;
    ASSERT_TRUE(vcd.open(tmp.path));
    auto sigs = vcd.addBundle("fig5", 2);
    vcd.endHeader();
    vcd.close();

    std::string text = tmp.contents();
    EXPECT_NE(text.find("$timescale 1ns $end"), std::string::npos);
    EXPECT_NE(text.find("$scope module fig5 $end"), std::string::npos);
    EXPECT_NE(text.find("reset_skip $end"), std::string::npos);
    EXPECT_NE(text.find("data0 $end"), std::string::npos);
    EXPECT_NE(text.find("data1 $end"), std::string::npos);
    EXPECT_NE(text.find("sync $end"), std::string::npos);
    EXPECT_NE(text.find("$upscope $end"), std::string::npos);
    EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
    EXPECT_EQ(sigs.data.size(), std::size_t{2});
}

TEST(Vcd, FirstTimestepDumpsEverySignal)
{
    TempVcd tmp;
    VcdWriter vcd;
    ASSERT_TRUE(vcd.open(tmp.path));
    unsigned a = vcd.addSignal("top", "a");
    unsigned b = vcd.addSignal("top", "b");
    vcd.endHeader();
    vcd.set(a, true);
    vcd.set(b, false);
    vcd.timestep(0);
    vcd.close();

    std::string text = tmp.contents();
    EXPECT_NE(text.find("$dumpvars"), std::string::npos);
    EXPECT_NE(text.find("#0\n"), std::string::npos);
    EXPECT_NE(text.find("1!"), std::string::npos); // a = 1
    EXPECT_NE(text.find("0\""), std::string::npos); // b = 0
}

TEST(Vcd, OnlyChangesAreEmitted)
{
    TempVcd tmp;
    VcdWriter vcd;
    ASSERT_TRUE(vcd.open(tmp.path));
    unsigned a = vcd.addSignal("top", "a");
    vcd.endHeader();

    vcd.set(a, true);
    vcd.timestep(0);
    vcd.set(a, true); // unchanged: no #1 stamp at all
    vcd.timestep(1);
    vcd.set(a, false); // changed: #2 stamp
    vcd.timestep(2);
    vcd.close();

    std::string text = tmp.contents();
    EXPECT_NE(text.find("#0\n"), std::string::npos);
    EXPECT_EQ(text.find("#1\n"), std::string::npos);
    EXPECT_NE(text.find("#2\n0!"), std::string::npos);
}

TEST(Vcd, SampleBundleTracksWireLevels)
{
    TempVcd tmp;
    VcdWriter vcd;
    ASSERT_TRUE(vcd.open(tmp.path));
    auto sigs = vcd.addBundle("link", 2);
    vcd.endHeader();

    core::WireBundle w(2);
    w.reset_skip = true;
    w.data[0] = false;
    w.data[1] = true;
    w.sync = false;
    vcd.sampleBundle(sigs, 0, w);

    w.data[0] = true;
    vcd.sampleBundle(sigs, 1, w);
    vcd.close();

    std::string text = tmp.contents();
    // Second sample: only data[0] changed.
    auto t1 = text.find("#1\n");
    ASSERT_NE(t1, std::string::npos);
    std::string after = text.substr(t1);
    EXPECT_NE(after.find("1\""), std::string::npos); // data0 id is "
    EXPECT_EQ(after.find("1!"), std::string::npos);  // reset unchanged
}

TEST(Vcd, LinkWireHookProducesLoadableDump)
{
    // End-to-end: a real DESC transfer recorded through the DescLink
    // wire hook yields a declaration-complete, time-ordered file.
    TempVcd tmp;
    VcdWriter vcd;
    ASSERT_TRUE(vcd.open(tmp.path));

    core::DescConfig cfg;
    cfg.bus_wires = 4;
    cfg.chunk_bits = 3;
    cfg.block_bits = 12;
    cfg.skip = core::SkipMode::Zero;

    auto sigs = vcd.addBundle("link", cfg.activeWires());
    vcd.endHeader();

    core::DescLink link(cfg);
    unsigned samples = 0;
    link.setWireHook([&](Cycle t, const core::WireBundle &w) {
        vcd.sampleBundle(sigs, t, w);
        samples++;
    });
    auto result = link.transferBlock(
        core::joinChunks({0, 0, 5, 0}, cfg.chunk_bits, cfg.block_bits));
    vcd.close();

    EXPECT_EQ(samples, result.cycles);
    std::string text = tmp.contents();
    EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
    EXPECT_NE(text.find("$dumpvars"), std::string::npos);
    EXPECT_NE(text.find("#0"), std::string::npos);
}

TEST(VcdDeath, NonIncreasingTimeAsserts)
{
    TempVcd tmp;
    VcdWriter vcd;
    ASSERT_TRUE(vcd.open(tmp.path));
    unsigned a = vcd.addSignal("top", "a");
    vcd.endHeader();
    vcd.set(a, true);
    vcd.timestep(5);
    vcd.set(a, false);
    EXPECT_DEATH(vcd.timestep(5), "strictly increasing");
}

TEST(VcdDeath, DeclarationAfterHeaderAsserts)
{
    TempVcd tmp;
    VcdWriter vcd;
    ASSERT_TRUE(vcd.open(tmp.path));
    vcd.addSignal("top", "a");
    vcd.endHeader();
    EXPECT_DEATH(vcd.addSignal("top", "b"), "after endHeader");
}

TEST(Vcd, OpenFailureWarnsAndReturnsFalse)
{
    VcdWriter vcd;
    EXPECT_FALSE(vcd.open("/nonexistent-dir/x/y.vcd"));
    EXPECT_FALSE(vcd.isOpen());
}
