/**
 * @file
 * Unit tests for the machine-readable stat dumps: registry
 * construction from a finished run, JSON/CSV serialization, and
 * registry equality across a run-cache store/load round-trip.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>
#include <unistd.h>

#include "sim/runcache.hh"
#include "sim/statdump.hh"

using namespace desc;
using namespace desc::sim;

namespace {

SystemConfig
tinyConfig(const char *app = "FFT")
{
    SystemConfig cfg = baselineConfig(workloads::findApp(app));
    cfg.cores = 2;
    cfg.threads_per_core = 2;
    cfg.insts_per_thread = 1000;
    return cfg;
}

/** A fresh private cache directory, removed on destruction. */
struct TempCacheDir
{
    std::string dir;

    TempCacheDir()
    {
        static int counter = 0;
        dir = (std::filesystem::temp_directory_path()
               / ("desc-statdump-test-" + std::to_string(getpid())
                  + "-" + std::to_string(counter++)))
                  .string();
        std::filesystem::create_directories(dir);
    }

    ~TempCacheDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }
};

std::string
registryJson(const StatRegistry &reg)
{
    std::ostringstream os;
    writeRegistryJson(os, reg);
    return os.str();
}

} // namespace

TEST(StatDump, RegistryMatchesRunFields)
{
    auto cfg = scaledConfig(tinyConfig());
    cfg.l2.collect_chunk_stats = true;
    AppRun run = runScaledApp(cfg);
    auto key = configHash(cfg);

    StatRegistry reg = buildRunRegistry(cfg, run, key);
    const auto &r = run.result;
    const auto &h = r.hierarchy;

    EXPECT_EQ(reg.text("run.app"), cfg.app.name);
    EXPECT_EQ(reg.integer("run.config_hash"), key);
    EXPECT_EQ(reg.integer("run.cores"), cfg.cores);

    EXPECT_EQ(reg.integer("perf.cycles"), r.cycles);
    EXPECT_EQ(reg.integer("perf.instructions"), r.instructions);
    EXPECT_DOUBLE_EQ(reg.scalar("perf.ipc"),
                     double(r.instructions) / double(r.cycles));

    EXPECT_EQ(reg.counterValue("l1.d.accesses"),
              h.l1d_accesses.value());
    EXPECT_EQ(reg.counterValue("l2.requests"), h.l2_requests.value());
    EXPECT_EQ(reg.counterValue("l2.hits"), h.l2_hits.value());
    EXPECT_EQ(reg.average("l2.hit_latency").count(),
              h.hit_latency.count());
    EXPECT_DOUBLE_EQ(reg.average("l2.transfer_window").mean(),
                     h.transfer_window.mean());

    EXPECT_EQ(reg.histogram("chunks.histogram").total(),
              r.chunks.histogram().total());
    EXPECT_EQ(reg.integer("dram.reads"), r.dram_reads);

    EXPECT_DOUBLE_EQ(reg.scalar("energy.l2.total"), run.l2.total());
    EXPECT_DOUBLE_EQ(reg.scalar("energy.processor.total"),
                     run.processor.total());

    // The whole tree is present, not just the spot checks above.
    EXPECT_GE(reg.size(), std::size_t{40});
}

TEST(StatDump, JsonNestsDottedPaths)
{
    StatRegistry reg;
    reg.addInt("a", 1, "test stat");
    reg.addScalar("b.c", 0.5, "test stat");
    reg.addText("b.d", "hi", "test stat");
    reg.addInt("e.f.g", 2, "test stat");

    EXPECT_EQ(registryJson(reg),
              "{\n"
              "  \"a\": 1,\n"
              "  \"b\": {\n"
              "    \"c\": 0.5,\n"
              "    \"d\": \"hi\"\n"
              "  },\n"
              "  \"e\": {\n"
              "    \"f\": {\n"
              "      \"g\": 2\n"
              "    }\n"
              "  }\n"
              "}");
}

TEST(StatDump, JsonCompositeAndSpecialValues)
{
    StatRegistry reg;
    Average a;
    a.sample(2.0);
    a.sample(4.0);
    reg.add("lat", a, "test stat");
    Histogram h(2);
    h.sample(0);
    h.sample(1);
    h.sample(5); // overflow
    reg.add("hist", h, "test stat");
    reg.addScalar("nan", std::nan(""), "test stat");
    reg.addText("quoted", "a\"b\nc", "test stat");

    std::string json = registryJson(reg);
    EXPECT_NE(json.find("\"lat\": {\"count\": 2, \"sum\": 6, "
                        "\"mean\": 3, \"min\": 2, \"max\": 4}"),
              std::string::npos);
    EXPECT_NE(json.find("\"hist\": {\"total\": 3, \"overflow\": 1, "
                        "\"mean\": 0.5, \"bins\": [1, 1]}"),
              std::string::npos);
    EXPECT_NE(json.find("\"nan\": null"), std::string::npos);
    EXPECT_NE(json.find("\"quoted\": \"a\\\"b\\nc\""),
              std::string::npos);
}

TEST(StatDump, CsvFlattensCompositeStats)
{
    StatRegistry reg;
    Counter c;
    c.inc(3);
    reg.add("hits", c, "test stat");
    Average a;
    a.sample(2.0);
    a.sample(4.0);
    reg.add("lat", a, "test stat");
    Histogram h(2);
    h.sample(0);
    h.sample(1);
    h.sample(5);
    reg.add("hist", h, "test stat");

    std::ostringstream os;
    writeRegistryCsv(os, reg, "r");
    EXPECT_EQ(os.str(),
              "r,hist.total,3\n"
              "r,hist.overflow,1\n"
              "r,hist.mean,0.5\n"
              "r,hist.bin.0,1\n"
              "r,hist.bin.1,1\n"
              "r,hits,3\n"
              "r,lat.count,2\n"
              "r,lat.sum,6\n"
              "r,lat.mean,3\n");
}

TEST(StatDump, RegistryRestoresThroughTheRunCache)
{
    // A run reloaded from the on-disk cache must dump the exact same
    // registry as the run that was simulated — bit-for-bit, since the
    // cache stores full-precision doubles.
    TempCacheDir tmp;
    RunCache cache(tmp.dir);
    ASSERT_TRUE(cache.enabled());

    auto cfg = scaledConfig(tinyConfig("LU"));
    cfg.l2.collect_chunk_stats = true;
    AppRun run = runScaledApp(cfg);
    auto key = configHash(cfg);
    cache.store(key, run);

    auto loaded = cache.load(key);
    ASSERT_TRUE(loaded.has_value());

    EXPECT_EQ(registryJson(buildRunRegistry(cfg, *loaded, key)),
              registryJson(buildRunRegistry(cfg, run, key)));
}
