/**
 * @file
 * Tests for the energy accounting layer: the composition rules that
 * turn activity counts into the figures' energy numbers.
 */

#include <gtest/gtest.h>

#include "sim/energy_account.hh"
#include "sim/experiment.hh"

using namespace desc;
using namespace desc::sim;

namespace {

AppRun
quickRun(encoding::SchemeKind kind, const char *app = "FFT")
{
    SystemConfig cfg = baselineConfig(workloads::findApp(app));
    cfg.insts_per_thread = 5000;
    applyScheme(cfg, kind);
    AppRun run;
    run.result = runSystem(cfg);
    run.l2 = computeL2Energy(cfg, run.result);
    run.processor = computeProcessorEnergy(cfg, run.result, run.l2);
    return run;
}

} // namespace

TEST(EnergyAccount, ComponentsArePositive)
{
    auto run = quickRun(encoding::SchemeKind::Binary);
    EXPECT_GT(run.l2.htree_dynamic, 0.0);
    EXPECT_GT(run.l2.array_dynamic, 0.0);
    EXPECT_GT(run.l2.static_energy, 0.0);
    EXPECT_EQ(run.l2.aux_dynamic, 0.0); // binary has no aux logic
    EXPECT_NEAR(run.l2.total(),
                run.l2.htree_dynamic + run.l2.array_dynamic
                    + run.l2.aux_dynamic + run.l2.static_energy,
                1e-15);
}

TEST(EnergyAccount, HtreeDominatesBinaryBaseline)
{
    // Figure 2: H-tree dynamic is ~80% of the LSTP L2's energy.
    auto run = quickRun(encoding::SchemeKind::Binary);
    double frac = run.l2.htree_dynamic / run.l2.total();
    EXPECT_GT(frac, 0.6);
    EXPECT_LT(frac, 0.95);
}

TEST(EnergyAccount, DescChargesInterfacePower)
{
    auto run = quickRun(encoding::SchemeKind::DescZeroSkip);
    EXPECT_GT(run.l2.aux_dynamic, 0.0);
}

TEST(EnergyAccount, LastValueSkipChargesMoreAuxThanZeroSkip)
{
    // Section 5.2: the last-value tables and write broadcast are why
    // LVS loses to ZS despite skipping more chunks.
    auto zs = quickRun(encoding::SchemeKind::DescZeroSkip);
    auto lvs = quickRun(encoding::SchemeKind::DescLastValueSkip);
    EXPECT_GT(lvs.l2.aux_dynamic, zs.l2.aux_dynamic);
}

TEST(EnergyAccount, ZeroSkipDescBeatsBinary)
{
    auto bin = quickRun(encoding::SchemeKind::Binary);
    auto zs = quickRun(encoding::SchemeKind::DescZeroSkip);
    EXPECT_LT(zs.l2.total(), 0.8 * bin.l2.total());
}

TEST(EnergyAccount, ProcessorEnergyIncludesL2)
{
    auto run = quickRun(encoding::SchemeKind::Binary);
    EXPECT_GT(run.processor.total(), run.l2.total());
    EXPECT_NEAR(run.processor.l2, run.l2.total(), 1e-15);
    // Figure 1 band.
    double frac = run.l2.total() / run.processor.total();
    EXPECT_GT(frac, 0.05);
    EXPECT_LT(frac, 0.35);
}

TEST(EnergyAccount, EccScalesArrayEnergy)
{
    SystemConfig cfg = baselineConfig(workloads::findApp("FFT"));
    cfg.insts_per_thread = 5000;
    auto plain = runSystem(cfg);
    auto e_plain = computeL2Energy(cfg, plain);

    auto ecc_cfg = cfg;
    ecc_cfg.l2.ecc = true;
    ecc_cfg.l2.ecc_segment_bits = 64;
    auto ecc_run = runSystem(ecc_cfg);
    auto e_ecc = computeL2Energy(ecc_cfg, ecc_run);

    // Parity storage and transfer make ECC strictly more expensive.
    EXPECT_GT(e_ecc.total(), e_plain.total());
}

TEST(EnergyAccount, HpDevicesExplodeStaticEnergy)
{
    SystemConfig cfg = baselineConfig(workloads::findApp("FFT"));
    cfg.insts_per_thread = 5000;
    auto lstp = runSystem(cfg);
    auto e_lstp = computeL2Energy(cfg, lstp);

    auto hp_cfg = cfg;
    hp_cfg.l2.org.cell_dev = energy::Device::HP;
    hp_cfg.l2.org.periph_dev = energy::Device::HP;
    auto hp = runSystem(hp_cfg);
    auto e_hp = computeL2Energy(hp_cfg, hp);

    EXPECT_GT(e_hp.static_energy, 100.0 * e_lstp.static_energy);
}
