/**
 * @file
 * Unit tests for the on-disk experiment result cache: config hashing,
 * AppRun serialization round-trips, and miss handling for absent,
 * corrupt, and disabled caches.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "sim/runcache.hh"
#include "sim/runner.hh"

using namespace desc;
using namespace desc::sim;

namespace {

SystemConfig
tinyConfig(const char *app = "FFT")
{
    SystemConfig cfg = baselineConfig(workloads::findApp(app));
    cfg.cores = 2;
    cfg.threads_per_core = 2;
    cfg.insts_per_thread = 1000;
    return cfg;
}

/** A fresh private cache directory, removed on destruction. */
struct TempCacheDir
{
    std::string dir;

    TempCacheDir()
    {
        static int counter = 0;
        dir = (std::filesystem::temp_directory_path()
               / ("desc-runcache-test-" + std::to_string(getpid())
                  + "-" + std::to_string(counter++)))
                  .string();
        std::filesystem::create_directories(dir);
    }

    ~TempCacheDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }
};

void
expectSameRun(const AppRun &a, const AppRun &b)
{
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.result.instructions, b.result.instructions);
    EXPECT_DOUBLE_EQ(a.result.seconds, b.result.seconds);

    const auto &ha = a.result.hierarchy, &hb = b.result.hierarchy;
    EXPECT_EQ(ha.l1d_accesses.value(), hb.l1d_accesses.value());
    EXPECT_EQ(ha.l1d_misses.value(), hb.l1d_misses.value());
    EXPECT_EQ(ha.l2_requests.value(), hb.l2_requests.value());
    EXPECT_EQ(ha.l2_hits.value(), hb.l2_hits.value());
    EXPECT_EQ(ha.read_transfers.value(), hb.read_transfers.value());
    EXPECT_EQ(ha.write_transfers.value(), hb.write_transfers.value());
    EXPECT_DOUBLE_EQ(ha.data_flips, hb.data_flips);
    EXPECT_DOUBLE_EQ(ha.ctrl_flips, hb.ctrl_flips);
    EXPECT_EQ(ha.bank_busy_cycles, hb.bank_busy_cycles);
    EXPECT_DOUBLE_EQ(ha.hit_latency.mean(), hb.hit_latency.mean());
    EXPECT_EQ(ha.hit_latency.count(), hb.hit_latency.count());
    EXPECT_DOUBLE_EQ(ha.transfer_window.mean(),
                     hb.transfer_window.mean());

    EXPECT_EQ(a.result.chunks.totalChunks(),
              b.result.chunks.totalChunks());
    EXPECT_DOUBLE_EQ(a.result.chunks.zeroFraction(),
                     b.result.chunks.zeroFraction());
    EXPECT_DOUBLE_EQ(a.result.chunks.lastValueMatchFraction(),
                     b.result.chunks.lastValueMatchFraction());

    EXPECT_EQ(a.result.dram_reads, b.result.dram_reads);
    EXPECT_EQ(a.result.dram_writes, b.result.dram_writes);

    EXPECT_DOUBLE_EQ(a.l2.htree_dynamic, b.l2.htree_dynamic);
    EXPECT_DOUBLE_EQ(a.l2.array_dynamic, b.l2.array_dynamic);
    EXPECT_DOUBLE_EQ(a.l2.aux_dynamic, b.l2.aux_dynamic);
    EXPECT_DOUBLE_EQ(a.l2.static_energy, b.l2.static_energy);
    EXPECT_DOUBLE_EQ(a.processor.total(), b.processor.total());
}

} // namespace

TEST(ConfigHash, StableForIdenticalConfigs)
{
    EXPECT_EQ(configHash(tinyConfig()), configHash(tinyConfig()));
}

TEST(ConfigHash, SensitiveToEveryResultRelevantKnob)
{
    auto base = configHash(tinyConfig());

    auto cfg = tinyConfig();
    cfg.seed ^= 1;
    EXPECT_NE(configHash(cfg), base);

    cfg = tinyConfig();
    cfg.insts_per_thread++;
    EXPECT_NE(configHash(cfg), base);

    cfg = tinyConfig();
    applyScheme(cfg, encoding::SchemeKind::DescZeroSkip);
    EXPECT_NE(configHash(cfg), base);

    cfg = tinyConfig();
    cfg.l2.scheme_cfg.chunk_bits = 2;
    EXPECT_NE(configHash(cfg), base);

    cfg = tinyConfig();
    cfg.l2.org.capacity_bytes *= 2;
    EXPECT_NE(configHash(cfg), base);

    cfg = tinyConfig();
    cfg.l2.ecc = true;
    EXPECT_NE(configHash(cfg), base);

    EXPECT_NE(configHash(tinyConfig("LU")), base);
}

TEST(RunCache, StoreLoadRoundTrips)
{
    TempCacheDir tmp;
    RunCache cache(tmp.dir);
    ASSERT_TRUE(cache.enabled());

    auto cfg = scaledConfig(tinyConfig());
    cfg.l2.collect_chunk_stats = true; // exercise ChunkStats fields
    AppRun run = runScaledApp(cfg);

    auto key = configHash(cfg);
    EXPECT_FALSE(cache.load(key).has_value());
    cache.store(key, run);

    auto loaded = cache.load(key);
    ASSERT_TRUE(loaded.has_value());
    expectSameRun(*loaded, run);
}

TEST(RunCache, CorruptEntryIsAMiss)
{
    TempCacheDir tmp;
    RunCache cache(tmp.dir);

    auto cfg = scaledConfig(tinyConfig());
    auto key = configHash(cfg);
    cache.store(key, runScaledApp(cfg));
    ASSERT_TRUE(cache.load(key).has_value());

    // Clobber every entry in the directory with garbage.
    for (const auto &e :
         std::filesystem::directory_iterator(tmp.dir)) {
        std::ofstream out(e.path(),
                          std::ios::binary | std::ios::trunc);
        out << "not a run cache entry";
    }
    EXPECT_FALSE(cache.load(key).has_value());
}

TEST(RunCache, TruncatedEntryIsAMiss)
{
    TempCacheDir tmp;
    RunCache cache(tmp.dir);

    auto cfg = scaledConfig(tinyConfig());
    auto key = configHash(cfg);
    cache.store(key, runScaledApp(cfg));

    for (const auto &e :
         std::filesystem::directory_iterator(tmp.dir))
        std::filesystem::resize_file(e.path(), 40);
    EXPECT_FALSE(cache.load(key).has_value());
}

TEST(RunCache, DisabledCacheLoadsNothing)
{
    RunCache cache("");
    EXPECT_FALSE(cache.enabled());

    auto cfg = scaledConfig(tinyConfig());
    auto key = configHash(cfg);
    cache.store(key, runScaledApp(cfg)); // must be a no-op
    EXPECT_FALSE(cache.load(key).has_value());
}

TEST(RunCache, RunAppMemoizesThroughTheGlobalCache)
{
    TempCacheDir tmp;
    setGlobalRunCacheDir(tmp.dir);

    auto cfg = tinyConfig("Barnes");
    auto before = runStats();
    AppRun first = runApp(cfg);
    auto mid = runStats();
    EXPECT_EQ(mid.simulated.value() - before.simulated.value(), 1u);
    EXPECT_EQ(mid.cache_stores.value() - before.cache_stores.value(),
              1u);

    AppRun second = runApp(cfg);
    auto after = runStats();
    EXPECT_EQ(after.simulated.value() - mid.simulated.value(), 0u);
    EXPECT_EQ(after.cache_hits.value() - mid.cache_hits.value(), 1u);
    expectSameRun(first, second);

    setGlobalRunCacheDir("");
}
