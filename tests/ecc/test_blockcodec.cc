/**
 * @file
 * Tests for the interleaved block codec of Figure 9: chunk-level
 * H-tree faults under DESC must stay correctable.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/blockcodec.hh"
#include "ecc/injector.hh"

using namespace desc;
using namespace desc::ecc;

TEST(BlockCodec, PaperGeometry)
{
    // (137,128): four 128-bit segments, nine parity bits each -> nine
    // extra 4-bit parity chunks on nine extra wires.
    BlockCodec c128(512, 128);
    EXPECT_EQ(c128.numSegments(), 4u);
    EXPECT_EQ(c128.parityBitsPerSegment(), 9u);
    EXPECT_EQ(c128.totalParityBits(), 36u);
    EXPECT_EQ(c128.busBits(), 548u);

    // (72,64): eight 64-bit segments, eight parity bits each.
    BlockCodec c64(512, 64);
    EXPECT_EQ(c64.numSegments(), 8u);
    EXPECT_EQ(c64.parityBitsPerSegment(), 8u);
    EXPECT_EQ(c64.busBits(), 576u);
}

TEST(BlockCodec, CleanRoundTrip)
{
    Rng rng(11);
    for (unsigned seg : {64u, 128u}) {
        BlockCodec codec(512, seg);
        for (int i = 0; i < 20; i++) {
            BitVec block(512);
            block.randomize(rng);
            auto d = codec.decode(codec.encode(block));
            EXPECT_EQ(d.block, block);
            EXPECT_EQ(d.corrected, 0u);
            EXPECT_EQ(d.detected_double, 0u);
        }
    }
}

TEST(BlockCodec, PayloadStaysInPlaceOnTheBus)
{
    Rng rng(12);
    BlockCodec codec(512, 128);
    BitVec block(512);
    block.randomize(rng);
    BitVec bus = codec.encode(block);
    for (unsigned i = 0; i < 512; i++)
        EXPECT_EQ(bus.bit(i), block.bit(i));
}

TEST(BlockCodec, ChunkTouchesEachSegmentAtMostOnce)
{
    // The structural guarantee behind Figure 9: with bit-interleaved
    // segments, a 4-bit chunk never holds two bits of one segment.
    for (unsigned seg : {64u, 128u}) {
        BlockCodec codec(512, seg);
        unsigned S = codec.numSegments();
        for (unsigned chunk = 0; chunk < codec.busBits() / 4; chunk++) {
            bool seen[8] = {};
            for (unsigned b = 0; b < 4; b++) {
                unsigned g = chunk * 4 + b;
                unsigned s = g < 512
                    ? g % S
                    : (g - 512) % S;
                ASSERT_LT(s, 8u);
                EXPECT_FALSE(seen[s])
                    << "chunk " << chunk << " touches segment " << s
                    << " twice";
                seen[s] = true;
            }
        }
    }
}

TEST(BlockCodec, SingleCorruptedChunkAlwaysRecovered)
{
    Rng rng(13);
    for (unsigned seg : {64u, 128u}) {
        BlockCodec codec(512, seg);
        for (int i = 0; i < 300; i++) {
            BitVec block(512);
            block.randomize(rng);
            BitVec bus = codec.encode(block);
            corruptRandomChunk(bus, 4, rng);
            auto d = codec.decode(bus);
            EXPECT_EQ(d.block, block) << "segment size " << seg;
            EXPECT_FALSE(d.uncorrectable());
        }
    }
}

TEST(BlockCodec, TwoCorruptedChunksNeverSilent)
{
    // Two chunk faults inject at most two errors per segment: either
    // corrected (if they land in different segments) or detected.
    Rng rng(14);
    BlockCodec codec(512, 128);
    for (int i = 0; i < 300; i++) {
        BitVec block(512);
        block.randomize(rng);
        BitVec bus = codec.encode(block);
        unsigned c1 = corruptRandomChunk(bus, 4, rng);
        unsigned c2;
        do {
            c2 = unsigned(rng.below(codec.busBits() / 4));
        } while (c2 == c1);
        corruptChunk(bus, c2, 4, rng);
        auto d = codec.decode(bus);
        bool silent = !d.uncorrectable() && d.block != block;
        EXPECT_FALSE(silent) << "iteration " << i;
    }
}

TEST(BlockCodec, ParityChunkFaultsAreHarmless)
{
    Rng rng(15);
    BlockCodec codec(512, 128);
    BitVec block(512);
    block.randomize(rng);
    BitVec bus = codec.encode(block);
    // Corrupt a chunk entirely inside the parity region.
    corruptChunk(bus, 512 / 4 + 2, 4, rng);
    auto d = codec.decode(bus);
    EXPECT_EQ(d.block, block);
    EXPECT_FALSE(d.uncorrectable());
}
