/**
 * @file
 * Tests for the H-tree fault injector.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/injector.hh"

using namespace desc;
using namespace desc::ecc;

TEST(Injector, FlipRandomBitFlipsExactlyOne)
{
    Rng rng(21);
    BitVec bus(548);
    bus.randomize(rng);
    BitVec before = bus;
    unsigned pos = flipRandomBit(bus, rng);
    EXPECT_EQ(bus.hammingDistance(before), 1u);
    EXPECT_NE(bus.bit(pos), before.bit(pos));
}

TEST(Injector, CorruptChunkChangesOnlyThatChunk)
{
    Rng rng(22);
    BitVec bus(512);
    bus.randomize(rng);
    BitVec before = bus;
    unsigned changed = corruptChunk(bus, 10, 4, rng);
    EXPECT_GE(changed, 1u);
    EXPECT_LE(changed, 4u);
    EXPECT_EQ(bus.hammingDistance(before), changed);
    // All differences inside chunk 10's bit range.
    for (unsigned b = 0; b < 512; b++) {
        if (bus.bit(b) != before.bit(b)) {
            EXPECT_GE(b, 40u);
            EXPECT_LT(b, 44u);
        }
    }
}

TEST(Injector, CorruptChunkNeverLeavesValueUnchanged)
{
    Rng rng(23);
    BitVec bus(64);
    for (int i = 0; i < 200; i++) {
        unsigned chunk = unsigned(rng.below(16));
        std::uint64_t before = bus.field(chunk * 4, 4);
        corruptChunk(bus, chunk, 4, rng);
        EXPECT_NE(bus.field(chunk * 4, 4), before);
    }
}

TEST(Injector, RandomChunkCoversTheWholeBus)
{
    Rng rng(24);
    BitVec bus(64);
    bool seen[16] = {};
    for (int i = 0; i < 500; i++)
        seen[corruptRandomChunk(bus, 4, rng)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}
