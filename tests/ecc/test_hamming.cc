/**
 * @file
 * Unit and property tests for the SECDED Hamming codes, including the
 * paper's (72, 64) and (137, 128) instances.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/hamming.hh"

using namespace desc;
using namespace desc::ecc;

TEST(Secded, PaperCodeDimensions)
{
    // Section 3.2.3: the (72, 64) and (137, 128) Hamming codes.
    SecdedCode c64(64);
    EXPECT_EQ(c64.codeBits(), 72u);
    EXPECT_EQ(c64.parityBits(), 8u);

    SecdedCode c128(128);
    EXPECT_EQ(c128.codeBits(), 137u);
    EXPECT_EQ(c128.parityBits(), 9u);
}

TEST(Secded, CleanRoundTrip)
{
    Rng rng(1);
    for (unsigned data_bits : {8u, 64u, 128u}) {
        SecdedCode code(data_bits);
        for (int i = 0; i < 50; i++) {
            BitVec data(data_bits);
            data.randomize(rng);
            auto decoded = code.decode(code.encode(data));
            EXPECT_EQ(decoded.status, EccStatus::Ok);
            EXPECT_EQ(decoded.data, data);
        }
    }
}

TEST(Secded, SystematicLayoutKeepsDataInPlace)
{
    // Data must stay in standard binary format so the SRAM arrays are
    // unmodified (Section 3.2.3).
    Rng rng(2);
    SecdedCode code(64);
    BitVec data(64);
    data.randomize(rng);
    BitVec word = code.encode(data);
    for (unsigned i = 0; i < 64; i++)
        EXPECT_EQ(word.bit(i), data.bit(i));
}

class SecdedParam : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SecdedParam, EverySingleBitErrorIsCorrected)
{
    unsigned data_bits = GetParam();
    SecdedCode code(data_bits);
    Rng rng(3 + data_bits);
    BitVec data(data_bits);
    data.randomize(rng);
    BitVec word = code.encode(data);

    for (unsigned pos = 0; pos < code.codeBits(); pos++) {
        BitVec bad = word;
        bad.flipBit(pos);
        auto decoded = code.decode(bad);
        EXPECT_EQ(decoded.status, EccStatus::Corrected)
            << "flip at " << pos;
        EXPECT_EQ(decoded.data, data) << "flip at " << pos;
    }
}

TEST_P(SecdedParam, EveryDoubleBitErrorIsDetected)
{
    unsigned data_bits = GetParam();
    SecdedCode code(data_bits);
    Rng rng(4 + data_bits);
    BitVec data(data_bits);
    data.randomize(rng);
    BitVec word = code.encode(data);

    // Exhaustive for the small code; sampled for the large ones.
    unsigned n = code.codeBits();
    unsigned trials = data_bits <= 16 ? 0 : 500;
    if (trials == 0) {
        for (unsigned i = 0; i < n; i++) {
            for (unsigned j = i + 1; j < n; j++) {
                BitVec bad = word;
                bad.flipBit(i);
                bad.flipBit(j);
                EXPECT_EQ(code.decode(bad).status,
                          EccStatus::DetectedDouble)
                    << "flips at " << i << "," << j;
            }
        }
    } else {
        for (unsigned t = 0; t < trials; t++) {
            unsigned i = unsigned(rng.below(n));
            unsigned j = unsigned(rng.below(n));
            if (i == j)
                continue;
            BitVec bad = word;
            bad.flipBit(i);
            bad.flipBit(j);
            EXPECT_EQ(code.decode(bad).status,
                      EccStatus::DetectedDouble)
                << "flips at " << i << "," << j;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Codes, SecdedParam,
                         ::testing::Values(8u, 16u, 64u, 128u));

TEST(Secded, StatusNames)
{
    EXPECT_STREQ(eccStatusName(EccStatus::Ok), "ok");
    EXPECT_STREQ(eccStatusName(EccStatus::Corrected), "corrected");
    EXPECT_STREQ(eccStatusName(EccStatus::DetectedDouble),
                 "double-error");
}
