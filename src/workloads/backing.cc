#include "workloads/backing.hh"

namespace desc::workloads {

ValueBackingStore::ValueBackingStore(const AppParams &params,
                                     std::uint64_t seed)
    : _model(params, seed)
{
}

const cache::Block512 &
ValueBackingStore::fetch(Addr block_addr)
{
    auto it = _mem.find(block_addr);
    if (it == _mem.end())
        it = _mem.emplace(block_addr, _model.block(block_addr)).first;
    return it->second;
}

void
ValueBackingStore::store(Addr block_addr, const cache::Block512 &data)
{
    _mem[block_addr] = data;
}

} // namespace desc::workloads
