#include "workloads/backing.hh"

namespace desc::workloads {

ValueBackingStore::ValueBackingStore(const AppParams &params,
                                     std::uint64_t seed)
    : _model(params, seed)
{
}

const cache::Block512 &
ValueBackingStore::fetch(Addr block_addr)
{
    auto it = _mem.find(block_addr);
    if (it != _mem.end())
        return it->second;
    // A block that was never written back holds exactly the value
    // model's contents — a pure function of the address — so there is
    // nothing to remember. Synthesizing into a scratch slot instead
    // of pinning a map node per touched block keeps the warmup and
    // teardown of short samples off the hash table entirely. The
    // returned reference is valid until the next fetch().
    _gen = _model.block(block_addr);
    return _gen;
}

void
ValueBackingStore::store(Addr block_addr, const cache::Block512 &data)
{
    _mem[block_addr] = data;
}

} // namespace desc::workloads
