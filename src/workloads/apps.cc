#include "workloads/app.hh"

#include <cstring>

#include "common/log.hh"

namespace desc::workloads {

namespace {

constexpr std::uint64_t KB = 1024;
constexpr std::uint64_t MB = 1024 * 1024;

// Parameters are chosen to reproduce the per-application spreads the
// paper reports: L2 intensity (Figure 1), chunk-value zero fraction
// (Figure 12, 31% pooled average), and consecutive-chunk value
// locality (Figure 13, 39% average). The application mix is strongly
// bimodal, as the paper's results imply: sparse/numeric codes (CG,
// Cholesky, Equake, the Water codes, soplex, mcf) carry zero- and
// null-block-rich data that zero skipping nearly silences, while
// dense FP streams (FFT, FT, LU, Ocean, lbm, milc) have high-entropy
// mantissas that keep the binary bus activity high.
const std::vector<AppParams> parallel_apps = {
    // name        mem   wr   ws_priv   ws_shared sh_f  seq   code
    //   hot_f hot_b   zero  small  pal   psz  null  salt
    {"Art",        0.32, 0.18,  96 * KB,  3 * MB, 0.45, 0.35, 12 * KB,
     0.88, 3 * KB, 0.22, 0.14, 0.20, 24, 0.09, 101},
    {"Barnes",     0.28, 0.22, 128 * KB,  5 * MB, 0.40, 0.15, 12 * KB,
     0.86, 3 * KB, 0.12, 0.14, 0.18, 64, 0.03, 102},
    {"CG",         0.36, 0.12, 192 * KB,  8 * MB, 0.60, 0.55, 12 * KB,
     0.82, 3 * KB, 0.26, 0.12, 0.26, 16, 0.13, 103},
    {"Cholesky",   0.30, 0.20, 160 * KB,  7 * MB, 0.45, 0.40, 12 * KB,
     0.85, 3 * KB, 0.24, 0.12, 0.24, 24, 0.11, 104},
    {"Equake",     0.34, 0.16, 160 * KB,  7 * MB, 0.50, 0.45, 12 * KB,
     0.83, 3 * KB, 0.26, 0.10, 0.24, 20, 0.12, 105},
    {"FFT",        0.33, 0.25, 256 * KB, 10 * MB, 0.55, 0.65, 12 * KB,
     0.78, 3 * KB, 0.06, 0.08, 0.12, 96, 0.02, 106},
    {"FT",         0.35, 0.24, 320 * KB, 12 * MB, 0.55, 0.70, 12 * KB,
     0.76, 3 * KB, 0.06, 0.08, 0.10, 96, 0.02, 107},
    {"Linear",     0.40, 0.10, 512 * KB, 14 * MB, 0.65, 0.85, 12 * KB,
     0.72, 3 * KB, 0.16, 0.24, 0.14, 48, 0.03, 108},
    {"LU",         0.31, 0.22, 192 * KB,  7 * MB, 0.50, 0.50, 12 * KB,
     0.85, 3 * KB, 0.06, 0.10, 0.16, 64, 0.02, 109},
    {"MG",         0.36, 0.18, 320 * KB, 12 * MB, 0.60, 0.60, 12 * KB,
     0.80, 3 * KB, 0.20, 0.10, 0.20, 32, 0.08, 110},
    {"Ocean",      0.37, 0.26, 448 * KB, 14 * MB, 0.55, 0.70, 12 * KB,
     0.76, 3 * KB, 0.10, 0.08, 0.14, 64, 0.02, 111},
    {"Radix",      0.38, 0.30, 512 * KB, 10 * MB, 0.50, 0.60, 10 * KB,
     0.74, 3 * KB, 0.18, 0.28, 0.22, 16, 0.05, 112},
    {"RayTrace",   0.27, 0.12, 128 * KB,  5 * MB, 0.45, 0.20, 12 * KB,
     0.88, 3 * KB, 0.14, 0.12, 0.18, 48, 0.03, 113},
    {"Swim",       0.38, 0.22, 448 * KB, 14 * MB, 0.60, 0.80, 12 * KB,
     0.75, 3 * KB, 0.16, 0.06, 0.16, 40, 0.04, 114},
    {"Water-Nsquared", 0.26, 0.18,  96 * KB, 2 * MB, 0.35, 0.15,
     12 * KB, 0.90, 3 * KB, 0.24, 0.12, 0.26, 16, 0.10, 115},
    {"Water-Spatial",  0.26, 0.18,  96 * KB, 2560 * KB, 0.35, 0.18,
     12 * KB, 0.89, 3 * KB, 0.22, 0.12, 0.22, 24, 0.08, 116},
};

const std::vector<AppParams> spec_apps = {
    {"bzip2",   0.30, 0.20,  4 * MB, 0, 0.0, 0.45, 12 * KB,
     0.86, 3 * KB, 0.16, 0.20, 0.22, 48, 0.05, 201},
    {"mcf",     0.38, 0.12, 20 * MB, 0, 0.0, 0.10, 12 * KB,
     0.70, 3 * KB, 0.24, 0.22, 0.18, 32, 0.09, 202},
    {"omnetpp", 0.33, 0.22,  6 * MB, 0, 0.0, 0.15, 12 * KB,
     0.78, 3 * KB, 0.22, 0.22, 0.22, 48, 0.09, 203},
    {"sjeng",   0.24, 0.15,  2 * MB, 0, 0.0, 0.20, 12 * KB,
     0.90, 3 * KB, 0.18, 0.18, 0.26, 32, 0.05, 204},
    {"lbm",     0.40, 0.35, 24 * MB, 0, 0.0, 0.85, 12 * KB,
     0.68, 3 * KB, 0.06, 0.05, 0.10, 96, 0.02, 205},
    {"milc",    0.36, 0.25,  8 * MB, 0, 0.0, 0.60, 12 * KB,
     0.74, 3 * KB, 0.06, 0.06, 0.12, 96, 0.02, 206},
    {"namd",    0.28, 0.18,  3 * MB, 0, 0.0, 0.40, 12 * KB,
     0.88, 3 * KB, 0.06, 0.08, 0.14, 64, 0.02, 207},
    {"soplex",  0.34, 0.15,  6 * MB, 0, 0.0, 0.35, 12 * KB,
     0.80, 3 * KB, 0.26, 0.14, 0.18, 32, 0.13, 208},
};

} // namespace

const std::vector<AppParams> &
parallelApps()
{
    return parallel_apps;
}

const std::vector<AppParams> &
specApps()
{
    return spec_apps;
}

const AppParams &
findApp(const char *name)
{
    for (const auto &a : parallel_apps) {
        if (std::strcmp(a.name, name) == 0)
            return a;
    }
    for (const auto &a : spec_apps) {
        if (std::strcmp(a.name, name) == 0)
            return a;
    }
    DESC_FATAL("unknown application: ", name);
}

} // namespace desc::workloads
