#include "workloads/stream.hh"

#include <cmath>

namespace desc::workloads {

AppStream::AppStream(const AppParams &params, const ValueModel &values,
                     unsigned thread_id, unsigned core_id,
                     std::uint64_t seed)
    : _p(params), _values(values),
      _rng(seed ^ (params.seed_salt * 0x100000001b3ULL)
           ^ (std::uint64_t(thread_id) << 32))
{
    // Disjoint address regions: per-thread private heaps, one shared
    // region, per-core code.
    _private_base = privateBase(thread_id);
    _shared_base = sharedBase();
    _code_base = codeBase(core_id);
    _hot_base = hotBase(thread_id);
    _seq_cursor_priv = _private_base;
    _seq_cursor_shared =
        _shared_base + (Addr(thread_id) * 8192) % std::max<std::uint64_t>(
            _p.ws_shared, 1);
}

Addr
AppStream::pickAddr()
{
    // Most references hit the thread's small hot set (stack and
    // loop-local data) that lives in the L1.
    if (_rng.chance(_p.hot_frac))
        return _hot_base + _rng.below(_p.hot_bytes / 8) * 8;

    bool shared = _p.ws_shared > 0 && _rng.chance(_p.shared_frac);
    Addr base = shared ? _shared_base : _private_base;
    std::uint64_t ws = shared ? _p.ws_shared : _p.ws_private;
    Addr &cursor = shared ? _seq_cursor_shared : _seq_cursor_priv;

    if (_rng.chance(_p.seq_frac)) {
        cursor += 8;
        if (cursor >= base + ws)
            cursor = base;
        return cursor;
    }
    return base + (_rng.below(ws / 8) * 8);
}

unsigned
AppStream::nextGap(cpu::MemOp &op)
{
    // Geometric gap with success probability mem_per_inst.
    double u = _rng.uniform();
    unsigned gap = unsigned(std::log(1.0 - u)
                            / std::log(1.0 - _p.mem_per_inst));
    if (gap > 200)
        gap = 200;

    op.addr = pickAddr();
    op.is_write = _rng.chance(_p.write_frac);
    op.store_value = op.is_write ? _values.wordAt(op.addr, _rng) : 0;

    _fetch_cursor = (_fetch_cursor + (gap + 1) * 4) % _p.code_bytes;
    return gap;
}

Addr
AppStream::fetchAddr() const
{
    return _code_base + _fetch_cursor;
}

// Region bases are staggered across cache sets: power-of-two aligned
// bases would pile every thread's hot set onto the same few L1/L2
// sets and thrash them.

Addr
AppStream::privateBase(unsigned thread_id)
{
    return (Addr{1} << 36) + Addr(thread_id) * (Addr{1} << 30)
        + Addr(thread_id) * 4099 * 64;
}

Addr
AppStream::sharedBase()
{
    return Addr{1} << 40;
}

Addr
AppStream::hotBase(unsigned thread_id)
{
    return (Addr{1} << 42) + Addr(thread_id) * (Addr{1} << 24)
        + Addr(thread_id) * 977 * 64;
}

Addr
AppStream::codeBase(unsigned core_id)
{
    return (Addr{1} << 44) + Addr(core_id) * (Addr{1} << 30);
}

} // namespace desc::workloads
