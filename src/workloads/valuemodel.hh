/**
 * @file
 * Application data-value synthesis.
 *
 * Blocks are generated with a fixed per-application "structure
 * layout": each of the eight 64-bit slots of a block has a field
 * class — zero, small integer, palette, FP-like, or random — assigned
 * once per application (like the fields of a struct array). Because a
 * given bus wire always carries the same slot positions, this layout
 * is what creates the consecutive-chunk value locality of Figure 13,
 * while the class mix controls the zero-chunk fraction of Figure 12.
 * Block content is a deterministic function of the address, so
 * simulations are reproducible and re-fetches see stable memory.
 */

#ifndef DESC_WORKLOADS_VALUEMODEL_HH
#define DESC_WORKLOADS_VALUEMODEL_HH

#include <array>
#include <vector>

#include "cache/blockdata.hh"
#include "common/rng.hh"
#include "workloads/app.hh"

namespace desc::workloads {

class ValueModel
{
  public:
    ValueModel(const AppParams &params, std::uint64_t seed);

    /** Field classes of the 8-slot structure layout. */
    enum class FieldClass : std::uint8_t
    {
        Zero,
        SmallInt,
        Palette,
        FpLike,
        Random,
    };

    /** The class of the word slot holding @p word_addr. */
    FieldClass classAt(Addr word_addr) const;

    /** Draw a value for the slot at @p word_addr (store values). */
    std::uint64_t wordAt(Addr word_addr, Rng &rng) const;

    /** Deterministic content of the block at @p block_addr. */
    cache::Block512 block(Addr block_addr) const;

  private:
    AppParams _p;
    std::uint64_t _seed;
    std::vector<std::uint64_t> _palette;
    std::array<FieldClass, 8> _layout;
    std::array<unsigned, 8> _subpalette; //!< palette base per slot
    std::array<std::uint64_t, 8> _fp_exponent;
};

} // namespace desc::workloads

#endif // DESC_WORKLOADS_VALUEMODEL_HH
