/**
 * @file
 * Per-application workload parameters.
 *
 * The paper runs sixteen parallel applications (Phoenix, SPLASH-2,
 * SPEC OpenMP, NAS) and eight SPEC CPU 2006 applications (Table 2).
 * We cannot ship those binaries, so each application is modeled by a
 * parameter set controlling (a) its instruction mix and memory access
 * pattern — which determine L1/L2 miss rates and bank pressure — and
 * (b) its data-value statistics — which determine the chunk-value
 * distribution (Figure 12) and consecutive-chunk locality (Figure 13)
 * that all the energy results are a function of. See DESIGN.md for
 * the substitution rationale.
 */

#ifndef DESC_WORKLOADS_APP_HH
#define DESC_WORKLOADS_APP_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace desc::workloads {

struct AppParams
{
    const char *name;

    // --- instruction mix / address behavior -------------------------
    /** Probability an instruction is a memory operation. */
    double mem_per_inst;
    /** Fraction of memory operations that are stores. */
    double write_frac;
    /** Per-thread private working set (bytes). */
    std::uint64_t ws_private;
    /** Shared working set (bytes). */
    std::uint64_t ws_shared;
    /** Fraction of accesses that target the shared region. */
    double shared_frac;
    /** Fraction of accesses that stream sequentially. */
    double seq_frac;
    /** Instruction footprint (bytes). */
    std::uint64_t code_bytes;
    /** Fraction of accesses hitting the per-thread hot set (stack,
     *  loop-local data) that lives comfortably in the L1. */
    double hot_frac;
    /** Hot-set size (bytes). */
    std::uint64_t hot_bytes;

    // --- value behavior ----------------------------------------------
    // Blocks are synthesized with a fixed 8-field "structure layout":
    // each 64-bit slot of a block has a field class (zero / small
    // integer / palette / FP-like / random) assigned per application,
    // which is what creates the per-wire value locality of Figure 13.
    /** Fraction of word slots whose field class is zero. */
    double zero_word;
    /** Fraction of slots holding small integers (< 2^12). */
    double small_word;
    /** Fraction of slots drawn from the app's reused value palette. */
    double palette_word;
    /** Number of distinct palette values. */
    unsigned palette_size;
    /** Probability a freshly touched block is entirely null. */
    double null_block;

    std::uint64_t seed_salt;
};

/** The sixteen parallel applications of Table 2 (Figure order). */
const std::vector<AppParams> &parallelApps();

/** The eight SPEC CPU 2006 applications of Table 2 / Figure 30. */
const std::vector<AppParams> &specApps();

/** Look up an application by name (either suite); panics if absent. */
const AppParams &findApp(const char *name);

} // namespace desc::workloads

#endif // DESC_WORKLOADS_APP_HH
