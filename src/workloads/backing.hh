/**
 * @file
 * DRAM backing store materialized from the application value model.
 */

#ifndef DESC_WORKLOADS_BACKING_HH
#define DESC_WORKLOADS_BACKING_HH

#include <unordered_map>

#include "cache/blockdata.hh"
#include "workloads/valuemodel.hh"

namespace desc::workloads {

class ValueBackingStore : public cache::BackingStore
{
  public:
    ValueBackingStore(const AppParams &params, std::uint64_t seed);

    const cache::Block512 &fetch(Addr block_addr) override;
    void store(Addr block_addr, const cache::Block512 &data) override;

    /** Blocks holding written-back data (clean blocks are synthesized
     *  from the value model on demand and never pinned). */
    std::size_t touchedBlocks() const { return _mem.size(); }

  private:
    ValueModel _model;
    std::unordered_map<Addr, cache::Block512> _mem;
    cache::Block512 _gen{}; //!< fetch() scratch for unwritten blocks
};

} // namespace desc::workloads

#endif // DESC_WORKLOADS_BACKING_HH
