/**
 * @file
 * Synthetic per-thread instruction/address stream.
 *
 * Each thread mixes sequential streaming through its region with
 * random accesses inside the working set, splits traffic between a
 * thread-private region and the application's shared region, and
 * walks a code footprint for instruction fetches. Gaps between memory
 * operations are geometric with the application's memory intensity.
 */

#ifndef DESC_WORKLOADS_STREAM_HH
#define DESC_WORKLOADS_STREAM_HH

#include "common/rng.hh"
#include "cpu/stream.hh"
#include "workloads/valuemodel.hh"

namespace desc::workloads {

class AppStream : public cpu::InstructionStream
{
  public:
    /**
     * @param thread_id  global hardware-thread index (0..31)
     * @param core_id    owning core (threads on a core share code)
     */
    AppStream(const AppParams &params, const ValueModel &values,
              unsigned thread_id, unsigned core_id, std::uint64_t seed);

    unsigned nextGap(cpu::MemOp &op) override;
    Addr fetchAddr() const override;

    /** Region bases (shared with the warmup logic in sim::runSystem). */
    static Addr privateBase(unsigned thread_id);
    static Addr sharedBase();
    static Addr hotBase(unsigned thread_id);
    static Addr codeBase(unsigned core_id);

  private:
    Addr pickAddr();

    const AppParams &_p;
    const ValueModel &_values;
    Rng _rng;

    Addr _private_base;
    Addr _shared_base;
    Addr _code_base;
    Addr _hot_base;
    Addr _seq_cursor_priv;
    Addr _seq_cursor_shared;
    Addr _fetch_cursor = 0;
};

} // namespace desc::workloads

#endif // DESC_WORKLOADS_STREAM_HH
