#include "workloads/valuemodel.hh"

namespace desc::workloads {

namespace {

std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

/** Values a palette slot draws from (small per-slot working set). */
constexpr unsigned kSubPaletteSize = 3;

} // namespace

ValueModel::ValueModel(const AppParams &params, std::uint64_t seed)
    : _p(params), _seed(seed ^ params.seed_salt)
{
    Rng rng(_seed ^ 0x9a1e77e);

    // The palette mixes small structured values and FP-like constants;
    // it is the main source of cross-block value repetition.
    _palette.reserve(_p.palette_size);
    for (unsigned i = 0; i < _p.palette_size; i++) {
        switch (rng.below(5)) {
          case 0: // small structured integer
            _palette.push_back(rng.below(1u << 16));
            break;
          case 1: // pointer-like (shared upper bits)
            _palette.push_back(0x00007f0000000000ULL
                               | (rng.next() & 0xffffffffffULL & ~0x3fULL));
            break;
          default: // FP-like constant (shared exponent, rich mantissa)
            _palette.push_back(0x3ff0000000000000ULL
                               | (rng.next() & 0xfffffffffffffULL));
            break;
        }
    }

    // Fixed structure layout: assign a field class to each of the
    // eight word slots according to the application's class mix.
    // Stratified sampling keeps the realized slot counts within one
    // of the target fractions (plain per-slot draws would let a
    // zero-light app randomly end up with half its slots zero).
    double rest = 1.0 - _p.zero_word - _p.small_word - _p.palette_word;
    double fp_frac = rest * 0.7;
    const double cuts[4] = {
        _p.zero_word,
        _p.zero_word + _p.small_word,
        _p.zero_word + _p.small_word + _p.palette_word,
        _p.zero_word + _p.small_word + _p.palette_word + fp_frac,
    };
    double jitter = rng.uniform();
    for (unsigned s = 0; s < 8; s++) {
        double x = (s + jitter) / 8.0;
        if (x < cuts[0])
            _layout[s] = FieldClass::Zero;
        else if (x < cuts[1])
            _layout[s] = FieldClass::SmallInt;
        else if (x < cuts[2])
            _layout[s] = FieldClass::Palette;
        else if (x < cuts[3])
            _layout[s] = FieldClass::FpLike;
        else
            _layout[s] = FieldClass::Random;
        _subpalette[s] = unsigned(rng.below(_p.palette_size));
        // One of a few shared exponents per FP slot (array of doubles
        // in a similar numeric range).
        _fp_exponent[s] = (0x3fcull + rng.below(4)) << 52;
    }
    // Shuffle the slot order so field classes are not sorted.
    for (unsigned s = 8; s-- > 1;) {
        unsigned j = unsigned(rng.below(s + 1));
        std::swap(_layout[s], _layout[j]);
    }
}

ValueModel::FieldClass
ValueModel::classAt(Addr word_addr) const
{
    return _layout[(word_addr >> 3) & 7];
}

std::uint64_t
ValueModel::wordAt(Addr word_addr, Rng &rng) const
{
    unsigned slot = unsigned((word_addr >> 3) & 7);
    switch (_layout[slot]) {
      case FieldClass::Zero:
        return 0;
      case FieldClass::SmallInt:
        return rng.below(1u << 12);
      case FieldClass::Palette: {
        unsigned idx = (_subpalette[slot] + unsigned(rng.below(
                            kSubPaletteSize)))
            % _p.palette_size;
        return _palette[idx];
      }
      case FieldClass::FpLike:
        return _fp_exponent[slot] | (rng.next() & 0xfffffffffffffULL);
      case FieldClass::Random:
        return rng.next();
    }
    return 0;
}

cache::Block512
ValueModel::block(Addr block_addr) const
{
    Rng rng(mix(block_addr ^ _seed));
    cache::Block512 out{};
    if (rng.chance(_p.null_block))
        return out; // null block
    for (unsigned w = 0; w < 8; w++)
        out[w] = wordAt(block_addr + w * 8, rng);
    return out;
}

} // namespace desc::workloads
