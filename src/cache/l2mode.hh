/**
 * @file
 * Runtime selection of the L2 transaction engine.
 *
 * Flat mode collapses the request -> tag-probe -> respond event chain
 * of a cache transaction into one pooled, phase-chained event that
 * reschedules itself; Event mode keeps the reference chain of three
 * separate pooled event types. Both engines issue schedule calls in
 * the same order at the same cycles, so every observable — stats,
 * traces, run caches — is bit-identical; the differential suite pins
 * this. Mirrors DESC_LINK_MODE / DESC_ENCODER_MODE.
 */

#ifndef DESC_CACHE_L2MODE_HH
#define DESC_CACHE_L2MODE_HH

#include <optional>

namespace desc::cache {

enum class L2Mode {
    Auto, //!< flat engine (no observable differs, so no watcher gate)
    Flat, //!< force the phase-chained single-event engine
    Event //!< force the reference three-event chain
};

/**
 * Mode from the DESC_L2_MODE environment variable (auto|flat|event),
 * latched on first use; a programmatic override takes precedence.
 * Hierarchies capture the mode at construction.
 */
L2Mode defaultL2Mode();

/**
 * Override (or, with nullopt, un-override) the default L2 mode from
 * code. Later-constructed hierarchies see the new value; existing
 * ones are unaffected. For differential tests.
 */
void setDefaultL2Mode(std::optional<L2Mode> mode);

} // namespace desc::cache

#endif // DESC_CACHE_L2MODE_HH
