/**
 * @file
 * Generic set-associative array with LRU replacement.
 *
 * Storage is struct-of-arrays: the packed tag+valid words of a set sit
 * contiguously (a 4-way probe reads 32 bytes — one cache line of the
 * host), with the LRU stamps and the wide per-line metadata in
 * parallel arrays that only hit and maintenance paths touch. Lines are
 * addressed by a stable integer Way handle (set * assoc + way).
 */

#ifndef DESC_CACHE_ARRAY_HH
#define DESC_CACHE_ARRAY_HH

#include <vector>

#include "common/contract.hh"
#include "common/log.hh"
#include "common/types.hh"

namespace desc::cache {

/**
 * Tag/recency image of a whole array: everything a freshly built
 * array needs to reproduce a functionally warmed-up state whose
 * lines still carry default-constructed metadata. The warmup
 * snapshot cache (sim/system.cc) keys these on the warmup inputs so
 * repeated runs of one configuration skip the prefill walk.
 */
struct TagImage
{
    std::vector<std::uint64_t> tagv;
    std::vector<std::uint64_t> lru;
    std::uint64_t clock = 0;
};

/**
 * Tag/state storage for one cache level. Meta carries the
 * level-specific payload (coherence state, dirty bit, data, ...).
 */
template <typename Meta>
class SetAssocArray
{
  public:
    /** Line handle: set * assoc + way index. Stable across fills. */
    using Way = std::uint32_t;
    static constexpr Way kNoWay = ~Way{0};

    SetAssocArray(std::uint64_t capacity_bytes, unsigned assoc,
                  unsigned block_bytes)
        : _assoc(assoc), _block_bytes(block_bytes)
    {
        DESC_ASSERT(capacity_bytes % (assoc * block_bytes) == 0,
                    "capacity not divisible by assoc*block");
        _sets = unsigned(capacity_bytes / (assoc * block_bytes));
        DESC_ASSERT((_sets & (_sets - 1)) == 0,
                    "set count must be a power of two: ", _sets);
        const std::size_t lines = std::size_t(_sets) * assoc;
        _tagv.assign(lines, 0);
        _lru.assign(lines, 0);
        // Default-construct (not copy-fill) the metadata: a Meta that
        // leaves bulk payload members uninitialized then skips the
        // touch of every line's payload here.
        _meta.resize(lines);
    }

    unsigned numSets() const { return _sets; }
    unsigned assoc() const { return _assoc; }

    unsigned
    setOf(Addr addr) const
    {
        return unsigned((addr / _block_bytes) & (_sets - 1));
    }

    Addr
    tagOf(Addr addr) const
    {
        return addr / _block_bytes / _sets;
    }

    /** Reconstruct the block address of a (valid) line. */
    Addr
    addrOf(Way way) const
    {
        const Addr tag = Addr(_tagv[way] >> 1);
        return (tag * _sets + way / _assoc) * _block_bytes;
    }

    bool valid(Way way) const { return _tagv[way] & 1; }

    Meta &meta(Way way) { return _meta[way]; }
    const Meta &meta(Way way) const { return _meta[way]; }

    /** Find a valid line matching @p addr; kNoWay on miss. */
    Way
    lookup(Addr addr) const
    {
        const Way base = Way(setOf(addr)) * _assoc;
        const std::uint64_t key = (std::uint64_t(tagOf(addr)) << 1) | 1;
        for (unsigned w = 0; w < _assoc; w++) {
            if (_tagv[base + w] == key)
                return base + w;
        }
        return kNoWay;
    }

    /** Mark a line most-recently used. */
    void touch(Way way) { _lru[way] = ++_clock; }

    /**
     * Choose the victim way for @p addr (an invalid way if any,
     * otherwise the LRU line). The caller handles any writeback, then
     * fills the returned way via fill().
     */
    Way
    victim(Addr addr) const
    {
        const Way base = Way(setOf(addr)) * _assoc;
        Way pick = base;
        for (unsigned w = 0; w < _assoc; w++) {
            if (!valid(base + w))
                return base + w;
            if (_lru[base + w] < _lru[pick])
                pick = base + w;
        }
        return pick;
    }

    /**
     * Victim selection with an avoidance predicate over the line
     * metadata: an invalid way wins; otherwise the LRU way among
     * lines for which @p avoid is false; otherwise the overall LRU
     * way. Used by the inclusive L2 to prefer evicting lines without
     * live L1 copies.
     */
    template <typename Pred>
    Way
    victimPreferring(Addr addr, Pred &&avoid) const
    {
        const Way base = Way(setOf(addr)) * _assoc;
        Way preferred = kNoWay;
        Way overall = base;
        for (unsigned w = 0; w < _assoc; w++) {
            const Way way = base + w;
            if (!valid(way))
                return way;
            if (_lru[way] < _lru[overall])
                overall = way;
            if (!avoid(_meta[way])
                && (preferred == kNoWay || _lru[way] < _lru[preferred])) {
                preferred = way;
            }
        }
        return preferred != kNoWay ? preferred : overall;
    }

    /** Install @p addr into @p way (which may hold an evictee). */
    void
    fill(Way way, Addr addr)
    {
        _tagv[way] = (std::uint64_t(tagOf(addr)) << 1) | 1;
        _meta[way] = Meta{};
        touch(way);
    }

    void
    invalidate(Way way)
    {
        _tagv[way] = 0;
        _meta[way] = Meta{};
    }

    /** Iterate all valid lines (for inclusive-eviction bookkeeping). */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (Way way = 0; way < Way(_tagv.size()); way++) {
            if (valid(way))
                fn(way);
        }
    }

    /** Capture the tag/valid words, LRU stamps, and LRU clock. Line
     *  metadata is not captured: a snapshot is only meaningful while
     *  every valid line still has default-constructed Meta (as after
     *  a pure prefill), which restoreTagImage() reestablishes being
     *  applied to a freshly constructed array. */
    TagImage
    tagImage() const
    {
        return {_tagv, _lru, _clock};
    }

    /** Restore a tagImage() capture onto a same-geometry array. */
    void
    restoreTagImage(const TagImage &img)
    {
        DESC_ASSERT(img.tagv.size() == _tagv.size(),
                    "tag image from a different geometry");
        _tagv = img.tagv;
        _lru = img.lru;
        _clock = img.clock;
    }

  private:
    unsigned _assoc;
    unsigned _block_bytes;
    unsigned _sets;
    std::uint64_t _clock = 0;

    /** tag << 1 | valid, per line; the only array probes touch. */
    std::vector<std::uint64_t> _tagv;
    std::vector<std::uint64_t> _lru;
    std::vector<Meta> _meta;
};

} // namespace desc::cache

#endif // DESC_CACHE_ARRAY_HH
