/**
 * @file
 * Generic set-associative array with LRU replacement.
 */

#ifndef DESC_CACHE_ARRAY_HH
#define DESC_CACHE_ARRAY_HH

#include <vector>

#include "common/contract.hh"
#include "common/log.hh"
#include "common/types.hh"

namespace desc::cache {

/**
 * Tag/state storage for one cache level. Meta carries the
 * level-specific payload (coherence state, dirty bit, data, ...).
 */
template <typename Meta>
class SetAssocArray
{
  public:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lru = 0;
        Meta meta{};
    };

    SetAssocArray(std::uint64_t capacity_bytes, unsigned assoc,
                  unsigned block_bytes)
        : _assoc(assoc), _block_bytes(block_bytes)
    {
        DESC_ASSERT(capacity_bytes % (assoc * block_bytes) == 0,
                    "capacity not divisible by assoc*block");
        _sets = unsigned(capacity_bytes / (assoc * block_bytes));
        DESC_ASSERT((_sets & (_sets - 1)) == 0,
                    "set count must be a power of two: ", _sets);
        _lines.assign(std::size_t(_sets) * assoc, Line{});
    }

    unsigned numSets() const { return _sets; }
    unsigned assoc() const { return _assoc; }

    unsigned
    setOf(Addr addr) const
    {
        return unsigned((addr / _block_bytes) & (_sets - 1));
    }

    Addr
    tagOf(Addr addr) const
    {
        return addr / _block_bytes / _sets;
    }

    /** Reconstruct the block address of a (set, line) pair. */
    Addr
    addrOf(const Line &line, unsigned set) const
    {
        return (line.tag * _sets + set) * _block_bytes;
    }

    /** Find a valid line matching @p addr; null on miss. */
    Line *
    lookup(Addr addr)
    {
        unsigned set = setOf(addr);
        Addr tag = tagOf(addr);
        Line *base = &_lines[std::size_t(set) * _assoc];
        for (unsigned w = 0; w < _assoc; w++) {
            if (base[w].valid && base[w].tag == tag)
                return &base[w];
        }
        return nullptr;
    }

    /** Mark a line most-recently used. */
    void touch(Line &line) { line.lru = ++_clock; }

    /**
     * Choose the victim way for @p addr (an invalid way if any,
     * otherwise the LRU line). The caller handles any writeback, then
     * fills the returned line via fill().
     */
    Line &
    victim(Addr addr)
    {
        unsigned set = setOf(addr);
        Line *base = &_lines[std::size_t(set) * _assoc];
        Line *pick = &base[0];
        for (unsigned w = 0; w < _assoc; w++) {
            if (!base[w].valid)
                return base[w];
            if (base[w].lru < pick->lru)
                pick = &base[w];
        }
        return *pick;
    }

    /**
     * Victim selection with an avoidance predicate: an invalid way
     * wins; otherwise the LRU way among lines for which @p avoid is
     * false; otherwise the overall LRU way. Used by the inclusive L2
     * to prefer evicting lines without live L1 copies.
     */
    template <typename Pred>
    Line &
    victimPreferring(Addr addr, Pred &&avoid)
    {
        unsigned set = setOf(addr);
        Line *base = &_lines[std::size_t(set) * _assoc];
        Line *preferred = nullptr;
        Line *overall = &base[0];
        for (unsigned w = 0; w < _assoc; w++) {
            Line &line = base[w];
            if (!line.valid)
                return line;
            if (line.lru < overall->lru)
                overall = &line;
            if (!avoid(line)
                && (!preferred || line.lru < preferred->lru)) {
                preferred = &line;
            }
        }
        return preferred ? *preferred : *overall;
    }

    /** Install @p addr into @p line (which may hold an evictee). */
    void
    fill(Line &line, Addr addr)
    {
        line.tag = tagOf(addr);
        line.valid = true;
        line.meta = Meta{};
        touch(line);
    }

    void
    invalidate(Line &line)
    {
        line.valid = false;
        line.meta = Meta{};
    }

    /** Iterate all valid lines (for inclusive-eviction bookkeeping). */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (unsigned set = 0; set < _sets; set++) {
            for (unsigned w = 0; w < _assoc; w++) {
                Line &line = _lines[std::size_t(set) * _assoc + w];
                if (line.valid)
                    fn(line, set);
            }
        }
    }

  private:
    unsigned _assoc;
    unsigned _block_bytes;
    unsigned _sets;
    std::uint64_t _clock = 0;
    std::vector<Line> _lines;
};

} // namespace desc::cache

#endif // DESC_CACHE_ARRAY_HH
