/**
 * @file
 * The full memory hierarchy of Table 1: per-core L1 I/D caches kept
 * coherent with MESI, an inclusive shared L2 (banked UCA or S-NUCA-1)
 * whose data ports use a pluggable TransferScheme, and DDR3 memory.
 *
 * Every 512-bit block that crosses the L2 H-tree — read hits, write
 * backs, fills, dirty evictions, and coherence flushes — goes through
 * the bank's TransferScheme instance, which yields the serialization
 * window (performance) and the wire transitions (energy) for that
 * exact data value. Bank conflicts arise naturally because a bank is
 * busy for the duration of each transfer window.
 */

#ifndef DESC_CACHE_HIERARCHY_HH
#define DESC_CACHE_HIERARCHY_HH

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/array.hh"
#include "cache/blockdata.hh"
#include "common/stats.hh"
#include "core/chunk.hh"
#include "dram/ddr3.hh"
#include "ecc/blockcodec.hh"
#include "encoding/scheme.hh"
#include "energy/cacti.hh"
#include "sim/eventq.hh"

namespace desc::cache {

/** MESI coherence states of an L1 line. */
enum class MesiState : std::uint8_t { Invalid, Shared, Exclusive, Modified };

struct L1Config
{
    std::uint64_t capacity_bytes = 16 * 1024;
    unsigned assoc_d = 4; //!< DL1: 4-way (Table 1)
    unsigned assoc_i = 1; //!< IL1: direct-mapped (Table 1)
    unsigned block_bytes = 64;
    Cycle hit_latency = 2;
};

struct L2Config
{
    /** Geometry/device organization (shared with the energy model). */
    energy::CacheOrg org{};

    encoding::SchemeKind scheme = encoding::SchemeKind::Binary;
    encoding::SchemeConfig scheme_cfg{};

    /** S-NUCA-1 mode: statically routed banks, distance latency. */
    bool snuca = false;
    unsigned snuca_min_latency = 3;
    unsigned snuca_max_latency = 13;

    /** Controller decode/queue latency. */
    Cycle ctrl_latency = 2;

    /** Extra logic delay of the DESC TX/RX pair (synthesis: ~625ps). */
    Cycle desc_interface_delay = 2;

    /** Coherence recall (L1 flush) round-trip penalty. */
    Cycle recall_latency = 10;

    /** SECDED protection on the H-trees (Section 3.2.3). */
    bool ecc = false;
    unsigned ecc_segment_bits = 128;

    /** Collect the Figure 12/13 chunk statistics (costs time). */
    bool collect_chunk_stats = false;

    /**
     * Back DESC banks with full cycle-accurate links (LinkDescScheme)
     * instead of the behavioral model. Results are identical; with the
     * link fast path the cost is comparable. Non-DESC schemes ignore
     * the flag.
     */
    bool link_backed = false;

    /**
     * The scheme configuration actually used on the wires: with ECC
     * the bus word grows by the parity bits and the bus by the parity
     * wires (Figure 9), for every scheme.
     */
    encoding::SchemeConfig effectiveSchemeConfig() const;

    bool
    isDesc() const
    {
        using encoding::SchemeKind;
        return scheme == SchemeKind::DescBasic
            || scheme == SchemeKind::DescZeroSkip
            || scheme == SchemeKind::DescLastValueSkip;
    }
};

struct HierarchyStats
{
    Counter l1i_accesses, l1i_misses;
    Counter l1d_accesses, l1d_misses;
    Counter upgrades;

    Counter l2_requests, l2_hits, l2_misses;
    Counter l2_writebacks_in;  //!< dirty L1 evictions into L2
    Counter l2_fills;          //!< DRAM fills into L2
    Counter l2_evictions_out;  //!< dirty L2 evictions to DRAM
    Counter recalls;           //!< coherence flushes from an L1 owner

    Counter read_transfers, write_transfers;

    /** Transition counts (weighted by bank distance under S-NUCA). */
    double data_flips = 0.0;
    double ctrl_flips = 0.0;

    /** Total cycles any bank port spent transferring (DESC power). */
    Cycle bank_busy_cycles = 0;

    Average hit_latency;      //!< request arrival to data response
    Average transfer_window;  //!< serialization cycles per transfer
};

class MemHierarchy
{
  public:
    using DoneFn = std::function<void()>;

    MemHierarchy(sim::EventQueue &eq, const L2Config &l2cfg,
                 BackingStore &backing, unsigned num_cores,
                 const L1Config &l1cfg = L1Config{},
                 const dram::DramConfig &dram_cfg = dram::DramConfig{});

    /**
     * One core memory access. Returns the access latency if it
     * completes synchronously (L1 hit / upgrade-free store); otherwise
     * returns nullopt and @p done fires at the completion cycle.
     *
     * @param store_value for writes: the 64-bit word the core stores
     *        (keeps the data stream through the hierarchy realistic).
     */
    std::optional<Cycle> access(unsigned core, Addr addr, bool is_write,
                                std::uint64_t store_value, bool ifetch,
                                DoneFn done);

    const HierarchyStats &stats() const { return _stats; }
    const dram::DramSystem &dramSystem() const { return _dram; }
    const core::ChunkStats &chunkStats() const { return _chunk_stats; }
    const L2Config &config() const { return _cfg; }

    /** Average L2 hit delay in cycles (Figure 21). */
    double avgHitDelay() const { return _stats.hit_latency.mean(); }

    /**
     * Functional warmup: install the block at @p addr into the L2
     * without consuming simulated time or charging activity. Used to
     * reach steady-state cache contents before the timed region, as
     * SimPoint-style sampled simulation requires.
     */
    void prefill(Addr addr);

  private:
    struct L1Meta
    {
        MesiState state = MesiState::Invalid;
        Block512 data{};
    };

    struct L2Meta
    {
        bool dirty = false;
        std::uint8_t sharers = 0; //!< DL1 sharer bitmap
        std::uint8_t owner = kNoOwner;
        Block512 data{};
    };

    static constexpr std::uint8_t kNoOwner = 0xff;

    using L1Array = SetAssocArray<L1Meta>;
    using L2Array = SetAssocArray<L2Meta>;

    struct Bank
    {
        Cycle free_at = 0;
        std::unique_ptr<encoding::TransferScheme> read_scheme;
        std::unique_ptr<encoding::TransferScheme> write_scheme;
        double energy_weight = 1.0;
        Cycle route_latency = 0;
    };

    struct MshrEntry
    {
        /**
         * One core access waiting on an L2 response. Carries the
         * store payload so the response path can apply the write
         * after filling the L1 — no per-request closure needed.
         */
        struct Waiter
        {
            unsigned core = 0;
            bool exclusive = false;
            bool ifetch = false;
            bool is_store = false;
            Addr req_addr = 0;
            std::uint64_t store_value = 0;
            DoneFn done;
        };
        std::vector<Waiter> waiters;
        bool exclusive_needed = false;
    };

    /** L1-miss probe done; forward the request to the L2. */
    struct AccessEvent final : sim::Event
    {
        void process() override { mh->accessEvent(*this); }
        MemHierarchy *mh = nullptr;
        Addr ba = 0;
        Cycle t0 = 0;
        MshrEntry::Waiter w{};
    };

    /** L2 tag probe confirmed a miss; issue the DRAM read. */
    struct TagProbeEvent final : sim::Event
    {
        void process() override { mh->tagProbe(*this); }
        MemHierarchy *mh = nullptr;
        Addr addr = 0;
    };

    /**
     * Data response reaching the cores: fill L1s, apply the store,
     * run the completions. The waiters vector's capacity is reused
     * across acquisitions.
     */
    struct ResponseEvent final : sim::Event
    {
        void process() override { mh->respond(*this); }
        MemHierarchy *mh = nullptr;
        Addr addr = 0;
        Cycle t0 = 0;
        bool sample_hit = false;
        std::vector<MshrEntry::Waiter> waiters;
    };

    unsigned bankOf(Addr addr) const;
    Addr blockAddr(Addr addr) const { return addr & ~Addr{63}; }

    /**
     * Run @p data through a bank port. Returns the completion cycle
     * (transfer fully delivered); the bank stays busy until then.
     */
    Cycle transfer(unsigned bank, const Block512 &data, bool write_dir,
                   Cycle earliest);

    void accessEvent(AccessEvent &ev);
    void tagProbe(TagProbeEvent &ev);
    void respond(ResponseEvent &ev);
    AccessEvent &acquireAccess();
    ResponseEvent &acquireResponse();

    void l2Request(Addr addr, Cycle t0, MshrEntry::Waiter w);
    void serveHit(L2Array::Line &line, unsigned bank, Addr addr,
                  Cycle earliest, Cycle t0, ResponseEvent &ev);
    void startMiss(Addr addr, Cycle t0, MshrEntry::Waiter w);
    void finishMiss(Addr addr);

    /** Flush/downgrade coherence copies; returns true if a recall
     *  transfer was needed (owner had a Modified copy). */
    bool recallForShared(L2Array::Line &line, Addr addr, Cycle earliest,
                         Cycle *ready);
    bool invalidateSharers(L2Array::Line &line, Addr addr,
                           unsigned except_core, Cycle earliest,
                           Cycle *ready);

    void fillL1(const MshrEntry::Waiter &w, Addr addr,
                L2Array::Line &l2line);
    void evictL1Victim(unsigned core, L1Array &l1, Addr addr, bool ifetch);

    sim::EventQueue &_eq;
    L2Config _cfg;
    energy::CacheEnergyModel _energy_model;
    BackingStore &_backing;
    dram::DramSystem _dram;

    std::vector<L1Array> _l1i;
    std::vector<L1Array> _l1d;
    L2Array _l2;
    std::vector<Bank> _banks;
    std::unordered_map<Addr, MshrEntry> _mshrs;

    std::deque<AccessEvent> _access_events; //!< pinned storage
    std::vector<AccessEvent *> _access_free;
    std::deque<TagProbeEvent> _tag_events;
    std::vector<TagProbeEvent *> _tag_free;
    std::deque<ResponseEvent> _response_events;
    std::vector<ResponseEvent *> _response_free;

    std::unique_ptr<ecc::BlockCodec> _codec;
    BitVec _scratch;     //!< reusable transfer word
    BitVec _scratch_raw; //!< reusable 512-bit word (pre-ECC)

    unsigned _array_read_cycles;
    unsigned _array_write_cycles;
    Cycle _flight;

    HierarchyStats _stats;
    core::ChunkStats _chunk_stats;
};

} // namespace desc::cache

#endif // DESC_CACHE_HIERARCHY_HH
