/**
 * @file
 * The full memory hierarchy of Table 1: per-core L1 I/D caches kept
 * coherent with MESI, an inclusive shared L2 (banked UCA or S-NUCA-1)
 * whose data ports use a pluggable TransferScheme, and DDR3 memory.
 *
 * Every 512-bit block that crosses the L2 H-tree — read hits, write
 * backs, fills, dirty evictions, and coherence flushes — goes through
 * the bank's TransferScheme instance, which yields the serialization
 * window (performance) and the wire transitions (energy) for that
 * exact data value. Bank conflicts arise naturally because a bank is
 * busy for the duration of each transfer window.
 */

#ifndef DESC_CACHE_HIERARCHY_HH
#define DESC_CACHE_HIERARCHY_HH

#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "cache/array.hh"
#include "cache/blockdata.hh"
#include "cache/l2mode.hh"
#include "common/stats.hh"
#include "core/chunk.hh"
#include "dram/ddr3.hh"
#include "ecc/blockcodec.hh"
#include "encoding/scheme.hh"
#include "energy/cacti.hh"
#include "sim/eventq.hh"

namespace desc::cache {

/**
 * Completion callback for an asynchronous access: a plain function
 * pointer plus a context pointer and a small integer argument. All
 * core models key their continuations on (object, thread id), so this
 * covers every caller without the type erasure and heap spill of
 * std::function (whose captures exceed the libstdc++ small-buffer
 * size on the hot miss path).
 */
struct DoneCb
{
    using Fn = void (*)(void *ctx, unsigned arg);

    Fn fn = nullptr;
    void *ctx = nullptr;
    unsigned arg = 0;

    explicit operator bool() const { return fn != nullptr; }
    void operator()() const { fn(ctx, arg); }
};

/** MESI coherence states of an L1 line. */
enum class MesiState : std::uint8_t { Invalid, Shared, Exclusive, Modified };

struct L1Config
{
    std::uint64_t capacity_bytes = 16 * 1024;
    unsigned assoc_d = 4; //!< DL1: 4-way (Table 1)
    unsigned assoc_i = 1; //!< IL1: direct-mapped (Table 1)
    unsigned block_bytes = 64;
    Cycle hit_latency = 2;
};

struct L2Config
{
    /** Geometry/device organization (shared with the energy model). */
    energy::CacheOrg org{};

    encoding::SchemeKind scheme = encoding::SchemeKind::Binary;
    encoding::SchemeConfig scheme_cfg{};

    /** S-NUCA-1 mode: statically routed banks, distance latency. */
    bool snuca = false;
    unsigned snuca_min_latency = 3;
    unsigned snuca_max_latency = 13;

    /** Controller decode/queue latency. */
    Cycle ctrl_latency = 2;

    /** Extra logic delay of the DESC TX/RX pair (synthesis: ~625ps). */
    Cycle desc_interface_delay = 2;

    /** Coherence recall (L1 flush) round-trip penalty. */
    Cycle recall_latency = 10;

    /** SECDED protection on the H-trees (Section 3.2.3). */
    bool ecc = false;
    unsigned ecc_segment_bits = 128;

    /** Collect the Figure 12/13 chunk statistics (costs time). */
    bool collect_chunk_stats = false;

    /**
     * Back DESC banks with full cycle-accurate links (LinkDescScheme)
     * instead of the behavioral model. Results are identical; with the
     * link fast path the cost is comparable. Non-DESC schemes ignore
     * the flag.
     */
    bool link_backed = false;

    /**
     * The scheme configuration actually used on the wires: with ECC
     * the bus word grows by the parity bits and the bus by the parity
     * wires (Figure 9), for every scheme.
     */
    encoding::SchemeConfig effectiveSchemeConfig() const;

    bool
    isDesc() const
    {
        using encoding::SchemeKind;
        return scheme == SchemeKind::DescBasic
            || scheme == SchemeKind::DescZeroSkip
            || scheme == SchemeKind::DescLastValueSkip;
    }
};

struct HierarchyStats
{
    Counter l1i_accesses, l1i_misses;
    Counter l1d_accesses, l1d_misses;
    Counter upgrades;

    Counter l2_requests, l2_hits, l2_misses;
    Counter l2_writebacks_in;  //!< dirty L1 evictions into L2
    Counter l2_fills;          //!< DRAM fills into L2
    Counter l2_evictions_out;  //!< dirty L2 evictions to DRAM
    Counter recalls;           //!< coherence flushes from an L1 owner

    Counter read_transfers, write_transfers;

    /** Transition counts (weighted by bank distance under S-NUCA). */
    double data_flips = 0.0;
    double ctrl_flips = 0.0;

    /** Total cycles any bank port spent transferring (DESC power). */
    Cycle bank_busy_cycles = 0;

    Average hit_latency;      //!< request arrival to data response
    Average transfer_window;  //!< serialization cycles per transfer
};

class MemHierarchy
{
  public:
    MemHierarchy(sim::EventQueue &eq, const L2Config &l2cfg,
                 BackingStore &backing, unsigned num_cores,
                 const L1Config &l1cfg = L1Config{},
                 const dram::DramConfig &dram_cfg = dram::DramConfig{});

    /**
     * One core memory access. Returns the access latency if it
     * completes synchronously (L1 hit / upgrade-free store); otherwise
     * returns nullopt and @p done fires at the completion cycle.
     *
     * @param store_value for writes: the 64-bit word the core stores
     *        (keeps the data stream through the hierarchy realistic).
     */
    std::optional<Cycle> access(unsigned core, Addr addr, bool is_write,
                                std::uint64_t store_value, bool ifetch,
                                DoneCb done);

    const HierarchyStats &stats() const { return _stats; }
    const dram::DramSystem &dramSystem() const { return _dram; }
    const core::ChunkStats &chunkStats() const { return _chunk_stats; }
    const L2Config &config() const { return _cfg; }

    /** Average L2 hit delay in cycles (Figure 21). */
    double avgHitDelay() const { return _stats.hit_latency.mean(); }

    /**
     * Functional warmup: install the block at @p addr into the L2
     * without consuming simulated time or charging activity. Used to
     * reach steady-state cache contents before the timed region, as
     * SimPoint-style sampled simulation requires.
     *
     * The install is lazy: only the tag is placed, the payload stays
     * virgin and is materialized from the backing store at the first
     * data read (l2Data()). Since the backing contents of a
     * never-written block are a pure function of its address, the
     * observable data stream is identical to an eager fill.
     */
    void prefill(Addr addr);

    /**
     * Capture of the post-prefill L2 state, cheap to reapply. Valid
     * only for a hierarchy that has seen nothing but prefill() calls:
     * every valid line is then a clean, unshared, virgin install, so
     * tags + recency are the whole state.
     */
    struct WarmupState
    {
        TagImage l2;
    };

    WarmupState warmupSnapshot() const;

    /** Reapply a snapshot to a freshly constructed hierarchy (same
     *  geometry); equivalent to re-running the prefill() sequence the
     *  snapshot was taken after. */
    void restoreWarmup(const WarmupState &w);

    /**
     * Would access() complete synchronously right now? Mirrors the
     * L1-hit cases (read hit on any valid line; write hit on an M/E
     * line) without mutating any state — no LRU touch, no stats. The
     * cores' fast-forward paths use this to prove a run of memory ops
     * will all be 2-cycle hits before retiring them in one step.
     */
    bool
    peekHit(unsigned core, Addr addr, bool is_write, bool ifetch) const
    {
        const L1Array &l1 = ifetch ? _l1i[core] : _l1d[core];
        auto way = l1.lookup(addr);
        if (way == L1Array::kNoWay)
            return false;
        if (!is_write)
            return true;
        MesiState st = l1.meta(way).state;
        return st == MesiState::Modified || st == MesiState::Exclusive;
    }

    /** True when the flat phase-chained transaction engine is active. */
    bool usesFlatTxns() const { return _flat; }

  private:
    struct L1Meta
    {
        MesiState state = MesiState::Invalid;
        Block512 data{};
    };

    struct L2Meta
    {
        /** User-provided so that constructing the (multi-megabyte)
         *  L2 array does not zero every payload: data stays
         *  indeterminate until a fill, writeback, or l2Data()
         *  materialization writes the whole block. */
        L2Meta() {}

        bool dirty = false;
        std::uint8_t sharers = 0; //!< DL1 sharer bitmap
        std::uint8_t owner = kNoOwner;
        /** Prefilled line whose payload was never materialized: data
         *  is still default and must be loaded from the backing store
         *  before the first read (see l2Data()). Cleared by any
         *  full-block write. */
        bool virgin = false;
        Block512 data;
    };

    static constexpr std::uint8_t kNoOwner = 0xff;

    using L1Array = SetAssocArray<L1Meta>;
    using L2Array = SetAssocArray<L2Meta>;

    struct Bank
    {
        Cycle free_at = 0;
        std::unique_ptr<encoding::TransferScheme> read_scheme;
        std::unique_ptr<encoding::TransferScheme> write_scheme;
        double energy_weight = 1.0;
        Cycle route_latency = 0;
    };

    struct MshrEntry
    {
        /**
         * One core access waiting on an L2 response. Carries the
         * store payload so the response path can apply the write
         * after filling the L1 — no per-request closure needed.
         */
        struct Waiter
        {
            unsigned core = 0;
            bool exclusive = false;
            bool ifetch = false;
            bool is_store = false;
            Addr req_addr = 0;
            std::uint64_t store_value = 0;
            DoneCb done{};
        };
        std::vector<Waiter> waiters;
        bool exclusive_needed = false;
    };

    /** L1-miss probe done; forward the request to the L2. */
    struct AccessEvent final : sim::Event
    {
        void process() override { mh->accessEvent(*this); }
        MemHierarchy *mh = nullptr;
        Addr ba = 0;
        Cycle t0 = 0;
        MshrEntry::Waiter w{};
    };

    /** L2 tag probe confirmed a miss; issue the DRAM read. */
    struct TagProbeEvent final : sim::Event
    {
        void process() override { mh->tagProbe(*this); }
        MemHierarchy *mh = nullptr;
        Addr addr = 0;
    };

    /**
     * Data response reaching the cores: fill L1s, apply the store,
     * run the completions. The waiters vector's capacity is reused
     * across acquisitions.
     */
    struct ResponseEvent final : sim::Event
    {
        void process() override { mh->respond(*this); }
        MemHierarchy *mh = nullptr;
        Addr addr = 0;
        Cycle t0 = 0;
        bool sample_hit = false;
        std::vector<MshrEntry::Waiter> waiters;
    };

    /** Plain delayed completion (store-upgrade acknowledgement). */
    struct DeliverEvent final : sim::Event
    {
        void process() override { mh->deliver(*this); }
        MemHierarchy *mh = nullptr;
        DoneCb cb{};
    };

    /**
     * Flat-engine transaction: one pooled event that carries a cache
     * transaction through its phases by rescheduling itself — request
     * at the L2 controller, tag probe on a miss, data response back at
     * the cores. Each phase issues its schedule call at exactly the
     * point the reference chain would allocate its next event, so the
     * global event order (and with it every observable) is identical.
     */
    struct TxnEvent final : sim::Event
    {
        enum class Phase : std::uint8_t { Request, Probe, Respond };

        void process() override { mh->txnEvent(*this); }

        MemHierarchy *mh = nullptr;
        Phase phase = Phase::Request;
        Addr addr = 0;
        Cycle t0 = 0;
        bool sample_hit = false;
        std::vector<MshrEntry::Waiter> waiters;
    };

    static constexpr std::uint32_t kNoMshr = ~std::uint32_t{0};

    unsigned bankOf(Addr addr) const;
    Addr blockAddr(Addr addr) const { return addr & ~Addr{63}; }

    /** Index into _mshr_pool of the entry for @p addr, or kNoMshr. */
    std::uint32_t
    findMshr(Addr addr) const
    {
        for (const auto &[a, idx] : _mshr_active) {
            if (a == addr)
                return idx;
        }
        return kNoMshr;
    }

    /**
     * Run @p data through a bank port. Returns the completion cycle
     * (transfer fully delivered); the bank stays busy until then.
     */
    Cycle transfer(unsigned bank, const Block512 &data, bool write_dir,
                   Cycle earliest);

    /**
     * The payload of L2 line @p way, materializing a virgin prefill
     * from the backing store first. Every read of L2 data must come
     * through here; full-block writes instead clear the virgin flag
     * at the write site.
     */
    const Block512 &l2Data(L2Array::Way way);

    void accessEvent(AccessEvent &ev);
    void tagProbe(TagProbeEvent &ev);
    void respond(ResponseEvent &ev);
    void deliver(DeliverEvent &ev);
    void txnEvent(TxnEvent &ev);
    AccessEvent &acquireAccess();
    ResponseEvent &acquireResponse();
    TxnEvent &acquireTxn();

    void l2Request(Addr addr, Cycle t0, MshrEntry::Waiter w);
    void startMiss(Addr addr, Cycle t0, MshrEntry::Waiter w);
    void finishMiss(Addr addr);

    /**
     * Engine-shared transaction steps. The hit path performs the
     * coherence actions and the data transfer, returning the cycle
     * the response reaches the cores; the miss path allocates the
     * MSHR and returns the tag-probe completion cycle; the respond
     * step fills L1s, applies stores, and runs the completions.
     */
    Cycle serveHitCommon(L2Array::Way way, Addr addr, Cycle t0,
                         unsigned core, bool exclusive, bool ifetch);
    Cycle startMissCommon(Addr addr, Cycle t0, MshrEntry::Waiter w);
    void respondCommon(Addr addr, Cycle t0, bool sample_hit,
                       std::vector<MshrEntry::Waiter> &waiters);

    /** Flush/downgrade coherence copies; returns true if a recall
     *  transfer was needed (owner had a Modified copy). */
    bool recallForShared(L2Array::Way way, Addr addr, Cycle earliest,
                         Cycle *ready);
    bool invalidateSharers(L2Array::Way way, Addr addr,
                           unsigned except_core, Cycle earliest,
                           Cycle *ready);

    void fillL1(const MshrEntry::Waiter &w, Addr addr, L2Array::Way l2way);
    void evictL1Victim(unsigned core, L1Array &l1, Addr addr, bool ifetch);

    sim::EventQueue &_eq;
    L2Config _cfg;
    energy::CacheEnergyModel _energy_model;
    BackingStore &_backing;
    dram::DramSystem _dram;

    std::vector<L1Array> _l1i;
    std::vector<L1Array> _l1d;
    L2Array _l2;
    std::vector<Bank> _banks;

    /**
     * MSHRs as an index-stable pool plus a small active list. The
     * handful of misses in flight make a linear scan cheaper than
     * hashing, and recycled entries keep their waiters capacity.
     */
    std::vector<MshrEntry> _mshr_pool;
    std::vector<std::uint32_t> _mshr_free;
    std::vector<std::pair<Addr, std::uint32_t>> _mshr_active;

    std::deque<AccessEvent> _access_events; //!< pinned storage
    std::vector<AccessEvent *> _access_free;
    std::deque<TagProbeEvent> _tag_events;
    std::vector<TagProbeEvent *> _tag_free;
    std::deque<ResponseEvent> _response_events;
    std::vector<ResponseEvent *> _response_free;
    std::deque<DeliverEvent> _deliver_events;
    std::vector<DeliverEvent *> _deliver_free;
    std::deque<TxnEvent> _txn_events;
    std::vector<TxnEvent *> _txn_free;

    std::unique_ptr<ecc::BlockCodec> _codec;
    BitVec _scratch;     //!< reusable transfer word
    BitVec _scratch_raw; //!< reusable 512-bit word (pre-ECC)

    unsigned _array_read_cycles;
    unsigned _array_write_cycles;
    Cycle _flight;
    bool _flat; //!< flat transaction engine (latched L2 mode)

    HierarchyStats _stats;
    core::ChunkStats _chunk_stats;
};

} // namespace desc::cache

#endif // DESC_CACHE_HIERARCHY_HH
