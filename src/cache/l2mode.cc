#include "cache/l2mode.hh"

#include <cstdlib>
#include <cstring>
#include <string>

#include "common/log.hh"

namespace desc::cache {

namespace {

std::optional<L2Mode> g_l2_mode_override;

} // namespace

void
setDefaultL2Mode(std::optional<L2Mode> mode)
{
    g_l2_mode_override = mode;
}

L2Mode
defaultL2Mode()
{
    if (g_l2_mode_override)
        return *g_l2_mode_override;
    static const L2Mode env_mode = [] {
        const char *env = std::getenv("DESC_L2_MODE");
        if (!env || !*env || !std::strcmp(env, "auto"))
            return L2Mode::Auto;
        if (!std::strcmp(env, "flat"))
            return L2Mode::Flat;
        if (!std::strcmp(env, "event"))
            return L2Mode::Event;
        warnOnce("desc-l2-mode",
                 std::string("DESC_L2_MODE=") + env
                     + " not recognized (auto|flat|event); using auto");
        return L2Mode::Auto;
    }();
    return env_mode;
}

} // namespace desc::cache
