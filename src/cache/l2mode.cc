#include "cache/l2mode.hh"

#include "common/env.hh"

namespace desc::cache {

namespace {

std::optional<L2Mode> g_l2_mode_override;

} // namespace

void
setDefaultL2Mode(std::optional<L2Mode> mode)
{
    g_l2_mode_override = mode;
}

L2Mode
defaultL2Mode()
{
    if (g_l2_mode_override)
        return *g_l2_mode_override;
    static const L2Mode env_mode = [] {
        static const env::EnumName kWords[] = {
            {"auto", int(L2Mode::Auto)},
            {"flat", int(L2Mode::Flat)},
            {"event", int(L2Mode::Event)},
        };
        return L2Mode(env::enumOr(env::Var::L2Mode, kWords, 3,
                                  int(L2Mode::Auto)));
    }();
    return env_mode;
}

} // namespace desc::cache
