#include "cache/hierarchy.hh"

#include "common/contract.hh"
#include "common/prof.hh"
#include "common/trace.hh"
#include "core/factory.hh"

namespace desc::cache {

encoding::SchemeConfig
L2Config::effectiveSchemeConfig() const
{
    encoding::SchemeConfig c = scheme_cfg;
    if (!ecc)
        return c;

    ecc::BlockCodec codec(c.block_bits, ecc_segment_bits);
    if (isDesc()) {
        // Parity chunks ride on extra wires (Figure 9): e.g. the
        // (137,128) code adds nine 4-bit parity chunks to a 128-wire
        // interface.
        unsigned parity_chunks = codec.totalParityBits() / c.chunk_bits;
        DESC_ASSERT(codec.totalParityBits() % c.chunk_bits == 0,
                    "parity bits not chunk-aligned");
        c.bus_wires += parity_chunks;
    } else {
        // Binary-style buses keep their beat count and widen by the
        // parity wires per beat (e.g. 64 -> 72 for (72,64)).
        unsigned beats = c.block_bits / c.bus_wires;
        DESC_ASSERT(codec.busBits() % beats == 0,
                    "ECC bus word not beat-aligned");
        c.bus_wires = codec.busBits() / beats;
    }
    c.block_bits = codec.busBits();
    return c;
}

MemHierarchy::MemHierarchy(sim::EventQueue &eq, const L2Config &l2cfg,
                           BackingStore &backing, unsigned num_cores,
                           const L1Config &l1cfg,
                           const dram::DramConfig &dram_cfg)
    : _eq(eq), _cfg(l2cfg), _energy_model(l2cfg.org), _backing(backing),
      _dram(eq, dram_cfg),
      _l2(l2cfg.org.capacity_bytes, l2cfg.org.assoc, l2cfg.org.block_bytes),
      _scratch(0), _scratch_raw(l2cfg.scheme_cfg.block_bits),
      _chunk_stats(l2cfg.scheme_cfg.chunk_bits == 0
                       ? 4
                       : l2cfg.scheme_cfg.chunk_bits,
                   128)
{
    DESC_ASSERT(num_cores >= 1 && num_cores <= 8,
                "directory bitmap supports up to 8 cores");

    for (unsigned c = 0; c < num_cores; c++) {
        _l1i.emplace_back(l1cfg.capacity_bytes, l1cfg.assoc_i,
                          l1cfg.block_bytes);
        _l1d.emplace_back(l1cfg.capacity_bytes, l1cfg.assoc_d,
                          l1cfg.block_bytes);
    }

    auto eff = _cfg.effectiveSchemeConfig();
    if (_cfg.ecc) {
        _codec = std::make_unique<ecc::BlockCodec>(
            _cfg.scheme_cfg.block_bits, _cfg.ecc_segment_bits);
        _scratch = BitVec(_codec->busBits());
    }

    unsigned banks = _cfg.org.banks;
    _banks.resize(banks);
    for (unsigned b = 0; b < banks; b++) {
        if (_cfg.link_backed) {
            _banks[b].read_scheme =
                core::makeLinkBackedScheme(_cfg.scheme, eff);
            _banks[b].write_scheme =
                core::makeLinkBackedScheme(_cfg.scheme, eff);
        } else {
            _banks[b].read_scheme = core::makeScheme(_cfg.scheme, eff);
            _banks[b].write_scheme = core::makeScheme(_cfg.scheme, eff);
        }
        if (_cfg.snuca && banks > 1) {
            double frac = double(b) / double(banks - 1);
            _banks[b].route_latency = Cycle(
                _cfg.snuca_min_latency
                + frac * (_cfg.snuca_max_latency - _cfg.snuca_min_latency));
            // Flip energy scales with routing distance; mean stays 1.
            _banks[b].energy_weight = 0.4 + 1.2 * frac;
        }
    }

    // Timing from the geometry model.
    const double cycle_ps = 1000.0 / _cfg.org.clock_ghz;
    const auto &dev = energy::tech22().device(_cfg.org.cell_dev);
    _array_read_cycles = std::max<unsigned>(
        1, unsigned(250.0 * dev.access_time_factor / cycle_ps + 0.999));
    _array_write_cycles = _array_read_cycles;
    _flight = _energy_model.htreeFlightCycles();
}

unsigned
MemHierarchy::bankOf(Addr addr) const
{
    return unsigned((addr >> 6) % _cfg.org.banks);
}

Cycle
MemHierarchy::transfer(unsigned bank_idx, const Block512 &data,
                       bool write_dir, Cycle earliest)
{
    Bank &bank = _banks[bank_idx];

    toBitVec(data, _scratch_raw);
    const BitVec *word = &_scratch_raw;
    if (_codec) {
        _codec->encodeInto(_scratch_raw, _scratch);
        word = &_scratch;
    }
    if (_cfg.collect_chunk_stats)
        _chunk_stats.observe(_scratch_raw);

    auto &scheme = write_dir ? *bank.write_scheme : *bank.read_scheme;
    encoding::TransferResult r;
    {
        DESC_PROF_SCOPE(Encoder);
        r = scheme.transfer(*word);
    }
    DESC_PROF_CYCLES(Encoder, r.cycles);

    Cycle window = r.cycles
        + (_cfg.isDesc() ? _cfg.desc_interface_delay : 0);
    unsigned array = write_dir ? _array_write_cycles : _array_read_cycles;

    Cycle start = std::max(earliest, bank.free_at);
    Cycle complete = start + array + window;
    // Array access of the next request can overlap this transfer.
    bank.free_at = start + std::max<Cycle>(array, window);

    _stats.data_flips += double(r.data_flips) * bank.energy_weight;
    _stats.ctrl_flips += double(r.control_flips) * bank.energy_weight;
    _stats.bank_busy_cycles += window;
    _stats.transfer_window.sample(double(window));
    (write_dir ? _stats.write_transfers : _stats.read_transfers).inc();

    DESC_TRACE_EVENT(Cache, _eq.now(), "bank ", bank_idx,
                     write_dir ? " write" : " read",
                     " transfer: window ", window, " cyc, ",
                     r.data_flips, " data + ", r.control_flips,
                     " ctrl flips, complete @", complete);

    return complete;
}

void
MemHierarchy::evictL1Victim(unsigned core, L1Array &l1, Addr addr,
                            bool ifetch)
{
    auto &v = l1.victim(addr);
    if (!v.valid)
        return;
    Addr va = l1.addrOf(v, l1.setOf(addr));
    if (!ifetch) {
        auto *l2line = _l2.lookup(va);
        if (v.meta.state == MesiState::Modified) {
            _stats.l2_writebacks_in.inc();
            if (l2line) {
                l2line->meta.data = v.meta.data;
                l2line->meta.dirty = true;
            }
            transfer(bankOf(va), v.meta.data, true,
                     _eq.now() + _cfg.ctrl_latency + _flight);
        }
        if (l2line) {
            l2line->meta.sharers &= std::uint8_t(~(1u << core));
            if (l2line->meta.owner == core)
                l2line->meta.owner = kNoOwner;
        }
    }
    l1.invalidate(v);
}

bool
MemHierarchy::recallForShared(L2Array::Line &line, Addr addr,
                              Cycle earliest, Cycle *ready)
{
    *ready = earliest;
    if (line.meta.owner == kNoOwner)
        return false;
    unsigned owner = line.meta.owner;
    line.meta.owner = kNoOwner;
    auto *l1line = _l1d[owner].lookup(addr);
    if (!l1line)
        return false;
    bool was_dirty = l1line->meta.state == MesiState::Modified;
    l1line->meta.state = MesiState::Shared;
    if (was_dirty) {
        _stats.recalls.inc();
        DESC_TRACE_EVENT(Cache, _eq.now(),
                         "coherence recall: owner core ", owner,
                         " addr 0x", std::hex, addr, std::dec);
        line.meta.data = l1line->meta.data;
        line.meta.dirty = true;
        *ready = transfer(bankOf(addr), line.meta.data, true, earliest);
        return true;
    }
    return false;
}

bool
MemHierarchy::invalidateSharers(L2Array::Line &line, Addr addr,
                                unsigned except_core, Cycle earliest,
                                Cycle *ready)
{
    *ready = earliest;
    bool recalled = false;
    std::uint8_t sharers = line.meta.sharers;
    for (unsigned c = 0; c < _l1d.size(); c++) {
        if (c == except_core || !(sharers & (1u << c)))
            continue;
        auto *l1line = _l1d[c].lookup(addr);
        if (l1line) {
            if (l1line->meta.state == MesiState::Modified) {
                _stats.recalls.inc();
                line.meta.data = l1line->meta.data;
                line.meta.dirty = true;
                *ready = transfer(bankOf(addr), line.meta.data, true,
                                  earliest);
                recalled = true;
            }
            _l1d[c].invalidate(*l1line);
        }
        line.meta.sharers &= std::uint8_t(~(1u << c));
    }
    if (line.meta.owner != kNoOwner && line.meta.owner != except_core)
        line.meta.owner = kNoOwner;
    // Postcondition: only the exempted core may still share the line,
    // and the directory cannot name an evicted sharer as owner.
    DESC_DCHECK(except_core >= 8
                    || (line.meta.sharers
                        & std::uint8_t(~(1u << except_core))) == 0,
                "sharers survived invalidation: bitmap ",
                unsigned(line.meta.sharers), " except core ",
                except_core);
    DESC_DCHECK(line.meta.owner == kNoOwner
                    || line.meta.owner == except_core,
                "stale owner ", unsigned(line.meta.owner),
                " after invalidation");
    return recalled;
}

void
MemHierarchy::fillL1(const MshrEntry::Waiter &w, Addr addr,
                     L2Array::Line &l2line)
{
    L1Array &l1 = w.ifetch ? _l1i[w.core] : _l1d[w.core];
    auto *line = l1.lookup(addr);
    if (!line) {
        evictL1Victim(w.core, l1, addr, w.ifetch);
        auto &v = l1.victim(addr);
        l1.fill(v, addr);
        line = &v;
    }
    line->meta.data = l2line.meta.data;
    if (w.ifetch) {
        // Instruction lines are read-only and not directory-tracked.
        line->meta.state = MesiState::Shared;
        return;
    }
    if (w.exclusive) {
        line->meta.state = MesiState::Exclusive;
        l2line.meta.owner = std::uint8_t(w.core);
        l2line.meta.sharers = std::uint8_t(1u << w.core);
    } else {
        bool alone = l2line.meta.sharers == 0;
        line->meta.state =
            alone ? MesiState::Exclusive : MesiState::Shared;
        l2line.meta.sharers |= std::uint8_t(1u << w.core);
        l2line.meta.owner =
            alone ? std::uint8_t(w.core) : kNoOwner;
    }
}

MemHierarchy::AccessEvent &
MemHierarchy::acquireAccess()
{
    if (_access_free.empty()) {
        _access_events.emplace_back();
        _access_events.back().mh = this;
        return _access_events.back();
    }
    AccessEvent *ev = _access_free.back();
    _access_free.pop_back();
    return *ev;
}

MemHierarchy::ResponseEvent &
MemHierarchy::acquireResponse()
{
    if (_response_free.empty()) {
        _response_events.emplace_back();
        _response_events.back().mh = this;
        return _response_events.back();
    }
    ResponseEvent *ev = _response_free.back();
    _response_free.pop_back();
    return *ev;
}

void
MemHierarchy::accessEvent(AccessEvent &ev)
{
    DESC_PROF_SCOPE(CacheRequest);
    const Addr ba = ev.ba;
    const Cycle t0 = ev.t0;
    MshrEntry::Waiter w = std::move(ev.w);
    ev.w.done = nullptr;
    _access_free.push_back(&ev);
    l2Request(ba, t0, std::move(w));
}

void
MemHierarchy::tagProbe(TagProbeEvent &ev)
{
    DESC_PROF_SCOPE(CacheMiss);
    const Addr addr = ev.addr;
    _tag_free.push_back(&ev);
    _dram.access(addr, false, [this, addr]() { finishMiss(addr); });
}

void
MemHierarchy::respond(ResponseEvent &ev)
{
    DESC_PROF_SCOPE(CacheRespond);
    if (ev.sample_hit)
        _stats.hit_latency.sample(double(_eq.now() - ev.t0));
    auto *line = _l2.lookup(ev.addr);
    for (auto &w : ev.waiters) {
        if (line) {
            fillL1(w, ev.addr, *line);
            _l2.touch(*line);
        }
        if (w.is_store) {
            auto *ln = _l1d[w.core].lookup(w.req_addr);
            if (ln) {
                ln->meta.state = MesiState::Modified;
                ln->meta.data[unsigned((w.req_addr >> 3) & 7)] =
                    w.store_value;
            }
        }
        if (w.done)
            w.done();
    }
    ev.waiters.clear(); // destroys the DoneFns, keeps the capacity
    _response_free.push_back(&ev);
}

void
MemHierarchy::serveHit(L2Array::Line &line, unsigned bank, Addr addr,
                       Cycle earliest, Cycle t0, ResponseEvent &ev)
{
    Cycle complete = transfer(bank, line.meta.data, false, earliest);
    Cycle flight_back =
        _cfg.snuca ? _banks[bank].route_latency : _flight;
    Cycle resp = complete + flight_back;

    ev.addr = addr;
    ev.t0 = t0;
    ev.sample_hit = true;
    _eq.schedule(ev, resp);
}

void
MemHierarchy::l2Request(Addr addr, Cycle t0, MshrEntry::Waiter w)
{
    _stats.l2_requests.inc();
    const unsigned core = w.core;
    const bool exclusive = w.exclusive;

    auto mshr = _mshrs.find(addr);
    if (mshr != _mshrs.end()) {
        mshr->second.waiters.push_back(std::move(w));
        mshr->second.exclusive_needed |= exclusive;
        return;
    }

    auto *line = _l2.lookup(addr);
    if (line) {
        _stats.l2_hits.inc();
        DESC_TRACE_EVENT(Cache, _eq.now(), "L2 hit: core ", core,
                         exclusive ? " excl" : " shared",
                         w.ifetch ? " ifetch" : "", " addr 0x",
                         std::hex, addr, std::dec);
        unsigned bank = bankOf(addr);
        Cycle flight_out =
            _cfg.snuca ? _banks[bank].route_latency : _flight;
        Cycle earliest = t0 + _cfg.ctrl_latency + flight_out;

        Cycle ready = earliest;
        if (exclusive) {
            if (invalidateSharers(*line, addr, core, earliest, &ready))
                ready += _cfg.recall_latency;
        } else if (line->meta.owner != kNoOwner
                   && line->meta.owner != core) {
            if (recallForShared(*line, addr, earliest, &ready))
                ready += _cfg.recall_latency;
        }

        ResponseEvent &ev = acquireResponse();
        ev.waiters.push_back(std::move(w));
        serveHit(*line, bank, addr, ready, t0, ev);
        return;
    }

    startMiss(addr, t0, std::move(w));
}

void
MemHierarchy::startMiss(Addr addr, Cycle t0, MshrEntry::Waiter w)
{
    _stats.l2_misses.inc();
    DESC_TRACE_EVENT(Cache, _eq.now(), "L2 miss: core ", w.core,
                     w.exclusive ? " excl" : " shared",
                     w.ifetch ? " ifetch" : "", " addr 0x", std::hex,
                     addr, std::dec, ", to DRAM");
    // MSHR occupancy contract: one entry per block address (merges go
    // through l2Request), and entries only die in finishMiss.
    DESC_DCHECK(_mshrs.find(addr) == _mshrs.end(),
                "duplicate MSHR allocation for addr 0x", std::hex, addr,
                std::dec);
    MshrEntry entry;
    entry.exclusive_needed = w.exclusive;
    entry.waiters.push_back(std::move(w));
    _mshrs.emplace(addr, std::move(entry));

    // Tag probe detects the miss, then the request goes to memory.
    Cycle tag_done = t0 + _cfg.ctrl_latency + _flight + 2;
    TagProbeEvent *tev;
    if (_tag_free.empty()) {
        _tag_events.emplace_back();
        _tag_events.back().mh = this;
        tev = &_tag_events.back();
    } else {
        tev = _tag_free.back();
        _tag_free.pop_back();
    }
    tev->addr = addr;
    _eq.schedule(*tev, tag_done);
}

void
MemHierarchy::finishMiss(Addr addr)
{
    DESC_PROF_SCOPE(CacheMiss);
    const Block512 &mem = _backing.fetch(addr);

    // Prefer victims without live L1 copies: evicting an L1-resident
    // line forces an inclusive back-invalidation that would wipe the
    // cores' hot sets whenever the L2 churns.
    auto &v = _l2.victimPreferring(addr, [](const L2Array::Line &line) {
        return line.meta.sharers != 0 || line.meta.owner != kNoOwner;
    });
    unsigned bank = bankOf(addr);
    if (v.valid) {
        Addr va = _l2.addrOf(v, _l2.setOf(addr));
        // Inclusive hierarchy: L1 copies of the victim must go.
        Cycle ready;
        invalidateSharers(v, va, unsigned(-1), _eq.now(), &ready);
        if (v.meta.dirty) {
            _stats.l2_evictions_out.inc();
            DESC_TRACE_EVENT(Cache, _eq.now(),
                             "L2 dirty eviction: addr 0x", std::hex,
                             va, std::dec, " to DRAM");
            transfer(bank, v.meta.data, false, _eq.now());
            _backing.store(va, v.meta.data);
            _dram.access(va, true, nullptr);
        }
        _l2.invalidate(v);
    }
    _l2.fill(v, addr);
    v.meta.data = mem;
    v.meta.dirty = false;
    _stats.l2_fills.inc();

    // Fill the data array through the bank's write port; the reply to
    // the cores leaves the controller in parallel.
    transfer(bank, mem, true, _eq.now() + _cfg.ctrl_latency);

    Cycle resp = _eq.now() + _cfg.ctrl_latency;
    auto it = _mshrs.find(addr);
    DESC_ASSERT(it != _mshrs.end(), "miss completion without MSHR");

    ResponseEvent &ev = acquireResponse();
    for (auto &w : it->second.waiters)
        ev.waiters.push_back(std::move(w));
    _mshrs.erase(it);

    ev.addr = addr;
    ev.t0 = 0;
    ev.sample_hit = false;
    _eq.schedule(ev, resp);
}

void
MemHierarchy::prefill(Addr addr)
{
    addr = blockAddr(addr);
    if (_l2.lookup(addr))
        return;
    auto &v = _l2.victimPreferring(addr, [](const L2Array::Line &line) {
        return line.meta.sharers != 0 || line.meta.owner != kNoOwner;
    });
    if (v.valid && v.meta.dirty)
        _backing.store(_l2.addrOf(v, _l2.setOf(addr)), v.meta.data);
    _l2.invalidate(v);
    _l2.fill(v, addr);
    v.meta.data = _backing.fetch(addr);
    v.meta.dirty = false;
}

std::optional<Cycle>
MemHierarchy::access(unsigned core, Addr addr, bool is_write,
                     std::uint64_t store_value, bool ifetch, DoneFn done)
{
    DESC_PROF_SCOPE(CacheAccess);
    DESC_ASSERT(core < _l1d.size(), "core id out of range");
    DESC_ASSERT(!(ifetch && is_write), "cannot write instructions");

    L1Array &l1 = ifetch ? _l1i[core] : _l1d[core];
    (ifetch ? _stats.l1i_accesses : _stats.l1d_accesses).inc();

    const unsigned word = unsigned((addr >> 3) & 7);
    auto *line = l1.lookup(addr);
    if (line) {
        if (!is_write) {
            l1.touch(*line);
            return Cycle{2};
        }
        if (line->meta.state == MesiState::Modified
            || line->meta.state == MesiState::Exclusive) {
            line->meta.state = MesiState::Modified;
            line->meta.data[word] = store_value;
            l1.touch(*line);
            return Cycle{2};
        }
        // Store hit on a Shared line: upgrade (invalidate peers, no
        // data transfer).
        _stats.upgrades.inc();
        Addr ba = blockAddr(addr);
        auto *l2line = _l2.lookup(ba);
        if (l2line) {
            Cycle ready;
            invalidateSharers(*l2line, ba, core,
                              _eq.now() + _cfg.ctrl_latency, &ready);
            l2line->meta.owner = std::uint8_t(core);
            l2line->meta.sharers = std::uint8_t(1u << core);
        }
        line->meta.state = MesiState::Modified;
        line->meta.data[word] = store_value;
        l1.touch(*line);
        Cycle lat = 2 * (_cfg.ctrl_latency + _flight);
        _eq.scheduleIn(lat, std::move(done));
        return std::nullopt;
    }

    (ifetch ? _stats.l1i_misses : _stats.l1d_misses).inc();

    Addr ba = blockAddr(addr);
    Cycle t0 = _eq.now() + 2; // L1 probe detects the miss
    AccessEvent &ev = acquireAccess();
    ev.ba = ba;
    ev.t0 = t0;
    ev.w.core = core;
    ev.w.exclusive = is_write;
    ev.w.ifetch = ifetch;
    ev.w.is_store = is_write;
    ev.w.req_addr = addr;
    ev.w.store_value = store_value;
    ev.w.done = std::move(done);
    _eq.schedule(ev, t0);
    return std::nullopt;
}

} // namespace desc::cache
