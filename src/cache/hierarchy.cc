#include "cache/hierarchy.hh"

#include "common/contract.hh"
#include "common/prof.hh"
#include "common/trace.hh"
#include "core/factory.hh"

namespace desc::cache {

encoding::SchemeConfig
L2Config::effectiveSchemeConfig() const
{
    encoding::SchemeConfig c = scheme_cfg;
    if (!ecc)
        return c;

    ecc::BlockCodec codec(c.block_bits, ecc_segment_bits);
    if (isDesc()) {
        // Parity chunks ride on extra wires (Figure 9): e.g. the
        // (137,128) code adds nine 4-bit parity chunks to a 128-wire
        // interface.
        unsigned parity_chunks = codec.totalParityBits() / c.chunk_bits;
        DESC_ASSERT(codec.totalParityBits() % c.chunk_bits == 0,
                    "parity bits not chunk-aligned");
        c.bus_wires += parity_chunks;
    } else {
        // Binary-style buses keep their beat count and widen by the
        // parity wires per beat (e.g. 64 -> 72 for (72,64)).
        unsigned beats = c.block_bits / c.bus_wires;
        DESC_ASSERT(codec.busBits() % beats == 0,
                    "ECC bus word not beat-aligned");
        c.bus_wires = codec.busBits() / beats;
    }
    c.block_bits = codec.busBits();
    return c;
}

MemHierarchy::MemHierarchy(sim::EventQueue &eq, const L2Config &l2cfg,
                           BackingStore &backing, unsigned num_cores,
                           const L1Config &l1cfg,
                           const dram::DramConfig &dram_cfg)
    : _eq(eq), _cfg(l2cfg), _energy_model(l2cfg.org), _backing(backing),
      _dram(eq, dram_cfg),
      _l2(l2cfg.org.capacity_bytes, l2cfg.org.assoc, l2cfg.org.block_bytes),
      _scratch(0), _scratch_raw(l2cfg.scheme_cfg.block_bits),
      _flat(defaultL2Mode() != L2Mode::Event),
      _chunk_stats(l2cfg.scheme_cfg.chunk_bits == 0
                       ? 4
                       : l2cfg.scheme_cfg.chunk_bits,
                   128)
{
    DESC_ASSERT(num_cores >= 1 && num_cores <= 8,
                "directory bitmap supports up to 8 cores");

    for (unsigned c = 0; c < num_cores; c++) {
        _l1i.emplace_back(l1cfg.capacity_bytes, l1cfg.assoc_i,
                          l1cfg.block_bytes);
        _l1d.emplace_back(l1cfg.capacity_bytes, l1cfg.assoc_d,
                          l1cfg.block_bytes);
    }

    auto eff = _cfg.effectiveSchemeConfig();
    if (_cfg.ecc) {
        _codec = std::make_unique<ecc::BlockCodec>(
            _cfg.scheme_cfg.block_bits, _cfg.ecc_segment_bits);
        _scratch = BitVec(_codec->busBits());
    }

    unsigned banks = _cfg.org.banks;
    _banks.resize(banks);
    for (unsigned b = 0; b < banks; b++) {
        if (_cfg.link_backed) {
            _banks[b].read_scheme =
                core::makeLinkBackedScheme(_cfg.scheme, eff);
            _banks[b].write_scheme =
                core::makeLinkBackedScheme(_cfg.scheme, eff);
        } else {
            _banks[b].read_scheme = core::makeScheme(_cfg.scheme, eff);
            _banks[b].write_scheme = core::makeScheme(_cfg.scheme, eff);
        }
        if (_cfg.snuca && banks > 1) {
            double frac = double(b) / double(banks - 1);
            _banks[b].route_latency = Cycle(
                _cfg.snuca_min_latency
                + frac * (_cfg.snuca_max_latency - _cfg.snuca_min_latency));
            // Flip energy scales with routing distance; mean stays 1.
            _banks[b].energy_weight = 0.4 + 1.2 * frac;
        }
    }

    // Timing from the geometry model.
    const double cycle_ps = 1000.0 / _cfg.org.clock_ghz;
    const auto &dev = energy::tech22().device(_cfg.org.cell_dev);
    _array_read_cycles = std::max<unsigned>(
        1, unsigned(250.0 * dev.access_time_factor / cycle_ps + 0.999));
    _array_write_cycles = _array_read_cycles;
    _flight = _energy_model.htreeFlightCycles();
}

unsigned
MemHierarchy::bankOf(Addr addr) const
{
    return unsigned((addr >> 6) % _cfg.org.banks);
}

Cycle
MemHierarchy::transfer(unsigned bank_idx, const Block512 &data,
                       bool write_dir, Cycle earliest)
{
    Bank &bank = _banks[bank_idx];

    toBitVec(data, _scratch_raw);
    const BitVec *word = &_scratch_raw;
    if (_codec) {
        _codec->encodeInto(_scratch_raw, _scratch);
        word = &_scratch;
    }
    if (_cfg.collect_chunk_stats)
        _chunk_stats.observe(_scratch_raw);

    auto &scheme = write_dir ? *bank.write_scheme : *bank.read_scheme;
    encoding::TransferResult r;
    {
        DESC_PROF_SCOPE(Encoder);
        r = scheme.transfer(*word);
    }
    DESC_PROF_CYCLES(Encoder, r.cycles);

    Cycle window = r.cycles
        + (_cfg.isDesc() ? _cfg.desc_interface_delay : 0);
    unsigned array = write_dir ? _array_write_cycles : _array_read_cycles;

    Cycle start = std::max(earliest, bank.free_at);
    Cycle complete = start + array + window;
    // Array access of the next request can overlap this transfer.
    bank.free_at = start + std::max<Cycle>(array, window);

    _stats.data_flips += double(r.data_flips) * bank.energy_weight;
    _stats.ctrl_flips += double(r.control_flips) * bank.energy_weight;
    _stats.bank_busy_cycles += window;
    _stats.transfer_window.sample(double(window));
    (write_dir ? _stats.write_transfers : _stats.read_transfers).inc();

    DESC_TRACE_EVENT(Cache, _eq.now(), "bank ", bank_idx,
                     write_dir ? " write" : " read",
                     " transfer: window ", window, " cyc, ",
                     r.data_flips, " data + ", r.control_flips,
                     " ctrl flips, complete @", complete);

    return complete;
}

void
MemHierarchy::evictL1Victim(unsigned core, L1Array &l1, Addr addr,
                            bool ifetch)
{
    auto v = l1.victim(addr);
    if (!l1.valid(v))
        return;
    Addr va = l1.addrOf(v);
    L1Meta &vm = l1.meta(v);
    if (!ifetch) {
        auto l2way = _l2.lookup(va);
        if (vm.state == MesiState::Modified) {
            _stats.l2_writebacks_in.inc();
            if (l2way != L2Array::kNoWay) {
                L2Meta &lm = _l2.meta(l2way);
                lm.data = vm.data;
                lm.dirty = true;
                lm.virgin = false;
            }
            transfer(bankOf(va), vm.data, true,
                     _eq.now() + _cfg.ctrl_latency + _flight);
        }
        if (l2way != L2Array::kNoWay) {
            L2Meta &lm = _l2.meta(l2way);
            lm.sharers &= std::uint8_t(~(1u << core));
            if (lm.owner == core)
                lm.owner = kNoOwner;
        }
    }
    l1.invalidate(v);
}

bool
MemHierarchy::recallForShared(L2Array::Way way, Addr addr,
                              Cycle earliest, Cycle *ready)
{
    L2Meta &lm = _l2.meta(way);
    *ready = earliest;
    if (lm.owner == kNoOwner)
        return false;
    unsigned owner = lm.owner;
    lm.owner = kNoOwner;
    auto l1way = _l1d[owner].lookup(addr);
    if (l1way == L1Array::kNoWay)
        return false;
    L1Meta &l1m = _l1d[owner].meta(l1way);
    bool was_dirty = l1m.state == MesiState::Modified;
    l1m.state = MesiState::Shared;
    if (was_dirty) {
        _stats.recalls.inc();
        DESC_TRACE_EVENT(Cache, _eq.now(),
                         "coherence recall: owner core ", owner,
                         " addr 0x", std::hex, addr, std::dec);
        lm.data = l1m.data;
        lm.dirty = true;
        lm.virgin = false;
        *ready = transfer(bankOf(addr), lm.data, true, earliest);
        return true;
    }
    return false;
}

bool
MemHierarchy::invalidateSharers(L2Array::Way way, Addr addr,
                                unsigned except_core, Cycle earliest,
                                Cycle *ready)
{
    L2Meta &lm = _l2.meta(way);
    *ready = earliest;
    bool recalled = false;
    std::uint8_t sharers = lm.sharers;
    for (unsigned c = 0; c < _l1d.size(); c++) {
        if (c == except_core || !(sharers & (1u << c)))
            continue;
        auto l1way = _l1d[c].lookup(addr);
        if (l1way != L1Array::kNoWay) {
            L1Meta &l1m = _l1d[c].meta(l1way);
            if (l1m.state == MesiState::Modified) {
                _stats.recalls.inc();
                lm.data = l1m.data;
                lm.dirty = true;
                lm.virgin = false;
                *ready = transfer(bankOf(addr), lm.data, true, earliest);
                recalled = true;
            }
            _l1d[c].invalidate(l1way);
        }
        lm.sharers &= std::uint8_t(~(1u << c));
    }
    if (lm.owner != kNoOwner && lm.owner != except_core)
        lm.owner = kNoOwner;
    // Postcondition: only the exempted core may still share the line,
    // and the directory cannot name an evicted sharer as owner.
    DESC_DCHECK(except_core >= 8
                    || (lm.sharers
                        & std::uint8_t(~(1u << except_core))) == 0,
                "sharers survived invalidation: bitmap ",
                unsigned(lm.sharers), " except core ", except_core);
    DESC_DCHECK(lm.owner == kNoOwner || lm.owner == except_core,
                "stale owner ", unsigned(lm.owner),
                " after invalidation");
    return recalled;
}

void
MemHierarchy::fillL1(const MshrEntry::Waiter &w, Addr addr,
                     L2Array::Way l2way)
{
    L1Array &l1 = w.ifetch ? _l1i[w.core] : _l1d[w.core];
    auto way = l1.lookup(addr);
    if (way == L1Array::kNoWay) {
        evictL1Victim(w.core, l1, addr, w.ifetch);
        way = l1.victim(addr);
        l1.fill(way, addr);
    }
    L1Meta &l1m = l1.meta(way);
    l1m.data = l2Data(l2way);
    L2Meta &l2m = _l2.meta(l2way);
    if (w.ifetch) {
        // Instruction lines are read-only and not directory-tracked.
        l1m.state = MesiState::Shared;
        return;
    }
    if (w.exclusive) {
        l1m.state = MesiState::Exclusive;
        l2m.owner = std::uint8_t(w.core);
        l2m.sharers = std::uint8_t(1u << w.core);
    } else {
        bool alone = l2m.sharers == 0;
        l1m.state = alone ? MesiState::Exclusive : MesiState::Shared;
        l2m.sharers |= std::uint8_t(1u << w.core);
        l2m.owner = alone ? std::uint8_t(w.core) : kNoOwner;
    }
}

MemHierarchy::AccessEvent &
MemHierarchy::acquireAccess()
{
    if (_access_free.empty()) {
        _access_events.emplace_back();
        _access_events.back().mh = this;
        return _access_events.back();
    }
    AccessEvent *ev = _access_free.back();
    _access_free.pop_back();
    return *ev;
}

MemHierarchy::ResponseEvent &
MemHierarchy::acquireResponse()
{
    if (_response_free.empty()) {
        _response_events.emplace_back();
        _response_events.back().mh = this;
        return _response_events.back();
    }
    ResponseEvent *ev = _response_free.back();
    _response_free.pop_back();
    return *ev;
}

MemHierarchy::TxnEvent &
MemHierarchy::acquireTxn()
{
    if (_txn_free.empty()) {
        _txn_events.emplace_back();
        _txn_events.back().mh = this;
        return _txn_events.back();
    }
    TxnEvent *ev = _txn_free.back();
    _txn_free.pop_back();
    return *ev;
}

void
MemHierarchy::accessEvent(AccessEvent &ev)
{
    DESC_PROF_SCOPE(CacheRequest);
    const Addr ba = ev.ba;
    const Cycle t0 = ev.t0;
    MshrEntry::Waiter w = ev.w;
    ev.w.done = DoneCb{};
    _access_free.push_back(&ev);
    l2Request(ba, t0, w);
}

void
MemHierarchy::tagProbe(TagProbeEvent &ev)
{
    DESC_PROF_SCOPE(CacheMiss);
    const Addr addr = ev.addr;
    _tag_free.push_back(&ev);
    _dram.access(addr, false, [this, addr]() { finishMiss(addr); });
}

void
MemHierarchy::respondCommon(Addr addr, Cycle t0, bool sample_hit,
                            std::vector<MshrEntry::Waiter> &waiters)
{
    if (sample_hit)
        _stats.hit_latency.sample(double(_eq.now() - t0));
    auto way = _l2.lookup(addr);
    for (auto &w : waiters) {
        if (way != L2Array::kNoWay) {
            fillL1(w, addr, way);
            _l2.touch(way);
        }
        if (w.is_store) {
            auto lw = _l1d[w.core].lookup(w.req_addr);
            if (lw != L1Array::kNoWay) {
                L1Meta &lm = _l1d[w.core].meta(lw);
                lm.state = MesiState::Modified;
                lm.data[unsigned((w.req_addr >> 3) & 7)] = w.store_value;
            }
        }
        if (w.done)
            w.done();
    }
    waiters.clear(); // keeps the capacity
}

void
MemHierarchy::respond(ResponseEvent &ev)
{
    DESC_PROF_SCOPE(CacheRespond);
    respondCommon(ev.addr, ev.t0, ev.sample_hit, ev.waiters);
    _response_free.push_back(&ev);
}

void
MemHierarchy::deliver(DeliverEvent &ev)
{
    DoneCb cb = ev.cb;
    ev.cb = DoneCb{};
    _deliver_free.push_back(&ev);
    if (cb)
        cb();
}

Cycle
MemHierarchy::serveHitCommon(L2Array::Way way, Addr addr, Cycle t0,
                             unsigned core, bool exclusive, bool ifetch)
{
    _stats.l2_hits.inc();
    DESC_TRACE_EVENT(Cache, _eq.now(), "L2 hit: core ", core,
                     exclusive ? " excl" : " shared",
                     ifetch ? " ifetch" : "", " addr 0x", std::hex,
                     addr, std::dec);
    unsigned bank = bankOf(addr);
    Cycle flight_out = _cfg.snuca ? _banks[bank].route_latency : _flight;
    Cycle earliest = t0 + _cfg.ctrl_latency + flight_out;

    Cycle ready = earliest;
    if (exclusive) {
        if (invalidateSharers(way, addr, core, earliest, &ready))
            ready += _cfg.recall_latency;
    } else if (_l2.meta(way).owner != kNoOwner
               && _l2.meta(way).owner != core) {
        if (recallForShared(way, addr, earliest, &ready))
            ready += _cfg.recall_latency;
    }

    Cycle complete = transfer(bank, l2Data(way), false, ready);
    Cycle flight_back =
        _cfg.snuca ? _banks[bank].route_latency : _flight;
    return complete + flight_back;
}

void
MemHierarchy::l2Request(Addr addr, Cycle t0, MshrEntry::Waiter w)
{
    _stats.l2_requests.inc();

    auto mshr = findMshr(addr);
    if (mshr != kNoMshr) {
        _mshr_pool[mshr].waiters.push_back(w);
        _mshr_pool[mshr].exclusive_needed |= w.exclusive;
        return;
    }

    auto way = _l2.lookup(addr);
    if (way != L2Array::kNoWay) {
        Cycle resp = serveHitCommon(way, addr, t0, w.core, w.exclusive,
                                    w.ifetch);
        ResponseEvent &ev = acquireResponse();
        ev.waiters.push_back(std::move(w));
        ev.addr = addr;
        ev.t0 = t0;
        ev.sample_hit = true;
        _eq.schedule(ev, resp);
        return;
    }

    startMiss(addr, t0, std::move(w));
}

Cycle
MemHierarchy::startMissCommon(Addr addr, Cycle t0, MshrEntry::Waiter w)
{
    _stats.l2_misses.inc();
    DESC_TRACE_EVENT(Cache, _eq.now(), "L2 miss: core ", w.core,
                     w.exclusive ? " excl" : " shared",
                     w.ifetch ? " ifetch" : "", " addr 0x", std::hex,
                     addr, std::dec, ", to DRAM");
    // MSHR occupancy contract: one entry per block address (merges go
    // through l2Request), and entries only die in finishMiss.
    DESC_DCHECK(findMshr(addr) == kNoMshr,
                "duplicate MSHR allocation for addr 0x", std::hex, addr,
                std::dec);
    std::uint32_t idx;
    if (_mshr_free.empty()) {
        idx = std::uint32_t(_mshr_pool.size());
        _mshr_pool.emplace_back();
    } else {
        idx = _mshr_free.back();
        _mshr_free.pop_back();
    }
    MshrEntry &entry = _mshr_pool[idx];
    entry.exclusive_needed = w.exclusive;
    entry.waiters.push_back(std::move(w));
    _mshr_active.emplace_back(addr, idx);

    // Tag probe detects the miss, then the request goes to memory.
    return t0 + _cfg.ctrl_latency + _flight + 2;
}

void
MemHierarchy::startMiss(Addr addr, Cycle t0, MshrEntry::Waiter w)
{
    Cycle tag_done = startMissCommon(addr, t0, std::move(w));
    TagProbeEvent *tev;
    if (_tag_free.empty()) {
        _tag_events.emplace_back();
        _tag_events.back().mh = this;
        tev = &_tag_events.back();
    } else {
        tev = _tag_free.back();
        _tag_free.pop_back();
    }
    tev->addr = addr;
    _eq.schedule(*tev, tag_done);
}

void
MemHierarchy::txnEvent(TxnEvent &ev)
{
    switch (ev.phase) {
      case TxnEvent::Phase::Request: {
        DESC_PROF_SCOPE(CacheRequest);
        _stats.l2_requests.inc();
        MshrEntry::Waiter &w = ev.waiters.front();

        auto mshr = findMshr(ev.addr);
        if (mshr != kNoMshr) {
            _mshr_pool[mshr].waiters.push_back(w);
            _mshr_pool[mshr].exclusive_needed |= w.exclusive;
            ev.waiters.clear();
            _txn_free.push_back(&ev);
            return;
        }

        auto way = _l2.lookup(ev.addr);
        if (way != L2Array::kNoWay) {
            // Hit: the waiter rides along; the event becomes its own
            // response, scheduled exactly where the reference engine
            // would allocate one.
            Cycle resp = serveHitCommon(way, ev.addr, ev.t0, w.core,
                                        w.exclusive, w.ifetch);
            ev.phase = TxnEvent::Phase::Respond;
            ev.sample_hit = true;
            _eq.schedule(ev, resp);
            return;
        }

        Cycle tag_done = startMissCommon(ev.addr, ev.t0, w);
        ev.waiters.clear();
        ev.phase = TxnEvent::Phase::Probe;
        _eq.schedule(ev, tag_done);
        return;
      }
      case TxnEvent::Phase::Probe: {
        DESC_PROF_SCOPE(CacheMiss);
        const Addr addr = ev.addr;
        _txn_free.push_back(&ev);
        _dram.access(addr, false, [this, addr]() { finishMiss(addr); });
        return;
      }
      case TxnEvent::Phase::Respond: {
        DESC_PROF_SCOPE(CacheRespond);
        respondCommon(ev.addr, ev.t0, ev.sample_hit, ev.waiters);
        _txn_free.push_back(&ev);
        return;
      }
    }
}

void
MemHierarchy::finishMiss(Addr addr)
{
    DESC_PROF_SCOPE(CacheMiss);
    const Block512 &mem = _backing.fetch(addr);

    // Prefer victims without live L1 copies: evicting an L1-resident
    // line forces an inclusive back-invalidation that would wipe the
    // cores' hot sets whenever the L2 churns.
    auto v = _l2.victimPreferring(addr, [](const L2Meta &m) {
        return m.sharers != 0 || m.owner != kNoOwner;
    });
    unsigned bank = bankOf(addr);
    if (_l2.valid(v)) {
        Addr va = _l2.addrOf(v);
        // Inclusive hierarchy: L1 copies of the victim must go.
        Cycle ready;
        invalidateSharers(v, va, unsigned(-1), _eq.now(), &ready);
        if (_l2.meta(v).dirty) {
            _stats.l2_evictions_out.inc();
            DESC_TRACE_EVENT(Cache, _eq.now(),
                             "L2 dirty eviction: addr 0x", std::hex,
                             va, std::dec, " to DRAM");
            // Dirty implies materialized, so this l2Data() never
            // re-enters the backing store (whose fetch() scratch
            // still holds `mem` when the block was never written).
            const Block512 &victim_data = l2Data(v);
            transfer(bank, victim_data, false, _eq.now());
            _backing.store(va, victim_data);
            _dram.access(va, true, nullptr);
        }
        _l2.invalidate(v);
    }
    _l2.fill(v, addr);
    _l2.meta(v).data = mem;
    _l2.meta(v).dirty = false;
    _stats.l2_fills.inc();

    // Fill the data array through the bank's write port; the reply to
    // the cores leaves the controller in parallel.
    transfer(bank, mem, true, _eq.now() + _cfg.ctrl_latency);

    Cycle resp = _eq.now() + _cfg.ctrl_latency;
    auto idx = findMshr(addr);
    DESC_ASSERT(idx != kNoMshr, "miss completion without MSHR");

    MshrEntry &entry = _mshr_pool[idx];
    std::vector<MshrEntry::Waiter> *waiters;
    sim::Event *resp_ev;
    if (_flat) {
        TxnEvent &ev = acquireTxn();
        ev.phase = TxnEvent::Phase::Respond;
        ev.addr = addr;
        ev.t0 = 0;
        ev.sample_hit = false;
        waiters = &ev.waiters;
        resp_ev = &ev;
    } else {
        ResponseEvent &ev = acquireResponse();
        ev.addr = addr;
        ev.t0 = 0;
        ev.sample_hit = false;
        waiters = &ev.waiters;
        resp_ev = &ev;
    }
    for (auto &w : entry.waiters)
        waiters->push_back(w);
    entry.waiters.clear(); // keeps the capacity for the next miss
    for (auto &slot : _mshr_active) {
        if (slot.first == addr) {
            slot = _mshr_active.back();
            _mshr_active.pop_back();
            break;
        }
    }
    _mshr_free.push_back(idx);

    _eq.schedule(*resp_ev, resp);
}

void
MemHierarchy::prefill(Addr addr)
{
    addr = blockAddr(addr);
    if (_l2.lookup(addr) != L2Array::kNoWay)
        return;
    auto v = _l2.victimPreferring(addr, [](const L2Meta &m) {
        return m.sharers != 0 || m.owner != kNoOwner;
    });
    if (_l2.valid(v) && _l2.meta(v).dirty)
        _backing.store(_l2.addrOf(v), _l2.meta(v).data);
    _l2.invalidate(v);
    _l2.fill(v, addr);
    // Tag-only install: the payload stays virgin until the first read
    // materializes it (l2Data()). Warming ~70% of the L2 then costs
    // tag walks instead of a value-model synthesis per block, and a
    // line that is never read never pays one at all.
    _l2.meta(v).virgin = true;
}

const Block512 &
MemHierarchy::l2Data(L2Array::Way way)
{
    L2Meta &m = _l2.meta(way);
    if (m.virgin) {
        m.data = _backing.fetch(_l2.addrOf(way));
        m.virgin = false;
    }
    return m.data;
}

MemHierarchy::WarmupState
MemHierarchy::warmupSnapshot() const
{
    return {_l2.tagImage()};
}

void
MemHierarchy::restoreWarmup(const WarmupState &w)
{
    _l2.restoreTagImage(w.l2);
    // A pure prefill() sequence leaves every valid line as a clean,
    // unshared, virgin install; the fresh array's default metadata
    // covers everything but the virgin flag.
    _l2.forEach([this](L2Array::Way way) { _l2.meta(way).virgin = true; });
}

std::optional<Cycle>
MemHierarchy::access(unsigned core, Addr addr, bool is_write,
                     std::uint64_t store_value, bool ifetch, DoneCb done)
{
    DESC_PROF_SCOPE(CacheAccess);
    DESC_ASSERT(core < _l1d.size(), "core id out of range");
    DESC_ASSERT(!(ifetch && is_write), "cannot write instructions");

    L1Array &l1 = ifetch ? _l1i[core] : _l1d[core];
    (ifetch ? _stats.l1i_accesses : _stats.l1d_accesses).inc();

    const unsigned word = unsigned((addr >> 3) & 7);
    auto way = l1.lookup(addr);
    if (way != L1Array::kNoWay) {
        L1Meta &lm = l1.meta(way);
        if (!is_write) {
            l1.touch(way);
            return Cycle{2};
        }
        if (lm.state == MesiState::Modified
            || lm.state == MesiState::Exclusive) {
            lm.state = MesiState::Modified;
            lm.data[word] = store_value;
            l1.touch(way);
            return Cycle{2};
        }
        // Store hit on a Shared line: upgrade (invalidate peers, no
        // data transfer).
        _stats.upgrades.inc();
        Addr ba = blockAddr(addr);
        auto l2way = _l2.lookup(ba);
        if (l2way != L2Array::kNoWay) {
            Cycle ready;
            invalidateSharers(l2way, ba, core,
                              _eq.now() + _cfg.ctrl_latency, &ready);
            _l2.meta(l2way).owner = std::uint8_t(core);
            _l2.meta(l2way).sharers = std::uint8_t(1u << core);
        }
        lm.state = MesiState::Modified;
        lm.data[word] = store_value;
        l1.touch(way);
        Cycle lat = 2 * (_cfg.ctrl_latency + _flight);
        DeliverEvent *dev;
        if (_deliver_free.empty()) {
            _deliver_events.emplace_back();
            _deliver_events.back().mh = this;
            dev = &_deliver_events.back();
        } else {
            dev = _deliver_free.back();
            _deliver_free.pop_back();
        }
        dev->cb = done;
        _eq.scheduleIn(*dev, lat);
        return std::nullopt;
    }

    (ifetch ? _stats.l1i_misses : _stats.l1d_misses).inc();

    Addr ba = blockAddr(addr);
    Cycle t0 = _eq.now() + 2; // L1 probe detects the miss
    MshrEntry::Waiter w{core,  is_write,    ifetch, is_write,
                        addr,  store_value, done};
    if (_flat) {
        TxnEvent &ev = acquireTxn();
        ev.phase = TxnEvent::Phase::Request;
        ev.addr = ba;
        ev.t0 = t0;
        ev.sample_hit = false;
        ev.waiters.push_back(w);
        _eq.schedule(ev, t0);
        return std::nullopt;
    }
    AccessEvent &ev = acquireAccess();
    ev.ba = ba;
    ev.t0 = t0;
    ev.w = w;
    _eq.schedule(ev, t0);
    return std::nullopt;
}

} // namespace desc::cache
