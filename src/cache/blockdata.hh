/**
 * @file
 * Inline 64-byte block payload storage.
 *
 * Cache lines and the DRAM backing store keep block contents in a
 * flat 8-word array (cheap to copy, no heap traffic); the transfer
 * schemes operate on BitVec, so conversions are provided.
 */

#ifndef DESC_CACHE_BLOCKDATA_HH
#define DESC_CACHE_BLOCKDATA_HH

#include <array>
#include <cstdint>

#include "common/bitvec.hh"
#include "common/types.hh"

namespace desc::cache {

/** One 512-bit cache block payload. */
using Block512 = std::array<std::uint64_t, 8>;

inline Block512
zeroBlock()
{
    return Block512{};
}

/** Copy a block payload into a (pre-sized, 512-bit) BitVec. */
inline void
toBitVec(const Block512 &block, BitVec &out)
{
    out.fromBytes(reinterpret_cast<const std::uint8_t *>(block.data()),
                  sizeof(Block512));
}

/** Extract a 512-bit BitVec's payload into a block. */
inline Block512
fromBitVec(const BitVec &bv)
{
    Block512 block;
    bv.toBytes(reinterpret_cast<std::uint8_t *>(block.data()),
               sizeof(Block512));
    return block;
}

/** Interface the cache hierarchy uses to materialize memory contents. */
class BackingStore
{
  public:
    virtual ~BackingStore() = default;

    /** Fetch (creating on first touch) the block at @p block_addr. */
    virtual const Block512 &fetch(Addr block_addr) = 0;

    /** Write a block back to memory. */
    virtual void store(Addr block_addr, const Block512 &data) = 0;
};

} // namespace desc::cache

#endif // DESC_CACHE_BLOCKDATA_HH
