#include "energy/wire.hh"

#include <cmath>

#include "common/contract.hh"
#include "common/log.hh"

namespace desc::energy {

WireModel::WireModel(const TechParams &tech, double length_mm,
                     double swing_v)
    : _length_mm(length_mm)
{
    DESC_ASSERT(length_mm >= 0.0, "negative wire length");
    DESC_ASSERT(swing_v >= 0.0 && swing_v < tech.vdd,
                "swing must be below Vdd");
    double cap_f = tech.wire_cap_ff_per_mm * 1e-15 * length_mm
        * (1.0 + tech.repeater_cap_overhead);
    if (swing_v == 0.0) {
        // Full-swing repeatered wire.
        _flip_energy = 0.5 * cap_f * tech.vdd * tech.vdd
            + tech.wire_driver_fj * 1e-15;
        _delay_ps = tech.wire_delay_ps_per_mm * length_mm;
    } else {
        // Low-swing: wire charges to swing_v from the Vdd supply
        // (E ~ C * Vdd * Vswing), plus a sense-amp resolution cost at
        // the receiver; propagation is ~30% slower (no repeaters).
        const double sense_amp_fj = 25.0;
        _flip_energy = 0.5 * cap_f * tech.vdd * swing_v
            + (tech.wire_driver_fj + sense_amp_fj) * 1e-15;
        _delay_ps = tech.wire_delay_ps_per_mm * length_mm * 1.3;
    }
}

unsigned
WireModel::delayCycles(double clock_ghz) const
{
    DESC_ASSERT(clock_ghz > 0.0, "bad clock");
    double cycle_ps = 1000.0 / clock_ghz;
    return static_cast<unsigned>(std::ceil(_delay_ps / cycle_ps));
}

} // namespace desc::energy
