#include "energy/synthesis.hh"

namespace desc::energy {

namespace {

/** Gate equivalents (NAND2) per flip-flop / small block. */
constexpr double kGePerFlop = 6.0;
constexpr double kGePerXor = 2.5;

/** Routing/overhead multiplier on top of raw cell area. */
constexpr double kWiringOverhead = 1.4;

/** Switched cap of a strobe/clock output driver (fF). */
constexpr double kDriverCapFf = 120.0;

/** Fraction of gates toggling at peak. */
constexpr double kPeakActivity = 1.0;

/**
 * Average activity during a transfer relative to peak, for energy
 * accounting. The interface is aggressively clock-gated: chunk units
 * gate off after their strobe fires, and only the shared counter and
 * the pending comparators toggle each cycle.
 */
constexpr double kAvgActivity = 0.006;

} // namespace

DescSynthesisModel::DescSynthesisModel(unsigned chunks, unsigned chunk_bits,
                                       const TechParams &tech,
                                       double clock_ghz)
    : _chunks(chunks), _chunk_bits(chunk_bits), _clock_ghz(clock_ghz)
{
    const double b = chunk_bits;

    // Per-chunk transmitter (Figure 11a): chunk register, counter
    // comparator, skip-value comparator, toggle generator, control.
    const double tx_chunk_ge = b * kGePerFlop     // chunk register
        + 2.0 * b                                 // counter compare
        + 2.0 * b                                 // skip compare
        + kGePerFlop + kGePerXor                  // toggle generator
        + 6.0;                                    // enable/start control
    // Shared: down counter, FSM, reset/skip toggle, sync strobe gen.
    const double tx_shared_ge =
        b * (kGePerFlop + 3.0) + 60.0 + 2.0 * (kGePerFlop + kGePerXor);
    const double tx_ge = _chunks * tx_chunk_ge + tx_shared_ge;

    // Per-chunk receiver (Figure 11b): toggle detector, output register
    // with skip-value mux, load control.
    const double rx_chunk_ge = (kGePerFlop + kGePerXor) // toggle detector
        + b * kGePerFlop                                // output register
        + b * 1.5                                       // skip-value mux
        + 4.0;                                          // load control
    const double rx_shared_ge =
        b * (kGePerFlop + 3.0) + 40.0 + (kGePerFlop + kGePerXor);
    const double rx_ge = _chunks * rx_chunk_ge + rx_shared_ge;

    const double f_hz = clock_ghz * 1e9;
    const double v2 = tech.vdd * tech.vdd;
    const double gate_j = tech.gate_cap_ff * 1e-15 * v2;

    auto make = [&](double ge, double drivers, double logic_fo4) {
        SynthesisResult r;
        r.area_um2 = ge * tech.gate_area_um2 * kWiringOverhead;
        const double gate_w = ge * gate_j * f_hz * kPeakActivity;
        const double driver_w =
            drivers * kDriverCapFf * 1e-15 * v2 * f_hz;
        r.peak_power_mw = (gate_w + driver_w) * 1e3;
        r.delay_ns = logic_fo4 * tech.fo4_ps * 1e-3;
        return r;
    };

    // TX drives one strobe per chunk wire plus reset/skip plus sync;
    // critical path: counter increment -> comparator -> toggle flop.
    _tx = make(tx_ge, _chunks / 2.0 + 2.0, 27.0);
    // RX drives the ready/output latches only; critical path: toggle
    // detect -> counter latch.
    _rx = make(rx_ge, _chunks / 4.0 + 2.0, 26.0);
}

Joule
DescSynthesisModel::interfaceEnergyPerBusyCycle() const
{
    const double avg_w =
        (_tx.peak_power_mw + _rx.peak_power_mw) * 1e-3 * kAvgActivity;
    return avg_w / (_clock_ghz * 1e9);
}

double
DescSynthesisModel::roundTripDelayNs() const
{
    return _tx.delay_ns + _rx.delay_ns;
}

} // namespace desc::energy
