/**
 * @file
 * Gate-level analytic area/power/delay model of the DESC interface.
 *
 * The paper synthesizes the transmitter and receiver in Verilog with
 * Cadence RTL Compiler on FreePDK45 and scales to 22 nm (Table 3,
 * Figure 17). This model rebuilds those three scalars from
 * gate-equivalent counts of the circuits in Figures 8 and 11: per-chunk
 * registers, comparators, toggle generators/detectors, skip logic, and
 * the shared synchronized counters and strobe drivers.
 */

#ifndef DESC_ENERGY_SYNTHESIS_HH
#define DESC_ENERGY_SYNTHESIS_HH

#include "common/types.hh"
#include "energy/tech.hh"

namespace desc::energy {

struct SynthesisResult
{
    double area_um2;
    double peak_power_mw;
    double delay_ns;
};

class DescSynthesisModel
{
  public:
    DescSynthesisModel(unsigned chunks = 128, unsigned chunk_bits = 4,
                       const TechParams &tech = tech22(),
                       double clock_ghz = 3.2);

    /** Transmitter figures (Figure 17, left bars). */
    SynthesisResult transmitter() const { return _tx; }

    /** Receiver figures (Figure 17, right bars). */
    SynthesisResult receiver() const { return _rx; }

    /**
     * Average energy drawn by one TX+RX interface pair per cycle of an
     * ongoing transfer (DESC consumes dynamic power only during
     * transfers); used by the simulator's energy accounting.
     */
    Joule interfaceEnergyPerBusyCycle() const;

    /** Logic delay added to the round-trip cache access (ns). */
    double roundTripDelayNs() const;

  private:
    unsigned _chunks;
    unsigned _chunk_bits;
    double _clock_ghz;
    SynthesisResult _tx;
    SynthesisResult _rx;
};

} // namespace desc::energy

#endif // DESC_ENERGY_SYNTHESIS_HH
