/**
 * @file
 * First-order repeatered-wire energy and delay model.
 */

#ifndef DESC_ENERGY_WIRE_HH
#define DESC_ENERGY_WIRE_HH

#include "common/types.hh"
#include "energy/tech.hh"

namespace desc::energy {

/**
 * Models one repeatered on-chip wire of a given length. Energy per
 * transition is 1/2 C V^2 with C covering the wire plus its repeaters;
 * delay is linear in length thanks to the repeaters.
 */
class WireModel
{
  public:
    /**
     * @param swing_v reduced voltage swing (0 = full rail-to-rail).
     *        Low-swing signaling charges the wire to swing_v instead
     *        of Vdd (energy ~ C*Vdd*Vswing) but needs a sense
     *        amplifier at the receiver and is ~30% slower — the
     *        alternative interconnect style the paper's Section 2
     *        cites; DESC composes with it (see ablation_low_swing).
     */
    WireModel(const TechParams &tech, double length_mm,
              double swing_v = 0.0);

    /** Energy of one full-swing transition on this wire. */
    Joule flipEnergy() const { return _flip_energy; }

    /** End-to-end propagation delay (ps). */
    double delayPs() const { return _delay_ps; }

    /** Propagation delay in cycles of a clock at @p clock_ghz. */
    unsigned delayCycles(double clock_ghz) const;

    double lengthMm() const { return _length_mm; }

  private:
    double _length_mm;
    Joule _flip_energy;
    double _delay_ps;
};

} // namespace desc::energy

#endif // DESC_ENERGY_WIRE_HH
