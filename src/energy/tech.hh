/**
 * @file
 * Technology parameters for the CACTI-lite energy model.
 *
 * The paper evaluates ITRS high-performance (HP), low-operating-power
 * (LOP), and low-standby-power (LSTP) devices at 22 nm (scaled from a
 * 45 nm FreePDK synthesis, Table 3). The constants here are first-order
 * representative values assembled from the ITRS roadmap and CACTI 6.5's
 * published technology tables, evaluated at the paper's 350 K operating
 * point. Absolute joules are approximate; all experiments report
 * energies normalized to a baseline configuration, which is what the
 * paper's figures show.
 */

#ifndef DESC_ENERGY_TECH_HH
#define DESC_ENERGY_TECH_HH

#include "common/types.hh"

namespace desc::energy {

/** ITRS device flavor used for SRAM cells and/or peripheral logic. */
enum class Device { HP, LOP, LSTP };

constexpr unsigned kNumDevices = 3;

/** Short display name ("HP", "LOP", "LSTP"). */
const char *deviceName(Device dev);

/** Per-device electrical parameters. */
struct DeviceParams
{
    /** Leakage power of one 6T SRAM cell at 350 K (nanowatts). */
    double cell_leak_nw;

    /**
     * Ratio of peripheral-logic leakage to array leakage when the
     * periphery uses this device (peripheral transistor count is a
     * fixed fraction of the array, but HP logic leaks far more per
     * transistor).
     */
    double periph_leak_factor;

    /** Layout area of one SRAM cell including overhead (um^2). */
    double cell_area_um2;

    /** Dynamic energy to read one bit out of a mat (femtojoules). */
    double cell_read_fj;

    /** Array access time multiplier relative to HP devices. */
    double access_time_factor;
};

/** Per-node electrical and geometric parameters. */
struct TechParams
{
    unsigned node_nm;

    /** Supply voltage (V) — Table 3 of the paper. */
    double vdd;

    /** Fanout-of-4 inverter delay (ps) — Table 3 of the paper. */
    double fo4_ps;

    /** Capacitance of a repeatered semi-global wire (fF per mm). */
    double wire_cap_ff_per_mm;

    /** Extra switched capacitance contributed by repeaters (fraction). */
    double repeater_cap_overhead;

    /** Signal velocity on a repeatered wire (ps per mm). */
    double wire_delay_ps_per_mm;

    /** Fixed driver/receiver energy per transition, independent of
     *  wire length (fJ). */
    double wire_driver_fj;

    /** Area of a NAND2-equivalent standard cell (um^2). */
    double gate_area_um2;

    /** Average switched capacitance of a gate-equivalent (fF). */
    double gate_cap_ff;

    /** Parameters for each Device flavor. */
    DeviceParams devices[kNumDevices];

    const DeviceParams &
    device(Device dev) const
    {
        return devices[static_cast<unsigned>(dev)];
    }
};

/** 22 nm node (the paper's evaluation node). */
const TechParams &tech22();

/** 45 nm node (the paper's synthesis node, FreePDK45). */
const TechParams &tech45();

} // namespace desc::energy

#endif // DESC_ENERGY_TECH_HH
