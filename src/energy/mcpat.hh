/**
 * @file
 * McPAT-lite: first-order whole-processor power model.
 *
 * The paper uses McPAT only to put the L2 energy in context (Figures 1
 * and 19: the L2 is ~15% of processor energy in the baseline, and
 * zero-skipped DESC saves ~7% of processor energy). This model charges
 * per-instruction core energy, per-access L1 energy, per-core leakage,
 * and a fixed uncore power, and combines them with the externally
 * computed L2 energy.
 */

#ifndef DESC_ENERGY_MCPAT_HH
#define DESC_ENERGY_MCPAT_HH

#include "common/types.hh"

namespace desc::energy {

/** Kind of core being modeled (Table 1 of the paper). */
enum class CoreKind { InOrderSMT, OutOfOrder };

/** Aggregate activity counts from one simulation. */
struct ProcessorActivity
{
    std::uint64_t instructions = 0;
    std::uint64_t l1i_accesses = 0;
    std::uint64_t l1d_accesses = 0;
    std::uint64_t l2_accesses = 0;
    double runtime_s = 0.0;
};

/** Energy breakdown returned by the model. */
struct ProcessorEnergy
{
    Joule core_dynamic = 0.0;
    Joule core_static = 0.0;
    Joule l1 = 0.0;
    Joule uncore = 0.0;
    Joule l2 = 0.0;

    Joule
    total() const
    {
        return core_dynamic + core_static + l1 + uncore + l2;
    }
};

class ProcessorPowerModel
{
  public:
    ProcessorPowerModel(unsigned num_cores, CoreKind kind,
                        double clock_ghz = 3.2);

    /**
     * Combine simulation activity with the separately computed L2
     * energy into a whole-processor breakdown.
     */
    ProcessorEnergy evaluate(const ProcessorActivity &activity,
                             Joule l2_energy) const;

  private:
    unsigned _num_cores;
    CoreKind _kind;

    double _epi_pj;        //!< core dynamic energy per instruction
    double _l1_access_pj;  //!< per L1 access (either cache)
    double _core_leak_w;   //!< leakage per core
    double _uncore_w;      //!< crossbar + memory controller static
    double _uncore_pj;     //!< uncore dynamic per L2 access
};

} // namespace desc::energy

#endif // DESC_ENERGY_MCPAT_HH
