#include "energy/mcpat.hh"

namespace desc::energy {

ProcessorPowerModel::ProcessorPowerModel(unsigned num_cores, CoreKind kind,
                                         double clock_ghz)
    : _num_cores(num_cores), _kind(kind)
{
    (void)clock_ghz;
    // Calibrated so an 8-core in-order SMT processor with an 8MB LSTP
    // L2 spends ~15% of its energy in the L2 (paper Figure 1). A
    // 4-issue out-of-order core burns roughly 3x the energy per
    // instruction of the simple in-order core (rename/issue/ROB).
    if (kind == CoreKind::InOrderSMT) {
        _epi_pj = 11.0;
        _core_leak_w = 0.015;
    } else {
        _epi_pj = 34.0;
        _core_leak_w = 0.060;
    }
    _l1_access_pj = 9.0;
    _uncore_w = 0.040;
    _uncore_pj = 25.0;
}

ProcessorEnergy
ProcessorPowerModel::evaluate(const ProcessorActivity &activity,
                              Joule l2_energy) const
{
    ProcessorEnergy e;
    e.core_dynamic = activity.instructions * _epi_pj * 1e-12;
    e.core_static = _num_cores * _core_leak_w * activity.runtime_s;
    e.l1 = (activity.l1i_accesses + activity.l1d_accesses)
        * _l1_access_pj * 1e-12;
    e.uncore = _uncore_w * activity.runtime_s
        + activity.l2_accesses * _uncore_pj * 1e-12;
    e.l2 = l2_energy;
    return e;
}

} // namespace desc::energy
