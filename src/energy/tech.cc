#include "energy/tech.hh"

#include "common/log.hh"

namespace desc::energy {

const char *
deviceName(Device dev)
{
    switch (dev) {
      case Device::HP:
        return "HP";
      case Device::LOP:
        return "LOP";
      case Device::LSTP:
        return "LSTP";
    }
    DESC_PANIC("bad device enum");
}

namespace {

// Device tables. Leakage ratios follow the ITRS targets the paper's
// Figure 14 depends on: HP devices leak three to four orders of
// magnitude more than LSTP devices, LOP sits in between, and LSTP
// arrays are roughly 2x slower than HP arrays (footnote 3 of the
// paper). Dynamic read energy differs much less across flavors.
const TechParams tech22_params = {
    .node_nm = 22,
    .vdd = 0.83,
    .fo4_ps = 11.75,
    .wire_cap_ff_per_mm = 320.0,
    .repeater_cap_overhead = 0.35,
    .wire_delay_ps_per_mm = 85.0,
    .wire_driver_fj = 50.0,
    .gate_area_um2 = 0.20,
    .gate_cap_ff = 0.55,
    .devices = {
        // HP
        { .cell_leak_nw = 60.0, .periph_leak_factor = 4.0,
          .cell_area_um2 = 0.060, .cell_read_fj = 25.0,
          .access_time_factor = 1.0 },
        // LOP
        { .cell_leak_nw = 3.0, .periph_leak_factor = 2.5,
          .cell_area_um2 = 0.070, .cell_read_fj = 14.0,
          .access_time_factor = 1.4 },
        // LSTP
        { .cell_leak_nw = 0.018, .periph_leak_factor = 2.0,
          .cell_area_um2 = 0.075, .cell_read_fj = 12.0,
          .access_time_factor = 2.0 },
    },
};

const TechParams tech45_params = {
    .node_nm = 45,
    .vdd = 1.1,
    .fo4_ps = 20.25,
    .wire_cap_ff_per_mm = 240.0,
    .repeater_cap_overhead = 0.35,
    .wire_delay_ps_per_mm = 65.0,
    .wire_driver_fj = 140.0,
    .gate_area_um2 = 0.80,
    .gate_cap_ff = 1.8,
    .devices = {
        { .cell_leak_nw = 120.0, .periph_leak_factor = 4.0,
          .cell_area_um2 = 0.25, .cell_read_fj = 65.0,
          .access_time_factor = 1.0 },
        { .cell_leak_nw = 6.0, .periph_leak_factor = 2.5,
          .cell_area_um2 = 0.29, .cell_read_fj = 38.0,
          .access_time_factor = 1.4 },
        { .cell_leak_nw = 0.060, .periph_leak_factor = 2.0,
          .cell_area_um2 = 0.31, .cell_read_fj = 32.0,
          .access_time_factor = 2.0 },
    },
};

} // namespace

const TechParams &
tech22()
{
    return tech22_params;
}

const TechParams &
tech45()
{
    return tech45_params;
}

} // namespace desc::energy
