#include "energy/cacti.hh"

#include <cmath>

#include "common/contract.hh"
#include "common/log.hh"

namespace desc::energy {

namespace {

/** Fraction of the die actually covered by cells (array efficiency). */
constexpr double kArrayEfficiency = 0.55;

/**
 * Peripheral transistor count as a fraction of the array transistor
 * count; used to scale peripheral leakage through periph_leak_factor.
 */
constexpr double kPeriphFraction = 0.25;

/** Decoder + sense + wordline energy overhead per block access,
 *  expressed as a multiple of the raw bitline read energy. */
constexpr double kAccessOverhead = 0.35;

/** Write energy relative to read energy (full bitline swing). */
constexpr double kWriteFactor = 1.25;

/** Fixed peripheral leakage per bank (decoders, port logic, the DESC
 *  or binary interface drivers) — what makes very high bank counts
 *  lose in Figure 25. */
constexpr double kPerBankLeakW = 80e-6;

/** Decode/select energy overhead growth with bank count. */
constexpr double kPerBankAccessOverhead = 0.012;

} // namespace

CacheEnergyModel::CacheEnergyModel(const CacheOrg &org,
                                   const TechParams &tech)
    : _org(org)
{
    DESC_ASSERT(org.banks > 0 && (org.banks & (org.banks - 1)) == 0,
                "banks must be a power of two: ", org.banks);
    DESC_ASSERT(org.capacity_bytes % (org.banks * org.block_bytes) == 0,
                "capacity not divisible by banks*block");
    DESC_ASSERT(org.bus_wires > 0, "bus_wires must be positive");

    const DeviceParams &cell = tech.device(org.cell_dev);
    const DeviceParams &periph = tech.device(org.periph_dev);

    const double total_bits = double(org.capacity_bytes) * 8.0;
    const double bank_bits = total_bits / org.banks;

    // ---- Floorplan ----------------------------------------------------
    // Cells plus array overhead give the bank area; banks tile in a
    // near-square grid, and the main H-tree spans that grid.
    _geom.bank_area_mm2 =
        bank_bits * cell.cell_area_um2 / kArrayEfficiency * 1e-6;
    _geom.total_area_mm2 = _geom.bank_area_mm2 * org.banks;

    const double die_side_mm = std::sqrt(_geom.total_area_mm2);
    const double bank_side_mm = std::sqrt(_geom.bank_area_mm2);

    // Average path from the cache controller to an active mat: half of
    // the main tree span plus the bank-internal horizontal + vertical
    // trees (Figure 7 of the paper).
    _geom.htree_path_mm = 0.5 * die_side_mm + 1.5 * bank_side_mm;

    // A mat holds a 64-bit slice of the block (Figure 6): a 512-bit
    // block activates 8 mats.
    _geom.mats_per_bank = 8;

    // ---- Energy -------------------------------------------------------
    WireModel htree_wire(tech, _geom.htree_path_mm,
                         org.low_swing ? org.swing_v : 0.0);
    _htree_flip = htree_wire.flipEnergy();

    const unsigned block_bits = org.block_bytes * 8;
    const double read_bits_fj = cell.cell_read_fj * block_bits;
    const double access_overhead =
        kAccessOverhead + kPerBankAccessOverhead * org.banks;
    _array_read = read_bits_fj * (1.0 + access_overhead) * 1e-15;
    _array_write = _array_read * kWriteFactor;

    // Tags: assoc ways of ~24 tag+state bits read per lookup.
    const double tag_bits = org.assoc * 24.0;
    _tag_access = cell.cell_read_fj * tag_bits * (1.0 + kAccessOverhead)
        * 1e-15;

    // Address/control: ~32 wires, conventional binary, roughly half
    // toggle per transfer, over the same H-tree path.
    _addr_transfer = _htree_flip * 16.0;

    // Leakage: array cells use the cell device; periphery transistor
    // budget is a fixed fraction of the array but leaks according to
    // the periphery device (this is what makes the HP-periphery design
    // points in Figure 14 so expensive).
    const double array_leak_w = total_bits * cell.cell_leak_nw * 1e-9;
    const double periph_leak_w = total_bits * kPeriphFraction
        * periph.cell_leak_nw * periph.periph_leak_factor * 1e-9;
    _leak_power = array_leak_w + periph_leak_w
        + org.banks * kPerBankLeakW;

    // ---- Timing -------------------------------------------------------
    const double cycle_ps = 1000.0 / org.clock_ghz;
    _flight_cycles = std::max<unsigned>(
        1, unsigned(std::ceil(htree_wire.delayPs() / cycle_ps)));

    // Array access: decode + wordline + bitline + sense; HP arrays are
    // the reference, LSTP roughly doubles it (paper footnote 3).
    const double array_ps = 250.0 * cell.access_time_factor;
    const unsigned array_cycles = std::max<unsigned>(
        1, unsigned(std::ceil(array_ps / cycle_ps)));

    // Controller decode/queue + request flight + array + reply flight.
    const unsigned ctrl_cycles = 2;
    _hit_latency =
        ctrl_cycles + _flight_cycles + array_cycles + _flight_cycles;
    _miss_latency = ctrl_cycles + _flight_cycles + array_cycles;
}

} // namespace desc::energy
