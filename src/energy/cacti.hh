/**
 * @file
 * CACTI-lite: first-order geometry, energy, and timing model of a
 * banked SRAM last-level cache with an H-tree data network.
 *
 * This stands in for the modified CACTI 6.5 the paper uses. It derives
 * a floorplan (banks -> subbanks -> mats) from the organization, sizes
 * the main / horizontal / vertical H-trees from that floorplan, and
 * exposes the per-event energies the simulator integrates:
 *
 *   - htreeFlipEnergy(): one transition on one data wire over the
 *     controller-to-mat path (what every encoding scheme multiplies
 *     by its transition count);
 *   - arrayReadEnergy()/arrayWriteEnergy(): reading/writing one cache
 *     block out of / into the mats;
 *   - tagAccessEnergy(): one tag lookup;
 *   - leakagePower(): standby power of cells plus periphery;
 *   - hit/flight latencies in core cycles.
 */

#ifndef DESC_ENERGY_CACTI_HH
#define DESC_ENERGY_CACTI_HH

#include "common/types.hh"
#include "energy/tech.hh"
#include "energy/wire.hh"

namespace desc::energy {

/** Organization of the modeled last-level cache. */
struct CacheOrg
{
    std::uint64_t capacity_bytes = 8ull << 20;
    unsigned assoc = 16;
    unsigned block_bytes = 64;
    unsigned banks = 8;

    /** Data wires per bank port (the paper sweeps 8..512). */
    unsigned bus_wires = 64;

    double clock_ghz = 3.2;

    /** Low-swing H-tree data wires (Section 2's alternative
     *  interconnect style; composes with any encoding). */
    bool low_swing = false;
    double swing_v = 0.25;

    Device cell_dev = Device::LSTP;
    Device periph_dev = Device::LSTP;
};

/** Derived floorplan quantities (exposed for tests and reports). */
struct CacheGeometry
{
    double total_area_mm2;
    double bank_area_mm2;

    /** Average controller-to-mat wire path (main + bank-local trees). */
    double htree_path_mm;

    unsigned mats_per_bank;
};

class CacheEnergyModel
{
  public:
    explicit CacheEnergyModel(const CacheOrg &org,
                              const TechParams &tech = tech22());

    const CacheOrg &org() const { return _org; }
    const CacheGeometry &geometry() const { return _geom; }

    /** Energy of one transition on one H-tree data wire. */
    Joule htreeFlipEnergy() const { return _htree_flip; }

    /** Dynamic energy of reading one block out of the data mats. */
    Joule arrayReadEnergy() const { return _array_read; }

    /** Dynamic energy of writing one block into the data mats. */
    Joule arrayWriteEnergy() const { return _array_write; }

    /** Dynamic energy of one tag lookup (all ways of one set). */
    Joule tagAccessEnergy() const { return _tag_access; }

    /** Dynamic energy of driving the address/control wires once. */
    Joule addressTransferEnergy() const { return _addr_transfer; }

    /** Total standby (leakage) power of the cache. */
    Watt leakagePower() const { return _leak_power; }

    /**
     * Cache hit latency in core cycles excluding data serialization
     * on the bus (the simulator adds the scheme-dependent transfer
     * window on top of this).
     */
    unsigned hitLatencyCycles() const { return _hit_latency; }

    /** Latency to detect a miss (tag path only). */
    unsigned missDetectLatencyCycles() const { return _miss_latency; }

    /** One-way H-tree flight time in core cycles. */
    unsigned htreeFlightCycles() const { return _flight_cycles; }

  private:
    CacheOrg _org;
    CacheGeometry _geom;

    Joule _htree_flip;
    Joule _array_read;
    Joule _array_write;
    Joule _tag_access;
    Joule _addr_transfer;
    Watt _leak_power;
    unsigned _hit_latency;
    unsigned _miss_latency;
    unsigned _flight_cycles;
};

} // namespace desc::energy

#endif // DESC_ENERGY_CACTI_HH
