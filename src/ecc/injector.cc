#include "ecc/injector.hh"

#include "common/contract.hh"
#include "common/log.hh"

namespace desc::ecc {

unsigned
flipRandomBit(BitVec &bus, Rng &rng)
{
    unsigned pos = unsigned(rng.below(bus.width()));
    bus.flipBit(pos);
    return pos;
}

unsigned
corruptChunk(BitVec &bus, unsigned chunk, unsigned chunk_bits, Rng &rng)
{
    DESC_ASSERT((chunk + 1) * chunk_bits <= bus.width(),
                "chunk out of range");
    std::uint64_t old = bus.field(chunk * chunk_bits, chunk_bits);
    std::uint64_t bad;
    do {
        bad = rng.below(std::uint64_t{1} << chunk_bits);
    } while (bad == old);
    bus.setField(chunk * chunk_bits, chunk_bits, bad);
    unsigned changed = 0;
    for (std::uint64_t diff = old ^ bad; diff; diff >>= 1)
        changed += diff & 1;
    return changed;
}

unsigned
corruptRandomChunk(BitVec &bus, unsigned chunk_bits, Rng &rng)
{
    unsigned chunks = bus.width() / chunk_bits;
    unsigned chunk = unsigned(rng.below(chunks));
    corruptChunk(bus, chunk, chunk_bits, rng);
    return chunk;
}

} // namespace desc::ecc
