#include "ecc/hamming.hh"

#include <bit>

#include "common/contract.hh"
#include "common/log.hh"

namespace desc::ecc {

const char *
eccStatusName(EccStatus status)
{
    switch (status) {
      case EccStatus::Ok:
        return "ok";
      case EccStatus::Corrected:
        return "corrected";
      case EccStatus::DetectedDouble:
        return "double-error";
    }
    DESC_PANIC("bad ecc status");
}

namespace {

bool
isPowerOfTwo(unsigned x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace

SecdedCode::SecdedCode(unsigned data_bits)
    : _data_bits(data_bits)
{
    DESC_ASSERT(data_bits >= 1, "empty payload");

    // Smallest p with 2^p >= data + p + 1.
    _parity_bits = 0;
    while ((1u << _parity_bits) < data_bits + _parity_bits + 1)
        _parity_bits++;

    // Hamming positions 1..(data+parity); data bits fill the
    // non-power-of-two slots in order.
    unsigned total = data_bits + _parity_bits;
    _pos_data.assign(total + 1, ~0u);
    _data_pos.reserve(data_bits);
    unsigned di = 0;
    for (unsigned pos = 1; pos <= total; pos++) {
        if (isPowerOfTwo(pos))
            continue;
        _pos_data[pos] = di;
        _data_pos.push_back(pos);
        di++;
    }
    DESC_ASSERT(di == data_bits, "position table construction bug");
}

std::uint64_t
SecdedCode::encodeParityWord(const BitVec &data) const
{
    DESC_ASSERT(data.width() == _data_bits, "payload width mismatch");

    // Syndrome contribution of the data bits; only set bits
    // contribute, so walk the packed words bit-by-set-bit.
    unsigned syndrome = 0;
    unsigned ones = 0;
    const auto &words = data.words();
    for (std::size_t w = 0; w < words.size(); w++) {
        std::uint64_t word = words[w];
        while (word) {
            unsigned i = unsigned(w * 64) + unsigned(std::countr_zero(word));
            syndrome ^= _data_pos[i];
            ones++;
            word &= word - 1;
        }
    }

    std::uint64_t parity = 0;
    unsigned parity_ones = 0;
    for (unsigned p = 0; p < _parity_bits; p++) {
        bool bit = (syndrome >> p) & 1;
        parity |= std::uint64_t(bit) << p;
        parity_ones += bit;
    }
    parity |= std::uint64_t((ones + parity_ones) & 1) << _parity_bits;
    return parity;
}

BitVec
SecdedCode::encode(const BitVec &data) const
{
    // Codeword layout: data bits first, Hamming parity bits next,
    // overall parity last (systematic layout keeps the stored data
    // in standard binary format, as Section 3.2.3 requires).
    std::uint64_t parity = encodeParityWord(data);
    BitVec code(codeBits());
    for (unsigned i = 0; i < _data_bits; i++)
        code.setBit(i, data.bit(i));
    code.setField(_data_bits, parityBits(), parity);
    return code;
}

SecdedCode::DecodeResult
SecdedCode::decode(const BitVec &codeword) const
{
    DESC_ASSERT(codeword.width() == codeBits(), "codeword width mismatch");

    unsigned syndrome = 0;
    unsigned ones = 0;
    for (unsigned i = 0; i < _data_bits; i++) {
        if (codeword.bit(i)) {
            syndrome ^= _data_pos[i];
            ones++;
        }
    }
    for (unsigned p = 0; p < _parity_bits; p++) {
        if (codeword.bit(_data_bits + p)) {
            syndrome ^= 1u << p;
            ones++;
        }
    }
    bool overall = codeword.bit(codeBits() - 1);
    bool parity_ok = ((ones & 1) != 0) == overall;

    DecodeResult result{EccStatus::Ok, BitVec(_data_bits)};
    for (unsigned i = 0; i < _data_bits; i++)
        result.data.setBit(i, codeword.bit(i));

    if (syndrome == 0 && parity_ok)
        return result; // clean

    if (syndrome == 0 && !parity_ok) {
        // The overall parity bit itself flipped; data is intact.
        result.status = EccStatus::Corrected;
        return result;
    }

    if (!parity_ok) {
        // Single error at Hamming position `syndrome`.
        result.status = EccStatus::Corrected;
        unsigned total = _data_bits + _parity_bits;
        if (syndrome <= total && _pos_data[syndrome] != ~0u)
            result.data.flipBit(_pos_data[syndrome]);
        // Errors in parity positions leave the data intact.
        return result;
    }

    // Non-zero syndrome with matching overall parity: double error.
    result.status = EccStatus::DetectedDouble;
    return result;
}

} // namespace desc::ecc
