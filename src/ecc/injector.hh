/**
 * @file
 * H-tree transient-error injection (Section 3.2.3).
 *
 * Under conventional binary signaling a transient fault flips one wire
 * for one beat: a single bad bit. Under DESC a fault displaces or
 * fakes one toggle, which corrupts one whole chunk — up to chunk_bits
 * wrong bits, all inside one chunk. These helpers synthesize both
 * fault models on an encoded bus word so the ECC experiments can
 * verify that the interleaved SECDED layout keeps DESC correctable.
 */

#ifndef DESC_ECC_INJECTOR_HH
#define DESC_ECC_INJECTOR_HH

#include "common/bitvec.hh"
#include "common/rng.hh"

namespace desc::ecc {

/** Flip one uniformly random bit (binary-signaling fault). */
unsigned flipRandomBit(BitVec &bus, Rng &rng);

/**
 * Corrupt chunk @p chunk of the bus word to a different random value
 * (DESC-signaling fault). Returns the number of bits that changed.
 */
unsigned corruptChunk(BitVec &bus, unsigned chunk, unsigned chunk_bits,
                      Rng &rng);

/** Corrupt a uniformly random chunk; returns the chunk index. */
unsigned corruptRandomChunk(BitVec &bus, unsigned chunk_bits, Rng &rng);

} // namespace desc::ecc

#endif // DESC_ECC_INJECTOR_HH
