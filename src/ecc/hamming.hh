/**
 * @file
 * SECDED (single-error-correct, double-error-detect) Hamming codes.
 *
 * The paper protects the L2 with the (72, 64) and (137, 128) Hamming
 * codes (Section 3.2.3). This is the classic construction: parity bits
 * sit at power-of-two positions of the extended codeword, and one
 * overall parity bit upgrades single-error correction to double-error
 * detection.
 */

#ifndef DESC_ECC_HAMMING_HH
#define DESC_ECC_HAMMING_HH

#include <vector>

#include "common/bitvec.hh"

namespace desc::ecc {

/** Outcome of decoding one codeword. */
enum class EccStatus {
    Ok,             //!< no error
    Corrected,      //!< single error corrected
    DetectedDouble, //!< uncorrectable double error detected
};

const char *eccStatusName(EccStatus status);

class SecdedCode
{
  public:
    /**
     * Build the SECDED code for @p data_bits of payload: 64 gives the
     * (72, 64) code, 128 gives the (137, 128) code.
     */
    explicit SecdedCode(unsigned data_bits);

    unsigned dataBits() const { return _data_bits; }

    /** Parity bits including the overall parity. */
    unsigned parityBits() const { return _parity_bits + 1; }

    /** Total codeword length (e.g.\ 72 or 137). */
    unsigned codeBits() const { return _data_bits + parityBits(); }

    /** Encode a payload into a codeword (data first, parity after). */
    BitVec encode(const BitVec &data) const;

    /**
     * The parity bits alone — Hamming parity in the low bits, the
     * overall parity above them — packed into one integer. This is
     * the allocation-free path the block codec uses; encode() is
     * equivalent to payload-copy + depositing this word.
     */
    std::uint64_t encodeParityWord(const BitVec &data) const;

    struct DecodeResult
    {
        EccStatus status;
        BitVec data;
    };

    /** Decode (and correct if possible) a codeword. */
    DecodeResult decode(const BitVec &codeword) const;

  private:
    unsigned _data_bits;
    unsigned _parity_bits; //!< Hamming parity bits (excl. overall)

    /** Position of data bit i within the 1-based Hamming codeword. */
    std::vector<unsigned> _data_pos;

    /** Hamming position -> data index (or -1u for parity). */
    std::vector<unsigned> _pos_data;
};

} // namespace desc::ecc

#endif // DESC_ECC_HAMMING_HH
