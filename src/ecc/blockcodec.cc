#include "ecc/blockcodec.hh"

#include <algorithm>

#include "common/contract.hh"
#include "common/log.hh"

namespace desc::ecc {

BlockCodec::BlockCodec(unsigned block_bits, unsigned segment_data_bits)
    : _block_bits(block_bits), _segment_data_bits(segment_data_bits),
      _num_segments(block_bits / segment_data_bits),
      _code(segment_data_bits), _seg_scratch(segment_data_bits)
{
    DESC_ASSERT(block_bits % segment_data_bits == 0,
                "block not divisible into segments");
}

BitVec
BlockCodec::encode(const BitVec &block) const
{
    BitVec bus;
    encodeInto(block, bus);
    return bus;
}

void
BlockCodec::encodeInto(const BitVec &block, BitVec &bus) const
{
    DESC_ASSERT(block.width() == _block_bits, "block width mismatch");
    if (bus.width() != busBits())
        bus = BitVec(busBits());

    // Payload bits stay in the block's own positions.
    auto &out = bus.mutableWords();
    const auto &in = block.words();
    if (_block_bits % 64 == 0) {
        std::copy(in.begin(), in.end(), out.begin());
        std::fill(out.begin() + in.size(), out.end(), 0);
    } else {
        bus.clear();
        for (unsigned b = 0; b < _block_bits; b++)
            bus.setBit(b, block.bit(b));
    }

    for (unsigned s = 0; s < _num_segments; s++) {
        // Gather the segment's interleaved data bits.
        for (unsigned k = 0; k < _segment_data_bits; k++)
            _seg_scratch.setBit(k, block.bit(k * _num_segments + s));
        std::uint64_t parity = _code.encodeParityWord(_seg_scratch);
        // Parity bits land after the block, interleaved the same way
        // (parity bit p of segment s at p*S + s) so each parity chunk
        // also holds at most one bit per segment.
        for (unsigned p = 0; p < _code.parityBits(); p++) {
            bus.setBit(_block_bits + p * _num_segments + s,
                       (parity >> p) & 1);
        }
    }
}

BlockCodec::DecodeResult
BlockCodec::decode(const BitVec &bus) const
{
    DESC_ASSERT(bus.width() == busBits(), "bus word width mismatch");
    DecodeResult result;
    result.block = BitVec(_block_bits);

    for (unsigned s = 0; s < _num_segments; s++) {
        BitVec code(_code.codeBits());
        for (unsigned k = 0; k < _segment_data_bits; k++)
            code.setBit(k, bus.bit(k * _num_segments + s));
        for (unsigned p = 0; p < _code.parityBits(); p++) {
            code.setBit(_segment_data_bits + p,
                        bus.bit(_block_bits + p * _num_segments + s));
        }
        auto decoded = _code.decode(code);
        switch (decoded.status) {
          case EccStatus::Ok:
            break;
          case EccStatus::Corrected:
            result.corrected++;
            break;
          case EccStatus::DetectedDouble:
            result.detected_double++;
            break;
        }
        for (unsigned k = 0; k < _segment_data_bits; k++)
            result.block.setBit(k * _num_segments + s, decoded.data.bit(k));
    }
    return result;
}

} // namespace desc::ecc
