/**
 * @file
 * Cache-block SECDED codec with DESC's interleaved layout (Figure 9).
 *
 * A 512-bit block is partitioned into segments (four 128-bit segments
 * for the (137, 128) code, eight 64-bit segments for (72, 64)), each
 * protected independently. Segment membership is bit-interleaved:
 * global bit g belongs to segment (g mod S). Because DESC chunks are
 * contiguous runs of chunk_bits <= S bits, every chunk touches each
 * segment at most once — so a corrupted chunk (one bad H-tree toggle,
 * up to chunk_bits wrong bits) injects at most one error per segment
 * and stays correctable, and two corrupted chunks stay detectable.
 * Parity bits are appended to the block in the same interleaved order,
 * forming the parity chunks carried by the extra ECC wires.
 */

#ifndef DESC_ECC_BLOCKCODEC_HH
#define DESC_ECC_BLOCKCODEC_HH

#include <vector>

#include "common/bitvec.hh"
#include "ecc/hamming.hh"

namespace desc::ecc {

class BlockCodec
{
  public:
    /**
     * @param block_bits        payload block size (512)
     * @param segment_data_bits data bits per protected segment
     *                          (64 or 128 in the paper)
     */
    BlockCodec(unsigned block_bits, unsigned segment_data_bits);

    unsigned blockBits() const { return _block_bits; }
    unsigned numSegments() const { return _num_segments; }

    /** Parity bits per segment (9 for (137,128), 8 for (72,64)). */
    unsigned parityBitsPerSegment() const { return _code.parityBits(); }

    /** Total parity bits appended to the block on the bus. */
    unsigned totalParityBits() const
    {
        return _num_segments * _code.parityBits();
    }

    /** Bits on the bus per protected block transfer. */
    unsigned busBits() const { return _block_bits + totalParityBits(); }

    /**
     * Encode a block into the bus word: the payload in its original
     * position followed by interleaved parity chunks.
     */
    BitVec encode(const BitVec &block) const;

    /**
     * encode() into a caller-owned bus word (resized on first use),
     * reusing internal segment scratch — no allocations in steady
     * state. This is the hierarchy's per-transfer path.
     */
    void encodeInto(const BitVec &block, BitVec &bus) const;

    struct DecodeResult
    {
        BitVec block;
        unsigned corrected = 0;       //!< segments corrected
        unsigned detected_double = 0; //!< segments with detected 2-bit
        bool
        uncorrectable() const
        {
            return detected_double > 0;
        }
    };

    /** Decode a (possibly corrupted) bus word. */
    DecodeResult decode(const BitVec &bus) const;

  private:
    unsigned _block_bits;
    unsigned _segment_data_bits;
    unsigned _num_segments;
    SecdedCode _code;

    mutable BitVec _seg_scratch; //!< reused encodeInto segment gather
};

} // namespace desc::ecc

#endif // DESC_ECC_BLOCKCODEC_HH
