/**
 * @file
 * Niagara-like in-order multithreaded core (Table 1): single-issue,
 * four hardware thread contexts, switch-on-miss.
 *
 * The core interleaves runnable threads; a thread that misses in the
 * L1 blocks until the hierarchy's completion callback, while the
 * other contexts keep the pipeline fed — which is what makes the
 * multicore tolerate DESC's longer transfer windows (Figure 20) far
 * better than the out-of-order core does (Figure 30).
 */

#ifndef DESC_CPU_INORDER_HH
#define DESC_CPU_INORDER_HH

#include <deque>
#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/stats.hh"
#include "cpu/stream.hh"
#include "sim/eventq.hh"

namespace desc::cpu {

struct CoreStats
{
    Counter instructions;
    Counter mem_ops;
    Counter stall_cycles;
};

class InOrderCore
{
  public:
    /**
     * @param inst_budget retired instructions per thread before the
     *        thread (and eventually the core) reports done
     */
    InOrderCore(sim::EventQueue &eq, cache::MemHierarchy &mem,
                unsigned core_id,
                std::vector<std::unique_ptr<InstructionStream>> threads,
                std::uint64_t inst_budget);

    /** Kick off execution (schedules the first dispatch). */
    void start();

    bool done() const { return _done_threads == _threads.size(); }

    const CoreStats &stats() const { return _stats; }

  private:
    struct Thread
    {
        std::unique_ptr<InstructionStream> stream;
        std::uint64_t retired = 0;
        bool blocked = false;
        bool finished = false;
        std::uint64_t fetch_countdown = 0;
    };

    /** The core's single reusable issue-slot event. */
    struct DispatchEvent final : sim::Event
    {
        void process() override { core->dispatch(); }
        InOrderCore *core = nullptr;
    };

    /**
     * Per-thread continuation: either the end of an execution burst
     * whose last instruction is a memory op (issue it), or a plain
     * wake-up that returns the thread to the ready queue. A thread
     * has at most one continuation in flight, so one reusable event
     * per thread suffices.
     */
    struct ThreadEvent final : sim::Event
    {
        enum class Kind : std::uint8_t { ExecMem, Wake };

        void process() override { core->threadEvent(*this); }

        InOrderCore *core = nullptr;
        unsigned tid = 0;
        Kind kind = Kind::Wake;
        MemOp op{};
    };

    void dispatch();
    void scheduleDispatch(Cycle when);
    void threadEvent(ThreadEvent &ev);
    void onMemDone(unsigned tid);

    sim::EventQueue &_eq;
    cache::MemHierarchy &_mem;
    unsigned _core_id;
    std::uint64_t _inst_budget;

    std::vector<Thread> _threads;
    std::deque<unsigned> _ready;
    unsigned _done_threads = 0;

    DispatchEvent _dispatch_ev;
    std::deque<ThreadEvent> _thread_events; //!< indexed by tid (pinned)

    CoreStats _stats;

    /** Instructions covered by one I-fetch (one line per 8 insts). */
    static constexpr unsigned kFetchInterval = 8;
};

} // namespace desc::cpu

#endif // DESC_CPU_INORDER_HH
