/**
 * @file
 * Niagara-like in-order multithreaded core (Table 1): single-issue,
 * four hardware thread contexts, switch-on-miss.
 *
 * The core interleaves runnable threads; a thread that misses in the
 * L1 blocks until the hierarchy's completion callback, while the
 * other contexts keep the pipeline fed — which is what makes the
 * multicore tolerate DESC's longer transfer windows (Figure 20) far
 * better than the out-of-order core does (Figure 30).
 */

#ifndef DESC_CPU_INORDER_HH
#define DESC_CPU_INORDER_HH

#include <deque>
#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/stats.hh"
#include "cpu/stream.hh"
#include "sim/eventq.hh"

namespace desc::cpu {

struct CoreStats
{
    Counter instructions;
    Counter mem_ops;
    Counter stall_cycles;
};

class InOrderCore
{
  public:
    /**
     * Shared fast-forward arena for cores on one event queue.
     *
     * The batch replay absorbs every member core's dispatch and
     * thread events that are due before the first foreign queued
     * event and runs them privately in exactly the order the queue
     * would have — so one core's replay carries its neighbours'
     * bursts along instead of aborting at them. runSystem() hands
     * all SMT cores one group; a core constructed without one (unit
     * tests) batches alone. Members must share an event queue.
     */
    struct BatchGroup
    {
        /** One absorbed or locally created event awaiting replay. */
        struct Pending
        {
            Cycle when;         //!< cycle the event fires at
            std::uint64_t lseq; //!< replay order within a cycle
            InOrderCore *core;
            int id;             //!< thread id, or kDispatchId
        };

        std::vector<InOrderCore *> cores;
        std::vector<Pending> pending;          //!< replay scratch
        std::vector<const sim::Event *> skip;  //!< peek scratch

        /**
         * Deterministic replay throttle. A replay only profits when
         * the window to the first foreign event covers many core
         * events; on traffic-dense workloads the window is a few
         * cycles and the absorb/rematerialize churn costs more than
         * the queue bypass saves. After an unproductive replay the
         * next 2^backoff seed opportunities take the reference path
         * directly; a productive one resets the gate. Driven purely
         * by simulated state, so both (bit-identical) engines remain
         * interchangeable.
         */
        std::uint32_t skip_left = 0;
        std::uint32_t backoff = 0;
    };

    /**
     * @param inst_budget retired instructions per thread before the
     *        thread (and eventually the core) reports done
     * @param group shared fast-forward arena, or nullptr to batch
     *        alone; ignored under DESC_CORE_MODE=ticked
     */
    InOrderCore(sim::EventQueue &eq, cache::MemHierarchy &mem,
                unsigned core_id,
                std::vector<std::unique_ptr<InstructionStream>> threads,
                std::uint64_t inst_budget, BatchGroup *group = nullptr);

    /** Kick off execution (schedules the first dispatch). */
    void start();

    bool done() const { return _done_threads == _threads.size(); }

    const CoreStats &stats() const { return _stats; }

  private:
    struct Thread
    {
        std::unique_ptr<InstructionStream> stream;
        std::uint64_t retired = 0;
        bool blocked = false;
        bool finished = false;
        std::uint64_t fetch_countdown = 0;
    };

    /** The core's single reusable issue-slot event. */
    struct DispatchEvent final : sim::Event
    {
        void process() override { core->dispatch(); }
        InOrderCore *core = nullptr;
    };

    /**
     * Per-thread continuation: either the end of an execution burst
     * whose last instruction is a memory op (issue it), or a plain
     * wake-up that returns the thread to the ready queue. A thread
     * has at most one continuation in flight, so one reusable event
     * per thread suffices.
     */
    struct ThreadEvent final : sim::Event
    {
        enum class Kind : std::uint8_t { ExecMem, Wake };

        void process() override { core->threadEvent(*this); }

        InOrderCore *core = nullptr;
        unsigned tid = 0;
        Kind kind = Kind::Wake;
        MemOp op{};
    };

    void dispatch();
    void dispatchRef();
    void scheduleDispatch(Cycle when);
    void threadEvent(ThreadEvent &ev);
    void threadEventRef(ThreadEvent &ev);
    void onMemDone(unsigned tid);

    /**
     * Retire one execution burst of @p t: consume the gap to the next
     * memory op (clamped to the instruction budget), charge the stats
     * and the fetch countdown. Returns the busy cycles; @p has_mem
     * says whether the burst ends in the memory op @p op.
     */
    Cycle burstStep(Thread &t, MemOp &op, bool &has_mem);

    /**
     * Fast-forward engine: absorb the batch group's queued events due
     * before the first foreign event and run them privately in exact
     * queue order, starting from this core's currently firing event
     * (@p seed_id: a thread id or kDispatchId). Bails back to the
     * event queue via materialize() at the first access that is not a
     * sure L1 hit.
     */
    void replay(int seed_id);

    /** Reschedule every pending replay entry back onto the queue in
     *  original scheduling order (lseq), then clear the batch. */
    void materialize();

    /** Replay-private scheduleDispatch(): no-op while the core's
     *  dispatch sits in the queue beyond the window or in pending. */
    static void pushLocalDispatch(BatchGroup &g, InOrderCore &core,
                                  Cycle when, std::uint64_t &lseq);

    /** Feed the replay throttle with one replay's executed-event
     *  count (see BatchGroup::skip_left). */
    static void noteReplay(BatchGroup &g, unsigned executed);

    /** Completion callback waking thread @p tid. */
    cache::DoneCb
    memDoneCb(unsigned tid)
    {
        return {[](void *c, unsigned t) {
                    static_cast<InOrderCore *>(c)->onMemDone(t);
                },
                this, tid};
    }

    sim::EventQueue &_eq;
    cache::MemHierarchy &_mem;
    unsigned _core_id;
    std::uint64_t _inst_budget;

    std::vector<Thread> _threads;
    std::deque<unsigned> _ready;
    unsigned _done_threads = 0;

    DispatchEvent _dispatch_ev;
    std::deque<ThreadEvent> _thread_events; //!< indexed by tid (pinned)

    CoreStats _stats;

    BatchGroup *_group = nullptr;          //!< null in ticked mode
    std::unique_ptr<BatchGroup> _own_group; //!< when not sharing one

    /** Instructions covered by one I-fetch (one line per 8 insts). */
    static constexpr unsigned kFetchInterval = 8;

    /** Pending::id of a core's dispatch event (thread ids are >= 0). */
    static constexpr int kDispatchId = -1;

    /** Replay peek horizon; the wheel span, so the peek stays exact
     *  while run() is migrating far records ahead of the cursor. */
    static constexpr Cycle kBatchHorizon = 256;

    /** lseq for events created during replay: above any live global
     *  seq, so they sort after every absorbed event at the same cycle
     *  — the order fresh schedule() calls would have produced. */
    static constexpr std::uint64_t kLocalSeqBase = std::uint64_t{1} << 63;

    /** A replay executing fewer events than this is unproductive:
     *  the bypass saves ~10ns per event against a roughly constant
     *  peek + absorb + rematerialize cost per attempt. */
    static constexpr unsigned kReplayMinBatch = 16;

    /** Cap on BatchGroup::backoff (longest skip run: 4096 seeds). */
    static constexpr std::uint32_t kReplayBackoffCap = 12;
};

} // namespace desc::cpu

#endif // DESC_CPU_INORDER_HH
