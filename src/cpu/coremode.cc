#include "cpu/coremode.hh"

#include "common/env.hh"

namespace desc::cpu {

namespace {

std::optional<CoreMode> g_core_mode_override;

} // namespace

void
setDefaultCoreMode(std::optional<CoreMode> mode)
{
    g_core_mode_override = mode;
}

CoreMode
defaultCoreMode()
{
    if (g_core_mode_override)
        return *g_core_mode_override;
    static const CoreMode env_mode = [] {
        static const env::EnumName kWords[] = {
            {"auto", int(CoreMode::Auto)},
            {"fast", int(CoreMode::Fast)},
            {"ticked", int(CoreMode::Ticked)},
        };
        return CoreMode(env::enumOr(env::Var::CoreMode, kWords, 3,
                                    int(CoreMode::Auto)));
    }();
    return env_mode;
}

} // namespace desc::cpu
