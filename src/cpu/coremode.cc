#include "cpu/coremode.hh"

#include <cstdlib>
#include <cstring>
#include <string>

#include "common/log.hh"

namespace desc::cpu {

namespace {

std::optional<CoreMode> g_core_mode_override;

} // namespace

void
setDefaultCoreMode(std::optional<CoreMode> mode)
{
    g_core_mode_override = mode;
}

CoreMode
defaultCoreMode()
{
    if (g_core_mode_override)
        return *g_core_mode_override;
    static const CoreMode env_mode = [] {
        const char *env = std::getenv("DESC_CORE_MODE");
        if (!env || !*env || !std::strcmp(env, "auto"))
            return CoreMode::Auto;
        if (!std::strcmp(env, "fast"))
            return CoreMode::Fast;
        if (!std::strcmp(env, "ticked"))
            return CoreMode::Ticked;
        warnOnce("desc-core-mode",
                 std::string("DESC_CORE_MODE=") + env
                     + " not recognized (auto|fast|ticked); using auto");
        return CoreMode::Auto;
    }();
    return env_mode;
}

} // namespace desc::cpu
