#include "cpu/ooo.hh"

#include "common/contract.hh"
#include "common/prof.hh"

namespace desc::cpu {

OooCore::OooCore(sim::EventQueue &eq, cache::MemHierarchy &mem,
                 unsigned core_id,
                 std::unique_ptr<InstructionStream> stream,
                 std::uint64_t inst_budget)
    : _eq(eq), _mem(mem), _core_id(core_id), _stream(std::move(stream)),
      _inst_budget(inst_budget), _rng(0xa0a0 + core_id)
{
    _dispatch_ev.core = this;
}

void
OooCore::start()
{
    scheduleDispatch(_eq.now());
}

void
OooCore::scheduleDispatch(Cycle when)
{
    if (_dispatch_ev.scheduled() || _finished)
        return;
    _eq.schedule(_dispatch_ev, when);
}

OooCore::ExecEvent &
OooCore::acquireExec()
{
    if (_exec_free.empty()) {
        _exec_events.emplace_back();
        _exec_events.back().core = this;
        return _exec_events.back();
    }
    ExecEvent *ev = _exec_free.back();
    _exec_free.pop_back();
    return *ev;
}

void
OooCore::execEvent(ExecEvent &ev)
{
    DESC_PROF_SCOPE(CpuOoo);
    const MemOp op = ev.op;
    const std::uint64_t inst_no = ev.inst_no;
    _exec_free.push_back(&ev);

    if (op.is_write) {
        // Stores drain through the store buffer off the critical
        // path (traffic still charged).
        _mem.access(_core_id, op.addr, true, op.store_value, false,
                    []() {});
        scheduleDispatch(_eq.now());
        return;
    }
    bool dependent = _rng.chance(kDependentLoadFrac);
    auto lat = _mem.access(_core_id, op.addr, false, 0, false,
                           [this]() { onLoadDone(); });
    if (lat) {
        // L1 hit: pipelined; even a dependent load only costs the
        // short L1 latency.
        scheduleDispatch(_eq.now() + (dependent ? *lat : 1));
    } else if (dependent) {
        // Address depends on this load: the chain serializes and the
        // full L1-miss latency is exposed.
        _outstanding.push_back(inst_no);
        // resumed by onLoadDone
    } else {
        _outstanding.push_back(inst_no);
        // Keep executing past the miss (until ROB/MLP bind).
        scheduleDispatch(_eq.now() + 1);
    }
}

void
OooCore::onLoadDone()
{
    DESC_ASSERT(!_outstanding.empty(), "load completion with none issued");
    _outstanding.pop_front();
    scheduleDispatch(_eq.now());
}

void
OooCore::dispatch()
{
    DESC_PROF_SCOPE(CpuOoo);
    if (_finished)
        return;

    // Window limits: wait when MLP slots are exhausted or the ROB
    // cannot slide further past the oldest outstanding load.
    if (_outstanding.size() >= kMlp)
        return; // resumed by onLoadDone
    if (!_outstanding.empty() && _retired - _outstanding.front() >= kRob)
        return;

    // Instruction fetch (one line per kFetchInterval instructions);
    // an I-miss stalls the front end.
    if (_fetch_countdown == 0) {
        _fetch_countdown = kFetchInterval;
        auto lat = _mem.access(_core_id, _stream->fetchAddr(), false, 0,
                               true,
                               [this]() { scheduleDispatch(_eq.now()); });
        if (!lat)
            return; // resumed by the fetch completion
    }

    MemOp op;
    unsigned gap = _stream->nextGap(op);
    std::uint64_t remaining = _inst_budget - _retired;
    bool has_mem = true;
    std::uint64_t insts = std::uint64_t(gap) + 1;
    if (insts >= remaining) {
        insts = remaining;
        has_mem = gap + 1 <= remaining;
    }

    _retired += insts;
    _fetch_countdown = _fetch_countdown > insts
        ? unsigned(_fetch_countdown - insts)
        : 0;

    Cycle busy = std::max<Cycle>(1, (insts + kIssueWidth - 1)
                                        / kIssueWidth);
    Cycle end = _eq.now() + busy;

    if (_retired >= _inst_budget) {
        _finished = true;
        return;
    }

    if (has_mem) {
        ExecEvent &ev = acquireExec();
        ev.op = op;
        ev.inst_no = _retired;
        _eq.schedule(ev, end);
    } else {
        scheduleDispatch(end);
    }
}

} // namespace desc::cpu
