#include "cpu/ooo.hh"

#include <algorithm>

#include "common/contract.hh"
#include "common/prof.hh"
#include "cpu/coremode.hh"

namespace desc::cpu {

OooCore::OooCore(sim::EventQueue &eq, cache::MemHierarchy &mem,
                 unsigned core_id,
                 std::unique_ptr<InstructionStream> stream,
                 std::uint64_t inst_budget)
    : _eq(eq), _mem(mem), _core_id(core_id), _stream(std::move(stream)),
      _inst_budget(inst_budget), _rng(0xa0a0 + core_id)
{
    _dispatch_ev.core = this;
    _fast = defaultCoreMode() != CoreMode::Ticked;
}

void
OooCore::start()
{
    scheduleDispatch(_eq.now());
}

void
OooCore::scheduleDispatch(Cycle when)
{
    if (_dispatch_ev.scheduled() || _finished)
        return;
    _eq.schedule(_dispatch_ev, when);
}

OooCore::ExecEvent &
OooCore::acquireExec()
{
    if (_exec_free.empty()) {
        _exec_events.emplace_back();
        _exec_events.back().core = this;
        return _exec_events.back();
    }
    ExecEvent *ev = _exec_free.back();
    _exec_free.pop_back();
    return *ev;
}

void
OooCore::execEvent(ExecEvent &ev)
{
    DESC_PROF_SCOPE(CpuOoo);
    const MemOp op = ev.op;
    const std::uint64_t inst_no = ev.inst_no;
    _exec_free.push_back(&ev);

    if (op.is_write) {
        // Stores drain through the store buffer off the critical
        // path (traffic still charged).
        _mem.access(_core_id, op.addr, true, op.store_value, false,
                    cache::DoneCb{});
        scheduleDispatch(_eq.now());
        return;
    }
    bool dependent = _rng.chance(kDependentLoadFrac);
    auto lat = _mem.access(
        _core_id, op.addr, false, 0, false,
        {[](void *c, unsigned) { static_cast<OooCore *>(c)->onLoadDone(); },
         this, 0});
    if (lat) {
        // L1 hit: pipelined; even a dependent load only costs the
        // short L1 latency.
        scheduleDispatch(_eq.now() + (dependent ? *lat : 1));
    } else if (dependent) {
        // Address depends on this load: the chain serializes and the
        // full L1-miss latency is exposed.
        _outstanding.push_back(inst_no);
        // resumed by onLoadDone
    } else {
        _outstanding.push_back(inst_no);
        // Keep executing past the miss (until ROB/MLP bind).
        scheduleDispatch(_eq.now() + 1);
    }
}

void
OooCore::onLoadDone()
{
    DESC_ASSERT(!_outstanding.empty(), "load completion with none issued");
    _outstanding.pop_front();
    scheduleDispatch(_eq.now());
}

void
OooCore::dispatch()
{
    DESC_PROF_SCOPE(CpuOoo);
    if (_finished)
        return;

    // Window limits: wait when MLP slots are exhausted or the ROB
    // cannot slide further past the oldest outstanding load.
    if (_outstanding.size() >= kMlp)
        return; // resumed by onLoadDone
    if (!_outstanding.empty() && _retired - _outstanding.front() >= kRob)
        return;

    // With no load outstanding, execution is a strict
    // dispatch -> exec -> dispatch chain: none of this core's events
    // is queued, so every queued event is foreign. Chain bursts
    // inline while they stay before the first foreign event and every
    // access is a sure L1 hit; anything else is handed back to the
    // event queue at the exact cycle it would have fired. With fast
    // off, next == now, so every inline-chain guard below is false
    // and the body is the reference engine verbatim.
    bool fast = _fast && _outstanding.empty();
    if (fast && _chain_skip) {
        _chain_skip--;
        fast = false;
    }
    const Cycle now = _eq.now();
    const Cycle next =
        fast ? _eq.nextEventTimeWithin(now + kBatchHorizon) : now;
    Cycle tau = now; // cycle the current chained dispatch fires at
    unsigned chained = 0;

    for (bool first = true;; first = false) {
        if (!first
            && (tau >= next
                || (_fetch_countdown == 0
                    && !_mem.peekHit(_core_id, _stream->fetchAddr(),
                                     false, true)))) {
            if (fast)
                noteChain(chained);
            scheduleDispatch(tau);
            return;
        }

        // Instruction fetch (one line per kFetchInterval
        // instructions); an I-miss stalls the front end.
        if (_fetch_countdown == 0) {
            _fetch_countdown = kFetchInterval;
            auto lat = _mem.access(
                _core_id, _stream->fetchAddr(), false, 0, true,
                {[](void *c, unsigned) {
                     auto *core = static_cast<OooCore *>(c);
                     core->scheduleDispatch(core->_eq.now());
                 },
                 this, 0});
            if (!lat) {
                DESC_DCHECK(first, "peeked I-fetch hit missed in chain");
                if (fast)
                    noteChain(chained);
                return; // resumed by the fetch completion
            }
        }

        MemOp op;
        unsigned gap = _stream->nextGap(op);
        std::uint64_t remaining = _inst_budget - _retired;
        bool has_mem = true;
        std::uint64_t insts = std::uint64_t(gap) + 1;
        if (insts >= remaining) {
            insts = remaining;
            has_mem = gap + 1 <= remaining;
        }

        _retired += insts;
        _fetch_countdown = _fetch_countdown > insts
            ? unsigned(_fetch_countdown - insts)
            : 0;

        Cycle busy = std::max<Cycle>(1, (insts + kIssueWidth - 1)
                                            / kIssueWidth);
        Cycle end = tau + busy;

        if (_retired >= _inst_budget) {
            // The reference engine's final dispatch fires at tau;
            // leave a no-op dispatch there so the drain-time clock
            // matches. (Must precede setting _finished: the guard.)
            if (!first)
                scheduleDispatch(tau);
            _finished = true;
            return;
        }

        if (!has_mem) {
            if (fast && end < next) {
                chained++;
                tau = end;
                continue;
            }
            if (fast)
                noteChain(chained);
            scheduleDispatch(end);
            return;
        }

        if (fast && end < next) {
            if (op.is_write) {
                if (_mem.peekHit(_core_id, op.addr, true, false)) {
                    // Store-buffer drain off the critical path; the
                    // exec event resumes dispatch in the same cycle.
                    _mem.access(_core_id, op.addr, true, op.store_value,
                                false, cache::DoneCb{});
                    chained++;
                    tau = end;
                    continue;
                }
            } else if (_mem.peekHit(_core_id, op.addr, false, false)) {
                // Drawn exactly where the reference exec event draws
                // it: once per executed load, in program order.
                bool dependent = _rng.chance(kDependentLoadFrac);
                auto lat = _mem.access(
                    _core_id, op.addr, false, 0, false,
                    {[](void *c, unsigned) {
                         static_cast<OooCore *>(c)->onLoadDone();
                     },
                     this, 0});
                DESC_DCHECK(lat, "peeked load hit missed in chain");
                chained++;
                tau = end + (dependent ? *lat : 1);
                continue;
            }
        }

        if (fast)
            noteChain(chained);
        ExecEvent &ev = acquireExec();
        ev.op = op;
        ev.inst_no = _retired;
        _eq.schedule(ev, end);
        return;
    }
}

void
OooCore::noteChain(unsigned chained)
{
    if (chained >= kChainMinBatch) {
        _chain_backoff = 0;
        return;
    }
    _chain_backoff = std::min(_chain_backoff + 1, kChainBackoffCap);
    _chain_skip = std::uint32_t{1} << _chain_backoff;
}

} // namespace desc::cpu
