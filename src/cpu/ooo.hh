/**
 * @file
 * Four-issue out-of-order core model (Table 1: 128-entry ROB).
 *
 * Latency-tolerance is modeled with two limits: a load miss occupies
 * an MSHR-like miss slot (bounded memory-level parallelism), and the
 * ROB allows execution to run at most 128 instructions past the
 * oldest outstanding load. Stores retire through a store buffer and
 * never stall the window. This is the latency-sensitive design whose
 * DESC slowdown Figure 30 reports (~6% vs ~2% for the SMT multicore).
 */

#ifndef DESC_CPU_OOO_HH
#define DESC_CPU_OOO_HH

#include <deque>
#include <memory>

#include "cache/hierarchy.hh"
#include "common/stats.hh"
#include "common/rng.hh"
#include "cpu/stream.hh"
#include "sim/eventq.hh"

namespace desc::cpu {

class OooCore
{
  public:
    OooCore(sim::EventQueue &eq, cache::MemHierarchy &mem,
            unsigned core_id, std::unique_ptr<InstructionStream> stream,
            std::uint64_t inst_budget);

    void start();
    bool done() const { return _finished; }

    std::uint64_t instructions() const { return _retired; }

  private:
    struct DispatchEvent final : sim::Event
    {
        void process() override { core->dispatch(); }
        OooCore *core = nullptr;
    };

    /**
     * End of an execution burst whose last instruction is a memory
     * op. Several can be in flight at once (the window keeps sliding
     * past outstanding loads), so they come from a small per-core
     * free list that grows to the high-water mark and is then reused.
     */
    struct ExecEvent final : sim::Event
    {
        void process() override { core->execEvent(*this); }
        OooCore *core = nullptr;
        MemOp op{};
        std::uint64_t inst_no = 0;
    };

    void dispatch();
    void scheduleDispatch(Cycle when);
    void execEvent(ExecEvent &ev);
    void onLoadDone();
    ExecEvent &acquireExec();

    /** Feed the chain throttle with one dispatch's inline-chained
     *  burst count (see _chain_skip). */
    void noteChain(unsigned chained);

    sim::EventQueue &_eq;
    cache::MemHierarchy &_mem;
    unsigned _core_id;
    std::unique_ptr<InstructionStream> _stream;
    std::uint64_t _inst_budget;

    std::uint64_t _retired = 0;
    std::deque<std::uint64_t> _outstanding; //!< inst numbers of loads
    bool _finished = false;
    bool _fast = false; //!< chain bursts inline (DESC_CORE_MODE)
    std::uint64_t _fetch_countdown = 0;
    Rng _rng;

    /**
     * Deterministic chain throttle: when recent dispatches could not
     * chain anything (foreign events land every cycle or so, so the
     * queue peek is pure overhead), the next 2^_chain_backoff
     * dispatches skip the peek and run the reference step; a
     * productive chain resets it. Simulated state only, so the two
     * bit-identical paths stay interchangeable.
     */
    std::uint32_t _chain_skip = 0;
    std::uint32_t _chain_backoff = 0;

    DispatchEvent _dispatch_ev;
    std::deque<ExecEvent> _exec_events; //!< pinned storage
    std::vector<ExecEvent *> _exec_free;

    static constexpr unsigned kIssueWidth = 4;
    static constexpr unsigned kRob = 128;
    static constexpr unsigned kMlp = 8;
    static constexpr unsigned kFetchInterval = 8;

    /** Fast-chain peek horizon; the wheel span keeps the queue peek
     *  exact while run() migrates far records ahead of the cursor. */
    static constexpr Cycle kBatchHorizon = 256;

    /** Chains shorter than this are unproductive (the peek cost is
     *  not recovered); see _chain_skip. */
    static constexpr unsigned kChainMinBatch = 4;

    /** Cap on _chain_backoff (longest skip run: 4096 dispatches). */
    static constexpr std::uint32_t kChainBackoffCap = 12;

    /** Fraction of loads whose address depends on an in-flight load
     *  (pointer chains); these serialize and expose the L2 hit
     *  latency the ROB would otherwise hide. */
    static constexpr double kDependentLoadFrac = 0.45;
};

} // namespace desc::cpu

#endif // DESC_CPU_OOO_HH
