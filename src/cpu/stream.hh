/**
 * @file
 * The instruction-stream interface cores consume.
 *
 * Streams are produced by the workload models: each call yields the
 * number of non-memory instructions executed before the next memory
 * operation, plus that operation (address, direction, store value).
 */

#ifndef DESC_CPU_STREAM_HH
#define DESC_CPU_STREAM_HH

#include <cstdint>

#include "common/types.hh"

namespace desc::cpu {

struct MemOp
{
    Addr addr = 0;
    bool is_write = false;
    std::uint64_t store_value = 0;
};

class InstructionStream
{
  public:
    virtual ~InstructionStream() = default;

    /**
     * Advance the stream to the next memory operation.
     * @param op receives the memory operation
     * @return   non-memory instructions executed before @p op
     */
    virtual unsigned nextGap(MemOp &op) = 0;

    /**
     * Current instruction-fetch address (advances as instructions
     * retire; wraps within the application's code footprint).
     */
    virtual Addr fetchAddr() const = 0;
};

} // namespace desc::cpu

#endif // DESC_CPU_STREAM_HH
