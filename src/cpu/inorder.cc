#include "cpu/inorder.hh"

#include "common/contract.hh"
#include "common/prof.hh"

namespace desc::cpu {

InOrderCore::InOrderCore(
    sim::EventQueue &eq, cache::MemHierarchy &mem, unsigned core_id,
    std::vector<std::unique_ptr<InstructionStream>> threads,
    std::uint64_t inst_budget)
    : _eq(eq), _mem(mem), _core_id(core_id), _inst_budget(inst_budget)
{
    DESC_ASSERT(!threads.empty(), "core needs at least one thread");
    _dispatch_ev.core = this;
    for (auto &s : threads) {
        Thread t;
        t.stream = std::move(s);
        t.fetch_countdown = 0;
        _threads.push_back(std::move(t));
        _thread_events.emplace_back();
        _thread_events.back().core = this;
        _thread_events.back().tid = unsigned(_thread_events.size() - 1);
    }
}

void
InOrderCore::start()
{
    for (unsigned tid = 0; tid < _threads.size(); tid++)
        _ready.push_back(tid);
    scheduleDispatch(_eq.now());
}

void
InOrderCore::scheduleDispatch(Cycle when)
{
    if (_dispatch_ev.scheduled())
        return;
    _eq.schedule(_dispatch_ev, when);
}

void
InOrderCore::threadEvent(ThreadEvent &ev)
{
    DESC_PROF_SCOPE(CpuInorder);
    const unsigned tid = ev.tid;
    if (ev.kind == ThreadEvent::Kind::ExecMem) {
        auto lat = _mem.access(
            _core_id, ev.op.addr, ev.op.is_write, ev.op.store_value,
            false, [this, tid]() { onMemDone(tid); });
        if (lat) {
            ev.kind = ThreadEvent::Kind::Wake;
            _eq.scheduleIn(ev, *lat);
        } else {
            _threads[tid].blocked = true;
        }
        return;
    }
    _ready.push_back(tid);
    scheduleDispatch(_eq.now());
}

void
InOrderCore::onMemDone(unsigned tid)
{
    Thread &t = _threads[tid];
    DESC_ASSERT(t.blocked, "completion for a runnable thread");
    t.blocked = false;
    _ready.push_back(tid);
    scheduleDispatch(_eq.now());
}

void
InOrderCore::dispatch()
{
    DESC_PROF_SCOPE(CpuInorder);
    if (_ready.empty())
        return; // all contexts blocked; a completion will wake us

    unsigned tid = _ready.front();
    _ready.pop_front();
    Thread &t = _threads[tid];

    // Instruction fetch: one I-cache access per fetched line.
    if (t.fetch_countdown == 0) {
        t.fetch_countdown = kFetchInterval;
        auto lat = _mem.access(_core_id, t.stream->fetchAddr(), false, 0,
                               true, [this, tid]() { onMemDone(tid); });
        if (!lat) {
            t.blocked = true;
            // The issue slot frees immediately for other contexts.
            scheduleDispatch(_eq.now());
            return;
        }
        // I-fetch hits overlap with execution: no extra cycles.
    }

    // Execute up to the next memory operation (single issue: one
    // instruction per cycle).
    MemOp op;
    unsigned gap = t.stream->nextGap(op);
    std::uint64_t remaining = _inst_budget - t.retired;
    bool has_mem = true;
    std::uint64_t insts = std::uint64_t(gap) + 1;
    if (insts >= remaining) {
        insts = remaining;
        has_mem = gap + 1 <= remaining; // mem op is the last instruction
    }

    t.retired += insts;
    _stats.instructions.inc(insts);
    t.fetch_countdown = t.fetch_countdown > insts
        ? unsigned(t.fetch_countdown - insts)
        : 0;

    Cycle busy = std::max<Cycle>(1, insts);
    Cycle end = _eq.now() + busy;

    if (t.retired >= _inst_budget) {
        t.finished = true;
        _done_threads++;
        // Let the memory op of the final instruction drain untimed.
        scheduleDispatch(end);
        return;
    }

    ThreadEvent &tev = _thread_events[tid];
    if (has_mem) {
        _stats.mem_ops.inc();
        tev.kind = ThreadEvent::Kind::ExecMem;
        tev.op = op;
    } else {
        tev.kind = ThreadEvent::Kind::Wake;
    }
    _eq.schedule(tev, end);

    scheduleDispatch(end);
}

} // namespace desc::cpu
