#include "cpu/inorder.hh"

#include <algorithm>

#include "common/contract.hh"
#include "common/prof.hh"
#include "cpu/coremode.hh"

namespace desc::cpu {

InOrderCore::InOrderCore(
    sim::EventQueue &eq, cache::MemHierarchy &mem, unsigned core_id,
    std::vector<std::unique_ptr<InstructionStream>> threads,
    std::uint64_t inst_budget, BatchGroup *group)
    : _eq(eq), _mem(mem), _core_id(core_id), _inst_budget(inst_budget)
{
    DESC_ASSERT(!threads.empty(), "core needs at least one thread");
    _dispatch_ev.core = this;
    for (auto &s : threads) {
        Thread t;
        t.stream = std::move(s);
        t.fetch_countdown = 0;
        _threads.push_back(std::move(t));
        _thread_events.emplace_back();
        _thread_events.back().core = this;
        _thread_events.back().tid = unsigned(_thread_events.size() - 1);
    }
    if (defaultCoreMode() != CoreMode::Ticked) {
        if (!group) {
            _own_group = std::make_unique<BatchGroup>();
            group = _own_group.get();
        }
        if (!group->cores.empty())
            DESC_ASSERT(&group->cores.front()->_eq == &_eq,
                        "batch group spans event queues");
        group->cores.push_back(this);
        _group = group;
        // Steady state must not allocate: one slot per group event,
        // plus room for the replay's locally created entries.
        std::size_t events = 0;
        for (const InOrderCore *c : group->cores)
            events += 1 + c->_threads.size();
        group->skip.reserve(events);
        group->pending.reserve(2 * events);
    }
}

void
InOrderCore::start()
{
    for (unsigned tid = 0; tid < _threads.size(); tid++)
        _ready.push_back(tid);
    scheduleDispatch(_eq.now());
}

void
InOrderCore::scheduleDispatch(Cycle when)
{
    if (_dispatch_ev.scheduled())
        return;
    _eq.schedule(_dispatch_ev, when);
}

void
InOrderCore::threadEvent(ThreadEvent &ev)
{
    DESC_PROF_SCOPE(CpuInorder);
    // A memory op that is not a sure L1 hit must run through the
    // reference path (it blocks the thread and queues a transaction);
    // everything else seeds a batch replay — unless the throttle says
    // recent replays were not paying for themselves.
    if (!_group) {
        threadEventRef(ev);
        return;
    }
    if (_group->skip_left) {
        _group->skip_left--;
        threadEventRef(ev);
        return;
    }
    if (ev.kind == ThreadEvent::Kind::ExecMem
        && !_mem.peekHit(_core_id, ev.op.addr, ev.op.is_write, false)) {
        threadEventRef(ev);
        return;
    }
    replay(int(ev.tid));
}

void
InOrderCore::threadEventRef(ThreadEvent &ev)
{
    const unsigned tid = ev.tid;
    if (ev.kind == ThreadEvent::Kind::ExecMem) {
        auto lat = _mem.access(
            _core_id, ev.op.addr, ev.op.is_write, ev.op.store_value,
            false, memDoneCb(tid));
        if (lat) {
            ev.kind = ThreadEvent::Kind::Wake;
            _eq.scheduleIn(ev, *lat);
        } else {
            _threads[tid].blocked = true;
        }
        return;
    }
    _ready.push_back(tid);
    scheduleDispatch(_eq.now());
}

void
InOrderCore::onMemDone(unsigned tid)
{
    Thread &t = _threads[tid];
    DESC_ASSERT(t.blocked, "completion for a runnable thread");
    t.blocked = false;
    _ready.push_back(tid);
    scheduleDispatch(_eq.now());
}

void
InOrderCore::dispatch()
{
    DESC_PROF_SCOPE(CpuInorder);
    if (_ready.empty())
        return; // all contexts blocked; a completion will wake us
    if (!_group) {
        dispatchRef();
        return;
    }
    if (_group->skip_left) {
        _group->skip_left--;
        dispatchRef();
        return;
    }
    // An I-fetch that is not a sure hit blocks the front context and
    // must issue its transaction at this very cycle: reference path.
    const Thread &t = _threads[_ready.front()];
    if (t.fetch_countdown == 0
        && !_mem.peekHit(_core_id, t.stream->fetchAddr(), false, true)) {
        dispatchRef();
        return;
    }
    replay(kDispatchId);
}

void
InOrderCore::dispatchRef()
{
    if (_ready.empty())
        return;

    unsigned tid = _ready.front();
    _ready.pop_front();
    Thread &t = _threads[tid];

    // Instruction fetch: one I-cache access per fetched line.
    if (t.fetch_countdown == 0) {
        t.fetch_countdown = kFetchInterval;
        auto lat = _mem.access(_core_id, t.stream->fetchAddr(), false, 0,
                               true, memDoneCb(tid));
        if (!lat) {
            t.blocked = true;
            // The issue slot frees immediately for other contexts.
            scheduleDispatch(_eq.now());
            return;
        }
        // I-fetch hits overlap with execution: no extra cycles.
    }

    MemOp op;
    bool has_mem;
    Cycle busy = burstStep(t, op, has_mem);
    Cycle end = _eq.now() + busy;

    if (t.retired >= _inst_budget) {
        t.finished = true;
        _done_threads++;
        // Let the memory op of the final instruction drain untimed.
        scheduleDispatch(end);
        return;
    }

    ThreadEvent &tev = _thread_events[tid];
    if (has_mem) {
        _stats.mem_ops.inc();
        tev.kind = ThreadEvent::Kind::ExecMem;
        tev.op = op;
    } else {
        tev.kind = ThreadEvent::Kind::Wake;
    }
    _eq.schedule(tev, end);

    scheduleDispatch(end);
}

Cycle
InOrderCore::burstStep(Thread &t, MemOp &op, bool &has_mem)
{
    // Execute up to the next memory operation (single issue: one
    // instruction per cycle).
    unsigned gap = t.stream->nextGap(op);
    std::uint64_t remaining = _inst_budget - t.retired;
    has_mem = true;
    std::uint64_t insts = std::uint64_t(gap) + 1;
    if (insts >= remaining) {
        insts = remaining;
        has_mem = gap + 1 <= remaining; // mem op is the last instruction
    }

    t.retired += insts;
    _stats.instructions.inc(insts);
    t.fetch_countdown = t.fetch_countdown > insts
        ? unsigned(t.fetch_countdown - insts)
        : 0;

    return std::max<Cycle>(1, insts);
}


void
InOrderCore::replay(int seed_id)
{
    BatchGroup &g = *_group;

    // Horizon peek. The group's own queued events will be replayed
    // privately, so they must not count as pending.
    g.skip.clear();
    for (InOrderCore *c : g.cores) {
        if (c->_dispatch_ev.scheduled())
            g.skip.push_back(&c->_dispatch_ev);
        for (ThreadEvent &tev : c->_thread_events)
            if (tev.scheduled())
                g.skip.push_back(&tev);
    }
    const Cycle now = _eq.now();
    const Cycle next = _eq.nextEventTimeWithin(
        now + kBatchHorizon, g.skip.data(), g.skip.size());

    // Absorb every group event due before the first foreign one. The
    // original global seq becomes its lseq, preserving same-cycle FIFO
    // order among absorbed events; the currently firing seed precedes
    // everything (lseq 0 — any event still queued at this cycle was
    // scheduled after the seed).
    g.pending.clear();
    g.pending.push_back({now, 0, this, seed_id});
    for (InOrderCore *c : g.cores) {
        if (c->_dispatch_ev.scheduled() && c->_dispatch_ev.when() < next) {
            g.pending.push_back({c->_dispatch_ev.when(),
                                 sim::EventQueue::seqOf(c->_dispatch_ev),
                                 c, kDispatchId});
            _eq.deschedule(c->_dispatch_ev);
        }
        for (unsigned tid = 0; tid < c->_thread_events.size(); tid++) {
            ThreadEvent &tev = c->_thread_events[tid];
            if (tev.scheduled() && tev.when() < next) {
                g.pending.push_back(
                    {tev.when(), sim::EventQueue::seqOf(tev), c, int(tid)});
                _eq.deschedule(tev);
            }
        }
    }

    std::uint64_t lseq = kLocalSeqBase;
    unsigned executed = 0;

    while (!g.pending.empty()) {
        // argmin by (when, lseq): the order run() would fire them in.
        std::size_t best = 0;
        for (std::size_t i = 1; i < g.pending.size(); i++) {
            const BatchGroup::Pending &a = g.pending[i];
            const BatchGroup::Pending &b = g.pending[best];
            if (a.when < b.when || (a.when == b.when && a.lseq < b.lseq))
                best = i;
        }
        const BatchGroup::Pending e = g.pending[best];
        // The seed is already firing and must process here; for it the
        // wrappers pre-verified the sure-hit conditions.
        const bool seeded = e.lseq == 0;
        InOrderCore &core = *e.core;

        if (!seeded && e.when >= next) {
            materialize();
            noteReplay(g, executed);
            return;
        }

        if (e.id != kDispatchId) {
            ThreadEvent &tev = core._thread_events[unsigned(e.id)];
            if (tev.kind == ThreadEvent::Kind::ExecMem) {
                if (!seeded
                    && !core._mem.peekHit(core._core_id, tev.op.addr,
                                          tev.op.is_write, false)) {
                    materialize();
                    noteReplay(g, executed);
                    return;
                }
                executed++;
                g.pending[best] = g.pending.back();
                g.pending.pop_back();
                auto lat = core._mem.access(
                    core._core_id, tev.op.addr, tev.op.is_write,
                    tev.op.store_value, false,
                    core.memDoneCb(unsigned(e.id)));
                DESC_DCHECK(lat, "peeked hit missed during replay");
                tev.kind = ThreadEvent::Kind::Wake;
                g.pending.push_back({e.when + *lat, lseq++, &core, e.id});
            } else {
                executed++;
                g.pending[best] = g.pending.back();
                g.pending.pop_back();
                core._ready.push_back(unsigned(e.id));
                pushLocalDispatch(g, core, e.when, lseq);
            }
            continue;
        }

        // Dispatch entry.
        if (core._ready.empty()) {
            if (g.pending.size() == 1) {
                // Trailing no-op dispatch — possibly the reference
                // engine's final event; materialize it so the clock at
                // drain time matches.
                DESC_DCHECK(!seeded,
                            "seed dispatch with no ready context");
                materialize();
                noteReplay(g, executed);
                return;
            }
            // Later pending entries (or their successors) outlive this
            // no-op, so dropping it cannot change the final clock.
            g.pending[best] = g.pending.back();
            g.pending.pop_back();
            continue;
        }
        unsigned tid = core._ready.front();
        Thread &t = core._threads[tid];
        if (!seeded && t.fetch_countdown == 0
            && !core._mem.peekHit(core._core_id, t.stream->fetchAddr(),
                                  false, true)) {
            materialize();
            noteReplay(g, executed);
            return;
        }
        executed++;
        g.pending[best] = g.pending.back();
        g.pending.pop_back();
        core._ready.pop_front();
        if (t.fetch_countdown == 0) {
            t.fetch_countdown = kFetchInterval;
            auto lat = core._mem.access(core._core_id,
                                        t.stream->fetchAddr(), false, 0,
                                        true, core.memDoneCb(tid));
            DESC_DCHECK(lat, "peeked I-fetch hit missed during replay");
            (void)lat;
        }
        MemOp op;
        bool has_mem;
        Cycle busy = core.burstStep(t, op, has_mem);
        Cycle end = e.when + busy;
        if (t.retired >= core._inst_budget) {
            t.finished = true;
            core._done_threads++;
            pushLocalDispatch(g, core, end, lseq);
            continue;
        }
        ThreadEvent &tev = core._thread_events[tid];
        if (has_mem) {
            core._stats.mem_ops.inc();
            tev.kind = ThreadEvent::Kind::ExecMem;
            tev.op = op;
        } else {
            tev.kind = ThreadEvent::Kind::Wake;
        }
        g.pending.push_back({end, lseq++, &core, int(tid)});
        pushLocalDispatch(g, core, end, lseq);
    }
    // Batch drained with nothing to put back: every remaining effect
    // already sits in the queue (e.g. a dispatch beyond the window).
    noteReplay(g, executed);
}

void
InOrderCore::noteReplay(BatchGroup &g, unsigned executed)
{
    if (executed >= kReplayMinBatch) {
        g.backoff = 0;
        return;
    }
    g.backoff = std::min(g.backoff + 1, kReplayBackoffCap);
    g.skip_left = std::uint32_t{1} << g.backoff;
}

void
InOrderCore::materialize()
{
    BatchGroup &g = *_group;
    // lseq ascending reproduces the reference engine's scheduling
    // order: absorbed events first in their original relative order,
    // then locally created ones. Only same-cycle ties care, and every
    // absorbed entry fires before the first foreign event, so no
    // foreign tie can arise from the new global seqs.
    std::sort(g.pending.begin(), g.pending.end(),
              [](const BatchGroup::Pending &a,
                 const BatchGroup::Pending &b) { return a.lseq < b.lseq; });
    for (const BatchGroup::Pending &p : g.pending) {
        DESC_DCHECK(p.lseq != 0, "seed event must never rematerialize");
        sim::Event &ev = p.id == kDispatchId
            ? static_cast<sim::Event &>(p.core->_dispatch_ev)
            : static_cast<sim::Event &>(
                  p.core->_thread_events[unsigned(p.id)]);
        _eq.schedule(ev, p.when);
    }
    g.pending.clear();
}

void
InOrderCore::pushLocalDispatch(BatchGroup &g, InOrderCore &core, Cycle when,
                               std::uint64_t &lseq)
{
    // Mirrors scheduleDispatch(): one dispatch in flight per core,
    // whether it sits in the queue (beyond the window) or in pending.
    if (core._dispatch_ev.scheduled())
        return;
    for (const BatchGroup::Pending &p : g.pending)
        if (p.core == &core && p.id == kDispatchId)
            return;
    g.pending.push_back({when, lseq++, &core, kDispatchId});
}

} // namespace desc::cpu
