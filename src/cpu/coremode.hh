/**
 * @file
 * Runtime selection of the core execution engine.
 *
 * Fast mode lets cores retire whole runs of provably-hitting bursts
 * in one step — the in-order cores replay their dispatch/wake event
 * chains privately until the first queued foreign event or the first
 * access that is not a sure L1 hit, and the out-of-order core chains
 * bursts inline while no load is outstanding. Ticked mode keeps the
 * reference event-per-burst execution. Both engines perform the same
 * accesses in the same order at the same cycles, so every observable
 * — stats, traces, run caches — is bit-identical; the differential
 * suite pins this. Mirrors DESC_LINK_MODE / DESC_L2_MODE /
 * DESC_ENCODER_MODE.
 */

#ifndef DESC_CPU_COREMODE_HH
#define DESC_CPU_COREMODE_HH

#include <optional>

namespace desc::cpu {

enum class CoreMode {
    Auto,  //!< fast engine (no observable differs, so no watcher gate)
    Fast,  //!< force the instruction-batch fast-forward engine
    Ticked //!< force the reference event-per-burst engine
};

/**
 * Mode from the DESC_CORE_MODE environment variable
 * (auto|fast|ticked), latched on first use; a programmatic override
 * takes precedence. Cores capture the mode at construction.
 */
CoreMode defaultCoreMode();

/**
 * Override (or, with nullopt, un-override) the default core mode
 * from code. Later-constructed cores see the new value; existing
 * ones are unaffected. For differential tests.
 */
void setDefaultCoreMode(std::optional<CoreMode> mode);

} // namespace desc::cpu

#endif // DESC_CPU_COREMODE_HH
