/**
 * @file
 * Sampling-free, scope-based self-profiler.
 *
 * DESC_PROF_SCOPE(component) marks a region of host work as belonging
 * to one simulator component; the profiler accumulates wall time,
 * entry counts, and (via DESC_PROF_CYCLES) simulated-cycle spans into
 * a hierarchical per-thread profile. Time inside a nested scope is
 * subtracted from the enclosing scope's self time, so the per
 * component self_ns totals partition the instrumented wall clock and
 * answer "where do the host cycles of a run actually go".
 *
 * Cost contract (same one-branch pattern as src/common/trace): a
 * disabled scope is one relaxed atomic load and a predictable branch
 * in the constructor plus one branch in the destructor — cheap enough
 * to stay compiled into the hot simulation paths. bench/perf_kernel
 * measures this as runsystem_prof_overhead_pct and CI gates it.
 *
 * Environment:
 *   DESC_PROF=1        enable profiling (hot-spot table, stat merge)
 *   DESC_PROF_OUT=f    write a Chrome/Perfetto trace-event JSON to f
 *                      at process exit (implies DESC_PROF=1); one
 *                      track per component per thread
 *
 * The per-run profile deltas are threaded through the runner into the
 * StatRegistry (prof.* entries in the DESC_STATS_OUT sidecar) and the
 * run report's hot-spot table; tools/prof/desc_prof.py renders the
 * JSON into a per-component breakdown.
 */

#ifndef DESC_COMMON_PROF_HH
#define DESC_COMMON_PROF_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace desc::prof {

/**
 * Profiled components. The central table: every DESC_PROF_SCOPE /
 * DESC_PROF_CYCLES site names one of these, and desc-lint checks the
 * enum against the kNames table in prof.cc (dots removed, lowered).
 */
enum class Component : unsigned {
    Runner,       //!< sweep worker: whole runAppCached jobs
    Energy,       //!< post-run CACTI/McPAT energy accounting
    CpuInorder,   //!< in-order SMT core dispatch and thread events
    CpuOoo,       //!< out-of-order core dispatch and exec events
    CacheAccess,  //!< L1 lookup fast path (MemHierarchy::access)
    CacheRequest, //!< L2 request handling (hits, directory work)
    CacheMiss,    //!< L2 miss path: tag probe, fill, eviction
    CacheRespond, //!< response fan-out back into the L1s
    Dram,         //!< DDR3 command scheduling and completions
    LinkFast,     //!< DESC link closed-form fast-forward transfers
    LinkTicked,   //!< DESC link cycle-accurate ticked transfers
    Encoder,      //!< TransferScheme::transfer block encoding
};

constexpr unsigned kNumComponents = 12;

/** Dotted lower-case component name ("cache.access"). */
const char *componentName(Component c);

/** Per-component aggregate. self_ns excludes nested profiled scopes;
 *  total_ns includes them. cycles are simulated-cycle spans attributed
 *  with DESC_PROF_CYCLES. */
struct ComponentTotals
{
    std::uint64_t count = 0;
    std::uint64_t self_ns = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t cycles = 0;
};

/** A snapshot of all component totals (one thread, or merged). */
struct Profile
{
    ComponentTotals comp[kNumComponents];

    /** Total scope entries across all components. */
    std::uint64_t scopes() const;

    /** Total self nanoseconds across all components. */
    std::uint64_t selfNs() const;

    void add(const Profile &other);

    /** Componentwise this - base (counters are monotonic). */
    Profile minus(const Profile &base) const;
};

namespace detail {

/** Live flag; initialized from DESC_PROF / DESC_PROF_OUT before
 *  main(). Atomic for the same reason as the trace mask: tests and
 *  benches flip it while sweep workers poll it. */
extern std::atomic<bool> live;

void enterScope(unsigned comp);
void exitScope();
void addCycles(unsigned comp, std::uint64_t cycles);

} // namespace detail

/** True when profiling is live. One load + one branch. */
inline bool
enabled()
{
    return detail::live.load(std::memory_order_relaxed);
}

/** Enable/disable profiling at runtime (tests, benches). */
void setEnabled(bool on);

/**
 * Parse a DESC_PROF-style toggle: null/""/"0" is off, "1" is on.
 * Anything else warns (once per distinct value) and is off.
 */
bool parseProfSpec(const char *spec);

/** RAII scope marker; see DESC_PROF_SCOPE. */
class Scope
{
  public:
    explicit Scope(Component c) : _active(enabled())
    {
        if (_active)
            detail::enterScope(unsigned(c));
    }

    ~Scope()
    {
        if (_active)
            detail::exitScope();
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    bool _active;
};

/** The calling thread's accumulated profile. */
Profile threadProfile();

/** threadProfile() minus @p base — the delta since a snapshot. */
Profile deltaSince(const Profile &base);

/**
 * All threads' profiles summed. Callers must order the reads after
 * the writers' scope exits (join the threads, or synchronize through
 * the runner's batch-completion lock).
 */
Profile mergedProfile();

/**
 * Record one finished run's profile delta under @p run_label
 * (app/Scheme#hash16). The runs appear in the DESC_PROF_OUT JSON and
 * the most recent one feeds the run report's hot-spot table.
 */
void noteRunProfile(const std::string &run_label, const Profile &p);

/** Most recently noted run profile; false when none was noted. */
bool lastRunProfile(Profile *out, std::string *label);

/** True when DESC_PROF_OUT requests a trace-event JSON. */
bool outputEnabled();

/** The DESC_PROF_OUT path ("" when unset). */
const std::string &outputPath();

/**
 * Write the Chrome/Perfetto trace-event JSON: a top-level object with
 * "traceEvents" (B/E pairs, ts in microseconds, one tid per component
 * per thread) plus a "profile" aggregate (merged + per-thread + per
 * run component totals). Called at process exit for DESC_PROF_OUT;
 * exposed for tests.
 */
void writeTraceJson(std::ostream &os);

/** Toggle trace-event capture (normally implied by DESC_PROF_OUT). */
void setCaptureForTest(bool on);

/** Clear all accumulated profiles, events, and run records. */
void resetForTest();

} // namespace desc::prof

#define DESC_PROF_CAT2(a, b) a##b
#define DESC_PROF_CAT(a, b) DESC_PROF_CAT2(a, b)

/** Attribute the enclosing block's host time to @p comp. */
#define DESC_PROF_SCOPE(comp)                                             \
    ::desc::prof::Scope DESC_PROF_CAT(desc_prof_scope_, __LINE__)         \
    {                                                                     \
        ::desc::prof::Component::comp                                     \
    }

/** Attribute @p n simulated cycles to @p comp (only when live). */
#define DESC_PROF_CYCLES(comp, n)                                         \
    do {                                                                  \
        if (::desc::prof::enabled()) {                                    \
            ::desc::prof::detail::addCycles(                              \
                unsigned(::desc::prof::Component::comp), (n));            \
        }                                                                 \
    } while (0)

#endif // DESC_COMMON_PROF_HH
