#include "common/stats.hh"

#include <cmath>

#include "common/log.hh"

namespace desc {

double
Histogram::mean() const
{
    if (_total == 0)
        return 0.0;
    double sum = 0.0;
    for (unsigned i = 0; i < _bins.size(); i++)
        sum += double(i) * double(_bins[i]);
    // Overflowed samples are counted at the first out-of-range value;
    // callers size the histogram so overflow is negligible.
    sum += double(_bins.size()) * double(_overflow);
    return sum / double(_total);
}

void
Histogram::merge(const Histogram &o)
{
    if (_bins.empty()) {
        *this = o;
        return;
    }
    DESC_ASSERT(_bins.size() == o._bins.size(), "histogram size mismatch");
    for (unsigned i = 0; i < _bins.size(); i++)
        _bins[i] += o._bins[i];
    _total += o._total;
    _overflow += o._overflow;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / double(values.size()));
}

} // namespace desc
