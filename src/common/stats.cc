#include "common/stats.hh"

#include <cmath>

#include "common/contract.hh"
#include "common/log.hh"

namespace desc {

double
Histogram::mean() const
{
    // Mean of the in-range samples only: the overflow bucket does not
    // retain exact values, so they are excluded rather than silently
    // clamped (see the class contract).
    std::uint64_t in_range = inRange();
    if (in_range == 0)
        return 0.0;
    double sum = 0.0;
    for (unsigned i = 0; i < _bins.size(); i++)
        sum += double(i) * double(_bins[i]);
    return sum / double(in_range);
}

void
Histogram::merge(const Histogram &o)
{
    if (o._bins.empty() && o._total == 0)
        return; // merging a default-constructed histogram is a no-op
    if (_bins.empty() && _total == 0) {
        *this = o;
        return;
    }
    DESC_ASSERT(_bins.size() == o._bins.size(), "histogram size mismatch");
    for (unsigned i = 0; i < _bins.size(); i++)
        _bins[i] += o._bins[i];
    _total += o._total;
    _overflow += o._overflow;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / double(values.size()));
}

// --- StatRegistry -------------------------------------------------

namespace {

const char *
kindName(StatRegistry::Kind k)
{
    switch (k) {
      case StatRegistry::Kind::Counter:
        return "counter";
      case StatRegistry::Kind::Average:
        return "average";
      case StatRegistry::Kind::Histogram:
        return "histogram";
      case StatRegistry::Kind::Scalar:
        return "scalar";
      case StatRegistry::Kind::Int:
        return "int";
      case StatRegistry::Kind::Text:
        return "text";
    }
    return "?";
}

void
validatePath(const std::string &path)
{
    DESC_ASSERT(!path.empty(), "empty stat path");
    DESC_ASSERT(path.front() != '.' && path.back() != '.'
                    && path.find("..") == std::string::npos,
                "malformed stat path \"", path,
                "\" (want non-empty dot-separated segments)");
}

} // namespace

StatRegistry::Entry &
StatRegistry::insert(const std::string &path, Kind kind,
                     std::string description)
{
    validatePath(path);
    DESC_ASSERT(!description.empty(), "stat \"", path,
                "\" registered without a description");
    DESC_ASSERT(!_entries.count(path), "duplicate stat path \"", path,
                "\"");

    // A leaf must never also be an interior node: reject a new path
    // that is a dotted prefix of an existing one or vice versa.
    auto after = _entries.lower_bound(path + ".");
    DESC_ASSERT(after == _entries.end()
                    || after->first.compare(0, path.size() + 1,
                                            path + ".") != 0,
                "stat path \"", path, "\" conflicts with existing leaf \"",
                after == _entries.end() ? "" : after->first, "\"");
    for (std::size_t dot = path.find('.'); dot != std::string::npos;
         dot = path.find('.', dot + 1)) {
        DESC_ASSERT(!_entries.count(path.substr(0, dot)),
                    "stat path \"", path,
                    "\" conflicts with existing leaf \"",
                    path.substr(0, dot), "\"");
    }

    Entry e;
    e.kind = kind;
    e.description = std::move(description);
    return _entries.emplace(path, std::move(e)).first->second;
}

void
StatRegistry::add(const std::string &path, const Counter &c,
                  std::string description)
{
    insert(path, Kind::Counter, std::move(description)).counter = &c;
}

void
StatRegistry::add(const std::string &path, const Average &a,
                  std::string description)
{
    insert(path, Kind::Average, std::move(description)).average = &a;
}

void
StatRegistry::add(const std::string &path, const Histogram &h,
                  std::string description)
{
    insert(path, Kind::Histogram, std::move(description)).histogram = &h;
}

void
StatRegistry::addScalar(const std::string &path, double v,
                        std::string description)
{
    insert(path, Kind::Scalar, std::move(description)).scalar = v;
}

void
StatRegistry::addInt(const std::string &path, std::uint64_t v,
                     std::string description)
{
    insert(path, Kind::Int, std::move(description)).integer = v;
}

void
StatRegistry::addText(const std::string &path, std::string v,
                      std::string description)
{
    insert(path, Kind::Text, std::move(description)).text = std::move(v);
}

bool
StatRegistry::contains(const std::string &path) const
{
    return _entries.count(path) != 0;
}

const StatRegistry::Entry &
StatRegistry::lookup(const std::string &path, Kind kind) const
{
    auto it = _entries.find(path);
    DESC_ASSERT(it != _entries.end(), "unknown stat path \"", path,
                "\"");
    DESC_ASSERT(it->second.kind == kind, "stat \"", path, "\" is a ",
                kindName(it->second.kind), ", not a ", kindName(kind));
    return it->second;
}

std::uint64_t
StatRegistry::counterValue(const std::string &path) const
{
    return lookup(path, Kind::Counter).counter->value();
}

const Average &
StatRegistry::average(const std::string &path) const
{
    return *lookup(path, Kind::Average).average;
}

const Histogram &
StatRegistry::histogram(const std::string &path) const
{
    return *lookup(path, Kind::Histogram).histogram;
}

double
StatRegistry::scalar(const std::string &path) const
{
    return lookup(path, Kind::Scalar).scalar;
}

std::uint64_t
StatRegistry::integer(const std::string &path) const
{
    return lookup(path, Kind::Int).integer;
}

const std::string &
StatRegistry::text(const std::string &path) const
{
    return lookup(path, Kind::Text).text;
}

const std::string &
StatRegistry::description(const std::string &path) const
{
    auto it = _entries.find(path);
    DESC_ASSERT(it != _entries.end(), "unknown stat path \"", path,
                "\"");
    return it->second.description;
}

} // namespace desc
