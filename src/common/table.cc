#include "common/table.hh"

#include <cstdio>
#include <cstdint>

#include "common/contract.hh"
#include "common/env.hh"
#include "common/log.hh"

namespace desc {

std::string
fmt(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

Table::Table(std::vector<std::string> columns)
    : _columns(std::move(columns))
{
}

Table &
Table::row()
{
    _rows.emplace_back();
    return *this;
}

Table &
Table::add(const std::string &cell)
{
    DESC_ASSERT(!_rows.empty(), "add() before row()");
    DESC_ASSERT(_rows.back().size() < _columns.size(), "row overflow");
    _rows.back().push_back(cell);
    return *this;
}

Table &
Table::add(double value, int precision)
{
    return add(fmt(value, precision));
}

Table &
Table::add(std::uint64_t value)
{
    return add(std::to_string(value));
}

void
Table::print(const std::string &title) const
{
    if (!title.empty())
        std::printf("== %s ==\n", title.c_str());

    // Machine-readable mirror for downstream tooling.
    if (env::isSet(env::Var::TableCsv)) {
        std::fputs(toCsv().c_str(), stdout);
        std::printf("\n");
        return;
    }

    std::vector<std::size_t> widths(_columns.size());
    for (std::size_t c = 0; c < _columns.size(); c++)
        widths[c] = _columns[c].size();
    for (const auto &row : _rows) {
        for (std::size_t c = 0; c < row.size(); c++)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < _columns.size(); c++) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            std::printf("%-*s", int(widths[c] + 2), cell.c_str());
        }
        std::printf("\n");
    };

    print_row(_columns);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &row : _rows)
        print_row(row);
    std::printf("\n");
}

std::string
Table::toCsv() const
{
    std::string out;
    auto append_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); c++) {
            if (c)
                out.push_back(',');
            out += cells[c];
        }
        out.push_back('\n');
    };
    append_row(_columns);
    for (const auto &row : _rows)
        append_row(row);
    return out;
}

} // namespace desc
