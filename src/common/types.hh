/**
 * @file
 * Fundamental type aliases shared across the DESC reproduction.
 */

#ifndef DESC_COMMON_TYPES_HH
#define DESC_COMMON_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace desc {

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Physical / simulated byte address. */
using Addr = std::uint64_t;

/** Simulated time in picoseconds (for energy integration). */
using Picoseconds = std::uint64_t;

/** Energy in joules. */
using Joule = double;

/** Power in watts. */
using Watt = double;

/** Number of bytes in a cache block throughout the paper. */
constexpr unsigned kBlockBytes = 64;

/** Number of bits in a cache block (512 in the paper). */
constexpr unsigned kBlockBits = kBlockBytes * 8;

} // namespace desc

#endif // DESC_COMMON_TYPES_HH
