#include "common/trace.hh"

#include <cstring>

#include "common/contract.hh"
#include "common/env.hh"

namespace desc::trace {

namespace {

constexpr const char *kNames[kNumChannels] = {
    "link", "cache", "dram", "runner"};

/** Explicit override from setStream(); nullptr means "default".
 *  Atomic: a test may redirect while sweep workers are emitting. */
std::atomic<std::FILE *> g_override{nullptr};

/** Stream selected by DESC_TRACE_FILE (opened lazily, never closed —
 *  trace points may fire from static destructors). */
std::FILE *
defaultStream()
{
    static std::FILE *f = [] {
        const char *path = env::raw(env::Var::TraceFile);
        if (!path || !*path)
            return stderr;
        std::FILE *out = std::fopen(path, "w");
        if (!out) {
            warn(desc::detail::concat("cannot open DESC_TRACE_FILE \"",
                                      path, "\"; tracing to stderr"));
            return stderr;
        }
        return out;
    }();
    return f;
}

std::FILE *
stream()
{
    std::FILE *o = g_override.load(std::memory_order_acquire);
    return o ? o : defaultStream();
}

void
write(Channel c, const char *cycle_field, const std::string &msg)
{
    const std::string &ctx = threadLogContext();
    // Resolve the stream before locking: the first resolution may
    // warn() about a bad DESC_TRACE_FILE, which takes logMutex too.
    std::FILE *out = stream();
    std::lock_guard<std::mutex> lock(logMutex());
    if (ctx.empty()) {
        std::fprintf(out, "%12s: %s: %s\n", cycle_field,
                     channelName(c), msg.c_str());
    } else {
        std::fprintf(out, "%12s: %s: [%s] %s\n", cycle_field,
                     channelName(c), ctx.c_str(), msg.c_str());
    }
}

} // namespace

namespace detail {

std::atomic<std::uint32_t> mask = [] {
    return parseSpec(env::raw(env::Var::Trace));
}();

} // namespace detail

const char *
channelName(Channel c)
{
    DESC_ASSERT(unsigned(c) < kNumChannels, "bad trace channel");
    return kNames[unsigned(c)];
}

std::uint32_t
parseSpec(const char *spec)
{
    if (!spec || !*spec)
        return 0;

    std::uint32_t mask = 0;
    const char *p = spec;
    while (*p) {
        const char *end = std::strchr(p, ',');
        std::string name(p, end ? std::size_t(end - p) : std::strlen(p));
        p = end ? end + 1 : p + name.size();

        if (name.empty())
            continue;
        if (name == "all") {
            mask |= (1u << kNumChannels) - 1;
            continue;
        }
        bool found = false;
        for (unsigned c = 0; c < kNumChannels; c++) {
            if (name == kNames[c]) {
                mask |= 1u << c;
                found = true;
                break;
            }
        }
        if (!found) {
            warnOnce("trace-channel-" + name,
                     desc::detail::concat(
                         "ignoring unknown trace channel \"", name,
                         "\" (known: link, cache, dram, runner, all)"));
        }
    }
    return mask;
}

void
setMask(std::uint32_t mask)
{
    detail::mask.store(mask, std::memory_order_relaxed);
}

std::uint32_t
mask()
{
    return detail::mask.load(std::memory_order_relaxed);
}

void
setStream(std::FILE *out)
{
    g_override.store(out, std::memory_order_release);
}

void
emit(Channel c, std::uint64_t cycle, const std::string &msg)
{
    char field[24];
    std::snprintf(field, sizeof(field), "%llu",
                  (unsigned long long)cycle);
    write(c, field, msg);
}

void
emitHost(Channel c, const std::string &msg)
{
    write(c, "-", msg);
}

} // namespace desc::trace
