#include "common/bitvec.hh"

#include <bit>
#include <cstring>

#include "common/contract.hh"
#include "common/log.hh"
#include "common/rng.hh"

namespace desc {

namespace {

constexpr unsigned kWordBits = 64;

unsigned
wordsFor(unsigned width)
{
    return (width + kWordBits - 1) / kWordBits;
}

} // namespace

BitVec::BitVec(unsigned width)
    : _width(width), _words(wordsFor(width), 0)
{
}

BitVec::BitVec(unsigned width, std::uint64_t value)
    : _width(width), _words(wordsFor(width), 0)
{
    if (!_words.empty())
        _words[0] = value;
    maskTail();
}

void
BitVec::maskTail()
{
    unsigned rem = _width % kWordBits;
    if (rem != 0 && !_words.empty())
        _words.back() &= (std::uint64_t{1} << rem) - 1;
}

bool
BitVec::bit(unsigned pos) const
{
    DESC_ASSERT(pos < _width, "bit ", pos, " of width ", _width);
    return (_words[pos / kWordBits] >> (pos % kWordBits)) & 1;
}

void
BitVec::setBit(unsigned pos, bool value)
{
    DESC_ASSERT(pos < _width, "bit ", pos, " of width ", _width);
    std::uint64_t mask = std::uint64_t{1} << (pos % kWordBits);
    if (value)
        _words[pos / kWordBits] |= mask;
    else
        _words[pos / kWordBits] &= ~mask;
}

void
BitVec::flipBit(unsigned pos)
{
    DESC_ASSERT(pos < _width, "bit ", pos, " of width ", _width);
    _words[pos / kWordBits] ^= std::uint64_t{1} << (pos % kWordBits);
}

std::uint64_t
BitVec::field(unsigned pos, unsigned len) const
{
    DESC_ASSERT(len <= 64 && pos + len <= _width,
                "field [", pos, ",+", len, ") of width ", _width);
    if (len == 0)
        return 0;
    unsigned word = pos / kWordBits;
    unsigned off = pos % kWordBits;
    std::uint64_t value = _words[word] >> off;
    if (off + len > kWordBits)
        value |= _words[word + 1] << (kWordBits - off);
    if (len < 64)
        value &= (std::uint64_t{1} << len) - 1;
    return value;
}

void
BitVec::setField(unsigned pos, unsigned len, std::uint64_t value)
{
    DESC_ASSERT(len <= 64 && pos + len <= _width,
                "field [", pos, ",+", len, ") of width ", _width);
    if (len == 0)
        return;
    if (len < 64)
        value &= (std::uint64_t{1} << len) - 1;
    unsigned word = pos / kWordBits;
    unsigned off = pos % kWordBits;
    std::uint64_t lo_mask =
        (len < 64 ? ((std::uint64_t{1} << len) - 1) : ~std::uint64_t{0})
        << off;
    _words[word] = (_words[word] & ~lo_mask) | (value << off);
    if (off + len > kWordBits) {
        unsigned hi_len = off + len - kWordBits;
        std::uint64_t hi_mask = (std::uint64_t{1} << hi_len) - 1;
        _words[word + 1] = (_words[word + 1] & ~hi_mask)
            | (value >> (kWordBits - off));
    }
}

unsigned
BitVec::popcount() const
{
    unsigned count = 0;
    for (std::uint64_t w : _words)
        count += std::popcount(w);
    return count;
}

unsigned
BitVec::hammingDistance(const BitVec &other) const
{
    DESC_ASSERT(_width == other._width, "width mismatch ", _width, " vs ",
                other._width);
    unsigned count = 0;
    for (std::size_t i = 0; i < _words.size(); i++)
        count += std::popcount(_words[i] ^ other._words[i]);
    return count;
}

void
BitVec::invertRange(unsigned pos, unsigned len)
{
    DESC_ASSERT(pos + len <= _width,
                "range [", pos, ",+", len, ") of width ", _width);
    // Invert in word-sized strides.
    unsigned done = 0;
    while (done < len) {
        unsigned p = pos + done;
        unsigned chunk = std::min<unsigned>(64 - (p % kWordBits), len - done);
        std::uint64_t mask = chunk == 64
            ? ~std::uint64_t{0}
            : ((std::uint64_t{1} << chunk) - 1);
        _words[p / kWordBits] ^= mask << (p % kWordBits);
        done += chunk;
    }
}

void
BitVec::clear()
{
    std::fill(_words.begin(), _words.end(), 0);
}

bool
BitVec::allZero() const
{
    for (std::uint64_t w : _words) {
        if (w != 0)
            return false;
    }
    return true;
}

BitVec &
BitVec::operator^=(const BitVec &other)
{
    DESC_ASSERT(_width == other._width, "width mismatch");
    for (std::size_t i = 0; i < _words.size(); i++)
        _words[i] ^= other._words[i];
    return *this;
}

bool
BitVec::operator==(const BitVec &other) const
{
    return _width == other._width && _words == other._words;
}

void
BitVec::randomize(Rng &rng)
{
    for (std::uint64_t &w : _words)
        w = rng.next();
    maskTail();
}

void
BitVec::fromBytes(const std::uint8_t *bytes, std::size_t n)
{
    DESC_ASSERT(n * 8 >= _width, "byte buffer too small");
    std::fill(_words.begin(), _words.end(), 0);
    std::size_t need = (_width + 7) / 8;
    std::memcpy(_words.data(), bytes, std::min(n, need));
    maskTail();
}

void
BitVec::toBytes(std::uint8_t *bytes, std::size_t n) const
{
    std::size_t have = (_width + 7) / 8;
    DESC_ASSERT(n >= have, "byte buffer too small");
    std::memcpy(bytes, _words.data(), have);
}

std::string
BitVec::toHex() const
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    unsigned nibbles = (_width + 3) / 4;
    for (unsigned i = nibbles; i-- > 0;) {
        unsigned pos = i * 4;
        unsigned len = std::min(4u, _width - pos);
        out.push_back(digits[field(pos, len)]);
    }
    return out;
}

BitVec
makeBlock()
{
    return BitVec(kBlockBits);
}

} // namespace desc
