#include "common/env.hh"

#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/contract.hh"
#include "common/log.hh"

namespace desc::env {

namespace {

constexpr Info kInfos[kNumVars] = {
#define DESC_ENV_VAR(id, name, type, def, doc) {name, type, def, doc},
#include "common/env_registry.def"
#undef DESC_ENV_VAR
};

std::atomic<std::uint64_t> g_lookups{0};

/** "DESC_SIM_JOBS" -> "desc-sim-jobs": the warnOnce key stem. */
std::string
warnKey(Var v)
{
    std::string key(name(v));
    for (char &c : key) {
        if (c == '_')
            c = '-';
        else if (c >= 'A' && c <= 'Z')
            c = char(c - 'A' + 'a');
    }
    return key;
}

} // namespace

const Info &
info(Var v)
{
    DESC_ASSERT(unsigned(v) < kNumVars, "bad env::Var ", unsigned(v));
    return kInfos[unsigned(v)];
}

const char *
name(Var v)
{
    return info(v).name;
}

const char *
raw(Var v)
{
    g_lookups.fetch_add(1, std::memory_order_relaxed);
    return std::getenv(info(v).name);
}

bool
isSet(Var v)
{
    return raw(v) != nullptr;
}

bool
enabledNotZero(Var v)
{
    const char *value = raw(v);
    return !(value && std::strcmp(value, "0") == 0);
}

bool
parseBool(Var v, const char *value, bool def, const char *off_suffix)
{
    if (!value || !*value)
        return def;
    if (std::strcmp(value, "0") == 0)
        return false;
    if (std::strcmp(value, "1") == 0)
        return true;
    warnOnce(detail::concat(warnKey(v), "-", value),
             detail::concat("ignoring invalid ", name(v), "=\"", value,
                            "\" (want 0 or 1)", off_suffix));
    return def;
}

std::uint64_t
parseUint(Var v, const char *value, std::uint64_t def,
          std::uint64_t lo, std::uint64_t hi, const char *suffix)
{
    if (!value)
        return def;
    char *end = nullptr;
    errno = 0;
    unsigned long long parsed = std::strtoull(value, &end, 10);
    // strtoull silently wraps negatives; reject any sign explicitly.
    bool negative = std::strchr(value, '-') != nullptr;
    if (end == value || *end != '\0' || errno != 0 || negative
        || parsed < lo || parsed > hi) {
        warnOnce(detail::concat(warnKey(v), "-", value),
                 detail::concat("ignoring invalid ", name(v), "=\"",
                                value, "\" (want an integer in [", lo,
                                ", ", hi, "])", suffix));
        return def;
    }
    return parsed;
}

double
parsePositiveFloat(Var v, const char *value, double def,
                   const char *def_str)
{
    if (!value || !*value)
        return def;
    char *end = nullptr;
    errno = 0;
    double parsed = std::strtod(value, &end);
    if (end == value || *end != '\0' || errno == ERANGE
        || !std::isfinite(parsed) || parsed <= 0.0) {
        warn(detail::concat("ignoring invalid ", name(v), "=\"", value,
                            "\" (want a finite value > 0); using ",
                            def_str));
        return def;
    }
    return parsed;
}

int
parseEnum(Var v, const char *value, const EnumName *names,
          std::size_t count, int def)
{
    DESC_ASSERT(count > 0, "enum knob ", name(v), " with no words");
    if (!value || !*value)
        return def;
    for (std::size_t i = 0; i < count; i++) {
        if (std::strcmp(value, names[i].name) == 0)
            return names[i].value;
    }
    const char *def_word = names[0].name;
    std::string words;
    for (std::size_t i = 0; i < count; i++) {
        if (i)
            words += '|';
        words += names[i].name;
        if (names[i].value == def)
            def_word = names[i].name;
    }
    warnOnce(warnKey(v),
             detail::concat(name(v), "=", value, " not recognized (",
                            words, "); using ", def_word));
    return def;
}

bool
boolOr(Var v, bool def, const char *off_suffix)
{
    return parseBool(v, raw(v), def, off_suffix);
}

std::uint64_t
uintOr(Var v, std::uint64_t def, std::uint64_t lo, std::uint64_t hi,
       const char *suffix)
{
    return parseUint(v, raw(v), def, lo, hi, suffix);
}

double
positiveFloatOr(Var v, double def, const char *def_str)
{
    return parsePositiveFloat(v, raw(v), def, def_str);
}

std::string
stringOr(Var v, const char *def)
{
    const char *value = raw(v);
    return std::string(value && *value ? value : def);
}

int
enumOr(Var v, const EnumName *names, std::size_t count, int def)
{
    return parseEnum(v, raw(v), names, count, def);
}

std::uint64_t
lookupCount()
{
    return g_lookups.load(std::memory_order_relaxed);
}

} // namespace desc::env
