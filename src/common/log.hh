/**
 * @file
 * Error reporting helpers in the gem5 tradition.
 *
 * panic() flags an internal modeling bug and aborts; fatal() flags a user
 * configuration error and exits cleanly; warn()/inform() print status.
 */

#ifndef DESC_COMMON_LOG_HH
#define DESC_COMMON_LOG_HH

#include <mutex>
#include <sstream>
#include <string>

namespace desc {

/** Print @p msg as an internal-error diagnostic and abort(). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Print @p msg as a configuration-error diagnostic and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a non-fatal warning to stderr. */
void warn(const std::string &msg);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

/**
 * Print @p msg as a warning at most once per process for a given
 * @p key, no matter how many threads fire it. Parallel sweeps route
 * per-configuration diagnostics through this so a warning that holds
 * for every run of a batch is not repeated N times interleaved on
 * stderr.
 */
void warnOnce(const std::string &key, const std::string &msg);

/** warnOnce() keyed by the message itself. */
inline void warnOnce(const std::string &msg) { warnOnce(msg, msg); }

/**
 * Tag this thread's warn()/inform()/trace output with a short context
 * string (e.g. "w3" for runner worker 3). Empty clears the tag. The
 * tag is thread-local; the pool workers set it so diagnostics fired
 * from inside a parallel sweep are attributable to their run.
 */
void setThreadLogContext(const std::string &ctx);

/** This thread's current context tag ("" when unset). */
const std::string &threadLogContext();

/** Mutex serializing all diagnostic/trace output lines. */
std::mutex &logMutex();

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

} // namespace desc

#define DESC_PANIC(...) \
    ::desc::panicImpl(__FILE__, __LINE__, ::desc::detail::concat(__VA_ARGS__))

#define DESC_FATAL(...) \
    ::desc::fatalImpl(__FILE__, __LINE__, ::desc::detail::concat(__VA_ARGS__))

// DESC_ASSERT / DESC_DCHECK / DESC_UNREACHABLE live in
// common/contract.hh; include that directly (desc-lint enforces it).

#endif // DESC_COMMON_LOG_HH
