/**
 * @file
 * Lightweight statistics primitives used by all simulated components.
 *
 * The simulator favors explicit stat structs over a global registry;
 * components expose their stats objects and the run driver aggregates
 * them at the end of a simulation.
 */

#ifndef DESC_COMMON_STATS_HH
#define DESC_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/log.hh"

namespace desc {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { _value += n; }
    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

    Counter &operator+=(const Counter &o) { _value += o._value; return *this; }

  private:
    std::uint64_t _value = 0;
};

/** Running mean/min/max of a sampled quantity. */
class Average
{
  public:
    void
    sample(double v)
    {
        _sum += v;
        _count++;
        if (v < _min || _count == 1)
            _min = v;
        if (v > _max || _count == 1)
            _max = v;
    }

    double mean() const { return _count ? _sum / _count : 0.0; }
    double sum() const { return _sum; }
    std::uint64_t count() const { return _count; }
    double min() const { return _min; }
    double max() const { return _max; }

    /** Reinstate a previously harvested state (run-cache reload). */
    void
    restore(double sum, double min, double max, std::uint64_t count)
    {
        _sum = sum;
        _min = min;
        _max = max;
        _count = count;
    }

    void
    merge(const Average &o)
    {
        if (o._count == 0)
            return;
        if (_count == 0) {
            *this = o;
            return;
        }
        _sum += o._sum;
        _count += o._count;
        if (o._min < _min)
            _min = o._min;
        if (o._max > _max)
            _max = o._max;
    }

  private:
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
    std::uint64_t _count = 0;
};

/** Fixed-bin histogram over integer samples [0, bins). */
class Histogram
{
  public:
    explicit Histogram(unsigned bins = 0) : _bins(bins, 0) {}

    void
    sample(std::uint64_t v, std::uint64_t n = 1)
    {
        if (v >= _bins.size())
            _overflow += n;
        else
            _bins[v] += n;
        _total += n;
    }

    std::uint64_t
    bin(unsigned i) const
    {
        DESC_ASSERT(i < _bins.size(), "histogram bin ", i,
                    " out of range [0, ", _bins.size(), ")");
        return _bins[i];
    }

    std::size_t numBins() const { return _bins.size(); }
    std::uint64_t total() const { return _total; }
    std::uint64_t overflow() const { return _overflow; }

    /** Fraction of samples that fell into bin @p i. */
    double
    fraction(unsigned i) const
    {
        return _total ? double(bin(i)) / double(_total) : 0.0;
    }

    double mean() const;

    void merge(const Histogram &o);

    /** Reinstate a previously harvested state (run-cache reload). */
    void
    restore(std::vector<std::uint64_t> bins, std::uint64_t total,
            std::uint64_t overflow)
    {
        _bins = std::move(bins);
        _total = total;
        _overflow = overflow;
    }

  private:
    std::vector<std::uint64_t> _bins;
    std::uint64_t _total = 0;
    std::uint64_t _overflow = 0;
};

/** Geometric mean of a series (used for the per-app Geomean rows). */
double geomean(const std::vector<double> &values);

} // namespace desc

#endif // DESC_COMMON_STATS_HH
