/**
 * @file
 * Lightweight statistics primitives used by all simulated components,
 * and the hierarchical registry the observability layer dumps.
 *
 * Components keep explicit stat structs (Counter/Average/Histogram
 * members); at harvest time the run driver registers those objects in
 * a StatRegistry under dotted paths ("l2.hits", "link.data_flips"),
 * from which the human-readable report and the machine-readable
 * JSON/CSV dumps (sim/statdump.hh) are both produced — one source of
 * truth for every reported number.
 */

#ifndef DESC_COMMON_STATS_HH
#define DESC_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/contract.hh"
#include "common/log.hh"

namespace desc {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { _value += n; }
    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

    Counter &operator+=(const Counter &o) { _value += o._value; return *this; }

  private:
    std::uint64_t _value = 0;
};

/** Running mean/min/max of a sampled quantity. */
class Average
{
  public:
    void
    sample(double v)
    {
        _sum += v;
        _count++;
        if (v < _min || _count == 1)
            _min = v;
        if (v > _max || _count == 1)
            _max = v;
    }

    double mean() const { return _count ? _sum / _count : 0.0; }
    double sum() const { return _sum; }
    std::uint64_t count() const { return _count; }
    double min() const { return _min; }
    double max() const { return _max; }

    /** Reinstate a previously harvested state (run-cache reload). */
    void
    restore(double sum, double min, double max, std::uint64_t count)
    {
        _sum = sum;
        _min = min;
        _max = max;
        _count = count;
    }

    void
    merge(const Average &o)
    {
        if (o._count == 0)
            return;
        if (_count == 0) {
            *this = o;
            return;
        }
        _sum += o._sum;
        _count += o._count;
        if (o._min < _min)
            _min = o._min;
        if (o._max > _max)
            _max = o._max;
    }

  private:
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
    std::uint64_t _count = 0;
};

/**
 * Fixed-bin histogram over integer samples [0, bins).
 *
 * Overflow contract: samples >= numBins() land in a dedicated
 * overflow bucket. total() counts every sample, in range or not;
 * bin(i)/fraction(i) describe only in-range samples, so the bin
 * fractions sum to 1 - overflowFraction(); mean() is the mean of the
 * in-range samples only (the overflow bucket does not remember exact
 * values, so including it would silently clamp them — callers that
 * care report overflowFraction() alongside).
 */
class Histogram
{
  public:
    explicit Histogram(unsigned bins = 0) : _bins(bins, 0) {}

    void
    sample(std::uint64_t v, std::uint64_t n = 1)
    {
        if (v >= _bins.size())
            _overflow += n;
        else
            _bins[v] += n;
        _total += n;
    }

    std::uint64_t
    bin(unsigned i) const
    {
        DESC_ASSERT(i < _bins.size(), "histogram bin ", i,
                    " out of range [0, ", _bins.size(), ")");
        return _bins[i];
    }

    std::size_t numBins() const { return _bins.size(); }
    std::uint64_t total() const { return _total; }
    std::uint64_t overflow() const { return _overflow; }

    /** Samples that fell inside [0, numBins()). */
    std::uint64_t inRange() const { return _total - _overflow; }

    /** Fraction of all samples that fell into bin @p i. */
    double
    fraction(unsigned i) const
    {
        return _total ? double(bin(i)) / double(_total) : 0.0;
    }

    /** Fraction of all samples that overflowed the binned range. */
    double
    overflowFraction() const
    {
        return _total ? double(_overflow) / double(_total) : 0.0;
    }

    /** Mean of the in-range samples (see the overflow contract). */
    double mean() const;

    void merge(const Histogram &o);

    /** Reinstate a previously harvested state (run-cache reload). */
    void
    restore(std::vector<std::uint64_t> bins, std::uint64_t total,
            std::uint64_t overflow)
    {
        _bins = std::move(bins);
        _total = total;
        _overflow = overflow;
    }

  private:
    std::vector<std::uint64_t> _bins;
    std::uint64_t _total = 0;
    std::uint64_t _overflow = 0;
};

/** Geometric mean of a series (used for the per-app Geomean rows). */
double geomean(const std::vector<double> &values);

/**
 * A tree of named statistics, keyed by dotted paths
 * ("l2.bank3.desc.transitions"). Stat objects are registered by
 * reference — the registry does not own them and must not outlive
 * them — while derived quantities (rates, energies) are registered as
 * value snapshots. Paths are unique and a leaf can never also be an
 * interior node, so the tree always serializes cleanly.
 *
 * Entries iterate in lexicographic path order, which makes every dump
 * deterministic.
 */
class StatRegistry
{
  public:
    enum class Kind { Counter, Average, Histogram, Scalar, Int, Text };

    struct Entry
    {
        Kind kind;
        const desc::Counter *counter = nullptr;
        const desc::Average *average = nullptr;
        const desc::Histogram *histogram = nullptr;
        double scalar = 0.0;
        std::uint64_t integer = 0;
        std::string text;
        std::string description;
    };

    /**
     * Registration requires a non-empty human-readable description —
     * the registry is the one source of truth for reported numbers,
     * so every number must say what it measures. Enforced at runtime
     * here and statically by desc-lint (tools/lint).
     */
    void add(const std::string &path, const Counter &c,
             std::string description);
    void add(const std::string &path, const Average &a,
             std::string description);
    void add(const std::string &path, const Histogram &h,
             std::string description);
    void addScalar(const std::string &path, double v,
                   std::string description);
    void addInt(const std::string &path, std::uint64_t v,
                std::string description);
    void addText(const std::string &path, std::string v,
                 std::string description);

    bool contains(const std::string &path) const;

    /** The registered description of @p path (panics if unknown). */
    const std::string &description(const std::string &path) const;

    /** Typed lookups; missing path or kind mismatch is a panic. */
    std::uint64_t counterValue(const std::string &path) const;
    const Average &average(const std::string &path) const;
    const Histogram &histogram(const std::string &path) const;
    double scalar(const std::string &path) const;
    std::uint64_t integer(const std::string &path) const;
    const std::string &text(const std::string &path) const;

    std::size_t size() const { return _entries.size(); }
    bool empty() const { return _entries.empty(); }

    /** All entries, sorted by path. */
    const std::map<std::string, Entry> &entries() const
    {
        return _entries;
    }

  private:
    Entry &insert(const std::string &path, Kind kind,
                  std::string description);
    const Entry &lookup(const std::string &path, Kind kind) const;

    std::map<std::string, Entry> _entries;
};

} // namespace desc

#endif // DESC_COMMON_STATS_HH
