/**
 * @file
 * Contract macros for modeling invariants.
 *
 * Three tiers, all with formatted operands in the diagnostic:
 *
 *  - DESC_ASSERT(cond, ...): an invariant cheap enough to keep in
 *    every build type (argument validation, cold paths, file-format
 *    checks). Fires panicImpl() — print context, abort — always.
 *
 *  - DESC_DCHECK(cond, ...): a hot-path invariant. Identical to
 *    DESC_ASSERT in Debug builds (no NDEBUG); compiles to nothing in
 *    Release builds so the simulation kernel pays zero cost for it.
 *    The condition is not evaluated when compiled out, so it must be
 *    side-effect free.
 *
 *  - DESC_UNREACHABLE(...): marks control flow the model guarantees
 *    cannot happen (exhaustive switches, state machines). Aborts with
 *    context in Debug; in Release it lowers to
 *    __builtin_unreachable() so the optimizer can exploit it.
 *
 * The granularity rule of thumb: if the check guards against caller
 * misuse of a public API, use DESC_ASSERT; if it re-verifies an
 * invariant the surrounding code already maintains (per-event,
 * per-bit-field, per-transition work), use DESC_DCHECK.
 */

#ifndef DESC_COMMON_CONTRACT_HH
#define DESC_COMMON_CONTRACT_HH

#include "common/log.hh"

/** Assert a modeling invariant; compiled into all build types. */
#define DESC_ASSERT(cond, ...)                                            \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::desc::panicImpl(__FILE__, __LINE__,                         \
                ::desc::detail::concat("assertion failed: " #cond " ",    \
                                       ##__VA_ARGS__));                   \
        }                                                                 \
    } while (0)

#ifndef NDEBUG

/** Debug-only invariant check; free in Release builds. */
#define DESC_DCHECK(cond, ...) DESC_ASSERT(cond, ##__VA_ARGS__)

/** Debug-checked unreachable; optimizer hint in Release builds. */
#define DESC_UNREACHABLE(...)                                             \
    ::desc::panicImpl(__FILE__, __LINE__,                                 \
        ::desc::detail::concat("unreachable: ", ##__VA_ARGS__))

#else // NDEBUG

#define DESC_DCHECK(cond, ...)                                            \
    do {                                                                  \
    } while (0)

#define DESC_UNREACHABLE(...) __builtin_unreachable()

#endif // NDEBUG

#endif // DESC_COMMON_CONTRACT_HH
