/**
 * @file
 * Aligned text tables for the experiment harnesses.
 *
 * Every bench binary prints its figure/table as one of these, so the
 * output can be diffed against EXPERIMENTS.md and parsed as CSV.
 */

#ifndef DESC_COMMON_TABLE_HH
#define DESC_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace desc {

class Table
{
  public:
    explicit Table(std::vector<std::string> columns);

    /** Begin a new row; subsequent add() calls fill it left to right. */
    Table &row();

    Table &add(const std::string &cell);
    Table &add(double value, int precision = 3);
    Table &add(std::uint64_t value);

    /**
     * Render with aligned columns to stdout. If the DESC_TABLE_CSV
     * environment variable is set, emit CSV instead (for scripts that
     * post-process the figure data).
     */
    void print(const std::string &title = "") const;

    /** Render as CSV (for machine consumption). */
    std::string toCsv() const;

  private:
    std::vector<std::string> _columns;
    std::vector<std::vector<std::string>> _rows;
};

/** Format a double with fixed precision (helper for ad-hoc printing). */
std::string fmt(double value, int precision = 3);

} // namespace desc

#endif // DESC_COMMON_TABLE_HH
