#include "common/prof.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <ostream>
#include <vector>

#include "common/contract.hh"
#include "common/env.hh"
#include "common/log.hh"

namespace desc::prof {

namespace {

/** Dotted names, index-matched to the Component enum; desc-lint
 *  checks the two stay in sync (dots removed == enum name lowered). */
constexpr const char *kNames[kNumComponents] = {
    "runner",        "energy",     "cpu.inorder", "cpu.ooo",
    "cache.access",  "cache.request", "cache.miss", "cache.respond",
    "dram",          "link.fast",  "link.ticked", "encoder",
};

/** Scope stack depth limit; deeper entries are counted, not timed. */
constexpr unsigned kMaxDepth = 32;

/** Trace-event slabs: consecutive outermost scopes of one component
 *  closer than this gap merge into one B/E pair, so a hot loop shows
 *  as a continuous band instead of millions of events. */
constexpr std::uint64_t kCoalesceGapNs = 1000;

/** Per-thread trace-event cap (dropped beyond, with a counter). */
constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 18;

/** Event capture toggle; set when DESC_PROF_OUT is live. */
std::atomic<bool> g_capture{false};

std::uint64_t
nowNs()
{
    using namespace std::chrono;
    static const steady_clock::time_point origin = steady_clock::now();
    return std::uint64_t(
        duration_cast<nanoseconds>(steady_clock::now() - origin)
            .count());
}

struct ThreadState
{
    struct Frame
    {
        std::uint8_t comp;
        std::uint64_t start_ns;
        std::uint64_t child_ns;
    };

    /** A coalesced run of outermost scopes of one component. */
    struct Slab
    {
        std::uint64_t start_ns = 0;
        std::uint64_t end_ns = 0;
        std::uint64_t scopes = 0; //!< 0 means "no open slab"
    };

    struct EventRec
    {
        std::uint64_t start_ns;
        std::uint64_t end_ns;
        std::uint64_t scopes;
        std::uint8_t comp;
    };

    // Accumulators are written only by the owning thread. Readers
    // (mergedProfile, the exit-time JSON flush) must order their read
    // after the writer's scope exits: join the thread, or go through
    // the runner's batch-completion lock.
    ComponentTotals totals[kNumComponents];
    Frame stack[kMaxDepth];
    unsigned depth = 0;
    std::uint64_t overflow_depth = 0;
    unsigned comp_nest[kNumComponents] = {};
    Slab slab[kNumComponents];
    std::vector<EventRec> events;
    std::uint64_t dropped = 0;
    std::string name;
    unsigned index = 0;
};

struct Registry
{
    std::mutex mutex;
    std::vector<ThreadState *> threads;
};

/** Leaked so the atexit flush never races static destruction. */
Registry &
registry()
{
    static Registry *r = new Registry;
    return *r;
}

ThreadState &
threadState()
{
    // Leaked: a worker's accumulated profile must survive until the
    // exit-time flush, which may run after the thread is gone.
    thread_local ThreadState *ts = [] {
        auto *s = new ThreadState;
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        s->index = unsigned(r.threads.size());
        const std::string &ctx = threadLogContext();
        s->name = ctx.empty() ? "t" + std::to_string(s->index) : ctx;
        r.threads.push_back(s);
        return s;
    }();
    return *ts;
}

void
flushSlab(ThreadState &ts, unsigned comp)
{
    ThreadState::Slab &sl = ts.slab[comp];
    if (sl.scopes == 0)
        return;
    if (ts.events.size() >= kMaxEventsPerThread) {
        ts.dropped += sl.scopes;
    } else {
        ts.events.push_back(ThreadState::EventRec{
            sl.start_ns, sl.end_ns, sl.scopes, std::uint8_t(comp)});
    }
    sl.scopes = 0;
}

void
recordSpan(ThreadState &ts, unsigned comp, std::uint64_t start_ns,
           std::uint64_t end_ns)
{
    ThreadState::Slab &sl = ts.slab[comp];
    if (sl.scopes != 0 && start_ns - sl.end_ns <= kCoalesceGapNs) {
        sl.end_ns = end_ns;
        sl.scopes++;
        return;
    }
    flushSlab(ts, comp);
    sl.start_ns = start_ns;
    sl.end_ns = end_ns;
    sl.scopes = 1;
}

struct RunRecord
{
    std::string label;
    std::uint64_t seq;
    Profile profile;
};

struct RunLog
{
    std::mutex mutex;
    std::vector<RunRecord> runs;
    bool has_last = false;
    std::string last_label;
    Profile last;
};

RunLog &
runLog()
{
    static RunLog *log = new RunLog;
    return *log;
}

// --- JSON helpers -------------------------------------------------

void
jsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\' << c;
        else if (static_cast<unsigned char>(c) < 0x20)
            os << ' ';
        else
            os << c;
    }
    os << '"';
}

void
writeTotals(std::ostream &os, const ComponentTotals &t)
{
    os << "{\"scopes\": " << t.count << ", \"self_ns\": " << t.self_ns
       << ", \"total_ns\": " << t.total_ns << ", \"cycles\": "
       << t.cycles << "}";
}

void
writeComponentMap(std::ostream &os, const Profile &p, const char *indent)
{
    os << "{";
    bool first = true;
    for (unsigned c = 0; c < kNumComponents; c++) {
        if (p.comp[c].count == 0 && p.comp[c].cycles == 0)
            continue;
        os << (first ? "\n" : ",\n") << indent;
        first = false;
        jsonString(os, kNames[c]);
        os << ": ";
        writeTotals(os, p.comp[c]);
    }
    os << (first ? "}" : "\n") ;
    if (!first) {
        // Closing brace one level out from the entries.
        std::string outdent(indent);
        if (outdent.size() >= 2)
            outdent.resize(outdent.size() - 2);
        os << outdent << "}";
    }
}

void
flushAtExit()
{
    std::ofstream out(outputPath(), std::ios::trunc);
    if (!out) {
        warn(desc::detail::concat("DESC_PROF_OUT: cannot write \"",
                                  outputPath(), "\""));
        return;
    }
    writeTraceJson(out);
}

} // namespace

namespace detail {

std::atomic<bool> live = [] {
    bool on = parseProfSpec(env::raw(env::Var::Prof));
    if (outputEnabled()) {
        on = true; // DESC_PROF_OUT implies profiling
        g_capture.store(true, std::memory_order_relaxed);
        std::atexit(flushAtExit);
    }
    return on;
}();

void
enterScope(unsigned comp)
{
    ThreadState &ts = threadState();
    if (ts.depth >= kMaxDepth) {
        // Too deep to time; still counted so totals stay honest.
        ts.totals[comp].count++;
        ts.overflow_depth++;
        return;
    }
    ts.stack[ts.depth++] =
        ThreadState::Frame{std::uint8_t(comp), nowNs(), 0};
    ts.comp_nest[comp]++;
}

void
exitScope()
{
    ThreadState &ts = threadState();
    if (ts.overflow_depth > 0) {
        ts.overflow_depth--;
        return;
    }
    DESC_DCHECK(ts.depth > 0, "profiler scope exit without entry");
    const ThreadState::Frame f = ts.stack[--ts.depth];
    const std::uint64_t end = nowNs();
    const std::uint64_t dur = end - f.start_ns;

    ComponentTotals &t = ts.totals[f.comp];
    t.count++;
    t.total_ns += dur;
    t.self_ns += dur > f.child_ns ? dur - f.child_ns : 0;
    if (ts.depth > 0)
        ts.stack[ts.depth - 1].child_ns += dur;

    // Trace events record only the outermost instance of a component
    // (recursion folds into it), so every (thread, component) track
    // is a sequence of disjoint, time-ordered intervals.
    unsigned nest = --ts.comp_nest[f.comp];
    if (nest == 0 && g_capture.load(std::memory_order_relaxed))
        recordSpan(ts, f.comp, f.start_ns, end);
}

void
addCycles(unsigned comp, std::uint64_t cycles)
{
    threadState().totals[comp].cycles += cycles;
}

} // namespace detail

const char *
componentName(Component c)
{
    DESC_ASSERT(unsigned(c) < kNumComponents, "bad profiler component");
    return kNames[unsigned(c)];
}

std::uint64_t
Profile::scopes() const
{
    std::uint64_t n = 0;
    for (const auto &t : comp)
        n += t.count;
    return n;
}

std::uint64_t
Profile::selfNs() const
{
    std::uint64_t n = 0;
    for (const auto &t : comp)
        n += t.self_ns;
    return n;
}

void
Profile::add(const Profile &other)
{
    for (unsigned c = 0; c < kNumComponents; c++) {
        comp[c].count += other.comp[c].count;
        comp[c].self_ns += other.comp[c].self_ns;
        comp[c].total_ns += other.comp[c].total_ns;
        comp[c].cycles += other.comp[c].cycles;
    }
}

Profile
Profile::minus(const Profile &base) const
{
    Profile d;
    for (unsigned c = 0; c < kNumComponents; c++) {
        d.comp[c].count = comp[c].count - base.comp[c].count;
        d.comp[c].self_ns = comp[c].self_ns - base.comp[c].self_ns;
        d.comp[c].total_ns = comp[c].total_ns - base.comp[c].total_ns;
        d.comp[c].cycles = comp[c].cycles - base.comp[c].cycles;
    }
    return d;
}

void
setEnabled(bool on)
{
    detail::live.store(on, std::memory_order_relaxed);
}

bool
parseProfSpec(const char *spec)
{
    return env::parseBool(env::Var::Prof, spec, false,
                          "; profiling stays off");
}

Profile
threadProfile()
{
    ThreadState &ts = threadState();
    Profile p;
    for (unsigned c = 0; c < kNumComponents; c++)
        p.comp[c] = ts.totals[c];
    return p;
}

Profile
deltaSince(const Profile &base)
{
    return threadProfile().minus(base);
}

Profile
mergedProfile()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    Profile p;
    for (const ThreadState *ts : r.threads) {
        Profile t;
        for (unsigned c = 0; c < kNumComponents; c++)
            t.comp[c] = ts->totals[c];
        p.add(t);
    }
    return p;
}

void
noteRunProfile(const std::string &run_label, const Profile &p)
{
    RunLog &log = runLog();
    std::lock_guard<std::mutex> lock(log.mutex);
    log.runs.push_back(
        RunRecord{run_label, std::uint64_t(log.runs.size()), p});
    log.has_last = true;
    log.last_label = run_label;
    log.last = p;
}

bool
lastRunProfile(Profile *out, std::string *label)
{
    RunLog &log = runLog();
    std::lock_guard<std::mutex> lock(log.mutex);
    if (!log.has_last)
        return false;
    if (out)
        *out = log.last;
    if (label)
        *label = log.last_label;
    return true;
}

const std::string &
outputPath()
{
    static const std::string path =
        env::stringOr(env::Var::ProfOut, "");
    return path;
}

bool
outputEnabled()
{
    return !outputPath().empty();
}

void
setCaptureForTest(bool on)
{
    g_capture.store(on, std::memory_order_relaxed);
}

void
resetForTest()
{
    Registry &r = registry();
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        for (ThreadState *ts : r.threads) {
            for (unsigned c = 0; c < kNumComponents; c++) {
                ts->totals[c] = ComponentTotals{};
                ts->slab[c] = ThreadState::Slab{};
            }
            ts->events.clear();
            ts->dropped = 0;
        }
    }
    RunLog &log = runLog();
    std::lock_guard<std::mutex> lock(log.mutex);
    log.runs.clear();
    log.has_last = false;
    log.last_label.clear();
    log.last = Profile{};
}

void
writeTraceJson(std::ostream &os)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);

    struct Out
    {
        std::uint64_t ns;
        bool begin;
        unsigned tid;
        std::uint8_t comp;
        std::uint64_t scopes;
    };

    std::vector<Out> outs;
    std::uint64_t dropped = 0;
    for (ThreadState *ts : r.threads) {
        for (unsigned c = 0; c < kNumComponents; c++)
            flushSlab(*ts, c);
        dropped += ts->dropped;
        for (const auto &e : ts->events) {
            unsigned tid = ts->index * kNumComponents + e.comp + 1;
            outs.push_back(Out{e.start_ns, true, tid, e.comp, e.scopes});
            outs.push_back(Out{e.end_ns, false, tid, e.comp, 0});
        }
    }
    // Globally non-decreasing ts; stable keeps per-track B/E order
    // (within a track the raw spans are already disjoint and sorted).
    std::stable_sort(outs.begin(), outs.end(),
                     [](const Out &a, const Out &b) { return a.ns < b.ns; });

    os << "{\n  \"format\": \"desc-prof\",\n  \"version\": 1,\n"
       << "  \"dropped_events\": " << dropped << ",\n"
       << "  \"traceEvents\": [";

    bool first = true;
    auto sep = [&] {
        os << (first ? "\n    " : ",\n    ");
        first = false;
    };

    sep();
    os << "{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
          "\"args\": {\"name\": \"desc-sim\"}}";
    for (const ThreadState *ts : r.threads) {
        // One named track per component this thread actually entered.
        bool used[kNumComponents] = {};
        for (const auto &e : ts->events)
            used[e.comp] = true;
        for (unsigned c = 0; c < kNumComponents; c++) {
            if (!used[c])
                continue;
            sep();
            os << "{\"ph\": \"M\", \"pid\": 1, \"tid\": "
               << ts->index * kNumComponents + c + 1
               << ", \"name\": \"thread_name\", \"args\": {\"name\": ";
            jsonString(os, ts->name + "/" + kNames[c]);
            os << "}}";
        }
    }
    for (const Out &o : outs) {
        sep();
        char ts_us[32];
        std::snprintf(ts_us, sizeof(ts_us), "%llu.%03u",
                      (unsigned long long)(o.ns / 1000),
                      unsigned(o.ns % 1000));
        os << "{\"ph\": \"" << (o.begin ? 'B' : 'E')
           << "\", \"pid\": 1, \"tid\": " << o.tid << ", \"ts\": "
           << ts_us;
        if (o.begin) {
            os << ", \"name\": ";
            jsonString(os, kNames[o.comp]);
            os << ", \"args\": {\"scopes\": " << o.scopes << "}";
        }
        os << "}";
    }
    os << "\n  ],\n";

    // Aggregate profile: merged, per thread, and per recorded run.
    Profile merged;
    for (const ThreadState *ts : r.threads) {
        Profile t;
        for (unsigned c = 0; c < kNumComponents; c++)
            t.comp[c] = ts->totals[c];
        merged.add(t);
    }
    os << "  \"profile\": {\n    \"components\": ";
    writeComponentMap(os, merged, "      ");
    os << ",\n    \"threads\": [";
    for (std::size_t i = 0; i < r.threads.size(); i++) {
        const ThreadState *ts = r.threads[i];
        Profile t;
        for (unsigned c = 0; c < kNumComponents; c++)
            t.comp[c] = ts->totals[c];
        os << (i ? ",\n      " : "\n      ") << "{\"name\": ";
        jsonString(os, ts->name);
        os << ", \"components\": ";
        writeComponentMap(os, t, "        ");
        os << "}";
    }
    os << (r.threads.empty() ? "],\n" : "\n    ],\n");

    RunLog &log = runLog();
    std::lock_guard<std::mutex> log_lock(log.mutex);
    std::vector<const RunRecord *> runs;
    runs.reserve(log.runs.size());
    for (const auto &rec : log.runs)
        runs.push_back(&rec);
    std::sort(runs.begin(), runs.end(),
              [](const RunRecord *a, const RunRecord *b) {
                  return a->label != b->label ? a->label < b->label
                                              : a->seq < b->seq;
              });
    os << "    \"runs\": [";
    for (std::size_t i = 0; i < runs.size(); i++) {
        os << (i ? ",\n      " : "\n      ") << "{\"run\": ";
        jsonString(os, runs[i]->label);
        os << ", \"components\": ";
        writeComponentMap(os, runs[i]->profile, "        ");
        os << "}";
    }
    os << (runs.empty() ? "]\n" : "\n    ]\n");
    os << "  }\n}\n";
}

} // namespace desc::prof
