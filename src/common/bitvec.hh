/**
 * @file
 * A dynamic-width bit vector used to model data blocks and bus states.
 *
 * Cache blocks, bus beats, and per-wire link states are all modeled
 * bit-accurately; BitVec provides the word-packed storage plus the
 * operations the encoding schemes need (field extract/deposit, XOR,
 * population count, Hamming distance, range inversion).
 *
 * Bit 0 is the least-significant bit of word 0.
 */

#ifndef DESC_COMMON_BITVEC_HH
#define DESC_COMMON_BITVEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/contract.hh"
#include "common/types.hh"

namespace desc {

class Rng;

class BitVec
{
  public:
    /** Construct an all-zero vector of @p width bits. */
    explicit BitVec(unsigned width = 0);

    /** Construct from the low bits of @p value. */
    BitVec(unsigned width, std::uint64_t value);

    unsigned width() const { return _width; }
    bool empty() const { return _width == 0; }

    /** Read a single bit. */
    bool bit(unsigned pos) const;

    /** Write a single bit. */
    void setBit(unsigned pos, bool value);

    /** Toggle a single bit. */
    void flipBit(unsigned pos);

    /**
     * Extract @p len bits starting at @p pos as an integer.
     * @pre len <= 64 and pos + len <= width().
     */
    std::uint64_t field(unsigned pos, unsigned len) const;

    /**
     * Deposit the low @p len bits of @p value at @p pos.
     * @pre len <= 64 and pos + len <= width().
     */
    void setField(unsigned pos, unsigned len, std::uint64_t value);

    /** Number of set bits. */
    unsigned popcount() const;

    /** Number of differing bits between two equal-width vectors. */
    unsigned hammingDistance(const BitVec &other) const;

    /** Invert bits [pos, pos + len). */
    void invertRange(unsigned pos, unsigned len);

    /** Set all bits to zero. */
    void clear();

    /** True if every bit is zero. */
    bool allZero() const;

    /** XOR @p other into this vector (equal widths). */
    BitVec &operator^=(const BitVec &other);

    bool operator==(const BitVec &other) const;
    bool operator!=(const BitVec &other) const { return !(*this == other); }

    /** Fill the whole vector with uniformly random bits. */
    void randomize(Rng &rng);

    /** Copy bytes in (little-endian bit order); size must cover width. */
    void fromBytes(const std::uint8_t *bytes, std::size_t n);

    /** Export to bytes (little-endian bit order). */
    void toBytes(std::uint8_t *bytes, std::size_t n) const;

    /** Hex string, most-significant word first (for debugging). */
    std::string toHex() const;

    /** Raw word access for fast paths (words beyond width are zero). */
    const std::vector<std::uint64_t> &words() const { return _words; }

    /**
     * Mutable raw word access for fast paths. The caller must keep
     * the invariant that bits beyond width() stay zero and must not
     * resize the vector.
     */
    std::vector<std::uint64_t> &mutableWords() { return _words; }

    /**
     * field() without the bounds assertion, for hot loops whose
     * caller established pos + len <= width() once up front.
     * @pre 1 <= len <= 64 and pos + len <= width()
     */
    std::uint64_t
    fieldUnchecked(unsigned pos, unsigned len) const
    {
        DESC_DCHECK(len >= 1 && len <= 64 && pos + len <= _width,
                    "unchecked field [", pos, ",+", len, ") of width ",
                    _width);
        const unsigned word = pos >> 6;
        const unsigned off = pos & 63;
        std::uint64_t value = _words[word] >> off;
        if (off + len > 64)
            value |= _words[word + 1] << (64 - off);
        return len < 64 ? value & ((std::uint64_t{1} << len) - 1) : value;
    }

    /**
     * setField() without the bounds assertion.
     * @pre 1 <= len <= 64 and pos + len <= width()
     */
    void
    setFieldUnchecked(unsigned pos, unsigned len, std::uint64_t value)
    {
        DESC_DCHECK(len >= 1 && len <= 64 && pos + len <= _width,
                    "unchecked setField [", pos, ",+", len, ") of width ",
                    _width);
        if (len < 64)
            value &= (std::uint64_t{1} << len) - 1;
        const unsigned word = pos >> 6;
        const unsigned off = pos & 63;
        const std::uint64_t lo_mask =
            (len < 64 ? ((std::uint64_t{1} << len) - 1) : ~std::uint64_t{0})
            << off;
        _words[word] = (_words[word] & ~lo_mask) | (value << off);
        if (off + len > 64) {
            const unsigned hi_len = off + len - 64;
            const std::uint64_t hi_mask = (std::uint64_t{1} << hi_len) - 1;
            _words[word + 1] = (_words[word + 1] & ~hi_mask)
                | (value >> (64 - off));
        }
    }

  private:
    void maskTail();

    unsigned _width;
    std::vector<std::uint64_t> _words;
};

/**
 * Sequential field reader over a BitVec's packed words. Walks the
 * vector front to back without per-read bounds checks or index
 * arithmetic from bit zero — the idiom for chunk iteration on hot
 * paths. The caller must not read past the vector's width, and the
 * source BitVec must outlive (and not reallocate under) the cursor.
 */
class BitCursor
{
  public:
    explicit BitCursor(const BitVec &v) : _words(v.words().data())
    {
#ifndef NDEBUG
        _width = v.width();
#endif
    }

    /** Read the next @p len bits (1..64) and advance. */
    std::uint64_t
    next(unsigned len)
    {
        DESC_DCHECK(len >= 1 && len <= 64,
                    "cursor read of ", len, " bits");
#ifndef NDEBUG
        DESC_DCHECK(_pos + len <= _width, "cursor read [", _pos, ",+",
                    len, ") past width ", _width);
#endif
        const unsigned w = _pos >> 6;
        const unsigned off = _pos & 63;
        std::uint64_t value = _words[w] >> off;
        if (off + len > 64)
            value |= _words[w + 1] << (64 - off);
        _pos += len;
        return len < 64 ? value & ((std::uint64_t{1} << len) - 1) : value;
    }

    /** Bit position of the next read. */
    unsigned pos() const { return _pos; }

  private:
    const std::uint64_t *_words;
    unsigned _pos = 0;
#ifndef NDEBUG
    unsigned _width = 0; //!< Debug-only: bound for the overrun DCHECK
#endif
};

/** A 512-bit cache block payload. */
BitVec makeBlock();

} // namespace desc

#endif // DESC_COMMON_BITVEC_HH
