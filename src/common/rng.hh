/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every experiment seeds its own Rng from (application, experiment)
 * identifiers so reruns reproduce bit-identical statistics.
 */

#ifndef DESC_COMMON_RNG_HH
#define DESC_COMMON_RNG_HH

#include <cstdint>

namespace desc {

class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // splitmix64 expansion of the seed into the xoshiro state.
        std::uint64_t x = seed;
        for (auto &s : _state) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            s = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        auto rotl = [](std::uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
        std::uint64_t t = _state[1] << 17;
        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Multiply-shift rejection-free mapping; bias is negligible for
        // the bounds used in this model (< 2^40).
        unsigned __int128 m = (unsigned __int128)next() * bound;
        return (std::uint64_t)(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        // hi - lo + 1 wraps to 0 when [lo, hi] covers the whole
        // 64-bit span, which would violate below()'s bound > 0
        // precondition; every raw value is in range in that case.
        std::uint64_t span = hi - lo;
        if (span == ~std::uint64_t{0})
            return next();
        return lo + below(span + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t _state[4];
};

} // namespace desc

#endif // DESC_COMMON_RNG_HH
