/**
 * @file
 * Typed registry for every DESC_* environment knob.
 *
 * Every knob is declared exactly once in env_registry.def with a
 * name, a type word, a human-readable default, and a doc string; this
 * header generates the Var enum and the metadata accessors from that
 * table. All environment access in the tree goes through raw() /
 * the typed getters below — desc-analyze's env-registry check fails
 * any std::getenv call outside common/env.cc, so an undeclared knob
 * cannot be read at all, and `desc_analyze.py --list-env` can emit
 * the complete, always-current table for the docs.
 *
 * Parsing follows the strict warnOnce discipline: a set-but-invalid
 * value warns once per process (keyed per variable, or per
 * variable+value where the existing diagnostics did) and falls back
 * to the caller's default; an unset variable falls back silently.
 * The getters are read-through — they consult the environment on
 * every call so tests can setenv/unsetenv around them — and callers
 * on simulation hot paths memoize the result behind a magic static
 * (the mode selectors, simScale()), so steady-state code performs no
 * environment lookups at all; bench/perf_kernel asserts that via
 * lookupCount().
 */

#ifndef DESC_COMMON_ENV_HH
#define DESC_COMMON_ENV_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace desc::env {

/** One enumerator per registered DESC_* variable. */
enum class Var : unsigned {
#define DESC_ENV_VAR(id, name, type, def, doc) id,
#include "common/env_registry.def"
#undef DESC_ENV_VAR
};

constexpr unsigned kNumVars = 0
#define DESC_ENV_VAR(id, name, type, def, doc) +1
#include "common/env_registry.def"
#undef DESC_ENV_VAR
    ;

/** Registry metadata for one knob, as declared in env_registry.def. */
struct Info
{
    const char *name; ///< environment variable name ("DESC_SIM_JOBS")
    const char *type; ///< type vocabulary word ("int", "enum", ...)
    const char *def;  ///< human-readable default ("1.0", "unset")
    const char *doc;  ///< one-line description for the docs table
};

/** Metadata for @p v (static storage, never fails). */
const Info &info(Var v);

/** Environment variable name for @p v. */
const char *name(Var v);

/**
 * Raw environment lookup; nullptr when unset. The only std::getenv
 * call site in the tree lives behind this function.
 */
const char *raw(Var v);

/** True when the variable is set at all, even to the empty string. */
bool isSet(Var v);

/**
 * Default-on toggle: false only when the variable is set to exactly
 * "0" (DESC_SIM_CACHE / DESC_WARMUP_CACHE semantics; other values,
 * including garbage, leave the feature on without a diagnostic).
 */
bool enabledNotZero(Var v);

/**
 * Strict boolean: unset/empty returns @p def; "0"/"1" parse; anything
 * else warns once (keyed per variable+value, with @p off_suffix
 * appended to the diagnostic) and returns @p def.
 */
bool boolOr(Var v, bool def, const char *off_suffix = "");

/**
 * Strict unsigned integer in [@p lo, @p hi]: unset/empty returns
 * @p def; out-of-range, signed, or non-numeric values warn once
 * (keyed per variable+value, @p suffix appended) and return @p def.
 */
std::uint64_t uintOr(Var v, std::uint64_t def, std::uint64_t lo,
                     std::uint64_t hi, const char *suffix = "");

/**
 * Strict positive finite double: unset/empty returns @p def;
 * garbage, non-finite, or non-positive values warn (once per process
 * effectively — memoize at the call site) naming @p def_str as the
 * fallback and return @p def.
 */
double positiveFloatOr(Var v, double def, const char *def_str);

/** String value, or @p def when unset or empty. */
std::string stringOr(Var v, const char *def);

/** One acceptable word of an enum knob and the value it maps to. */
struct EnumName
{
    const char *name;
    int value;
};

/**
 * Word-list enum: unset/empty returns @p def; an exact match on one
 * of @p names returns its value; anything else warns once (keyed per
 * variable) listing the acceptable words and returns @p def. By
 * convention names[0] is the default's word.
 */
int enumOr(Var v, const EnumName *names, std::size_t count, int def);

/**
 * Pure parse cores behind the getters above: same validation and
 * diagnostics, but applied to @p value instead of the environment,
 * so tests can exercise boundary and garbage inputs without
 * touching process state.
 */
bool parseBool(Var v, const char *value, bool def,
               const char *off_suffix = "");
std::uint64_t parseUint(Var v, const char *value, std::uint64_t def,
                        std::uint64_t lo, std::uint64_t hi,
                        const char *suffix = "");
double parsePositiveFloat(Var v, const char *value, double def,
                          const char *def_str);
int parseEnum(Var v, const char *value, const EnumName *names,
              std::size_t count, int def);

/**
 * Total raw() lookups so far in this process. Environment reads are
 * a startup activity: hot components memoize their knobs, and
 * bench/perf_kernel asserts this counter does not move inside the
 * measured simulation regions.
 */
std::uint64_t lookupCount();

} // namespace desc::env

#endif // DESC_COMMON_ENV_HH
