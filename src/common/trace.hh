/**
 * @file
 * Categorized, cycle-stamped diagnostic tracing (gem5 DPRINTF style).
 *
 * Trace points are grouped into channels; the DESC_TRACE environment
 * variable selects which channels are live at process startup, e.g.
 *
 *     DESC_TRACE=link,cache ./bench/fig16_scheme_energy
 *     DESC_TRACE=all        ./examples/waveforms
 *
 * Every line is `<cycle>: <channel>: <message>`, prefixed with the
 * firing thread's log context tag (see setThreadLogContext) so events
 * from parallel sweep workers stay attributable. Output goes to
 * stderr unless DESC_TRACE_FILE names a file.
 *
 * The DESC_TRACE_EVENT macro evaluates its message arguments only
 * when the channel is enabled; a disabled channel costs one global
 * load and one branch per trace point, so tracing can stay compiled
 * into the hot simulation paths (the fig16 harness measures no
 * slowdown with tracing disabled).
 */

#ifndef DESC_COMMON_TRACE_HH
#define DESC_COMMON_TRACE_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

#include "common/log.hh"

namespace desc::trace {

/** Trace categories, one bit each in the channel mask. */
enum class Channel : unsigned {
    Link,   //!< DESC wire protocol: transfers, waves, strobes
    Cache,  //!< L2 requests, bank transfers, evictions, recalls
    Dram,   //!< DDR3 scheduling: row hits/misses, completions
    Runner, //!< host-side experiment runner and run cache
};

constexpr unsigned kNumChannels = 4;

/** Lower-case channel name as used in DESC_TRACE and trace lines. */
const char *channelName(Channel c);

/**
 * Parse a DESC_TRACE-style spec ("link,cache", "all", "") into a
 * channel bitmask. Unknown names warn (once) and are ignored.
 */
std::uint32_t parseSpec(const char *spec);

namespace detail {

/**
 * Live channel bitmask; initialized from DESC_TRACE before main().
 * Atomic because sweep workers read it at every trace point while
 * tests (or a driver) may flip channels with setMask(); relaxed order
 * suffices — the mask carries no data dependency, and on the targets
 * we care about a relaxed load costs the same as a plain one.
 */
extern std::atomic<std::uint32_t> mask;

} // namespace detail

/** True when @p c is selected. One load + one branch. */
inline bool
enabled(Channel c)
{
    return (detail::mask.load(std::memory_order_relaxed)
            >> unsigned(c)) & 1u;
}

/** Replace the channel mask at runtime (tests / programmatic use). */
void setMask(std::uint32_t mask);

/** The current channel mask. */
std::uint32_t mask();

/**
 * Redirect trace output. Pass nullptr to return to the default
 * (DESC_TRACE_FILE if set, else stderr). The caller keeps ownership
 * of the stream.
 */
void setStream(std::FILE *out);

/** Emit one cycle-stamped line on channel @p c (assumes enabled()). */
void emit(Channel c, std::uint64_t cycle, const std::string &msg);

/** Emit a host-side (un-cycled) line on channel @p c. */
void emitHost(Channel c, const std::string &msg);

} // namespace desc::trace

/** Cycle-stamped trace point; args are evaluated only when live. */
#define DESC_TRACE_EVENT(chan, cycle, ...)                                \
    do {                                                                  \
        if (::desc::trace::enabled(::desc::trace::Channel::chan)) {       \
            ::desc::trace::emit(::desc::trace::Channel::chan, (cycle),    \
                                ::desc::detail::concat(__VA_ARGS__));     \
        }                                                                 \
    } while (0)

/** Host-side trace point (no simulated cycle). */
#define DESC_TRACE_HOST(chan, ...)                                        \
    do {                                                                  \
        if (::desc::trace::enabled(::desc::trace::Channel::chan)) {       \
            ::desc::trace::emitHost(::desc::trace::Channel::chan,         \
                                    ::desc::detail::concat(__VA_ARGS__)); \
        }                                                                 \
    } while (0)

#endif // DESC_COMMON_TRACE_HH
