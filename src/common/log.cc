#include "common/log.hh"

#include <cstdio>
#include <cstdlib>
#include <unordered_set>

namespace desc {

namespace {

thread_local std::string t_context;

/** "msg" or "[ctx] msg" when a thread context tag is set. */
std::string
contextualize(const std::string &msg)
{
    if (t_context.empty())
        return msg;
    return "[" + t_context + "] " + msg;
}

} // namespace

std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

void
setThreadLogContext(const std::string &ctx)
{
    t_context = ctx;
}

const std::string &
threadLogContext()
{
    return t_context;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n",
                 contextualize(msg).c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n",
                 contextualize(msg).c_str(), file, line);
    std::exit(1);
}

void
warn(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "warn: %s\n", contextualize(msg).c_str());
}

void
warnOnce(const std::string &key, const std::string &msg)
{
    {
        static std::unordered_set<std::string> fired;
        std::lock_guard<std::mutex> lock(logMutex());
        if (!fired.insert(key).second)
            return;
    }
    warn(msg);
}

void
inform(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "info: %s\n", contextualize(msg).c_str());
}

} // namespace desc
