#include "common/log.hh"

#include <cstdio>
#include <cstdlib>

namespace desc {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace desc
