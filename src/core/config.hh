/**
 * @file
 * Configuration shared by the DESC transmitter, receiver, and the
 * behavioral block-level model.
 */

#ifndef DESC_CORE_CONFIG_HH
#define DESC_CORE_CONFIG_HH

#include "common/contract.hh"
#include "common/types.hh"
#include "common/log.hh"

namespace desc::core {

/** Value-skipping flavor (Section 3.3 of the paper). */
enum class SkipMode { None, Zero, LastValue, Adaptive };

const char *skipModeName(SkipMode mode);

/** Parameters of one DESC link (one direction of a bank port). */
struct DescConfig
{
    /** Physical data wires (paper's best design point: 128). */
    unsigned bus_wires = 128;

    /** Bits per chunk (paper's best design point: 4). */
    unsigned chunk_bits = 4;

    /** Bits per transferred block (512 throughout the paper). */
    unsigned block_bits = kBlockBits;

    SkipMode skip = SkipMode::Zero;

    /** Chunks per block. */
    unsigned
    numChunks() const
    {
        return block_bits / chunk_bits;
    }

    /** Wires actually used (never more than one per chunk). */
    unsigned
    activeWires() const
    {
        return bus_wires < numChunks() ? bus_wires : numChunks();
    }

    /** Sequential waves of one-chunk-per-wire (Figure 4b). */
    unsigned
    numWaves() const
    {
        return numChunks() / activeWires();
    }

    /** Largest representable chunk value. */
    std::uint64_t
    maxValue() const
    {
        return (std::uint64_t{1} << chunk_bits) - 1;
    }

    void
    validate() const
    {
        DESC_ASSERT(chunk_bits >= 1 && chunk_bits <= 8,
                    "chunk size must be 1..8 bits: ", chunk_bits);
        DESC_ASSERT(block_bits % chunk_bits == 0,
                    "block bits not divisible by chunk bits");
        DESC_ASSERT(numChunks() % activeWires() == 0,
                    "chunks (", numChunks(), ") not divisible by wires (",
                    activeWires(), ")");
    }
};

} // namespace desc::core

#endif // DESC_CORE_CONFIG_HH
