/**
 * @file
 * Cycle-accurate DESC receiver (Sections 3.1, 3.2.2, 3.3).
 *
 * The receiver samples the wire bundle once per cycle through a
 * word-wide toggle-detector bank and recovers chunk values from the
 * elapsed cycle counts. Within a cycle, data strobes are processed
 * before the reset/skip strobe, so a wave-closing pulse that is
 * concurrent with the wave's last data strobe is interpreted
 * correctly; a reset/skip pulse fills every still-silent wire of the
 * open wave with its skip value (Figure 11b) and opens the next wave.
 *
 * The receiver stays a true per-cycle FSM — fault hooks may mutate
 * any wire at any cycle, so nothing can be precomputed — but each
 * cycle's work is SWAR (DESIGN.md §15): one plane XOR finds every
 * toggled wire and a count-trailing-zeros loop visits only those, in
 * ascending wire order just like the old per-wire scan.
 */

#ifndef DESC_CORE_RECEIVER_HH
#define DESC_CORE_RECEIVER_HH

#include <vector>

#include "common/bitvec.hh"
#include "common/contract.hh"
#include "core/config.hh"
#include "core/adaptive.hh"
#include "core/fastforward.hh"
#include "core/toggle.hh"
#include "core/wires.hh"

namespace desc::core {

class DescReceiver
{
  public:
    explicit DescReceiver(const DescConfig &cfg);

    /** Sample the wire levels of one clock cycle. */
    void observe(const WireBundle &wires);

    /**
     * Accept @p block in closed form (link fast path): leave the
     * receiver in exactly the state observing the whole transfer would
     * have produced. @p final_levels are the transmitter's post-block
     * wire levels (the detectors' new delayed copies) and @p plan the
     * summary the transmitter computed. @pre !blockReady().
     */
    void fastForwardBlock(const BitVec &block,
                          const WireBundle &final_levels,
                          const FastForwardPlan &plan);

    /** True once a complete block has been recovered. */
    bool blockReady() const { return _ready; }

    /** Take the recovered block; clears blockReady(). */
    BitVec takeBlock();

    /**
     * Drop the recovered block without materializing it; clears
     * blockReady() just like takeBlock().
     */
    void
    discardBlock()
    {
        DESC_ASSERT(_ready, "discardBlock with no block ready");
        _ready = false;
    }

    /** The receiver's last-value skip table (mirrors the TX). */
    const std::vector<std::uint8_t> &lastValues() const { return _last; }

    /** The frequent-value tracker driving adaptive skipping. */
    const AdaptiveTracker &adaptive() const { return _adaptive; }

    void reset();

  private:
    std::uint8_t skipValueFor(unsigned wire) const;
    void openWave();
    void finalizeWave();

    DescConfig _cfg;

    /** Lifetime observed-cycle count (trace timestamps only). */
    std::uint64_t _ticks = 0;

    ToggleDetectorBank _data_bank;
    ToggleDetector _reset_td;
    ToggleDetector _sync_td;

    /** Per-cycle toggle plane (detector-bank output scratch). */
    WirePlane _toggles;

    std::vector<std::uint8_t> _chunks;
    std::vector<std::uint8_t> _last;
    AdaptiveTracker _adaptive;
    bool _ready = false;

    // Basic (no-skip) mode: a wire's elapsed count is the block-local
    // time minus its last strobe time (both reinitialized by the
    // opening reset pulse).
    bool _in_block = false;
    unsigned _t_in_block = 0;
    std::vector<unsigned> _last_strobe;
    std::vector<unsigned> _next_slot;
    unsigned _received = 0;

    // Wave machine (skip modes).
    bool _wave_open = false;
    unsigned _wave = 0;
    unsigned _elapsed = 0;
    WirePlane _got;
    std::vector<std::uint8_t> _skipv;
    unsigned _wave_got = 0;
};

} // namespace desc::core

#endif // DESC_CORE_RECEIVER_HH
