/**
 * @file
 * Chunking of cache blocks and chunk/wire assignment (Figure 4).
 *
 * A block is partitioned into fixed-size contiguous chunks; chunk i is
 * assigned to wire (i mod W) at queue slot (i div W), so with fewer
 * wires than chunks each wire transmits its queue in successive waves.
 */

#ifndef DESC_CORE_CHUNK_HH
#define DESC_CORE_CHUNK_HH

#include <cstdint>
#include <vector>

#include "common/bitvec.hh"
#include "common/stats.hh"

namespace desc::core {

/** Chunk values of @p block, lowest-order chunk first. */
std::vector<std::uint8_t> splitChunks(const BitVec &block,
                                      unsigned chunk_bits);

/** Reassemble a block from chunk values. */
BitVec joinChunks(const std::vector<std::uint8_t> &chunks,
                  unsigned chunk_bits, unsigned block_bits);

/** Wire transmitting chunk @p i on a bus with @p wires active wires. */
inline unsigned
chunkWire(unsigned i, unsigned wires)
{
    return i % wires;
}

/** Queue slot (wave) of chunk @p i. */
inline unsigned
chunkSlot(unsigned i, unsigned wires)
{
    return i / wires;
}

/**
 * Chunk-value statistics accumulated over a stream of blocks: the
 * value histogram of Figure 12 and the consecutive-chunk match
 * fraction (per wire) of Figure 13.
 */
class ChunkStats
{
  public:
    ChunkStats(unsigned chunk_bits, unsigned wires);

    /** Account one transferred block. */
    void observe(const BitVec &block);

    /** Fraction of chunks with value @p v (Figure 12). */
    double valueFraction(std::uint8_t v) const;

    /** Fraction of zero chunks. */
    double zeroFraction() const { return valueFraction(0); }

    /**
     * Fraction of chunks equal to the previous chunk transmitted on
     * the same wire (Figure 13).
     */
    double lastValueMatchFraction() const;

    std::uint64_t totalChunks() const { return _hist.total(); }

    const Histogram &histogram() const { return _hist; }

    unsigned chunkBits() const { return _chunk_bits; }
    unsigned wires() const { return _wires; }
    std::uint64_t matches() const { return _matches; }
    std::uint64_t matchCandidates() const { return _match_candidates; }

    /**
     * Reinstate previously harvested statistics (run-cache reload).
     * The per-wire last-value state is not part of the harvest, so a
     * restored object reports correct aggregates but must not
     * observe() further blocks.
     */
    void
    restore(Histogram hist, std::uint64_t matches,
            std::uint64_t match_candidates)
    {
        _hist = std::move(hist);
        _matches = matches;
        _match_candidates = match_candidates;
    }

  private:
    void observeScalar(const BitVec &block, unsigned n);
    void observeBatched(const BitVec &block, unsigned n);
    bool batchedObservable(unsigned n) const;
    void packPrevWords();
    void unpackPrevWords();

    unsigned _chunk_bits;
    unsigned _wires;
    bool _batched; //!< word-at-a-time pass (latched encoder mode)
    Histogram _hist;
    std::vector<std::uint8_t> _last;
    std::vector<bool> _last_valid;
    std::uint64_t _matches = 0;
    std::uint64_t _match_candidates = 0;

    /**
     * Batched-pass state: the previous wave packed at chunk_bits per
     * wire, and whether every wire has transmitted at least once (a
     * complete block primes all wires, so one flag replaces the
     * per-wire valid bits). Exactly one of the byte/word wire-state
     * representations is fresh at a time; the observe paths convert
     * on entry when the other path ran last.
     */
    std::vector<std::uint64_t> _prev_words;
    bool _primed = false;
    bool _words_fresh = false;
};

} // namespace desc::core

#endif // DESC_CORE_CHUNK_HH
