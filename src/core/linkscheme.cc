#include "core/linkscheme.hh"

#include "common/contract.hh"

namespace desc::core {

LinkDescScheme::LinkDescScheme(const DescConfig &cfg)
    : _cfg(cfg), _link(cfg)
{
    _cfg.validate();
}

const char *
LinkDescScheme::name() const
{
    // Same display names as DescScheme: reports must not depend on
    // whether a bank is behaviorally modeled or link-backed.
    switch (_cfg.skip) {
      case SkipMode::None:
        return "Basic DESC";
      case SkipMode::Zero:
        return "Zero Skipped DESC";
      case SkipMode::LastValue:
        return "Last Value Skipped DESC";
      case SkipMode::Adaptive:
        return "Adaptive Skipped DESC";
    }
    DESC_PANIC("bad skip mode");
}

} // namespace desc::core
