/**
 * @file
 * Block-level behavioral model of a DESC link.
 *
 * Computes exactly the cycle count and transition counts the
 * cycle-accurate DescTransmitter/DescReceiver pair produces (the test
 * suite asserts bit-exact agreement over random block streams), but in
 * one pass over the chunks — this is what the multicore simulator uses
 * on its fast path. Implements the TransferScheme interface so the
 * cache model can swap it against the baseline encodings.
 */

#ifndef DESC_CORE_DESCSCHEME_HH
#define DESC_CORE_DESCSCHEME_HH

#include <vector>

#include "core/adaptive.hh"
#include "core/config.hh"
#include "encoding/scheme.hh"

namespace desc::core {

class DescScheme : public encoding::TransferScheme
{
  public:
    explicit DescScheme(const DescConfig &cfg);

    encoding::TransferResult transfer(const BitVec &block) override;
    unsigned dataWires() const override { return _cfg.activeWires(); }
    unsigned controlWires() const override { return 2; }
    const char *name() const override;
    void reset() override;

    const DescConfig &config() const { return _cfg; }

    /**
     * Select the scalar reference loop or the SWAR batched pass
     * (latched from defaultEncoderMode() at construction). Switching
     * mid-stream is safe: the wire state is converted between the
     * byte-per-wire and packed-word representations.
     */
    void setEncoderMode(encoding::EncoderMode mode);

    /** True when transfer() takes the word-at-a-time batched pass. */
    bool usesBatchedPath() const
    {
        return _mode != encoding::EncoderMode::Scalar && batchedSupported();
    }

  private:
    bool batchedSupported() const;
    encoding::TransferResult transferScalar(const BitVec &block);
    encoding::TransferResult transferBatched(const BitVec &block);
    void packLastWords();
    void unpackLastWords();

    DescConfig _cfg;
    encoding::EncoderMode _mode;
    std::vector<std::uint8_t> _last;
    AdaptiveTracker _adaptive;
    std::vector<Cycle> _wire_time; //!< reused basic-mode scratch

    /**
     * Packed mirror of _last for the batched LastValue pass: wave
     * layout, chunk i of the final wave at bit i*chunk_bits. Only one
     * representation is kept fresh at a time; the mode setter and the
     * path entry points convert on demand (None/Zero modes never read
     * the previous values, so staleness there is unobservable).
     */
    std::vector<std::uint64_t> _last_words;
    bool _last_words_fresh = true;
    bool _last_bytes_fresh = true;
};

} // namespace desc::core

#endif // DESC_CORE_DESCSCHEME_HH
