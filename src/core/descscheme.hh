/**
 * @file
 * Block-level behavioral model of a DESC link.
 *
 * Computes exactly the cycle count and transition counts the
 * cycle-accurate DescTransmitter/DescReceiver pair produces (the test
 * suite asserts bit-exact agreement over random block streams), but in
 * one pass over the chunks — this is what the multicore simulator uses
 * on its fast path. Implements the TransferScheme interface so the
 * cache model can swap it against the baseline encodings.
 */

#ifndef DESC_CORE_DESCSCHEME_HH
#define DESC_CORE_DESCSCHEME_HH

#include <vector>

#include "core/adaptive.hh"
#include "core/config.hh"
#include "encoding/scheme.hh"

namespace desc::core {

class DescScheme : public encoding::TransferScheme
{
  public:
    explicit DescScheme(const DescConfig &cfg);

    encoding::TransferResult transfer(const BitVec &block) override;
    unsigned dataWires() const override { return _cfg.activeWires(); }
    unsigned controlWires() const override { return 2; }
    const char *name() const override;
    void reset() override;

    const DescConfig &config() const { return _cfg; }

  private:
    DescConfig _cfg;
    std::vector<std::uint8_t> _last;
    AdaptiveTracker _adaptive;
    std::vector<Cycle> _wire_time; //!< reused basic-mode scratch
};

} // namespace desc::core

#endif // DESC_CORE_DESCSCHEME_HH
