#include "core/factory.hh"

#include "common/log.hh"
#include "core/descscheme.hh"
#include "core/linkscheme.hh"
#include "encoding/binary.hh"
#include "encoding/businvert.hh"
#include "encoding/dzc.hh"

namespace desc::core {

using encoding::SchemeConfig;
using encoding::SchemeKind;
using encoding::TransferScheme;

std::unique_ptr<TransferScheme>
makeScheme(SchemeKind kind, const SchemeConfig &cfg)
{
    auto desc_cfg = [&](SkipMode skip) {
        DescConfig c;
        c.bus_wires = cfg.bus_wires;
        c.chunk_bits = cfg.chunk_bits;
        c.block_bits = cfg.block_bits;
        c.skip = skip;
        return c;
    };

    switch (kind) {
      case SchemeKind::Binary:
        return std::make_unique<encoding::BinaryScheme>(cfg);
      case SchemeKind::DynamicZeroCompression:
        return std::make_unique<encoding::DynamicZeroScheme>(cfg);
      case SchemeKind::BusInvert:
        return std::make_unique<encoding::BusInvertScheme>(
            cfg, encoding::BusInvertScheme::Mode::Plain);
      case SchemeKind::ZeroSkipBusInvert:
        return std::make_unique<encoding::BusInvertScheme>(
            cfg, encoding::BusInvertScheme::Mode::ZeroSkipSparse);
      case SchemeKind::EncodedZeroSkipBusInvert:
        return std::make_unique<encoding::BusInvertScheme>(
            cfg, encoding::BusInvertScheme::Mode::ZeroSkipEncoded);
      case SchemeKind::DescBasic:
        return std::make_unique<DescScheme>(desc_cfg(SkipMode::None));
      case SchemeKind::DescZeroSkip:
        return std::make_unique<DescScheme>(desc_cfg(SkipMode::Zero));
      case SchemeKind::DescLastValueSkip:
        return std::make_unique<DescScheme>(desc_cfg(SkipMode::LastValue));
    }
    DESC_PANIC("bad scheme kind");
}

std::unique_ptr<TransferScheme>
makeLinkBackedScheme(SchemeKind kind, const SchemeConfig &cfg)
{
    auto desc_cfg = [&](SkipMode skip) {
        DescConfig c;
        c.bus_wires = cfg.bus_wires;
        c.chunk_bits = cfg.chunk_bits;
        c.block_bits = cfg.block_bits;
        c.skip = skip;
        return c;
    };

    switch (kind) {
      case SchemeKind::DescBasic:
        return std::make_unique<LinkDescScheme>(desc_cfg(SkipMode::None));
      case SchemeKind::DescZeroSkip:
        return std::make_unique<LinkDescScheme>(desc_cfg(SkipMode::Zero));
      case SchemeKind::DescLastValueSkip:
        return std::make_unique<LinkDescScheme>(
            desc_cfg(SkipMode::LastValue));
      default:
        // Baselines have no cycle-accurate link model.
        return makeScheme(kind, cfg);
    }
}

const SchemeKind *
allSchemeKinds()
{
    static const SchemeKind kinds[encoding::kNumSchemes] = {
        SchemeKind::Binary,
        SchemeKind::DynamicZeroCompression,
        SchemeKind::BusInvert,
        SchemeKind::ZeroSkipBusInvert,
        SchemeKind::EncodedZeroSkipBusInvert,
        SchemeKind::DescBasic,
        SchemeKind::DescZeroSkip,
        SchemeKind::DescLastValueSkip,
    };
    return kinds;
}

} // namespace desc::core
