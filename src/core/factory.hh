/**
 * @file
 * Factory for all data-transfer schemes evaluated in the paper.
 */

#ifndef DESC_CORE_FACTORY_HH
#define DESC_CORE_FACTORY_HH

#include <memory>

#include "encoding/scheme.hh"

namespace desc::core {

/**
 * Build a scheme of the given kind. DESC kinds consume cfg.bus_wires,
 * cfg.block_bits and cfg.chunk_bits; baseline kinds consume
 * cfg.bus_wires, cfg.block_bits and cfg.segment_bits.
 */
std::unique_ptr<encoding::TransferScheme>
makeScheme(encoding::SchemeKind kind, const encoding::SchemeConfig &cfg);

/**
 * Like makeScheme, but DESC kinds are backed by a full cycle-accurate
 * DescLink (LinkDescScheme) instead of the behavioral model. Baseline
 * kinds have no link model and fall back to makeScheme. Reported
 * results are identical either way; the link backing adds the option
 * of per-cycle hooks (VCD, fault injection).
 */
std::unique_ptr<encoding::TransferScheme>
makeLinkBackedScheme(encoding::SchemeKind kind,
                     const encoding::SchemeConfig &cfg);

/** All scheme kinds in the order of the paper's Figure 16 legend. */
const encoding::SchemeKind *allSchemeKinds();

} // namespace desc::core

#endif // DESC_CORE_FACTORY_HH
