/**
 * @file
 * Runtime frequent-value tracking for adaptive skipping.
 *
 * Section 3.3 of the paper: "We also considered adaptive techniques
 * for detecting and encoding frequent non-zero chunks at runtime;
 * however, the attainable delay and energy improvements are not
 * appreciable" because the non-zero chunk values are distributed
 * nearly uniformly (Figure 12). This tracker implements that
 * considered-and-rejected design so the claim can be reproduced
 * (bench/ablation_adaptive_skip): each wire's skip value is the most
 * frequent value recently transferred on it. Transmitter and receiver
 * run identical updates on identical histories, so the adaptive skip
 * value needs no extra communication.
 */

#ifndef DESC_CORE_ADAPTIVE_HH
#define DESC_CORE_ADAPTIVE_HH

#include <cstdint>
#include <vector>

#include "common/log.hh"

namespace desc::core {

class AdaptiveTracker
{
  public:
    AdaptiveTracker(unsigned wires, unsigned chunk_bits)
        : _values(1u << chunk_bits),
          _counts(std::size_t(wires) * _values, 0),
          _best(wires, 0)
    {
    }

    /** Current skip value for @p wire (most frequent seen). */
    std::uint8_t best(unsigned wire) const { return _best[wire]; }

    /** Account one chunk transferred on @p wire. */
    void
    update(unsigned wire, std::uint8_t value)
    {
        std::uint8_t *row = &_counts[std::size_t(wire) * _values];
        if (++row[value] == kSaturation) {
            // Periodic decay keeps the estimate adaptive.
            for (unsigned v = 0; v < _values; v++)
                row[v] = std::uint8_t(row[v] >> 1);
        }
        // Lower value wins ties so zero stays preferred initially.
        if (row[value] > row[_best[wire]]
            || (row[value] == row[_best[wire]]
                && value < _best[wire])) {
            _best[wire] = value;
        }
    }

    void
    reset()
    {
        std::fill(_counts.begin(), _counts.end(), 0);
        std::fill(_best.begin(), _best.end(), 0);
    }

    /** Full-state equality (fast-path differential tests). */
    bool
    operator==(const AdaptiveTracker &o) const
    {
        return _values == o._values && _counts == o._counts
            && _best == o._best;
    }

    bool operator!=(const AdaptiveTracker &o) const { return !(*this == o); }

  private:
    static constexpr std::uint8_t kSaturation = 255;

    unsigned _values;
    std::vector<std::uint8_t> _counts;
    std::vector<std::uint8_t> _best;
};

} // namespace desc::core

#endif // DESC_CORE_ADAPTIVE_HH
