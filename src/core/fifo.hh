/**
 * @file
 * The per-wire chunk FIFO of the DESC transmitter (Figure 4).
 */

#ifndef DESC_CORE_FIFO_HH
#define DESC_CORE_FIFO_HH

#include <deque>

#include "common/contract.hh"
#include "common/log.hh"

namespace desc::core {

template <typename T>
class Fifo
{
  public:
    void push(const T &value) { _q.push_back(value); }

    T
    pop()
    {
        DESC_ASSERT(!_q.empty(), "pop from empty FIFO");
        T v = _q.front();
        _q.pop_front();
        return v;
    }

    const T &
    front() const
    {
        DESC_ASSERT(!_q.empty(), "front of empty FIFO");
        return _q.front();
    }

    bool empty() const { return _q.empty(); }
    std::size_t size() const { return _q.size(); }
    void clear() { _q.clear(); }

  private:
    std::deque<T> _q;
};

} // namespace desc::core

#endif // DESC_CORE_FIFO_HH
