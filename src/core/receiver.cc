#include "core/receiver.hh"

#include <algorithm>
#include <bit>

#include "common/contract.hh"
#include "common/trace.hh"
#include "core/chunk.hh"
#include "core/timing.hh"

namespace desc::core {

DescReceiver::DescReceiver(const DescConfig &cfg)
    : _cfg(cfg), _data_bank(cfg.activeWires()),
      _toggles(cfg.activeWires()),
      _chunks(cfg.numChunks(), 0),
      _last(cfg.activeWires(), 0),
      _adaptive(cfg.activeWires(), cfg.chunk_bits),
      _last_strobe(cfg.activeWires(), 0),
      _next_slot(cfg.activeWires(), 0),
      _got(cfg.activeWires()),
      _skipv(cfg.activeWires(), 0)
{
    _cfg.validate();
}

std::uint8_t
DescReceiver::skipValueFor(unsigned wire) const
{
    switch (_cfg.skip) {
      case SkipMode::Zero:
        return 0;
      case SkipMode::Adaptive:
        return _adaptive.best(wire);
      default:
        return _last[wire];
    }
}

void
DescReceiver::openWave()
{
    _wave_open = true;
    _elapsed = 0;
    _wave_got = 0;
    _got.clear();
    unsigned wires = _cfg.activeWires();
    for (unsigned w = 0; w < wires; w++)
        _skipv[w] = skipValueFor(w);
}

void
DescReceiver::finalizeWave()
{
    unsigned wires = _cfg.activeWires();
    for (unsigned w = 0; w < wires; w++) {
        unsigned idx = _wave * wires + w;
        if (!_got[w])
            _chunks[idx] = _skipv[w];
        _last[w] = _chunks[idx];
        if (_cfg.skip == SkipMode::Adaptive)
            _adaptive.update(w, _chunks[idx]);
    }
    _wave_open = false;
    _wave++;
    DESC_TRACE_EVENT(Link, _ticks, "rx: wave ", _wave - 1,
                     " finalized (", _wave_got, "/", wires,
                     " strobed, rest skipped)");
    if (_wave == _cfg.numWaves()) {
        _ready = true;
        DESC_TRACE_EVENT(Link, _ticks, "rx: block ready (", _wave,
                         " waves)");
    }
}

void
DescReceiver::observe(const WireBundle &wires_in)
{
    unsigned wires = _cfg.activeWires();
    DESC_ASSERT(wires_in.data.size() == wires, "wire count mismatch");
    _ticks++;

    _sync_td.sample(wires_in.sync);

    // Sample every detector first so levels stay coherent even on
    // cycles we otherwise ignore: one plane XOR yields the toggle
    // mask for the whole bus.
    _data_bank.sample(wires_in.data, _toggles);
    bool reset_toggled = _reset_td.sample(wires_in.reset_skip);

    const unsigned nwords = _toggles.numWords();

    if (_cfg.skip == SkipMode::None) {
        if (reset_toggled) {
            _in_block = true;
            _received = 0;
            _t_in_block = 0;
            std::fill(_last_strobe.begin(), _last_strobe.end(), 0u);
            std::fill(_next_slot.begin(), _next_slot.end(), 0u);
            return;
        }
        if (!_in_block)
            return;
        _t_in_block++;
        for (unsigned k = 0; k < nwords; k++) {
            std::uint64_t m = _toggles.word(k);
            while (m) {
                unsigned w = k * 64 + unsigned(std::countr_zero(m));
                m &= m - 1;
                std::uint64_t v = decodeCycles(
                    _t_in_block - _last_strobe[w], false, 0);
                DESC_ASSERT(v <= _cfg.maxValue(),
                            "decoded value out of range");
                DESC_ASSERT(_next_slot[w] < _cfg.numWaves(),
                            "more strobes than chunks on wire ", w);
                _chunks[_next_slot[w] * wires + w] = std::uint8_t(v);
                _last[w] = std::uint8_t(v);
                _next_slot[w]++;
                _last_strobe[w] = _t_in_block;
                _received++;
            }
        }
        if (_received == _cfg.numChunks()) {
            _in_block = false;
            _ready = true;
            DESC_TRACE_EVENT(Link, _ticks, "rx: block ready (",
                             _received, " chunks, basic mode)");
        }
        return;
    }

    // Value-skipped protocol: waves of one chunk per wire.
    if (_wave_open) {
        _elapsed++;
        for (unsigned k = 0; k < nwords; k++) {
            std::uint64_t m = _toggles.word(k);
            while (m) {
                unsigned w = k * 64 + unsigned(std::countr_zero(m));
                m &= m - 1;
                DESC_ASSERT(!_got[w],
                            "second strobe within a wave on wire ", w);
                std::uint64_t v = decodeCycles(_elapsed, true, _skipv[w]);
                DESC_ASSERT(v <= _cfg.maxValue(),
                            "decoded value out of range");
                _chunks[_wave * wires + w] = std::uint8_t(v);
                _got[w] = true;
                _wave_got++;
            }
        }
        // The final wave sends no closing pulse when nothing was
        // skipped; it completes with its last data strobe.
        if (_wave + 1 == _cfg.numWaves() && _wave_got == wires)
            finalizeWave();
    }

    if (reset_toggled) {
        if (_wave_open) {
            // Closing pulse: silent wires take their skip value; the
            // same pulse opens the next wave if one remains.
            finalizeWave();
            if (_wave < _cfg.numWaves())
                openWave();
        } else {
            // Opening pulse of a new block.
            DESC_ASSERT(!_ready, "new block before previous was taken");
            _wave = 0;
            openWave();
        }
    }
}

void
DescReceiver::fastForwardBlock(const BitVec &block,
                               const WireBundle &final_levels,
                               const FastForwardPlan &plan)
{
    DESC_ASSERT(!_ready, "fastForwardBlock before previous block was taken");
    DESC_ASSERT(block.width() == _cfg.block_bits, "block width mismatch");

    const unsigned wires = _cfg.activeWires();
    const unsigned waves = _cfg.numWaves();

    _ticks += plan.result.cycles;

    // The detectors' delayed copies end at the transmitter's final
    // wire levels, exactly as if each cycle had been sampled.
    _data_bank.prime(final_levels.data);
    _reset_td.prime(final_levels.reset_skip);
    _sync_td.prime(final_levels.sync);

    if (_cfg.skip == SkipMode::Adaptive) {
        // The counters fold in every chunk, so replay the block in
        // finalizeWave order (wave by wave, wire by wire).
        BitCursor cur(block);
        for (unsigned g = 0; g < waves; g++) {
            for (unsigned w = 0; w < wires; w++) {
                std::uint8_t v = std::uint8_t(cur.next(_cfg.chunk_bits));
                _last[w] = v;
                _adaptive.update(w, v);
            }
        }
    } else {
        std::copy(plan.final_vals.begin(), plan.final_vals.end(),
                  _last.begin());
    }

    if (_cfg.skip == SkipMode::None) {
        // _t_in_block and _last_strobe stay wherever they are: the
        // opening pulse of the next ticked block reinitializes them.
        _in_block = false;
        _received = _cfg.numChunks();
        std::fill(_next_slot.begin(), _next_slot.end(), waves);
    } else {
        _wave_open = false;
        _wave = waves;
        _elapsed = plan.final_window;
        for (unsigned w = 0; w < wires; w++) {
            _got[w] = plan.final_got[w] != 0;
            _skipv[w] = plan.final_skipv[w];
        }
        _wave_got = plan.final_got_count;
    }

    _ready = true;

    DESC_TRACE_EVENT(Link, _ticks, "rx: block fast-forwarded (", waves,
                     " waves)");
}

BitVec
DescReceiver::takeBlock()
{
    DESC_ASSERT(_ready, "takeBlock with no block ready");
    _ready = false;
    return joinChunks(_chunks, _cfg.chunk_bits, _cfg.block_bits);
}

void
DescReceiver::reset()
{
    _data_bank.reset();
    _reset_td.reset();
    _sync_td.reset();
    std::fill(_chunks.begin(), _chunks.end(), 0);
    std::fill(_last.begin(), _last.end(), 0);
    _ready = false;
    _in_block = false;
    _t_in_block = 0;
    std::fill(_last_strobe.begin(), _last_strobe.end(), 0u);
    std::fill(_next_slot.begin(), _next_slot.end(), 0u);
    _received = 0;
    _wave_open = false;
    _wave = 0;
    _elapsed = 0;
    _got.clear();
    std::fill(_skipv.begin(), _skipv.end(), 0);
    _wave_got = 0;
    _adaptive.reset();
}

} // namespace desc::core
