#include "core/receiver.hh"

#include <algorithm>

#include "common/contract.hh"
#include "common/trace.hh"
#include "core/chunk.hh"
#include "core/timing.hh"

namespace desc::core {

DescReceiver::DescReceiver(const DescConfig &cfg)
    : _cfg(cfg), _data_td(cfg.activeWires()),
      _chunks(cfg.numChunks(), 0),
      _last(cfg.activeWires(), 0),
      _adaptive(cfg.activeWires(), cfg.chunk_bits),
      _elapsed_wire(cfg.activeWires(), 0),
      _next_slot(cfg.activeWires(), 0),
      _got(cfg.activeWires(), false),
      _skipv(cfg.activeWires(), 0)
{
    _cfg.validate();
}

std::uint8_t
DescReceiver::skipValueFor(unsigned wire) const
{
    switch (_cfg.skip) {
      case SkipMode::Zero:
        return 0;
      case SkipMode::Adaptive:
        return _adaptive.best(wire);
      default:
        return _last[wire];
    }
}

void
DescReceiver::openWave()
{
    _wave_open = true;
    _elapsed = 0;
    _wave_got = 0;
    unsigned wires = _cfg.activeWires();
    std::fill(_got.begin(), _got.begin() + wires, false);
    for (unsigned w = 0; w < wires; w++)
        _skipv[w] = skipValueFor(w);
}

void
DescReceiver::finalizeWave()
{
    unsigned wires = _cfg.activeWires();
    for (unsigned w = 0; w < wires; w++) {
        unsigned idx = _wave * wires + w;
        if (!_got[w])
            _chunks[idx] = _skipv[w];
        _last[w] = _chunks[idx];
        if (_cfg.skip == SkipMode::Adaptive)
            _adaptive.update(w, _chunks[idx]);
    }
    _wave_open = false;
    _wave++;
    DESC_TRACE_EVENT(Link, _ticks, "rx: wave ", _wave - 1,
                     " finalized (", _wave_got, "/", wires,
                     " strobed, rest skipped)");
    if (_wave == _cfg.numWaves()) {
        _ready = true;
        DESC_TRACE_EVENT(Link, _ticks, "rx: block ready (", _wave,
                         " waves)");
    }
}

void
DescReceiver::observe(const WireBundle &wires_in)
{
    unsigned wires = _cfg.activeWires();
    DESC_ASSERT(wires_in.data.size() == wires, "wire count mismatch");
    _ticks++;

    _sync_td.sample(wires_in.sync);

    // Sample every detector first so levels stay coherent even on
    // cycles we otherwise ignore.
    static thread_local std::vector<bool> toggles;
    toggles.assign(wires, false);
    for (unsigned w = 0; w < wires; w++)
        toggles[w] = _data_td[w].sample(wires_in.data[w]);
    bool reset_toggled = _reset_td.sample(wires_in.reset_skip);

    if (_cfg.skip == SkipMode::None) {
        if (reset_toggled) {
            _in_block = true;
            _received = 0;
            std::fill(_elapsed_wire.begin(), _elapsed_wire.end(), 0);
            std::fill(_next_slot.begin(), _next_slot.end(), 0);
            return;
        }
        if (!_in_block)
            return;
        for (unsigned w = 0; w < wires; w++) {
            _elapsed_wire[w]++;
            if (!toggles[w])
                continue;
            std::uint64_t v = decodeCycles(_elapsed_wire[w], false, 0);
            DESC_ASSERT(v <= _cfg.maxValue(), "decoded value out of range");
            DESC_ASSERT(_next_slot[w] < _cfg.numWaves(),
                        "more strobes than chunks on wire ", w);
            _chunks[_next_slot[w] * wires + w] = std::uint8_t(v);
            _last[w] = std::uint8_t(v);
            _next_slot[w]++;
            _elapsed_wire[w] = 0;
            _received++;
        }
        if (_received == _cfg.numChunks()) {
            _in_block = false;
            _ready = true;
            DESC_TRACE_EVENT(Link, _ticks, "rx: block ready (",
                             _received, " chunks, basic mode)");
        }
        return;
    }

    // Value-skipped protocol: waves of one chunk per wire.
    if (_wave_open) {
        _elapsed++;
        for (unsigned w = 0; w < wires; w++) {
            if (!toggles[w])
                continue;
            DESC_ASSERT(!_got[w], "second strobe within a wave on wire ", w);
            std::uint64_t v = decodeCycles(_elapsed, true, _skipv[w]);
            DESC_ASSERT(v <= _cfg.maxValue(), "decoded value out of range");
            _chunks[_wave * wires + w] = std::uint8_t(v);
            _got[w] = true;
            _wave_got++;
        }
        // The final wave sends no closing pulse when nothing was
        // skipped; it completes with its last data strobe.
        if (_wave + 1 == _cfg.numWaves() && _wave_got == wires)
            finalizeWave();
    }

    if (reset_toggled) {
        if (_wave_open) {
            // Closing pulse: silent wires take their skip value; the
            // same pulse opens the next wave if one remains.
            finalizeWave();
            if (_wave < _cfg.numWaves())
                openWave();
        } else {
            // Opening pulse of a new block.
            DESC_ASSERT(!_ready, "new block before previous was taken");
            _wave = 0;
            openWave();
        }
    }
}

void
DescReceiver::fastForwardBlock(const BitVec &block,
                               const WireBundle &final_levels,
                               const FastForwardPlan &plan)
{
    DESC_ASSERT(!_ready, "fastForwardBlock before previous block was taken");
    DESC_ASSERT(block.width() == _cfg.block_bits, "block width mismatch");

    const unsigned wires = _cfg.activeWires();
    const unsigned waves = _cfg.numWaves();

    _ticks += plan.result.cycles;

    // The detectors' delayed copies end at the transmitter's final
    // wire levels, exactly as if each cycle had been sampled.
    for (unsigned w = 0; w < wires; w++)
        _data_td[w].prime(final_levels.data[w]);
    _reset_td.prime(final_levels.reset_skip);
    _sync_td.prime(final_levels.sync);

    if (_cfg.skip == SkipMode::Adaptive) {
        // The counters fold in every chunk, so replay the block in
        // finalizeWave order (wave by wave, wire by wire).
        BitCursor cur(block);
        for (unsigned g = 0; g < waves; g++) {
            for (unsigned w = 0; w < wires; w++) {
                std::uint8_t v = std::uint8_t(cur.next(_cfg.chunk_bits));
                _last[w] = v;
                _adaptive.update(w, v);
            }
        }
    } else {
        std::copy(plan.final_vals.begin(), plan.final_vals.end(),
                  _last.begin());
    }

    if (_cfg.skip == SkipMode::None) {
        _in_block = false;
        _received = _cfg.numChunks();
        std::fill(_next_slot.begin(), _next_slot.end(), waves);
        std::copy(plan.final_elapsed.begin(), plan.final_elapsed.end(),
                  _elapsed_wire.begin());
    } else {
        _wave_open = false;
        _wave = waves;
        _elapsed = plan.final_window;
        for (unsigned w = 0; w < wires; w++) {
            _got[w] = plan.final_got[w] != 0;
            _skipv[w] = plan.final_skipv[w];
        }
        _wave_got = plan.final_got_count;
    }

    _ready = true;

    DESC_TRACE_EVENT(Link, _ticks, "rx: block fast-forwarded (", waves,
                     " waves)");
}

BitVec
DescReceiver::takeBlock()
{
    DESC_ASSERT(_ready, "takeBlock with no block ready");
    _ready = false;
    return joinChunks(_chunks, _cfg.chunk_bits, _cfg.block_bits);
}

void
DescReceiver::reset()
{
    for (auto &td : _data_td)
        td.reset();
    _reset_td.reset();
    _sync_td.reset();
    std::fill(_chunks.begin(), _chunks.end(), 0);
    std::fill(_last.begin(), _last.end(), 0);
    _ready = false;
    _in_block = false;
    std::fill(_elapsed_wire.begin(), _elapsed_wire.end(), 0);
    std::fill(_next_slot.begin(), _next_slot.end(), 0);
    _received = 0;
    _wave_open = false;
    _wave = 0;
    _elapsed = 0;
    std::fill(_got.begin(), _got.end(), false);
    std::fill(_skipv.begin(), _skipv.end(), 0);
    _wave_got = 0;
    _adaptive.reset();
}

} // namespace desc::core
