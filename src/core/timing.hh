/**
 * @file
 * The DESC time-value mapping shared by the transmitter, receiver,
 * and the behavioral model.
 *
 * A chunk of value v occupies chunkCycles(v) cycles of its wire: the
 * data strobe toggles that many cycles after the previous pulse
 * (Figure 5: value 2 takes 3 cycles, value 1 takes 2 cycles). With
 * value skipping, the skip value is excluded from the count list
 * (Section 3.3), which both removes its transition and narrows the
 * time window (Figure 10: values up to 5 need a 5-cycle window with
 * zero skipping instead of 6).
 */

#ifndef DESC_CORE_TIMING_HH
#define DESC_CORE_TIMING_HH

#include <cstdint>

#include "common/contract.hh"
#include "common/log.hh"

namespace desc::core {

/**
 * Cycles between the opening pulse (reset or previous data strobe)
 * and this chunk's data strobe.
 *
 * @param value       chunk value to transmit
 * @param skipping    whether value skipping is active on this link
 * @param skip_value  the skipped value (must differ from @p value)
 */
inline unsigned
chunkCycles(std::uint64_t value, bool skipping, std::uint64_t skip_value)
{
    if (!skipping)
        return unsigned(value) + 1;
    DESC_ASSERT(value != skip_value, "skipped value cannot be transmitted");
    return value < skip_value ? unsigned(value) + 1 : unsigned(value);
}

/** Inverse of chunkCycles: recover the value from the pulse delay. */
inline std::uint64_t
decodeCycles(unsigned elapsed, bool skipping, std::uint64_t skip_value)
{
    DESC_ASSERT(elapsed >= 1, "data strobe cannot precede the reset");
    if (!skipping)
        return elapsed - 1;
    return elapsed <= skip_value ? elapsed - 1 : elapsed;
}

} // namespace desc::core

#endif // DESC_CORE_TIMING_HH
