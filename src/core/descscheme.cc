#include "core/descscheme.hh"

#include "common/contract.hh"
#include "core/chunk.hh"
#include "core/timing.hh"

namespace desc::core {

DescScheme::DescScheme(const DescConfig &cfg)
    : _cfg(cfg), _last(cfg.activeWires(), 0),
      _adaptive(cfg.activeWires(), cfg.chunk_bits)
{
    _cfg.validate();
}

const char *
DescScheme::name() const
{
    switch (_cfg.skip) {
      case SkipMode::None:
        return "Basic DESC";
      case SkipMode::Zero:
        return "Zero Skipped DESC";
      case SkipMode::LastValue:
        return "Last Value Skipped DESC";
      case SkipMode::Adaptive:
        return "Adaptive Skipped DESC";
    }
    return "?";
}

encoding::TransferResult
DescScheme::transfer(const BitVec &block)
{
    DESC_ASSERT(block.width() == _cfg.block_bits, "block width mismatch");
    encoding::TransferResult result;

    const unsigned wires = _cfg.activeWires();
    const unsigned waves = _cfg.numWaves();
    const unsigned chunk_bits = _cfg.chunk_bits;

    if (_cfg.skip == SkipMode::None) {
        // One reset pulse, then every wire streams its queue back to
        // back; the block completes when the slowest wire finishes.
        // Walked wave-major so the chunks read sequentially; per-wire
        // time accumulates in a reused scratch vector.
        _wire_time.assign(wires, 0);
        BitCursor cur(block);
        for (unsigned g = 0; g < waves; g++) {
            for (unsigned w = 0; w < wires; w++) {
                std::uint64_t v = cur.next(chunk_bits);
                _wire_time[w] += chunkCycles(v, false, 0);
                _last[w] = std::uint8_t(v);
            }
        }
        Cycle window = 0;
        for (unsigned w = 0; w < wires; w++) {
            if (_wire_time[w] > window)
                window = _wire_time[w];
        }
        result.cycles = 1 + window;
        result.data_flips = _cfg.numChunks();
        // Reset pulse plus one sync-strobe transition per busy cycle.
        result.control_flips = 1 + result.cycles;
        return result;
    }

    // Value-skipped protocol: one chunk per wire per wave; the pulse
    // closing a wave is merged with the next wave's opening pulse.
    // The (wave, wire) order reads the block's chunks sequentially.
    BitCursor cur(block);
    Cycle cycles = 1; // opening pulse of wave 0
    std::uint64_t reset_flips = 1;
    for (unsigned g = 0; g < waves; g++) {
        unsigned window = 0;
        bool any_skipped = false;
        for (unsigned w = 0; w < wires; w++) {
            std::uint64_t v = cur.next(chunk_bits);
            std::uint64_t s = _cfg.skip == SkipMode::Zero
                ? 0
                : (_cfg.skip == SkipMode::Adaptive
                       ? _adaptive.best(w)
                       : _last[w]);
            if (v == s) {
                any_skipped = true;
                result.skipped++;
            } else {
                result.data_flips++;
                unsigned c = chunkCycles(v, true, s);
                if (c > window)
                    window = c;
            }
            _last[w] = std::uint8_t(v);
            if (_cfg.skip == SkipMode::Adaptive)
                _adaptive.update(w, std::uint8_t(v));
        }
        if (window == 0)
            window = 1; // all-skipped wave: closing pulse one cycle later
        cycles += window;
        if (g + 1 < waves)
            reset_flips++; // merged close/open
        else if (any_skipped)
            reset_flips++; // final closing pulse
    }
    result.cycles = cycles;
    result.control_flips = reset_flips + cycles; // + sync strobe
    return result;
}

void
DescScheme::reset()
{
    std::fill(_last.begin(), _last.end(), 0);
    _adaptive.reset();
}

} // namespace desc::core
