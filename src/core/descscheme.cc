#include "core/descscheme.hh"

#include <algorithm>
#include <bit>

#include "common/contract.hh"
#include "core/chunk.hh"
#include "core/timing.hh"
#include "encoding/swar.hh"

namespace desc::core {

namespace swar = encoding::swar;

namespace {

/** Occupancy window and driven-chunk count of one scanned wave. */
struct WaveScan
{
    std::uint64_t maxv = 0;
    unsigned sent = 0;
};

/** Zero-skip wave: a chunk is driven iff non-zero, at cost v. */
template <unsigned B>
WaveScan
scanZeroWave(const std::uint64_t *cur, unsigned wpw)
{
    WaveScan r;
    for (unsigned j = 0; j < wpw; j++) {
        const std::uint64_t x = cur[j];
        if (!x)
            continue;
        r.sent += swar::nonzeroChunks<B>(x);
        r.maxv = std::max(r.maxv, swar::maxChunk<B>(x));
    }
    return r;
}

/**
 * Last-value-skip wave: a chunk is driven iff it differs from the
 * previous wave's chunk on the same wire, at cost
 * chunkCycles(v, skip=true, s) = v + (v < s). The +1 cannot carry out
 * of the chunk because v < s bounds v below the chunk maximum; chunks
 * equal to their skip value are masked out of the window fold.
 */
template <unsigned B>
WaveScan
scanLastWave(const std::uint64_t *cur, const std::uint64_t *prev,
             unsigned wpw)
{
    constexpr std::uint64_t lane_ones = (std::uint64_t{1} << B) - 1;
    WaveScan r;
    for (unsigned j = 0; j < wpw; j++) {
        const std::uint64_t d = cur[j] ^ prev[j];
        if (!d)
            continue;
        const std::uint64_t markers = swar::nonzeroChunkMarkers<B>(d);
        r.sent += unsigned(std::popcount(markers));
        const std::uint64_t adj =
            cur[j] + swar::lessPerChunk<B>(cur[j], prev[j]);
        r.maxv = std::max(r.maxv,
                          swar::maxChunk<B>(adj & (markers * lane_ones)));
    }
    return r;
}

/** Basic mode, single wave: the slowest wire is the maximum chunk. */
template <unsigned B>
std::uint64_t
maxOverWords(const std::uint64_t *cur, unsigned wpw)
{
    std::uint64_t maxv = 0;
    for (unsigned j = 0; j < wpw; j++)
        maxv = std::max(maxv, swar::maxChunk<B>(cur[j]));
    return maxv;
}

using ScanZeroFn = WaveScan (*)(const std::uint64_t *, unsigned);
using ScanLastFn = WaveScan (*)(const std::uint64_t *,
                                const std::uint64_t *, unsigned);
using MaxFn = std::uint64_t (*)(const std::uint64_t *, unsigned);

/** Instantiations for each supported chunk width, indexed by log2. */
constexpr ScanZeroFn kScanZero[4] = {scanZeroWave<1>, scanZeroWave<2>,
                                     scanZeroWave<4>, scanZeroWave<8>};
constexpr ScanLastFn kScanLast[4] = {scanLastWave<1>, scanLastWave<2>,
                                     scanLastWave<4>, scanLastWave<8>};
constexpr MaxFn kMaxWords[4] = {maxOverWords<1>, maxOverWords<2>,
                                maxOverWords<4>, maxOverWords<8>};

/** log2 of a supported chunk width (1, 2, 4, 8). */
inline unsigned
chunkLog2(unsigned b)
{
    return unsigned(std::countr_zero(b));
}

} // namespace

DescScheme::DescScheme(const DescConfig &cfg)
    : _cfg(cfg), _mode(encoding::defaultEncoderMode()),
      _last(cfg.activeWires(), 0),
      _adaptive(cfg.activeWires(), cfg.chunk_bits)
{
    _cfg.validate();
    const unsigned wave_bits = _cfg.activeWires() * _cfg.chunk_bits;
    _last_words.assign((wave_bits + 63) / 64, 0);
}

const char *
DescScheme::name() const
{
    switch (_cfg.skip) {
      case SkipMode::None:
        return "Basic DESC";
      case SkipMode::Zero:
        return "Zero Skipped DESC";
      case SkipMode::LastValue:
        return "Last Value Skipped DESC";
      case SkipMode::Adaptive:
        return "Adaptive Skipped DESC";
    }
    return "?";
}

bool
DescScheme::batchedSupported() const
{
    // The SWAR pass needs chunks that pack a 64-bit word evenly and a
    // wave layout where every wave is a whole-word slice of the block
    // (a single wave always starts at bit 0, so only multi-wave
    // configurations need the alignment). The adaptive tracker updates
    // per chunk in stream order and stays on the reference loop; basic
    // mode accumulates per-wire time across waves, which the word pass
    // only reproduces for the single-wave layout.
    if (_cfg.skip == SkipMode::Adaptive)
        return false;
    if (!swar::supportedChunk(_cfg.chunk_bits))
        return false;
    const unsigned waves = _cfg.numWaves();
    if (waves > 1 && (_cfg.activeWires() * _cfg.chunk_bits) % 64 != 0)
        return false;
    if (_cfg.skip == SkipMode::None && waves > 1)
        return false;
    return true;
}

void
DescScheme::packLastWords()
{
    const unsigned b = _cfg.chunk_bits;
    std::fill(_last_words.begin(), _last_words.end(), 0);
    for (unsigned w = 0; w < _cfg.activeWires(); w++) {
        const unsigned pos = w * b;
        _last_words[pos >> 6] |= std::uint64_t{_last[w]} << (pos & 63);
    }
    _last_words_fresh = true;
}

void
DescScheme::unpackLastWords()
{
    const unsigned b = _cfg.chunk_bits;
    const std::uint64_t mask = (std::uint64_t{1} << b) - 1;
    for (unsigned w = 0; w < _cfg.activeWires(); w++) {
        const unsigned pos = w * b;
        _last[w] = std::uint8_t((_last_words[pos >> 6] >> (pos & 63)) & mask);
    }
    _last_bytes_fresh = true;
}

void
DescScheme::setEncoderMode(encoding::EncoderMode mode)
{
    _mode = mode;
    // Converge the wire-state representations so either path can pick
    // up mid-stream (only LastValue ever reads them back).
    if (_cfg.skip == SkipMode::LastValue) {
        if (!_last_bytes_fresh)
            unpackLastWords();
        if (!_last_words_fresh)
            packLastWords();
    }
}

encoding::TransferResult
DescScheme::transfer(const BitVec &block)
{
    DESC_ASSERT(block.width() == _cfg.block_bits, "block width mismatch");
    if (usesBatchedPath())
        return transferBatched(block);
    return transferScalar(block);
}

encoding::TransferResult
DescScheme::transferScalar(const BitVec &block)
{
    encoding::TransferResult result;

    const unsigned wires = _cfg.activeWires();
    const unsigned waves = _cfg.numWaves();
    const unsigned chunk_bits = _cfg.chunk_bits;

    if (_cfg.skip == SkipMode::LastValue && !_last_bytes_fresh)
        unpackLastWords();
    _last_words_fresh = false;
    _last_bytes_fresh = true;

    if (_cfg.skip == SkipMode::None) {
        // One reset pulse, then every wire streams its queue back to
        // back; the block completes when the slowest wire finishes.
        // Walked wave-major so the chunks read sequentially; per-wire
        // time accumulates in a reused scratch vector.
        _wire_time.assign(wires, 0);
        BitCursor cur(block);
        for (unsigned g = 0; g < waves; g++) {
            for (unsigned w = 0; w < wires; w++) {
                std::uint64_t v = cur.next(chunk_bits);
                _wire_time[w] += chunkCycles(v, false, 0);
                _last[w] = std::uint8_t(v);
            }
        }
        Cycle window = 0;
        for (unsigned w = 0; w < wires; w++) {
            if (_wire_time[w] > window)
                window = _wire_time[w];
        }
        result.cycles = 1 + window;
        result.data_flips = _cfg.numChunks();
        // Reset pulse plus one sync-strobe transition per busy cycle.
        result.control_flips = 1 + result.cycles;
        return result;
    }

    // Value-skipped protocol: one chunk per wire per wave; the pulse
    // closing a wave is merged with the next wave's opening pulse.
    // The (wave, wire) order reads the block's chunks sequentially.
    BitCursor cur(block);
    Cycle cycles = 1; // opening pulse of wave 0
    std::uint64_t reset_flips = 1;
    for (unsigned g = 0; g < waves; g++) {
        unsigned window = 0;
        bool any_skipped = false;
        for (unsigned w = 0; w < wires; w++) {
            std::uint64_t v = cur.next(chunk_bits);
            std::uint64_t s = _cfg.skip == SkipMode::Zero
                ? 0
                : (_cfg.skip == SkipMode::Adaptive
                       ? _adaptive.best(w)
                       : _last[w]);
            if (v == s) {
                any_skipped = true;
                result.skipped++;
            } else {
                result.data_flips++;
                unsigned c = chunkCycles(v, true, s);
                if (c > window)
                    window = c;
            }
            _last[w] = std::uint8_t(v);
            if (_cfg.skip == SkipMode::Adaptive)
                _adaptive.update(w, std::uint8_t(v));
        }
        if (window == 0)
            window = 1; // all-skipped wave: closing pulse one cycle later
        cycles += window;
        if (g + 1 < waves)
            reset_flips++; // merged close/open
        else if (any_skipped)
            reset_flips++; // final closing pulse
    }
    result.cycles = cycles;
    result.control_flips = reset_flips + cycles; // + sync strobe
    return result;
}

encoding::TransferResult
DescScheme::transferBatched(const BitVec &block)
{
    encoding::TransferResult result;

    const unsigned lb = chunkLog2(_cfg.chunk_bits);
    const unsigned wires = _cfg.activeWires();
    const unsigned waves = _cfg.numWaves();
    const auto &words = block.words();
    // Each wave is a whole-word slice (batchedSupported); a single
    // wave spans the entire block, padding bits beyond the width read
    // zero and so never produce spurious chunk activity.
    const unsigned wpw = waves > 1 ? wires * _cfg.chunk_bits / 64
                                   : unsigned(words.size());

    if (_cfg.skip == SkipMode::None) {
        // Single wave: every wire carries exactly one chunk, so the
        // slowest wire is simply the maximum chunk value (+1 cycle of
        // per-chunk overhead). The per-wire last values are write-only
        // in basic mode, so the pass skips maintaining them.
        const std::uint64_t maxv = kMaxWords[lb](words.data(), wpw);
        result.cycles = 1 + (Cycle(maxv) + 1);
        result.data_flips = _cfg.numChunks();
        result.control_flips = 1 + result.cycles;
        return result;
    }

    const bool last_value = _cfg.skip == SkipMode::LastValue;
    if (last_value && !_last_words_fresh)
        packLastWords();

    Cycle cycles = 1; // opening pulse of wave 0
    std::uint64_t reset_flips = 1;
    for (unsigned g = 0; g < waves; g++) {
        const std::uint64_t *cur = words.data() + std::size_t(g) * wpw;
        WaveScan scan;
        if (last_value) {
            // Skip value is the previous wave of the same stream: the
            // preceding word slice of this block, or the tail of the
            // previous block for wave 0.
            const std::uint64_t *prev = g == 0
                ? _last_words.data()
                : cur - wpw;
            scan = kScanLast[lb](cur, prev, wpw);
        } else {
            scan = kScanZero[lb](cur, wpw);
        }
        const unsigned sent = scan.sent;
        result.data_flips += sent;
        result.skipped += wires - sent;
        Cycle window = Cycle(scan.maxv);
        if (window == 0)
            window = 1; // all-skipped wave: closing pulse one cycle later
        cycles += window;
        if (g + 1 < waves)
            reset_flips++; // merged close/open
        else if (sent < wires)
            reset_flips++; // final closing pulse
    }
    if (last_value) {
        std::copy_n(words.data() + std::size_t(waves - 1) * wpw, wpw,
                    _last_words.begin());
        _last_words_fresh = true;
        _last_bytes_fresh = false;
    }
    result.cycles = cycles;
    result.control_flips = reset_flips + cycles; // + sync strobe
    return result;
}

void
DescScheme::reset()
{
    std::fill(_last.begin(), _last.end(), 0);
    std::fill(_last_words.begin(), _last_words.end(), 0);
    _last_words_fresh = true;
    _last_bytes_fresh = true;
    _adaptive.reset();
}

} // namespace desc::core
