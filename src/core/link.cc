#include "core/link.hh"

#include <bit>

#include "common/contract.hh"
#include "common/env.hh"
#include "common/log.hh"
#include "common/prof.hh"
#include "common/trace.hh"

namespace desc::core {

namespace {

std::optional<LinkMode> g_link_mode_override;

} // namespace

void
setDefaultLinkMode(std::optional<LinkMode> mode)
{
    g_link_mode_override = mode;
}

LinkMode
defaultLinkMode()
{
    if (g_link_mode_override)
        return *g_link_mode_override;
    static const LinkMode mode = [] {
        static const env::EnumName kWords[] = {
            {"auto", int(LinkMode::Auto)},
            {"ticked", int(LinkMode::Ticked)},
            {"fast", int(LinkMode::Fast)},
        };
        return LinkMode(env::enumOr(env::Var::LinkMode, kWords, 3,
                                    int(LinkMode::Auto)));
    }();
    return mode;
}

DescLink::DescLink(const DescConfig &cfg)
    : _cfg(cfg), _tx(cfg), _rx(cfg), _cur(cfg.activeWires()),
      _prev(cfg.activeWires()), _plan(cfg.activeWires()),
      _mode(defaultLinkMode())
{
}

bool
DescLink::wantFastPath() const
{
    // Fault injectors, wire observers (VCD export), and the link trace
    // channel all need to see the individual cycles; the fast path
    // would change their output, so it is never taken behind them.
    bool watched = _fault || _observer
        || trace::enabled(trace::Channel::Link);
    switch (_mode) {
      case LinkMode::Ticked:
        return false;
      case LinkMode::Auto:
        return !watched;
      case LinkMode::Fast:
        if (watched) {
            warnOnce("desc-link-forced-fast",
                     "DESC_LINK_MODE=fast ignored: a fault hook, wire "
                     "observer, or link trace needs cycle-accurate "
                     "transfers; using the ticked loop");
            return false;
        }
        return true;
    }
    DESC_PANIC("bad link mode");
}

encoding::TransferResult
DescLink::fastTransfer(const BitVec &block, BitVec *received)
{
    DESC_PROF_SCOPE(LinkFast);
    _tx.fastForwardBlock(block, _plan);
    // The receiver ends in the state observing every cycle would have
    // produced; toggle signaling is lossless here (ideal wires, no
    // fault hook), so the recovered block is the input block.
    _rx.fastForwardBlock(block, _tx.wires(), _plan);

    _cycle += _plan.result.cycles;
    DESC_PROF_CYCLES(LinkFast, _plan.result.cycles);
    // Keep the transition reference coherent for a later ticked
    // transfer on this link.
    _prev = _tx.wires();

    if (received)
        *received = block;
    _rx.discardBlock();
    return _plan.result;
}

encoding::TransferResult
DescLink::transferBlock(const BitVec &block, BitVec *received)
{
    _used_fast = wantFastPath();
    if (_used_fast)
        return fastTransfer(block, received);

    DESC_PROF_SCOPE(LinkTicked);
    encoding::TransferResult result;
    _tx.loadBlock(block);

    const unsigned nwords = _cur.data.numWords();
    const Cycle guard = 64 + 2ull * _cfg.numChunks()
        * (std::uint64_t{1} << _cfg.chunk_bits);

    while (_tx.busy()) {
        _tx.tick();
        _cur = _tx.wires(); // copy-assign reuses _cur's storage
        if (_fault)
            _fault(_cycle, _cur);
        if (_observer)
            _observer(_cycle, _cur);

        // Count transitions against the previous cycle's levels:
        // popcounts of the plane XORs.
        for (unsigned k = 0; k < nwords; k++) {
            result.data_flips += unsigned(
                std::popcount(_cur.data.word(k) ^ _prev.data.word(k)));
        }
        if (_cur.reset_skip != _prev.reset_skip)
            result.control_flips++;
        if (_cur.sync != _prev.sync)
            result.control_flips++;

        _rx.observe(_cur);
        // The current levels become the next cycle's reference; the
        // swap trades buffers instead of copying the bundle again.
        std::swap(_cur.data, _prev.data);
        _prev.reset_skip = _cur.reset_skip;
        _prev.sync = _cur.sync;
        result.cycles++;
        _cycle++;
        DESC_ASSERT(result.cycles < guard, "transfer did not terminate");
    }

    DESC_ASSERT(_rx.blockReady(), "receiver incomplete after transfer");
    DESC_PROF_CYCLES(LinkTicked, result.cycles);
    result.skipped = _cfg.numChunks() - result.data_flips;
    DESC_TRACE_EVENT(Link, _cycle, "block transferred: ",
                     result.cycles, " cycles, ", result.data_flips,
                     " data + ", result.control_flips,
                     " ctrl flips, ", result.skipped,
                     " skipped chunks (", skipModeName(_cfg.skip), ")");
    if (received)
        *received = _rx.takeBlock();
    else
        _rx.discardBlock();
    return result;
}

void
DescLink::reset()
{
    _tx.reset();
    _rx.reset();
    _cur.clear();
    _prev.clear();
    _cycle = 0;
    _used_fast = false;
}

} // namespace desc::core
