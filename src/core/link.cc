#include "core/link.hh"

#include "common/contract.hh"
#include "common/trace.hh"

namespace desc::core {

DescLink::DescLink(const DescConfig &cfg)
    : _cfg(cfg), _tx(cfg), _rx(cfg), _cur(cfg.activeWires()),
      _prev(cfg.activeWires())
{
}

encoding::TransferResult
DescLink::transferBlock(const BitVec &block, BitVec *received)
{
    encoding::TransferResult result;
    _tx.loadBlock(block);

    const unsigned wires = _cfg.activeWires();
    const Cycle guard = 64 + 2ull * _cfg.numChunks()
        * (std::uint64_t{1} << _cfg.chunk_bits);

    while (_tx.busy()) {
        _tx.tick();
        _cur = _tx.wires(); // copy-assign reuses _cur's storage
        if (_fault)
            _fault(_cycle, _cur);
        if (_observer)
            _observer(_cycle, _cur);

        // Count transitions against the previous cycle's levels.
        for (unsigned w = 0; w < wires; w++) {
            if (_cur.data[w] != _prev.data[w])
                result.data_flips++;
        }
        if (_cur.reset_skip != _prev.reset_skip)
            result.control_flips++;
        if (_cur.sync != _prev.sync)
            result.control_flips++;

        _rx.observe(_cur);
        // The current levels become the next cycle's reference; the
        // swap trades buffers instead of copying the bundle again.
        std::swap(_cur.data, _prev.data);
        _prev.reset_skip = _cur.reset_skip;
        _prev.sync = _cur.sync;
        result.cycles++;
        _cycle++;
        DESC_ASSERT(result.cycles < guard, "transfer did not terminate");
    }

    DESC_ASSERT(_rx.blockReady(), "receiver incomplete after transfer");
    result.skipped = _cfg.numChunks() - result.data_flips;
    DESC_TRACE_EVENT(Link, _cycle, "block transferred: ",
                     result.cycles, " cycles, ", result.data_flips,
                     " data + ", result.control_flips,
                     " ctrl flips, ", result.skipped,
                     " skipped chunks (", skipModeName(_cfg.skip), ")");
    BitVec out = _rx.takeBlock();
    if (received)
        *received = out;
    return result;
}

void
DescLink::reset()
{
    _tx.reset();
    _rx.reset();
    _cur.clear();
    _prev.clear();
    _cycle = 0;
}

} // namespace desc::core
