#include "core/link.hh"

#include "common/trace.hh"

namespace desc::core {

DescLink::DescLink(const DescConfig &cfg)
    : _cfg(cfg), _tx(cfg), _rx(cfg), _prev(cfg.activeWires())
{
}

encoding::TransferResult
DescLink::transferBlock(const BitVec &block, BitVec *received)
{
    encoding::TransferResult result;
    _tx.loadBlock(block);

    const Cycle guard = 64 + 2ull * _cfg.numChunks()
        * (std::uint64_t{1} << _cfg.chunk_bits);

    while (_tx.busy()) {
        _tx.tick();
        WireBundle bundle = _tx.wires();
        if (_fault)
            _fault(_cycle, bundle);
        if (_observer)
            _observer(_cycle, bundle);

        // Count transitions against the previous cycle's levels.
        for (unsigned w = 0; w < _cfg.activeWires(); w++) {
            if (bundle.data[w] != _prev.data[w])
                result.data_flips++;
        }
        if (bundle.reset_skip != _prev.reset_skip)
            result.control_flips++;
        if (bundle.sync != _prev.sync)
            result.control_flips++;

        _rx.observe(bundle);
        _prev = bundle;
        result.cycles++;
        _cycle++;
        DESC_ASSERT(result.cycles < guard, "transfer did not terminate");
    }

    DESC_ASSERT(_rx.blockReady(), "receiver incomplete after transfer");
    result.skipped = _cfg.numChunks() - result.data_flips;
    DESC_TRACE_EVENT(Link, _cycle, "block transferred: ",
                     result.cycles, " cycles, ", result.data_flips,
                     " data + ", result.control_flips,
                     " ctrl flips, ", result.skipped,
                     " skipped chunks (", skipModeName(_cfg.skip), ")");
    BitVec out = _rx.takeBlock();
    if (received)
        *received = out;
    return result;
}

void
DescLink::reset()
{
    _tx.reset();
    _rx.reset();
    _prev.clear();
    _cycle = 0;
}

} // namespace desc::core
