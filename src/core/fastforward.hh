/**
 * @file
 * Closed-form summary of one DESC block transfer (the link fast path).
 *
 * Every quantity the cycle-accurate loop produces is a closed-form
 * function of the chunk values, the skip-mode reference values, and
 * the reset/sync pulse schedule (see DESIGN.md §10 for the
 * derivation):
 *
 *   - a chunk's data strobe fires chunkCycles(v, skipping, s) cycles
 *     after its wave opens, so each wave's window is the maximum over
 *     its strobed chunks (minimum 1: an all-skipped wave still needs a
 *     cycle before the shared pulse wire can toggle again);
 *   - the sync strobe toggles once per busy cycle, the reset/skip
 *     wire once per opening/merged/final-closing pulse;
 *   - a wire's final level is its initial level XOR (strobes mod 2),
 *     because toggle signaling has no idle return.
 *
 * DescTransmitter::fastForwardBlock fills this plan while updating the
 * transmitter's own skip state; DescReceiver::fastForwardBlock then
 * replays the same outcome onto the receiver. All storage is sized at
 * construction so the per-block path never allocates.
 */

#ifndef DESC_CORE_FASTFORWARD_HH
#define DESC_CORE_FASTFORWARD_HH

#include <cstdint>
#include <vector>

#include "encoding/scheme.hh"

namespace desc::core {

struct FastForwardPlan
{
    explicit FastForwardPlan(unsigned wires)
        : strobe_odd(wires, 0), final_got(wires, 0),
          final_skipv(wires, 0), final_vals(wires, 0),
          final_elapsed(wires, 0)
    {
    }

    /** What the ticked loop would have returned. */
    encoding::TransferResult result;

    /** Pulses on the shared reset/skip wire (open + merged + close). */
    std::uint64_t reset_flips = 0;

    // Post-transfer bookkeeping of the last wave (skip modes), needed
    // so a later ticked transfer resumes from identical state.
    unsigned final_window = 0;      //!< window of the last wave
    bool final_any_skipped = false; //!< last wave had silent wires
    unsigned final_got_count = 0;   //!< strobed wires in the last wave

    std::vector<std::uint8_t> strobe_odd;  //!< per wire: strobes mod 2
    std::vector<std::uint8_t> final_got;   //!< per wire: strobed in last wave
    std::vector<std::uint8_t> final_skipv; //!< per wire: last-wave skip value
    std::vector<std::uint8_t> final_vals;  //!< per wire: last-wave chunk value
    std::vector<unsigned> final_elapsed;   //!< per wire: idle cycles after
                                           //!< the last strobe (basic mode)
};

} // namespace desc::core

#endif // DESC_CORE_FASTFORWARD_HH
