#include "core/chunk.hh"

#include "common/contract.hh"
#include "common/log.hh"

namespace desc::core {

std::vector<std::uint8_t>
splitChunks(const BitVec &block, unsigned chunk_bits)
{
    DESC_ASSERT(chunk_bits >= 1 && chunk_bits <= 8,
                "chunk size must be 1..8 bits");
    DESC_ASSERT(block.width() % chunk_bits == 0,
                "block width not divisible by chunk size");
    unsigned n = block.width() / chunk_bits;
    std::vector<std::uint8_t> chunks(n);
    BitCursor cur(block);
    for (unsigned i = 0; i < n; i++)
        chunks[i] = std::uint8_t(cur.next(chunk_bits));
    return chunks;
}

BitVec
joinChunks(const std::vector<std::uint8_t> &chunks, unsigned chunk_bits,
           unsigned block_bits)
{
    DESC_ASSERT(chunks.size() * chunk_bits == block_bits,
                "chunk count does not cover the block");
    BitVec block(block_bits);
    for (unsigned i = 0; i < chunks.size(); i++)
        block.setField(i * chunk_bits, chunk_bits, chunks[i]);
    return block;
}

ChunkStats::ChunkStats(unsigned chunk_bits, unsigned wires)
    : _chunk_bits(chunk_bits), _wires(wires),
      _hist(1u << chunk_bits), _last(wires, 0), _last_valid(wires, false)
{
}

void
ChunkStats::observe(const BitVec &block)
{
    DESC_ASSERT(block.width() % _chunk_bits == 0,
                "block width not divisible by chunk size");
    const unsigned n = block.width() / _chunk_bits;
    BitCursor cur(block);
    unsigned w = 0;
    for (unsigned i = 0; i < n; i++) {
        const auto chunk = std::uint8_t(cur.next(_chunk_bits));
        _hist.sample(chunk);
        if (_last_valid[w]) {
            _match_candidates++;
            if (_last[w] == chunk)
                _matches++;
        }
        _last[w] = chunk;
        _last_valid[w] = true;
        if (++w == _wires)
            w = 0;
    }
}

double
ChunkStats::valueFraction(std::uint8_t v) const
{
    return _hist.fraction(v);
}

double
ChunkStats::lastValueMatchFraction() const
{
    return _match_candidates
        ? double(_matches) / double(_match_candidates)
        : 0.0;
}

} // namespace desc::core
