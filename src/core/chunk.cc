#include "core/chunk.hh"

#include <algorithm>
#include <bit>

#include "common/contract.hh"
#include "common/log.hh"
#include "encoding/scheme.hh"
#include "encoding/swar.hh"

namespace desc::core {

namespace swar = encoding::swar;

std::vector<std::uint8_t>
splitChunks(const BitVec &block, unsigned chunk_bits)
{
    DESC_ASSERT(chunk_bits >= 1 && chunk_bits <= 8,
                "chunk size must be 1..8 bits");
    DESC_ASSERT(block.width() % chunk_bits == 0,
                "block width not divisible by chunk size");
    unsigned n = block.width() / chunk_bits;
    // Test/example convenience, not transfer-path work; the link's
    // fast path never materializes chunk vectors.
    std::vector<std::uint8_t> chunks(n); // analyze:allow(hot-path-alloc)
    BitCursor cur(block);
    for (unsigned i = 0; i < n; i++)
        chunks[i] = std::uint8_t(cur.next(chunk_bits));
    return chunks;
}

BitVec
joinChunks(const std::vector<std::uint8_t> &chunks, unsigned chunk_bits,
           unsigned block_bits)
{
    DESC_ASSERT(chunks.size() * chunk_bits == block_bits,
                "chunk count does not cover the block");
    BitVec block(block_bits);
    for (unsigned i = 0; i < chunks.size(); i++)
        block.setField(i * chunk_bits, chunk_bits, chunks[i]);
    return block;
}

ChunkStats::ChunkStats(unsigned chunk_bits, unsigned wires)
    : _chunk_bits(chunk_bits), _wires(wires),
      _batched(encoding::defaultEncoderMode() != encoding::EncoderMode::Scalar
               && swar::supportedChunk(chunk_bits)),
      _hist(1u << chunk_bits), _last(wires, 0), _last_valid(wires, false),
      _prev_words((std::size_t(wires) * chunk_bits + 63) / 64, 0)
{
}

bool
ChunkStats::batchedObservable(unsigned n) const
{
    // The word pass needs complete waves (every wire sees the same
    // number of chunks) laid out as whole-word slices of the block; a
    // single wave always starts at bit 0 and pads with zero bits that
    // produce no samples or match candidates.
    if (n % _wires != 0)
        return false;
    const unsigned waves = n / _wires;
    if (waves > 1 && (_wires * _chunk_bits) % 64 != 0)
        return false;
    return true;
}

void
ChunkStats::packPrevWords()
{
    std::fill(_prev_words.begin(), _prev_words.end(), 0);
    for (unsigned w = 0; w < _wires; w++) {
        const unsigned pos = w * _chunk_bits;
        _prev_words[pos >> 6] |= std::uint64_t{_last[w]} << (pos & 63);
    }
    _words_fresh = true;
}

void
ChunkStats::unpackPrevWords()
{
    const std::uint64_t mask = (std::uint64_t{1} << _chunk_bits) - 1;
    for (unsigned w = 0; w < _wires; w++) {
        const unsigned pos = w * _chunk_bits;
        _last[w] =
            std::uint8_t((_prev_words[pos >> 6] >> (pos & 63)) & mask);
        _last_valid[w] = _primed;
    }
    _words_fresh = false;
}

void
ChunkStats::observe(const BitVec &block)
{
    DESC_ASSERT(block.width() % _chunk_bits == 0,
                "block width not divisible by chunk size");
    const unsigned n = block.width() / _chunk_bits;
    if (_batched && batchedObservable(n)) {
        if (!_words_fresh) {
            // Adopting the packed representation needs uniform wire
            // validity, which only complete blocks guarantee; mixed
            // scalar streams with ragged validity stay scalar.
            const bool uniform = _hist.total() == 0
                || std::all_of(_last_valid.begin(), _last_valid.end(),
                               [&](bool v) { return v == _primed; });
            if (!uniform) {
                observeScalar(block, n);
                return;
            }
            packPrevWords();
        }
        observeBatched(block, n);
        return;
    }
    if (_words_fresh)
        unpackPrevWords();
    observeScalar(block, n);
}

void
ChunkStats::observeScalar(const BitVec &block, unsigned n)
{
    BitCursor cur(block);
    unsigned w = 0;
    for (unsigned i = 0; i < n; i++) {
        const auto chunk = std::uint8_t(cur.next(_chunk_bits));
        _hist.sample(chunk);
        if (_last_valid[w]) {
            _match_candidates++;
            if (_last[w] == chunk)
                _matches++;
        }
        _last[w] = chunk;
        _last_valid[w] = true;
        if (++w == _wires)
            w = 0;
    }
    if (n % _wires == 0 && n > 0)
        _primed = true;
}

namespace {

/**
 * Per-value chunk counts of one word (only the low @p chunks chunks).
 * B == 1 short-circuits to a popcount; wider chunks extract serially
 * into the local count array.
 */
template <unsigned B>
inline void
countWordChunks(std::uint64_t x, unsigned chunks, std::uint32_t *counts)
{
    if constexpr (B == 1) {
        const std::uint64_t valid = chunks >= 64
            ? ~std::uint64_t{0}
            : (std::uint64_t{1} << chunks) - 1;
        const unsigned ones = unsigned(std::popcount(x & valid));
        counts[1] += ones;
        counts[0] += chunks - ones;
    } else {
        constexpr std::uint64_t mask = (std::uint64_t{1} << B) - 1;
        for (unsigned k = 0; k < chunks; k++) {
            counts[x & mask]++;
            x >>= B;
        }
    }
}

using CountFn = void (*)(std::uint64_t, unsigned, std::uint32_t *);
using DiffFn = unsigned (*)(std::uint64_t);

template <unsigned B>
inline unsigned
diffChunks(std::uint64_t d)
{
    return swar::nonzeroChunks<B>(d);
}

constexpr CountFn kCount[4] = {countWordChunks<1>, countWordChunks<2>,
                               countWordChunks<4>, countWordChunks<8>};
constexpr DiffFn kDiff[4] = {diffChunks<1>, diffChunks<2>, diffChunks<4>,
                             diffChunks<8>};

} // namespace

void
ChunkStats::observeBatched(const BitVec &block, unsigned n)
{
    const unsigned lb = unsigned(std::countr_zero(_chunk_bits));
    const unsigned waves = n / _wires;
    const auto &words = block.words();
    const unsigned wpw = waves > 1 ? _wires * _chunk_bits / 64
                                   : unsigned(words.size());
    const unsigned cpw = 64 / _chunk_bits; // chunks per full word

    std::uint32_t counts[256] = {};
    std::uint64_t diffs = 0;
    unsigned candidate_waves = 0;

    for (unsigned g = 0; g < waves; g++) {
        const std::uint64_t *cur = words.data() + std::size_t(g) * wpw;
        // Histogram: padding chunks past the wave's real width must
        // not be sampled, so the final word counts only its remainder.
        unsigned left = _wires;
        for (unsigned j = 0; j < wpw; j++) {
            kCount[lb](cur[j], std::min(left, cpw), counts);
            left -= std::min(left, cpw);
        }
        // Matches against the previous chunk on each wire: the prior
        // word slice, or the previous block's final wave for wave 0.
        // Padding bits are zero on both sides and cannot produce a
        // spurious difference.
        const std::uint64_t *prev = g == 0 ? _prev_words.data() : cur - wpw;
        if (g > 0 || _primed) {
            candidate_waves++;
            for (unsigned j = 0; j < wpw; j++) {
                const std::uint64_t d = cur[j] ^ prev[j];
                if (d)
                    diffs += kDiff[lb](d);
            }
        }
    }

    for (unsigned v = 0; v < (1u << _chunk_bits); v++) {
        if (counts[v])
            _hist.sample(v, counts[v]);
    }
    _match_candidates += std::uint64_t(candidate_waves) * _wires;
    _matches += std::uint64_t(candidate_waves) * _wires - diffs;

    std::copy_n(words.data() + std::size_t(waves - 1) * wpw, wpw,
                _prev_words.begin());
    _primed = true;
    _words_fresh = true;
}

double
ChunkStats::valueFraction(std::uint8_t v) const
{
    return _hist.fraction(v);
}

double
ChunkStats::lastValueMatchFraction() const
{
    return _match_candidates
        ? double(_matches) / double(_match_candidates)
        : 0.0;
}

} // namespace desc::core
