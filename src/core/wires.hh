/**
 * @file
 * The physical wire levels connecting a DESC transmitter and receiver.
 *
 * Wire levels are stored as packed uint64_t bit planes so the ticked
 * engine can advance, diff, and count a whole bus with a handful of
 * word operations (DESIGN.md §15): one cycle's data strobes are a
 * single XOR of a fire plane into the level plane, transition counts
 * are popcounts of plane XORs, and the receiver's toggle detectors
 * are one XOR against a delayed plane copy.
 */

#ifndef DESC_CORE_WIRES_HH
#define DESC_CORE_WIRES_HH

#include <cstdint>
#include <vector>

#include "common/contract.hh"

namespace desc::core {

/**
 * A fixed-width plane of 1-bit wire levels packed 64 per word.
 *
 * Bit i of word i/64 is wire i; bits at or above size() are kept zero
 * (every mutator masks to the valid range) so whole-word operations
 * — XOR, popcount, equality — never see garbage in the tail word.
 * operator[] returns a proxy reference so call sites written against
 * the old std::vector<bool> representation keep working unchanged.
 */
class WirePlane
{
  public:
    explicit WirePlane(unsigned bits = 0)
        : _bits(bits), _words((bits + 63) / 64, 0)
    {
    }

    /** Writable single-bit proxy (std::vector<bool>-style). */
    class BitRef
    {
      public:
        BitRef(std::uint64_t &word, std::uint64_t mask)
            : _word(word), _mask(mask)
        {
        }

        operator bool() const { return (_word & _mask) != 0; }

        BitRef &
        operator=(bool v)
        {
            if (v)
                _word |= _mask;
            else
                _word &= ~_mask;
            return *this;
        }

        BitRef &operator=(const BitRef &o) { return *this = bool(o); }

      private:
        std::uint64_t &_word;
        std::uint64_t _mask;
    };

    unsigned size() const { return _bits; }

    /** Number of 64-bit words backing the plane. */
    unsigned numWords() const { return unsigned(_words.size()); }

    std::uint64_t word(unsigned i) const { return _words[i]; }

    const std::uint64_t *words() const { return _words.data(); }
    std::uint64_t *mutableWords() { return _words.data(); }

    bool
    operator[](unsigned bit) const
    {
        DESC_ASSERT(bit < _bits, "wire index out of range: ", bit);
        return (_words[bit / 64] >> (bit % 64)) & 1;
    }

    BitRef
    operator[](unsigned bit)
    {
        DESC_ASSERT(bit < _bits, "wire index out of range: ", bit);
        return BitRef(_words[bit / 64], std::uint64_t{1} << (bit % 64));
    }

    void
    set(unsigned bit, bool v)
    {
        (*this)[bit] = v;
    }

    /** Flip every wire whose bit is set in @p mask (toggle bank). */
    void
    toggle(const WirePlane &mask)
    {
        DESC_ASSERT(mask._bits == _bits, "plane width mismatch");
        for (std::size_t i = 0; i < _words.size(); i++)
            _words[i] ^= mask._words[i];
    }

    void
    clear()
    {
        std::fill(_words.begin(), _words.end(), std::uint64_t{0});
    }

    bool operator==(const WirePlane &o) const = default;

  private:
    unsigned _bits;
    std::vector<std::uint64_t> _words;
};

/**
 * Levels of all wires of one DESC link at one clock cycle: the data
 * strobes, the shared reset/skip strobe, and the half-frequency
 * synchronization strobe.
 */
struct WireBundle
{
    WirePlane data;
    bool reset_skip = false;
    bool sync = false;

    explicit WireBundle(unsigned wires = 0) : data(wires) {}

    void
    clear()
    {
        data.clear();
        reset_skip = false;
        sync = false;
    }
};

} // namespace desc::core

#endif // DESC_CORE_WIRES_HH
