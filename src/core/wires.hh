/**
 * @file
 * The physical wire levels connecting a DESC transmitter and receiver.
 */

#ifndef DESC_CORE_WIRES_HH
#define DESC_CORE_WIRES_HH

#include <vector>

namespace desc::core {

/**
 * Levels of all wires of one DESC link at one clock cycle: the data
 * strobes, the shared reset/skip strobe, and the half-frequency
 * synchronization strobe.
 */
struct WireBundle
{
    std::vector<bool> data;
    bool reset_skip = false;
    bool sync = false;

    explicit WireBundle(unsigned wires = 0) : data(wires, false) {}

    void
    clear()
    {
        data.assign(data.size(), false);
        reset_skip = false;
        sync = false;
    }
};

} // namespace desc::core

#endif // DESC_CORE_WIRES_HH
