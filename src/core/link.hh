/**
 * @file
 * A DESC link: transmitter and receiver coupled by ideal wires.
 *
 * The link ticks both endpoints cycle by cycle, counts every wire
 * transition, and returns the recovered block — this is the reference
 * model the fast behavioral DescScheme is validated against, and the
 * substrate for the ECC error-injection experiments (a transient
 * H-tree fault is injected as a spurious or suppressed toggle).
 */

#ifndef DESC_CORE_LINK_HH
#define DESC_CORE_LINK_HH

#include <functional>

#include "common/bitvec.hh"
#include "core/config.hh"
#include "core/receiver.hh"
#include "core/transmitter.hh"
#include "encoding/scheme.hh"

namespace desc::core {

class DescLink
{
  public:
    explicit DescLink(const DescConfig &cfg);

    /**
     * Optional wire fault hook: called once per cycle with the bundle
     * about to be observed by the receiver; mutating it injects an
     * H-tree error (used by the ECC experiments).
     */
    using FaultHook = std::function<void(Cycle, WireBundle &)>;
    void setFaultHook(FaultHook hook) { _fault = std::move(hook); }

    /**
     * Optional wire observer: called once per cycle with the bundle
     * the receiver sees (after fault injection), stamped with the
     * link's monotonic cycle count. This is the snapshot path the VCD
     * waveform export attaches to (sim/vcd.hh).
     */
    using WireHook = std::function<void(Cycle, const WireBundle &)>;
    void setWireHook(WireHook hook) { _observer = std::move(hook); }

    /**
     * Transmit @p block end to end; @p received (if non-null) gets the
     * block the receiver recovered.
     */
    encoding::TransferResult transferBlock(const BitVec &block,
                                           BitVec *received = nullptr);

    DescTransmitter &tx() { return _tx; }
    DescReceiver &rx() { return _rx; }

    void reset();

  private:
    DescConfig _cfg;
    DescTransmitter _tx;
    DescReceiver _rx;
    WireBundle _cur;  //!< reused per-cycle snapshot of the tx wires
    WireBundle _prev;
    Cycle _cycle = 0;
    FaultHook _fault;
    WireHook _observer;
};

} // namespace desc::core

#endif // DESC_CORE_LINK_HH
