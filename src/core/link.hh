/**
 * @file
 * A DESC link: transmitter and receiver coupled by ideal wires.
 *
 * The link ticks both endpoints cycle by cycle, counts every wire
 * transition, and returns the recovered block — this is the reference
 * model the fast behavioral DescScheme is validated against, and the
 * substrate for the ECC error-injection experiments (a transient
 * H-tree fault is injected as a spurious or suppressed toggle).
 *
 * Transfers that nobody watches cycle by cycle take the closed-form
 * fast path instead (DESIGN.md §10): the transmitter computes every
 * wire's toggle schedule analytically and both endpoints jump straight
 * to their post-transfer state. The result, the recovered block, and
 * all persistent state (toggle levels, last-value tables, adaptive
 * counters) are bit-identical to the ticked loop — enforced by
 * tests/core/test_link_fastpath. The ticked loop is selected
 * automatically whenever a fault hook, wire observer, or link trace
 * channel needs to see the individual cycles.
 */

#ifndef DESC_CORE_LINK_HH
#define DESC_CORE_LINK_HH

#include <functional>
#include <optional>

#include "common/bitvec.hh"
#include "core/config.hh"
#include "core/fastforward.hh"
#include "core/receiver.hh"
#include "core/transmitter.hh"
#include "encoding/scheme.hh"

namespace desc::core {

/** How DescLink::transferBlock moves a block (see defaultLinkMode). */
enum class LinkMode
{
    Auto,   //!< fast path unless a hook or link trace needs cycles
    Ticked, //!< always the cycle-accurate reference loop
    Fast,   //!< closed form even when nothing forces it (hooks still
            //!< fall back to ticked, with a one-time warning)
};

/**
 * Process-wide default link mode: Auto, overridden by the
 * DESC_LINK_MODE environment variable (auto|ticked|fast). Parsed once;
 * an unrecognized value warns and falls back to Auto.
 */
LinkMode defaultLinkMode();

/**
 * Programmatic override of defaultLinkMode(), bypassing the
 * environment latch; nullopt returns to the environment/default.
 * Affects links constructed (or re-moded) afterwards — the
 * differential tests and per-mode benchmarks use it to force each
 * engine in one process.
 */
void setDefaultLinkMode(std::optional<LinkMode> mode);

class DescLink
{
  public:
    explicit DescLink(const DescConfig &cfg);

    /**
     * Optional wire fault hook: called once per cycle with the bundle
     * about to be observed by the receiver; mutating it injects an
     * H-tree error (used by the ECC experiments).
     */
    using FaultHook = std::function<void(Cycle, WireBundle &)>;
    void setFaultHook(FaultHook hook) { _fault = std::move(hook); }

    /**
     * Optional wire observer: called once per cycle with the bundle
     * the receiver sees (after fault injection), stamped with the
     * link's monotonic cycle count. This is the snapshot path the VCD
     * waveform export attaches to (sim/vcd.hh).
     */
    using WireHook = std::function<void(Cycle, const WireBundle &)>;
    void setWireHook(WireHook hook) { _observer = std::move(hook); }

    /**
     * Transmit @p block end to end; @p received (if non-null) gets the
     * block the receiver recovered.
     */
    encoding::TransferResult transferBlock(const BitVec &block,
                                           BitVec *received = nullptr);

    /**
     * Override the mode for this link (defaults to defaultLinkMode(),
     * so tests can pin a path regardless of the environment).
     */
    void setMode(LinkMode mode) { _mode = mode; }
    LinkMode mode() const { return _mode; }

    /** Whether the most recent transferBlock took the fast path. */
    bool usedFastPath() const { return _used_fast; }

    DescTransmitter &tx() { return _tx; }
    DescReceiver &rx() { return _rx; }

    void reset();

  private:
    bool wantFastPath() const;
    encoding::TransferResult fastTransfer(const BitVec &block,
                                          BitVec *received);

    DescConfig _cfg;
    DescTransmitter _tx;
    DescReceiver _rx;
    WireBundle _cur;  //!< reused per-cycle snapshot of the tx wires
    WireBundle _prev;
    FastForwardPlan _plan; //!< preallocated fast-path scratch
    Cycle _cycle = 0;
    LinkMode _mode;
    bool _used_fast = false;
    FaultHook _fault;
    WireHook _observer;
};

} // namespace desc::core

#endif // DESC_CORE_LINK_HH
