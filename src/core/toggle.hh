/**
 * @file
 * The toggle circuits of Figure 8: generator, detector, regenerator.
 *
 * DESC signals by toggling wire levels rather than driving absolute
 * values; these three primitives are the building blocks of every
 * strobe path in the transmitter, receiver, and the shared vertical
 * H-tree segments.
 */

#ifndef DESC_CORE_TOGGLE_HH
#define DESC_CORE_TOGGLE_HH

#include <cstdint>

#include "core/wires.hh"

namespace desc::core {

/**
 * Toggle generator (Figure 8a): a flop whose output inverts every
 * time it is fired.
 */
class ToggleGenerator
{
  public:
    /** Invert the driven level (send one strobe). */
    void fire() { _level = !_level; }

    /**
     * Apply @p fires strobes at once: the level a ticked sequence of
     * that many fire() calls would leave behind (link fast path).
     */
    void
    fastForward(std::uint64_t fires)
    {
        if (fires & 1)
            _level = !_level;
    }

    bool level() const { return _level; }
    void reset() { _level = false; }

  private:
    bool _level = false;
};

/**
 * Toggle detector (Figure 8b): compares the wire against a delayed
 * copy of itself and reports a pulse whenever the level changed.
 */
class ToggleDetector
{
  public:
    /** Sample the wire; true if a toggle arrived this cycle. */
    bool
    sample(bool level)
    {
        bool toggled = level != _prev;
        _prev = level;
        return toggled;
    }

    /**
     * Jump the delayed copy straight to @p level, as if every
     * intermediate cycle had been sampled (link fast path).
     */
    void prime(bool level) { _prev = level; }

    void reset() { _prev = false; }

  private:
    bool _prev = false;
};

/**
 * A whole bank of toggle generators advanced word-wide (Figure 8a,
 * one lane per data wire): the driven levels live in a packed
 * WirePlane and firing any subset of lanes is a single XOR of a fire
 * mask into the plane (DESIGN.md §15). Behaviorally identical to one
 * ToggleGenerator per lane.
 */
class ToggleGeneratorBank
{
  public:
    explicit ToggleGeneratorBank(unsigned lanes) : _levels(lanes) {}

    /** Fire every lane whose bit is set in @p mask. */
    void fire(const WirePlane &mask) { _levels.toggle(mask); }

    /** Fire lanes [64*word, 64*word+63] selected by @p mask. */
    void
    fireWord(unsigned word, std::uint64_t mask)
    {
        _levels.mutableWords()[word] ^= mask;
    }

    /**
     * Apply a whole transfer's strobes at once: XOR in the per-lane
     * strobe parity (link fast path).
     */
    void fastForward(const WirePlane &odd) { _levels.toggle(odd); }

    const WirePlane &levels() const { return _levels; }
    bool level(unsigned lane) const { return _levels[lane]; }

    void reset() { _levels.clear(); }

  private:
    WirePlane _levels;
};

/**
 * A whole bank of toggle detectors sampled word-wide (Figure 8b, one
 * lane per data wire): the delayed copies live in a packed WirePlane,
 * so one cycle's toggles for the entire bus are the XOR of the
 * sampled plane against the delayed plane. Behaviorally identical to
 * one ToggleDetector per lane.
 */
class ToggleDetectorBank
{
  public:
    explicit ToggleDetectorBank(unsigned lanes) : _prev(lanes) {}

    /**
     * Sample all lanes at once: @p toggles receives levels XOR
     * delayed-copies, and the delayed copies become @p levels.
     */
    void
    sample(const WirePlane &levels, WirePlane &toggles)
    {
        const unsigned n = _prev.numWords();
        const std::uint64_t *in = levels.words();
        std::uint64_t *prev = _prev.mutableWords();
        std::uint64_t *out = toggles.mutableWords();
        for (unsigned i = 0; i < n; i++) {
            out[i] = in[i] ^ prev[i];
            prev[i] = in[i];
        }
    }

    /**
     * Jump every delayed copy straight to @p levels, as if each
     * intermediate cycle had been sampled (link fast path).
     */
    void prime(const WirePlane &levels) { _prev = levels; }

    const WirePlane &delayed() const { return _prev; }

    void reset() { _prev.clear(); }

  private:
    WirePlane _prev;
};

/**
 * Toggle regenerator (Figure 8c): forwards toggles from one of two
 * H-tree branches upstream, remembering the previous level of each
 * branch segment (used where wires are shared between subbanks).
 */
class ToggleRegenerator
{
  public:
    /**
     * Sample both branch levels; if the selected branch toggled, the
     * output toggles. Returns the regenerated output level.
     */
    bool
    sample(bool branch0, bool branch1, bool select)
    {
        bool in = select ? branch1 : branch0;
        bool &prev = select ? _prev1 : _prev0;
        if (in != prev)
            _out.fire();
        prev = in;
        return _out.level();
    }

    bool level() const { return _out.level(); }

    void
    reset()
    {
        _prev0 = _prev1 = false;
        _out.reset();
    }

  private:
    bool _prev0 = false;
    bool _prev1 = false;
    ToggleGenerator _out;
};

} // namespace desc::core

#endif // DESC_CORE_TOGGLE_HH
