/**
 * @file
 * The toggle circuits of Figure 8: generator, detector, regenerator.
 *
 * DESC signals by toggling wire levels rather than driving absolute
 * values; these three primitives are the building blocks of every
 * strobe path in the transmitter, receiver, and the shared vertical
 * H-tree segments.
 */

#ifndef DESC_CORE_TOGGLE_HH
#define DESC_CORE_TOGGLE_HH

namespace desc::core {

/**
 * Toggle generator (Figure 8a): a flop whose output inverts every
 * time it is fired.
 */
class ToggleGenerator
{
  public:
    /** Invert the driven level (send one strobe). */
    void fire() { _level = !_level; }

    /**
     * Apply @p fires strobes at once: the level a ticked sequence of
     * that many fire() calls would leave behind (link fast path).
     */
    void
    fastForward(std::uint64_t fires)
    {
        if (fires & 1)
            _level = !_level;
    }

    bool level() const { return _level; }
    void reset() { _level = false; }

  private:
    bool _level = false;
};

/**
 * Toggle detector (Figure 8b): compares the wire against a delayed
 * copy of itself and reports a pulse whenever the level changed.
 */
class ToggleDetector
{
  public:
    /** Sample the wire; true if a toggle arrived this cycle. */
    bool
    sample(bool level)
    {
        bool toggled = level != _prev;
        _prev = level;
        return toggled;
    }

    /**
     * Jump the delayed copy straight to @p level, as if every
     * intermediate cycle had been sampled (link fast path).
     */
    void prime(bool level) { _prev = level; }

    void reset() { _prev = false; }

  private:
    bool _prev = false;
};

/**
 * Toggle regenerator (Figure 8c): forwards toggles from one of two
 * H-tree branches upstream, remembering the previous level of each
 * branch segment (used where wires are shared between subbanks).
 */
class ToggleRegenerator
{
  public:
    /**
     * Sample both branch levels; if the selected branch toggled, the
     * output toggles. Returns the regenerated output level.
     */
    bool
    sample(bool branch0, bool branch1, bool select)
    {
        bool in = select ? branch1 : branch0;
        bool &prev = select ? _prev1 : _prev0;
        if (in != prev)
            _out.fire();
        prev = in;
        return _out.level();
    }

    bool level() const { return _out.level(); }

    void
    reset()
    {
        _prev0 = _prev1 = false;
        _out.reset();
    }

  private:
    bool _prev0 = false;
    bool _prev1 = false;
    ToggleGenerator _out;
};

} // namespace desc::core

#endif // DESC_CORE_TOGGLE_HH
