#include "core/transmitter.hh"

#include <algorithm>

#include "common/contract.hh"
#include "common/trace.hh"
#include "core/chunk.hh"
#include "core/timing.hh"

namespace desc::core {

const char *
skipModeName(SkipMode mode)
{
    switch (mode) {
      case SkipMode::None:
        return "basic";
      case SkipMode::Zero:
        return "zero-skipped";
      case SkipMode::LastValue:
        return "last-value-skipped";
      case SkipMode::Adaptive:
        return "adaptive-skipped";
    }
    DESC_PANIC("bad skip mode");
}

DescTransmitter::DescTransmitter(const DescConfig &cfg)
    : _cfg(cfg), _wires(cfg.activeWires()),
      _last(cfg.activeWires(), 0),
      _adaptive(cfg.activeWires(), cfg.chunk_bits),
      _plane_words((cfg.activeWires() + 63) / 64),
      _wave_open_cycle(cfg.numWaves(), 0),
      _wave_window_of(cfg.numWaves(), 0),
      _wave_skipped_of(cfg.numWaves(), 0),
      _basic_cum(cfg.activeWires(), 0)
{
    _cfg.validate();
    // Upper bound on a block's cycles in either mode: the opening
    // pulse plus numWaves chunks of at most maxValue()+1 cycles each
    // on the slowest wire.
    const unsigned max_cycles =
        1 + _cfg.numWaves() * (_cfg.maxValue() + 1);
    _sched_fire.resize(std::size_t{max_cycles} * _plane_words, 0);
    _sched_reset.resize(max_cycles, 0);
}

std::uint8_t
DescTransmitter::skipValueFor(unsigned wire) const
{
    switch (_cfg.skip) {
      case SkipMode::Zero:
        return 0;
      case SkipMode::LastValue:
        return _last[wire];
      case SkipMode::Adaptive:
        return _adaptive.best(wire);
      case SkipMode::None:
        break;
    }
    DESC_PANIC("skip value requested without value skipping");
}

std::uint64_t *
DescTransmitter::planeAt(unsigned cycle)
{
    DESC_ASSERT(cycle >= 1 && cycle <= _sched_reset.size(),
                "scheduled cycle outside the preallocated planes");
    return &_sched_fire[std::size_t{cycle - 1} * _plane_words];
}

/**
 * Basic (no-skip) schedule: the reset pulse occupies cycle 1, then
 * each wire streams its chunks back to back — a chunk's strobe lands
 * chunkCycles(v) cycles after the wire's previous strobe (or the
 * pulse). The block ends with the slowest wire's last strobe.
 */
void
DescTransmitter::scheduleBasic(const BitVec &block)
{
    const unsigned wires = _cfg.activeWires();
    const unsigned chunk_bits = _cfg.chunk_bits;
    const unsigned n = _cfg.numChunks();

    _sched_reset[0] = 1;
    std::fill(_basic_cum.begin(), _basic_cum.end(), 0u);

    BitCursor cur(block);
    unsigned wire = 0;
    unsigned window = 0;
    for (unsigned i = 0; i < n; i++) {
        std::uint64_t v = cur.next(chunk_bits);
        _basic_cum[wire] += chunkCycles(v, false, 0);
        planeAt(1 + _basic_cum[wire])[wire / 64] ^=
            std::uint64_t{1} << (wire % 64);
        if (_basic_cum[wire] > window)
            window = _basic_cum[wire];
        _last[wire] = std::uint8_t(v);
        if (++wire == wires)
            wire = 0;
    }
    _sched_len = 1 + window;
    _next_trace_wave = _cfg.numWaves(); // no wave-open trace events
}

/**
 * Value-skipped schedule: waves of one chunk per wire, each opened by
 * a (merged) reset/skip pulse; skipped chunks stay silent and the
 * final wave closes with an extra pulse only if it skipped anything.
 */
void
DescTransmitter::scheduleWaves(const BitVec &block)
{
    const unsigned wires = _cfg.activeWires();
    const unsigned waves = _cfg.numWaves();
    const unsigned chunk_bits = _cfg.chunk_bits;

    _sched_reset[0] = 1; // opening pulse of wave 0 fires in cycle 1
    BitCursor cur(block);
    unsigned open = 1; // cycle of the current wave's opening pulse
    for (unsigned g = 0; g < waves; g++) {
        unsigned window = 0;
        bool any_skipped = false;
        for (unsigned w = 0; w < wires; w++) {
            std::uint8_t v = std::uint8_t(cur.next(chunk_bits));
            std::uint8_t s = skipValueFor(w);
            if (v == s) {
                any_skipped = true;
            } else {
                unsigned c = chunkCycles(v, true, s);
                planeAt(open + c)[w / 64] ^= std::uint64_t{1} << (w % 64);
                if (c > window)
                    window = c;
            }
            _last[w] = v;
            if (_cfg.skip == SkipMode::Adaptive)
                _adaptive.update(w, v);
        }
        // An all-skipped wave still needs one cycle before the closing
        // pulse can toggle the shared wire again.
        if (window == 0)
            window = 1;
        _wave_open_cycle[g] = open;
        _wave_window_of[g] = window;
        _wave_skipped_of[g] = any_skipped;
        open += window;
        if (g + 1 < waves)
            _sched_reset[open - 1] = 1; // merged close/open pulse
        else if (any_skipped)
            _sched_reset[open - 1] = 1; // final closing pulse
    }
    _sched_len = open; // == 1 + sum of windows
    _next_trace_wave = 0;
}

void
DescTransmitter::loadBlock(const BitVec &block)
{
    DESC_ASSERT(!_busy, "loadBlock while a transfer is in flight");
    DESC_ASSERT(block.width() == _cfg.block_bits, "block width mismatch");

    DESC_TRACE_EVENT(Link, _ticks, "tx: block loaded: ", _cfg.numChunks(),
                     " chunks on ", _cfg.activeWires(), " wires, ",
                     _cfg.numWaves(), " wave(s), ",
                     skipModeName(_cfg.skip));

    // The fire planes are consumed by XOR, so clear the previously
    // used region before staging the new block's strobes.
    std::fill_n(_sched_fire.begin(),
                std::size_t{_sched_len} * _plane_words, std::uint64_t{0});
    std::fill_n(_sched_reset.begin(), _sched_len, std::uint8_t{0});
    _sched_pos = 0;

    if (_cfg.skip == SkipMode::None)
        scheduleBasic(block);
    else
        scheduleWaves(block);
    DESC_ASSERT(_sched_len <= _sched_reset.size(),
                "block schedule overflows its preallocated planes");
    _busy = true;
}

void
DescTransmitter::fastForwardBlock(const BitVec &block, FastForwardPlan &plan)
{
    DESC_ASSERT(!_busy, "fastForwardBlock while a transfer is in flight");
    DESC_ASSERT(block.width() == _cfg.block_bits, "block width mismatch");

    const unsigned wires = _cfg.activeWires();
    const unsigned waves = _cfg.numWaves();
    const unsigned chunk_bits = _cfg.chunk_bits;

    plan.result = encoding::TransferResult{};
    plan.reset_flips = 1; // opening pulse
    plan.final_window = 0;
    plan.final_any_skipped = false;
    plan.final_got_count = 0;

    BitCursor cur(block);
    Cycle cycles;

    if (_cfg.skip == SkipMode::None) {
        // One opening pulse, then every wire streams its chunks back
        // to back; the block completes with the slowest wire's last
        // strobe. final_elapsed accumulates each wire's strobe time,
        // then flips into the receiver's idle-cycle counters.
        std::fill(plan.final_elapsed.begin(), plan.final_elapsed.end(),
                  0u);
        for (unsigned g = 0; g < waves; g++) {
            for (unsigned w = 0; w < wires; w++) {
                std::uint64_t v = cur.next(chunk_bits);
                plan.final_elapsed[w] += chunkCycles(v, false, 0);
                _last[w] = std::uint8_t(v);
            }
        }
        unsigned window = 0;
        for (unsigned w = 0; w < wires; w++) {
            if (plan.final_elapsed[w] > window)
                window = plan.final_elapsed[w];
        }
        for (unsigned w = 0; w < wires; w++)
            plan.final_elapsed[w] = window - plan.final_elapsed[w];
        cycles = 1 + window;
        plan.result.data_flips = _cfg.numChunks();
        std::fill(plan.strobe_odd.begin(), plan.strobe_odd.end(),
                  std::uint8_t(waves & 1));
    } else {
        // Waves of one chunk per wire; the pulse closing a wave is
        // merged with the next wave's opening pulse.
        std::fill(plan.strobe_odd.begin(), plan.strobe_odd.end(),
                  std::uint8_t{0});
        cycles = 1; // opening pulse of wave 0
        for (unsigned g = 0; g < waves; g++) {
            const bool final_wave = g + 1 == waves;
            unsigned window = 0;
            bool any_skipped = false;
            for (unsigned w = 0; w < wires; w++) {
                std::uint8_t v = std::uint8_t(cur.next(chunk_bits));
                std::uint8_t s = skipValueFor(w);
                if (v != s) {
                    plan.result.data_flips++;
                    plan.strobe_odd[w] ^= 1;
                    unsigned c = chunkCycles(v, true, s);
                    if (c > window)
                        window = c;
                } else {
                    any_skipped = true;
                    plan.result.skipped++;
                }
                if (final_wave) {
                    plan.final_got[w] = std::uint8_t(v != s);
                    plan.final_skipv[w] = s;
                    plan.final_got_count += v != s;
                }
                _last[w] = v;
                if (_cfg.skip == SkipMode::Adaptive)
                    _adaptive.update(w, v);
            }
            // An all-skipped wave still needs one cycle before the
            // closing pulse can toggle the shared wire again.
            if (window == 0)
                window = 1;
            cycles += window;
            if (!final_wave)
                plan.reset_flips++; // merged close/open
            else if (any_skipped)
                plan.reset_flips++; // final closing pulse
            if (final_wave) {
                plan.final_window = window;
                plan.final_any_skipped = any_skipped;
            }
        }
    }

    plan.result.cycles = cycles;
    // One sync-strobe transition per busy cycle plus the reset pulses.
    plan.result.control_flips = plan.reset_flips + cycles;

    std::copy(_last.begin(), _last.end(), plan.final_vals.begin());

    // Land the toggle levels and the trace clock exactly where the
    // ticked loop would have left them.
    _ticks += cycles;
    _sync_tg.fastForward(cycles);
    _reset_tg.fastForward(plan.reset_flips);
    std::uint64_t *lv = _wires.data.mutableWords();
    for (unsigned w = 0; w < wires; w++) {
        if (plan.strobe_odd[w])
            lv[w / 64] ^= std::uint64_t{1} << (w % 64);
    }
    _wires.reset_skip = _reset_tg.level();
    _wires.sync = _sync_tg.level();
}

void
DescTransmitter::tick()
{
    if (!_busy)
        return;
    _ticks++;

    // The synchronization strobe toggles every cycle of an ongoing
    // transfer (half-frequency clock forwarding, Section 3.1).
    _sync_tg.fire();

    const unsigned i = ++_sched_pos; // 1-based cycle within the block
    if (_next_trace_wave < _cfg.numWaves()
        && i == _wave_open_cycle[_next_trace_wave]) {
        DESC_TRACE_EVENT(Link, _ticks, "tx: wave ", _next_trace_wave,
                         " open, window ",
                         _wave_window_of[_next_trace_wave], " cycles",
                         _wave_skipped_of[_next_trace_wave]
                             ? ", has skipped chunks" : "");
        _next_trace_wave++;
    }

    // One cycle of the whole bus: XOR the precomputed fire plane into
    // the level plane, then the two scalar control toggles.
    const std::uint64_t *fire = planeAt(i);
    std::uint64_t *lv = _wires.data.mutableWords();
    for (unsigned k = 0; k < _plane_words; k++)
        lv[k] ^= fire[k];
    if (_sched_reset[i - 1])
        _reset_tg.fire();
    _wires.reset_skip = _reset_tg.level();
    _wires.sync = _sync_tg.level();

    if (i == _sched_len)
        _busy = false;
}

void
DescTransmitter::reset()
{
    _reset_tg.reset();
    _sync_tg.reset();
    std::fill(_last.begin(), _last.end(), 0);
    _wires.clear();
    _busy = false;
    std::fill(_sched_fire.begin(), _sched_fire.end(), std::uint64_t{0});
    std::fill(_sched_reset.begin(), _sched_reset.end(), std::uint8_t{0});
    _sched_len = 0;
    _sched_pos = 0;
    _next_trace_wave = 0;
    _adaptive.reset();
}

} // namespace desc::core
