#include "core/transmitter.hh"

#include <algorithm>

#include "common/contract.hh"
#include "common/trace.hh"
#include "core/chunk.hh"
#include "core/timing.hh"

namespace desc::core {

const char *
skipModeName(SkipMode mode)
{
    switch (mode) {
      case SkipMode::None:
        return "basic";
      case SkipMode::Zero:
        return "zero-skipped";
      case SkipMode::LastValue:
        return "last-value-skipped";
      case SkipMode::Adaptive:
        return "adaptive-skipped";
    }
    DESC_PANIC("bad skip mode");
}

DescTransmitter::DescTransmitter(const DescConfig &cfg)
    : _cfg(cfg), _wires(cfg.activeWires()),
      _data_tg(cfg.activeWires()),
      _fifos(cfg.activeWires()),
      _last(cfg.activeWires(), 0),
      _adaptive(cfg.activeWires(), cfg.chunk_bits),
      _countdown(cfg.activeWires(), 0)
{
    _cfg.validate();
}

std::uint8_t
DescTransmitter::skipValueFor(unsigned wire) const
{
    switch (_cfg.skip) {
      case SkipMode::Zero:
        return 0;
      case SkipMode::LastValue:
        return _last[wire];
      case SkipMode::Adaptive:
        return _adaptive.best(wire);
      case SkipMode::None:
        break;
    }
    DESC_PANIC("skip value requested without value skipping");
}

void
DescTransmitter::loadBlock(const BitVec &block)
{
    DESC_ASSERT(!_busy, "loadBlock while a transfer is in flight");
    DESC_ASSERT(block.width() == _cfg.block_bits, "block width mismatch");

    const unsigned wires = _cfg.activeWires();
    const unsigned chunk_bits = _cfg.chunk_bits;
    const unsigned n = block.width() / chunk_bits;
    BitCursor cur(block);
    unsigned wire = 0;
    for (unsigned i = 0; i < n; i++) {
        _fifos[wire].push(std::uint8_t(cur.next(chunk_bits)));
        if (++wire == wires)
            wire = 0;
    }

    DESC_TRACE_EVENT(Link, _ticks, "tx: block loaded: ", n,
                     " chunks on ", wires, " wires, ",
                     _cfg.numWaves(), " wave(s), ",
                     skipModeName(_cfg.skip));

    _busy = true;
    if (_cfg.skip == SkipMode::None) {
        _need_reset_pulse = true;
        _wires_pending = wires;
    } else {
        _wave = 0;
        _wave_tick = 0;
        // The opening pulse of wave 0 fires on the first tick.
        _wave_window = 0;
        _wave_any_skipped = false;
        _need_reset_pulse = true;
    }
}

void
DescTransmitter::openWave()
{
    // Fires the (merged) reset/skip pulse and schedules one chunk per
    // wire for the new wave.
    _reset_tg.fire();
    _wave_tick = 0;
    _wave_window = 0;
    _wave_any_skipped = false;

    unsigned wires = _cfg.activeWires();
    for (unsigned w = 0; w < wires; w++) {
        std::uint8_t v = _fifos[w].pop();
        std::uint8_t s = skipValueFor(w);
        if (v == s) {
            _wave_any_skipped = true;
            _countdown[w] = 0;
        } else {
            _countdown[w] = chunkCycles(v, true, s);
            if (_countdown[w] > _wave_window)
                _wave_window = _countdown[w];
        }
        _last[w] = v;
        if (_cfg.skip == SkipMode::Adaptive)
            _adaptive.update(w, v);
    }
    // An all-skipped wave still needs one cycle before the closing
    // pulse can toggle the shared wire again.
    if (_wave_window == 0)
        _wave_window = 1;

    DESC_TRACE_EVENT(Link, _ticks, "tx: wave ", _wave, " open, window ",
                     _wave_window, " cycles",
                     _wave_any_skipped ? ", has skipped chunks" : "");
}

void
DescTransmitter::fastForwardBlock(const BitVec &block, FastForwardPlan &plan)
{
    DESC_ASSERT(!_busy, "fastForwardBlock while a transfer is in flight");
    DESC_ASSERT(block.width() == _cfg.block_bits, "block width mismatch");

    const unsigned wires = _cfg.activeWires();
    const unsigned waves = _cfg.numWaves();
    const unsigned chunk_bits = _cfg.chunk_bits;

    plan.result = encoding::TransferResult{};
    plan.reset_flips = 1; // opening pulse
    plan.final_window = 0;
    plan.final_any_skipped = false;
    plan.final_got_count = 0;

    BitCursor cur(block);
    Cycle cycles;

    if (_cfg.skip == SkipMode::None) {
        // One opening pulse, then every wire streams its chunks back
        // to back; the block completes with the slowest wire's last
        // strobe. final_elapsed accumulates each wire's strobe time,
        // then flips into the receiver's idle-cycle counters.
        std::fill(plan.final_elapsed.begin(), plan.final_elapsed.end(),
                  0u);
        for (unsigned g = 0; g < waves; g++) {
            for (unsigned w = 0; w < wires; w++) {
                std::uint64_t v = cur.next(chunk_bits);
                plan.final_elapsed[w] += chunkCycles(v, false, 0);
                _last[w] = std::uint8_t(v);
            }
        }
        unsigned window = 0;
        for (unsigned w = 0; w < wires; w++) {
            if (plan.final_elapsed[w] > window)
                window = plan.final_elapsed[w];
        }
        for (unsigned w = 0; w < wires; w++)
            plan.final_elapsed[w] = window - plan.final_elapsed[w];
        cycles = 1 + window;
        plan.result.data_flips = _cfg.numChunks();
        std::fill(plan.strobe_odd.begin(), plan.strobe_odd.end(),
                  std::uint8_t(waves & 1));
        _wires_pending = 0;
    } else {
        // Waves of one chunk per wire; the pulse closing a wave is
        // merged with the next wave's opening pulse.
        std::fill(plan.strobe_odd.begin(), plan.strobe_odd.end(),
                  std::uint8_t{0});
        cycles = 1; // opening pulse of wave 0
        for (unsigned g = 0; g < waves; g++) {
            const bool final_wave = g + 1 == waves;
            unsigned window = 0;
            bool any_skipped = false;
            for (unsigned w = 0; w < wires; w++) {
                std::uint8_t v = std::uint8_t(cur.next(chunk_bits));
                std::uint8_t s = skipValueFor(w);
                if (v != s) {
                    plan.result.data_flips++;
                    plan.strobe_odd[w] ^= 1;
                    unsigned c = chunkCycles(v, true, s);
                    if (c > window)
                        window = c;
                } else {
                    any_skipped = true;
                    plan.result.skipped++;
                }
                if (final_wave) {
                    plan.final_got[w] = std::uint8_t(v != s);
                    plan.final_skipv[w] = s;
                    plan.final_got_count += v != s;
                }
                _last[w] = v;
                if (_cfg.skip == SkipMode::Adaptive)
                    _adaptive.update(w, v);
            }
            // An all-skipped wave still needs one cycle before the
            // closing pulse can toggle the shared wire again.
            if (window == 0)
                window = 1;
            cycles += window;
            if (!final_wave)
                plan.reset_flips++; // merged close/open
            else if (any_skipped)
                plan.reset_flips++; // final closing pulse
            if (final_wave) {
                plan.final_window = window;
                plan.final_any_skipped = any_skipped;
            }
        }
        _wave = waves;
        _wave_tick = plan.final_window;
        _wave_window = plan.final_window;
        _wave_any_skipped = plan.final_any_skipped;
    }

    plan.result.cycles = cycles;
    // One sync-strobe transition per busy cycle plus the reset pulses.
    plan.result.control_flips = plan.reset_flips + cycles;

    std::copy(_last.begin(), _last.end(), plan.final_vals.begin());

    // Land the toggle levels and the trace clock exactly where the
    // ticked loop would have left them.
    _ticks += cycles;
    _sync_tg.fastForward(cycles);
    _reset_tg.fastForward(plan.reset_flips);
    for (unsigned w = 0; w < wires; w++) {
        _data_tg[w].fastForward(plan.strobe_odd[w]);
        _wires.data[w] = _data_tg[w].level();
    }
    _wires.reset_skip = _reset_tg.level();
    _wires.sync = _sync_tg.level();
    _need_reset_pulse = false;
}

void
DescTransmitter::tick()
{
    if (!_busy)
        return;
    _ticks++;

    // The synchronization strobe toggles every cycle of an ongoing
    // transfer (half-frequency clock forwarding, Section 3.1).
    _sync_tg.fire();

    unsigned wires = _cfg.activeWires();

    if (_cfg.skip == SkipMode::None) {
        if (_need_reset_pulse) {
            _need_reset_pulse = false;
            _reset_tg.fire();
            for (unsigned w = 0; w < wires; w++)
                _countdown[w] = chunkCycles(_fifos[w].front(), false, 0);
        } else {
            for (unsigned w = 0; w < wires; w++) {
                if (_countdown[w] == 0)
                    continue;
                if (--_countdown[w] == 0) {
                    _data_tg[w].fire();
                    _last[w] = _fifos[w].pop();
                    if (!_fifos[w].empty()) {
                        _countdown[w] =
                            chunkCycles(_fifos[w].front(), false, 0);
                    } else {
                        _wires_pending--;
                    }
                }
            }
            if (_wires_pending == 0)
                _busy = false;
        }
    } else {
        if (_need_reset_pulse) {
            _need_reset_pulse = false;
            openWave();
        } else {
            _wave_tick++;
            for (unsigned w = 0; w < wires; w++) {
                if (_countdown[w] != 0 && --_countdown[w] == 0)
                    _data_tg[w].fire();
            }
            if (_wave_tick == _wave_window) {
                _wave++;
                if (_wave < _cfg.numWaves()) {
                    // Merged close/open pulse (may be concurrent with
                    // the last data strobe of the finished wave).
                    openWave();
                } else {
                    if (_wave_any_skipped)
                        _reset_tg.fire();
                    _busy = false;
                }
            }
        }
    }

    // Drive the wires with the toggle-generator outputs.
    for (unsigned w = 0; w < wires; w++)
        _wires.data[w] = _data_tg[w].level();
    _wires.reset_skip = _reset_tg.level();
    _wires.sync = _sync_tg.level();
}

void
DescTransmitter::reset()
{
    for (auto &tg : _data_tg)
        tg.reset();
    _reset_tg.reset();
    _sync_tg.reset();
    for (auto &f : _fifos)
        f.clear();
    std::fill(_last.begin(), _last.end(), 0);
    std::fill(_countdown.begin(), _countdown.end(), 0);
    _wires.clear();
    _busy = false;
    _need_reset_pulse = false;
    _wires_pending = 0;
    _wave = _wave_tick = _wave_window = 0;
    _wave_any_skipped = false;
    _adaptive.reset();
}

} // namespace desc::core
