/**
 * @file
 * TransferScheme adapter over a full DescLink.
 *
 * Exposes the cycle-accurate transmitter/receiver pair behind the same
 * interface as the behavioral DescScheme, so the cache hierarchy can
 * drive real links instead of the block-level model
 * (L2Config::link_backed). With the link fast path (DESIGN.md §10)
 * this costs close to the behavioral model while keeping the option of
 * attaching per-cycle hooks (VCD export, fault injection), which
 * transparently switch the link back to its ticked reference loop.
 * name() returns the same strings as DescScheme so reports are
 * unchanged by the backing choice.
 */

#ifndef DESC_CORE_LINKSCHEME_HH
#define DESC_CORE_LINKSCHEME_HH

#include "core/config.hh"
#include "core/link.hh"
#include "encoding/scheme.hh"

namespace desc::core {

class LinkDescScheme : public encoding::TransferScheme
{
  public:
    explicit LinkDescScheme(const DescConfig &cfg);

    encoding::TransferResult
    transfer(const BitVec &block) override
    {
        return _link.transferBlock(block);
    }

    unsigned dataWires() const override { return _cfg.activeWires(); }
    unsigned controlWires() const override { return 2; }
    const char *name() const override;
    void reset() override { _link.reset(); }

    /** The underlying link, e.g. to attach hooks or pin a mode. */
    DescLink &link() { return _link; }

    const DescConfig &config() const { return _cfg; }

  private:
    DescConfig _cfg;
    DescLink _link;
};

} // namespace desc::core

#endif // DESC_CORE_LINKSCHEME_HH
