/**
 * @file
 * Cycle-accurate DESC transmitter (Sections 3.1, 3.2.1, 3.3).
 *
 * The transmitter enqueues a block's chunks into per-wire FIFOs and
 * signals each chunk by toggling its wire after chunkCycles(value)
 * cycles. Without value skipping, a single reset pulse opens the block
 * and the wires stream their queues back to back. With value skipping
 * the transfer proceeds in waves of one chunk per wire: a reset/skip
 * pulse opens each wave, chunks equal to the wire's skip value stay
 * silent, and the pulse that opens the next wave (or the final close
 * pulse) tells the receiver to substitute the skip value for every
 * silent wire.
 *
 * Timing convention: the opening pulse occupies one cycle; a chunk's
 * data strobe fires chunkCycles(v) cycles after the wave opens (or
 * after the wire's previous strobe in basic mode). The wave-closing
 * pulse is merged with the next wave's opening pulse and may be
 * concurrent with the last data strobe of its wave (the receiver
 * processes data strobes first).
 */

#ifndef DESC_CORE_TRANSMITTER_HH
#define DESC_CORE_TRANSMITTER_HH

#include <vector>

#include "common/bitvec.hh"
#include "core/config.hh"
#include "core/adaptive.hh"
#include "core/fastforward.hh"
#include "core/fifo.hh"
#include "core/toggle.hh"
#include "core/wires.hh"

namespace desc::core {

class DescTransmitter
{
  public:
    explicit DescTransmitter(const DescConfig &cfg);

    /** True while a block transfer is in flight. */
    bool busy() const { return _busy; }

    /** Begin transmitting @p block. @pre !busy(). */
    void loadBlock(const BitVec &block);

    /** Advance one clock cycle, updating the driven wire levels. */
    void tick();

    /**
     * Transmit @p block in closed form: fill @p plan with the transfer
     * outcome and leave the transmitter in exactly the state a
     * loadBlock() followed by ticks to completion would have produced
     * (wire levels, last-value table, adaptive counters, wave
     * bookkeeping, trace clock). @pre !busy(); never allocates.
     */
    void fastForwardBlock(const BitVec &block, FastForwardPlan &plan);

    /** Wire levels after the latest tick. */
    const WireBundle &wires() const { return _wires; }

    /** Last value transmitted per wire (the last-value skip table). */
    const std::vector<std::uint8_t> &lastValues() const { return _last; }

    /** The frequent-value tracker driving adaptive skipping. */
    const AdaptiveTracker &adaptive() const { return _adaptive; }

    /** Return all wires and internal state to idle. */
    void reset();

  private:
    std::uint8_t skipValueFor(unsigned wire) const;
    void openWave();

    DescConfig _cfg;
    WireBundle _wires;

    /** Lifetime tick count (trace timestamps only). */
    std::uint64_t _ticks = 0;

    std::vector<ToggleGenerator> _data_tg;
    ToggleGenerator _reset_tg;
    ToggleGenerator _sync_tg;

    std::vector<Fifo<std::uint8_t>> _fifos;
    std::vector<std::uint8_t> _last;
    AdaptiveTracker _adaptive;

    bool _busy = false;

    /** Per-wire cycles until the next data strobe (0 = idle). */
    std::vector<unsigned> _countdown;

    // Basic (no-skip) mode.
    bool _need_reset_pulse = false;
    unsigned _wires_pending = 0;

    // Wave machine (skip modes).
    unsigned _wave = 0;
    unsigned _wave_tick = 0;
    unsigned _wave_window = 0;
    bool _wave_any_skipped = false;
};

} // namespace desc::core

#endif // DESC_CORE_TRANSMITTER_HH
