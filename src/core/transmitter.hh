/**
 * @file
 * Cycle-accurate DESC transmitter (Sections 3.1, 3.2.1, 3.3).
 *
 * The transmitter signals each chunk by toggling its wire after
 * chunkCycles(value) cycles. Without value skipping, a single reset
 * pulse opens the block and the wires stream their chunks back to
 * back. With value skipping the transfer proceeds in waves of one
 * chunk per wire: a reset/skip pulse opens each wave, chunks equal to
 * the wire's skip value stay silent, and the pulse that opens the
 * next wave (or the final close pulse) tells the receiver to
 * substitute the skip value for every silent wire.
 *
 * Timing convention: the opening pulse occupies one cycle; a chunk's
 * data strobe fires chunkCycles(v) cycles after the wave opens (or
 * after the wire's previous strobe in basic mode). The wave-closing
 * pulse is merged with the next wave's opening pulse and may be
 * concurrent with the last data strobe of its wave (the receiver
 * processes data strobes first).
 *
 * The ticked engine is bit-plane SWAR (DESIGN.md §15): loadBlock()
 * precomputes the whole block's toggle schedule as packed fire
 * planes — the strobe pattern of a cycle is invisible to any
 * observer until that cycle's wires() snapshot, so the schedule can
 * be resolved up front — and tick() reduces to XORing one plane into
 * the level plane plus two scalar control toggles. All schedule
 * storage is sized at construction; the per-block path never
 * allocates.
 */

#ifndef DESC_CORE_TRANSMITTER_HH
#define DESC_CORE_TRANSMITTER_HH

#include <vector>

#include "common/bitvec.hh"
#include "core/config.hh"
#include "core/adaptive.hh"
#include "core/fastforward.hh"
#include "core/toggle.hh"
#include "core/wires.hh"

namespace desc::core {

class DescTransmitter
{
  public:
    explicit DescTransmitter(const DescConfig &cfg);

    /** True while a block transfer is in flight. */
    bool busy() const { return _busy; }

    /** Begin transmitting @p block. @pre !busy(). */
    void loadBlock(const BitVec &block);

    /** Advance one clock cycle, updating the driven wire levels. */
    void tick();

    /**
     * Transmit @p block in closed form: fill @p plan with the transfer
     * outcome and leave the transmitter in exactly the state a
     * loadBlock() followed by ticks to completion would have produced
     * (wire levels, last-value table, adaptive counters, trace
     * clock). @pre !busy(); never allocates.
     */
    void fastForwardBlock(const BitVec &block, FastForwardPlan &plan);

    /** Wire levels after the latest tick. */
    const WireBundle &wires() const { return _wires; }

    /** Last value transmitted per wire (the last-value skip table). */
    const std::vector<std::uint8_t> &lastValues() const { return _last; }

    /** The frequent-value tracker driving adaptive skipping. */
    const AdaptiveTracker &adaptive() const { return _adaptive; }

    /** Return all wires and internal state to idle. */
    void reset();

  private:
    std::uint8_t skipValueFor(unsigned wire) const;
    std::uint64_t *planeAt(unsigned cycle);
    void scheduleBasic(const BitVec &block);
    void scheduleWaves(const BitVec &block);

    DescConfig _cfg;
    WireBundle _wires;

    /** Lifetime tick count (trace timestamps only). */
    std::uint64_t _ticks = 0;

    ToggleGenerator _reset_tg;
    ToggleGenerator _sync_tg;

    std::vector<std::uint8_t> _last;
    AdaptiveTracker _adaptive;

    bool _busy = false;

    // Precomputed block schedule (ticked path). Cycle i of the block
    // (1-based) XORs fire plane i-1 into the data levels; _sched_reset
    // flags the cycles whose (merged) reset/skip pulse fires.
    unsigned _plane_words;                  //!< words per fire plane
    std::vector<std::uint64_t> _sched_fire; //!< flattened fire planes
    std::vector<std::uint8_t> _sched_reset;
    unsigned _sched_len = 0; //!< cycles in the scheduled block
    unsigned _sched_pos = 0; //!< cycles already ticked

    // Wave-open trace metadata: wave g's merged pulse fires in block
    // cycle _wave_open_cycle[g] with the recorded window (skip modes).
    std::vector<unsigned> _wave_open_cycle;
    std::vector<unsigned> _wave_window_of;
    std::vector<std::uint8_t> _wave_skipped_of;
    unsigned _next_trace_wave = 0;

    /** Per-wire running strobe time (basic-mode scheduling scratch). */
    std::vector<unsigned> _basic_cum;
};

} // namespace desc::core

#endif // DESC_CORE_TRANSMITTER_HH
