#include "encoding/businvert.hh"

#include <bit>

#include "common/contract.hh"
#include "common/log.hh"

namespace desc::encoding {

namespace {

/** Segments packed per 32-bit word of the encoded mode bus (3^20 fits
 *  in 32 bits, giving ~1.6 mode bits per segment). */
constexpr unsigned kSegsPerModeWord = 20;

} // namespace

/** Table-pass gate: 4^(b+1) entries stay small only for b <= 6. */
constexpr unsigned kMaxTableSegBits = 6;

BusInvertScheme::BusInvertScheme(const SchemeConfig &cfg, Mode mode)
    : _wires(cfg.bus_wires), _block_bits(cfg.block_bits),
      _seg_bits(cfg.segment_bits), _mode(mode), _state(cfg.bus_wires)
{
    DESC_ASSERT(_seg_bits > 0 && _seg_bits <= 64,
                "segment size must be 1..64 bits: ", _seg_bits);
    DESC_ASSERT(_wires % _seg_bits == 0,
                "bus width ", _wires, " not divisible by segment ",
                _seg_bits);
    _beats = (_block_bits + _wires - 1) / _wires;
    _num_segs = _wires / _seg_bits;
    _inv_state.assign(_num_segs, false);
    _skip_state.assign(_num_segs, false);
    _mode_state.assign((_num_segs + kSegsPerModeWord - 1) / kSegsPerModeWord,
                       0);
    if (defaultEncoderMode() != EncoderMode::Scalar
        && _seg_bits <= kMaxTableSegBits) {
        buildTable();
        _seg_old.assign(_num_segs, 0);
        _seg_flags.assign(_num_segs, 0);
        _seg_modes.assign(_num_segs, SegMode::AsIs);
    }
}

void
BusInvertScheme::buildTable()
{
    // Enumerate every (value, old, inv, skip) segment state once and
    // record the decision the reference loop in transferScalar()
    // would take; the hot loop then replays decisions with one load
    // per segment. The differential suite pins the two paths against
    // each other.
    const unsigned b = _seg_bits;
    const std::uint64_t seg_mask = (std::uint64_t{1} << b) - 1;
    const bool sparse = _mode == Mode::ZeroSkipSparse;
    const bool skip_supported = _mode != Mode::Plain;
    _table.resize(std::size_t{4} << (2 * b));
    for (std::uint64_t value = 0; value <= seg_mask; value++) {
        for (std::uint64_t old = 0; old <= seg_mask; old++) {
            for (unsigned flags = 0; flags < 4; flags++) {
                const bool inv = flags & 1;
                const bool skip = flags & 2;
                const unsigned cost_plain =
                    unsigned(std::popcount(value ^ old)) + (inv ? 1 : 0)
                    + (sparse && skip ? 1 : 0);
                const unsigned cost_inv =
                    unsigned(std::popcount((~value & seg_mask) ^ old))
                    + (inv ? 0 : 1) + (sparse && skip ? 1 : 0);
                const unsigned cost_skip = sparse && !skip ? 1 : 0;

                SegEntry e{};
                if (skip_supported && value == 0
                    && cost_skip <= std::min(cost_plain, cost_inv)) {
                    e.mode = std::uint8_t(SegMode::Skip);
                    e.coded = std::uint8_t(old);
                    e.ctrl_flips = std::uint8_t(cost_skip);
                    e.skip = 1;
                    e.flags = std::uint8_t((inv ? 1 : 0)
                                           | (sparse ? 2 : (skip ? 2 : 0)));
                } else if (cost_inv < cost_plain) {
                    const std::uint64_t coded = ~value & seg_mask;
                    e.mode = std::uint8_t(SegMode::Inverted);
                    e.coded = std::uint8_t(coded);
                    e.data_flips =
                        std::uint8_t(std::popcount(coded ^ old));
                    e.ctrl_flips = std::uint8_t((inv ? 0 : 1)
                                                + (sparse && skip ? 1 : 0));
                    e.flags = 1; // inverted, skip line released
                } else {
                    e.mode = std::uint8_t(SegMode::AsIs);
                    e.coded = std::uint8_t(value);
                    e.data_flips =
                        std::uint8_t(std::popcount(value ^ old));
                    e.ctrl_flips = std::uint8_t((inv ? 1 : 0)
                                                + (sparse && skip ? 1 : 0));
                    e.flags = 0;
                }
                _table[((value << b | old) << 2) | flags] = e;
            }
        }
    }
}

unsigned
BusInvertScheme::controlWires() const
{
    switch (_mode) {
      case Mode::Plain:
        return _num_segs;
      case Mode::ZeroSkipSparse:
        return 2 * _num_segs;
      case Mode::ZeroSkipEncoded:
        return unsigned(_mode_state.size()) * 32;
    }
    return 0;
}

const char *
BusInvertScheme::name() const
{
    switch (_mode) {
      case Mode::Plain:
        return "Bus Invert Coding";
      case Mode::ZeroSkipSparse:
        return "Zero Skipped Bus Invert";
      case Mode::ZeroSkipEncoded:
        return "Encoded Zero Skipped Bus Invert";
    }
    return "?";
}

TransferResult
BusInvertScheme::transfer(const BitVec &block)
{
    DESC_ASSERT(block.width() == _block_bits, "block width mismatch");
    if (usesTablePath())
        return transferTable(block);
    return transferScalar(block);
}

TransferResult
BusInvertScheme::transferTable(const BitVec &block)
{
    TransferResult result;
    result.cycles = _beats + (_mode == Mode::ZeroSkipEncoded ? 2 : 1);
    const bool encoded = _mode == Mode::ZeroSkipEncoded;
    const unsigned b = _seg_bits;

    for (unsigned beat = 0; beat < _beats; beat++) {
        const unsigned beat_base = beat * _wires;
        for (unsigned s = 0; s < _num_segs; s++) {
            const unsigned pos = beat_base + s * b;
            std::uint64_t value = 0;
            if (pos < _block_bits) {
                unsigned avail = std::min(b, _block_bits - pos);
                value = block.fieldUnchecked(pos, avail);
            }
            const SegEntry &e =
                _table[((value << b | _seg_old[s]) << 2) | _seg_flags[s]];
            result.data_flips += e.data_flips;
            result.control_flips += e.ctrl_flips;
            result.skipped += e.skip;
            _seg_old[s] = e.coded;
            _seg_flags[s] = e.flags;
            if (encoded)
                _seg_modes[s] = SegMode(e.mode);
        }

        if (encoded) {
            for (unsigned w = 0; w < _mode_state.size(); w++) {
                std::uint32_t packed = 0;
                unsigned lo = w * kSegsPerModeWord;
                unsigned hi = std::min<unsigned>(lo + kSegsPerModeWord,
                                                 _num_segs);
                for (unsigned s = hi; s-- > lo;)
                    packed = packed * 3 + std::uint32_t(_seg_modes[s]);
                result.control_flips += std::popcount(packed ^
                                                      _mode_state[w]);
                _mode_state[w] = packed;
            }
        }
    }
    return result;
}

TransferResult
BusInvertScheme::transferScalar(const BitVec &block)
{
    TransferResult result;
    // Encode/decode pipeline stage for the non-trivial codings
    // (responsible for the ~1% execution-time overhead in Figure 20).
    result.cycles = _beats + (_mode == Mode::ZeroSkipEncoded ? 2 : 1);

    const std::uint64_t seg_mask = _seg_bits == 64
        ? ~std::uint64_t{0}
        : ((std::uint64_t{1} << _seg_bits) - 1);

    _seg_modes.assign(_num_segs, SegMode::AsIs);

    for (unsigned beat = 0; beat < _beats; beat++) {
        unsigned beat_base = beat * _wires;
        for (unsigned s = 0; s < _num_segs; s++) {
            unsigned pos = beat_base + s * _seg_bits;
            std::uint64_t value = 0;
            if (pos < _block_bits) {
                unsigned avail = std::min(_seg_bits, _block_bits - pos);
                value = block.fieldUnchecked(pos, avail);
            }
            std::uint64_t old =
                _state.fieldUnchecked(s * _seg_bits, _seg_bits);

            // Cost of each transmission mode, counting the control
            // wires the mode would have to flip.
            bool skip_supported = _mode != Mode::Plain;
            bool sparse = _mode == Mode::ZeroSkipSparse;

            unsigned cost_plain = std::popcount(value ^ old)
                + (_inv_state[s] ? 1 : 0)
                + (sparse && _skip_state[s] ? 1 : 0);
            unsigned cost_inv = std::popcount((~value & seg_mask) ^ old)
                + (_inv_state[s] ? 0 : 1)
                + (sparse && _skip_state[s] ? 1 : 0);
            unsigned cost_skip = sparse && !_skip_state[s] ? 1 : 0;

            SegMode chosen;
            if (skip_supported && value == 0 &&
                cost_skip <= std::min(cost_plain, cost_inv)) {
                chosen = SegMode::Skip;
            } else if (cost_inv < cost_plain) {
                chosen = SegMode::Inverted;
            } else {
                chosen = SegMode::AsIs;
            }
            _seg_modes[s] = chosen;

            switch (chosen) {
              case SegMode::AsIs:
                result.data_flips += std::popcount(value ^ old);
                _state.setFieldUnchecked(s * _seg_bits, _seg_bits, value);
                if (_inv_state[s]) {
                    result.control_flips++;
                    _inv_state[s] = false;
                }
                if (sparse && _skip_state[s]) {
                    result.control_flips++;
                    _skip_state[s] = false;
                }
                break;
              case SegMode::Inverted: {
                std::uint64_t coded = ~value & seg_mask;
                result.data_flips += std::popcount(coded ^ old);
                _state.setFieldUnchecked(s * _seg_bits, _seg_bits, coded);
                if (!_inv_state[s]) {
                    result.control_flips++;
                    _inv_state[s] = true;
                }
                if (sparse && _skip_state[s]) {
                    result.control_flips++;
                    _skip_state[s] = false;
                }
                break;
              }
              case SegMode::Skip:
                // Data and invert wires hold; receiver substitutes 0.
                result.skipped++;
                if (sparse && !_skip_state[s]) {
                    result.control_flips++;
                    _skip_state[s] = true;
                }
                break;
            }
        }

        // The dense mode bus re-transmits all segment modes each beat
        // as a packed base-3 number; its transitions are control flips.
        if (_mode == Mode::ZeroSkipEncoded) {
            for (unsigned w = 0; w < _mode_state.size(); w++) {
                std::uint32_t packed = 0;
                unsigned lo = w * kSegsPerModeWord;
                unsigned hi = std::min<unsigned>(lo + kSegsPerModeWord,
                                                 _num_segs);
                for (unsigned s = hi; s-- > lo;)
                    packed = packed * 3 + std::uint32_t(_seg_modes[s]);
                result.control_flips += std::popcount(packed ^
                                                      _mode_state[w]);
                _mode_state[w] = packed;
            }
        }
    }
    return result;
}

void
BusInvertScheme::reset()
{
    _state.clear();
    std::fill(_inv_state.begin(), _inv_state.end(), false);
    std::fill(_skip_state.begin(), _skip_state.end(), false);
    std::fill(_mode_state.begin(), _mode_state.end(), 0);
    std::fill(_seg_old.begin(), _seg_old.end(), 0);
    std::fill(_seg_flags.begin(), _seg_flags.end(), 0);
}

} // namespace desc::encoding
