#include "encoding/businvert.hh"

#include <bit>

#include "common/contract.hh"
#include "common/log.hh"

namespace desc::encoding {

namespace {

/** Segments packed per 32-bit word of the encoded mode bus (3^20 fits
 *  in 32 bits, giving ~1.6 mode bits per segment). */
constexpr unsigned kSegsPerModeWord = 20;

} // namespace

BusInvertScheme::BusInvertScheme(const SchemeConfig &cfg, Mode mode)
    : _wires(cfg.bus_wires), _block_bits(cfg.block_bits),
      _seg_bits(cfg.segment_bits), _mode(mode), _state(cfg.bus_wires)
{
    DESC_ASSERT(_seg_bits > 0 && _seg_bits <= 64,
                "segment size must be 1..64 bits: ", _seg_bits);
    DESC_ASSERT(_wires % _seg_bits == 0,
                "bus width ", _wires, " not divisible by segment ",
                _seg_bits);
    _beats = (_block_bits + _wires - 1) / _wires;
    _num_segs = _wires / _seg_bits;
    _inv_state.assign(_num_segs, false);
    _skip_state.assign(_num_segs, false);
    _mode_state.assign((_num_segs + kSegsPerModeWord - 1) / kSegsPerModeWord,
                       0);
}

unsigned
BusInvertScheme::controlWires() const
{
    switch (_mode) {
      case Mode::Plain:
        return _num_segs;
      case Mode::ZeroSkipSparse:
        return 2 * _num_segs;
      case Mode::ZeroSkipEncoded:
        return unsigned(_mode_state.size()) * 32;
    }
    return 0;
}

const char *
BusInvertScheme::name() const
{
    switch (_mode) {
      case Mode::Plain:
        return "Bus Invert Coding";
      case Mode::ZeroSkipSparse:
        return "Zero Skipped Bus Invert";
      case Mode::ZeroSkipEncoded:
        return "Encoded Zero Skipped Bus Invert";
    }
    return "?";
}

TransferResult
BusInvertScheme::transfer(const BitVec &block)
{
    DESC_ASSERT(block.width() == _block_bits, "block width mismatch");
    TransferResult result;
    // Encode/decode pipeline stage for the non-trivial codings
    // (responsible for the ~1% execution-time overhead in Figure 20).
    result.cycles = _beats + (_mode == Mode::ZeroSkipEncoded ? 2 : 1);

    const std::uint64_t seg_mask = _seg_bits == 64
        ? ~std::uint64_t{0}
        : ((std::uint64_t{1} << _seg_bits) - 1);

    _seg_modes.assign(_num_segs, SegMode::AsIs);

    for (unsigned beat = 0; beat < _beats; beat++) {
        unsigned beat_base = beat * _wires;
        for (unsigned s = 0; s < _num_segs; s++) {
            unsigned pos = beat_base + s * _seg_bits;
            std::uint64_t value = 0;
            if (pos < _block_bits) {
                unsigned avail = std::min(_seg_bits, _block_bits - pos);
                value = block.fieldUnchecked(pos, avail);
            }
            std::uint64_t old =
                _state.fieldUnchecked(s * _seg_bits, _seg_bits);

            // Cost of each transmission mode, counting the control
            // wires the mode would have to flip.
            bool skip_supported = _mode != Mode::Plain;
            bool sparse = _mode == Mode::ZeroSkipSparse;

            unsigned cost_plain = std::popcount(value ^ old)
                + (_inv_state[s] ? 1 : 0)
                + (sparse && _skip_state[s] ? 1 : 0);
            unsigned cost_inv = std::popcount((~value & seg_mask) ^ old)
                + (_inv_state[s] ? 0 : 1)
                + (sparse && _skip_state[s] ? 1 : 0);
            unsigned cost_skip = sparse && !_skip_state[s] ? 1 : 0;

            SegMode chosen;
            if (skip_supported && value == 0 &&
                cost_skip <= std::min(cost_plain, cost_inv)) {
                chosen = SegMode::Skip;
            } else if (cost_inv < cost_plain) {
                chosen = SegMode::Inverted;
            } else {
                chosen = SegMode::AsIs;
            }
            _seg_modes[s] = chosen;

            switch (chosen) {
              case SegMode::AsIs:
                result.data_flips += std::popcount(value ^ old);
                _state.setFieldUnchecked(s * _seg_bits, _seg_bits, value);
                if (_inv_state[s]) {
                    result.control_flips++;
                    _inv_state[s] = false;
                }
                if (sparse && _skip_state[s]) {
                    result.control_flips++;
                    _skip_state[s] = false;
                }
                break;
              case SegMode::Inverted: {
                std::uint64_t coded = ~value & seg_mask;
                result.data_flips += std::popcount(coded ^ old);
                _state.setFieldUnchecked(s * _seg_bits, _seg_bits, coded);
                if (!_inv_state[s]) {
                    result.control_flips++;
                    _inv_state[s] = true;
                }
                if (sparse && _skip_state[s]) {
                    result.control_flips++;
                    _skip_state[s] = false;
                }
                break;
              }
              case SegMode::Skip:
                // Data and invert wires hold; receiver substitutes 0.
                result.skipped++;
                if (sparse && !_skip_state[s]) {
                    result.control_flips++;
                    _skip_state[s] = true;
                }
                break;
            }
        }

        // The dense mode bus re-transmits all segment modes each beat
        // as a packed base-3 number; its transitions are control flips.
        if (_mode == Mode::ZeroSkipEncoded) {
            for (unsigned w = 0; w < _mode_state.size(); w++) {
                std::uint32_t packed = 0;
                unsigned lo = w * kSegsPerModeWord;
                unsigned hi = std::min<unsigned>(lo + kSegsPerModeWord,
                                                 _num_segs);
                for (unsigned s = hi; s-- > lo;)
                    packed = packed * 3 + std::uint32_t(_seg_modes[s]);
                result.control_flips += std::popcount(packed ^
                                                      _mode_state[w]);
                _mode_state[w] = packed;
            }
        }
    }
    return result;
}

void
BusInvertScheme::reset()
{
    _state.clear();
    std::fill(_inv_state.begin(), _inv_state.end(), false);
    std::fill(_skip_state.begin(), _skip_state.end(), false);
    std::fill(_mode_state.begin(), _mode_state.end(), 0);
}

} // namespace desc::encoding
