/**
 * @file
 * The data-transfer scheme interface every encoding implements.
 *
 * A TransferScheme models one direction of one bank's data port. It is
 * stateful: wires hold their last driven level across block transfers,
 * so transition counts are bit-accurate functions of the actual data
 * stream. The simulator calls transfer() for every block moved over
 * the H-tree and charges:
 *
 *   - cycles        -> bank/bus occupancy (performance),
 *   - data_flips    -> H-tree dynamic energy on data wires,
 *   - control_flips -> H-tree dynamic energy on extra wires (invert
 *                      lines, zero indicators, reset/skip, sync strobe).
 */

#ifndef DESC_ENCODING_SCHEME_HH
#define DESC_ENCODING_SCHEME_HH

#include <memory>
#include <optional>
#include <string>

#include "common/bitvec.hh"
#include "common/types.hh"

namespace desc::encoding {

/**
 * How a TransferScheme walks a block: the chunk-at-a-time scalar
 * reference loops, or the word-at-a-time batched passes (SWAR chunk
 * math / precomputed per-segment tables). Both produce bit-identical
 * TransferResults and wire state — the differential suite enforces it
 * — so Auto simply takes the batched pass wherever the configuration
 * supports one and falls back to scalar elsewhere (odd chunk widths,
 * adaptive skip tracking, unaligned waves).
 */
enum class EncoderMode {
    Auto,    //!< batched where supported (default)
    Scalar,  //!< force the chunk-at-a-time reference loops
    Batched, //!< batched where supported (same as Auto; named for
             //!< symmetry with DESC_LINK_MODE forcing)
};

/**
 * Process-wide default encoder mode, from the DESC_ENCODER_MODE
 * environment variable (auto|scalar|batched). Parsed once; an
 * unrecognized value warns and falls back to Auto. Schemes latch the
 * default at construction.
 */
EncoderMode defaultEncoderMode();

/**
 * Programmatic override of defaultEncoderMode(), bypassing the
 * environment (nullopt restores the environment's answer). For tests
 * and benchmarks that construct schemes indirectly, e.g. through the
 * cache hierarchy.
 */
void setDefaultEncoderMode(std::optional<EncoderMode> mode);

/** Every data-exchange technique evaluated in the paper (Figure 16). */
enum class SchemeKind {
    Binary,
    DynamicZeroCompression,
    BusInvert,
    ZeroSkipBusInvert,
    EncodedZeroSkipBusInvert,
    DescBasic,
    DescZeroSkip,
    DescLastValueSkip,
};

constexpr unsigned kNumSchemes = 8;

/** Display name matching the paper's legends. */
const char *schemeName(SchemeKind kind);

/** Configuration shared by all schemes. */
struct SchemeConfig
{
    /** Data wires on the bus (paper sweeps 8..512; baseline 64). */
    unsigned bus_wires = 64;

    /** Bits per block (512 throughout the paper). */
    unsigned block_bits = kBlockBits;

    /** Segment size for bus-invert / zero-compression baselines. */
    unsigned segment_bits = 32;

    /** Chunk size for DESC (paper's best: 4). */
    unsigned chunk_bits = 4;
};

/** Activity and occupancy of one block transfer. */
struct TransferResult
{
    /** Bus occupancy (serialization window) in cycles. */
    Cycle cycles = 0;

    /** Transitions on the data wires. */
    std::uint64_t data_flips = 0;

    /** Transitions on control wires (invert/zero/reset/skip/sync). */
    std::uint64_t control_flips = 0;

    /** Chunks/segments whose transfer was skipped (stats only). */
    std::uint64_t skipped = 0;

    std::uint64_t totalFlips() const { return data_flips + control_flips; }
};

class TransferScheme
{
  public:
    virtual ~TransferScheme() = default;

    /** Move one block across the link; updates persistent wire state. */
    virtual TransferResult transfer(const BitVec &block) = 0;

    /** Number of data wires the scheme drives. */
    virtual unsigned dataWires() const = 0;

    /** Number of extra (control) wires the scheme needs. */
    virtual unsigned controlWires() const = 0;

    virtual const char *name() const = 0;

    /** Return all wires to the all-zero idle state. */
    virtual void reset() = 0;
};

} // namespace desc::encoding

#endif // DESC_ENCODING_SCHEME_HH
