/**
 * @file
 * SWAR (SIMD-within-a-register) helpers over packed fixed-width
 * chunks, shared by the batched encoder paths. A 64-bit word holds
 * 64/B chunks of B bits each, B in {1, 2, 4, 8}; the chunk width is a
 * template parameter so every mask folds to a compile-time constant
 * and each helper compiles to a handful of straight-line shifts. The
 * scalar reference paths remain the semantic definition; the
 * equivalence suite pins these helpers against them chunk by chunk.
 */

#ifndef DESC_ENCODING_SWAR_HH
#define DESC_ENCODING_SWAR_HH

#include <bit>
#include <cstdint>

namespace desc::encoding::swar {

/** True if the batched word paths support this chunk width. */
constexpr bool
supportedChunk(unsigned b)
{
    return b == 1 || b == 2 || b == 4 || b == 8;
}

/** Word with the least-significant bit of every w-bit lane set. */
constexpr std::uint64_t
laneLsbMask(unsigned w)
{
    std::uint64_t m = 0;
    for (unsigned pos = 0; pos < 64; pos += w)
        m |= std::uint64_t{1} << pos;
    return m;
}

/** Word with the low @p low bits of every w-bit lane set. */
constexpr std::uint64_t
laneLowMask(unsigned w, unsigned low)
{
    return laneLsbMask(w) * ((std::uint64_t{1} << low) - 1);
}

/**
 * Collapse every B-bit chunk to its least-significant bit: the result
 * has chunk i's LSB set iff chunk i of @p x is non-zero (all other
 * bits are garbage until masked). Shifting by less than B never moves
 * a bit below its own chunk's LSB, so neighbors cannot contaminate
 * the collapsed bit.
 */
template <unsigned B>
constexpr std::uint64_t
foldNonzero(std::uint64_t x)
{
    for (unsigned s = B / 2; s >= 1; s /= 2)
        x |= x >> s;
    return x;
}

/**
 * One marker bit (at the chunk's LSB position) per non-zero chunk;
 * iterate with countr_zero / B to visit each such chunk.
 */
template <unsigned B>
inline std::uint64_t
nonzeroChunkMarkers(std::uint64_t x)
{
    return foldNonzero<B>(x) & laneLsbMask(B);
}

/** Number of non-zero B-bit chunks in @p x. */
template <unsigned B>
inline unsigned
nonzeroChunks(std::uint64_t x)
{
    return unsigned(std::popcount(nonzeroChunkMarkers<B>(x)));
}

/**
 * Per-lane maximum of @p a and @p b over W-bit lanes. Requires every
 * lane value < 2^(W-1) so the borrow trick has a spare bit.
 */
template <unsigned W>
inline std::uint64_t
laneMax(std::uint64_t a, std::uint64_t b)
{
    constexpr std::uint64_t hibit = laneLsbMask(W) << (W - 1);
    constexpr std::uint64_t lane_ones =
        W == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << W) - 1;
    // Per lane: hibit survives the subtraction iff a >= b. One flag
    // bit per lane times the all-ones lane value stays confined to
    // its lane: a full select mask where a >= b.
    const std::uint64_t ge = ((a | hibit) - b) & hibit;
    const std::uint64_t sel = (ge >> (W - 1)) * lane_ones;
    return b ^ ((a ^ b) & sel);
}

/**
 * Fold W-bit lanes (each value < 2^(W-1)) pairwise until one 64-bit
 * lane holds the maximum.
 */
template <unsigned W>
inline std::uint64_t
foldMaxLanes(std::uint64_t m)
{
    if constexpr (W >= 64) {
        return m;
    } else {
        constexpr std::uint64_t lo = laneLowMask(2 * W, W);
        return foldMaxLanes<2 * W>(laneMax<2 * W>(m & lo, (m >> W) & lo));
    }
}

/** Maximum chunk value across all B-bit chunks of @p x. */
template <unsigned B>
inline std::uint64_t
maxChunk(std::uint64_t x)
{
    if constexpr (B == 1) {
        return x != 0 ? 1 : 0;
    } else {
        // Widen to 2B-bit lanes (values < 2^B keep the spare bit the
        // compare trick needs), then fold lanes pairwise down to one.
        constexpr std::uint64_t half = laneLowMask(2 * B, B);
        return foldMaxLanes<2 * B>(laneMax<2 * B>(x & half, (x >> B) & half));
    }
}

/**
 * Per-chunk "v < s" over B-bit chunks: the result has chunk i's LSB
 * set iff chunk i of @p v is strictly less than chunk i of @p s (all
 * other bits zero). Compares each half of the chunks in widened
 * 2B-bit lanes so the borrow trick has its spare bit.
 */
template <unsigned B>
inline std::uint64_t
lessPerChunk(std::uint64_t v, std::uint64_t s)
{
    if constexpr (B == 1) {
        return ~v & s;
    } else {
        constexpr unsigned w = 2 * B;
        constexpr std::uint64_t half = laneLowMask(w, B);
        constexpr std::uint64_t hb = laneLsbMask(w) << (w - 1);
        const auto lt = [](std::uint64_t a, std::uint64_t c) {
            // hb survives the subtraction iff a >= c; invert for <.
            return ((((a | hb) - c) & hb) ^ hb) >> (w - 1);
        };
        const std::uint64_t lo = lt(v & half, s & half);
        const std::uint64_t hi = lt((v >> B) & half, (s >> B) & half);
        return lo | (hi << B);
    }
}

} // namespace desc::encoding::swar

#endif // DESC_ENCODING_SWAR_HH
