/**
 * @file
 * Dynamic zero compression (Villa, Zhang & Asanovic, MICRO 2000).
 *
 * Each segment of the bus owns a zero-indicator wire. A segment whose
 * value is zero transmits only the indicator; its data wires hold
 * their previous levels. Non-zero segments transmit normally with the
 * indicator deasserted.
 */

#ifndef DESC_ENCODING_DZC_HH
#define DESC_ENCODING_DZC_HH

#include <vector>

#include "encoding/scheme.hh"

namespace desc::encoding {

class DynamicZeroScheme : public TransferScheme
{
  public:
    explicit DynamicZeroScheme(const SchemeConfig &cfg);

    TransferResult transfer(const BitVec &block) override;
    unsigned dataWires() const override { return _wires; }
    unsigned controlWires() const override { return _num_segs; }
    const char *name() const override { return "Dynamic Zero Compression"; }
    void reset() override;

    /** True when transfer() takes the word-at-a-time batched pass. */
    bool usesBatchedPath() const { return _batched; }

  private:
    TransferResult transferScalar(const BitVec &block);
    TransferResult transferBatched(const BitVec &block);

    unsigned _wires;
    unsigned _block_bits;
    unsigned _beats;
    unsigned _seg_bits;
    unsigned _num_segs;
    bool _batched; //!< word pass (latched encoder mode + layout gate)

    BitVec _state;
    std::vector<bool> _zero_state;

    /**
     * Batched-pass state mirrors: wire levels packed one word per 64
     * wires, and the zero-indicator levels as marker masks in the
     * same per-word layout the SWAR fold produces (one bit at each
     * segment's base position), so a beat's indicator transitions are
     * a single XOR + popcount per word.
     */
    std::vector<std::uint64_t> _state_words;
    std::vector<std::uint64_t> _zero_marks;
};

} // namespace desc::encoding

#endif // DESC_ENCODING_DZC_HH
