/**
 * @file
 * Dynamic zero compression (Villa, Zhang & Asanovic, MICRO 2000).
 *
 * Each segment of the bus owns a zero-indicator wire. A segment whose
 * value is zero transmits only the indicator; its data wires hold
 * their previous levels. Non-zero segments transmit normally with the
 * indicator deasserted.
 */

#ifndef DESC_ENCODING_DZC_HH
#define DESC_ENCODING_DZC_HH

#include <vector>

#include "encoding/scheme.hh"

namespace desc::encoding {

class DynamicZeroScheme : public TransferScheme
{
  public:
    explicit DynamicZeroScheme(const SchemeConfig &cfg);

    TransferResult transfer(const BitVec &block) override;
    unsigned dataWires() const override { return _wires; }
    unsigned controlWires() const override { return _num_segs; }
    const char *name() const override { return "Dynamic Zero Compression"; }
    void reset() override;

  private:
    unsigned _wires;
    unsigned _block_bits;
    unsigned _beats;
    unsigned _seg_bits;
    unsigned _num_segs;

    BitVec _state;
    std::vector<bool> _zero_state;
};

} // namespace desc::encoding

#endif // DESC_ENCODING_DZC_HH
