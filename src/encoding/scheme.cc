#include "encoding/scheme.hh"

#include <cstdlib>
#include <cstring>

#include "common/log.hh"

namespace desc::encoding {

namespace {

std::optional<EncoderMode> g_encoder_mode_override;

} // namespace

void
setDefaultEncoderMode(std::optional<EncoderMode> mode)
{
    g_encoder_mode_override = mode;
}

EncoderMode
defaultEncoderMode()
{
    if (g_encoder_mode_override)
        return *g_encoder_mode_override;
    static const EncoderMode env_mode = [] {
        const char *env = std::getenv("DESC_ENCODER_MODE");
        if (!env || !*env || !std::strcmp(env, "auto"))
            return EncoderMode::Auto;
        if (!std::strcmp(env, "scalar"))
            return EncoderMode::Scalar;
        if (!std::strcmp(env, "batched"))
            return EncoderMode::Batched;
        warnOnce("desc-encoder-mode",
                 std::string("DESC_ENCODER_MODE=") + env
                     + " not recognized (auto|scalar|batched); using auto");
        return EncoderMode::Auto;
    }();
    return env_mode;
}

const char *
schemeName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::Binary:
        return "Conventional Binary";
      case SchemeKind::DynamicZeroCompression:
        return "Dynamic Zero Compression";
      case SchemeKind::BusInvert:
        return "Bus Invert Coding";
      case SchemeKind::ZeroSkipBusInvert:
        return "Zero Skipped Bus Invert";
      case SchemeKind::EncodedZeroSkipBusInvert:
        return "Encoded Zero Skipped Bus Invert";
      case SchemeKind::DescBasic:
        return "Basic DESC";
      case SchemeKind::DescZeroSkip:
        return "Zero Skipped DESC";
      case SchemeKind::DescLastValueSkip:
        return "Last Value Skipped DESC";
    }
    DESC_PANIC("bad scheme enum");
}

} // namespace desc::encoding
