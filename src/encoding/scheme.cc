#include "encoding/scheme.hh"

#include "common/log.hh"

namespace desc::encoding {

const char *
schemeName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::Binary:
        return "Conventional Binary";
      case SchemeKind::DynamicZeroCompression:
        return "Dynamic Zero Compression";
      case SchemeKind::BusInvert:
        return "Bus Invert Coding";
      case SchemeKind::ZeroSkipBusInvert:
        return "Zero Skipped Bus Invert";
      case SchemeKind::EncodedZeroSkipBusInvert:
        return "Encoded Zero Skipped Bus Invert";
      case SchemeKind::DescBasic:
        return "Basic DESC";
      case SchemeKind::DescZeroSkip:
        return "Zero Skipped DESC";
      case SchemeKind::DescLastValueSkip:
        return "Last Value Skipped DESC";
    }
    DESC_PANIC("bad scheme enum");
}

} // namespace desc::encoding
