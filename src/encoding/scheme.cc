#include "encoding/scheme.hh"

#include "common/env.hh"

namespace desc::encoding {

namespace {

std::optional<EncoderMode> g_encoder_mode_override;

} // namespace

void
setDefaultEncoderMode(std::optional<EncoderMode> mode)
{
    g_encoder_mode_override = mode;
}

EncoderMode
defaultEncoderMode()
{
    if (g_encoder_mode_override)
        return *g_encoder_mode_override;
    static const EncoderMode env_mode = [] {
        static const env::EnumName kWords[] = {
            {"auto", int(EncoderMode::Auto)},
            {"scalar", int(EncoderMode::Scalar)},
            {"batched", int(EncoderMode::Batched)},
        };
        return EncoderMode(env::enumOr(env::Var::EncoderMode, kWords,
                                       3, int(EncoderMode::Auto)));
    }();
    return env_mode;
}

const char *
schemeName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::Binary:
        return "Conventional Binary";
      case SchemeKind::DynamicZeroCompression:
        return "Dynamic Zero Compression";
      case SchemeKind::BusInvert:
        return "Bus Invert Coding";
      case SchemeKind::ZeroSkipBusInvert:
        return "Zero Skipped Bus Invert";
      case SchemeKind::EncodedZeroSkipBusInvert:
        return "Encoded Zero Skipped Bus Invert";
      case SchemeKind::DescBasic:
        return "Basic DESC";
      case SchemeKind::DescZeroSkip:
        return "Zero Skipped DESC";
      case SchemeKind::DescLastValueSkip:
        return "Last Value Skipped DESC";
    }
    DESC_PANIC("bad scheme enum");
}

} // namespace desc::encoding
