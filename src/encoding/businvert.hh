/**
 * @file
 * Bus-invert coding (Stan & Burleson) and its zero-skipping variants.
 *
 * The bus is divided into segments; each segment owns an invert line.
 * If transmitting a beat plainly would flip more wires than
 * transmitting its complement (counting the invert line itself), the
 * complement is sent. The paper extends this baseline with zero
 * skipping in two flavors (Section 4.1):
 *
 *  - sparse: one extra skip wire per segment signals that the segment
 *    value is zero and the data wires simply hold their old levels;
 *  - encoded: the per-segment mode (plain/inverted/skipped) is packed
 *    into a dense binary mode bus, trading wires for extra transitions
 *    and encode/decode latency.
 */

#ifndef DESC_ENCODING_BUSINVERT_HH
#define DESC_ENCODING_BUSINVERT_HH

#include <vector>

#include "encoding/scheme.hh"

namespace desc::encoding {

class BusInvertScheme : public TransferScheme
{
  public:
    enum class Mode { Plain, ZeroSkipSparse, ZeroSkipEncoded };

    BusInvertScheme(const SchemeConfig &cfg, Mode mode);

    TransferResult transfer(const BitVec &block) override;
    unsigned dataWires() const override { return _wires; }
    unsigned controlWires() const override;
    const char *name() const override;
    void reset() override;

  private:
    /** Per-segment transmission decision for one beat. */
    enum class SegMode : std::uint8_t { AsIs = 0, Inverted = 1, Skip = 2 };

    unsigned _wires;
    unsigned _block_bits;
    unsigned _beats;
    unsigned _seg_bits;
    unsigned _num_segs;
    Mode _mode;

    BitVec _state;                    //!< data wire levels
    std::vector<bool> _inv_state;     //!< invert line levels
    std::vector<bool> _skip_state;    //!< sparse skip line levels
    std::vector<std::uint32_t> _mode_state; //!< encoded mode bus words
    std::vector<SegMode> _seg_modes;  //!< reused per-beat scratch
};

} // namespace desc::encoding

#endif // DESC_ENCODING_BUSINVERT_HH
