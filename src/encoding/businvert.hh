/**
 * @file
 * Bus-invert coding (Stan & Burleson) and its zero-skipping variants.
 *
 * The bus is divided into segments; each segment owns an invert line.
 * If transmitting a beat plainly would flip more wires than
 * transmitting its complement (counting the invert line itself), the
 * complement is sent. The paper extends this baseline with zero
 * skipping in two flavors (Section 4.1):
 *
 *  - sparse: one extra skip wire per segment signals that the segment
 *    value is zero and the data wires simply hold their old levels;
 *  - encoded: the per-segment mode (plain/inverted/skipped) is packed
 *    into a dense binary mode bus, trading wires for extra transitions
 *    and encode/decode latency.
 */

#ifndef DESC_ENCODING_BUSINVERT_HH
#define DESC_ENCODING_BUSINVERT_HH

#include <vector>

#include "encoding/scheme.hh"

namespace desc::encoding {

class BusInvertScheme : public TransferScheme
{
  public:
    enum class Mode { Plain, ZeroSkipSparse, ZeroSkipEncoded };

    BusInvertScheme(const SchemeConfig &cfg, Mode mode);

    TransferResult transfer(const BitVec &block) override;
    unsigned dataWires() const override { return _wires; }
    unsigned controlWires() const override;
    const char *name() const override;
    void reset() override;

    /** True when transfer() takes the precomputed-table pass. */
    bool usesTablePath() const { return !_table.empty(); }

  private:
    /** Per-segment transmission decision for one beat. */
    enum class SegMode : std::uint8_t { AsIs = 0, Inverted = 1, Skip = 2 };

    /**
     * Precomputed decision for one (value, old, inv, skip) segment
     * state: the coded value left on the wires, the chosen mode, the
     * flip charges, and the new invert/skip line levels packed as
     * inv | skip << 1 (the same layout the table is indexed by).
     */
    struct SegEntry
    {
        std::uint8_t coded;
        std::uint8_t mode; //!< SegMode
        std::uint8_t data_flips;
        std::uint8_t ctrl_flips;
        std::uint8_t skip; //!< 1 when the segment was skipped
        std::uint8_t flags; //!< new inv | skip << 1
    };

    TransferResult transferScalar(const BitVec &block);
    TransferResult transferTable(const BitVec &block);
    void buildTable();

    unsigned _wires;
    unsigned _block_bits;
    unsigned _beats;
    unsigned _seg_bits;
    unsigned _num_segs;
    Mode _mode;

    BitVec _state;                    //!< data wire levels
    std::vector<bool> _inv_state;     //!< invert line levels
    std::vector<bool> _skip_state;    //!< sparse skip line levels
    std::vector<std::uint32_t> _mode_state; //!< encoded mode bus words
    std::vector<SegMode> _seg_modes;  //!< reused per-beat scratch

    /**
     * Table-pass state: one decision entry per
     * (value << b | old) << 2 | inv | skip << 1 key, plus byte-wide
     * mirrors of the wire/line state so the hot loop never touches
     * the BitVec or the bit-packed bool vectors. Populated only for
     * small segments (the table is 4^(b+1) entries) when the encoder
     * mode allows batching; empty otherwise.
     */
    std::vector<SegEntry> _table;
    std::vector<std::uint8_t> _seg_old;   //!< wire levels per segment
    std::vector<std::uint8_t> _seg_flags; //!< inv | skip << 1 per segment
};

} // namespace desc::encoding

#endif // DESC_ENCODING_BUSINVERT_HH
