/**
 * @file
 * Conventional binary (parallel) data transfer.
 *
 * A block is sliced into bus-width beats and driven one beat per cycle;
 * transitions are the Hamming distance between consecutive beats on the
 * wires. With bus_wires == 1 this degenerates into the serial transfer
 * of Figure 3b.
 */

#ifndef DESC_ENCODING_BINARY_HH
#define DESC_ENCODING_BINARY_HH

#include "encoding/scheme.hh"

namespace desc::encoding {

class BinaryScheme : public TransferScheme
{
  public:
    explicit BinaryScheme(const SchemeConfig &cfg);

    TransferResult transfer(const BitVec &block) override;
    unsigned dataWires() const override { return _wires; }
    unsigned controlWires() const override { return 0; }
    const char *name() const override { return "Conventional Binary"; }
    void reset() override;

  private:
    unsigned _wires;
    unsigned _block_bits;
    unsigned _beats;
    BitVec _state;
};

} // namespace desc::encoding

#endif // DESC_ENCODING_BINARY_HH
