#include "encoding/binary.hh"

#include <bit>

#include "common/contract.hh"
#include "common/log.hh"

namespace desc::encoding {

BinaryScheme::BinaryScheme(const SchemeConfig &cfg)
    : _wires(cfg.bus_wires), _block_bits(cfg.block_bits), _state(cfg.bus_wires)
{
    DESC_ASSERT(_wires > 0, "bus needs at least one wire");
    _beats = (_block_bits + _wires - 1) / _wires;
}

TransferResult
BinaryScheme::transfer(const BitVec &block)
{
    DESC_ASSERT(block.width() == _block_bits, "block width mismatch");
    TransferResult result;
    result.cycles = _beats;

    // Walk the block in 64-bit pieces of each beat; XOR against the
    // persistent wire state to count transitions.
    for (unsigned beat = 0; beat < _beats; beat++) {
        unsigned beat_base = beat * _wires;
        for (unsigned off = 0; off < _wires; off += 64) {
            unsigned len = std::min(64u, _wires - off);
            unsigned pos = beat_base + off;
            std::uint64_t fresh = 0;
            if (pos < _block_bits) {
                unsigned avail = std::min(len, _block_bits - pos);
                fresh = block.fieldUnchecked(pos, avail);
            }
            std::uint64_t old = _state.fieldUnchecked(off, len);
            result.data_flips += std::popcount(fresh ^ old);
            _state.setFieldUnchecked(off, len, fresh);
        }
    }
    return result;
}

void
BinaryScheme::reset()
{
    _state.clear();
}

} // namespace desc::encoding
