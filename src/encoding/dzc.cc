#include "encoding/dzc.hh"

#include <algorithm>
#include <bit>

#include "common/contract.hh"
#include "common/log.hh"
#include "encoding/swar.hh"

namespace desc::encoding {

DynamicZeroScheme::DynamicZeroScheme(const SchemeConfig &cfg)
    : _wires(cfg.bus_wires), _block_bits(cfg.block_bits),
      _seg_bits(cfg.segment_bits), _state(cfg.bus_wires)
{
    DESC_ASSERT(_seg_bits > 0 && _seg_bits <= 64,
                "segment size must be 1..64 bits: ", _seg_bits);
    DESC_ASSERT(_wires % _seg_bits == 0,
                "bus width not divisible by segment size");
    _beats = (_block_bits + _wires - 1) / _wires;
    _num_segs = _wires / _seg_bits;
    _zero_state.assign(_num_segs, false);
    // The word pass needs whole words of segments per beat: power-of-
    // two segments and a beat width that is a multiple of 64 bits.
    _batched = defaultEncoderMode() != EncoderMode::Scalar
        && std::has_single_bit(_seg_bits) && _wires % 64 == 0;
    if (_batched) {
        _state_words.assign(_wires / 64, 0);
        _zero_marks.assign(_wires / 64, 0);
    }
}

TransferResult
DynamicZeroScheme::transfer(const BitVec &block)
{
    DESC_ASSERT(block.width() == _block_bits, "block width mismatch");
    if (_batched)
        return transferBatched(block);
    return transferScalar(block);
}

TransferResult
DynamicZeroScheme::transferScalar(const BitVec &block)
{
    TransferResult result;
    result.cycles = _beats + 1; // zero-detect pipeline stage

    for (unsigned beat = 0; beat < _beats; beat++) {
        unsigned beat_base = beat * _wires;
        for (unsigned s = 0; s < _num_segs; s++) {
            unsigned pos = beat_base + s * _seg_bits;
            std::uint64_t value = 0;
            if (pos < _block_bits) {
                unsigned avail = std::min(_seg_bits, _block_bits - pos);
                value = block.fieldUnchecked(pos, avail);
            }

            if (value == 0) {
                // Only the indicator may switch; data wires hold.
                if (!_zero_state[s]) {
                    result.control_flips++;
                    _zero_state[s] = true;
                }
                result.skipped++;
            } else {
                if (_zero_state[s]) {
                    result.control_flips++;
                    _zero_state[s] = false;
                }
                std::uint64_t old =
                    _state.fieldUnchecked(s * _seg_bits, _seg_bits);
                result.data_flips += std::popcount(value ^ old);
                _state.setFieldUnchecked(s * _seg_bits, _seg_bits, value);
            }
        }
    }
    return result;
}

namespace {

/**
 * One 64-bit word of one beat: count indicator transitions, skipped
 * (zero) segments, and data flips on the non-zero segments, holding
 * zero segments' wires at their previous levels. Padding segments
 * past the block read zero, exactly as the scalar loop treats them.
 */
template <unsigned SB>
inline void
dzcWord(std::uint64_t x, std::uint64_t &state, std::uint64_t &zero_marks,
        TransferResult &result)
{
    constexpr std::uint64_t lsb = swar::laneLsbMask(SB);
    constexpr std::uint64_t seg_ones = SB == 64
        ? ~std::uint64_t{0}
        : (std::uint64_t{1} << SB) - 1;
    const std::uint64_t nz = swar::nonzeroChunkMarkers<SB>(x);
    const std::uint64_t zero = lsb & ~nz;
    // One indicator per segment: a flip whenever its level changes.
    result.control_flips += std::popcount(zero ^ zero_marks);
    zero_marks = zero;
    result.skipped += std::popcount(zero);
    // Non-zero segments drive their new value; zero segments hold.
    const std::uint64_t drive = nz * seg_ones;
    result.data_flips += std::popcount((x ^ state) & drive);
    state = (state & ~drive) | (x & drive);
}

using DzcWordFn = void (*)(std::uint64_t, std::uint64_t &, std::uint64_t &,
                           TransferResult &);

constexpr DzcWordFn kDzcWord[7] = {dzcWord<1>,  dzcWord<2>,  dzcWord<4>,
                                   dzcWord<8>,  dzcWord<16>, dzcWord<32>,
                                   dzcWord<64>};

} // namespace

TransferResult
DynamicZeroScheme::transferBatched(const BitVec &block)
{
    TransferResult result;
    result.cycles = _beats + 1; // zero-detect pipeline stage

    const unsigned fn = unsigned(std::countr_zero(_seg_bits));
    const DzcWordFn word_fn = kDzcWord[fn];
    const auto &words = block.words();
    const unsigned wpb = _wires / 64; // words per beat
    for (unsigned beat = 0; beat < _beats; beat++) {
        const std::size_t base = std::size_t(beat) * wpb;
        for (unsigned j = 0; j < wpb; j++) {
            // Beats can run past the block's storage when the bus is
            // wider than the remainder; those segments read zero.
            const std::size_t idx = base + j;
            const std::uint64_t x = idx < words.size() ? words[idx] : 0;
            word_fn(x, _state_words[j], _zero_marks[j], result);
        }
    }
    return result;
}

void
DynamicZeroScheme::reset()
{
    _state.clear();
    std::fill(_zero_state.begin(), _zero_state.end(), false);
    std::fill(_state_words.begin(), _state_words.end(), 0);
    std::fill(_zero_marks.begin(), _zero_marks.end(), 0);
}

} // namespace desc::encoding
