#include "encoding/dzc.hh"

#include <bit>

#include "common/contract.hh"
#include "common/log.hh"

namespace desc::encoding {

DynamicZeroScheme::DynamicZeroScheme(const SchemeConfig &cfg)
    : _wires(cfg.bus_wires), _block_bits(cfg.block_bits),
      _seg_bits(cfg.segment_bits), _state(cfg.bus_wires)
{
    DESC_ASSERT(_seg_bits > 0 && _seg_bits <= 64,
                "segment size must be 1..64 bits: ", _seg_bits);
    DESC_ASSERT(_wires % _seg_bits == 0,
                "bus width not divisible by segment size");
    _beats = (_block_bits + _wires - 1) / _wires;
    _num_segs = _wires / _seg_bits;
    _zero_state.assign(_num_segs, false);
}

TransferResult
DynamicZeroScheme::transfer(const BitVec &block)
{
    DESC_ASSERT(block.width() == _block_bits, "block width mismatch");
    TransferResult result;
    result.cycles = _beats + 1; // zero-detect pipeline stage

    for (unsigned beat = 0; beat < _beats; beat++) {
        unsigned beat_base = beat * _wires;
        for (unsigned s = 0; s < _num_segs; s++) {
            unsigned pos = beat_base + s * _seg_bits;
            std::uint64_t value = 0;
            if (pos < _block_bits) {
                unsigned avail = std::min(_seg_bits, _block_bits - pos);
                value = block.fieldUnchecked(pos, avail);
            }

            if (value == 0) {
                // Only the indicator may switch; data wires hold.
                if (!_zero_state[s]) {
                    result.control_flips++;
                    _zero_state[s] = true;
                }
                result.skipped++;
            } else {
                if (_zero_state[s]) {
                    result.control_flips++;
                    _zero_state[s] = false;
                }
                std::uint64_t old =
                    _state.fieldUnchecked(s * _seg_bits, _seg_bits);
                result.data_flips += std::popcount(value ^ old);
                _state.setFieldUnchecked(s * _seg_bits, _seg_bits, value);
            }
        }
    }
    return result;
}

void
DynamicZeroScheme::reset()
{
    _state.clear();
    std::fill(_zero_state.begin(), _zero_state.end(), false);
}

} // namespace desc::encoding
