#include "sim/energy_account.hh"

#include "energy/synthesis.hh"

namespace desc::sim {

using encoding::SchemeKind;

L2Energy
computeL2Energy(const SystemConfig &cfg, const SimResult &r)
{
    energy::CacheEnergyModel model(cfg.l2.org);
    const auto &h = r.hierarchy;
    L2Energy e;

    e.static_energy = model.leakagePower() * r.seconds;

    // H-tree: every data/control transition, plus the address and
    // control wires (conventional binary) of every request.
    e.htree_dynamic = (h.data_flips + h.ctrl_flips)
            * model.htreeFlipEnergy()
        + double(h.l2_requests.value()) * model.addressTransferEnergy();

    // Arrays: block reads/writes plus a tag lookup per request.
    double ecc_scale = 1.0;
    if (cfg.l2.ecc) {
        ecc::BlockCodec codec(cfg.l2.scheme_cfg.block_bits,
                              cfg.l2.ecc_segment_bits);
        ecc_scale = double(codec.busBits())
            / double(cfg.l2.scheme_cfg.block_bits);
    }
    e.array_dynamic = ecc_scale
        * (double(h.read_transfers.value()) * model.arrayReadEnergy()
           + double(h.write_transfers.value()) * model.arrayWriteEnergy())
        + double(h.l2_requests.value()) * model.tagAccessEnergy();

    // Scheme-specific adders.
    switch (cfg.l2.scheme) {
      case SchemeKind::DescBasic:
      case SchemeKind::DescZeroSkip:
      case SchemeKind::DescLastValueSkip: {
        energy::DescSynthesisModel synth(
            cfg.l2.scheme_cfg.block_bits / cfg.l2.scheme_cfg.chunk_bits,
            cfg.l2.scheme_cfg.chunk_bits, energy::tech22(),
            cfg.l2.org.clock_ghz);
        e.aux_dynamic += synth.interfaceEnergyPerBusyCycle()
            * double(h.bank_busy_cycles);
        if (cfg.l2.scheme == SchemeKind::DescLastValueSkip) {
            // Last-value tables at the cache controller (read+update
            // per transfer) and write-data broadcast across subbanks
            // through the vertical/horizontal H-trees (Figure 7).
            double transfers = double(h.read_transfers.value()
                                      + h.write_transfers.value());
            e.aux_dynamic += transfers * 0.5 * model.tagAccessEnergy();
            e.aux_dynamic += double(h.write_transfers.value())
                * 0.05 * double(cfg.l2.scheme_cfg.block_bits / 4)
                * model.htreeFlipEnergy();
        }
        break;
      }
      case SchemeKind::EncodedZeroSkipBusInvert: {
        // Dense mode encode/decode logic per transfer.
        double transfers = double(h.read_transfers.value()
                                  + h.write_transfers.value());
        e.aux_dynamic += transfers * 0.5 * model.tagAccessEnergy();
        break;
      }
      default:
        break; // footnote 4: baselines' control logic not charged
    }
    return e;
}

energy::ProcessorEnergy
computeProcessorEnergy(const SystemConfig &cfg, const SimResult &r,
                       const L2Energy &l2)
{
    energy::ProcessorPowerModel model(
        cfg.cpu == CpuKind::OutOfOrder ? 1 : cfg.cores,
        cfg.cpu == CpuKind::OutOfOrder
            ? energy::CoreKind::OutOfOrder
            : energy::CoreKind::InOrderSMT,
        cfg.l2.org.clock_ghz);

    energy::ProcessorActivity act;
    act.instructions = r.instructions;
    act.l1i_accesses = r.hierarchy.l1i_accesses.value();
    act.l1d_accesses = r.hierarchy.l1d_accesses.value();
    act.l2_accesses = r.hierarchy.l2_requests.value();
    act.runtime_s = r.seconds;
    return model.evaluate(act, l2.total());
}

} // namespace desc::sim
