/**
 * @file
 * Human-readable reporting of simulation results.
 */

#ifndef DESC_SIM_REPORT_HH
#define DESC_SIM_REPORT_HH

#include "sim/experiment.hh"

namespace desc::sim {

/** Print the full statistics and energy breakdown of one run. */
void printRunReport(const SystemConfig &cfg, const AppRun &run);

/** One-line summary (for sweep tools). */
std::string summarizeRun(const SystemConfig &cfg, const AppRun &run);

} // namespace desc::sim

#endif // DESC_SIM_REPORT_HH
