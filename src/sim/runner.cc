#include "sim/runner.hh"

#include <chrono>
#include <cstdio>

#include "common/contract.hh"
#include "common/env.hh"
#include "common/log.hh"
#include "common/prof.hh"
#include "common/trace.hh"
#include "sim/runcache.hh"

namespace desc::sim {

unsigned
Runner::defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    // The registry warns once per process and value: every Runner
    // construction re-reads the environment, and a sweep can build
    // many runners.
    return unsigned(
        env::uintOr(env::Var::SimJobs, hw ? hw : 1, 1, 4096));
}

Runner::Runner(unsigned jobs)
{
    unsigned n = jobs ? jobs : defaultJobs();
    _workers.reserve(n);
    for (unsigned i = 0; i < n; i++)
        _workers.emplace_back([this, i] { workerLoop(i); });
}

Runner::~Runner()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stop = true;
    }
    _work_cv.notify_all();
    for (auto &t : _workers)
        t.join();
}

void
Runner::workerLoop(unsigned worker_idx)
{
    // Diagnostics fired inside a job (warn, trace lines, manifest
    // entries) carry this worker's tag.
    setThreadLogContext(detail::concat("w", worker_idx));

    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _work_cv.wait(lock,
                          [this] { return _stop || !_queue.empty(); });
            if (_queue.empty()) // only when stopping
                return;
            job = _queue.front();
            _queue.pop_front();
        }
        recordQueueWait(std::chrono::duration<double>(
            std::chrono::steady_clock::now() - job.submitted).count());
        {
            DESC_PROF_SCOPE(Runner);
            *job.out = runAppCached(*job.cfg);
        }
        DESC_PROF_CYCLES(Runner, job.out->result.cycles);
        finishOne();
    }
}

void
Runner::finishOne()
{
    using namespace std::chrono;
    std::lock_guard<std::mutex> lock(_mutex);
    _batch_done++;

    auto now = steady_clock::now();
    bool last = _batch_done == _batch_total;
    if (last || now - _last_progress >= milliseconds(500)) {
        _last_progress = now;
        std::uint64_t hits =
            runStats().cache_hits.value() - _batch_start_hits;
        std::fprintf(stderr, "[runner] %zu/%zu points (%llu cached)\n",
                     _batch_done, _batch_total,
                     (unsigned long long)hits);
    }
    if (last)
        _done_cv.notify_all();
}

std::vector<AppRun>
Runner::run(const std::vector<SystemConfig> &cfgs)
{
    // Scale on the submitting thread so the jobs hash (and simulate)
    // exactly what runApp() would.
    std::vector<SystemConfig> scaled;
    scaled.reserve(cfgs.size());
    for (const auto &cfg : cfgs)
        scaled.push_back(scaledConfig(cfg));

    std::vector<AppRun> results(scaled.size());
    if (scaled.empty())
        return results;

    {
        std::unique_lock<std::mutex> lock(_mutex);
        DESC_ASSERT(!_running, "Runner::run is not reentrant");
        _running = true;
        _batch_total = scaled.size();
        _batch_done = 0;
        _batch_start_hits = runStats().cache_hits.value();
        _last_progress = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < scaled.size(); i++)
            _queue.push_back(Job{&scaled[i], &results[i],
                                 std::chrono::steady_clock::now()});
    }
    _work_cv.notify_all();
    DESC_TRACE_HOST(Runner, "batch submitted: ", scaled.size(),
                    " point(s) across ", jobs(), " worker(s)");

    {
        std::unique_lock<std::mutex> lock(_mutex);
        _done_cv.wait(lock,
                      [this] { return _batch_done == _batch_total; });
        _running = false;
    }
    DESC_TRACE_HOST(Runner, "batch complete: ", runSummaryLine());
    return results;
}

Runner &
globalRunner()
{
    static Runner runner;
    return runner;
}

} // namespace desc::sim
