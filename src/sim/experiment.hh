/**
 * @file
 * Shared helpers for the experiment (bench) harnesses.
 *
 * Provides the paper's baseline machine configuration, the best
 * per-scheme configurations selected in Section 4.1 / Figure 15, and
 * a cached application runner so that each bench binary regenerates
 * its figure with a few lines. The environment variable
 * DESC_SIM_SCALE (default 1.0) scales simulated instruction counts
 * for quicker or more precise runs.
 */

#ifndef DESC_SIM_EXPERIMENT_HH
#define DESC_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "sim/energy_account.hh"
#include "sim/system.hh"

namespace desc::sim {

/** Instruction-budget multiplier from DESC_SIM_SCALE. */
double simScale();

/**
 * The paper's baseline machine (Table 1 / Section 4.1): 8 SMT cores,
 * 8MB 16-way L2, 8 banks, 64-bit data bus, LSTP cells and periphery,
 * conventional binary encoding, two DDR3-1066 channels.
 */
SystemConfig baselineConfig(const workloads::AppParams &app);

/**
 * Switch a configuration to the given scheme using the paper's best
 * per-scheme parameters (segment sizes from Figure 15; 128 wires and
 * 4-bit chunks for DESC).
 */
void applyScheme(SystemConfig &cfg, encoding::SchemeKind kind);

/** One simulated (app, config) data point with its energies. */
struct AppRun
{
    SimResult result;
    L2Energy l2;
    energy::ProcessorEnergy processor;
};

/** @p cfg with simScale() applied to the instruction budget (and the
 *  budget clamped to a useful minimum). This is the configuration a
 *  simulation actually runs — and the one the run cache hashes. */
SystemConfig scaledConfig(const SystemConfig &cfg);

/** Run one already-scaled configuration, bypassing the run cache. */
AppRun runScaledApp(const SystemConfig &cfg);

/**
 * Run one configuration (applies simScale() to the budget). Results
 * are memoized on disk keyed by the full scaled configuration (see
 * sim/runcache.hh), so repeated identical points are loaded instead
 * of re-simulated.
 */
AppRun runApp(const SystemConfig &cfg);

/** Short display name for figure rows (matches paper legends). */
std::string shortSchemeName(encoding::SchemeKind kind);

} // namespace desc::sim

#endif // DESC_SIM_EXPERIMENT_HH
