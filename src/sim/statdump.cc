#include "sim/statdump.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/env.hh"
#include "common/trace.hh"

namespace desc::sim {

namespace {

std::vector<std::string>
splitPath(const std::string &path)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    for (std::size_t dot; (dot = path.find('.', start)) != std::string::npos;
         start = dot + 1)
        parts.push_back(path.substr(start, dot - start));
    parts.push_back(path.substr(start));
    return parts;
}

void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", unsigned(c));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

/** A JSON number, or null for values JSON cannot represent. */
void
writeJsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

void
writeJsonValue(std::ostream &os, const StatRegistry::Entry &e)
{
    using Kind = StatRegistry::Kind;
    switch (e.kind) {
      case Kind::Counter:
        os << e.counter->value();
        return;
      case Kind::Int:
        os << e.integer;
        return;
      case Kind::Scalar:
        writeJsonNumber(os, e.scalar);
        return;
      case Kind::Text:
        writeJsonString(os, e.text);
        return;
      case Kind::Average: {
        const Average &a = *e.average;
        os << "{\"count\": " << a.count() << ", \"sum\": ";
        writeJsonNumber(os, a.sum());
        os << ", \"mean\": ";
        writeJsonNumber(os, a.mean());
        os << ", \"min\": ";
        writeJsonNumber(os, a.min());
        os << ", \"max\": ";
        writeJsonNumber(os, a.max());
        os << "}";
        return;
      }
      case Kind::Histogram: {
        const Histogram &h = *e.histogram;
        os << "{\"total\": " << h.total() << ", \"overflow\": "
           << h.overflow() << ", \"mean\": ";
        writeJsonNumber(os, h.mean());
        os << ", \"bins\": [";
        for (std::size_t i = 0; i < h.numBins(); i++)
            os << (i ? ", " : "") << h.bin(unsigned(i));
        os << "]}";
        return;
      }
    }
    DESC_PANIC("bad stat entry kind");
}

void
writeIndent(std::ostream &os, unsigned level)
{
    for (unsigned i = 0; i < level; i++)
        os << "  ";
}

} // namespace

void
writeRegistryJson(std::ostream &os, const StatRegistry &reg,
                  unsigned indent)
{
    os << "{";
    // The open interior groups, innermost last, and whether each open
    // scope (index 0 = the root object) already holds an item.
    std::vector<std::string> open;
    std::vector<bool> has_item = {false};

    auto separate = [&]() {
        os << (has_item.back() ? ",\n" : "\n");
        has_item.back() = true;
        writeIndent(os, indent + unsigned(open.size()) + 1);
    };

    for (const auto &[path, entry] : reg.entries()) {
        auto parts = splitPath(path);
        std::size_t interior = parts.size() - 1;

        std::size_t common = 0;
        while (common < open.size() && common < interior
               && open[common] == parts[common])
            common++;
        while (open.size() > common) {
            os << "\n";
            writeIndent(os, indent + unsigned(open.size()));
            os << "}";
            open.pop_back();
            has_item.pop_back();
        }
        for (std::size_t i = common; i < interior; i++) {
            separate();
            writeJsonString(os, parts[i]);
            os << ": {";
            open.push_back(parts[i]);
            has_item.push_back(false);
        }

        separate();
        writeJsonString(os, parts.back());
        os << ": ";
        writeJsonValue(os, entry);
    }

    while (!open.empty()) {
        os << "\n";
        writeIndent(os, indent + unsigned(open.size()));
        os << "}";
        open.pop_back();
    }
    os << "\n";
    writeIndent(os, indent);
    os << "}";
}

namespace {

void
csvRow(std::ostream &os, const std::string &run_label,
       const std::string &path, const std::string &value)
{
    os << run_label << ',' << path << ',' << value << '\n';
}

std::string
csvNumber(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

void
writeRegistryCsv(std::ostream &os, const StatRegistry &reg,
                 const std::string &run_label)
{
    using Kind = StatRegistry::Kind;
    for (const auto &[path, e] : reg.entries()) {
        switch (e.kind) {
          case Kind::Counter:
            csvRow(os, run_label, path,
                   std::to_string(e.counter->value()));
            break;
          case Kind::Int:
            csvRow(os, run_label, path, std::to_string(e.integer));
            break;
          case Kind::Scalar:
            csvRow(os, run_label, path, csvNumber(e.scalar));
            break;
          case Kind::Text:
            // Stat texts are short identifiers; no quoting needed.
            csvRow(os, run_label, path, e.text);
            break;
          case Kind::Average:
            csvRow(os, run_label, path + ".count",
                   std::to_string(e.average->count()));
            csvRow(os, run_label, path + ".sum",
                   csvNumber(e.average->sum()));
            csvRow(os, run_label, path + ".mean",
                   csvNumber(e.average->mean()));
            break;
          case Kind::Histogram: {
            const Histogram &h = *e.histogram;
            csvRow(os, run_label, path + ".total",
                   std::to_string(h.total()));
            csvRow(os, run_label, path + ".overflow",
                   std::to_string(h.overflow()));
            csvRow(os, run_label, path + ".mean", csvNumber(h.mean()));
            for (std::size_t i = 0; i < h.numBins(); i++)
                csvRow(os, run_label, path + ".bin." + std::to_string(i),
                       std::to_string(h.bin(unsigned(i))));
            break;
          }
        }
    }
}

StatRegistry
buildRunRegistry(const SystemConfig &cfg, const AppRun &run,
                 std::uint64_t config_hash,
                 const prof::Profile *profile)
{
    const auto &r = run.result;
    const auto &h = r.hierarchy;

    StatRegistry reg;

    reg.addText("run.app", cfg.app.name, "workload name");
    reg.addText("run.scheme", shortSchemeName(cfg.l2.scheme),
                "L2 transfer-encoding scheme");
    reg.addInt("run.seed", cfg.seed, "deterministic simulation seed");
    reg.addInt("run.config_hash", config_hash,
               "FNV-1a hash of the canonical scaled configuration");
    reg.addInt("run.cores", cfg.cores, "simulated core count");
    reg.addInt("run.threads_per_core", cfg.threads_per_core,
               "SMT threads per core");
    reg.addInt("run.insts_per_thread", cfg.insts_per_thread,
               "instructions retired per thread");

    reg.addInt("perf.cycles", r.cycles, "simulated core cycles");
    reg.addInt("perf.instructions", r.instructions,
               "instructions retired across all threads");
    reg.addScalar("perf.ipc",
                  double(r.instructions) / double(r.cycles),
                  "instructions per core cycle");
    reg.addScalar("perf.seconds", r.seconds,
                  "simulated wall-clock seconds");

    reg.add("l1.i.accesses", h.l1i_accesses, "L1I lookups");
    reg.add("l1.i.misses", h.l1i_misses, "L1I misses");
    reg.addScalar("l1.i.miss_rate",
                  double(h.l1i_misses.value())
                      / double(std::max<std::uint64_t>(
                          1, h.l1i_accesses.value())),
                  "L1I misses per access");
    reg.add("l1.d.accesses", h.l1d_accesses, "L1D lookups");
    reg.add("l1.d.misses", h.l1d_misses, "L1D misses");
    reg.addScalar("l1.d.miss_rate",
                  double(h.l1d_misses.value())
                      / double(std::max<std::uint64_t>(
                          1, h.l1d_accesses.value())),
                  "L1D misses per access");
    reg.add("l1.upgrades", h.upgrades,
            "store hits on Shared lines (coherence upgrades)");

    reg.add("l2.requests", h.l2_requests, "L2 requests from the L1s");
    reg.add("l2.hits", h.l2_hits, "L2 hits");
    reg.add("l2.misses", h.l2_misses, "L2 misses to DRAM");
    reg.addScalar("l2.hit_rate",
                  double(h.l2_hits.value())
                      / double(std::max<std::uint64_t>(
                          1, h.l2_hits.value() + h.l2_misses.value())),
                  "L2 hits per demand request");
    reg.add("l2.writebacks_in", h.l2_writebacks_in,
            "dirty L1 evictions written back into the L2");
    reg.add("l2.fills", h.l2_fills, "DRAM fills into the L2");
    reg.add("l2.evictions_out", h.l2_evictions_out,
            "dirty L2 evictions written to DRAM");
    reg.add("l2.recalls", h.recalls,
            "coherence recalls of Modified L1 copies");
    reg.add("l2.hit_latency", h.hit_latency,
            "request arrival to data response, in cycles");
    reg.add("l2.transfer_window", h.transfer_window,
            "bank serialization cycles per block transfer");

    reg.add("link.read_transfers", h.read_transfers,
            "blocks moved over the H-tree toward the cores");
    reg.add("link.write_transfers", h.write_transfers,
            "blocks moved over the H-tree toward the banks");
    reg.addScalar("link.data_flips", h.data_flips,
                  "data-wire transitions, distance-weighted");
    reg.addScalar("link.ctrl_flips", h.ctrl_flips,
                  "control-wire transitions, distance-weighted");
    reg.addInt("link.bank_busy_cycles", h.bank_busy_cycles,
               "cycles any bank port spent transferring");

    reg.add("chunks.histogram", r.chunks.histogram(),
            "chunk value distribution (Figure 12)");
    reg.addInt("chunks.total", r.chunks.totalChunks(),
               "chunks observed on the wires");
    reg.addScalar("chunks.zero_fraction", r.chunks.zeroFraction(),
                  "fraction of all-zero chunks");
    reg.addScalar("chunks.last_value_match_fraction",
                  r.chunks.lastValueMatchFraction(),
                  "fraction matching the wire's previous chunk");

    reg.addInt("dram.reads", r.dram_reads, "DRAM read bursts");
    reg.addInt("dram.writes", r.dram_writes, "DRAM write bursts");

    reg.addScalar("energy.l2.htree_dynamic", run.l2.htree_dynamic,
                  "H-tree dynamic energy, joules");
    reg.addScalar("energy.l2.array_dynamic", run.l2.array_dynamic,
                  "array dynamic energy, joules");
    reg.addScalar("energy.l2.aux_dynamic", run.l2.aux_dynamic,
                  "auxiliary (decode/sense) dynamic energy, joules");
    reg.addScalar("energy.l2.static", run.l2.static_energy,
                  "L2 static energy, joules");
    reg.addScalar("energy.l2.dynamic", run.l2.dynamic(),
                  "total L2 dynamic energy, joules");
    reg.addScalar("energy.l2.total", run.l2.total(),
                  "total L2 energy, joules");

    reg.addScalar("energy.processor.core_dynamic",
                  run.processor.core_dynamic,
                  "core dynamic energy, joules");
    reg.addScalar("energy.processor.core_static",
                  run.processor.core_static,
                  "core static energy, joules");
    reg.addScalar("energy.processor.l1", run.processor.l1,
                  "L1 energy, joules");
    reg.addScalar("energy.processor.uncore", run.processor.uncore,
                  "uncore energy, joules");
    reg.addScalar("energy.processor.l2", run.processor.l2,
                  "L2 share of processor energy, joules");
    reg.addScalar("energy.processor.total", run.processor.total(),
                  "total processor energy, joules");

    if (profile) {
        for (unsigned i = 0; i < prof::kNumComponents; i++) {
            const auto &c = profile->comp[i];
            if (c.count == 0 && c.cycles == 0)
                continue;
            std::string base = std::string("prof.")
                + prof::componentName(prof::Component(i));
            reg.addInt(base + ".scopes", c.count,
                       "profiled scope entries during this run");
            reg.addScalar(base + ".self_seconds",
                          double(c.self_ns) * 1e-9,
                          "host seconds in this component, excluding "
                          "nested profiled scopes");
            reg.addScalar(base + ".total_seconds",
                          double(c.total_ns) * 1e-9,
                          "host seconds in this component, including "
                          "nested profiled scopes");
            reg.addInt(base + ".cycles", c.cycles,
                       "simulated cycles attributed to this component");
        }
    }

    return reg;
}

namespace {

struct SidecarRecord
{
    std::string app;
    std::uint64_t config_hash;
    std::uint64_t seq;
    std::string json;
    std::string csv;
};

struct Sidecar
{
    std::mutex mutex;
    std::vector<SidecarRecord> records;
    std::uint64_t next_seq = 0;
};

/** Leaked so the atexit flush never races static destruction. */
Sidecar &
sidecar()
{
    static Sidecar *s = new Sidecar;
    return *s;
}

const std::string &
sidecarPath()
{
    static const std::string path =
        env::stringOr(env::Var::StatsOut, "");
    return path;
}

bool
sidecarWantsCsv()
{
    const std::string &p = sidecarPath();
    return p.size() >= 4 && p.compare(p.size() - 4, 4, ".csv") == 0;
}

void
flushSidecar()
{
    Sidecar &s = sidecar();
    std::lock_guard<std::mutex> lock(s.mutex);

    // Deterministic order regardless of worker scheduling.
    std::sort(s.records.begin(), s.records.end(),
              [](const SidecarRecord &a, const SidecarRecord &b) {
                  if (a.app != b.app)
                      return a.app < b.app;
                  if (a.config_hash != b.config_hash)
                      return a.config_hash < b.config_hash;
                  return a.seq < b.seq;
              });

    std::ofstream out(sidecarPath(), std::ios::trunc);
    if (!out) {
        warn(detail::concat("DESC_STATS_OUT: cannot write \"",
                            sidecarPath(), "\""));
        return;
    }
    if (sidecarWantsCsv()) {
        out << "run,path,value\n";
        for (const auto &rec : s.records)
            out << rec.csv;
    } else {
        out << "{\n  \"format\": \"desc-stats\",\n  \"version\": 1,\n"
            << "  \"runs\": [";
        for (std::size_t i = 0; i < s.records.size(); i++) {
            out << (i ? ",\n    " : "\n    ");
            out << s.records[i].json;
        }
        out << (s.records.empty() ? "]\n}\n" : "\n  ]\n}\n");
    }
}

} // namespace

bool
statsSidecarEnabled()
{
    return !sidecarPath().empty();
}

void
recordRunStats(const SystemConfig &cfg, const AppRun &run,
               std::uint64_t config_hash, const prof::Profile *profile)
{
    if (!statsSidecarEnabled())
        return;

    StatRegistry reg = buildRunRegistry(cfg, run, config_hash, profile);

    SidecarRecord rec;
    rec.app = cfg.app.name;
    rec.config_hash = config_hash;

    std::ostringstream json;
    writeRegistryJson(json, reg, 2);
    rec.json = json.str();

    char hash_tag[24];
    std::snprintf(hash_tag, sizeof(hash_tag), "%016llx",
                  (unsigned long long)config_hash);
    std::ostringstream csv;
    writeRegistryCsv(csv, reg,
                     rec.app + "/" + shortSchemeName(cfg.l2.scheme) + "#"
                         + hash_tag);
    rec.csv = csv.str();

    Sidecar &s = sidecar();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.next_seq == 0)
        std::atexit(flushSidecar);
    rec.seq = s.next_seq++;
    s.records.push_back(std::move(rec));
}

} // namespace desc::sim
