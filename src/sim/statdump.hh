/**
 * @file
 * Machine-readable statistic dumps.
 *
 * buildRunRegistry() lays every number a finished run produced — raw
 * activity counters, derived rates, and the energy breakdowns — into
 * one StatRegistry tree; printRunReport() renders its table from that
 * registry, and the JSON/CSV writers here serialize the same tree, so
 * the human-readable and machine-readable views can never disagree.
 *
 * Set DESC_STATS_OUT=<path> to make every harness write a sidecar
 * file of all runs it executed (including run-cache hits): JSON by
 * default, or a flat run,path,value CSV when the path ends in ".csv".
 */

#ifndef DESC_SIM_STATDUMP_HH
#define DESC_SIM_STATDUMP_HH

#include <cstdint>
#include <iosfwd>

#include "common/prof.hh"
#include "common/stats.hh"
#include "sim/experiment.hh"

namespace desc::sim {

/**
 * Register every statistic of one finished run under dotted paths
 * (run.*, perf.*, l1.*, l2.*, link.*, chunks.*, dram.*, energy.*).
 * The registry references stat objects inside @p run, which must
 * outlive it. When @p profile is non-null (the run executed with
 * DESC_PROF=1), per-component host-time totals join the tree under
 * prof.*.
 */
StatRegistry buildRunRegistry(const SystemConfig &cfg, const AppRun &run,
                              std::uint64_t config_hash,
                              const prof::Profile *profile = nullptr);

/**
 * Serialize @p reg as a nested JSON object (dotted path segments
 * become nested objects). @p indent is the base indentation level of
 * the opening brace, in two-space steps.
 */
void writeRegistryJson(std::ostream &os, const StatRegistry &reg,
                       unsigned indent = 0);

/**
 * Serialize @p reg as flat CSV rows `<run>,<path>,<value>` (composite
 * stats flatten to .mean/.count/... subpaths). No header row.
 */
void writeRegistryCsv(std::ostream &os, const StatRegistry &reg,
                      const std::string &run_label);

/** True when DESC_STATS_OUT requests a stats sidecar file. */
bool statsSidecarEnabled();

/**
 * Record one executed run for the sidecar (no-op unless enabled).
 * Thread-safe; the file is written once at process exit with runs
 * ordered by (app, config hash, record sequence), so parallel sweeps
 * produce deterministic sidecars.
 */
void recordRunStats(const SystemConfig &cfg, const AppRun &run,
                    std::uint64_t config_hash,
                    const prof::Profile *profile = nullptr);

} // namespace desc::sim

#endif // DESC_SIM_STATDUMP_HH
